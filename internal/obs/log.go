package obs

import (
	"fmt"
	"io"
	"sync"
)

// Level is a logging verbosity level.
type Level int

const (
	// LevelQuiet suppresses everything (the CLIs' -q).
	LevelQuiet Level = iota
	// LevelInfo is the default: per-function progress and summaries.
	LevelInfo
	// LevelDebug adds the pipeline's inner-loop detail (the CLIs' -v).
	LevelDebug
)

// Logger is a minimal leveled logger. All methods are safe for concurrent
// use and are no-ops on a nil *Logger, so instrumented code never checks
// for enablement. One line per call; concurrent writers never interleave
// within a line.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level Level
}

// NewLogger returns a logger writing lines at or below level to w.
func NewLogger(w io.Writer, level Level) *Logger {
	return &Logger{w: w, level: level}
}

// Enabled reports whether a message at level would be written. Call sites
// use it to skip expensive argument construction.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && l.w != nil && level <= l.level && level > LevelQuiet
}

// Infof logs a progress line (shown by default, silenced by -q).
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, format, args...) }

// Debugf logs inner-loop detail (shown with -v).
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, format, args...) }

func (l *Logger) logf(level Level, format string, args ...any) {
	if !l.Enabled(level) {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, format+"\n", args...)
}

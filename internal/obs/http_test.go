package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHTTPHandler: the middleware counts requests and error responses,
// observes latency, and emits one span per request when a tracer is set.
func TestHTTPHandler(t *testing.T) {
	reg := NewRegistry()
	var traceBuf strings.Builder
	tr := NewTracer(&traceBuf)
	h := HTTPHandler(reg, tr, "t", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			http.Error(w, "no", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok")) // implicit 200 must not count as an error
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	for _, path := range []string{"/", "/boom", "/"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	if n := reg.Counter("t.requests").Value(); n != 3 {
		t.Errorf("t.requests = %d, want 3", n)
	}
	if n := reg.Counter("t.errors").Value(); n != 1 {
		t.Errorf("t.errors = %d, want 1", n)
	}
	if n := reg.Histogram("t.latency_ns").Count(); n != 3 {
		t.Errorf("t.latency_ns count = %d, want 3", n)
	}
	if got := strings.Count(traceBuf.String(), `"http.t"`); got != 3 {
		t.Errorf("trace has %d http.t spans, want 3:\n%s", got, traceBuf.String())
	}
	if !strings.Contains(traceBuf.String(), `"status":500`) {
		t.Errorf("trace missing status attr:\n%s", traceBuf.String())
	}
}

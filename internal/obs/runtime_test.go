package obs

import (
	"context"
	"strings"
	"testing"
)

func TestCaptureRuntimeSetsGauges(t *testing.T) {
	r := NewRegistry()
	CaptureRuntime(r)
	snap := r.Snapshot()
	for _, name := range []string{
		"runtime/goroutines",
		"runtime/heap_alloc_bytes",
		"runtime/heap_sys_bytes",
		"runtime/gc_cycles",
		"runtime/gc_last_pause_ns",
	} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %q missing after CaptureRuntime", name)
		}
	}
	if snap.Gauge("runtime/goroutines") < 1 {
		t.Errorf("runtime/goroutines = %d, want >= 1", snap.Gauge("runtime/goroutines"))
	}
	if snap.Gauge("runtime/heap_alloc_bytes") <= 0 {
		t.Errorf("runtime/heap_alloc_bytes = %d, want > 0", snap.Gauge("runtime/heap_alloc_bytes"))
	}
}

func TestBuildIdentity(t *testing.T) {
	b := Build()
	if b.Git == "" {
		t.Error("Build().Git is empty, want a describe string or \"unknown\"")
	}
	if !strings.HasPrefix(b.GoVersion, "go") {
		t.Errorf("Build().GoVersion = %q, want a go version string", b.GoVersion)
	}
	if again := Build(); again != b {
		t.Errorf("Build() not stable: %+v then %+v", b, again)
	}
}

func TestTraceIDRoundTrip(t *testing.T) {
	id := TraceID(0xdeadbeef01)
	got, ok := ParseTraceID(id.String())
	if !ok || got != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v; want %v, true", id.String(), got, ok, id)
	}
	for _, bad := range []string{"", "zz", "00000000000000000", strings.Repeat("f", 17), "0"} {
		if _, ok := ParseTraceID(bad); ok {
			t.Errorf("ParseTraceID(%q) accepted, want rejection", bad)
		}
	}
}

func TestNewTraceIDDistinctAndNonzero(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("NewTraceID returned the reserved zero id")
		}
		if seen[id] {
			t.Fatalf("NewTraceID repeated %v within 1000 draws", id)
		}
		seen[id] = true
	}
}

func TestTraceContext(t *testing.T) {
	ctx := context.Background()
	if got := TraceFrom(ctx); got != 0 {
		t.Errorf("TraceFrom(empty ctx) = %v, want 0", got)
	}
	id := NewTraceID()
	if got := TraceFrom(WithTrace(ctx, id)); got != id {
		t.Errorf("TraceFrom(WithTrace) = %v, want %v", got, id)
	}
}

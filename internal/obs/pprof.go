package obs

import (
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strings"
)

// StartCPUProfile begins a CPU profile at path and returns the function that
// stops it and closes the file. It backs the CLIs' -cpuprofile flag.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("start CPU profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile writes an up-to-date heap profile to path. It backs the
// CLIs' -memprofile flag.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // fold pending frees into the profile, as `go test` does
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("write heap profile: %w", err)
	}
	return f.Close()
}

// GitDescribe returns `git describe --always --dirty --tags` for the current
// working tree, or "" when git (or a repository) is unavailable — run
// reports embed it so a perf trajectory can be pinned to commits.
func GitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty", "--tags").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

package obs

import (
	"net/http"
	"time"
)

// TraceHeader is the HTTP header carrying a request's TraceID in both
// directions: clients may supply their own id (16 hex digits) and the server
// echoes the effective id — supplied or ingress-assigned — on the response.
const TraceHeader = "X-Trace-Id"

// HTTPHandler wraps h with the request-level observability the serving layer
// uses: a request counter ("<name>.requests"), an error counter
// ("<name>.errors", any response with status >= 400), a latency histogram in
// nanoseconds ("<name>.latency_ns"), and — when tr is non-nil — one trace
// span per request carrying method, path and status. Every request gets a
// TraceID at ingress (the client's X-Trace-Id when parseable, else a fresh
// one), carried on the request context for downstream layers, echoed on the
// response header, and stamped on the span. A nil registry falls back to the
// process-wide Default registry.
func HTTPHandler(r *Registry, tr *Tracer, name string, h http.Handler) http.Handler {
	if r == nil {
		r = Default()
	}
	requests := r.Counter(name + ".requests")
	errors := r.Counter(name + ".errors")
	latency := r.Histogram(name + ".latency_ns")
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		requests.Inc()
		trace, ok := ParseTraceID(req.Header.Get(TraceHeader))
		if !ok {
			trace = NewTraceID()
		}
		w.Header().Set(TraceHeader, trace.String())
		req = req.WithContext(WithTrace(req.Context(), trace))
		var span *Span
		if tr != nil {
			span = tr.StartSpan("http."+name, Attrs{
				"method": req.Method,
				"path":   req.URL.Path,
				"trace":  trace.String(),
			})
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(sw, req)
		latency.ObserveDuration(time.Since(start))
		if sw.status() >= 400 {
			errors.Inc()
		}
		if span != nil {
			span.End(Attrs{"status": sw.status()})
		}
	})
}

// statusWriter records the response status code (200 if the handler wrote a
// body without calling WriteHeader, per net/http semantics).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// Go runtime health metrics and build identity, exported as plain registry
// instruments so they ride the same /metricz surface as the app metrics.
// Runtime gauges are captured on demand (scrape time) rather than by a
// background poller: a registry stays passive until something reads it, and
// the ReadMemStats stop-the-world cost is paid only when a scraper asks.

// CaptureRuntime samples the Go runtime into gauges on r:
//
//	runtime/goroutines        current goroutine count
//	runtime/heap_alloc_bytes  live heap bytes (MemStats.HeapAlloc)
//	runtime/heap_sys_bytes    heap address space obtained from the OS
//	runtime/gc_cycles         completed GC cycles (NumGC)
//	runtime/gc_last_pause_ns  most recent GC stop-the-world pause
//
// Call it just before Snapshot so the exported values are scrape-fresh. A
// nil registry captures into Default().
func CaptureRuntime(r *Registry) {
	if r == nil {
		r = Default()
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("runtime/goroutines").Set(int64(runtime.NumGoroutine()))
	r.Gauge("runtime/heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	r.Gauge("runtime/heap_sys_bytes").Set(int64(ms.HeapSys))
	r.Gauge("runtime/gc_cycles").Set(int64(ms.NumGC))
	r.Gauge("runtime/gc_last_pause_ns").Set(int64(ms.PauseNs[(ms.NumGC+255)%256]))
}

// BuildIdentity is the process's build provenance: what the run reports
// stamp (git describe) plus the toolchain. The serving layer exposes it on
// /healthz, /statusz and as a labelled build_info sample on /metricz so a
// fleet dashboard can tell which binary answered.
type BuildIdentity struct {
	// Git is `git describe --always --dirty --tags` at startup when the
	// process runs inside a work tree, else the main module version from the
	// embedded build info, else "unknown".
	Git string `json:"git"`
	// GoVersion is runtime.Version().
	GoVersion string `json:"go_version"`
}

var (
	buildOnce sync.Once
	buildID   BuildIdentity
)

// Build returns the process's build identity. The git lookup shells out, so
// the result is computed once and cached for the process lifetime.
func Build() BuildIdentity {
	buildOnce.Do(func() {
		buildID.GoVersion = runtime.Version()
		buildID.Git = GitDescribe()
		if buildID.Git == "" {
			if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
				buildID.Git = bi.Main.Version
			}
		}
		if buildID.Git == "" {
			buildID.Git = "unknown"
		}
	})
	return buildID
}

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a/b")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("a/b") != c {
		t.Error("Counter must return the same handle for the same name")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.SetMax(3)
	if got := g.Value(); got != 7 {
		t.Errorf("SetMax(3) lowered gauge to %d", got)
	}
	g.SetMax(11)
	if got := g.Value(); got != 11 {
		t.Errorf("gauge = %d, want 11", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	// The log-2 bucket invariant: v lands in (lo, hi] with hi = 2^i.
	cases := map[int64]int{-3: 0, 0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for v, want := range cases {
		if got := bucketOf(v); got != want {
			t.Errorf("bucketOf(%d) = %d, want %d", v, got, want)
		}
	}
	var h Histogram
	h.Observe(1)
	h.Observe(3)
	h.ObserveDuration(4 * time.Nanosecond)
	if h.Count() != 3 || h.Sum() != 8 {
		t.Errorf("count/sum = %d/%d, want 3/8", h.Count(), h.Sum())
	}
	s := snapshotHist(&h)
	if len(s.Buckets) != 2 {
		t.Fatalf("%d occupied buckets, want 2 (%+v)", len(s.Buckets), s.Buckets)
	}
	if s.Buckets[0].Lo != 0 || s.Buckets[0].Hi != 1 || s.Buckets[0].Count != 1 {
		t.Errorf("bucket 0 = %+v", s.Buckets[0])
	}
	if s.Buckets[1].Lo != 2 || s.Buckets[1].Hi != 4 || s.Buckets[1].Count != 2 {
		t.Errorf("bucket 1 = %+v", s.Buckets[1])
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["c"] != 8000 {
		t.Errorf("counter = %d, want 8000", s.Counters["c"])
	}
	if s.Histograms["h"].Count != 8000 {
		t.Errorf("histogram count = %d, want 8000", s.Histograms["h"].Count)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("only/a").Add(1)
	b.Counter("only/b").Add(2)
	b.Gauge("g").Set(3)
	b.Histogram("h").Observe(9)
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Counters["only/a"] != 1 || s.Counters["only/b"] != 2 {
		t.Errorf("merged counters = %v", s.Counters)
	}
	if got := s.Names(); len(got) != 4 {
		t.Errorf("Names() = %v, want 4 entries", got)
	}
}

func TestSnapshotAccessors(t *testing.T) {
	r := NewRegistry()
	r.Counter("oracle/cache/hits").Add(7)
	r.Gauge("oracle/store/segments").Set(2)
	s := r.Snapshot()
	if got := s.Counter("oracle/cache/hits"); got != 7 {
		t.Errorf("Counter(hits) = %d, want 7", got)
	}
	if got := s.Counter("no/such/counter"); got != 0 {
		t.Errorf("Counter(missing) = %d, want 0", got)
	}
	if got := s.Gauge("oracle/store/segments"); got != 2 {
		t.Errorf("Gauge(segments) = %d, want 2", got)
	}
	// Accessors work on zero-value snapshots (e.g. a report parsed from a
	// run that recorded nothing).
	var empty Snapshot
	if got := empty.Counter("x"); got != 0 {
		t.Errorf("zero-value Counter = %d, want 0", got)
	}
	if got := empty.Gauge("x"); got != 0 {
		t.Errorf("zero-value Gauge = %d, want 0", got)
	}
}

func TestTracerJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Event("hello", Attrs{"fn": "exp2", "n": 3})
	sp := tr.StartSpan("work", Attrs{"fn": "exp2", "phase": "solve"})
	sp.End(Attrs{"pivots": 17})
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2:\n%s", len(lines), buf.String())
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if ev["ev"] != "hello" || ev["fn"] != "exp2" || ev["n"] != float64(3) {
		t.Errorf("event line = %v", ev)
	}
	if _, hasDur := ev["dur_us"]; hasDur {
		t.Error("instantaneous event must not carry dur_us")
	}
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatalf("line 1 is not JSON: %v", err)
	}
	if ev["ev"] != "work" || ev["pivots"] != float64(17) || ev["phase"] != "solve" {
		t.Errorf("span line = %v", ev)
	}
	if _, hasDur := ev["dur_us"]; !hasDur {
		t.Error("span line must carry dur_us")
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Event("x", nil)
	sp := tr.StartSpan("y", nil)
	sp.End(Attrs{"k": 1})
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Infof("info %d", 1)
	l.Debugf("debug %d", 2)
	if got := buf.String(); got != "info 1\n" {
		t.Errorf("info-level output = %q", got)
	}
	buf.Reset()
	NewLogger(&buf, LevelDebug).Debugf("d")
	if buf.String() != "d\n" {
		t.Errorf("debug logger dropped a debug line: %q", buf.String())
	}
	buf.Reset()
	q := NewLogger(&buf, LevelQuiet)
	q.Infof("nope")
	if buf.Len() != 0 {
		t.Errorf("quiet logger wrote %q", buf.String())
	}
	var nilLogger *Logger
	nilLogger.Infof("also fine")
	if nilLogger.Enabled(LevelInfo) {
		t.Error("nil logger must report not-enabled")
	}
}

package obs

import (
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"serve.eval_json.latency_ns": "serve_eval_json_latency_ns",
		"core/exp/rlibm/iterations":  "core_exp_rlibm_iterations",
		"9lives":                     "_9lives",
		"already_fine":               "already_fine",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheus: counters, gauges and histograms all appear with TYPE
// lines, histogram buckets are cumulative, and the exposition is
// deterministic across calls.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.shed_total").Add(3)
	r.Gauge("serve.coalesce.queue_elems").Set(17)
	h := r.Histogram("serve.batch_elems")
	h.Observe(1) // bucket le=1
	h.Observe(2) // bucket le=2
	h.Observe(2)
	h.Observe(1000) // bucket le=1024

	var b1, b2 strings.Builder
	if err := r.Snapshot().WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("exposition is not deterministic across calls")
	}
	out := b1.String()
	for _, want := range []string{
		"# TYPE serve_shed_total counter\nserve_shed_total 3\n",
		"# TYPE serve_coalesce_queue_elems gauge\nserve_coalesce_queue_elems 17\n",
		"# TYPE serve_batch_elems histogram\n",
		`serve_batch_elems_bucket{le="1"} 1`,
		`serve_batch_elems_bucket{le="2"} 3`, // cumulative: 1 + 2
		`serve_batch_elems_bucket{le="1024"} 4`,
		`serve_batch_elems_bucket{le="+Inf"} 4`,
		"serve_batch_elems_sum 1005",
		"serve_batch_elems_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeAdd(t *testing.T) {
	var g Gauge
	g.Add(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Errorf("gauge after +5 -2 = %d, want 3", got)
	}
}

package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attrs carries the structured payload of one trace event. json.Marshal
// sorts map keys, so lines are stable for a given payload.
type Attrs map[string]any

// TraceID identifies one request end to end: assigned at ingress (or
// accepted from the client), threaded through handlers and the coalescer via
// context.Context, echoed back to the client, and stamped on every child
// span the request emits. Zero means "untraced".
type TraceID uint64

// String renders the id the way it travels in headers and trace lines:
// 16 lowercase hex digits.
func (id TraceID) String() string {
	return fmt.Sprintf("%016x", uint64(id))
}

// ParseTraceID accepts the hex form String emits (up to 16 hex digits).
// Malformed or zero input yields (0, false) — ingress then assigns a fresh
// id rather than failing the request over a bad correlation header.
func ParseTraceID(s string) (TraceID, bool) {
	if s == "" || len(s) > 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil || v == 0 {
		return 0, false
	}
	return TraceID(v), true
}

// traceIDState seeds NewTraceID: a per-process random base (so ids from
// concurrent replicas don't collide) advanced by a Weyl-style odd increment
// per id (so ids within a process never repeat).
var traceIDState atomic.Uint64

func init() {
	traceIDState.Store(rand.Uint64() | 1)
}

// NewTraceID returns a fresh nonzero trace id. Safe for concurrent use and
// cheap enough for every-request ingress assignment (one atomic add).
func NewTraceID() TraceID {
	for {
		// The odd increment walks the full 2^64 ring; skip the zero value,
		// which is reserved for "untraced".
		if id := TraceID(traceIDState.Add(0x9e3779b97f4a7c15)); id != 0 {
			return id
		}
	}
}

// traceCtxKey carries a TraceID through context.Context.
type traceCtxKey struct{}

// WithTrace returns ctx carrying id.
func WithTrace(ctx context.Context, id TraceID) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, id)
}

// TraceFrom returns the TraceID carried by ctx, or 0 when ctx carries none.
func TraceFrom(ctx context.Context) TraceID {
	id, _ := ctx.Value(traceCtxKey{}).(TraceID)
	return id
}

// Tracer writes span-style structured events as JSON Lines. Every method is
// safe for concurrent use (one line per event, written under a mutex) and
// every method on a nil *Tracer is a no-op, so instrumented code never
// checks whether tracing is enabled.
//
// Line schema (one JSON object per line):
//
//	{"t_us": <microseconds since tracer start>,
//	 "ev":   "<event name>",
//	 "dur_us": <span duration, span-end events only>,
//	 ... event attributes ...}
//
// Wall-clock fields are the only nondeterministic content; everything else
// is a pure function of the run's inputs.
type Tracer struct {
	mu    sync.Mutex
	w     io.Writer
	start time.Time
	err   error // first write error; subsequent events are dropped
}

// NewTracer returns a tracer writing JSONL to w. The caller owns w's
// lifetime (the tracer never closes it).
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, start: time.Now()}
}

// Err returns the first write error, if any — a full disk should not kill a
// multi-hour generation run, so writes fail soft and the CLI reports the
// error at exit.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Event writes one instantaneous event.
func (t *Tracer) Event(name string, attrs Attrs) {
	if t == nil {
		return
	}
	t.emit(name, attrs, -1)
}

// Span starts a span; call End on the result to emit it. A span is emitted
// as a single line at End time (with its duration), not as a pair of lines.
type Span struct {
	t     *Tracer
	name  string
	start time.Time
	attrs Attrs
}

// StartSpan begins a span with the given base attributes.
func (t *Tracer) StartSpan(name string, attrs Attrs) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, start: time.Now(), attrs: attrs}
}

// End emits the span line. extra attributes (results discovered during the
// span: violation counts, pivot totals, ...) override base attributes on
// key collision. End on a nil span is a no-op.
func (s *Span) End(extra Attrs) {
	if s == nil {
		return
	}
	attrs := make(Attrs, len(s.attrs)+len(extra))
	for k, v := range s.attrs {
		attrs[k] = v
	}
	for k, v := range extra {
		attrs[k] = v
	}
	s.t.emit(s.name, attrs, time.Since(s.start))
}

// Dur emits a completed span whose duration was measured by the caller —
// the shape the serving layer's phase attribution needs, where a phase's
// start and end are observed at different layers (enqueue in the handler,
// sweep inside the coalescer) and the span line is emitted after the fact.
func (t *Tracer) Dur(name string, attrs Attrs, dur time.Duration) {
	if t == nil {
		return
	}
	if dur < 0 {
		dur = 0
	}
	t.emit(name, attrs, dur)
}

// emit writes one line. dur < 0 means "not a span" (no dur_us field).
func (t *Tracer) emit(name string, attrs Attrs, dur time.Duration) {
	line := make(map[string]any, len(attrs)+3)
	for k, v := range attrs {
		line[k] = v
	}
	line["ev"] = name
	line["t_us"] = time.Since(t.start).Microseconds()
	if dur >= 0 {
		line["dur_us"] = dur.Microseconds()
	}
	buf, err := json.Marshal(line)
	if err != nil {
		// Unmarshalable attribute values are a programming error; record it
		// once rather than panicking mid-pipeline.
		t.mu.Lock()
		if t.err == nil {
			t.err = err
		}
		t.mu.Unlock()
		return
	}
	buf = append(buf, '\n')
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if _, err := t.w.Write(buf); err != nil {
		t.err = err
	}
}

// Package obs is the repository's structured observability layer: a
// dependency-free metrics registry (counters, gauges, log-scale histograms),
// a span-style JSONL event tracer, a leveled logger, and pprof helpers.
//
// The design constraint that shapes everything here is determinism: the
// generation pipeline promises bit-identical coefficients for a fixed seed,
// for any worker count, with or without observability enabled. Metrics are
// therefore strictly write-only from the pipeline's point of view — nothing
// in this package feeds a value back into generation — and every instrument
// is safe for concurrent use (atomics for the hot-path updates, a mutex only
// around instrument creation and trace writes).
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a named collection of instruments. Instruments are created on
// first use and live for the registry's lifetime; handles returned by
// Counter/Gauge/Histogram may be cached and used from any goroutine.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// defaultRegistry collects process-wide metrics from layers that have no
// natural per-run configuration hook (the oracle's Ziv loop, the oracle
// cache). CLIs snapshot it into their run reports.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named monotonic counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the counter to stay monotonic; this is not
// enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 (tableau dimensions, terminal precisions, ...).
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative to decrement) — the shape
// level-style gauges (queue depths, open connections) need.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// SetMax stores n if it exceeds the current value.
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the fixed bucket count of every histogram: bucket i counts
// observations v with 2^(i-1) < v <= 2^i (bucket 0 counts v <= 1, the last
// bucket is unbounded above). Values are int64 — nanoseconds for durations,
// plain counts for pivot totals and escalation depths — so 63 log-2 buckets
// cover the whole range.
const histBuckets = 64

// Histogram counts int64 observations in fixed log-2-scale buckets. The
// zero value is ready to use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v - 1)) // ceil(log2(v)) for v >= 2
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one value. Negative values clamp into the lowest bucket.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// ObserveDuration records d in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bucket is one occupied histogram bucket: Count observations in (Lo, Hi]
// (Lo = 0 for the first bucket; Hi is the inclusive upper bound 2^i).
type Bucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the JSON-friendly state of a histogram; only occupied
// buckets appear.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time, JSON-serializable copy of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// snapshotHist copies a histogram's occupied buckets.
func snapshotHist(h *Histogram) HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		lo := int64(0)
		if i > 0 {
			lo = int64(1) << (i - 1)
		}
		s.Buckets = append(s.Buckets, Bucket{Lo: lo, Hi: int64(1) << i, Count: n})
	}
	return s
}

// Snapshot copies every instrument's current state. Instruments registered
// but never updated still appear (with zero values), so a report reflects
// what was instrumented, not only what fired.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = snapshotHist(h)
	}
	return s
}

// Merge folds other into s (other wins on name collisions). Reports use it
// to consolidate the per-run registry with the process-wide default one.
func (s *Snapshot) Merge(other Snapshot) {
	if s.Counters == nil {
		s.Counters = map[string]int64{}
	}
	if s.Gauges == nil {
		s.Gauges = map[string]int64{}
	}
	if s.Histograms == nil {
		s.Histograms = map[string]HistogramSnapshot{}
	}
	for name, v := range other.Counters {
		s.Counters[name] = v
	}
	for name, v := range other.Gauges {
		s.Gauges[name] = v
	}
	for name, v := range other.Histograms {
		s.Histograms[name] = v
	}
}

// Counter returns the named counter's value, or 0 when the snapshot does
// not carry it — report consumers (CI scripts, tests) read cache hit/miss
// style counters without caring whether the producing run instrumented them.
func (s Snapshot) Counter(name string) int64 {
	return s.Counters[name]
}

// Gauge is Counter's analogue for gauges.
func (s Snapshot) Gauge(name string) int64 {
	return s.Gauges[name]
}

// Names returns the sorted instrument names of the snapshot (all kinds),
// mainly for tests and debugging.
func (s Snapshot) Names() []string {
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

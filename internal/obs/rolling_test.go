package obs

import (
	"testing"
	"time"
)

func TestRollingWindowQuantilesExact(t *testing.T) {
	w := NewRollingWindow(16, 0)
	for v := int64(1); v <= 10; v++ {
		w.Observe(v)
	}
	qs, n := w.Quantiles(0, 0.5, 1)
	if n != 10 {
		t.Fatalf("count = %d, want 10", n)
	}
	if qs[0] != 1 || qs[2] != 10 {
		t.Errorf("min/max = %d/%d, want 1/10", qs[0], qs[2])
	}
	if qs[1] < 5 || qs[1] > 6 {
		t.Errorf("p50 = %d, want 5 or 6", qs[1])
	}
}

func TestRollingWindowEvictsOldestByCapacity(t *testing.T) {
	w := NewRollingWindow(4, 0)
	for v := int64(1); v <= 10; v++ {
		w.Observe(v)
	}
	qs, n := w.Quantiles(0, 1)
	if n != 4 {
		t.Fatalf("count = %d, want capacity 4", n)
	}
	// Only the most recent four observations (7..10) remain.
	if qs[0] != 7 || qs[1] != 10 {
		t.Errorf("range = [%d, %d], want [7, 10]", qs[0], qs[1])
	}
}

func TestRollingWindowAgeBound(t *testing.T) {
	w := NewRollingWindow(16, 20*time.Millisecond)
	w.Observe(111)
	time.Sleep(40 * time.Millisecond)
	w.Observe(222)
	qs, n := w.Quantiles(0, 1)
	if n != 1 {
		t.Fatalf("count = %d, want only the in-window sample", n)
	}
	if qs[0] != 222 || qs[1] != 222 {
		t.Errorf("quantiles = %v, want the fresh sample 222", qs)
	}
}

func TestRollingWindowEmpty(t *testing.T) {
	w := NewRollingWindow(8, time.Minute)
	qs, n := w.Quantiles(0.5, 0.99)
	if n != 0 || qs[0] != 0 || qs[1] != 0 {
		t.Errorf("empty window: quantiles %v count %d, want zeros", qs, n)
	}
}

func TestRollingWindowObserveDoesNotAllocate(t *testing.T) {
	w := NewRollingWindow(256, time.Minute)
	if avg := testing.AllocsPerRun(100, func() { w.Observe(7) }); avg != 0 {
		t.Errorf("Observe allocates %.1f objects/op, want 0", avg)
	}
}

package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition (version 0.0.4) for registry snapshots. The
// serving layer's /metricz endpoint emits this so a stock Prometheus scraper
// can consume the serve.* instruments without an adapter; the JSON snapshot
// stays available for the run-report machinery.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName maps an instrument name to a legal Prometheus metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*. The registry's dotted, slash-separated names
// ("serve.eval_json.latency_ns", "core/exp/rlibm/iterations") all collapse
// onto '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' || r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes the snapshot in the Prometheus text format:
// counters and gauges as single samples, histograms as cumulative
// le-labelled buckets plus _sum and _count. Output is sorted by name so the
// exposition is deterministic.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, b.Hi, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			pn, h.Count, pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

package obs

import (
	"flag"
	"fmt"
	"os"
)

// CommonFlags bundles the observability flags shared by every rlibm CLI:
// leveled logging (-v/-q), tracing (-trace), run reports (-report) and
// pprof capture (-cpuprofile/-memprofile).
type CommonFlags struct {
	Verbose    bool
	Quiet      bool
	TracePath  string
	ReportPath string
	CPUProfile string
	MemProfile string
}

// RegisterCommonFlags installs the shared observability flags on fs.
func RegisterCommonFlags(fs *flag.FlagSet) *CommonFlags {
	c := &CommonFlags{}
	fs.BoolVar(&c.Verbose, "v", false, "verbose: show inner-loop debug detail")
	fs.BoolVar(&c.Quiet, "q", false, "quiet: suppress progress lines (results still print)")
	fs.StringVar(&c.TracePath, "trace", "", "write structured JSONL trace events to this file")
	fs.StringVar(&c.ReportPath, "report", "", "write a machine-readable JSON run report to this file")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a pprof heap profile to this file (at exit)")
	return c
}

// Level resolves -v/-q into a log level (-q wins when both are given: a
// script asking for quiet output should get it).
func (c *CommonFlags) Level() Level {
	switch {
	case c.Quiet:
		return LevelQuiet
	case c.Verbose:
		return LevelDebug
	default:
		return LevelInfo
	}
}

// RunObs is the live observability state of one CLI run: open trace file,
// running CPU profile, pending heap profile. Close releases all of it.
type RunObs struct {
	Log    *Logger
	Tracer *Tracer

	traceFile *os.File
	stopCPU   func() error
	memPath   string
}

// Start opens the resources the flags ask for. On error everything already
// opened is released. The caller must Close the returned RunObs (typically
// deferred); Close is nil-safe, so `ro, err := flags.Start()` followed by
// `defer ro.Close()` is correct even on error.
func (c *CommonFlags) Start() (*RunObs, error) {
	ro := &RunObs{Log: NewLogger(os.Stderr, c.Level())}
	if c.TracePath != "" {
		f, err := os.Create(c.TracePath)
		if err != nil {
			return nil, fmt.Errorf("obs: -trace: %w", err)
		}
		ro.traceFile = f
		ro.Tracer = NewTracer(f)
	}
	if c.CPUProfile != "" {
		stop, err := StartCPUProfile(c.CPUProfile)
		if err != nil {
			ro.Close()
			return nil, fmt.Errorf("obs: -cpuprofile: %w", err)
		}
		ro.stopCPU = stop
	}
	ro.memPath = c.MemProfile
	return ro, nil
}

// Close stops the CPU profile, writes the heap profile, and closes the
// trace file. Safe on nil and idempotent enough for a deferred call after a
// failed Start.
func (ro *RunObs) Close() error {
	if ro == nil {
		return nil
	}
	var first error
	if ro.stopCPU != nil {
		if err := ro.stopCPU(); err != nil && first == nil {
			first = err
		}
		ro.stopCPU = nil
	}
	if ro.memPath != "" {
		if err := WriteHeapProfile(ro.memPath); err != nil && first == nil {
			first = err
		}
		ro.memPath = ""
	}
	if ro.traceFile != nil {
		if err := ro.Tracer.Err(); err != nil && first == nil {
			first = fmt.Errorf("obs: trace writes failed: %w", err)
		}
		if err := ro.traceFile.Close(); err != nil && first == nil {
			first = err
		}
		ro.traceFile = nil
	}
	return first
}

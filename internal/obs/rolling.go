package obs

import (
	"sort"
	"sync"
	"time"
)

// RollingWindow keeps the most recent observations (bounded by capacity and
// age) and answers quantile queries over them. It complements Histogram: the
// fixed log-2 histograms are cheap, lock-free and cumulative-forever — right
// for Prometheus — but a human status page wants "p99 over the last minute",
// which needs recency and better-than-power-of-two resolution. The window
// trades a short mutex hold per Observe for exact quantiles over a bounded
// sample.
//
// Observe never allocates after construction (the ring is preallocated), so
// the serving fast path can record into it unconditionally.
type RollingWindow struct {
	mu   sync.Mutex
	vals []int64 // ring buffer of observations
	at   []int64 // monotonic-ish record times (UnixNano), parallel to vals
	head int     // next write position
	n    int     // occupied entries, <= len(vals)
	age  time.Duration
}

// NewRollingWindow returns a window keeping up to capacity observations no
// older than age (age <= 0 means "no age bound"). Capacity below 1 is
// clamped to 1.
func NewRollingWindow(capacity int, age time.Duration) *RollingWindow {
	if capacity < 1 {
		capacity = 1
	}
	return &RollingWindow{
		vals: make([]int64, capacity),
		at:   make([]int64, capacity),
		age:  age,
	}
}

// Observe records one value, evicting the oldest when the ring is full.
func (w *RollingWindow) Observe(v int64) {
	now := time.Now().UnixNano()
	w.mu.Lock()
	w.vals[w.head] = v
	w.at[w.head] = now
	w.head = (w.head + 1) % len(w.vals)
	if w.n < len(w.vals) {
		w.n++
	}
	w.mu.Unlock()
}

// ObserveDuration records d in nanoseconds.
func (w *RollingWindow) ObserveDuration(d time.Duration) { w.Observe(int64(d)) }

// Quantiles returns the requested quantiles (each in [0, 1]) over the
// in-window observations, plus the live sample count. With no in-window
// samples the quantiles are all zero and count is 0. The cost is one copy
// and sort of at most capacity values — a status-page query, not a hot path.
func (w *RollingWindow) Quantiles(qs ...float64) (out []int64, count int) {
	cutoff := int64(0)
	if w.age > 0 {
		cutoff = time.Now().Add(-w.age).UnixNano()
	}
	w.mu.Lock()
	live := make([]int64, 0, w.n)
	for i := 0; i < w.n; i++ {
		idx := (w.head - 1 - i + 2*len(w.vals)) % len(w.vals)
		if w.at[idx] < cutoff {
			break // entries are time-ordered newest-first from head-1
		}
		live = append(live, w.vals[idx])
	}
	w.mu.Unlock()

	out = make([]int64, len(qs))
	count = len(live)
	if count == 0 {
		return out, 0
	}
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
	for i, q := range qs {
		switch {
		case q <= 0:
			out[i] = live[0]
		case q >= 1:
			out[i] = live[count-1]
		default:
			out[i] = live[int(q*float64(count-1)+0.5)]
		}
	}
	return out, count
}

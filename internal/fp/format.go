// Package fp implements parameterized binary floating-point formats with all
// five IEEE-754 rounding modes plus round-to-odd.
//
// A Format describes an IEEE-754-style binary interchange format with a
// configurable total width and exponent width. Every value of every format
// supported here is exactly representable as a float64, so format values are
// carried around as float64 and all rounding helpers return float64.
//
// This package is the substrate for the RLibm-ALL insight reproduced in this
// repository: a polynomial that produces the correctly rounded round-to-odd
// result for the (n+2)-bit format yields correctly rounded results for every
// format with E+2..n bits under all five standard rounding modes (Figure 5 of
// the CGO 2023 paper).
package fp

import (
	"fmt"
	"math"
)

// Mode is a rounding mode.
type Mode uint8

const (
	// RNE rounds to nearest, ties to even (the IEEE default).
	RNE Mode = iota
	// RNA rounds to nearest, ties away from zero.
	RNA
	// RTZ rounds toward zero (truncation).
	RTZ
	// RTP rounds toward positive infinity.
	RTP
	// RTN rounds toward negative infinity.
	RTN
	// RTO is round-to-odd: exact values are preserved; inexact values round
	// to the adjacent representable value whose encoding is odd.
	RTO
)

// StandardModes lists the five rounding modes of the IEEE-754 standard.
var StandardModes = []Mode{RNE, RNA, RTZ, RTP, RTN}

// AllModes lists the standard modes plus round-to-odd.
var AllModes = []Mode{RNE, RNA, RTZ, RTP, RTN, RTO}

func (m Mode) String() string {
	switch m {
	case RNE:
		return "rne"
	case RNA:
		return "rna"
	case RTZ:
		return "rtz"
	case RTP:
		return "rtp"
	case RTN:
		return "rtn"
	case RTO:
		return "rto"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Format describes a binary floating-point format with Bits total bits, of
// which 1 is the sign, ExpBits encode the exponent, and the rest encode the
// trailing significand. The format follows IEEE-754 conventions: a biased
// exponent, gradual underflow (subnormals), signed zeros, infinities, and
// NaNs.
type Format struct {
	Bits    int // total width in bits
	ExpBits int // exponent field width in bits
}

// Predefined formats used throughout the repository.
var (
	// Float32 is the IEEE binary32 format.
	Float32 = Format{Bits: 32, ExpBits: 8}
	// FP34 is the 34-bit format with an 8-bit exponent used by RLibm-ALL:
	// two extra significand bits relative to binary32.
	FP34 = Format{Bits: 34, ExpBits: 8}
	// Bfloat16 is Google's brain floating point format.
	Bfloat16 = Format{Bits: 16, ExpBits: 8}
	// TensorFloat32 is NVIDIA's 19-bit TF32 format (8-bit exponent, 10
	// explicit mantissa bits).
	TensorFloat32 = Format{Bits: 19, ExpBits: 8}
	// Float16 is the IEEE binary16 format.
	Float16 = Format{Bits: 16, ExpBits: 5}
)

// Validate reports whether the format is supported by this package: the
// trailing significand must be non-empty, the exponent field must be between
// 2 and 11 bits, and every value must embed exactly into a float64.
func (f Format) Validate() error {
	if f.ExpBits < 2 || f.ExpBits > 11 {
		return fmt.Errorf("fp: exponent width %d out of range [2,11]", f.ExpBits)
	}
	if f.SigBits() < 1 {
		return fmt.Errorf("fp: format %v has no significand bits", f)
	}
	if f.Prec() > 52 {
		return fmt.Errorf("fp: precision %d exceeds the 52-bit limit for exact float64 embedding", f.Prec())
	}
	// The smallest subnormal is 2^(Emin-Prec+1); it must be representable in
	// float64 (whose smallest subnormal is 2^-1074).
	if f.MinExp()-f.Prec()+1 < -1074 {
		return fmt.Errorf("fp: format %v underflows the float64 subnormal range", f)
	}
	return nil
}

func (f Format) String() string {
	return fmt.Sprintf("fp%d_e%d", f.Bits, f.ExpBits)
}

// SigBits returns the number of explicitly stored trailing significand bits.
func (f Format) SigBits() int { return f.Bits - 1 - f.ExpBits }

// Prec returns the precision (significand length including the implicit
// leading bit).
func (f Format) Prec() int { return f.SigBits() + 1 }

// Bias returns the exponent bias.
func (f Format) Bias() int { return 1<<(f.ExpBits-1) - 1 }

// MaxExp returns the largest unbiased exponent of a normal value.
func (f Format) MaxExp() int { return f.Bias() }

// MinExp returns the smallest unbiased exponent of a normal value.
func (f Format) MinExp() int { return 1 - f.Bias() }

// MaxFinite returns the largest finite value of the format.
func (f Format) MaxFinite() float64 {
	return math.Ldexp(float64(uint64(1)<<f.Prec()-1), f.MaxExp()-f.Prec()+1)
}

// MinNormal returns the smallest positive normal value.
func (f Format) MinNormal() float64 { return math.Ldexp(1, f.MinExp()) }

// MinSubnormal returns the smallest positive subnormal value.
func (f Format) MinSubnormal() float64 { return math.Ldexp(1, f.MinExp()-f.Prec()+1) }

// Count returns the total number of bit patterns of the format.
func (f Format) Count() uint64 { return uint64(1) << uint(f.Bits) }

// expMask returns the all-ones biased exponent field value.
func (f Format) expMask() uint64 { return uint64(1)<<uint(f.ExpBits) - 1 }

// sigMask returns the mask of the trailing significand field.
func (f Format) sigMask() uint64 { return uint64(1)<<uint(f.SigBits()) - 1 }

// NaNBits returns the canonical quiet NaN bit pattern of the format.
func (f Format) NaNBits() uint64 {
	return f.expMask()<<uint(f.SigBits()) | uint64(1)<<uint(f.SigBits()-1)
}

// InfBits returns the bit pattern of +infinity (OR with the sign bit for
// -infinity).
func (f Format) InfBits() uint64 { return f.expMask() << uint(f.SigBits()) }

// SignBit returns the sign bit mask.
func (f Format) SignBit() uint64 { return uint64(1) << uint(f.Bits-1) }

// FromBits decodes a bit pattern of the format into the float64 carrying its
// exact value. NaN patterns decode to float64 NaN.
func (f Format) FromBits(b uint64) float64 {
	sign := b&f.SignBit() != 0
	exp := (b >> uint(f.SigBits())) & f.expMask()
	sig := b & f.sigMask()
	var v float64
	switch {
	case exp == f.expMask():
		if sig != 0 {
			return math.NaN()
		}
		v = math.Inf(1)
	case exp == 0:
		v = math.Ldexp(float64(sig), f.MinExp()-f.Prec()+1)
	default:
		v = math.Ldexp(float64(sig|uint64(1)<<uint(f.SigBits())), int(exp)-f.Bias()-f.Prec()+1)
	}
	if sign {
		v = -v
	}
	return v
}

// ToBits encodes a float64 into the format's bit pattern. ok is false when
// the value is finite but not exactly representable in the format. NaN
// encodes to the canonical NaN pattern; infinities and signed zeros encode
// exactly.
func (f Format) ToBits(x float64) (bits uint64, ok bool) {
	switch {
	case math.IsNaN(x):
		return f.NaNBits(), true
	case math.IsInf(x, 1):
		return f.InfBits(), true
	case math.IsInf(x, -1):
		return f.InfBits() | f.SignBit(), true
	case x == 0:
		if math.Signbit(x) {
			return f.SignBit(), true
		}
		return 0, true
	}
	var sign uint64
	a := x
	if a < 0 {
		sign = f.SignBit()
		a = -a
	}
	if a > f.MaxFinite() {
		return 0, false
	}
	e := math.Ilogb(a)
	if e >= f.MinExp() {
		// Normal candidate: significand in [2^(P-1), 2^P).
		sig := math.Ldexp(a, f.Prec()-1-e)
		if sig != math.Trunc(sig) {
			return 0, false
		}
		m := uint64(sig)
		return sign | uint64(e+f.Bias())<<uint(f.SigBits()) | (m &^ (uint64(1) << uint(f.SigBits()))), true
	}
	// Subnormal candidate.
	sig := math.Ldexp(a, f.Prec()-1-f.MinExp())
	if sig != math.Trunc(sig) || sig >= math.Ldexp(1, f.SigBits()) {
		return 0, false
	}
	return sign | uint64(sig), true
}

// IsRepresentable reports whether x (including infinities and NaN) is exactly
// representable in the format.
func (f Format) IsRepresentable(x float64) bool {
	_, ok := f.ToBits(x)
	return ok
}

// ordKey maps a non-NaN bit pattern to a monotonically ordered integer so
// that consecutive keys correspond to adjacent format values.
func (f Format) ordKey(b uint64) int64 {
	if b&f.SignBit() != 0 {
		return -int64(b &^ f.SignBit())
	}
	return int64(b)
}

// fromOrdKey is the inverse of ordKey.
func (f Format) fromOrdKey(k int64) uint64 {
	if k < 0 {
		return uint64(-k) | f.SignBit()
	}
	return uint64(k)
}

// NextUp returns the smallest format value strictly greater than x.
// NextUp(MaxFinite) is +Inf; NextUp(+Inf) is +Inf; NaN propagates.
// By IEEE-754 convention NextUp(-MinSubnormal) is -0 and NextUp(-0) ==
// NextUp(+0) == MinSubnormal.
func (f Format) NextUp(x float64) float64 {
	switch {
	case math.IsNaN(x):
		return x
	case math.IsInf(x, 1):
		return x
	case x == 0:
		return f.MinSubnormal()
	}
	b, ok := f.ToBits(x)
	if !ok {
		panic(fmt.Sprintf("fp: NextUp of %g, not representable in %v", x, f))
	}
	k := f.ordKey(b) + 1
	if k == 0 {
		return math.Copysign(0, -1) // from -MinSubnormal to -0
	}
	return f.FromBits(f.fromOrdKey(k))
}

// NextDown returns the largest format value strictly less than x, with
// conventions symmetric to NextUp.
func (f Format) NextDown(x float64) float64 {
	return -f.NextUp(-x)
}

// Values calls yield for every value of the format in bit-pattern order
// (all non-negative patterns then all negative patterns), including ±0,
// ±Inf and NaN patterns. Iteration stops early if yield returns false.
func (f Format) Values(yield func(bits uint64, v float64) bool) {
	n := f.Count()
	for b := uint64(0); b < n; b++ {
		if !yield(b, f.FromBits(b)) {
			return
		}
	}
}

// FiniteValues calls yield for every finite value of the format in
// bit-pattern order. Iteration stops early if yield returns false.
func (f Format) FiniteValues(yield func(bits uint64, v float64) bool) {
	f.Values(func(b uint64, v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		return yield(b, v)
	})
}

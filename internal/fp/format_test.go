package fp

import (
	"math"
	"math/rand"
	"testing"
)

func TestValidatePredefined(t *testing.T) {
	for _, f := range []Format{Float32, FP34, Bfloat16, TensorFloat32, Float16} {
		if err := f.Validate(); err != nil {
			t.Errorf("%v: %v", f, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []Format{
		{Bits: 4, ExpBits: 1},   // exponent too narrow
		{Bits: 14, ExpBits: 13}, // no significand
		{Bits: 64, ExpBits: 11}, // precision 53 > 52
		{Bits: 60, ExpBits: 2},  // precision too wide
	}
	for _, f := range cases {
		if err := f.Validate(); err == nil {
			t.Errorf("%v: expected validation error", f)
		}
	}
}

func TestFormatParameters(t *testing.T) {
	if got := Float32.Prec(); got != 24 {
		t.Errorf("float32 precision = %d, want 24", got)
	}
	if got := FP34.Prec(); got != 26 {
		t.Errorf("fp34 precision = %d, want 26", got)
	}
	if got := Float32.Bias(); got != 127 {
		t.Errorf("float32 bias = %d, want 127", got)
	}
	if got := Float32.MaxFinite(); got != math.MaxFloat32 {
		t.Errorf("float32 max = %g, want %g", got, math.MaxFloat32)
	}
	if got := Float32.MinSubnormal(); got != math.SmallestNonzeroFloat32 {
		t.Errorf("float32 min subnormal = %g, want %g", got, math.SmallestNonzeroFloat32)
	}
	if got := Float16.MaxFinite(); got != 65504 {
		t.Errorf("float16 max = %g, want 65504", got)
	}
	if got := Bfloat16.Prec(); got != 8 {
		t.Errorf("bfloat16 precision = %d, want 8", got)
	}
	if got := TensorFloat32.Prec(); got != 11 {
		t.Errorf("tf32 precision = %d, want 11", got)
	}
}

// TestBitsRoundTrip decodes every bit pattern of a few small formats and
// re-encodes it, checking the round trip and representability.
func TestBitsRoundTrip(t *testing.T) {
	for _, f := range []Format{{Bits: 10, ExpBits: 4}, Float16, {Bits: 12, ExpBits: 5}} {
		f.Values(func(b uint64, v float64) bool {
			got, ok := f.ToBits(v)
			if !ok {
				t.Fatalf("%v: pattern %#x decodes to %g which ToBits rejects", f, b, v)
			}
			if math.IsNaN(v) {
				if got != f.NaNBits() {
					t.Fatalf("%v: NaN pattern %#x re-encodes to %#x", f, b, got)
				}
				return true
			}
			if got != b {
				// -0 and +0 and NaN aside, the round trip must be exact.
				t.Fatalf("%v: pattern %#x -> %g -> %#x", f, b, v, got)
			}
			return true
		})
	}
}

func TestToBitsRejectsUnrepresentable(t *testing.T) {
	f := Float16
	for _, x := range []float64{1 + 1e-9, math.Pi, 65504 * 2, 1e-30, math.Ldexp(1, -25)} {
		if _, ok := f.ToBits(x); ok {
			t.Errorf("ToBits(%g) unexpectedly representable in %v", x, f)
		}
	}
	for _, x := range []float64{1, 1.5, 65504, math.Ldexp(1, -24), -2048} {
		if _, ok := f.ToBits(x); !ok {
			t.Errorf("ToBits(%g) should be representable in %v", x, f)
		}
	}
}

func TestNextUpDownSmallFormat(t *testing.T) {
	f := Format{Bits: 10, ExpBits: 4}
	// Collect all finite values in ascending order via ordKey iteration.
	var asc []float64
	for k := -f.ordKey(f.InfBits() | f.SignBit()); ; k++ {
		b := f.fromOrdKey(k)
		v := f.FromBits(b)
		if math.IsInf(v, 0) || math.IsNaN(v) {
			if math.IsInf(v, 1) {
				break
			}
			continue
		}
		asc = append(asc, v)
	}
	for i := 0; i+1 < len(asc); i++ {
		lo, hi := asc[i], asc[i+1]
		if lo == 0 && hi == 0 {
			continue // -0 followed by +0
		}
		got := f.NextUp(lo)
		want := hi
		// Skip over the -0/+0 double step.
		if lo != 0 && want == 0 && math.Signbit(want) {
			want = math.Copysign(0, -1)
		}
		if got != want && !(got == 0 && want == 0) {
			t.Fatalf("NextUp(%g) = %g, want %g", lo, got, want)
		}
		down := f.NextDown(hi)
		if hi != 0 && down != lo && !(down == 0 && lo == 0) {
			t.Fatalf("NextDown(%g) = %g, want %g", hi, down, lo)
		}
	}
	if got := f.NextUp(f.MaxFinite()); !math.IsInf(got, 1) {
		t.Errorf("NextUp(max) = %g, want +Inf", got)
	}
	if got := f.NextUp(0); got != f.MinSubnormal() {
		t.Errorf("NextUp(0) = %g, want %g", got, f.MinSubnormal())
	}
	if got := f.NextDown(0); got != -f.MinSubnormal() {
		t.Errorf("NextDown(0) = %g, want %g", got, -f.MinSubnormal())
	}
}

func TestRoundExactValuesFixed(t *testing.T) {
	// Rounding a value already in the format is the identity for every mode.
	f := Float16
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		b := uint64(rng.Intn(int(f.Count())))
		v := f.FromBits(b)
		if math.IsNaN(v) {
			continue
		}
		for _, m := range AllModes {
			if got := f.Round(v, m); got != v && !(got == 0 && v == 0) {
				t.Fatalf("Round(%g, %v) = %g, want identity", v, m, got)
			}
		}
	}
}

// TestRoundAgainstRatReference cross-checks the fast float64 rounding path
// against the exact rational reference on random inputs spanning normals,
// subnormals and overflow territory.
func TestRoundAgainstRatReference(t *testing.T) {
	formats := []Format{Float16, Bfloat16, TensorFloat32, {Bits: 10, ExpBits: 4}, {Bits: 20, ExpBits: 6}, Float32, FP34}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		f := formats[rng.Intn(len(formats))]
		x := randomFloat64(rng, f)
		m := AllModes[rng.Intn(len(AllModes))]
		got := f.Round(x, m)
		want := f.RoundRat(ratFromFloat(x), m)
		if !sameFloat(got, want) {
			t.Fatalf("%v: Round(%x=%g, %v) = %g, reference %g", f, math.Float64bits(x), x, m, got, want)
		}
	}
}

func TestRoundDirectedOrdering(t *testing.T) {
	// RTN result <= RTZ-magnitude result <= value <= RTP result, and the
	// nearest results sit between the directed ones.
	f := Bfloat16
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		x := randomFloat64(rng, f)
		if math.IsInf(x, 0) || math.IsNaN(x) {
			continue
		}
		dn, up := f.Round(x, RTN), f.Round(x, RTP)
		if !(dn <= x && x <= up) {
			t.Fatalf("directed rounding disordered: %g not in [%g,%g]", x, dn, up)
		}
		for _, m := range []Mode{RNE, RNA, RTZ, RTO} {
			r := f.Round(x, m)
			if !(dn <= r && r <= up) {
				t.Fatalf("Round(%g,%v)=%g outside [%g,%g]", x, m, r, dn, up)
			}
		}
		// Nearest modes pick one of the two neighbours, whichever is closer.
		// (Skip the overflow boundary, where the upper neighbour is +-Inf
		// and the midpoint arithmetic below is meaningless.)
		if up != dn && !math.IsInf(up, 0) && !math.IsInf(dn, 0) {
			mid := (up + dn) / 2 // exact: adjacent format values differ by a power of two times <=2^prec
			rne := f.Round(x, RNE)
			if x < mid && rne != dn || x > mid && rne != up {
				t.Fatalf("RNE(%g) = %g with neighbours [%g,%g]", x, rne, dn, up)
			}
		}
	}
}

func TestRoundOverflowAllModes(t *testing.T) {
	f := Float16
	max := f.MaxFinite() // 65504
	big := 1e9
	tests := []struct {
		x    float64
		m    Mode
		want float64
	}{
		{big, RNE, math.Inf(1)},
		{big, RNA, math.Inf(1)},
		{big, RTZ, max},
		{big, RTP, math.Inf(1)},
		{big, RTN, max},
		{big, RTO, max},
		{-big, RNE, math.Inf(-1)},
		{-big, RTZ, -max},
		{-big, RTP, -max},
		{-big, RTN, math.Inf(-1)},
		{-big, RTO, -max},
		{65519, RNE, max},          // just below the overflow threshold 65520
		{65520, RNE, math.Inf(1)},  // exactly at the threshold: ties to even overflows
		{65520, RNA, math.Inf(1)},  //
		{65519.999, RTZ, max},      //
		{65536, RTO, max},          // 2^16 is even in the extended sense
		{65504.0001, RTO, max + 0}, // saturates at max
	}
	for _, tc := range tests {
		if got := f.Round(tc.x, tc.m); !sameFloat(got, tc.want) {
			t.Errorf("Round(%g, %v) = %g, want %g", tc.x, tc.m, got, tc.want)
		}
	}
}

func TestRoundUnderflowToZeroAndMinSub(t *testing.T) {
	f := Float16
	tiny := f.MinSubnormal() / 4
	if got := f.Round(tiny, RNE); got != 0 || math.Signbit(got) {
		t.Errorf("RNE(tiny) = %g, want +0", got)
	}
	if got := f.Round(tiny, RTP); got != f.MinSubnormal() {
		t.Errorf("RTP(tiny) = %g, want min subnormal", got)
	}
	if got := f.Round(-tiny, RTP); got != 0 || !math.Signbit(got) {
		t.Errorf("RTP(-tiny) = %g, want -0", got)
	}
	if got := f.Round(-tiny, RTN); got != -f.MinSubnormal() {
		t.Errorf("RTN(-tiny) = %g, want -min subnormal", got)
	}
	// Round-to-odd never flushes a nonzero value to zero: the zero encoding
	// is even, so the smallest subnormal (odd) is chosen instead.
	if got := f.Round(tiny, RTO); got != f.MinSubnormal() {
		t.Errorf("RTO(tiny) = %g, want min subnormal", got)
	}
	if got := f.Round(-tiny, RTO); got != -f.MinSubnormal() {
		t.Errorf("RTO(-tiny) = %g, want -min subnormal", got)
	}
	// Halfway between 0 and the min subnormal, ties-to-even flushes to zero.
	half := f.MinSubnormal() / 2
	if got := f.Round(half, RNE); got != 0 {
		t.Errorf("RNE(minsub/2) = %g, want 0", got)
	}
	if got := f.Round(half, RNA); got != f.MinSubnormal() {
		t.Errorf("RNA(minsub/2) = %g, want min subnormal", got)
	}
}

func TestRoundSpecials(t *testing.T) {
	f := Float16
	for _, m := range AllModes {
		if got := f.Round(math.NaN(), m); !math.IsNaN(got) {
			t.Errorf("Round(NaN,%v) = %g", m, got)
		}
		if got := f.Round(math.Inf(1), m); !math.IsInf(got, 1) {
			t.Errorf("Round(+Inf,%v) = %g", m, got)
		}
		if got := f.Round(math.Inf(-1), m); !math.IsInf(got, -1) {
			t.Errorf("Round(-Inf,%v) = %g", m, got)
		}
		if got := f.Round(0, m); got != 0 || math.Signbit(got) {
			t.Errorf("Round(+0,%v) = %g", m, got)
		}
		if got := f.Round(math.Copysign(0, -1), m); got != 0 || !math.Signbit(got) {
			t.Errorf("Round(-0,%v) = %g", m, got)
		}
	}
}

// sameFloat compares float64s treating NaN==NaN and distinguishing the sign
// of zero.
func sameFloat(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// randomFloat64 draws float64 values concentrated around the interesting
// ranges of format f: normals, subnormals, binade boundaries and overflow.
func randomFloat64(rng *rand.Rand, f Format) float64 {
	switch rng.Intn(6) {
	case 0: // arbitrary bit pattern within double range of the format
		e := rng.Intn(f.MaxExp()-f.MinExp()+8) + f.MinExp() - 4
		m := 1 + rng.Float64()
		return math.Copysign(math.Ldexp(m, e), float64(rng.Intn(2)*2-1))
	case 1: // around the subnormal threshold
		return math.Copysign(f.MinNormal()*(0.5+rng.Float64()), float64(rng.Intn(2)*2-1))
	case 2: // deep subnormal
		return math.Copysign(f.MinSubnormal()*rng.Float64()*4, float64(rng.Intn(2)*2-1))
	case 3: // near overflow
		return math.Copysign(f.MaxFinite()*(0.9+0.2*rng.Float64()), float64(rng.Intn(2)*2-1))
	case 4: // exact format value plus a tiny dither
		b := uint64(rng.Intn(int(f.Count())))
		v := f.FromBits(b)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return rng.Float64()
		}
		return math.Nextafter(v, v+math.Copysign(1, v))
	default: // plain uniform
		return math.Copysign(rng.Float64()*10, float64(rng.Intn(2)*2-1))
	}
}

package fp

import (
	"math"
)

// Round rounds the float64 value x to the format under rounding mode m and
// returns the result as a float64 (which carries the format value exactly,
// or ±Inf on overflow). This is the fast bit-manipulation path used on the
// hot side of the pipeline; RoundRat is the exact arbitrary-precision
// reference.
//
// Rounding is exact: the float64 input is treated as the precise real value
// it encodes. NaN rounds to NaN; signed zeros and infinities are preserved.
func (f Format) Round(x float64, m Mode) float64 {
	switch {
	case math.IsNaN(x) || math.IsInf(x, 0) || x == 0:
		return x
	}
	neg := math.Signbit(x)
	a := math.Abs(x)

	if over, res := f.roundOverflow(a, neg, m); over {
		return res
	}

	// Decompose a = M * 2^k exactly with M a positive integer < 2^53.
	bits := math.Float64bits(a)
	fexp := int(bits>>52) & 0x7FF
	frac := bits & (1<<52 - 1)
	var mnt uint64
	var k int
	if fexp == 0 {
		mnt, k = frac, -1074
	} else {
		mnt, k = frac|1<<52, fexp-1075
	}

	// Granularity of the target format around a.
	e2 := math.Ilogb(a)
	lsb := e2 - f.Prec() + 1
	if e2 < f.MinExp() {
		lsb = f.MinExp() - f.Prec() + 1 // fixed subnormal granularity
	}

	shift := lsb - k
	if shift <= 0 {
		return x // already on the target grid
	}

	var q, roundBit uint64
	var sticky bool
	if shift > 53 {
		// The value is entirely below the rounding position.
		q, roundBit, sticky = 0, 0, mnt != 0
	} else {
		q = mnt >> uint(shift)
		roundBit = (mnt >> uint(shift-1)) & 1
		sticky = mnt&(uint64(1)<<uint(shift-1)-1) != 0
	}

	inexact := roundBit == 1 || sticky
	var inc bool
	switch m {
	case RNE:
		inc = roundBit == 1 && (sticky || q&1 == 1)
	case RNA:
		inc = roundBit == 1
	case RTZ:
		inc = false
	case RTP:
		inc = !neg && inexact
	case RTN:
		inc = neg && inexact
	case RTO:
		inc = inexact && q&1 == 0
	}
	if inc {
		q++
	}
	res := math.Ldexp(float64(q), lsb)
	if res > f.MaxFinite() {
		res = math.Inf(1) // carry past the largest binade
	}
	if neg {
		res = -res
	}
	if res == 0 {
		return math.Copysign(0, x)
	}
	return res
}

// roundOverflow handles |x| beyond the format's finite range. It returns
// over=false when a is within range and ordinary rounding should proceed.
func (f Format) roundOverflow(a float64, neg bool, m Mode) (over bool, res float64) {
	max := f.MaxFinite()
	if a <= max {
		return false, 0
	}
	// Threshold at which round-to-nearest overflows: halfway between
	// MaxFinite and the next (unrepresentable) binade value 2^(MaxExp+1).
	// Both are exact in float64 because Prec <= 52.
	thresh := math.Ldexp(float64(uint64(1)<<(f.Prec()+1)-1), f.MaxExp()-f.Prec())
	var r float64
	switch m {
	case RNE, RNA:
		if a >= thresh {
			r = math.Inf(1)
		} else {
			r = max
		}
	case RTZ:
		r = max
	case RTP:
		if neg {
			r = max
		} else {
			r = math.Inf(1)
		}
	case RTN:
		if neg {
			r = math.Inf(1)
		} else {
			r = max
		}
	case RTO:
		// MaxFinite has an all-ones (odd) significand; infinity's encoding
		// is even, so round-to-odd saturates at MaxFinite.
		r = max
	}
	if neg {
		r = -r
	}
	return true, r
}

package fp

import (
	"math"
	"testing"
)

// FuzzRoundOddAgreement fuzzes the round-to-odd theorem (Section 2 of the
// paper) over exact doubles: rounding x to a (w+2)-bit format under
// round-to-odd and then to the w-bit format under any standard mode must
// agree with rounding x to w bits directly — that is the property that lets
// one 34-bit oracle result serve every narrower format. The fuzzer also
// cross-checks the fast float64 rounding path against the exact rational
// reference on every probe, for both the final and the intermediate format.
func FuzzRoundOddAgreement(f *testing.F) {
	f.Add(math.Float64bits(1.0), uint8(0), uint8(0))
	f.Add(math.Float64bits(1.5), uint8(6), uint8(1))
	f.Add(math.Float64bits(0x1.ffffffp+127), uint8(22), uint8(3)) // MaxFinite of binary32
	f.Add(math.Float64bits(0x1p-149), uint8(22), uint8(4))        // binary32 MinSubnormal
	f.Add(math.Float64bits(-0x1.000002p-126), uint8(14), uint8(2))
	f.Add(math.Float64bits(0x1.0000010000001p+0), uint8(12), uint8(0)) // just above a binade tie
	f.Fuzz(func(t *testing.T, xbits uint64, wSel, mSel uint8) {
		x := math.Float64frombits(xbits)
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Skip()
		}
		w := 10 + int(wSel)%23 // final widths 10..32, the RLibm-ALL range
		narrow := Format{Bits: w, ExpBits: 8}
		wide := Format{Bits: w + 2, ExpBits: 8}
		m := StandardModes[int(mSel)%len(StandardModes)]

		ro := wide.Round(x, RTO)
		direct := narrow.Round(x, m)
		double := narrow.Round(ro, m)
		if !sameFloat(direct, double) {
			t.Fatalf("theorem violated: x=%g (%#x) w=%d mode=%v: direct %g, through RO(%d) %g",
				x, xbits, w, m, direct, w+2, double)
		}

		r := ratFromFloat(x)
		if want := narrow.RoundRat(r, m); !sameFloat(direct, want) {
			t.Fatalf("%v.Round(%g, %v) = %g, rational reference %g", narrow, x, m, direct, want)
		}
		if want := wide.RoundRat(r, RTO); !sameFloat(ro, want) {
			t.Fatalf("%v.Round(%g, rto) = %g, rational reference %g", wide, x, ro, want)
		}
	})
}

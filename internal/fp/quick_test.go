package fp

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

// TestRoundMonotoneQuick: rounding is monotone non-decreasing in the value,
// for every mode — a property the inverse-output-compensation search in the
// pipeline depends on.
func TestRoundMonotoneQuick(t *testing.T) {
	f := Format{Bits: 13, ExpBits: 5}
	prop := func(aBits, bBits uint32, mSel uint8) bool {
		a := float64(math.Float32frombits(aBits))
		b := float64(math.Float32frombits(bBits))
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		m := AllModes[int(mSel)%len(AllModes)]
		return f.Round(a, m) <= f.Round(b, m)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8000}); err != nil {
		t.Error(err)
	}
}

// TestRoundIdempotentQuick: rounding twice equals rounding once.
func TestRoundIdempotentQuick(t *testing.T) {
	f := Bfloat16
	prop := func(bits uint32, mSel uint8) bool {
		x := float64(math.Float32frombits(bits))
		if math.IsNaN(x) {
			return true
		}
		m := AllModes[int(mSel)%len(AllModes)]
		once := f.Round(x, m)
		twice := f.Round(once, m)
		return math.Float64bits(once) == math.Float64bits(twice)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8000}); err != nil {
		t.Error(err)
	}
}

// TestRoundBracketsQuick: the rounded value is one of the two neighbouring
// format values of x (or x itself).
func TestRoundBracketsQuick(t *testing.T) {
	f := Float16
	prop := func(bits uint32, mSel uint8) bool {
		x := float64(math.Float32frombits(bits))
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		if math.Abs(x) > f.MaxFinite() {
			return true // overflow behaviour covered elsewhere
		}
		m := AllModes[int(mSel)%len(AllModes)]
		r := f.Round(x, m)
		dn, up := f.Round(x, RTN), f.Round(x, RTP)
		return dn <= r && r <= up
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8000}); err != nil {
		t.Error(err)
	}
}

// TestRoundBigFloatAgreesQuick: the fast big.Float rounding path agrees with
// the exact big.Rat reference.
func TestRoundBigFloatAgreesQuick(t *testing.T) {
	f := Format{Bits: 16, ExpBits: 6}
	prop := func(num int64, shift uint8, mSel uint8) bool {
		if num == 0 {
			return true
		}
		m := AllModes[int(mSel)%len(AllModes)]
		// Value num * 2^(shift-32): exercises shifts across binades.
		bf := newBigFromInt(num, int(shift)-32)
		rat := ratFromBig(bf)
		return sameFloat(f.RoundBigFloat(bf, m), f.RoundRat(rat, m))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 6000}); err != nil {
		t.Error(err)
	}
}

// helpers for the quick tests

func newBigFromInt(num int64, exp int) *big.Float {
	f := new(big.Float).SetPrec(128).SetInt64(num)
	f.SetMantExp(f, exp)
	return f
}

func ratFromBig(f *big.Float) *big.Rat {
	r, _ := f.Rat(nil)
	return r
}

package fp

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func ratFromFloat(x float64) *big.Rat {
	r := new(big.Rat)
	r.SetFloat64(x)
	return r
}

// TestRoundToOddExactPreserved: exactly representable values are unchanged
// by round-to-odd (Figure 4, first half).
func TestRoundToOddExactPreserved(t *testing.T) {
	f := Float16
	f.FiniteValues(func(b uint64, v float64) bool {
		if got := f.Round(v, RTO); !sameFloat(got, v) {
			t.Fatalf("RTO(%g) = %g, want identity", v, got)
		}
		return true
	})
}

// TestRoundToOddPicksOddNeighbor: an inexact value rounds to whichever of
// its two neighbours has an odd encoding (Figure 4, second half).
func TestRoundToOddPicksOddNeighbor(t *testing.T) {
	f := Bfloat16
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		x := randomFloat64(rng, f)
		if math.IsNaN(x) || math.IsInf(x, 0) || f.IsRepresentable(x) {
			continue
		}
		got := f.Round(x, RTO)
		lo, hi := f.Round(x, RTN), f.Round(x, RTP)
		if got != lo && got != hi {
			t.Fatalf("RTO(%g)=%g is not a neighbour (%g,%g)", x, got, lo, hi)
		}
		bits, ok := f.ToBits(got)
		if !ok {
			t.Fatalf("RTO produced non-representable %g", got)
		}
		if math.IsInf(got, 0) {
			t.Fatalf("RTO overflowed to %g for %g", got, x)
		}
		if bits&1 != 1 {
			t.Fatalf("RTO(%g) = %g has even encoding %#x", x, got, bits)
		}
	}
}

// TestRoundToOddDoubleRoundingTheorem is the Figure 5 property: rounding a
// real value to the (n+2)-bit format with round-to-odd and then rounding
// that result to any k-bit format (E+2 <= k <= n) under any standard mode
// equals rounding the real value directly.
func TestRoundToOddDoubleRoundingTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, E = 32, 8
	wide := Format{Bits: n + 2, ExpBits: E}
	for i := 0; i < 30000; i++ {
		v := randomRat(rng)
		ro := wide.RoundRat(v, RTO)
		k := E + 2 + rng.Intn(n-(E+2)+1)
		target := Format{Bits: k, ExpBits: E}
		m := StandardModes[rng.Intn(len(StandardModes))]
		direct := target.RoundRat(v, m)
		double := target.Round(ro, m)
		if !sameFloat(direct, double) {
			t.Fatalf("theorem violated: v=%s k=%d mode=%v direct=%g double=%g (ro=%g)",
				v.RatString(), k, m, direct, double, ro)
		}
	}
}

// TestRoundToOddTheoremQuick re-states the theorem as a testing/quick
// property over machine-generated rationals.
func TestRoundToOddTheoremQuick(t *testing.T) {
	wide := Format{Bits: 22, ExpBits: 6}
	prop := func(num int64, den uint32, kSel uint8, mSel uint8) bool {
		if den == 0 {
			return true
		}
		v := new(big.Rat).SetFrac64(num, int64(den))
		ro := wide.RoundRat(v, RTO)
		k := 8 + int(kSel)%(20-8+1)
		target := Format{Bits: k, ExpBits: 6}
		m := StandardModes[int(mSel)%len(StandardModes)]
		return sameFloat(target.RoundRat(v, m), target.Round(ro, m))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

// TestDoubleRoundingFailureRN reproduces Figure 3: double rounding through
// the wider format with round-to-nearest (instead of round-to-odd) gives a
// wrong result for values just past a rounding boundary.
func TestDoubleRoundingFailureRN(t *testing.T) {
	wide := FP34
	target := Float32

	// y is a float32 value with an even significand; mid is the midpoint
	// between y and its float32 successor (exactly representable in FP34).
	y := 1.0
	succ := target.NextUp(y)
	mid := (y + succ) / 2

	// v lies just above mid: closer to mid than to mid's FP34 successor, so
	// FP34-RNE collapses v onto the midpoint, and the subsequent
	// float32-RNE tie resolves to even (y) — but direct rounding gives succ.
	v := new(big.Rat).SetFloat64(mid)
	eps := new(big.Rat).SetFrac64(1, 1<<40)
	v.Add(v, eps)

	direct := target.RoundRat(v, RNE)
	viaRN := target.Round(wide.RoundRat(v, RNE), RNE)
	viaRO := target.Round(wide.RoundRat(v, RTO), RNE)

	if direct != succ {
		t.Fatalf("test construction broken: direct = %g, want %g", direct, succ)
	}
	if viaRN == direct {
		t.Fatalf("expected a double-rounding failure with RNE, got agreement at %g", viaRN)
	}
	if viaRO != direct {
		t.Fatalf("round-to-odd path must agree with direct rounding: got %g, want %g", viaRO, direct)
	}
}

// TestRoundStickyInformation checks that round-to-odd in the wider format
// retains the round bit and sticky bit of the original value (the intuition
// in Figure 5): the wide RO result is exact iff the original value was
// exactly representable in the wide format.
func TestRoundStickyInformation(t *testing.T) {
	wide := Format{Bits: 14, ExpBits: 5}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 4000; i++ {
		v := randomRat(rng)
		ro := wide.RoundRat(v, RTO)
		if math.IsInf(ro, 0) {
			continue
		}
		exact := new(big.Rat).SetFloat64(ro).Cmp(v) == 0
		bits, ok := wide.ToBits(ro)
		if !ok {
			t.Fatalf("RO result %g not representable", ro)
		}
		if !exact && bits&1 == 0 && ro != 0 {
			t.Fatalf("inexact RO result has even encoding: v=%s ro=%g", v.RatString(), ro)
		}
	}
}

// randomRat draws rational values spanning several binades around 1, with a
// bias toward values near format grid points where rounding is delicate.
func randomRat(rng *rand.Rand) *big.Rat {
	r := new(big.Rat)
	switch rng.Intn(3) {
	case 0:
		// A float64 value: exercises exact-grid behaviour.
		r.SetFloat64(math.Ldexp(1+rng.Float64(), rng.Intn(60)-30))
	case 1:
		// num/den with moderate bit lengths.
		num := rng.Int63n(1<<40) + 1
		den := rng.Int63n(1<<20) + 1
		r.SetFrac64(num, den)
	default:
		// A format value plus a tiny rational offset: straddles boundaries.
		f := Format{Bits: 20, ExpBits: 6}
		v := f.FromBits(uint64(rng.Intn(int(f.Count() / 2)))) // non-negative patterns
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 1.5
		}
		r.SetFloat64(v)
		off := new(big.Rat).SetFrac64(rng.Int63n(1<<20)-1<<19, 1)
		off.Mul(off, new(big.Rat).SetFrac64(1, 1<<40))
		r.Add(r, off)
	}
	if rng.Intn(2) == 0 {
		r.Neg(r)
	}
	return r
}

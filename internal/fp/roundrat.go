package fp

import (
	"math"
	"math/big"
)

// RoundRat rounds the exact rational value r to the format under mode m.
// It is the arbitrary-precision reference for Round and the entry point used
// by the oracle, which produces values far more precise than a float64.
func (f Format) RoundRat(r *big.Rat, m Mode) float64 {
	sign := r.Sign()
	if sign == 0 {
		return 0
	}
	neg := sign < 0
	a := new(big.Rat).Abs(r)

	maxRat := new(big.Rat).SetFloat64(f.MaxFinite())
	if a.Cmp(maxRat) > 0 {
		_, res := f.roundOverflowRat(a, neg, m)
		return res
	}

	// e2 = floor(log2(a)).
	e2 := ratILog2(a)
	lsb := e2 - f.Prec() + 1
	if e2 < f.MinExp() {
		lsb = f.MinExp() - f.Prec() + 1
	}

	// q = floor(a / 2^lsb), with exact remainder information.
	num := new(big.Int).Set(a.Num())
	den := new(big.Int).Set(a.Denom())
	if lsb >= 0 {
		den.Lsh(den, uint(lsb))
	} else {
		num.Lsh(num, uint(-lsb))
	}
	q, rem := new(big.Int).QuoRem(num, den, new(big.Int))

	inexact := rem.Sign() != 0
	var inc bool
	switch m {
	case RNE, RNA:
		twice := new(big.Int).Lsh(rem, 1)
		switch twice.Cmp(den) {
		case 1:
			inc = true
		case 0:
			if m == RNA {
				inc = true
			} else {
				inc = q.Bit(0) == 1
			}
		}
	case RTZ:
		inc = false
	case RTP:
		inc = !neg && inexact
	case RTN:
		inc = neg && inexact
	case RTO:
		inc = inexact && q.Bit(0) == 0
	}
	if inc {
		q.Add(q, big.NewInt(1))
	}
	res := math.Ldexp(float64(q.Uint64()), lsb)
	if res > f.MaxFinite() {
		res = math.Inf(1)
	}
	if neg {
		res = -res
	}
	if res == 0 {
		return math.Copysign(0, -1*boolToF(neg))
	}
	return res
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return -1
}

// roundOverflowRat mirrors roundOverflow for exact rational magnitudes.
func (f Format) roundOverflowRat(a *big.Rat, neg bool, m Mode) (over bool, res float64) {
	max := f.MaxFinite()
	thresh := new(big.Rat).SetFloat64(math.Ldexp(float64(uint64(1)<<(f.Prec()+1)-1), f.MaxExp()-f.Prec()))
	var r float64
	switch m {
	case RNE, RNA:
		if a.Cmp(thresh) >= 0 {
			r = math.Inf(1)
		} else {
			r = max
		}
	case RTZ, RTO:
		r = max
	case RTP:
		if neg {
			r = max
		} else {
			r = math.Inf(1)
		}
	case RTN:
		if neg {
			r = math.Inf(1)
		} else {
			r = max
		}
	}
	if neg {
		r = -r
	}
	return true, r
}

// RoundBigFloat rounds a finite big.Float to the format under mode m.
// Infinite inputs map to the correspondingly signed infinity.
//
// This is the oracle's hot path, so it avoids big.Rat (whose normalization
// does GCDs) and works on the exact integer significand instead.
func (f Format) RoundBigFloat(x *big.Float, m Mode) float64 {
	if x.IsInf() {
		return math.Inf(x.Sign())
	}
	sign := x.Sign()
	if sign == 0 {
		return 0
	}
	neg := sign < 0

	// x = M * 2^(e-p) exactly, with M an integer of p = x.Prec() bits.
	p := int(x.Prec())
	e := x.MantExp(nil)
	t := new(big.Float).SetMantExp(x, p-e) // integer-valued
	M, acc := t.Int(nil)
	if acc != big.Exact {
		panic("fp: RoundBigFloat lost precision extracting the significand")
	}
	if neg {
		M.Neg(M)
	}
	k := e - p // x = M * 2^k, M > 0

	// Magnitude checks against the finite range.
	e2 := M.BitLen() - 1 + k // floor(log2 |x|)
	if e2 > f.MaxExp() {
		// Could still round down to MaxFinite; fall through with exact
		// handling via the generic quantization when near the edge.
		if e2 > f.MaxExp()+1 {
			_, res := f.roundOverflowBig(neg, m)
			return res
		}
	}
	lsb := e2 - f.Prec() + 1
	if e2 < f.MinExp() {
		lsb = f.MinExp() - f.Prec() + 1
	}
	shift := lsb - k
	var q *big.Int
	var inexact bool
	var roundUp bool
	if shift <= 0 {
		q = new(big.Int).Lsh(M, uint(-shift))
	} else {
		q = new(big.Int).Rsh(M, uint(shift))
		roundBit := M.Bit(shift-1) == 1
		// The sticky bit ORs everything below the round bit; M > 0 so the
		// trailing-zero count answers it in one scan.
		sticky := int(M.TrailingZeroBits()) < shift-1
		inexact = roundBit || sticky
		switch m {
		case RNE:
			roundUp = roundBit && (sticky || q.Bit(0) == 1)
		case RNA:
			roundUp = roundBit
		case RTZ:
		case RTP:
			roundUp = !neg && inexact
		case RTN:
			roundUp = neg && inexact
		case RTO:
			roundUp = inexact && q.Bit(0) == 0
		}
	}
	if roundUp {
		q.Add(q, big.NewInt(1))
	}
	if q.BitLen() > 53 {
		// Far overflow after quantization.
		_, res := f.roundOverflowBig(neg, m)
		return res
	}
	res := math.Ldexp(float64(q.Uint64()), lsb)
	if res > f.MaxFinite() {
		_, res2 := f.roundOverflowBig(neg, m)
		return res2
	}
	if neg {
		res = -res
	}
	if res == 0 {
		if neg {
			return math.Copysign(0, -1)
		}
		return 0
	}
	return res
}

// roundOverflowBig mirrors roundOverflow for values known to be beyond the
// overflow threshold in magnitude.
func (f Format) roundOverflowBig(neg bool, m Mode) (bool, float64) {
	var r float64
	switch m {
	case RNE, RNA:
		r = math.Inf(1)
	case RTZ, RTO:
		r = f.MaxFinite()
	case RTP:
		if neg {
			r = f.MaxFinite()
		} else {
			r = math.Inf(1)
		}
	case RTN:
		if neg {
			r = math.Inf(1)
		} else {
			r = f.MaxFinite()
		}
	}
	if neg {
		r = -r
	}
	return true, r
}

// ratILog2 returns floor(log2(a)) for a positive rational a.
func ratILog2(a *big.Rat) int {
	num, den := a.Num(), a.Denom()
	e := num.BitLen() - den.BitLen()
	// 2^e <= a < 2^(e+2); tighten to floor(log2 a).
	t := new(big.Int)
	if e >= 0 {
		t.Lsh(den, uint(e))
	} else {
		t.Set(den)
	}
	n := new(big.Int).Set(num)
	if e < 0 {
		n.Lsh(n, uint(-e))
	}
	// Now compare n vs t, i.e. a vs 2^e.
	if n.Cmp(t) < 0 {
		e--
	} else {
		// Check whether a >= 2^(e+1).
		t.Lsh(t, 1)
		if n.Cmp(t) >= 0 {
			e++
		}
	}
	return e
}

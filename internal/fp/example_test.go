package fp_test

import (
	"fmt"
	"math/big"

	"rlibm/internal/fp"
)

// Rounding a double to bfloat16 under different modes.
func ExampleFormat_Round() {
	x := 1.00048828125 // 1 + 2^-11, not representable in bfloat16 (8-bit precision)
	fmt.Println("rne:", fp.Bfloat16.Round(x, fp.RNE))
	fmt.Println("rtp:", fp.Bfloat16.Round(x, fp.RTP))
	fmt.Println("rtz:", fp.Bfloat16.Round(x, fp.RTZ))
	fmt.Println("rto:", fp.Bfloat16.Round(x, fp.RTO))
	// Output:
	// rne: 1
	// rtp: 1.0078125
	// rtz: 1
	// rto: 1.0078125
}

// The RLibm-ALL theorem in one call chain: rounding through the 34-bit
// round-to-odd format agrees with rounding the real value directly.
func ExampleFormat_RoundRat() {
	v := new(big.Rat).SetFrac64(1000000001, 3000000000) // ~1/3
	ro := fp.FP34.RoundRat(v, fp.RTO)
	direct := fp.Bfloat16.RoundRat(v, fp.RNE)
	double := fp.Bfloat16.Round(ro, fp.RNE)
	fmt.Println(direct == double, direct)
	// Output:
	// true 0.333984375
}

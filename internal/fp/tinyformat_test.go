package fp

import (
	"math"
	"testing"
)

// TestExtremeTinyFormat exercises a 6-bit format with a 2-bit exponent — the
// smallest configuration Validate accepts — where every edge case (subnormal
// threshold, overflow threshold, ties) is a couple of ulps from every other.
func TestExtremeTinyFormat(t *testing.T) {
	f := Format{Bits: 6, ExpBits: 2}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.Prec() != 4 || f.Bias() != 1 {
		t.Fatalf("unexpected parameters: prec %d bias %d", f.Prec(), f.Bias())
	}
	// Enumerate and round-trip everything.
	count := 0
	f.FiniteValues(func(b uint64, v float64) bool {
		count++
		if got, ok := f.ToBits(v); !ok || (got != b && !math.Signbit(v) == math.Signbit(f.FromBits(got))) {
			if !ok {
				t.Fatalf("pattern %#x (%g) not representable in its own format", b, v)
			}
		}
		return true
	})
	if count != int(f.Count())-2*int(f.sigMask()) /* NaN patterns */ -2 /* infs */ {
		t.Logf("finite patterns: %d of %d", count, f.Count())
	}
	// Exhaustive cross-check of the fast rounding path against the exact
	// rational reference over a fine grid covering the whole range.
	for _, m := range AllModes {
		for g := -3.0; g <= 3.0; g += 1.0 / 64 {
			got := f.Round(g, m)
			want := f.RoundRat(ratFromFloat(g), m)
			if !sameFloat(got, want) {
				t.Fatalf("Round(%g, %v) = %g, reference %g", g, m, got, want)
			}
		}
	}
	// Every nonzero finite value's neighbours are reachable.
	if f.NextUp(f.MaxFinite()) != math.Inf(1) {
		t.Error("NextUp(max) != +Inf")
	}
	if got := f.NextUp(0); got != f.MinSubnormal() {
		t.Errorf("NextUp(0) = %g", got)
	}
}

// TestElevenBitExponent exercises the widest allowed exponent (11 bits, like
// float64's) with a narrow significand.
func TestElevenBitExponent(t *testing.T) {
	f := Format{Bits: 20, ExpBits: 11}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// Its range is float64's; its precision is 9 bits.
	if f.MaxExp() != 1023 || f.Prec() != 9 {
		t.Fatalf("parameters: maxexp %d prec %d", f.MaxExp(), f.Prec())
	}
	for _, x := range []float64{1e300, 1e-300, 3.14159e-310 /* double subnormal */} {
		got := f.Round(x, RNE)
		want := f.RoundRat(ratFromFloat(x), RNE)
		if !sameFloat(got, want) {
			t.Errorf("Round(%g) = %g, reference %g", x, got, want)
		}
	}
}

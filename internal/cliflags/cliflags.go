// Package cliflags is the single flag surface shared by the rlibm binaries
// (rlibm-gen, rlibm-check, rlibm-bench, rlibm-funcgen, rlibm-serve): worker
// parallelism (-j), the observability bundle (-v/-q, -trace, -report,
// -cpuprofile/-memprofile) and the persistent oracle cache
// (-cache-dir/-cache-readonly/-cache-clear). Each binary registers the one
// Options struct and starts it once; binary-specific flags stay in the
// binary.
package cliflags

import (
	"flag"
	"runtime"

	"rlibm/internal/obs"
	"rlibm/internal/oracle"
)

// Options is the shared CLI configuration after flag parsing.
type Options struct {
	// Workers is the raw -j value: 0 means "use GOMAXPROCS" (resolve with
	// WorkerCount). Components document that results are identical for
	// every worker count.
	Workers int
	// Obs bundles -v/-q, -trace, -report and the pprof capture flags.
	Obs *obs.CommonFlags
	// Cache bundles the persistent oracle cache flags.
	Cache *oracle.CacheFlags
}

// Register installs the shared flags on fs (typically flag.CommandLine) and
// returns the Options they populate after fs is parsed.
func Register(fs *flag.FlagSet) *Options {
	o := &Options{
		Obs:   obs.RegisterCommonFlags(fs),
		Cache: oracle.RegisterCacheFlags(fs),
	}
	fs.IntVar(&o.Workers, "j", 0, "worker goroutines (0 = GOMAXPROCS); results are identical for every value")
	return o
}

// WorkerCount resolves -j to a concrete positive count.
func (o *Options) WorkerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run holds the live resources the shared flags asked for: the observability
// state (logger, tracer, profiles) and the persistent oracle store (nil
// without -cache-dir). Close releases all of it.
type Run struct {
	*obs.RunObs
	Store *oracle.Store
}

// Start opens everything the shared flags configure. The caller must Close
// the returned Run; Close is nil-safe so a deferred call after a failed
// Start is fine.
func (o *Options) Start() (*Run, error) {
	ro, err := o.Obs.Start()
	if err != nil {
		return nil, err
	}
	store, err := o.Cache.Open()
	if err != nil {
		ro.Close()
		return nil, err
	}
	return &Run{RunObs: ro, Store: store}, nil
}

// Close seals the oracle store and releases the observability resources,
// returning the first error.
func (r *Run) Close() error {
	if r == nil {
		return nil
	}
	var first error
	if r.Store != nil {
		if err := r.Store.Close(); err != nil {
			first = err
		}
		r.Store = nil
	}
	if err := r.RunObs.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

package cliflags

import (
	"flag"
	"path/filepath"
	"runtime"
	"testing"
)

// TestRegisterParseStart: the shared flags parse into one Options, Start
// opens what they ask for, and Close releases it.
func TestRegisterParseStart(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o := Register(fs)
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	err := fs.Parse([]string{
		"-j", "3", "-q", "-trace", trace, "-cache-dir", filepath.Join(dir, "cache"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Workers != 3 || o.WorkerCount() != 3 {
		t.Errorf("Workers = %d (count %d), want 3", o.Workers, o.WorkerCount())
	}
	if !o.Obs.Quiet || o.Obs.TracePath != trace {
		t.Errorf("obs flags not populated: %+v", o.Obs)
	}
	run, err := o.Start()
	if err != nil {
		t.Fatal(err)
	}
	if run.Store == nil {
		t.Error("Start with -cache-dir returned a nil store")
	}
	if run.Tracer == nil {
		t.Error("Start with -trace returned a nil tracer")
	}
	if err := run.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestWorkerCountDefault: -j 0 resolves to GOMAXPROCS and Start works with
// every flag at its default.
func TestWorkerCountDefault(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if got := o.WorkerCount(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("WorkerCount = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	run, err := o.Start()
	if err != nil {
		t.Fatal(err)
	}
	if run.Store != nil {
		t.Error("Start without -cache-dir opened a store")
	}
	if err := run.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := (*Run)(nil).Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

package libm

import (
	"fmt"
	"io"
	"math"
	"strings"

	"rlibm/internal/poly"
)

// Vector block kernels. The scalar-body block kernels (emitOneBlockFunc)
// inline the kernel into a loop, but every element still walks the special
// switch, an unpredictable piecewise-dispatch branch and the r == 0 early
// return — branches that defeat both the compiler's and the out-of-order
// core's ability to overlap elements. The vector form restructures the same
// computation into fixed-size lane groups with the branches hoisted or
// bit-masked away:
//
//   - struct-of-arrays range reduction: a first loop reduces all lanes of
//     the group into local arrays (r plus, per family, the exact exp scale
//     or the log compensation key) and accumulates one "slow" flag from the
//     fast-path predicate;
//   - per-lane fix-up: lanes holding a special input (NaN, infinity, zero,
//     plateau, tiny, or an exact-value table input) are marked in loop A,
//     recomputed with the scalar kernel after the polynomial loop, and
//     overwrite whatever the branch-free body computed for them —
//     bit-identity for the hard cases by construction, at a cost only the
//     special lanes themselves pay (the branch-free loops never branch on
//     the marks);
//   - branch-free polynomial loop: piece selection becomes sign-bit counting
//     into a per-piece coefficient table, the r == 0 structural value is
//     folded in with a bit-select mask, and the body is the scheme's
//     math.FMA DAG — no branches at all, so the core pipelines the
//     independent lanes back to back;
//   - prefix kernels append a separate narrowing-pass loop folding the
//     precision's round (the integer fast path of roundTf32/roundBf16) into
//     the lane group, off the polynomial dependency chain. The pass is
//     branch-free where it matters: the add-and-mask rounding runs
//     unconditionally, and a lane whose value needs the slow rounding path
//     (non-normal, or a carry to 2^128) is marked for the scalar fix-up
//     instead of calling fp.Format.Round inside the loop — keeping the loop
//     body call-free so the compiler holds the lanes in registers.
//
// Results are bit-identical to the scalar kernel for every input: fast
// lanes run the same reduce, the same operation DAG over the same
// coefficients and the same compensation; slow lanes take the scalar kernel
// verbatim, and the sub-group tail takes the scalar-body block kernel.
// Garbage values the branch-free body computes for slow lanes before the
// fix-up overwrite are harmless: float-to-int conversions of non-finite
// values are well-defined in Go, and every table index is bounded by
// construction (masked reduction keys, piece counts). The emitted VecBatch/AsmBatch wrappers stage
// float32 traffic through these blocks exactly like the Batch wrappers do
// for the scalar-body blocks; AsmBatch additionally runs the widen/narrow
// staging loops as AVX conversion instructions where available (see
// conv_amd64.s).

// emitVecLanes is the lane-group width: wide enough that the out-of-order
// core can overlap the independent per-lane FMA chains, narrow enough that
// the struct-of-arrays staging stays in registers/L1. generatedBatchBlock (256)
// is a multiple, so batch staging blocks split into whole groups.
const emitVecLanes = 8

// vecSpec is everything the vector emitter needs for one kernel: the full
// kernels and the prefix kernels reduce to the same shape.
type vecSpec struct {
	fn       string // "exp", "log2", ...
	name     string // emitted identifier, e.g. genExpRlibmEstrinFmaVecBlock
	fallback string // scalar-body block kernel run for sub-group tails
	scalar   string // scalar kernel run per slow lane
	tab      string // coefficient table identifier ("" when single-piece)

	evs []*poly.Evaluator // evaluator per piece, ascending lower bounds
	los []float64         // piece lower bounds, parallel to evs

	specialBits []uint64 // exact-value inputs that must take the fallback
	round       string   // "" (full precision) or roundTf32/roundBf16
	fd          *funcData
}

// vecSpecFull builds the spec for a full-precision implementation.
func vecSpecFull(fn string, fd *funcData, s Scheme, name string) (*vecSpec, error) {
	impl := &fd.impls[s]
	spec := &vecSpec{
		fn:          fn,
		name:        name + "VecBlock",
		fallback:    name + "Block",
		scalar:      name,
		evs:         make([]*poly.Evaluator, 0, len(impl.pieces)),
		los:         make([]float64, 0, len(impl.pieces)),
		specialBits: impl.specialBits,
		fd:          fd,
	}
	for _, p := range impl.pieces {
		ev, err := evaluatorFor(s, p)
		if err != nil {
			return nil, err
		}
		spec.evs = append(spec.evs, ev)
		spec.los = append(spec.los, p.lo)
	}
	if len(spec.evs) > 1 {
		spec.tab = name + "VecTab"
	}
	return spec, nil
}

// vecSpecPrefix builds the spec for a prefix plan.
func vecSpecPrefix(fn string, fd *funcData, ps PrecSpec, pl *prefixPlan, name string) *vecSpec {
	spec := &vecSpec{
		fn:          fn,
		name:        name + "VecBlock",
		fallback:    name + "Block",
		scalar:      name,
		evs:         pl.evs,
		los:         pl.los,
		specialBits: pl.specialBits,
		round:       precRoundIdent(ps.Name),
		fd:          fd,
	}
	if len(spec.evs) > 1 {
		spec.tab = name + "VecTab"
	}
	return spec
}

// checkVecPieces verifies the property the shared polynomial body rests on:
// every piece evaluates the same operation DAG (same scheme, same
// coefficient count, same adaptation state), so one GenEvalCoeffs body over
// the selected table row reproduces each piece's GenEval exactly. It also
// rejects duplicate coefficient bit patterns within the lead piece — the
// value-keyed coefficient naming could not tell such positions apart.
// Single-piece kernels skip the duplicate check: they inline literals and
// never consult a table.
func checkVecPieces(spec *vecSpec) error {
	if len(spec.evs) == 1 {
		return nil
	}
	lead := spec.evs[0]
	leadC := lead.EvalCoeffs()
	seen := make(map[uint64]bool, len(leadC))
	for _, c := range leadC {
		b := math.Float64bits(c)
		if seen[b] {
			return fmt.Errorf("%s: duplicate coefficient %x defeats table naming", spec.name, c)
		}
		seen[b] = true
	}
	for i, ev := range spec.evs[1:] {
		if ev.Scheme != lead.Scheme {
			return fmt.Errorf("%s: piece %d scheme differs", spec.name, i+1)
		}
		if len(ev.EvalCoeffs()) != len(leadC) {
			return fmt.Errorf("%s: piece %d has %d coefficients, lead has %d",
				spec.name, i+1, len(ev.EvalCoeffs()), len(leadC))
		}
		if (ev.AdaptedCoeffs() != nil) != (lead.AdaptedCoeffs() != nil) {
			return fmt.Errorf("%s: piece %d adaptation state differs", spec.name, i+1)
		}
	}
	return nil
}

// emitVecTable writes the per-piece coefficient table of a multi-piece
// vector kernel: row i is piece i's evaluation coefficients (the
// Knuth-adapted alphas when adaptation is in effect, the ascending
// polynomial coefficients otherwise).
func emitVecTable(w io.Writer, spec *vecSpec) {
	if spec.tab == "" {
		return
	}
	fmt.Fprintf(w, "\n// %s holds the per-piece coefficient rows of %s, selected\n", spec.tab, spec.name)
	fmt.Fprintf(w, "// branch-free by sign-bit counting against the piece bounds.\n")
	fmt.Fprintf(w, "var %s = [%d][%d]float64{\n", spec.tab, len(spec.evs), len(spec.evs[0].EvalCoeffs()))
	for _, ev := range spec.evs {
		fmt.Fprintf(w, "\t{")
		for i, c := range ev.EvalCoeffs() {
			if i > 0 {
				fmt.Fprintf(w, ", ")
			}
			fmt.Fprintf(w, "%s", hexLit(c))
		}
		fmt.Fprintf(w, "},\n")
	}
	fmt.Fprintf(w, "}\n")
}

// emitVecKernel writes one vector kernel: the coefficient table (when
// piecewise) and the block function. If the pieces cannot share a body —
// heterogeneous shapes or duplicate coefficients, which no current
// implementation exhibits — the vector name degrades to a wrapper over the
// scalar-body block kernel so the registries stay total and correct.
func emitVecKernel(w io.Writer, spec *vecSpec) error {
	if err := checkVecPieces(spec); err != nil {
		fmt.Fprintf(w, "\n// %s: pieces cannot share a branch-free body (%v);\n", spec.name, err)
		fmt.Fprintf(w, "// the vector form degrades to the scalar-body block kernel.\n")
		fmt.Fprintf(w, "func %s(b []float64) {\n\t%s(b)\n}\n", spec.name, spec.fallback)
		return nil
	}
	emitVecTable(w, spec)
	return emitVecBlockFunc(w, spec)
}

// vecExpReduceLines returns the inline form of the exp-family range
// reduction: the exact statement sequence of the corresponding
// rangered.Reduce* function, referencing the same exported constants.
func vecExpReduceLines(fn string) []string {
	var round, r string
	switch fn {
	case "exp":
		round = "n := math.Round(x * rangered.InvLn2x64)"
		r = "r := (x - n*rangered.Ln2x64Hi) - n*rangered.Ln2x64Lo"
	case "exp2":
		round = "n := math.Round(x * 64)"
		r = "r := x - n/64"
	case "exp10":
		round = "n := math.Round(x * rangered.InvLog10Of2x64)"
		r = "r := (x - n*rangered.Log10Of2x64Hi) - n*rangered.Log10Of2x64Lo"
	default:
		panic("libm: vecExpReduceLines on " + fn)
	}
	return []string{
		round,
		r,
		"ni := int32(n)",
		"k := rangered.Key{Q: ni >> 6, J: ni & 63}",
	}
}

// emitVecBlockFunc writes one vector block kernel body.
func emitVecBlockFunc(w io.Writer, spec *vecSpec) error {
	isLog := strings.HasPrefix(spec.fn, "log")
	// The narrowing shift must match the precision's roundNarrow call in
	// prec.go (53 - output significand bits); validated before any output so
	// a new precision cannot leave a half-emitted kernel behind.
	shift := 0
	if spec.round != "" {
		shift = map[string]int{"roundTf32": 42, "roundBf16": 45}[spec.round]
		if shift == 0 {
			return fmt.Errorf("unknown narrowing round %q", spec.round)
		}
	}

	fmt.Fprintf(w, "\n// %s applies the same kernel as %s to every element of b\n", spec.name, spec.fallback)
	fmt.Fprintf(w, "// in %d-lane groups: struct-of-arrays range reduction, then a branch-free\n", emitVecLanes)
	fmt.Fprintf(w, "// polynomial loop (bit-select masks instead of the special switch and piece\n")
	fmt.Fprintf(w, "// dispatch). Lanes holding special inputs are recomputed with the scalar\n")
	fmt.Fprintf(w, "// kernel afterwards, and the sub-group tail runs the scalar-body block\n")
	fmt.Fprintf(w, "// kernel, so outputs are bit-identical to %s for every\n", spec.fallback)
	fmt.Fprintf(w, "// input and length.\n")
	fmt.Fprintf(w, "func %s(b []float64) {\n", spec.name)
	fmt.Fprintf(w, "\tn := len(b) &^ (generatedVecLanes - 1)\n")
	fmt.Fprintf(w, "\tfor base := 0; base < n; base += generatedVecLanes {\n")
	fmt.Fprintf(w, "\t\tv := (*[generatedVecLanes]float64)(b[base:])\n")

	// Loop A: struct-of-arrays reduction plus the fast-path predicate.
	fam, err := famFor(spec.fn)
	if err != nil {
		return err
	}
	if isLog {
		fmt.Fprintf(w, "\t\tvar vr, vx [generatedVecLanes]float64\n")
		fmt.Fprintf(w, "\t\tvar vq, vj [generatedVecLanes]int32\n")
	} else {
		fmt.Fprintf(w, "\t\tvar vr, vs, vx [generatedVecLanes]float64\n")
	}
	fmt.Fprintf(w, "\t\tvar sl [generatedVecLanes]bool\n")
	fmt.Fprintf(w, "\t\tslow := false\n")
	fmt.Fprintf(w, "\t\tfor l := 0; l < generatedVecLanes; l++ {\n")
	fmt.Fprintf(w, "\t\t\tx := v[l]\n")
	fmt.Fprintf(w, "\t\t\tvx[l] = x\n")
	if isLog {
		fmt.Fprintf(w, "\t\t\tr, k := %s\n", fam.reduceExpr)
	} else {
		// The exp-family reductions embed math.Round, which pushes them
		// past the compiler's inlining budget — a call per lane would
		// dominate loop A. Emit the reduction body inline instead: the
		// identical operation sequence over the same exported constants,
		// so r and k match rangered.ReduceExp*(x) bit for bit.
		for _, ln := range vecExpReduceLines(spec.fn) {
			fmt.Fprintf(w, "\t\t\t%s\n", ln)
		}
	}
	fmt.Fprintf(w, "\t\t\tvr[l] = r\n")
	if isLog {
		fmt.Fprintf(w, "\t\t\tvq[l], vj[l] = k.Q, k.J\n")
		// The polynomial path serves exactly the positive finite reals; the
		// bit test folds NaN, infinities, zeros and negatives into one
		// unsigned comparison pair.
		fmt.Fprintf(w, "\t\t\tif bx := math.Float64bits(x); bx == 0 || bx >= 0x7ff0000000000000 {\n")
		fmt.Fprintf(w, "\t\t\t\tsl[l], slow = true, true\n\t\t\t}\n")
	} else {
		// CompensateExpFamily(1, k) is the exact scale T[j]*2^q (1*s == s
		// bitwise), so the final p*vs[l] below rounds exactly like the
		// scalar kernel's CompensateExpFamily(p, k).
		fmt.Fprintf(w, "\t\t\tvs[l] = rangered.CompensateExpFamily(1, k)\n")
		fd := spec.fd
		fmt.Fprintf(w, "\t\t\tif !(x > %s && x < %s && (x < %s || x > %s)) {\n",
			hexLit(fd.domLo), hexLit(fd.domHi), hexLit(fd.tinyLo), hexLit(fd.tinyHi))
		fmt.Fprintf(w, "\t\t\t\tsl[l], slow = true, true\n\t\t\t}\n")
	}
	if len(spec.specialBits) > 0 {
		lo, hi := math.Inf(1), math.Inf(-1)
		cases := make([]string, len(spec.specialBits))
		for i, bb := range spec.specialBits {
			val := math.Float64frombits(bb)
			lo, hi = math.Min(lo, val), math.Max(hi, val)
			cases[i] = fmt.Sprintf("%#x", bb)
		}
		fmt.Fprintf(w, "\t\t\tif x >= %s && x <= %s {\n", hexLit(lo), hexLit(hi))
		fmt.Fprintf(w, "\t\t\t\tswitch math.Float64bits(x) {\n")
		fmt.Fprintf(w, "\t\t\t\tcase %s:\n\t\t\t\t\tsl[l], slow = true, true\n", strings.Join(cases, ", "))
		fmt.Fprintf(w, "\t\t\t\t}\n\t\t\t}\n")
	}
	fmt.Fprintf(w, "\t\t}\n")

	// Loop B: the branch-free polynomial body. Slow lanes compute garbage
	// here (safely: conversions and table indexing are total) and are
	// overwritten by the fix-up loop below.
	fmt.Fprintf(w, "\t\tfor l := 0; l < generatedVecLanes; l++ {\n")
	fmt.Fprintf(w, "\t\t\tr := vr[l]\n")
	var lines []string
	var result string
	if spec.tab != "" {
		// sel counts the pieces whose lower bound r has reached: the lower
		// bounds ascend, so the count is the scalar dispatch's chosen index.
		// r - lo is +0 only when r == lo (fast lanes are finite), making the
		// sign bit an exact r >= lo on this path.
		fmt.Fprintf(w, "\t\t\tsel := (math.Float64bits(r-(%s)) >> 63) ^ 1\n", hexLit(spec.los[1]))
		for _, lo := range spec.los[2:] {
			fmt.Fprintf(w, "\t\t\tsel += (math.Float64bits(r-(%s)) >> 63) ^ 1\n", hexLit(lo))
		}
		fmt.Fprintf(w, "\t\t\tc := &%s[sel]\n", spec.tab)
		lines, result = spec.evs[0].GenEvalCoeffs("r", "tv_", func(i int) string {
			return fmt.Sprintf("c[%d]", i)
		})
	} else {
		lines, result = spec.evs[0].GenEval("r", "tv_")
	}
	for _, l := range lines {
		fmt.Fprintf(w, "\t\t\t%s\n", l)
	}
	// Fold the r == 0 structural value in with a bit-select: m is 1 for
	// r != 0 (covering -0, unreachable on fast lanes, for good measure) and
	// 0 for r == 0, where the scalar kernel serves Compensate(pZero, k).
	fmt.Fprintf(w, "\t\t\tz := math.Float64bits(r) << 1\n")
	fmt.Fprintf(w, "\t\t\tm := (z | -z) >> 63\n")
	if fam.pZero != 0 {
		fmt.Fprintf(w, "\t\t\tpb := math.Float64bits(%s)&-m | %#x&(m-1)\n",
			result, math.Float64bits(fam.pZero))
	} else {
		fmt.Fprintf(w, "\t\t\tpb := math.Float64bits(%s) & -m\n", result)
	}
	store := "v[l] ="
	if spec.round != "" {
		store = "res :=" // rounded to v[l] by the narrowing fold below
	}
	if isLog {
		fmt.Fprintf(w, "\t\t\t%s %s(math.Float64frombits(pb), rangered.Key{Q: vq[l], J: vj[l]})\n",
			store, fam.compExpr)
	} else {
		fmt.Fprintf(w, "\t\t\t%s math.Float64frombits(pb) * vs[l]\n", store)
	}

	// The prefix kernels' narrowing pass, folded into the same lane
	// iteration so the compensated value rounds straight out of its
	// register: the integer fast path of roundTf32/roundBf16 (see
	// roundNarrow in prec.go), with every slow condition routed to the
	// scalar fix-up. The single exponent window is one binade tighter than
	// roundNarrow's [897, 1150]: capping at 1149 makes a carry to 2^128
	// unreachable on fast lanes, so the overflow-to-infinity compare
	// disappears from the loop. Lanes outside the window — non-normal
	// values (roundNarrow's slow-path condition) plus the rare top binade —
	// are recomputed by the scalar kernel, whose roundNarrow handles them
	// exactly; fast lanes run the identical add-and-mask, so the fold stays
	// bit-identical while the loop body stays free of calls and of taken
	// branches.
	if spec.round != "" {
		fmt.Fprintf(w, "\t\t\tu := math.Float64bits(res)\n")
		fmt.Fprintf(w, "\t\t\tru := u + (1<<%d - 1) + (u>>%d)&1\n", shift-1, shift)
		fmt.Fprintf(w, "\t\t\tru &^= 1<<%d - 1\n", shift)
		fmt.Fprintf(w, "\t\t\tif (u>>52)&0x7ff-897 > 1149-897 {\n")
		fmt.Fprintf(w, "\t\t\t\tsl[l], slow = true, true\n\t\t\t}\n")
		fmt.Fprintf(w, "\t\t\tv[l] = math.Float64frombits(ru)\n")
	}
	fmt.Fprintf(w, "\t\t}\n")

	// Per-lane fix-up: recompute marked lanes with the scalar kernel. Runs
	// after the rounding pass so a fixed-up lane is exactly the scalar
	// kernel's output with no further transformation.
	fmt.Fprintf(w, "\t\tif slow {\n")
	fmt.Fprintf(w, "\t\t\tfor l := 0; l < generatedVecLanes; l++ {\n")
	fmt.Fprintf(w, "\t\t\t\tif sl[l] {\n")
	fmt.Fprintf(w, "\t\t\t\t\tv[l] = %s(vx[l])\n", spec.scalar)
	fmt.Fprintf(w, "\t\t\t\t}\n\t\t\t}\n\t\t}\n")

	fmt.Fprintf(w, "\t}\n")
	fmt.Fprintf(w, "\tif n != len(b) {\n\t\t%s(b[n:])\n\t}\n", spec.fallback)
	fmt.Fprintf(w, "}\n")
	return nil
}

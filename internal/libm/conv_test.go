package libm

import (
	"math"
	"math/rand"
	"testing"
)

// TestConvStagingMatchesScalar: the widen/narrow staging loops (AVX on
// capable amd64, pure Go elsewhere) must be bit-identical to Go's scalar
// conversions for every value class — normals, subnormals, zeros of both
// signs, infinities, NaNs with payloads, and narrow-rounding ties — at
// lengths that cover the 4-wide body and every tail residue.
func TestConvStagingMatchesScalar(t *testing.T) {
	t.Logf("asm conversion staging active: %v", AsmConvAvailable())
	rng := rand.New(rand.NewSource(99))

	srcBits := []uint32{
		0, 0x80000000, // +-0
		0x7f800000, 0xff800000, // +-Inf
		0x7fc00001, 0xffc0dead, // quiet NaNs with payloads
		0x7f800001, 0xff800001, // signaling NaN patterns
		1, 0x007fffff, // subnormals
		0x00800000, 0x7f7fffff, // smallest/largest normal
	}
	for len(srcBits) < 4096 {
		srcBits = append(srcBits, rng.Uint32())
	}
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 64, 4093, 4096} {
		src32 := make([]float32, n)
		for i := range src32 {
			src32[i] = math.Float32frombits(srcBits[i%len(srcBits)])
		}
		got64 := make([]float64, n)
		widenF32(got64, src32)
		src64 := make([]float64, n)
		for i, x := range src32 {
			src64[i] = float64(x)
			if math.Float64bits(got64[i]) != math.Float64bits(src64[i]) {
				t.Fatalf("widen n=%d [%d]: %#016x != %#016x (x=%#08x)",
					n, i, math.Float64bits(got64[i]), math.Float64bits(src64[i]), math.Float32bits(src32[i]))
			}
		}
		// Narrow over doubles that exercise rounding: the widened set plus
		// perturbed doubles landing between float32 values (including exact
		// ties, where round-to-nearest-even matters) and double NaNs.
		for i := range src64 {
			switch i % 4 {
			case 1:
				src64[i] *= 1 + 0x1p-25 // off-grid, forces rounding
			case 2:
				src64[i] = math.Float64frombits(math.Float64bits(src64[i]) | 0x10000000) // exact tie bit for many inputs
			case 3:
				src64[i] = math.Float64frombits(rng.Uint64()) // arbitrary doubles incl. NaN space
			}
		}
		got32 := make([]float32, n)
		narrowF32(got32, src64)
		for i, d := range src64 {
			if want := float32(d); math.Float32bits(got32[i]) != math.Float32bits(want) {
				t.Fatalf("narrow n=%d [%d]: %#08x != %#08x (d=%#016x)",
					n, i, math.Float32bits(got32[i]), math.Float32bits(want), math.Float64bits(d))
			}
		}
	}
}

package libm

import (
	"math"
	"testing"
)

// TestBf16TableMatchesEveryScheme: the per-function bfloat16 result table is
// shared across schemes, so every scheme's bf16 prefix kernel must produce
// the table's bits for every one of the 2^16 representable input patterns —
// specials, subnormals, NaN payloads, everything. This is the exhaustive
// proof behind the batch fast path's scheme-independent lookup.
func TestBf16TableMatchesEveryScheme(t *testing.T) {
	for _, f := range Funcs {
		tab := Bf16Table(f.Name)
		if tab == nil {
			t.Fatalf("no bf16 table for %s", f.Name)
		}
		for _, s := range Schemes {
			kern := GeneratedPrefixFuncs[f.Name+"/"+s.String()+"/bf16"]
			if kern == nil {
				t.Fatalf("no bf16 prefix kernel for %s/%v", f.Name, s)
			}
			for i := range tab {
				x := math.Float32frombits(uint32(i) << 16)
				got := math.Float32bits(float32(kern(float64(x))))
				if got != tab[i] {
					t.Fatalf("%s/%v(%x): kernel %#08x, table %#08x",
						f.Name, s, uint32(i)<<16, got, tab[i])
				}
			}
		}
	}
}

// TestBf16TableUnknownFunc: an unknown function has no table, not a panic.
func TestBf16TableUnknownFunc(t *testing.T) {
	if tab := Bf16Table("sinpi"); tab != nil {
		t.Error("Bf16Table for an unknown function should be nil")
	}
}

// Package libm is the generated correctly rounded math library: the six
// elementary functions of the paper (e^x, 2^x, 10^x, ln x, log2 x, log10 x),
// each in four variants corresponding to the paper's configurations —
// RLibm (Horner), RLibm-Knuth, RLibm-Estrin and RLibm-Estrin+FMA — for 24
// implementations in total, as in the artifact.
//
// Every variant computes a double-precision value lying in the rounding
// interval of the 34-bit round-to-odd result, so one implementation yields
// correctly rounded results for every floating-point format from 10 to 32
// bits (with an 8-bit exponent) under all five IEEE rounding modes: round
// the returned double to the desired format. The float32 convenience
// wrappers do exactly that via the hardware's double->float32 conversion.
//
// The polynomial coefficients and special-case tables are produced by
// cmd/rlibm-gen running this repository's generator (internal/core) and are
// embedded in zz_generated_data.go.
package libm

import (
	"math"

	"rlibm/internal/fp"
	"rlibm/internal/poly"
	"rlibm/internal/rangered"
)

// Scheme selects one of the four generated variants.
type Scheme int

const (
	// SchemeHorner is the RLibm baseline (serial multiply-add chain).
	SchemeHorner Scheme = iota
	// SchemeKnuth uses Knuth's adapted coefficients.
	SchemeKnuth
	// SchemeEstrin uses Estrin's parallel evaluation.
	SchemeEstrin
	// SchemeEstrinFMA combines Estrin's evaluation with fused
	// multiply-adds — the paper's fastest configuration and this package's
	// default.
	SchemeEstrinFMA
	numSchemes
)

// Schemes lists the four variants in the paper's order.
var Schemes = []Scheme{SchemeHorner, SchemeKnuth, SchemeEstrin, SchemeEstrinFMA}

func (s Scheme) String() string {
	switch s {
	case SchemeHorner:
		return "rlibm"
	case SchemeKnuth:
		return "rlibm-knuth"
	case SchemeEstrin:
		return "rlibm-estrin"
	case SchemeEstrinFMA:
		return "rlibm-estrin-fma"
	}
	return "unknown"
}

// pieceData is one polynomial piece: coefficients plus (for the Knuth
// variant) the adapted alpha coefficients, selected by the reduced input.
type pieceData struct {
	lo     float64 // reduced-input lower bound (first piece: -Inf)
	coeffs []float64
	// Knuth-adapted coefficients by degree; exactly one is non-nil for
	// adapted pieces.
	a4 *[5]float64
	a5 *[6]float64
	a6 *[7]float64
}

// implData is one generated variant of one function.
type implData struct {
	scheme      Scheme
	pieces      []pieceData
	specialBits []uint64 // sorted float64 bit patterns of special inputs
	specialVals []float64
}

// funcData carries the per-function constants shared by the four variants.
type funcData struct {
	domLo, domHi         float64 // polynomial path is (domLo, domHi)
	loVal, hiVal         float64 // plateau results beyond the cuts
	tinyLo, tinyHi       float64 // near-zero plateau (exp family only)
	tinyLoVal, tinyHiVal float64
	impls                [numSchemes]implData
}

// evalPoly evaluates the variant's piecewise polynomial at the reduced
// input.
func (d *implData) evalPoly(r float64) float64 {
	p := &d.pieces[0]
	for i := 1; i < len(d.pieces); i++ {
		if r >= d.pieces[i].lo {
			p = &d.pieces[i]
		}
	}
	switch d.scheme {
	case SchemeHorner:
		return poly.EvalHorner(p.coeffs, r)
	case SchemeEstrin:
		return poly.EvalEstrin(p.coeffs, r)
	case SchemeEstrinFMA:
		return poly.EvalEstrinFMA(p.coeffs, r)
	case SchemeKnuth:
		switch {
		case p.a4 != nil:
			return poly.EvalAdapted4(p.a4, r)
		case p.a5 != nil:
			return poly.EvalAdapted5(p.a5, r)
		case p.a6 != nil:
			return poly.EvalAdapted6(p.a6, r)
		default:
			return poly.EvalHorner(p.coeffs, r)
		}
	}
	panic("libm: unknown scheme")
}

// special looks x up in the variant's special-case table.
func (d *implData) special(x float64) (float64, bool) {
	b := math.Float64bits(x)
	for i, sb := range d.specialBits {
		if sb == b {
			return d.specialVals[i], true
		}
	}
	return 0, false
}

// expFamily64 is the shared double path of e^x, 2^x and 10^x.
func expFamily64(x float64, fd *funcData, s Scheme,
	reduce func(float64) (float64, rangered.Key)) float64 {
	switch {
	case math.IsNaN(x):
		return x
	case math.IsInf(x, 1):
		return math.Inf(1)
	case math.IsInf(x, -1):
		return 0
	case x == 0:
		return 1
	case x <= fd.domLo:
		return fd.loVal
	case x >= fd.domHi:
		return fd.hiVal
	case x < 0 && x >= fd.tinyLo:
		return fd.tinyLoVal
	case x > 0 && x <= fd.tinyHi:
		return fd.tinyHiVal
	}
	d := &fd.impls[s]
	if y, ok := d.special(x); ok {
		return y
	}
	r, k := reduce(x)
	if r == 0 {
		// Exact reduced input: the table entry alone is the correctly
		// rounded information (p = 2^0 = 1).
		return rangered.CompensateExpFamily(1, k)
	}
	return rangered.CompensateExpFamily(d.evalPoly(r), k)
}

// logFamily64 is the shared double path of ln, log2 and log10.
func logFamily64(x float64, fd *funcData, s Scheme,
	compensate func(float64, rangered.Key) float64) float64 {
	switch {
	case math.IsNaN(x):
		return x
	case x < 0 || math.IsInf(x, -1):
		return math.NaN()
	case x == 0:
		return math.Inf(-1)
	case math.IsInf(x, 1):
		return math.Inf(1)
	}
	d := &fd.impls[s]
	if y, ok := d.special(x); ok {
		return y
	}
	f, k := rangered.ReduceLog(x)
	if f == 0 {
		// Exact reduced input: log(F) comes straight from the table
		// (p = log(1) = 0).
		return compensate(0, k)
	}
	return compensate(d.evalPoly(f), k)
}

// RoundTo rounds a raw double result to an arbitrary format and rounding
// mode. Formats from 10 to 32 bits with an 8-bit exponent receive correctly
// rounded results (the RLibm-ALL guarantee).
func RoundTo(d float64, t fp.Format, m fp.Mode) float64 {
	return t.Round(d, m)
}

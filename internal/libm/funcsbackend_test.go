package libm

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestGeneratedFuncsMatchDataBackend: the straight-line function backend is
// bit-identical to the data-driven backend on every path — special values,
// plateaus, special tables, structural zeros and the polynomial pieces.
func TestGeneratedFuncsMatchDataBackend(t *testing.T) {
	if len(GeneratedFuncs) != 24 {
		t.Fatalf("expected 24 generated functions, have %d", len(GeneratedFuncs))
	}
	rng := rand.New(rand.NewSource(121))
	for key, gen := range GeneratedFuncs {
		name, schemeName, _ := strings.Cut(key, "/")
		var scheme Scheme
		found := false
		for _, s := range Schemes {
			if s.String() == schemeName {
				scheme, found = s, true
				break
			}
		}
		if !found {
			t.Fatalf("unknown scheme in key %q", key)
		}
		var double func(float32, Scheme) float64
		for _, f := range Funcs {
			if f.Name == name {
				double = f.Double
				break
			}
		}
		if double == nil {
			t.Fatalf("unknown function in key %q", key)
		}
		// Edge inputs plus a random sweep.
		inputs := []float64{
			math.NaN(), math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1),
			1, -1, 0.5, 2, 3, 100, -104, 89, -150, 128, 1e-40, -1e-40,
		}
		for i := 0; i < 20000; i++ {
			inputs = append(inputs, float64(randInput(rng, name)))
		}
		for _, raw := range inputs {
			// Both backends must see the same value: the public API takes
			// float32, so quantize the probe first.
			x := float64(float32(raw))
			got := gen(x)
			want := double(float32(x), scheme)
			if math.Float64bits(got) != math.Float64bits(want) &&
				!(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("%s(%x=%g): straight-line %x, data backend %x",
					key, math.Float64bits(x), x, math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
}

// TestGeneratedBlockFuncsMatchScalar: every block kernel is bit-identical to
// its scalar counterpart on every element, for blocks that mix specials,
// plateau values and ordinary inputs, at several lengths (including empty).
func TestGeneratedBlockFuncsMatchScalar(t *testing.T) {
	if len(GeneratedBlockFuncs) != len(GeneratedFuncs) {
		t.Fatalf("%d block kernels vs %d scalar kernels", len(GeneratedBlockFuncs), len(GeneratedFuncs))
	}
	rng := rand.New(rand.NewSource(212))
	for key, blk := range GeneratedBlockFuncs {
		scalar := GeneratedFuncs[key]
		if scalar == nil {
			t.Fatalf("block kernel %q has no scalar counterpart", key)
		}
		name, _, _ := strings.Cut(key, "/")
		for _, n := range []int{0, 1, 7, 1000} {
			src := make([]float64, n)
			for i := range src {
				switch i % 9 {
				case 7:
					src[i] = []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1)}[i%5]
				case 8:
					src[i] = []float64{-150, 128, 1e-40, -1, 1}[i%5]
				default:
					src[i] = float64(randInput(rng, name))
				}
			}
			got := append([]float64(nil), src...)
			blk(got)
			for i, x := range src {
				want := scalar(x)
				if math.Float64bits(got[i]) != math.Float64bits(want) &&
					!(math.IsNaN(got[i]) && math.IsNaN(want)) {
					t.Fatalf("%s block(%x=%g) = %x, scalar = %x",
						key, math.Float64bits(x), x, math.Float64bits(got[i]), math.Float64bits(want))
				}
			}
		}
	}
}

// TestEmitGeneratedFuncsStable: emitting twice yields identical source (the
// generator is deterministic).
func TestEmitGeneratedFuncsStable(t *testing.T) {
	var a, b strings.Builder
	if err := EmitGeneratedFuncs(&a); err != nil {
		t.Fatal(err)
	}
	if err := EmitGeneratedFuncs(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("EmitGeneratedFuncs is not deterministic")
	}
	if !strings.Contains(a.String(), "func genExp2RlibmEstrinFma(") {
		t.Error("expected generated function names in output")
	}
}

package libm

import (
	"math"
	"sync"
)

// Bfloat16 result memo tables. The bfloat16 input space embedded in float32
// is exactly the 2^16 bit patterns whose low 16 bits are zero, so the entire
// function — specials included — fits in a 256 KiB table per function that
// stays L2-resident under load. The serving layer's bf16 batch path answers
// representable inputs with one table load instead of running range
// reduction, the prefix polynomial and the narrowing round per element,
// which is where bfloat16 serving gets its per-element speedup beyond what
// the shorter prefix polynomial alone buys.
//
// Each table is built lazily from the generated bf16 prefix kernel, so a
// lookup is bit-identical to evaluating the kernel by construction. The
// table is scheme-independent: every scheme's prefix computes the identical
// correctly rounded bfloat16 result for every representable input (the
// special-case switch is shared, and the exhaustive prefix battery verifies
// each scheme against the same 18-bit round-to-odd target), so one table per
// function serves all four schemes.

var (
	bf16TableMu sync.Mutex
	bf16Tables  = map[string]*[1 << 16]uint32{}
)

// Bf16Table returns the bfloat16 result table for function fname, keyed by
// the high 16 bits of the representable input's float32 pattern; entries are
// float32 result bits. The first call per function builds the table (one
// prefix-kernel evaluation per pattern, ~1 ms); later calls return the
// cached table. Returns nil when fname has no generated bf16 prefix kernel.
func Bf16Table(fname string) *[1 << 16]uint32 {
	bf16TableMu.Lock()
	defer bf16TableMu.Unlock()
	if t, ok := bf16Tables[fname]; ok {
		return t
	}
	kern := GeneratedPrefixFuncs[fname+"/rlibm/bf16"]
	if kern == nil {
		return nil
	}
	t := new([1 << 16]uint32)
	for i := range t {
		x := float64(math.Float32frombits(uint32(i) << 16))
		t[i] = math.Float32bits(float32(kern(x)))
	}
	bf16Tables[fname] = t
	return t
}

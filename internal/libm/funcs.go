package libm

import (
	"rlibm/internal/rangered"
)

// --- e^x ---

// Exp returns the correctly rounded e^x using the fastest variant
// (Estrin+FMA).
func Exp(x float32) float32 { return float32(ExpDouble(x, SchemeEstrinFMA)) }

// ExpHorner, ExpKnuth, ExpEstrin, ExpEstrinFMA are the four paper
// configurations of e^x.
func ExpHorner(x float32) float32    { return float32(ExpDouble(x, SchemeHorner)) }
func ExpKnuth(x float32) float32     { return float32(ExpDouble(x, SchemeKnuth)) }
func ExpEstrin(x float32) float32    { return float32(ExpDouble(x, SchemeEstrin)) }
func ExpEstrinFMA(x float32) float32 { return float32(ExpDouble(x, SchemeEstrinFMA)) }

// ExpDouble returns the raw double result of the chosen variant; it lies in
// the 34-bit round-to-odd rounding interval of e^x.
func ExpDouble(x float32, s Scheme) float64 {
	return expFamily64(float64(x), &expData, s, rangered.ReduceExp)
}

// --- 2^x ---

// Exp2 returns the correctly rounded 2^x using the fastest variant.
func Exp2(x float32) float32 { return float32(Exp2Double(x, SchemeEstrinFMA)) }

func Exp2Horner(x float32) float32    { return float32(Exp2Double(x, SchemeHorner)) }
func Exp2Knuth(x float32) float32     { return float32(Exp2Double(x, SchemeKnuth)) }
func Exp2Estrin(x float32) float32    { return float32(Exp2Double(x, SchemeEstrin)) }
func Exp2EstrinFMA(x float32) float32 { return float32(Exp2Double(x, SchemeEstrinFMA)) }

// Exp2Double returns the raw double result of the chosen variant.
func Exp2Double(x float32, s Scheme) float64 {
	return expFamily64(float64(x), &exp2Data, s, rangered.ReduceExp2)
}

// --- 10^x ---

// Exp10 returns the correctly rounded 10^x using the fastest variant.
func Exp10(x float32) float32 { return float32(Exp10Double(x, SchemeEstrinFMA)) }

func Exp10Horner(x float32) float32    { return float32(Exp10Double(x, SchemeHorner)) }
func Exp10Knuth(x float32) float32     { return float32(Exp10Double(x, SchemeKnuth)) }
func Exp10Estrin(x float32) float32    { return float32(Exp10Double(x, SchemeEstrin)) }
func Exp10EstrinFMA(x float32) float32 { return float32(Exp10Double(x, SchemeEstrinFMA)) }

// Exp10Double returns the raw double result of the chosen variant.
func Exp10Double(x float32, s Scheme) float64 {
	return expFamily64(float64(x), &exp10Data, s, rangered.ReduceExp10)
}

// --- ln x ---

// Log returns the correctly rounded natural logarithm using the fastest
// variant.
func Log(x float32) float32 { return float32(LogDouble(x, SchemeEstrinFMA)) }

func LogHorner(x float32) float32    { return float32(LogDouble(x, SchemeHorner)) }
func LogKnuth(x float32) float32     { return float32(LogDouble(x, SchemeKnuth)) }
func LogEstrin(x float32) float32    { return float32(LogDouble(x, SchemeEstrin)) }
func LogEstrinFMA(x float32) float32 { return float32(LogDouble(x, SchemeEstrinFMA)) }

// LogDouble returns the raw double result of the chosen variant.
func LogDouble(x float32, s Scheme) float64 {
	return logFamily64(float64(x), &logData, s, rangered.CompensateLn)
}

// --- log2 x ---

// Log2 returns the correctly rounded base-2 logarithm using the fastest
// variant.
func Log2(x float32) float32 { return float32(Log2Double(x, SchemeEstrinFMA)) }

func Log2Horner(x float32) float32    { return float32(Log2Double(x, SchemeHorner)) }
func Log2Knuth(x float32) float32     { return float32(Log2Double(x, SchemeKnuth)) }
func Log2Estrin(x float32) float32    { return float32(Log2Double(x, SchemeEstrin)) }
func Log2EstrinFMA(x float32) float32 { return float32(Log2Double(x, SchemeEstrinFMA)) }

// Log2Double returns the raw double result of the chosen variant.
func Log2Double(x float32, s Scheme) float64 {
	return logFamily64(float64(x), &log2Data, s, rangered.CompensateLog2)
}

// --- log10 x ---

// Log10 returns the correctly rounded base-10 logarithm using the fastest
// variant.
func Log10(x float32) float32 { return float32(Log10Double(x, SchemeEstrinFMA)) }

func Log10Horner(x float32) float32    { return float32(Log10Double(x, SchemeHorner)) }
func Log10Knuth(x float32) float32     { return float32(Log10Double(x, SchemeKnuth)) }
func Log10Estrin(x float32) float32    { return float32(Log10Double(x, SchemeEstrin)) }
func Log10EstrinFMA(x float32) float32 { return float32(Log10Double(x, SchemeEstrinFMA)) }

// Log10Double returns the raw double result of the chosen variant.
func Log10Double(x float32, s Scheme) float64 {
	return logFamily64(float64(x), &log10Data, s, rangered.CompensateLog10)
}

// Funcs enumerates the library's functions for harness code: name, float32
// implementation per scheme, and the raw-double implementation.
var Funcs = []struct {
	Name   string
	F32    [4]func(float32) float32
	Double func(float32, Scheme) float64
}{
	{"exp", [4]func(float32) float32{ExpHorner, ExpKnuth, ExpEstrin, ExpEstrinFMA}, ExpDouble},
	{"exp2", [4]func(float32) float32{Exp2Horner, Exp2Knuth, Exp2Estrin, Exp2EstrinFMA}, Exp2Double},
	{"exp10", [4]func(float32) float32{Exp10Horner, Exp10Knuth, Exp10Estrin, Exp10EstrinFMA}, Exp10Double},
	{"log", [4]func(float32) float32{LogHorner, LogKnuth, LogEstrin, LogEstrinFMA}, LogDouble},
	{"log2", [4]func(float32) float32{Log2Horner, Log2Knuth, Log2Estrin, Log2EstrinFMA}, Log2Double},
	{"log10", [4]func(float32) float32{Log10Horner, Log10Knuth, Log10Estrin, Log10EstrinFMA}, Log10Double},
}

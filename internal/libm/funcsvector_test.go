package libm

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// vecBlockPairs enumerates every (vector block, scalar-body block) pair across
// the full kernels and both prefix precisions — the backend × precision grid.
func vecBlockPairs(t *testing.T) map[string][2]func([]float64) {
	t.Helper()
	pairs := make(map[string][2]func([]float64))
	if len(GeneratedVecBlockFuncs) != len(GeneratedBlockFuncs) {
		t.Fatalf("%d vector block kernels vs %d scalar-body block kernels",
			len(GeneratedVecBlockFuncs), len(GeneratedBlockFuncs))
	}
	for key, vec := range GeneratedVecBlockFuncs {
		blk := GeneratedBlockFuncs[key]
		if blk == nil {
			t.Fatalf("vector kernel %q has no block counterpart", key)
		}
		pairs[key+"/full"] = [2]func([]float64){vec, blk}
	}
	if len(GeneratedPrefixVecBlockFuncs) != len(GeneratedPrefixBlockFuncs) {
		t.Fatalf("%d prefix vector kernels vs %d prefix block kernels",
			len(GeneratedPrefixVecBlockFuncs), len(GeneratedPrefixBlockFuncs))
	}
	for key, vec := range GeneratedPrefixVecBlockFuncs {
		blk := GeneratedPrefixBlockFuncs[key]
		if blk == nil {
			t.Fatalf("prefix vector kernel %q has no block counterpart", key)
		}
		pairs[key] = [2]func([]float64){vec, blk}
	}
	return pairs
}

// vecProbes builds an adversarial input block for one function: random domain
// sweeps salted with IEEE specials, plateau edges, exact special-table inputs
// (exp10's integer decades), structural-zero inputs (r == 0 on the fast
// path), and values straddling the piecewise bounds — so every lane-group
// shape occurs: all-fast, all-slow, and mixed groups at every lane position.
func vecProbes(rng *rand.Rand, name string, n int) []float64 {
	specials := []float64{
		math.NaN(), math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1),
		-150, 128, 1e-40, -1e-40, -1,
		// exp10 special-table inputs; ordinary values for the others.
		1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
		// Exact powers 2^e*(1+j/128): reduce to r == 0 on the log fast path.
		1.5, 0.75, 3, 96, 0x1p-100,
	}
	src := make([]float64, n)
	for i := range src {
		switch i % 16 {
		case 5:
			src[i] = specials[rng.Intn(len(specials))]
		case 11:
			// Near the piecewise boundary (around 0 after reduction).
			src[i] = (rng.Float64() - 0.5) * 0x1p-24
		default:
			src[i] = float64(randInput(rng, name))
		}
	}
	return src
}

// TestGeneratedVecBlockFuncsMatchScalar: every vector block kernel — every
// backend × precision pair — is bit-identical to its scalar-body block
// kernel (and hence to the scalar kernel) on every element, across lengths
// covering empty input, sub-group tails, exact group multiples and long
// mixed blocks.
func TestGeneratedVecBlockFuncsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(313))
	for key, pair := range vecBlockPairs(t) {
		vec, blk := pair[0], pair[1]
		name, _, _ := strings.Cut(key, "/")
		for _, n := range []int{0, 1, 7, 8, 9, 16, 255, 256, 2000} {
			src := vecProbes(rng, name, n)
			got := append([]float64(nil), src...)
			want := append([]float64(nil), src...)
			vec(got)
			blk(want)
			for i := range src {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) &&
					!(math.IsNaN(got[i]) && math.IsNaN(want[i])) {
					t.Fatalf("%s vec(%x=%g) = %x, block = %x",
						key, math.Float64bits(src[i]), src[i],
						math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
		}
	}
}

// TestGeneratedVecBatchFuncsMatchBatch: the VecBatch and AsmBatch forms are
// bit-identical to the Batch form for every kernel and precision, at lengths
// covering the conversion staging's 4-wide body, its scalar tail, and
// multi-block inputs.
func TestGeneratedVecBatchFuncsMatchBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(414))
	type trio struct {
		batch, vec, asm func(dst, src []float32)
		name            string
	}
	var trios []trio
	for key, b := range GeneratedBatchFuncs {
		name, _, _ := strings.Cut(key, "/")
		trios = append(trios, trio{b, GeneratedVecBatchFuncs[key], GeneratedAsmBatchFuncs[key], name})
	}
	for key, b := range GeneratedPrefixBatchFuncs {
		name, _, _ := strings.Cut(key, "/")
		trios = append(trios, trio{b, GeneratedPrefixVecBatchFuncs[key], GeneratedPrefixAsmBatchFuncs[key], name})
	}
	for _, tr := range trios {
		if tr.vec == nil || tr.asm == nil {
			t.Fatal("batch kernel missing a vector or asm-staged form")
		}
		for _, n := range []int{0, 1, 3, 4, 5, 8, 255, 256, 257, 1000} {
			src := make([]float32, n)
			for i := range src {
				src[i] = float32(vecProbes(rng, tr.name, 1)[0])
			}
			want := make([]float32, n)
			gotVec := make([]float32, n)
			gotAsm := make([]float32, n)
			tr.batch(want, src)
			tr.vec(gotVec, src)
			tr.asm(gotAsm, src)
			for i := range src {
				wb := math.Float32bits(want[i])
				if vb := math.Float32bits(gotVec[i]); vb != wb {
					t.Fatalf("%s n=%d [%d] x=%x: vec batch %x, batch %x", tr.name, n, i, math.Float32bits(src[i]), vb, wb)
				}
				if ab := math.Float32bits(gotAsm[i]); ab != wb {
					t.Fatalf("%s n=%d [%d] x=%x: asm batch %x, batch %x", tr.name, n, i, math.Float32bits(src[i]), ab, wb)
				}
			}
		}
	}
}

// TestExhaustiveBf16BackendEquivalence: for every bf16 prefix kernel, all
// three float32 batch backends agree bit-for-bit with the scalar prefix
// kernel over every one of the 2^16 bfloat16 bit patterns — an exhaustive
// proof that backend selection can never change a served bf16 result.
func TestExhaustiveBf16BackendEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep skipped in -short mode")
	}
	src := make([]float32, 1<<16)
	for i := range src {
		src[i] = math.Float32frombits(uint32(i) << 16)
	}
	want := make([]float32, len(src))
	gotVec := make([]float32, len(src))
	gotAsm := make([]float32, len(src))
	for key, scalar := range GeneratedPrefixFuncs {
		if !strings.HasSuffix(key, "/bf16") {
			continue
		}
		for i, x := range src {
			want[i] = float32(scalar(float64(x)))
		}
		batch := GeneratedPrefixBatchFuncs[key]
		vec := GeneratedPrefixVecBatchFuncs[key]
		asm := GeneratedPrefixAsmBatchFuncs[key]
		batch(gotVec, src)
		for i := range src {
			if a, b := math.Float32bits(gotVec[i]), math.Float32bits(want[i]); a != b {
				t.Fatalf("%s batch(%#08x): %#08x, scalar %#08x", key, math.Float32bits(src[i]), a, b)
			}
		}
		vec(gotVec, src)
		asm(gotAsm, src)
		for i := range src {
			wb := math.Float32bits(want[i])
			if a := math.Float32bits(gotVec[i]); a != wb {
				t.Fatalf("%s vec batch(%#08x): %#08x, scalar %#08x", key, math.Float32bits(src[i]), a, wb)
			}
			if a := math.Float32bits(gotAsm[i]); a != wb {
				t.Fatalf("%s asm batch(%#08x): %#08x, scalar %#08x", key, math.Float32bits(src[i]), a, wb)
			}
		}
	}
}

package libm

import (
	"math"
	"math/rand"
	"testing"

	"rlibm/internal/core"
	"rlibm/internal/fp"
	"rlibm/internal/oracle"
)

// fnOracle maps the library functions to their oracle counterparts.
var fnOracle = map[string]oracle.Func{
	"exp": oracle.Exp, "exp2": oracle.Exp2, "exp10": oracle.Exp10,
	"log": oracle.Log, "log2": oracle.Log2, "log10": oracle.Log10,
}

// TestSpecialValuesIEEE: NaN/Inf/zero semantics for every function and
// variant.
func TestSpecialValuesIEEE(t *testing.T) {
	nan := float32(math.NaN())
	pinf := float32(math.Inf(1))
	ninf := float32(math.Inf(-1))
	for _, f := range Funcs {
		isLog := fnOracle[f.Name].IsLog()
		for si, impl := range f.F32 {
			if got := impl(nan); !math.IsNaN(float64(got)) {
				t.Errorf("%s/%v (NaN) = %g", f.Name, Schemes[si], got)
			}
			if got := impl(pinf); !math.IsInf(float64(got), 1) {
				t.Errorf("%s/%v (+Inf) = %g", f.Name, Schemes[si], got)
			}
			if isLog {
				if got := impl(ninf); !math.IsNaN(float64(got)) {
					t.Errorf("%s/%v (-Inf) = %g, want NaN", f.Name, Schemes[si], got)
				}
				if got := impl(-1); !math.IsNaN(float64(got)) {
					t.Errorf("%s/%v (-1) = %g, want NaN", f.Name, Schemes[si], got)
				}
				if got := impl(0); !math.IsInf(float64(got), -1) {
					t.Errorf("%s/%v (0) = %g, want -Inf", f.Name, Schemes[si], got)
				}
			} else {
				if got := impl(ninf); got != 0 {
					t.Errorf("%s/%v (-Inf) = %g, want 0", f.Name, Schemes[si], got)
				}
				if got := impl(0); got != 1 {
					t.Errorf("%s/%v (0) = %g, want 1", f.Name, Schemes[si], got)
				}
			}
		}
	}
}

// TestExactIdentities: inputs whose results are exactly representable must
// come out exactly, whichever path (polynomial or special table) serves
// them.
func TestExactIdentities(t *testing.T) {
	for n := -20; n <= 20; n++ {
		want := float32(math.Ldexp(1, n))
		for si := range Schemes {
			if got := Exp2Double(float32(n), Schemes[si]); float32(got) != want {
				t.Errorf("exp2(%d)/%v = %g, want %g", n, Schemes[si], got, want)
			}
			if got := Log2Double(want, Schemes[si]); float32(got) != float32(n) {
				t.Errorf("log2(2^%d)/%v = %g, want %d", n, Schemes[si], got, n)
			}
		}
	}
	for n := 0; n <= 8; n++ {
		want := float32(math.Pow(10, float64(n)))
		for si := range Schemes {
			if got := Exp10Double(float32(n), Schemes[si]); float32(got) != want {
				t.Errorf("exp10(%d)/%v = %g, want %g", n, Schemes[si], got, want)
			}
			if got := Log10Double(want, Schemes[si]); float32(got) != float32(n) {
				t.Errorf("log10(10^%d)/%v = %g, want %d", n, Schemes[si], got, n)
			}
		}
	}
	for si := range Schemes {
		if got := ExpDouble(0, Schemes[si]); got != 1 {
			t.Errorf("exp(0)/%v = %g", Schemes[si], got)
		}
		if got := LogDouble(1, Schemes[si]); got != 0 {
			t.Errorf("log(1)/%v = %g", Schemes[si], got)
		}
	}
}

// TestVariantsAgreeOnResults: the four configurations compute different
// instruction sequences but identical correctly rounded results. A tiny
// disagreement budget covers the documented stride-sampling residual, where
// two variants may land on opposite sides of a tie for an untrained input.
func TestVariantsAgreeOnResults(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, f := range Funcs {
		disagree := 0
		for i := 0; i < 30000; i++ {
			x := randInput(rng, f.Name)
			base := f.F32[0](x)
			for si := 1; si < 4; si++ {
				if got := f.F32[si](x); got != base && !(math.IsNaN(float64(got)) && math.IsNaN(float64(base))) {
					disagree++
					if disagree > 5 {
						t.Fatalf("%s(%g): %v gives %g, %v gives %g (too many disagreements)",
							f.Name, x, Schemes[0], base, Schemes[si], got)
					}
				}
			}
		}
		if disagree > 0 {
			t.Logf("%s: %d variant disagreements in 90000 comparisons (documented residual)", f.Name, disagree)
		}
	}
}

// TestAgainstOracleSampled: the library's float32 results match the oracle
// on random and structured inputs — the sampled stand-in for the artifact's
// exhaustive 2^32 sweep.
//
// The shipped polynomials are trained on a ~1.3M-input sweep per function
// rather than all 2^32 inputs (DESIGN.md, substitution 3), which leaves a
// measured ~3e-5 fraction of float32 inputs one ulp off near rounding-tie
// boundaries. The test therefore allows that documented residual (and
// requires any miss to be at most one float32 ulp); the ML formats are
// covered exhaustively by TestExhaustiveBfloat16Inputs and
// TestExhaustiveTF32SampledModes with zero tolerance.
func TestAgainstOracleSampled(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	f32 := fp.Float32
	const perFunc = 1200
	for _, f := range Funcs {
		ofn := fnOracle[f.Name]
		misses := 0
		checked := 0
		for i := 0; i < perFunc; i++ {
			x := randInput(rng, f.Name)
			fx := float64(x)
			if fx == 0 || math.IsNaN(fx) || math.IsInf(fx, 0) || (ofn.IsLog() && fx <= 0) {
				continue
			}
			want := float32(oracle.Correct(ofn, fx, f32, fp.RNE))
			for si, impl := range f.F32 {
				got := impl(x)
				checked++
				if math.Float32bits(got) == math.Float32bits(want) {
					continue
				}
				misses++
				// Any residual miss must be a single float32 ulp.
				up := float32(f32.NextUp(float64(want)))
				dn := float32(f32.NextDown(float64(want)))
				if got != up && got != dn {
					t.Fatalf("%s(%x=%g)/%v = %g (%x), oracle %g (%x): more than one ulp off",
						f.Name, math.Float32bits(x), x, Schemes[si], got,
						math.Float32bits(got), want, math.Float32bits(want))
				}
			}
		}
		if misses > checked/500 {
			t.Fatalf("%s: %d of %d sampled results off by one ulp — far above the documented residual", f.Name, misses, checked)
		}
		if misses > 0 {
			t.Logf("%s: %d of %d sampled results one ulp off (documented stride-sampling residual)", f.Name, misses, checked)
		}
	}
}

// TestMultiFormatSampled: the raw double result double-rounds correctly to
// smaller formats under every standard mode (the RLibm-ALL guarantee).
func TestMultiFormatSampled(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	formats := []fp.Format{fp.Bfloat16, fp.TensorFloat32, {Bits: 27, ExpBits: 8}, {Bits: 10, ExpBits: 8}}
	for _, f := range Funcs {
		ofn := fnOracle[f.Name]
		for i := 0; i < 250; i++ {
			x := randInput(rng, f.Name)
			fx := float64(x)
			if fx == 0 || math.IsNaN(fx) || math.IsInf(fx, 0) || (ofn.IsLog() && fx <= 0) {
				continue
			}
			d := f.Double(x, SchemeEstrinFMA)
			val := oracle.Compute(ofn, fx)
			for _, t2 := range formats {
				for _, m := range fp.StandardModes {
					got := RoundTo(d, t2, m)
					want := val.Round(t2, m)
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("%s(%g) to %v/%v: got %g, oracle %g", f.Name, x, t2, m, got, want)
					}
				}
			}
		}
	}
}

// TestDomainCutsMatchPipeline: the generated plateau constants agree with a
// fresh domain analysis against the FP34 target.
func TestDomainCutsMatchPipeline(t *testing.T) {
	cases := []struct {
		fn   oracle.Func
		data *funcData
	}{
		{oracle.Exp, &expData},
		{oracle.Exp2, &exp2Data},
		{oracle.Exp10, &exp10Data},
	}
	for _, tc := range cases {
		dom := core.FindDomain(tc.fn, fp.FP34)
		if dom.Lo != tc.data.domLo || dom.Hi != tc.data.domHi {
			t.Errorf("%v: domain cuts (%.17g, %.17g) vs pipeline (%.17g, %.17g)",
				tc.fn, tc.data.domLo, tc.data.domHi, dom.Lo, dom.Hi)
		}
		if dom.TinyLo != tc.data.tinyLo || dom.TinyHi != tc.data.tinyHi {
			t.Errorf("%v: tiny cuts differ", tc.fn)
		}
		if dom.LoVal != tc.data.loVal || dom.HiVal != tc.data.hiVal ||
			dom.TinyLoVal != tc.data.tinyLoVal || dom.TinyHiVal != tc.data.tinyHiVal {
			t.Errorf("%v: plateau values differ", tc.fn)
		}
	}
}

// TestPlateauEdges: inputs at and just beyond the cuts produce the correct
// results for all modes (overflow, underflow, near-one).
func TestPlateauEdges(t *testing.T) {
	f32 := fp.Float32
	// Overflow: the float32 just above the exp cut must give +Inf under RNE
	// and MaxFinite under RTZ.
	big := float32(89)
	if got := f32.Round(ExpDouble(big, SchemeEstrinFMA), fp.RNE); !math.IsInf(got, 1) {
		t.Errorf("exp(89) RNE = %g, want +Inf", got)
	}
	if got := f32.Round(ExpDouble(big, SchemeEstrinFMA), fp.RTZ); got != f32.MaxFinite() {
		t.Errorf("exp(89) RTZ = %g, want max finite", got)
	}
	// Underflow: exp(-104) flushes to zero under RNE but not under RTP.
	small := float32(-104)
	if got := f32.Round(ExpDouble(small, SchemeEstrinFMA), fp.RNE); got != 0 {
		t.Errorf("exp(-104) RNE = %g, want 0", got)
	}
	if got := f32.Round(ExpDouble(small, SchemeEstrinFMA), fp.RTP); got != f32.MinSubnormal() {
		t.Errorf("exp(-104) RTP = %g, want min subnormal", got)
	}
	// Near-one plateau: the smallest positive float32.
	tiny := float32(math.Float32frombits(1))
	want := oracle.Correct(oracle.Exp, float64(tiny), f32, fp.RNE)
	if got := f32.Round(ExpDouble(tiny, SchemeEstrinFMA), fp.RNE); got != want {
		t.Errorf("exp(min subnormal) = %g, oracle %g", got, want)
	}
	wantUp := oracle.Correct(oracle.Exp, float64(tiny), f32, fp.RTP)
	if got := f32.Round(ExpDouble(tiny, SchemeEstrinFMA), fp.RTP); got != wantUp {
		t.Errorf("exp(min subnormal) RTP = %g, oracle %g", got, wantUp)
	}
}

// TestSubnormalOutputs: exp2 deep in the subnormal output range.
func TestSubnormalOutputs(t *testing.T) {
	f32 := fp.Float32
	for _, x := range []float32{-127.5, -130.25, -140.0625, -148.8, -149.2} {
		d := Exp2Double(x, SchemeEstrinFMA)
		want := oracle.Correct(oracle.Exp2, float64(x), f32, fp.RNE)
		if got := f32.Round(d, fp.RNE); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("exp2(%g) = %g, oracle %g", x, got, want)
		}
	}
}

// TestBoundaryNeighborhoods walks float32 neighbours around every domain
// cut, comparing against the oracle — the most failure-prone inputs.
func TestBoundaryNeighborhoods(t *testing.T) {
	f32 := fp.Float32
	cuts := map[string][]float64{
		"exp":   {expData.domLo, expData.domHi, expData.tinyLo, expData.tinyHi},
		"exp2":  {exp2Data.domLo, exp2Data.domHi, exp2Data.tinyLo, exp2Data.tinyHi},
		"exp10": {exp10Data.domLo, exp10Data.domHi, exp10Data.tinyLo, exp10Data.tinyHi},
	}
	for _, f := range Funcs {
		cs, ok := cuts[f.Name]
		if !ok {
			continue
		}
		ofn := fnOracle[f.Name]
		for _, cut := range cs {
			x := float32(cut)
			for k := -8; k <= 8; k++ {
				xi := x
				for j := 0; j < abs(k); j++ {
					if k > 0 {
						xi = math.Nextafter32(xi, float32(math.Inf(1)))
					} else {
						xi = math.Nextafter32(xi, float32(math.Inf(-1)))
					}
				}
				fx := float64(xi)
				if fx == 0 || math.IsInf(fx, 0) {
					continue
				}
				d := f.Double(xi, SchemeEstrinFMA)
				for _, m := range fp.StandardModes {
					got := f32.Round(d, m)
					want := oracle.Correct(ofn, fx, f32, m)
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("%s(%g) near cut %g mode %v: got %g, oracle %g",
							f.Name, xi, cut, m, got, want)
					}
				}
			}
		}
	}
}

func abs(k int) int {
	if k < 0 {
		return -k
	}
	return k
}

// randInput draws inputs over the function's meaningful float32 domain,
// including subnormals and special-path territory.
func randInput(rng *rand.Rand, name string) float32 {
	switch rng.Intn(8) {
	case 0: // arbitrary bit pattern (covers NaN/Inf/subnormals too)
		return math.Float32frombits(rng.Uint32())
	case 1: // tiny
		return float32(math.Ldexp(1+rng.Float64(), -120-rng.Intn(30)))
	}
	switch name {
	case "exp":
		return float32((rng.Float64()*2 - 1) * 110)
	case "exp2":
		return float32((rng.Float64()*2 - 1) * 160)
	case "exp10":
		return float32((rng.Float64()*2 - 1) * 50)
	default:
		return float32(math.Ldexp(1+rng.Float64(), rng.Intn(253)-126))
	}
}

// TestExhaustiveBfloat16Inputs: every bfloat16 value is a float32 value
// whose trailing mantissa bits are zero; the generator enumerates all of
// them (the aligned pass), so the library is exhaustively correct for
// bfloat16 inputs rounded back to bfloat16 — checked here against the
// oracle for every finite bfloat16 input, all five modes.
func TestExhaustiveBfloat16Inputs(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep; skipped with -short")
	}
	bf := fp.Bfloat16
	for _, f := range Funcs {
		ofn := fnOracle[f.Name]
		wrong := 0
		checked := 0
		bf.FiniteValues(func(b uint64, v float64) bool {
			if v == 0 || (ofn.IsLog() && v <= 0) {
				return true
			}
			d := f.Double(float32(v), SchemeEstrinFMA)
			val := oracle.Compute(ofn, v)
			for _, m := range fp.StandardModes {
				got := RoundTo(d, bf, m)
				want := val.Round(bf, m)
				checked++
				if math.Float64bits(got) != math.Float64bits(want) {
					wrong++
					if wrong <= 3 {
						t.Errorf("%s(%g) to bfloat16/%v: got %g, oracle %g", f.Name, v, m, got, want)
					}
				}
			}
			return true
		})
		if wrong > 0 {
			t.Fatalf("%s: %d of %d bfloat16 results wrong", f.Name, wrong, checked)
		}
	}
}

// TestExhaustiveTF32SampledModes: all tensorfloat32-representable inputs
// (a 2^19-point grid), one nearest and one directed mode to keep the oracle
// budget reasonable.
func TestExhaustiveTF32SampledModes(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep; skipped with -short")
	}
	tf := fp.TensorFloat32
	modes := []fp.Mode{fp.RNE, fp.RTN}
	for _, f := range Funcs {
		ofn := fnOracle[f.Name]
		wrong := 0
		tf.FiniteValues(func(b uint64, v float64) bool {
			if v == 0 || (ofn.IsLog() && v <= 0) {
				return true
			}
			d := f.Double(float32(v), SchemeEstrinFMA)
			val := oracle.Compute(ofn, v)
			for _, m := range modes {
				got := RoundTo(d, tf, m)
				want := val.Round(tf, m)
				if math.Float64bits(got) != math.Float64bits(want) {
					wrong++
					if wrong <= 3 {
						t.Errorf("%s(%g) to tf32/%v: got %g, oracle %g", f.Name, v, m, got, want)
					}
				}
			}
			return wrong < 10
		})
		if wrong > 0 {
			t.Fatalf("%s: %d tensorfloat32 results wrong", f.Name, wrong)
		}
	}
}

// TestShippedDataSanity: structural invariants of the embedded generation
// data — degrees within RLibm's bounds, finite coefficients, sorted piece
// boundaries and special tables, and the expected leading coefficients
// (p(0)=1 for exponentials via c0~1; logs have c0~0).
func TestShippedDataSanity(t *testing.T) {
	for _, fd := range []struct {
		name string
		data *funcData
	}{
		{"exp", &expData}, {"exp2", &exp2Data}, {"exp10", &exp10Data},
		{"log", &logData}, {"log2", &log2Data}, {"log10", &log10Data},
	} {
		isLog := fd.name[0] == 'l'
		for si := range fd.data.impls {
			impl := &fd.data.impls[si]
			if len(impl.pieces) == 0 {
				t.Fatalf("%s/%d: no pieces", fd.name, si)
			}
			for pi, p := range impl.pieces {
				if len(p.coeffs) < 4 || len(p.coeffs) > 7 {
					t.Errorf("%s/%d piece %d: %d coefficients (degree out of RLibm's 3..6 range)",
						fd.name, si, pi, len(p.coeffs))
				}
				for ci, c := range p.coeffs {
					if math.IsNaN(c) || math.IsInf(c, 0) {
						t.Errorf("%s/%d piece %d c%d non-finite", fd.name, si, pi, ci)
					}
				}
				if pi > 0 && !(p.lo > impl.pieces[pi-1].lo) {
					t.Errorf("%s/%d: piece boundaries not increasing", fd.name, si)
				}
				// Only the piece containing the zero reduced input has its
				// constant term pinned (to log(1)=0 resp. 2^0=1); later
				// pieces fit their own sub-domain freely.
				if pi == 0 {
					if isLog {
						if math.Abs(p.coeffs[0]) > 1e-9 {
							t.Errorf("%s/%d piece %d: c0 = %g, want ~0", fd.name, si, pi, p.coeffs[0])
						}
					} else if math.Abs(p.coeffs[0]-1) > 1e-6 {
						t.Errorf("%s/%d piece %d: c0 = %g, want ~1", fd.name, si, pi, p.coeffs[0])
					}
				}
			}
			for i := 1; i < len(impl.specialBits); i++ {
				if impl.specialBits[i] <= impl.specialBits[i-1] {
					t.Errorf("%s/%d: special table not sorted", fd.name, si)
				}
			}
			if len(impl.specialBits) != len(impl.specialVals) {
				t.Errorf("%s/%d: special table length mismatch", fd.name, si)
			}
			if len(impl.specialBits) > 16 {
				t.Errorf("%s/%d: %d specials — far beyond the paper's few-per-function", fd.name, si, len(impl.specialBits))
			}
			// The Knuth slot adapts every degree-4..6 piece.
			if Scheme(si) == SchemeKnuth {
				for pi, p := range impl.pieces {
					if p.a4 == nil && p.a5 == nil && p.a6 == nil {
						t.Errorf("%s/knuth piece %d: missing adapted coefficients", fd.name, pi)
					}
				}
			}
		}
		if !isLog {
			if !(fd.data.domLo < 0 && fd.data.domHi > 0 &&
				fd.data.tinyLo < 0 && fd.data.tinyHi > 0) {
				t.Errorf("%s: implausible domain cuts %+v", fd.name, fd.data)
			}
		}
	}
}

package libm

import "rlibm/internal/cpufeat"

// The assembly conversion path: the generated AsmBatch kernels stage float32
// requests through the same vector block kernels as the VecBatch kernels,
// but run the widen (float32 -> float64) and narrow (float64 -> float32)
// staging loops as 4-wide AVX conversion instructions. VCVTPS2PD is exact
// and VCVTPD2PS rounds to nearest even under the default MXCSR — the same
// semantics as Go's scalar conversions, including NaN quieting — so the
// assembly staging is bit-identical to the pure-Go loops by construction
// (and a test sweeps both paths to pin it).
//
// asmConv is resolved once at init from the CPUID probe; the pure-Go loops
// remain the fallback on AVX-less hardware, so the generated AsmBatch
// kernels are safe to call anywhere and merely lose their edge.
var asmConv = cpufeat.X86.HasAVX

// AsmConvAvailable reports whether the assembly conversion staging path is
// active in this process (amd64 with OS-supported AVX). pkg/rlibm's backend
// selection uses this to decide whether BackendAsm is offered.
func AsmConvAvailable() bool { return asmConv }

// widenAVX converts n (a multiple of 4, > 0) float32s at src to float64s at
// dst with VCVTPS2PD.
//
//go:noescape
func widenAVX(dst *float64, src *float32, n int)

// narrowAVX converts n (a multiple of 4, > 0) float64s at src to float32s
// at dst with VCVTPD2PS (round to nearest even via the default MXCSR).
//
//go:noescape
func narrowAVX(dst *float32, src *float64, n int)

// widenF32 converts src into dst[:len(src)] (dst must be at least as long),
// through the AVX loop when available.
func widenF32(dst []float64, src []float32) {
	_ = dst[:len(src)]
	i := 0
	if asmConv {
		if n := len(src) &^ 3; n > 0 {
			widenAVX(&dst[0], &src[0], n)
			i = n
		}
	}
	for ; i < len(src); i++ {
		dst[i] = float64(src[i])
	}
}

// narrowF32 converts src into dst[:len(src)] (dst must be at least as
// long), through the AVX loop when available.
func narrowF32(dst []float32, src []float64) {
	_ = dst[:len(src)]
	i := 0
	if asmConv {
		if n := len(src) &^ 3; n > 0 {
			narrowAVX(&dst[0], &src[0], n)
			i = n
		}
	}
	for ; i < len(src); i++ {
		dst[i] = float32(src[i])
	}
}

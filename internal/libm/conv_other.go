//go:build !amd64

package libm

// Portable conversion staging: on non-amd64 architectures the generated
// AsmBatch kernels degrade to exactly the VecBatch behaviour.

// AsmConvAvailable reports whether the assembly conversion staging path is
// active in this process; never on non-amd64 builds.
func AsmConvAvailable() bool { return false }

// widenF32 converts src into dst[:len(src)] (dst must be at least as long).
func widenF32(dst []float64, src []float32) {
	_ = dst[:len(src)]
	for i, x := range src {
		dst[i] = float64(x)
	}
}

// narrowF32 converts src into dst[:len(src)] (dst must be at least as long).
func narrowF32(dst []float32, src []float64) {
	_ = dst[:len(src)]
	for i, x := range src {
		dst[i] = float32(x)
	}
}

package libm

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"rlibm/internal/fp"
	"rlibm/internal/oracle"
)

// prefixDataOf maps a function name to its embedded generation data.
func prefixDataOf(t *testing.T, name string) *funcData {
	t.Helper()
	switch name {
	case "exp":
		return &expData
	case "exp2":
		return &exp2Data
	case "exp10":
		return &exp10Data
	case "log":
		return &logData
	case "log2":
		return &log2Data
	case "log10":
		return &log10Data
	}
	t.Fatalf("unknown function %q", name)
	return nil
}

// splitPrefixKey splits "func/scheme/prec" into its components.
func splitPrefixKey(t *testing.T, key string) (fn string, s Scheme, ps PrecSpec) {
	t.Helper()
	parts := strings.Split(key, "/")
	if len(parts) != 3 {
		t.Fatalf("malformed prefix key %q", key)
	}
	fn = parts[0]
	found := false
	for _, sc := range Schemes {
		if sc.String() == parts[1] {
			s, found = sc, true
		}
	}
	if !found {
		t.Fatalf("unknown scheme in key %q", key)
	}
	ps, ok := PrecSpecByName(parts[2])
	if !ok {
		t.Fatalf("unknown precision in key %q", key)
	}
	return fn, s, ps
}

// TestRoundNarrowMatchesFormatRound: the integer fast path of roundBf16 and
// roundTf32 is bit-identical to the fp.Format.Round reference on random
// doubles and on every structured edge — window boundaries, carries out of
// the top binade, subnormal results, zeros, infinities, NaN.
func TestRoundNarrowMatchesFormatRound(t *testing.T) {
	rounders := []struct {
		name string
		f    func(float64) float64
		fmt  fp.Format
	}{
		{"bf16", roundBf16, fp.Bfloat16},
		{"tf32", roundTf32, fp.TensorFloat32},
	}
	edges := []float64{
		0, math.Copysign(0, -1), math.NaN(), math.Inf(1), math.Inf(-1),
		1, -1, 0x1.ffp127, -0x1.ffp127, 0x1.fffffep127, math.MaxFloat64,
		0x1p-126, 0x1p-127, 0x1p-149, 5e-324, 1e-300, -1e-300,
		0x1.fffffffffffffp127,  // carries to exactly 2^128 at any narrow precision
		-0x1.fffffffffffffp127, // and the negative mirror
		0x1.008p0, 0x1.018p0,   // RNE ties at bf16 granularity (even/odd lsb)
		0x1.0008p0, 0x1.0018p0, // and at tf32 granularity
	}
	// Biased-exponent window boundaries of the fast path, one binade to
	// either side.
	for _, e := range []int{-128, -127, -126, -125, 126, 127} {
		edges = append(edges, math.Ldexp(1.5, e), math.Ldexp(-1.75, e))
	}
	rng := rand.New(rand.NewSource(4517))
	for _, r := range rounders {
		inputs := append([]float64(nil), edges...)
		for i := 0; i < 500000; i++ {
			inputs = append(inputs, math.Float64frombits(rng.Uint64()))
		}
		// Concentrate on the representable range, where the fast path runs.
		for i := 0; i < 500000; i++ {
			inputs = append(inputs, math.Ldexp(1+rng.Float64(), rng.Intn(260)-130)*float64(1-2*rng.Intn(2)))
		}
		for _, d := range inputs {
			got := r.f(d)
			want := r.fmt.Round(d, fp.RNE)
			if math.Float64bits(got) != math.Float64bits(want) &&
				!(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("round%s(%x=%g) = %x, fp.Round = %x",
					r.name, math.Float64bits(d), d, math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
}

// TestPrefixKernelsMatchFullRounded: for every prefix kernel and every input
// of its output format, the prefix result equals the full kernel's double
// rounded to the output format — the bit-level contract the emitter verified
// when it chose the prefix degree. (The full kernel's double lies in the
// exact result's 34-bit round-to-odd interval, so agreement here plus the
// oracle battery below is the RLibm-ALL argument at 18/21 bits.)
//
// bf16 kernels sweep all bfloat16 inputs. tf32 kernels sweep the 14-bit
// slice always and the full 2^19 tf32 grid without -short.
func TestPrefixKernelsMatchFullRounded(t *testing.T) {
	if len(GeneratedPrefixFuncs) != 48 {
		t.Fatalf("expected 48 prefix kernels (24 impls x 2 precisions), have %d", len(GeneratedPrefixFuncs))
	}
	for key, prefix := range GeneratedPrefixFuncs {
		fn, s, ps := splitPrefixKey(t, key)
		grid := ps.Out
		if ps.Name == "tf32" && testing.Short() {
			grid = fp.Format{Bits: 14, ExpBits: 8}
		}
		wrong := 0
		grid.FiniteValues(func(_ uint64, v float64) bool {
			got := prefix(v)
			want := ps.Out.Round(fullKernelDouble(fn, float32(v), s), fp.RNE)
			if math.Float64bits(got) != math.Float64bits(want) &&
				!(math.IsNaN(got) && math.IsNaN(want)) {
				wrong++
				if wrong <= 3 {
					t.Errorf("%s(%x=%g) = %x, full rounded = %x",
						key, math.Float64bits(v), v, math.Float64bits(got), math.Float64bits(want))
				}
			}
			return wrong < 10
		})
		if wrong > 0 {
			t.Fatalf("%s: %d mismatches against the rounded full kernel", key, wrong)
		}
	}
}

// TestPrefixExhaustiveOracle: the end-to-end correctness battery — every
// prefix kernel result is the correctly rounded value of its output format
// per the oracle. bfloat16 kernels are checked over all bfloat16 inputs;
// tf32 kernels over the 14-bit slice (every 14-bit value is tf32- and
// float32-representable). Zero tolerance: the prefix kernels were verified
// exhaustively at emit time, so any mismatch is a generator bug.
func TestPrefixExhaustiveOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep; skipped with -short")
	}
	for _, ps := range PrecSpecs {
		grid := ps.Out
		if ps.Name == "tf32" {
			grid = fp.Format{Bits: 14, ExpBits: 8}
		}
		for _, f := range Funcs {
			ofn := fnOracle[f.Name]
			wrong, checked := 0, 0
			grid.FiniteValues(func(_ uint64, v float64) bool {
				if v == 0 || (ofn.IsLog() && v <= 0) {
					return true
				}
				want := oracle.Compute(ofn, v).Round(ps.Out, fp.RNE)
				for _, s := range Schemes {
					key := f.Name + "/" + s.String() + "/" + ps.Name
					got := GeneratedPrefixFuncs[key](v)
					checked++
					if math.Float64bits(got) != math.Float64bits(want) &&
						!(math.IsNaN(got) && math.IsNaN(want)) {
						wrong++
						if wrong <= 3 {
							t.Errorf("%s(%g) = %g, oracle %g", key, v, got, want)
						}
					}
				}
				return wrong < 10
			})
			if wrong > 0 {
				t.Fatalf("%s/%s: %d of %d prefix results wrong", f.Name, ps.Name, wrong, checked)
			}
		}
	}
}

// TestPrefixBlockBatchBitIdentity: the block and float32 batch forms of every
// prefix kernel are bit-identical to the scalar form per element, on blocks
// mixing specials, plateau inputs and ordinary values.
func TestPrefixBlockBatchBitIdentity(t *testing.T) {
	if len(GeneratedPrefixBlockFuncs) != len(GeneratedPrefixFuncs) ||
		len(GeneratedPrefixBatchFuncs) != len(GeneratedPrefixFuncs) {
		t.Fatalf("%d block / %d batch prefix kernels vs %d scalar",
			len(GeneratedPrefixBlockFuncs), len(GeneratedPrefixBatchFuncs), len(GeneratedPrefixFuncs))
	}
	rng := rand.New(rand.NewSource(97))
	for key, scalar := range GeneratedPrefixFuncs {
		fn, _, _ := splitPrefixKey(t, key)
		blk, bat := GeneratedPrefixBlockFuncs[key], GeneratedPrefixBatchFuncs[key]
		for _, n := range []int{0, 1, 7, 1000} {
			src := make([]float64, n)
			for i := range src {
				switch i % 9 {
				case 7:
					src[i] = []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1)}[i%5]
				case 8:
					src[i] = []float64{-150, 128, 1e-40, -1, 1}[i%5]
				default:
					src[i] = float64(randInput(rng, fn))
				}
			}
			got := append([]float64(nil), src...)
			blk(got)
			src32 := make([]float32, n)
			for i, x := range src {
				src32[i] = float32(x)
			}
			got32 := make([]float32, n)
			bat(got32, src32)
			for i, x := range src {
				want := scalar(x)
				if math.Float64bits(got[i]) != math.Float64bits(want) &&
					!(math.IsNaN(got[i]) && math.IsNaN(want)) {
					t.Fatalf("%s block(%g) = %x, scalar = %x", key, x, math.Float64bits(got[i]), math.Float64bits(want))
				}
				want32 := float32(scalar(float64(src32[i])))
				if math.Float32bits(got32[i]) != math.Float32bits(want32) &&
					!(math.IsNaN(float64(got32[i])) && math.IsNaN(float64(want32))) {
					t.Fatalf("%s batch(%g) = %x, scalar = %x", key, src32[i], math.Float32bits(got32[i]), math.Float32bits(want32))
				}
			}
		}
	}
}

// TestPrefixDegreesProgressive: the recorded prefix degrees are genuine
// prefixes — at least degree 1, no deeper than the full polynomial, and
// monotone in precision (the bf16 prefix never needs more terms than tf32's).
// The full tables themselves are untouched by prefix emission; the batch
// average prefix degree must be strictly below the full average, or the
// progressive path buys nothing.
func TestPrefixDegreesProgressive(t *testing.T) {
	if len(GeneratedPrefixDegrees) != 48 {
		t.Fatalf("expected 48 recorded prefix degrees, have %d", len(GeneratedPrefixDegrees))
	}
	sumFull, sumPrefix := 0, 0
	for key, deg := range GeneratedPrefixDegrees {
		fn, s, _ := splitPrefixKey(t, key)
		impl := &prefixDataOf(t, fn).impls[s]
		fullDeg := 0
		for _, p := range impl.pieces {
			if d := len(p.coeffs) - 1; d > fullDeg {
				fullDeg = d
			}
		}
		if deg < 1 || deg > fullDeg {
			t.Errorf("%s: prefix degree %d outside [1, %d]", key, deg, fullDeg)
		}
		sumFull += fullDeg
		sumPrefix += deg
	}
	for _, f := range Funcs {
		for _, s := range Schemes {
			base := f.Name + "/" + s.String() + "/"
			if GeneratedPrefixDegrees[base+"bf16"] > GeneratedPrefixDegrees[base+"tf32"] {
				t.Errorf("%s: bf16 prefix degree %d exceeds tf32's %d",
					base, GeneratedPrefixDegrees[base+"bf16"], GeneratedPrefixDegrees[base+"tf32"])
			}
		}
	}
	if sumPrefix >= sumFull {
		t.Errorf("prefix degrees sum to %d, full degrees to %d — no truncation happened", sumPrefix, sumFull)
	}
}

package libm

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"

	"rlibm/internal/fp"
	"rlibm/internal/poly"
	"rlibm/internal/rangered"
)

// Progressive prefix kernels (RLIBM-PROG). For each generated implementation
// and each narrow serving precision, the emitter derives a prefix kernel from
// the same coefficient table: the polynomial truncated to the smallest degree
// whose result still lands in the precision's round-to-odd interval for every
// input of the output format, verified exhaustively at emit time against the
// full kernel.
//
// The verification needs no oracle: the full kernel's double lies in the
// 34-bit round-to-odd interval of the exact result, so its round-to-odd value
// at the precision's target width t (t <= 32) equals the exact one
// (round-to-odd composes across >= 2-bit precision gaps). A truncated
// evaluation t-agreeing with the full kernel therefore lies in the same
// round-to-odd interval as the exact result, and rounding it to the output
// format under any of the five IEEE modes is correct — the RLibm-ALL argument
// applied at 18/21 bits instead of 34.
//
// Because the check is exhaustive over the output format's inputs, the
// emitter can also drop cost from the prefix kernels and prove it safe:
//
//   - special-case table entries whose truncated polynomial value already
//     rounds identically are omitted (most do — the table absorbs 34-bit
//     misrounds far below the 18/21-bit granularity), leaving at most a
//     residual switch;
//   - when one polynomial piece truncates into a prefix that verifies over
//     the whole reduced domain, the piecewise dispatch collapses to that
//     single straight-line body.

// prefixPlan is the verified shape of one prefix kernel.
type prefixPlan struct {
	degree    int  // truncated polynomial degree
	collapsed bool // single piece serves the whole reduced domain

	evs []*poly.Evaluator // truncated evaluator per dispatch arm
	los []float64         // piece lower bounds, parallel to evs

	specialBits []uint64  // residual special inputs (sorted float64 bits)
	specialVals []float64 // their outputs, pre-rounded to the output format
}

// prefixPlanCache memoizes plans per "func/scheme/prec": the emission tests
// emit twice to prove determinism, and the exhaustive sweeps are the
// expensive part. Plans are deterministic, so caching cannot change output.
var prefixPlanCache sync.Map

// famOps carries the per-family reduction hooks in both runtime and codegen
// form, so the emit-time sweep evaluates exactly what the emitted code will.
type famOps struct {
	reduce     func(float64) (float64, rangered.Key)
	compensate func(float64, rangered.Key) float64
	pZero      float64
	isLog      bool

	reduceExpr, compExpr, pZeroExpr string
}

func famFor(fn string) (famOps, error) {
	switch fn {
	case "exp":
		return famOps{rangered.ReduceExp, rangered.CompensateExpFamily, 1, false,
			"rangered.ReduceExp(x)", "rangered.CompensateExpFamily", "1"}, nil
	case "exp2":
		return famOps{rangered.ReduceExp2, rangered.CompensateExpFamily, 1, false,
			"rangered.ReduceExp2(x)", "rangered.CompensateExpFamily", "1"}, nil
	case "exp10":
		return famOps{rangered.ReduceExp10, rangered.CompensateExpFamily, 1, false,
			"rangered.ReduceExp10(x)", "rangered.CompensateExpFamily", "1"}, nil
	case "log":
		return famOps{rangered.ReduceLog, rangered.CompensateLn, 0, true,
			"rangered.ReduceLog(x)", "rangered.CompensateLn", "0"}, nil
	case "log2":
		return famOps{rangered.ReduceLog, rangered.CompensateLog2, 0, true,
			"rangered.ReduceLog(x)", "rangered.CompensateLog2", "0"}, nil
	case "log10":
		return famOps{rangered.ReduceLog, rangered.CompensateLog10, 0, true,
			"rangered.ReduceLog(x)", "rangered.CompensateLog10", "0"}, nil
	}
	return famOps{}, fmt.Errorf("unknown function %q", fn)
}

func polySchemeOf(s Scheme) poly.Scheme {
	switch s {
	case SchemeHorner:
		return poly.Horner
	case SchemeKnuth:
		return poly.Knuth
	case SchemeEstrin:
		return poly.Estrin
	default:
		return poly.EstrinFMA
	}
}

// evalDouble runs the plan's polynomial path at x — the pre-rounding double
// the emitted kernel computes, minus the outer special switch the caller has
// already filtered.
func (pl *prefixPlan) evalDouble(fam *famOps, x float64) float64 {
	r, k := fam.reduce(x)
	if r == 0 {
		return fam.compensate(fam.pZero, k)
	}
	ev := pl.evs[0]
	for i := 1; i < len(pl.evs); i++ {
		if r >= pl.los[i] {
			ev = pl.evs[i]
		}
	}
	return fam.compensate(ev.Eval(r), k)
}

// fullKernelDouble is the full-degree raw-double kernel for fn under s.
func fullKernelDouble(fn string, x float32, s Scheme) float64 {
	for _, f := range Funcs {
		if f.Name == fn {
			return f.Double(x, s)
		}
	}
	panic("libm: unknown function " + fn)
}

// planPrefix derives (and memoizes) the verified prefix plan for one
// implementation and precision.
func planPrefix(fn string, fd *funcData, s Scheme, ps PrecSpec) (*prefixPlan, error) {
	key := fn + "/" + s.String() + "/" + ps.Name
	if v, ok := prefixPlanCache.Load(key); ok {
		return v.(*prefixPlan), nil
	}
	fam, err := famFor(fn)
	if err != nil {
		return nil, err
	}
	impl := &fd.impls[s]

	// The verification grid: every output-format input that reaches the
	// polynomial path. Plateau and IEEE special inputs take the same
	// constant branches in the prefix kernel (with emit-time-rounded
	// constants), so they agree by construction.
	type sample struct {
		x       float64
		fullRTO float64 // full kernel result rounded to the target via RTO
		special bool    // full kernel served it from the special-case table
	}
	var grid []sample
	ps.Out.FiniteValues(func(_ uint64, v float64) bool {
		if v == 0 {
			return true
		}
		if fam.isLog {
			if v < 0 {
				return true
			}
		} else {
			if v <= fd.domLo || v >= fd.domHi {
				return true
			}
			if (v < 0 && v >= fd.tinyLo) || (v > 0 && v <= fd.tinyHi) {
				return true
			}
		}
		full := fullKernelDouble(fn, float32(v), s)
		_, isSpec := impl.special(v)
		grid = append(grid, sample{x: v, fullRTO: ps.Target.Round(full, fp.RTO), special: isSpec})
		return true
	})

	maxDeg := 0
	for _, p := range impl.pieces {
		if d := len(p.coeffs) - 1; d > maxDeg {
			maxDeg = d
		}
	}

	build := func(pieces []pieceData, deg int) (*prefixPlan, error) {
		pl := &prefixPlan{degree: deg}
		for _, p := range pieces {
			n := deg + 1
			if n > len(p.coeffs) {
				n = len(p.coeffs)
			}
			ev, err := poly.NewEvaluator(polySchemeOf(s), poly.Poly(p.coeffs[:n]))
			if err != nil {
				return nil, err
			}
			pl.evs = append(pl.evs, ev)
			pl.los = append(pl.los, p.lo)
		}
		return pl, nil
	}

	// check sweeps the grid: a disagreement at a special-table input becomes
	// a residual special; anywhere else it sinks the candidate.
	check := func(pl *prefixPlan) (ok bool, spec []int) {
		for i := range grid {
			t := pl.evalDouble(&fam, grid[i].x)
			if math.Float64bits(ps.Target.Round(t, fp.RTO)) == math.Float64bits(grid[i].fullRTO) {
				continue
			}
			if grid[i].special {
				spec = append(spec, i)
				continue
			}
			return false, nil
		}
		return true, spec
	}

	var chosen *prefixPlan
	var chosenSpec []int
	for d := 1; d <= maxDeg && chosen == nil; d++ {
		pl, err := build(impl.pieces, d)
		if err != nil {
			continue // Knuth adaptation can be degenerate at a truncation; try deeper
		}
		if ok, sp := check(pl); ok {
			chosen, chosenSpec = pl, sp
		}
	}
	if chosen == nil {
		// Unreachable: at maxDeg the truncation is the full polynomial, which
		// t-agrees with itself at every non-special input.
		return nil, fmt.Errorf("%s: no verifying prefix degree", key)
	}

	// Piece collapse: prefer a single straight-line body when the piece
	// covering r = 0 verifies over the whole reduced domain within one extra
	// degree — it removes the dispatch branches from the hot loop.
	if len(impl.pieces) > 1 {
		j := 0
		for i, p := range impl.pieces {
			if p.lo <= 0 {
				j = i
			}
		}
		limit := chosen.degree + 1
		if limit > maxDeg {
			limit = maxDeg
		}
		for d := 1; d <= limit; d++ {
			pl, err := build(impl.pieces[j:j+1], d)
			if err != nil {
				continue
			}
			pl.los[0] = math.Inf(-1)
			pl.collapsed = true
			if ok, sp := check(pl); ok {
				chosen, chosenSpec = pl, sp
				break
			}
		}
	}

	sort.Slice(chosenSpec, func(a, b int) bool {
		return math.Float64bits(grid[chosenSpec[a]].x) < math.Float64bits(grid[chosenSpec[b]].x)
	})
	for _, i := range chosenSpec {
		y, _ := impl.special(grid[i].x)
		chosen.specialBits = append(chosen.specialBits, math.Float64bits(grid[i].x))
		chosen.specialVals = append(chosen.specialVals, ps.Out.Round(y, fp.RNE))
	}

	prefixPlanCache.Store(key, chosen)
	return chosen, nil
}

func precIdent(name string) string {
	return strings.ToUpper(name[:1]) + name[1:]
}

func precRoundIdent(name string) string {
	return "round" + precIdent(name)
}

// emitOnePrefixFunc writes the scalar prefix kernel: the full kernel's shape
// with emit-time-rounded constant branches, the residual special switch, the
// truncated polynomial, and a round-to-nearest conversion to the output
// format on every computed path.
func emitOnePrefixFunc(w io.Writer, fn string, fd *funcData, s Scheme, ps PrecSpec, pl *prefixPlan, name string) error {
	fmt.Fprintf(w, "\n// %s is the %s %v prefix kernel for %s: a degree-%d prefix of the\n", name, fn, s, ps.Name, pl.degree)
	fmt.Fprintf(w, "// full polynomial, correctly rounded to %v for every %v input.\n", ps.Out, ps.Out)
	fmt.Fprintf(w, "func %s(x float64) float64 {\n", name)
	ret := func(indent, expr string, _ bool) string {
		return indent + "return " + expr
	}
	if err := emitPrefixKernelBody(w, fn, fd, ps, pl, 1, ret); err != nil {
		return err
	}
	fmt.Fprintf(w, "}\n")
	return nil
}

// emitOnePrefixBlockFunc writes the in-place block variant of a prefix
// kernel, mirroring emitOneBlockFunc.
func emitOnePrefixBlockFunc(w io.Writer, fn string, fd *funcData, s Scheme, ps PrecSpec, pl *prefixPlan, name string) error {
	fmt.Fprintf(w, "\n// %s applies the %s %v %s prefix kernel to every element of b in place.\n", name, fn, s, ps.Name)
	fmt.Fprintf(w, "func %s(b []float64) {\n", name)
	fmt.Fprintf(w, "\tfor i, x := range b {\n")
	ret := func(indent, expr string, last bool) string {
		if last {
			return indent + "b[i] = " + expr
		}
		return indent + "b[i] = " + expr + "\n" + indent + "continue"
	}
	if err := emitPrefixKernelBody(w, fn, fd, ps, pl, 2, ret); err != nil {
		return err
	}
	fmt.Fprintf(w, "\t}\n}\n")
	return nil
}

func emitPrefixKernelBody(w io.Writer, fn string, fd *funcData, ps PrecSpec, pl *prefixPlan, depth int, ret func(indent, expr string, last bool) string) error {
	ind := strings.Repeat("\t", depth)
	ind2 := ind + "\t"
	// Rounding a plateau constant to the output format can overflow to
	// infinity (e.g. exp's top plateau: the RO34 saturation double rounds to
	// +Inf at 8-bit precision), which has no hex literal.
	lit := func(v float64) string {
		switch {
		case math.IsInf(v, 1):
			return "math.Inf(1)"
		case math.IsInf(v, -1):
			return "math.Inf(-1)"
		}
		return hexLit(v)
	}
	rnd := func(v float64) string { return lit(ps.Out.Round(v, fp.RNE)) }
	if strings.HasPrefix(fn, "log") {
		fmt.Fprintf(w, "%sswitch {\n", ind)
		fmt.Fprintf(w, "%scase math.IsNaN(x):\n%s\n", ind, ret(ind2, "x", false))
		fmt.Fprintf(w, "%scase x < 0 || math.IsInf(x, -1):\n%s\n", ind, ret(ind2, "math.NaN()", false))
		fmt.Fprintf(w, "%scase x == 0:\n%s\n", ind, ret(ind2, "math.Inf(-1)", false))
		fmt.Fprintf(w, "%scase math.IsInf(x, 1):\n%s\n%s}\n", ind, ret(ind2, "math.Inf(1)", false), ind)
	} else {
		fmt.Fprintf(w, "%sswitch {\n", ind)
		fmt.Fprintf(w, "%scase math.IsNaN(x):\n%s\n", ind, ret(ind2, "x", false))
		fmt.Fprintf(w, "%scase math.IsInf(x, 1):\n%s\n", ind, ret(ind2, "math.Inf(1)", false))
		fmt.Fprintf(w, "%scase math.IsInf(x, -1):\n%s\n", ind, ret(ind2, "0", false))
		fmt.Fprintf(w, "%scase x == 0:\n%s\n", ind, ret(ind2, "1", false))
		fmt.Fprintf(w, "%scase x <= %s:\n%s\n", ind, hexLit(fd.domLo), ret(ind2, rnd(fd.loVal), false))
		fmt.Fprintf(w, "%scase x >= %s:\n%s\n", ind, hexLit(fd.domHi), ret(ind2, rnd(fd.hiVal), false))
		fmt.Fprintf(w, "%scase x < 0 && x >= %s:\n%s\n", ind, hexLit(fd.tinyLo), ret(ind2, rnd(fd.tinyLoVal), false))
		fmt.Fprintf(w, "%scase x > 0 && x <= %s:\n%s\n", ind, hexLit(fd.tinyHi), ret(ind2, rnd(fd.tinyHiVal), false))
		fmt.Fprintf(w, "%s}\n", ind)
	}

	if len(pl.specialBits) > 0 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, b := range pl.specialBits {
			v := math.Float64frombits(b)
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		fmt.Fprintf(w, "%sif x >= %s && x <= %s {\n", ind, hexLit(lo), hexLit(hi))
		fmt.Fprintf(w, "%sswitch math.Float64bits(x) {\n", ind2)
		for i, b := range pl.specialBits {
			fmt.Fprintf(w, "%scase %#x:\n%s\n", ind2, b, ret(ind2+"\t", lit(pl.specialVals[i]), false))
		}
		fmt.Fprintf(w, "%s}\n%s}\n", ind2, ind)
	}

	fam, err := famFor(fn)
	if err != nil {
		return err
	}
	round := precRoundIdent(ps.Name)
	fmt.Fprintf(w, "%sr, k := %s\n", ind, fam.reduceExpr)
	fmt.Fprintf(w, "%sif r == 0 {\n%s\n%s}\n", ind,
		ret(ind2, round+"("+fam.compExpr+"("+fam.pZeroExpr+", k))", false), ind)
	fmt.Fprintf(w, "%svar p float64\n", ind)
	emitPrefixDispatch(w, pl.evs, pl.los, depth)
	fmt.Fprintf(w, "%s\n", ret(ind, round+"("+fam.compExpr+"(p, k))", true))
	return nil
}

// emitPrefixDispatch writes nested if/else piece selection over the
// truncated evaluators — the same binary split as the full kernels, minus
// the arms a collapsed plan no longer needs.
func emitPrefixDispatch(w io.Writer, evs []*poly.Evaluator, los []float64, depth int) {
	indent := strings.Repeat("\t", depth)
	if len(evs) == 1 {
		lines, result := evs[0].GenEval("r", fmt.Sprintf("t%d_", depth))
		for _, l := range lines {
			fmt.Fprintf(w, "%s%s\n", indent, l)
		}
		fmt.Fprintf(w, "%sp = %s\n", indent, result)
		return
	}
	mid := len(evs) / 2
	fmt.Fprintf(w, "%sif r < %s {\n", indent, hexLit(los[mid]))
	emitPrefixDispatch(w, evs[:mid], los[:mid], depth+1)
	fmt.Fprintf(w, "%s} else {\n", indent)
	emitPrefixDispatch(w, evs[mid:], los[mid:], depth+1)
	fmt.Fprintf(w, "%s}\n", indent)
}

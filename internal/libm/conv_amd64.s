#include "textflag.h"

// Conversion staging loops for the generated AsmBatch kernels: 4-wide AVX
// float32<->float64 conversions. Both are exactly the semantics of Go's
// scalar conversions (VCVTPS2PD is exact; VCVTPD2PS rounds to nearest even
// under the default MXCSR Go never alters), so results are bit-identical to
// the pure-Go staging loops. Callers guarantee n > 0 and n % 4 == 0; tails
// run in Go.

// func widenAVX(dst *float64, src *float32, n int)
TEXT ·widenAVX(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	SHRQ $2, CX

widenloop:
	VCVTPS2PD (SI), Y0
	VMOVUPD   Y0, (DI)
	ADDQ      $16, SI
	ADDQ      $32, DI
	DECQ      CX
	JNZ       widenloop
	VZEROUPPER
	RET

// func narrowAVX(dst *float32, src *float64, n int)
TEXT ·narrowAVX(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	SHRQ $2, CX

narrowloop:
	VCVTPD2PSY (SI), X0
	VMOVUPS    X0, (DI)
	ADDQ       $32, SI
	ADDQ       $16, DI
	DECQ       CX
	JNZ        narrowloop
	VZEROUPPER
	RET

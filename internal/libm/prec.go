package libm

import (
	"math"

	"rlibm/internal/fp"
)

// Serving precisions (RLIBM-PROG). A progressive polynomial's lower-degree
// prefixes are themselves correctly rounded for narrower formats: the full
// kernel targets the 34-bit round-to-odd result (correct for every 10-32-bit
// format with an 8-bit exponent), and each prefix kernel targets the
// (k+2)-bit round-to-odd result for a k-bit output format. The two narrow
// precisions served here are the ML formats in the float32 exponent family:
//
//   - bf16: bfloat16 (fp16_e8, 8-bit significand precision), verified
//     against the 18-bit round-to-odd target over every bfloat16 input;
//   - tf32: the FP16-class format with an 8-bit exponent (fp19_e8, NVIDIA's
//     TensorFloat32 layout, 11-bit significand precision), verified against
//     the 21-bit round-to-odd target. IEEE binary16's 5-bit exponent is
//     outside the RLibm-ALL 8-bit-exponent guarantee, so "fp16" requests
//     resolve to this format.
//
// PrecSpec carries what the emitter and the verification batteries need.
type PrecSpec struct {
	Name   string    // canonical short name; the "func/scheme/prec" key segment
	Out    fp.Format // output format the prefix kernel rounds to
	Target fp.Format // round-to-odd verification format (Out.Bits + 2)
}

// PrecSpecs lists the narrow serving precisions in wire-code order
// (full float32 is code 0 and has no prefix kernels; tf32 is 1, bf16 is 2).
var PrecSpecs = []PrecSpec{
	{Name: "tf32", Out: fp.TensorFloat32, Target: fp.Format{Bits: 21, ExpBits: 8}},
	{Name: "bf16", Out: fp.Bfloat16, Target: fp.Format{Bits: 18, ExpBits: 8}},
}

// PrecSpecByName resolves a PrecSpec from its canonical name.
func PrecSpecByName(name string) (PrecSpec, bool) {
	for _, ps := range PrecSpecs {
		if ps.Name == name {
			return ps, true
		}
	}
	return PrecSpec{}, false
}

// Fast narrow rounding. The prefix kernels end with a round-to-nearest-even
// conversion of the raw double to the output format, returned as a float64
// (every bfloat16/tf32 value embeds exactly). The double carries >= prec+2
// significand bits, so rounding it directly is the correctly rounded result;
// an intermediate float64->float32 RNE conversion could double-round.
//
// The hot path is a pure integer add-and-mask on the float64 bits, valid
// whenever the value is normal in the target format and carries into at most
// one extra binade; everything else (subnormals, zeros, infinities, NaNs,
// deep overflow) takes the exact fp.Format.Round slow path. Both targets
// share the float32 exponent field, so "normal" is biased exponent in
// [897, 1150] (unbiased [-126, 127]).

// roundNarrow rounds d to the nearest even value with prec = 53-shift
// significand bits. shift must be a constant at each call site so the whole
// body inlines.
func roundNarrow(d float64, shift uint, slow fp.Format) float64 {
	u := math.Float64bits(d)
	if e := (u >> 52) & 0x7ff; e-897 > 1150-897 {
		return slow.Round(d, fp.RNE)
	}
	lsb := (u >> shift) & 1
	u += 1<<(shift-1) - 1 + lsb
	u &^= 1<<shift - 1
	r := math.Float64frombits(u)
	// A carry out of the top binade lands exactly on ±2^128 — past the 8-bit
	// exponent range, which round-to-nearest takes to infinity.
	if r >= 0x1p128 {
		return math.Inf(1)
	}
	if r <= -0x1p128 {
		return math.Inf(-1)
	}
	return r
}

// roundBf16 rounds d to the nearest bfloat16 value (ties to even), returned
// as a float64.
func roundBf16(d float64) float64 { return roundNarrow(d, 45, fp.Bfloat16) }

// roundTf32 rounds d to the nearest tf32 (fp19_e8) value (ties to even),
// returned as a float64.
func roundTf32(d float64) float64 { return roundNarrow(d, 42, fp.TensorFloat32) }

// PrecRound rounds a raw double kernel result to the named precision's
// output format under round-to-nearest-even — the reference form of the
// conversion the generated prefix kernels inline.
func PrecRound(ps PrecSpec, d float64) float64 {
	switch ps.Name {
	case "tf32":
		return roundTf32(d)
	case "bf16":
		return roundBf16(d)
	}
	return ps.Out.Round(d, fp.RNE)
}

package libm_test

import (
	"fmt"

	"rlibm/internal/fp"
	"rlibm/internal/libm"
)

// The common case: correctly rounded float32 results.
func ExampleExp2() {
	fmt.Println(libm.Exp2(0.5))
	fmt.Println(libm.Exp2(10))
	fmt.Println(libm.Exp2(-1))
	// Output:
	// 1.4142135
	// 1024
	// 0.5
}

// One polynomial serves every format and rounding mode: take the raw double
// and round it wherever needed (the RLibm-ALL guarantee).
func ExampleRoundTo() {
	d := libm.Log2Double(10, libm.SchemeEstrinFMA)
	fmt.Println("bfloat16 rne:", libm.RoundTo(d, fp.Bfloat16, fp.RNE))
	fmt.Println("bfloat16 rtp:", libm.RoundTo(d, fp.Bfloat16, fp.RTP))
	fmt.Println("tf32     rne:", libm.RoundTo(d, fp.TensorFloat32, fp.RNE))
	fmt.Println("float32  rtz:", float32(libm.RoundTo(d, fp.Float32, fp.RTZ)))
	// Output:
	// bfloat16 rne: 3.328125
	// bfloat16 rtp: 3.328125
	// tf32     rne: 3.322265625
	// float32  rtz: 3.321928
}

// The four paper configurations return identical results; they differ only
// in evaluation speed.
func ExampleSchemes() {
	x := float32(0.25)
	fmt.Println(libm.Exp10Horner(x) == libm.Exp10Knuth(x),
		libm.Exp10Estrin(x) == libm.Exp10EstrinFMA(x))
	// Output:
	// true true
}

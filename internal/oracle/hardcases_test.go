package oracle

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"rlibm/internal/fp"
)

// hardCaseFile mirrors the schema gen_hardcases.go writes (bit patterns as
// %#x hex strings, since raw uint64 values do not survive JSON numbers).
type hardCaseFile struct {
	Fn     string `json:"fn"`
	Stride uint64 `json:"stride"`
	Cases  []struct {
		XBits        string `json:"x_bits"`
		YBits        string `json:"y_bits"`
		TerminalPrec uint   `json:"terminal_prec"`
	} `json:"cases"`
}

// TestHardCaseVectors replays the golden hard-to-round vectors — the
// binary32 inputs whose Ziv loop escalated furthest in a full stride scan —
// and pins both the 34-bit round-to-odd result bits and the terminal
// precision reached from a fresh ladder. The result bits catch any change
// that alters what the oracle computes; the terminal precision catches
// changes to how hard it had to work (a silent Ziv regression would show up
// here long before it shows up in wall clock).
func TestHardCaseVectors(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "hardcases_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("found %d hardcase files, want 4 (regenerate with go run ./internal/oracle/gen_hardcases.go)", len(paths))
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var file hardCaseFile
			if err := json.Unmarshal(data, &file); err != nil {
				t.Fatal(err)
			}
			fn, err := ParseFunc(file.Fn)
			if err != nil {
				t.Fatal(err)
			}
			if len(file.Cases) == 0 {
				t.Fatal("no cases")
			}
			for i, c := range file.Cases {
				xbits, err := strconv.ParseUint(c.XBits, 0, 64)
				if err != nil {
					t.Fatalf("case %d: bad x_bits %q: %v", i, c.XBits, err)
				}
				ybits, err := strconv.ParseUint(c.YBits, 0, 64)
				if err != nil {
					t.Fatalf("case %d: bad y_bits %q: %v", i, c.YBits, err)
				}
				x := math.Float64frombits(xbits)
				// The precision ladder is process-global and result-invariant,
				// but the terminal precision it reaches depends on where it
				// starts; reset it so the pinned value is reproducible.
				ResetLadders()
				v := Compute(fn, x)
				if got := math.Float64bits(v.Round(fp.FP34, fp.RTO)); got != ybits {
					t.Errorf("case %d: %v(%g) = %#016x, golden %#016x", i, fn, x, got, ybits)
				}
				if got := v.TerminalPrec(); got != c.TerminalPrec {
					t.Errorf("case %d: %v(%g) terminal precision %d, golden %d", i, fn, x, got, c.TerminalPrec)
				}
			}
			ResetLadders()
		})
	}
}

// TestHardCaseLadderInvariance re-computes the hardest vector of each file
// with a deliberately warmed ladder and checks the RESULT stays identical
// even though the terminal precision may differ — the ladder is a pure
// speed knob, never a correctness one.
func TestHardCaseLadderInvariance(t *testing.T) {
	paths, _ := filepath.Glob(filepath.Join("testdata", "hardcases_*.json"))
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var file hardCaseFile
		if err := json.Unmarshal(data, &file); err != nil {
			t.Fatal(err)
		}
		fn, err := ParseFunc(file.Fn)
		if err != nil {
			t.Fatal(err)
		}
		c := file.Cases[0]
		xbits, _ := strconv.ParseUint(c.XBits, 0, 64)
		ybits, _ := strconv.ParseUint(c.YBits, 0, 64)
		x := math.Float64frombits(xbits)

		ResetLadders()
		Compute(fn, x) // warm the ladder to this case's terminal precision
		warm := Compute(fn, x)
		if got := math.Float64bits(warm.Round(fp.FP34, fp.RTO)); got != ybits {
			t.Errorf("%v(%g) with warm ladder = %#016x, golden %#016x", fn, x, got, ybits)
		}
		ResetLadders()
	}
}

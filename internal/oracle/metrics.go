package oracle

import (
	"sync"

	"rlibm/internal/obs"
)

// fnMetrics caches one function's instrument handles into obs.Default().
// The oracle sits below any per-run configuration (the cache and Value are
// shared by every layer above), so its metrics are process-wide; CLIs merge
// the default registry into their run reports.
//
// Handles are resolved once per process — Round and the cache are the
// hottest paths in the repository (one call per enumerated input per
// (format, mode)), and a name lookup per call would contend on the registry
// mutex, so all updates go through pre-resolved atomic instruments.
type fnMetrics struct {
	// zivDepth is the Ziv escalation depth histogram: how many times one
	// Round call had to double the working precision (0 = the initial
	// precision rounded unambiguously).
	zivDepth *obs.Histogram
	// zivPrec is the terminal working precision histogram (bits) of Ziv-path
	// Round calls; zivPrecMax tracks the process-wide maximum.
	zivPrec    *obs.Histogram
	zivPrecMax *obs.Gauge
	// exact counts Round calls answered from the algebraic exact-result or
	// symbolic overflow/underflow paths (no Ziv loop at all).
	exact *obs.Counter
	// cacheHits / cacheMisses count Cache.Correct outcomes served by the
	// in-memory stripes (which include entries preloaded from the
	// persistent store) vs computed fresh.
	cacheHits, cacheMisses *obs.Counter
	// ladderStart is the precision-ladder starting rung histogram: the
	// working precision fresh evaluations begin at (basePrec when the
	// ladder is cold). Together with zivDepth — the ladder-depth histogram —
	// it shows how often the fast path skips escalations.
	ladderStart *obs.Histogram
}

var (
	fnMetricsOnce sync.Once
	fnMetricsTab  []fnMetrics
)

// metricsFor returns the handles for f, or nil for out-of-range values.
func metricsFor(f Func) *fnMetrics {
	fnMetricsOnce.Do(func() {
		fnMetricsTab = make([]fnMetrics, len(AllFuncs))
		reg := obs.Default()
		for _, fn := range AllFuncs {
			name := fn.String()
			fnMetricsTab[fn] = fnMetrics{
				zivDepth:    reg.Histogram("oracle/" + name + "/ziv_depth"),
				zivPrec:     reg.Histogram("oracle/" + name + "/terminal_prec"),
				zivPrecMax:  reg.Gauge("oracle/" + name + "/terminal_prec_max"),
				exact:       reg.Counter("oracle/" + name + "/exact_results"),
				cacheHits:   reg.Counter("oracle/" + name + "/cache_hits"),
				cacheMisses: reg.Counter("oracle/" + name + "/cache_misses"),
				ladderStart: reg.Histogram("oracle/" + name + "/ladder_start_prec"),
			}
		}
	})
	if int(f) < 0 || int(f) >= len(fnMetricsTab) {
		return nil
	}
	return &fnMetricsTab[f]
}

// observeZiv records one Ziv-path Round call.
func (m *fnMetrics) observeZiv(depth int, prec uint) {
	if m == nil {
		return
	}
	m.zivDepth.Observe(int64(depth))
	m.zivPrec.Observe(int64(prec))
	m.zivPrecMax.SetMax(int64(prec))
}

// observeExact records one exact/symbolic-path Round call.
func (m *fnMetrics) observeExact() {
	if m == nil {
		return
	}
	m.exact.Inc()
}

// observeCache records one cache lookup outcome.
func (m *fnMetrics) observeCache(hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.cacheHits.Inc()
	} else {
		m.cacheMisses.Inc()
	}
}

// observeLadderStart records the starting precision of one fresh
// evaluation.
func (m *fnMetrics) observeLadderStart(prec uint) {
	if m == nil {
		return
	}
	m.ladderStart.Observe(int64(prec))
}

// storeMetricsHandles caches the persistent-store instruments in
// obs.Default(): counters for entries loaded from and appended to disk and
// for quarantined segments, gauges for the segment count and byte size seen
// at the most recent open.
type storeMetricsHandles struct {
	loaded       *obs.Counter
	appended     *obs.Counter
	quarantined  *obs.Counter
	segments     *obs.Gauge
	segmentBytes *obs.Gauge
}

var (
	storeMetricsOnce sync.Once
	storeMetricsTab  *storeMetricsHandles
)

func storeMetrics() *storeMetricsHandles {
	storeMetricsOnce.Do(func() {
		reg := obs.Default()
		storeMetricsTab = &storeMetricsHandles{
			loaded:       reg.Counter("oracle/store/loaded_entries"),
			appended:     reg.Counter("oracle/store/appended_entries"),
			quarantined:  reg.Counter("oracle/store/quarantined_segments"),
			segments:     reg.Gauge("oracle/store/segments"),
			segmentBytes: reg.Gauge("oracle/store/segment_bytes"),
		}
	})
	return storeMetricsTab
}

// open records the disk state one OpenStore found. Quarantines are counted
// as they happen (see Store.quarantine), not here.
func (m *storeMetricsHandles) open(st *StoreStats) {
	m.loaded.Add(int64(st.LoadedEntries))
	m.segments.Set(int64(st.Segments))
	m.segmentBytes.Set(st.SegmentBytes)
}

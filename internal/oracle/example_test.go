package oracle_test

import (
	"fmt"

	"rlibm/internal/fp"
	"rlibm/internal/oracle"
)

// Correct answers any (format, mode) question with a correctly rounded
// value — including the round-to-odd mode the RLibm-ALL pipeline trains
// against.
func ExampleCorrect() {
	fmt.Println(oracle.Correct(oracle.Log2, 10, fp.Bfloat16, fp.RNE))
	fmt.Println(oracle.Correct(oracle.Log2, 10, fp.Bfloat16, fp.RTZ))
	fmt.Println(oracle.Correct(oracle.Exp2, 10, fp.Float32, fp.RTZ))
	// Output:
	// 3.328125
	// 3.3125
	// 1024
}

// Compute evaluates once and rounds many times — the hot pattern in the
// verification sweeps.
func ExampleCompute() {
	v := oracle.Compute(oracle.Exp, 1)
	fmt.Println(float32(v.Round(fp.Float32, fp.RNE)))
	fmt.Println(v.Round(fp.Bfloat16, fp.RTZ))
	// Output:
	// 2.7182817
	// 2.703125
}

package oracle

import (
	"math"
	"sync"
	"testing"

	"rlibm/internal/fp"
)

// TestCacheMatchesCorrect: every memoized answer is bit-identical to the
// uncached oracle, hits and misses add up, and repeated queries are hits.
func TestCacheMatchesCorrect(t *testing.T) {
	c := NewCache(8)
	xs := []float64{0.5, 1.5, 2.25, -0.75, 1.0 / 3}
	for _, x := range xs {
		want := Correct(Exp2, x, fp.FP34, fp.RTO)
		if got := c.Correct(Exp2, x, fp.FP34, fp.RTO); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("cache exp2(%g) = %g, want %g", x, got, want)
		}
		if got := c.Correct(Exp2, x, fp.FP34, fp.RTO); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("second query exp2(%g) = %g, want %g", x, got, want)
		}
	}
	hits, misses := c.Stats()
	if misses != int64(len(xs)) || hits != int64(len(xs)) {
		t.Errorf("hits=%d misses=%d, want %d and %d", hits, misses, len(xs), len(xs))
	}
	if c.Len() != len(xs) {
		t.Errorf("Len() = %d, want %d", c.Len(), len(xs))
	}
}

// TestCacheKeySeparation: the same input under a different function, format,
// or mode must not collide.
func TestCacheKeySeparation(t *testing.T) {
	c := NewCache(4)
	const x = 1.5
	queries := []struct {
		fn Func
		t  fp.Format
		m  fp.Mode
	}{
		{Exp2, fp.FP34, fp.RTO},
		{Exp, fp.FP34, fp.RTO},
		{Exp2, fp.Bfloat16, fp.RTO},
		{Exp2, fp.FP34, fp.RNE},
	}
	for _, q := range queries {
		want := Correct(q.fn, x, q.t, q.m)
		if got := c.Correct(q.fn, x, q.t, q.m); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("%v(%g) in %v/%v: cache %g, oracle %g", q.fn, x, q.t, q.m, got, want)
		}
	}
	if c.Len() != len(queries) {
		t.Errorf("Len() = %d, want %d distinct entries", c.Len(), len(queries))
	}
}

// TestCacheConcurrent hammers one cache from many goroutines over an
// overlapping key set — run under -race this exercises the stripe locking —
// and verifies every answer against the serial oracle.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(0)
	const goroutines = 16
	const n = 64
	want := make([]float64, n)
	for i := range want {
		want[i] = Correct(Log2, 1+float64(i)/n, fp.FP34, fp.RTO)
	}
	var wg sync.WaitGroup
	errs := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine walks the keys from its own offset so first
			// queries race on different stripes.
			for k := 0; k < 4*n; k++ {
				i := (k + g*5) % n
				got := c.Correct(Log2, 1+float64(i)/n, fp.FP34, fp.RTO)
				if math.Float64bits(got) != math.Float64bits(want[i]) {
					errs[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	for g, e := range errs {
		if e != 0 {
			t.Errorf("goroutine %d saw %d wrong cached values", g, e)
		}
	}
	if c.Len() != n {
		t.Errorf("Len() = %d, want %d", c.Len(), n)
	}
	hits, misses := c.Stats()
	if hits+misses != goroutines*4*n {
		t.Errorf("hits+misses = %d, want %d", hits+misses, goroutines*4*n)
	}
	// At most a handful of racing first queries may double-compute; nearly
	// everything after warm-up must hit.
	if misses > int64(goroutines)*n {
		t.Errorf("implausible miss count %d", misses)
	}
}

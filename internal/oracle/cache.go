package oracle

import (
	"math"
	"sync"
	"sync/atomic"

	"rlibm/internal/fp"
)

// Cache memoizes Correct behind striped locks so concurrent pipeline workers
// never pay a second Ziv escalation for a repeated (function, input, format,
// mode) query. The generator hits the same inputs many times: the aligned
// pass re-enumerates stride-covered bit patterns, domain-cut neighbourhoods
// overlap the stride sweep, demotions re-ask for values the collection pass
// already computed, and GenerateAll shares one input set across schemes.
//
// The cache is safe for concurrent use. Striping (rather than one mutex, or
// sync.Map) keeps contention negligible when tens of workers classify
// disjoint input shards: the stripe is chosen by a mixed hash of the input
// bits, so neighbouring inputs land on different stripes.
type Cache struct {
	shards []cacheShard
	mask   uint64
	hits   atomic.Int64
	misses atomic.Int64
}

type cacheShard struct {
	mu sync.Mutex
	m  map[cacheKey]float64
}

// cacheKey identifies one oracle query. fp.Format and fp.Mode are small
// comparable value types, so the whole key is comparable.
type cacheKey struct {
	fn   Func
	bits uint64
	t    fp.Format
	mode fp.Mode
}

// defaultCacheShards is a power of two comfortably above any plausible
// worker count.
const defaultCacheShards = 64

// NewCache returns an empty cache with the given stripe count (rounded up to
// a power of two; <= 0 selects the default).
func NewCache(shards int) *Cache {
	if shards <= 0 {
		shards = defaultCacheShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &Cache{shards: make([]cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i].m = make(map[cacheKey]float64)
	}
	return c
}

// Correct is the memoized equivalent of the package-level Correct: the
// correctly rounded value of f(x) in format t under mode m.
func (c *Cache) Correct(f Func, x float64, t fp.Format, m fp.Mode) float64 {
	k := cacheKey{fn: f, bits: math.Float64bits(x), t: t, mode: m}
	sh := &c.shards[c.stripe(k)]
	sh.mu.Lock()
	if y, ok := sh.m[k]; ok {
		sh.mu.Unlock()
		c.hits.Add(1)
		metricsFor(f).observeCache(true)
		return y
	}
	sh.mu.Unlock()
	// Compute outside the stripe lock: a Ziv escalation can take microseconds
	// and would serialize every other key on the stripe. Duplicated work on a
	// racing first query is deterministic (both goroutines compute the same
	// value), so last-write-wins is safe.
	y := Correct(f, x, t, m)
	sh.mu.Lock()
	sh.m[k] = y
	sh.mu.Unlock()
	c.misses.Add(1)
	metricsFor(f).observeCache(false)
	return y
}

func (c *Cache) stripe(k cacheKey) uint64 {
	h := k.bits ^ uint64(k.fn)<<56 ^ uint64(k.t.Bits)<<40 ^ uint64(k.t.ExpBits)<<32 ^ uint64(k.mode)<<48
	h *= 0x9e3779b97f4a7c15 // Fibonacci hashing spreads neighbouring bit patterns
	return (h >> 32) & c.mask
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of memoized entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

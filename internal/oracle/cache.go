package oracle

import (
	"math"
	"sync"
	"sync/atomic"

	"rlibm/internal/fp"
)

// Cache memoizes Correct behind striped locks so concurrent pipeline workers
// never pay a second Ziv escalation for a repeated (function, input, format,
// mode) query. The generator hits the same inputs many times: the aligned
// pass re-enumerates stride-covered bit patterns, domain-cut neighbourhoods
// overlap the stride sweep, demotions re-ask for values the collection pass
// already computed, and GenerateAll shares one input set across schemes.
//
// The cache is safe for concurrent use. Striping (rather than one mutex, or
// sync.Map) keeps contention negligible when tens of workers classify
// disjoint input shards: the stripe is chosen by a mixed hash of the input
// bits, so neighbouring inputs land on different stripes.
type Cache struct {
	shards []cacheShard
	mask   uint64
	hits   atomic.Int64
	misses atomic.Int64
	// store, when non-nil, is the persistent layer: entries it loaded from
	// disk were preloaded into the stripes by AttachStore, and every fresh
	// computation is appended back (the store ignores appends in read-only
	// mode).
	store *Store
}

type cacheShard struct {
	mu sync.Mutex
	m  map[cacheKey]float64
}

// cacheKey identifies one oracle query. fp.Format and fp.Mode are small
// comparable value types, so the whole key is comparable.
type cacheKey struct {
	fn   Func
	bits uint64
	t    fp.Format
	mode fp.Mode
}

// defaultCacheShards is a power of two comfortably above any plausible
// worker count.
const defaultCacheShards = 64

// NewCache returns an empty cache with the given stripe count (rounded up to
// a power of two; <= 0 selects the default).
func NewCache(shards int) *Cache {
	if shards <= 0 {
		shards = defaultCacheShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &Cache{shards: make([]cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i].m = make(map[cacheKey]float64)
	}
	return c
}

// AttachStore preloads every entry the store read from disk into the
// in-memory stripes and routes future misses back to it, making the store
// the persistent layer under this cache. Call before handing the cache to
// concurrent workers.
func (c *Cache) AttachStore(s *Store) {
	if s == nil {
		return
	}
	c.store = s
	s.forEach(func(k cacheKey, y float64) {
		sh := &c.shards[c.stripe(k)]
		sh.mu.Lock()
		sh.m[k] = y
		sh.mu.Unlock()
	})
}

// Correct is the memoized equivalent of the package-level Correct: the
// correctly rounded value of f(x) in format t under mode m.
func (c *Cache) Correct(f Func, x float64, t fp.Format, m fp.Mode) float64 {
	if y, ok := c.Lookup(f, x, t, m); ok {
		return y
	}
	// Compute outside the stripe lock: a Ziv escalation can take microseconds
	// and would serialize every other key on the stripe. Duplicated work on a
	// racing first query is deterministic (both goroutines compute the same
	// value), so last-write-wins is safe.
	y := Correct(f, x, t, m)
	c.Insert(f, x, t, m, y)
	return y
}

// Lookup consults the cache without computing on a miss.
func (c *Cache) Lookup(f Func, x float64, t fp.Format, m fp.Mode) (float64, bool) {
	k := cacheKey{fn: f, bits: math.Float64bits(x), t: t, mode: m}
	sh := &c.shards[c.stripe(k)]
	sh.mu.Lock()
	y, ok := sh.m[k]
	sh.mu.Unlock()
	if ok {
		c.hits.Add(1)
		metricsFor(f).observeCache(true)
		return y, true
	}
	return 0, false
}

// Insert memoizes an already computed oracle result, persisting it when a
// store is attached. The caller vouches that y is the correctly rounded
// value (Lookup/Insert exist so callers that batch many (format, mode)
// queries against one Value can still populate the cache).
func (c *Cache) Insert(f Func, x float64, t fp.Format, m fp.Mode, y float64) {
	k := cacheKey{fn: f, bits: math.Float64bits(x), t: t, mode: m}
	sh := &c.shards[c.stripe(k)]
	sh.mu.Lock()
	sh.m[k] = y
	sh.mu.Unlock()
	if c.store != nil {
		c.store.Append(k, y)
	}
	c.misses.Add(1)
	metricsFor(f).observeCache(false)
}

func (c *Cache) stripe(k cacheKey) uint64 {
	h := k.bits ^ uint64(k.fn)<<56 ^ uint64(k.t.Bits)<<40 ^ uint64(k.t.ExpBits)<<32 ^ uint64(k.mode)<<48
	h *= 0x9e3779b97f4a7c15 // Fibonacci hashing spreads neighbouring bit patterns
	return (h >> 32) & c.mask
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of memoized entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

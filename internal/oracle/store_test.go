package oracle

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rlibm/internal/fp"
)

// fillStore computes a few oracle values through a store-backed cache and
// seals them to disk.
func fillStore(t *testing.T, dir string, fn Func, xs []float64) map[float64]float64 {
	t.Helper()
	st, err := OpenStore(dir, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(0)
	c.AttachStore(st)
	want := map[float64]float64{}
	for _, x := range xs {
		want[x] = c.Correct(fn, x, fp.FP34, fp.RTO)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return want
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// TestStoreRoundTrip: values computed in one store session come back from
// disk in the next, bit for bit, without recomputation.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	xs := []float64{0.5, 1.25, -0.75, 3.5, 0.1}
	want := fillStore(t, dir, Exp, xs)
	if len(segFiles(t, dir)) == 0 {
		t.Fatal("no segment written")
	}

	st, err := OpenStore(dir, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.Stats().LoadedEntries; got != len(xs) {
		t.Fatalf("loaded %d entries, want %d", got, len(xs))
	}
	c := NewCache(0)
	c.AttachStore(st)
	for _, x := range xs {
		y, ok := c.Lookup(Exp, x, fp.FP34, fp.RTO)
		if !ok {
			t.Fatalf("Lookup(exp, %g) missed after reload", x)
		}
		if math.Float64bits(y) != math.Float64bits(want[x]) {
			t.Errorf("exp(%g): reloaded %g, want %g", x, y, want[x])
		}
	}
	hits, misses := c.Stats()
	if misses != 0 {
		t.Errorf("warm cache reported %d misses (hits %d), want 0", misses, hits)
	}
}

// TestStoreWarmRunWritesNothing: a fully warm run must not grow the
// directory with empty segments.
func TestStoreWarmRunWritesNothing(t *testing.T) {
	dir := t.TempDir()
	fillStore(t, dir, Exp2, []float64{0.5, 0.75})
	before := len(segFiles(t, dir))

	st, err := OpenStore(dir, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(0)
	c.AttachStore(st)
	c.Correct(Exp2, 0.5, fp.FP34, fp.RTO)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if after := len(segFiles(t, dir)); after != before {
		t.Errorf("warm run changed segment count: %d -> %d", before, after)
	}
}

// TestStoreReadOnly: read-only stores serve entries but never write.
func TestStoreReadOnly(t *testing.T) {
	dir := t.TempDir()
	fillStore(t, dir, Log, []float64{2, 3})
	before := len(segFiles(t, dir))

	st, err := OpenStore(dir, StoreOptions{ReadOnly: true, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(0)
	c.AttachStore(st)
	if _, ok := c.Lookup(Log, 2, fp.FP34, fp.RTO); !ok {
		t.Error("read-only store did not serve a stored entry")
	}
	c.Correct(Log, 5, fp.FP34, fp.RTO) // fresh value: must not persist
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if after := len(segFiles(t, dir)); after != before {
		t.Errorf("read-only run changed segment count: %d -> %d", before, after)
	}
	if n := st.Stats().AppendedEntries; n != 0 {
		t.Errorf("read-only store recorded %d appends, want 0", n)
	}
}

// corrupt applies mutate to the single segment in dir.
func corrupt(t *testing.T, dir string, mutate func([]byte) []byte) string {
	t.Helper()
	segs := segFiles(t, dir)
	if len(segs) != 1 {
		t.Fatalf("want exactly one segment, have %v", segs)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0], mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return segs[0]
}

// TestStoreQuarantine: every corruption mode — flipped payload byte,
// truncation, bad magic, future version — quarantines the segment and the
// cache recomputes correct values instead of serving garbage.
func TestStoreQuarantine(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"flipped-value-byte", func(d []byte) []byte {
			d[len(d)/2] ^= 0xFF // inside the records: CRC catches it
			return d
		}},
		{"truncated", func(d []byte) []byte { return d[:len(d)-7] }},
		{"bad-magic", func(d []byte) []byte { d[0] = 'X'; return d }},
		{"future-version", func(d []byte) []byte { d[4] = 0xEE; return d }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			xs := []float64{0.5, 1.5, 2.5}
			want := fillStore(t, dir, Log2, xs)
			corrupt(t, dir, tc.mutate)

			st, err := OpenStore(dir, StoreOptions{NoSync: true})
			if err != nil {
				t.Fatalf("corrupt segment failed the open: %v", err)
			}
			stats := st.Stats()
			if stats.Quarantined != 1 {
				t.Errorf("quarantined %d segments, want 1", stats.Quarantined)
			}
			if stats.LoadedEntries != 0 {
				t.Errorf("loaded %d entries from a corrupt segment, want 0", stats.LoadedEntries)
			}
			q, err := filepath.Glob(filepath.Join(dir, "*"+quarantineSuffix+"*"))
			if err != nil || len(q) != 1 {
				t.Errorf("quarantine file missing: %v (%v)", q, err)
			}
			c := NewCache(0)
			c.AttachStore(st)
			for _, x := range xs {
				if got := c.Correct(Log2, x, fp.FP34, fp.RTO); math.Float64bits(got) != math.Float64bits(want[x]) {
					t.Errorf("log2(%g) after quarantine: got %g, want %g", x, got, want[x])
				}
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			// The next open must not trip over the quarantined file and must
			// see the recomputed entries.
			st2, err := OpenStore(dir, StoreOptions{NoSync: true})
			if err != nil {
				t.Fatal(err)
			}
			if got := st2.Stats().LoadedEntries; got != len(xs) {
				t.Errorf("reopen after quarantine loaded %d entries, want %d", got, len(xs))
			}
			st2.Close()
		})
	}
}

// TestStoreCompaction: once the directory accumulates more than the
// threshold's worth of segments, open rewrites them into one and loses no
// entries.
func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	want := map[float64]float64{}
	xs := []float64{0.25, 0.5, 0.75, 1.5, 2.5, 3.5}
	for _, x := range xs { // one segment per run
		for k, v := range fillStore(t, dir, Exp, []float64{x}) {
			want[k] = v
		}
	}
	if n := len(segFiles(t, dir)); n != len(xs) {
		t.Fatalf("have %d segments, want %d", n, len(xs))
	}

	st, err := OpenStore(dir, StoreOptions{NoSync: true, CompactThreshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !st.Stats().Compacted {
		t.Error("open above the threshold did not compact")
	}
	if n := len(segFiles(t, dir)); n != 1 {
		t.Errorf("after compaction: %d segments, want 1", n)
	}
	c := NewCache(0)
	c.AttachStore(st)
	for x, y := range want {
		got, ok := c.Lookup(Exp, x, fp.FP34, fp.RTO)
		if !ok || math.Float64bits(got) != math.Float64bits(y) {
			t.Errorf("exp(%g) after compaction: got %g (ok=%v), want %g", x, got, ok, y)
		}
	}
}

// TestClearCacheDir removes cache artifacts but leaves foreign files alone.
func TestClearCacheDir(t *testing.T) {
	dir := t.TempDir()
	fillStore(t, dir, Exp, []float64{0.5})
	corrupt(t, dir, func(d []byte) []byte { d[0] = 'X'; return d })
	st, err := OpenStore(dir, StoreOptions{NoSync: true}) // quarantines
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	foreign := filepath.Join(dir, "README.txt")
	if err := os.WriteFile(foreign, []byte("not a cache file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ClearCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != "README.txt" {
			t.Errorf("ClearCacheDir left cache artifact %s", e.Name())
		}
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Errorf("ClearCacheDir removed a foreign file: %v", err)
	}
	if err := ClearCacheDir(filepath.Join(dir, "does-not-exist")); err != nil {
		t.Errorf("ClearCacheDir on a missing dir: %v", err)
	}
}

// TestStoreVersionInFilename guards the CI cache key contract: the workflow
// keys its cross-run cache on StoreVersion, so a format change must come
// with a version bump (this test is a tripwire for reviewers, not a proof).
func TestStoreVersionQuarantinesOldFormat(t *testing.T) {
	dir := t.TempDir()
	fillStore(t, dir, Exp2, []float64{1.5})
	corrupt(t, dir, func(d []byte) []byte { d[4] = StoreVersion + 1; return d })
	st, err := OpenStore(dir, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Stats().Quarantined != 1 || st.Stats().LoadedEntries != 0 {
		t.Errorf("version-mismatched segment not quarantined: %+v", st.Stats())
	}
}

// TestLadder: the precision ladder starts at the base rung, climbs to the
// terminal precision after an escalation, and decays on easy inputs —
// without ever changing a rounded result.
func TestLadder(t *testing.T) {
	ResetLadders()
	defer ResetLadders()
	if got := ladderStart(Exp); got != basePrec {
		t.Fatalf("cold ladder start %d, want %d", got, basePrec)
	}
	ladderRecord(Exp, 640, 3)
	if got := ladderStart(Exp); got != 640 {
		t.Errorf("after escalation to 640: start %d, want 640", got)
	}
	ladderRecord(Exp, 640, 0)
	if got := ladderStart(Exp); got != 320 {
		t.Errorf("after one easy input: start %d, want 320", got)
	}
	ladderRecord(Exp, 1<<20, 5)
	if got := ladderStart(Exp); got != ladderMaxStart {
		t.Errorf("ladder start %d not capped at %d", got, ladderMaxStart)
	}

	// Result invariance: the same input rounds identically from a cold and
	// a hot ladder.
	ResetLadders()
	cold := Correct(Exp, 0.7243156, fp.FP34, fp.RTO)
	ladders[Exp].Store(1024)
	hot := Correct(Exp, 0.7243156, fp.FP34, fp.RTO)
	if math.Float64bits(cold) != math.Float64bits(hot) {
		t.Errorf("ladder changed a result: cold %g, hot %g", cold, hot)
	}
}

// TestStoreRejectsEmptyDir: the empty string is a configuration error, not
// a cache in the working directory.
func TestStoreRejectsEmptyDir(t *testing.T) {
	if _, err := OpenStore("", StoreOptions{}); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Errorf("OpenStore(\"\") = %v, want empty-directory error", err)
	}
}

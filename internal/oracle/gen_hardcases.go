//go:build ignore

// gen_hardcases scans binary32 inputs for the hardest-to-round cases — the
// inputs whose Ziv loop needs the most precision before the round-to-odd
// result becomes unambiguous — and writes the worst of them as golden
// vectors to internal/oracle/testdata/hardcases_<fn>.json. hardcases_test.go
// replays those vectors, pinning both the 34-bit round-to-odd result bits
// and the terminal precision, so any change to the Ziv loop, the precision
// ladder or the big.Float evaluation that shifts either is caught at once.
//
// Regenerate with:
//
//	go run ./internal/oracle/gen_hardcases.go [-stride 4093] [-top 12]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"rlibm/internal/fp"
	"rlibm/internal/oracle"
)

type hardCase struct {
	// XBits/YBits are %#x-formatted float64 bit patterns: the input and its
	// 34-bit round-to-odd oracle result. Hex strings survive JSON's float64
	// number range, which raw uint64 values would not.
	XBits string `json:"x_bits"`
	YBits string `json:"y_bits"`
	// TerminalPrec is the Ziv precision that settled the result, starting
	// from the base precision with a fresh ladder.
	TerminalPrec uint `json:"terminal_prec"`
}

type hardCaseFile struct {
	Fn     string     `json:"fn"`
	Stride uint64     `json:"stride"`
	Cases  []hardCase `json:"cases"`
}

func main() {
	stride := flag.Uint64("stride", 4093, "scan every stride-th binary32 bit pattern")
	top := flag.Int("top", 12, "golden vectors to keep per function")
	outDir := flag.String("out", "internal/oracle/testdata", "output directory")
	flag.Parse()

	for _, fn := range []oracle.Func{oracle.Exp, oracle.Log, oracle.Exp2, oracle.Log2} {
		type scored struct {
			xbits uint64
			prec  uint
		}
		var worst []scored
		for b := uint64(0); b < 1<<32; b += *stride {
			x := float64(math.Float32frombits(uint32(b)))
			if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 {
				continue
			}
			if fn.IsLog() && x <= 0 {
				continue
			}
			v := oracle.Compute(fn, x)
			worst = append(worst, scored{math.Float64bits(x), v.TerminalPrec()})
		}
		// Hardest first; ties broken by input bits for a stable file.
		sort.Slice(worst, func(i, j int) bool {
			if worst[i].prec != worst[j].prec {
				return worst[i].prec > worst[j].prec
			}
			return worst[i].xbits < worst[j].xbits
		})
		if len(worst) > *top {
			worst = worst[:*top]
		}

		out := hardCaseFile{Fn: fn.String(), Stride: *stride}
		for _, s := range worst {
			// Re-run from a fresh ladder: the recorded terminal precision
			// must be the canonical base-precision-start one, not whatever
			// the scan's warmed ladder happened to start from.
			oracle.ResetLadders()
			x := math.Float64frombits(s.xbits)
			v := oracle.Compute(fn, x)
			out.Cases = append(out.Cases, hardCase{
				XBits:        fmt.Sprintf("%#016x", s.xbits),
				YBits:        fmt.Sprintf("%#016x", math.Float64bits(v.Round(fp.FP34, fp.RTO))),
				TerminalPrec: v.TerminalPrec(),
			})
		}
		oracle.ResetLadders()

		path := filepath.Join(*outDir, "hardcases_"+fn.String()+".json")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%s: %d cases, hardest terminal precision %d\n",
			path, len(out.Cases), out.Cases[0].TerminalPrec)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gen_hardcases:", err)
	os.Exit(1)
}

package oracle

import (
	"math"
	"math/big"
)

// The paper's conclusion mentions extending fast polynomial evaluation to
// trigonometric functions; RLibm itself ships sinpi/cospi because their
// argument reduction is exact for binary inputs (x mod 2 is dyadic), which
// sidesteps the pi-reduction problem. This file provides the oracle side:
// arbitrary-precision sin(pi*x) and cos(pi*x) with exact-case detection.

// piCache holds pi to the highest precision computed so far (Machin's
// formula).
var piCache struct {
	prec uint
	pi   *big.Float
}

// piConst returns pi valid to at least prec bits.
func piConst(prec uint) *big.Float {
	constCache.Lock()
	defer constCache.Unlock()
	if piCache.prec < prec {
		wp := prec + 64
		// Machin: pi = 16*atan(1/5) - 4*atan(1/239).
		a5 := atanSeries(big.NewFloat(0).SetPrec(wp).Quo(big.NewFloat(1).SetPrec(wp), big.NewFloat(5).SetPrec(wp)), wp)
		a239 := atanSeries(big.NewFloat(0).SetPrec(wp).Quo(big.NewFloat(1).SetPrec(wp), big.NewFloat(239).SetPrec(wp)), wp)
		a5.Mul(a5, big.NewFloat(16).SetPrec(wp))
		a239.Mul(a239, big.NewFloat(4).SetPrec(wp))
		piCache.pi = a5.Sub(a5, a239)
		piCache.prec = prec
	}
	return piCache.pi
}

// Pi returns pi valid to at least prec bits (exported for the trig range
// reduction tables).
func Pi(prec uint) *big.Float { return piConst(prec) }

// atanSeries computes atan(t) = t - t^3/3 + t^5/5 - ... for |t| < 1/2.
func atanSeries(t *big.Float, wp uint) *big.Float {
	sum := new(big.Float).SetPrec(wp).Set(t)
	t2 := new(big.Float).SetPrec(wp).Mul(t, t)
	pow := new(big.Float).SetPrec(wp).Set(t)
	term := new(big.Float).SetPrec(wp)
	cut := -int(wp) - 8
	inv := recips(int(wp)/2+16, wp)
	neg := true
	for k := 3; ; k += 2 {
		pow.Mul(pow, t2)
		if k >= len(inv) {
			inv = recips(k+16, wp)
		}
		term.Mul(pow, inv[k])
		if term.Sign() == 0 || term.MantExp(nil) < cut+sum.MantExp(nil) {
			break
		}
		if neg {
			sum.Sub(sum, term)
		} else {
			sum.Add(sum, term)
		}
		neg = !neg
	}
	return sum
}

// sinTaylor computes sin(t) for |t| <= pi/2 at working precision wp.
func sinTaylor(t *big.Float, wp uint) *big.Float {
	sum := new(big.Float).SetPrec(wp).Set(t)
	t2 := new(big.Float).SetPrec(wp).Mul(t, t)
	term := new(big.Float).SetPrec(wp).Set(t)
	cut := -int(wp) - 8
	inv := recips(int(wp)+32, wp)
	neg := true
	for k := 3; ; k += 2 {
		term.Mul(term, t2)
		if k >= len(inv) {
			inv = recips(k+16, wp)
		}
		term.Mul(term, inv[k-1])
		term.Mul(term, inv[k])
		if term.Sign() == 0 || term.MantExp(nil) < cut {
			break
		}
		if neg {
			sum.Sub(sum, term)
		} else {
			sum.Add(sum, term)
		}
		neg = !neg
	}
	return sum
}

// trigReduce maps a finite dyadic x to (sign, m) with m in [0, 1/2] and
// sin(pi*x) = sign * sin(pi*m). Negative inputs reduce through the odd
// symmetry sin(-t) = -sin(t): adding 2 to a tiny negative remainder would
// round to exactly 2 and lose the input, while every step below is exact.
func trigReduce(x float64) (sign int, m float64) {
	sign = 1
	if x < 0 {
		sign = -1
		x = -x
	}
	u := math.Mod(x, 2) // exact, and in [0, 2)
	if u >= 1 {
		sign = -sign
		u -= 1 // exact
	}
	if u > 0.5 {
		u = 1 - u // exact (Sterbenz)
	}
	return sign, u
}

// sinpiBig computes sin(pi*x) with relative error below 2^-prec for
// non-exact cases (m not in {0, 1/2}).
func sinpiBig(x *big.Float, prec uint) *big.Float {
	wp := prec + 48
	xf, _ := x.Float64()
	sign, m := trigReduce(xf)
	bm := new(big.Float).SetPrec(wp).SetFloat64(m)
	t := new(big.Float).SetPrec(wp).Mul(bm, piConst(wp))
	s := sinTaylor(t, wp)
	if sign < 0 {
		s.Neg(s)
	}
	return s
}

// cosTaylor computes cos(t) for |t| <= pi/2 at working precision wp.
func cosTaylor(t *big.Float, wp uint) *big.Float {
	sum := big.NewFloat(1).SetPrec(wp)
	t2 := new(big.Float).SetPrec(wp).Mul(t, t)
	term := big.NewFloat(1).SetPrec(wp)
	cut := -int(wp) - 8
	inv := recips(int(wp)+32, wp)
	neg := true
	for k := 2; ; k += 2 {
		term.Mul(term, t2)
		if k >= len(inv) {
			inv = recips(k+16, wp)
		}
		term.Mul(term, inv[k-1])
		term.Mul(term, inv[k])
		if term.Sign() == 0 || term.MantExp(nil) < cut {
			break
		}
		if neg {
			sum.Sub(sum, term)
		} else {
			sum.Add(sum, term)
		}
		neg = !neg
	}
	return sum
}

// cosReduce maps a finite dyadic x to (sign, w) with w in [0, 1/2] and
// cos(pi*x) = sign * cos(pi*w). Negative inputs use the even symmetry, so
// every step (mod, reflections) is exact in double.
func cosReduce(x float64) (sign int, w float64) {
	u := math.Mod(math.Abs(x), 2) // exact, in [0, 2)
	if u > 1 {
		u = 2 - u // exact (Sterbenz)
	}
	sign = 1
	if u > 0.5 {
		sign = -1
		u = 1 - u // cos(pi*u) = -cos(pi*(1-u)); exact (Sterbenz)
	}
	return sign, u
}

// cospiBig computes cos(pi*x) with relative error below 2^-prec for
// non-exact cases. The reduction is exact; the quadrant value uses the
// cosine series near 0 (where converting to sin would need an inexact
// 1/2 - w) and the sine series near 1/2 (where 1/2 - w is exact).
func cospiBig(x *big.Float, prec uint) *big.Float {
	wp := prec + 48
	xf, _ := x.Float64()
	sign, w := cosReduce(xf)
	var s *big.Float
	if w <= 0.25 {
		t := new(big.Float).SetPrec(wp).SetFloat64(w)
		t.Mul(t, piConst(wp))
		s = cosTaylor(t, wp)
	} else {
		t := new(big.Float).SetPrec(wp).SetFloat64(0.5 - w) // exact: w in [1/4, 1/2]
		t.Mul(t, piConst(wp))
		s = sinTaylor(t, wp)
	}
	if sign < 0 {
		s.Neg(s)
	}
	return s
}

// trigExact reports the exact rational value of sin(pi*x) or cos(pi*x) when
// x is a multiple of 1/2 — the only dyadic inputs with rational results
// (Niven's theorem: the other rational-sine angles involve sixths, which
// are never dyadic).
func trigExact(f Func, x float64) (*big.Rat, bool) {
	ax := math.Abs(x)
	if ax >= 1<<52 {
		// Every such double is an integer: sin(pi*n) = 0;
		// cos(pi*n) = +1 for even n, -1 for odd n.
		if f == Sinpi {
			return new(big.Rat), true
		}
		if math.Mod(x, 2) == 0 {
			return big.NewRat(1, 1), true
		}
		return big.NewRat(-1, 1), true
	}
	t := x * 2 // exact for |x| < 2^52
	if t != math.Trunc(t) {
		return nil, false
	}
	// x is a multiple of 1/2; both functions are exactly 0 or +-1 there.
	if f == Cospi {
		sign, w := cosReduce(x)
		switch w {
		case 0:
			return big.NewRat(int64(sign), 1), true
		case 0.5:
			return new(big.Rat), true
		}
		return nil, false
	}
	sign, m := trigReduce(x)
	switch m {
	case 0:
		return new(big.Rat), true
	case 0.5:
		return big.NewRat(int64(sign), 1), true
	}
	return nil, false
}

// Package oracle provides correctly rounded values of the six elementary
// functions the paper evaluates (e^x, 2^x, 10^x, ln x, log2 x, log10 x) for
// any supported floating-point format and rounding mode, including
// round-to-odd.
//
// The paper's prototype uses MPFR; this package plays that role with a
// Ziv-style loop on math/big: evaluate with a bounded relative error, check
// whether the error interval rounds unambiguously, and retry with more
// precision otherwise. Inputs whose exact result is a rational number
// (exp2 of an integer, log2 of a power of two, ...) are detected
// algebraically and rounded exactly, which is what makes the loop terminate
// for every input.
package oracle

import (
	"fmt"
	"math"
	"math/big"
	"sync"
	"sync/atomic"

	"rlibm/internal/fp"
)

// Func identifies one of the six elementary functions.
type Func int

const (
	Exp Func = iota
	Exp2
	Exp10
	Log
	Log2
	Log10
	// Sinpi and Cospi are the trigonometric extension the paper's
	// conclusion announces as future work; RLibm ships them because their
	// argument reduction is exact for binary floating-point inputs.
	Sinpi
	Cospi
)

// numFuncs bounds the Func enumeration (array-table sizing).
const numFuncs = int(Cospi) + 1

// Funcs lists the six functions of the paper's evaluation, in its order.
var Funcs = []Func{Exp, Exp2, Exp10, Log, Log2, Log10}

// TrigFuncs lists the trigonometric extension functions.
var TrigFuncs = []Func{Sinpi, Cospi}

// AllFuncs lists every supported function.
var AllFuncs = append(append([]Func{}, Funcs...), TrigFuncs...)

func (f Func) String() string {
	switch f {
	case Exp:
		return "exp"
	case Exp2:
		return "exp2"
	case Exp10:
		return "exp10"
	case Log:
		return "log"
	case Log2:
		return "log2"
	case Log10:
		return "log10"
	case Sinpi:
		return "sinpi"
	case Cospi:
		return "cospi"
	default:
		return fmt.Sprintf("Func(%d)", int(f))
	}
}

// ParseFunc converts a CLI name into a Func.
func ParseFunc(s string) (Func, error) {
	for _, f := range AllFuncs {
		if f.String() == s {
			return f, nil
		}
	}
	return 0, fmt.Errorf("oracle: unknown function %q", s)
}

// IsLog reports whether the function is one of the logarithms.
func (f Func) IsLog() bool { return f == Log || f == Log2 || f == Log10 }

// IsTrig reports whether the function is one of the trigonometric
// extensions.
func (f Func) IsTrig() bool { return f == Sinpi || f == Cospi }

// IsExpFamily reports whether the function is e^x, 2^x or 10^x.
func (f Func) IsExpFamily() bool { return f == Exp || f == Exp2 || f == Exp10 }

// expArgLimit bounds |x| for the exponential family: beyond it the result
// overflows (or underflows) every supported format by an astronomical
// margin, and a symbolic stand-in is rounded instead of evaluating the
// series.
const expArgLimit = 1e8

// MathRef returns the float64 math-package reference for the function, used
// only in sanity tests.
func (f Func) MathRef(x float64) float64 {
	switch f {
	case Exp:
		return math.Exp(x)
	case Exp2:
		return math.Exp2(x)
	case Exp10:
		return math.Pow(10, x)
	case Log:
		return math.Log(x)
	case Log2:
		return math.Log2(x)
	case Log10:
		return math.Log10(x)
	case Sinpi:
		return math.Sin(math.Pi * x)
	case Cospi:
		return math.Cos(math.Pi * x)
	}
	panic("oracle: bad func")
}

// EvalBig returns an approximation of f(x) with relative error below
// 2^-prec. The input must be finite; logarithms require x > 0; the
// exponential family requires |x| <= expArgLimit.
func (f Func) EvalBig(x float64, prec uint) *big.Float {
	bx := new(big.Float).SetPrec(prec + 128).SetFloat64(x)
	switch f {
	case Exp:
		return expBig(bx, prec)
	case Exp2:
		return exp2Big(bx, prec)
	case Exp10:
		return exp10Big(bx, prec)
	case Log:
		return logBig(bx, prec)
	case Log2:
		return log2Big(bx, prec)
	case Log10:
		return log10Big(bx, prec)
	case Sinpi:
		return sinpiBig(bx, prec)
	case Cospi:
		return cospiBig(bx, prec)
	}
	panic("oracle: bad func")
}

// ExactValue reports whether f(x) is exactly a rational number and returns
// it. The generator uses this to enumerate the inputs with singleton
// rounding intervals (integral exp2 arguments, powers of two for log2, ...),
// which must never be dropped by constraint sampling.
func ExactValue(f Func, x float64) (*big.Rat, bool) {
	return exactResult(f, x)
}

// exactResult reports whether f(x) is exactly a rational number and returns
// it. For these six functions, classical transcendence results (Lindemann,
// Gelfond–Schneider) guarantee f(x) is irrational — indeed transcendental —
// for every other finite nonzero machine input, so the Ziv loop terminates.
func exactResult(f Func, x float64) (*big.Rat, bool) {
	isInt := x == math.Trunc(x)
	switch f {
	case Exp:
		if x == 0 {
			return big.NewRat(1, 1), true
		}
	case Exp2:
		if isInt && math.Abs(x) <= 4096 {
			return ratPow(2, int(x)), true
		}
	case Exp10:
		if isInt && math.Abs(x) <= 640 {
			return ratPow(10, int(x)), true
		}
	case Log:
		if x == 1 {
			return new(big.Rat), true
		}
	case Log2:
		if x > 0 {
			m, e := math.Frexp(x)
			if m == 0.5 {
				return new(big.Rat).SetInt64(int64(e - 1)), true
			}
		}
	case Log10:
		if x > 0 {
			n := int(math.Round(math.Log10(x)))
			if math.Abs(float64(n)) <= 640 {
				if new(big.Rat).SetFloat64(x).Cmp(ratPow(10, n)) == 0 {
					return new(big.Rat).SetInt64(int64(n)), true
				}
			}
		}
	case Sinpi, Cospi:
		return trigExact(f, x)
	}
	return nil, false
}

func ratPow(base int64, n int) *big.Rat {
	abs := n
	if abs < 0 {
		abs = -abs
	}
	p := new(big.Int).Exp(big.NewInt(base), big.NewInt(int64(abs)), nil)
	if n >= 0 {
		return new(big.Rat).SetInt(p)
	}
	return new(big.Rat).SetFrac(big.NewInt(1), p)
}

// Value is a reusable oracle result for one (function, input) pair: the
// expensive arbitrary-precision evaluation happens once, and Round answers
// any number of (format, mode) questions against it, refining the precision
// lazily in the rare ambiguous cases. Not safe for concurrent use.
type Value struct {
	fn       Func
	x        float64
	exact    *big.Rat // non-nil when f(x) is exactly rational
	symbolic int      // +1 far overflow, -1 far underflow, 0 normal
	prec     uint
	y        *big.Float
}

// basePrec is the Ziv loop's base working precision: enough for all but the
// near-halfway cases, cheap enough to be the default starting rung.
const basePrec = 80

// ladderMaxStart caps how high the precision ladder may start a fresh
// evaluation: beyond it, overshooting an easy input costs more than the
// retries it saves on a hard one.
const ladderMaxStart = 2048

// ladders holds, per function, the terminal precision of the most recent
// Ziv-path Round — the precision-ladder fast path. Worst-case inputs
// cluster (near-halfway results live in narrow input neighbourhoods, and
// enumeration visits neighbours consecutively), so starting the next input
// at the precision that just succeeded skips the doubling retries — and the
// full re-evaluations they imply — for the whole neighbourhood. Easy inputs
// walk the ladder back down one rung per call. The rounded result is
// identical for every starting precision (roundUnambiguous only accepts an
// unambiguous interval), so the ladder is a pure speed knob; the atomic is
// shared by concurrent workers as an advisory hint.
var ladders [numFuncs]atomic.Uint64

// ladderStart returns the starting precision for a fresh evaluation of f.
func ladderStart(f Func) uint {
	p := uint(ladders[f].Load())
	if p < basePrec {
		return basePrec
	}
	if p > ladderMaxStart {
		return ladderMaxStart
	}
	return p
}

// ladderRecord folds one Ziv-path outcome back into the ladder: an
// escalation raises the rung to the terminal precision; an immediate
// success decays it halfway toward the base, so a run of easy inputs
// returns to cheap evaluations without forgetting a hard neighbourhood in
// one step.
func ladderRecord(f Func, terminal uint, depth int) {
	if depth > 0 {
		ladders[f].Store(uint64(terminal))
		return
	}
	next := terminal / 2
	if next < basePrec {
		next = basePrec
	}
	ladders[f].Store(uint64(next))
}

// Compute evaluates f(x) once for later rounding. The domain restrictions
// of Correct apply.
func Compute(f Func, x float64) *Value {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		panic("oracle: non-finite input")
	}
	if f.IsLog() && x <= 0 {
		panic("oracle: logarithm of a non-positive value")
	}
	v := &Value{fn: f, x: x}
	if f.IsExpFamily() && math.Abs(x) > expArgLimit {
		if x > 0 {
			v.symbolic = 1
		} else {
			v.symbolic = -1
		}
		return v
	}
	if r, ok := exactResult(f, x); ok {
		v.exact = r
		return v
	}
	v.prec = ladderStart(f)
	metricsFor(f).observeLadderStart(v.prec)
	v.y = f.EvalBig(x, v.prec)
	return v
}

// Round returns the correctly rounded value of f(x) in format t under mode
// m, raising the working precision until rounding is unambiguous.
//
// Each call records its Ziv escalation depth (precision doublings performed
// by this call; a reused Value keeps its precision, so later calls usually
// record depth 0) and terminal working precision into the obs.Default()
// registry — write-only instrumentation that cannot affect the result.
func (v *Value) Round(t fp.Format, m fp.Mode) float64 {
	if v.symbolic != 0 {
		metricsFor(v.fn).observeExact()
		return roundSymbolic(t, m, v.symbolic > 0)
	}
	if v.exact != nil {
		metricsFor(v.fn).observeExact()
		return t.RoundRat(v.exact, m)
	}
	depth := 0
	for {
		if r, ok := roundUnambiguous(v.y, v.prec-8, t, m); ok {
			metricsFor(v.fn).observeZiv(depth, v.prec)
			ladderRecord(v.fn, v.prec, depth)
			return r
		}
		if v.prec > 16384 {
			panic(fmt.Sprintf("oracle: Ziv loop did not converge for %v(%g)", v.fn, v.x))
		}
		v.prec *= 2
		v.y = v.fn.EvalBig(v.x, v.prec)
		depth++
	}
}

// TerminalPrec returns the working precision the last Round (or the initial
// Compute) left the value at — 0 for exact and symbolic results, which never
// run the Ziv loop. The golden hard-case vectors pin this so ladder or
// evaluation changes cannot silently deepen the escalations.
func (v *Value) TerminalPrec() uint { return v.prec }

// Correct returns the correctly rounded value of f(x) in format t under
// rounding mode m. x must be finite and inside the function's domain
// (x > 0 for logarithms); domain edges (infinities, NaN, non-positive log
// arguments, exact zeros) are the caller's special cases, as in RLibm.
func Correct(f Func, x float64, t fp.Format, m fp.Mode) float64 {
	return Compute(f, x).Round(t, m)
}

// CorrectRO34 returns the RLibm-ALL oracle value: f(x) rounded to the
// 34-bit format with round-to-odd.
func CorrectRO34(f Func, x float64) float64 {
	return Correct(f, x, fp.FP34, fp.RTO)
}

// roundSymbolic rounds a stand-in for an exponential result that is far
// beyond (huge=true) or far below (huge=false) every representable
// magnitude, honoring the mode-dependent overflow/underflow behaviour.
func roundSymbolic(t fp.Format, m fp.Mode, huge bool) float64 {
	if huge {
		over := new(big.Rat).SetFloat64(t.MaxFinite())
		over.Mul(over, big.NewRat(4, 1))
		return t.RoundRat(over, m)
	}
	tiny := new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Lsh(big.NewInt(1), 2000))
	return t.RoundRat(tiny, m)
}

// ResetLadders drops every function's precision ladder back to the base
// rung. Tests and benchmarks that assert terminal Ziv precisions call this
// first: the ladder is process-global advisory state, so without a reset
// the starting precision would depend on whatever ran before.
func ResetLadders() {
	for i := range ladders {
		ladders[i].Store(0)
	}
}

// scratchPool recycles the three big.Float temporaries of roundUnambiguous.
// Round is the hottest call in the repository (once per enumerated input
// per (format, mode)); without the pool each call allocates three mantissa
// buffers that die microseconds later. SetPrec reuses the pooled mantissa
// storage when the precision fits.
var scratchPool = sync.Pool{New: func() any { return new(roundScratch) }}

type roundScratch struct{ e, lo, hi big.Float }

// roundUnambiguous rounds y under the assumption |relative error| <
// 2^-errBits; ok is false when the error interval straddles a rounding
// boundary and more precision is needed.
func roundUnambiguous(y *big.Float, errBits uint, t fp.Format, m fp.Mode) (float64, bool) {
	wp := y.Prec() + 8
	sc := scratchPool.Get().(*roundScratch)
	e := sc.e.SetPrec(wp).Abs(y)
	e.SetMantExp(e, -int(errBits))
	lo := sc.lo.SetPrec(wp).Sub(y, e)
	hi := sc.hi.SetPrec(wp).Add(y, e)
	vlo := t.RoundBigFloat(lo, m)
	vhi := t.RoundBigFloat(hi, m)
	scratchPool.Put(sc)
	if sameFloat(vlo, vhi) {
		return vlo, true
	}
	return 0, false
}

func sameFloat(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

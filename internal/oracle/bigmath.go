package oracle

import (
	"math"
	"math/big"
	"sync"
)

// Constants ln2, ln10 and log2(10) are computed once at a generous precision
// and re-derived (extended) lazily when a caller needs more bits.
var constCache struct {
	sync.Mutex
	prec   uint
	ln2    *big.Float
	ln10   *big.Float
	log210 *big.Float
}

// consts returns ln2, ln10 and log2(10) valid to at least prec bits.
func consts(prec uint) (ln2, ln10, log210 *big.Float) {
	c := &constCache
	c.Lock()
	defer c.Unlock()
	if c.prec < prec {
		wp := prec + 64
		// ln2 = 2*atanh(1/3); ln10 = 3*ln2 + 2*atanh(1/9).
		third := new(big.Float).SetPrec(wp).Quo(big.NewFloat(1).SetPrec(wp), big.NewFloat(3).SetPrec(wp))
		ninth := new(big.Float).SetPrec(wp).Quo(big.NewFloat(1).SetPrec(wp), big.NewFloat(9).SetPrec(wp))
		l2 := atanhSeries(third, wp)
		l2.Mul(l2, big.NewFloat(2).SetPrec(wp))
		a9 := atanhSeries(ninth, wp)
		l10 := new(big.Float).SetPrec(wp).Mul(l2, big.NewFloat(3).SetPrec(wp))
		a9.Mul(a9, big.NewFloat(2).SetPrec(wp))
		l10.Add(l10, a9)
		lg210 := new(big.Float).SetPrec(wp).Quo(l10, l2)
		c.prec, c.ln2, c.ln10, c.log210 = prec, l2, l10, lg210
	}
	return c.ln2, c.ln10, c.log210
}

// Constants returns ln(2), ln(10) and log2(10) valid to at least prec bits.
// The range-reduction layer derives its double-precision constants and
// Cody–Waite splits from these.
func Constants(prec uint) (ln2, ln10, log210 *big.Float) {
	return consts(prec)
}

// recipCache holds 1/k at a generous precision: multiplying by a cached
// reciprocal is much cheaper than an arbitrary-precision division per series
// term.
var recipCache struct {
	sync.Mutex
	prec uint
	inv  []*big.Float // inv[k] = 1/k
}

// recips returns a snapshot slice with recips[k] = 1/k for k <= maxK, valid
// to at least prec bits. The returned slice and its entries are immutable,
// so callers may use them without holding the lock.
func recips(maxK int, prec uint) []*big.Float {
	c := &recipCache
	c.Lock()
	defer c.Unlock()
	if c.prec < prec {
		c.prec = prec + 128
		c.inv = nil
	}
	for len(c.inv) <= maxK {
		n := len(c.inv)
		if n == 0 {
			c.inv = append(c.inv, nil)
			continue
		}
		one := big.NewFloat(1).SetPrec(c.prec)
		c.inv = append(c.inv, one.Quo(one, new(big.Float).SetPrec(c.prec).SetInt64(int64(n))))
	}
	return c.inv[:maxK+1]
}

// atanhSeries computes atanh(t) = t + t^3/3 + t^5/5 + ... for |t| < 1/2 at
// working precision wp, truncating when terms fall below 2^-(wp+8). The
// truncation error is below the last term, so the relative error of the
// result is a few ulps at wp.
func atanhSeries(t *big.Float, wp uint) *big.Float {
	sum := new(big.Float).SetPrec(wp).Set(t)
	t2 := new(big.Float).SetPrec(wp).Mul(t, t)
	pow := new(big.Float).SetPrec(wp).Set(t)
	term := new(big.Float).SetPrec(wp)
	cut := -int(wp) - 8
	maxK := int(wp)/2 + 16 // more terms than the worst case (|t| < 1/2) needs
	inv := recips(maxK, wp)
	for k := 3; ; k += 2 {
		pow.Mul(pow, t2)
		if k >= len(inv) {
			inv = recips(k+16, wp)
		}
		term.Mul(pow, inv[k])
		if term.Sign() == 0 || term.MantExp(nil) < cut+sum.MantExp(nil) {
			break
		}
		sum.Add(sum, term)
	}
	return sum
}

// expCore computes exp(r) for |r| <= 1 at working precision wp using an
// s-step argument halving followed by a Taylor series and s squarings.
func expCore(r *big.Float, wp uint) *big.Float {
	const s = 8
	if r.Sign() == 0 {
		return big.NewFloat(1).SetPrec(wp)
	}
	rs := new(big.Float).SetPrec(wp)
	rs.SetMantExp(r, -s) // r / 2^s, exact

	// Taylor: sum r^k / k!.
	sum := big.NewFloat(1).SetPrec(wp)
	term := new(big.Float).SetPrec(wp).SetInt64(1)
	cut := -int(wp) - 8
	inv := recips(int(wp)/9+16, wp)
	for k := 1; ; k++ {
		term.Mul(term, rs)
		if k >= len(inv) {
			inv = recips(k+16, wp)
		}
		term.Mul(term, inv[k])
		sum.Add(sum, term)
		if term.MantExp(nil) < cut {
			break
		}
	}
	for i := 0; i < s; i++ {
		sum.Mul(sum, sum)
	}
	return sum
}

// expBig computes exp(x) with relative error below 2^-(prec) at working
// precision prec+64. |x| must be at most expArgLimit.
func expBig(x *big.Float, prec uint) *big.Float {
	wp := prec + 48
	if x.Sign() == 0 {
		return big.NewFloat(1).SetPrec(wp)
	}
	ln2, _, _ := consts(wp)
	// n = round(x / ln2).
	q := new(big.Float).SetPrec(64).Quo(x, ln2)
	qf, _ := q.Float64()
	n := int(math.RoundToEven(qf))
	// r = x - n*ln2, |r| <= ln2/2 + slack.
	r := new(big.Float).SetPrec(wp).SetInt64(int64(n))
	r.Mul(r, ln2)
	r.Sub(new(big.Float).SetPrec(wp).Set(x), r)
	y := expCore(r, wp)
	y.SetMantExp(y, n)
	return y
}

// logBig computes ln(x) for x > 0 with relative error below 2^-(prec) at
// working precision prec+64.
func logBig(x *big.Float, prec uint) *big.Float {
	wp := prec + 48
	ln2, _, _ := consts(wp)
	mant := new(big.Float).SetPrec(wp)
	e := x.MantExp(mant) // x = mant * 2^e, mant in [0.5, 1)
	// Balance the reduction so mant' is in [sqrt(2)/2, sqrt(2)): the atanh
	// argument then stays below ~0.1716 and no catastrophic cancellation
	// occurs between ln(mant') and e'*ln2.
	sqrt2half := big.NewFloat(math.Sqrt2 / 2)
	if mant.Cmp(sqrt2half) < 0 {
		mant.SetMantExp(mant, 1) // mant *= 2
		e--
	}
	one := big.NewFloat(1).SetPrec(wp)
	num := new(big.Float).SetPrec(wp).Sub(mant, one)
	den := new(big.Float).SetPrec(wp).Add(mant, one)
	t := new(big.Float).SetPrec(wp).Quo(num, den)
	lnm := atanhSeries(t, wp)
	lnm.SetMantExp(lnm, 1) // * 2
	if e != 0 {
		et := new(big.Float).SetPrec(wp).SetInt64(int64(e))
		et.Mul(et, ln2)
		lnm.Add(lnm, et)
	}
	return lnm
}

// exp2Big computes 2^x with relative error below 2^-(prec).
func exp2Big(x *big.Float, prec uint) *big.Float {
	wp := prec + 32
	if x.Sign() == 0 {
		return big.NewFloat(1).SetPrec(wp)
	}
	ln2, _, _ := consts(wp)
	xf, _ := x.Float64()
	n := int(math.RoundToEven(xf))
	// f = x - n is exact (x is a dyadic value, n an integer).
	f := new(big.Float).SetPrec(wp).Sub(x, new(big.Float).SetPrec(wp).SetInt64(int64(n)))
	r := new(big.Float).SetPrec(wp).Mul(f, ln2)
	y := expCore(r, wp)
	y.SetMantExp(y, n)
	return y
}

// exp10Big computes 10^x with relative error below 2^-(prec).
func exp10Big(x *big.Float, prec uint) *big.Float {
	wp := prec + 64
	if x.Sign() == 0 {
		return big.NewFloat(1).SetPrec(wp)
	}
	_, _, log210 := consts(wp)
	// 10^x = 2^(x*log2(10)). n = round(x*log2(10)); the reduced exponent
	// f = x*log2(10) - n is computed at wp, absorbing the cancellation.
	t := new(big.Float).SetPrec(wp).Mul(new(big.Float).SetPrec(wp).Set(x), log210)
	tf, _ := t.Float64()
	n := int(math.RoundToEven(tf))
	f := new(big.Float).SetPrec(wp).Sub(t, new(big.Float).SetPrec(wp).SetInt64(int64(n)))
	ln2, _, _ := consts(wp)
	r := new(big.Float).SetPrec(wp).Mul(f, ln2)
	y := expCore(r, wp)
	y.SetMantExp(y, n)
	return y
}

// log2Big computes log2(x) for x > 0 with relative error below 2^-(prec).
func log2Big(x *big.Float, prec uint) *big.Float {
	l := logBig(x, prec+8)
	ln2, _, _ := consts(l.Prec())
	return l.Quo(l, ln2)
}

// log10Big computes log10(x) for x > 0 with relative error below 2^-(prec).
func log10Big(x *big.Float, prec uint) *big.Float {
	l := logBig(x, prec+8)
	_, ln10, _ := consts(l.Prec())
	return l.Quo(l, ln10)
}

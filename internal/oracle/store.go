package oracle

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"rlibm/internal/fp"
)

// StoreVersion is the on-disk segment format version. Bump it whenever the
// record layout, the key semantics, or the oracle's numeric behaviour
// changes: segments with a different version are quarantined on open, so a
// stale cache can never feed wrong values into generation. CI keys its
// cross-run cache directory on this constant.
const StoreVersion = 1

// The segment file layout (all integers little-endian):
//
//	header:  magic "RLOC" | version uint32
//	records: N x 20 bytes: fn uint8 | tBits uint8 | tExpBits uint8 |
//	         mode uint8 | xbits uint64 | ybits uint64
//	trailer: magic "RLOE" | count uint64 | crc32(IEEE, all record bytes)
//
// Segments are immutable once written: a run appends new results to a
// private write-ahead file and seals it into a fresh segment on Close
// (trailer, fsync, atomic rename). Anything that fails validation — short
// file, bad magic, version mismatch, count/CRC mismatch, impossible record —
// is renamed to *.quarantined and the open continues; a corrupt cache costs
// recomputation, never wrong results.
const (
	segMagic         = "RLOC"
	segEndMagic      = "RLOE"
	segHeaderLen     = 8
	segRecordLen     = 20
	segTrailerLen    = 16
	segSuffix        = ".seg"
	quarantineSuffix = ".quarantined"
)

// defaultCompactThreshold is the valid-segment count above which Open
// rewrites the directory into a single compacted segment.
const defaultCompactThreshold = 8

// StoreOptions configures OpenStore.
type StoreOptions struct {
	// ReadOnly loads existing segments but never writes: Append is a no-op
	// and no compaction happens. Use for runs that must not grow the cache
	// (CI replay, concurrent readers of a shared directory).
	ReadOnly bool
	// CompactThreshold overrides the segment count that triggers compaction
	// on open (0 selects the default; negative disables compaction).
	CompactThreshold int
	// NoSync skips the fsync when sealing segments (tests only).
	NoSync bool
}

// StoreStats describes a store's disk state and activity.
type StoreStats struct {
	Dir string `json:"dir"`
	// Segments and SegmentBytes describe the valid segments found at open
	// (after compaction, when it ran).
	Segments     int   `json:"segments"`
	SegmentBytes int64 `json:"segment_bytes"`
	// LoadedEntries is the number of records read from disk at open
	// (duplicates across segments count once per occurrence).
	LoadedEntries int `json:"loaded_entries"`
	// AppendedEntries is the number of fresh results recorded this run
	// (including imported records, which flow through the same write logs).
	AppendedEntries int64 `json:"appended_entries"`
	// ImportedEntries is the number of novel records adopted from imported
	// segments this run (a subset of AppendedEntries).
	ImportedEntries int64 `json:"imported_entries,omitempty"`
	// Quarantined counts segments renamed aside for failing validation.
	Quarantined int `json:"quarantined"`
	// Compacted reports whether this open rewrote the segments.
	Compacted bool `json:"compacted,omitempty"`
	ReadOnly  bool `json:"readonly,omitempty"`
}

// Store is the persistent, disk-backed layer of the oracle cache: a
// directory of versioned, CRC-validated, append-only segment files keyed by
// (function, input bits, target format, rounding mode). A Store is safe for
// concurrent use; open one per directory per process.
type Store struct {
	dir   string
	opts  StoreOptions
	stats StoreStats

	mu       sync.Mutex
	entries  map[cacheKey]float64 // loaded at open, handed to AttachStore
	writers  map[Func]*segWriter  // lazily created per-function write logs
	writeErr error
	closed   bool
}

// OpenStore opens (creating if needed) the cache directory, validates and
// loads every segment, quarantines corrupt or version-mismatched ones, and
// compacts the directory when it has accumulated too many segments.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("oracle: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("oracle: cache dir: %w", err)
	}
	s := &Store{
		dir:     dir,
		opts:    opts,
		entries: make(map[cacheKey]float64),
		writers: make(map[Func]*segWriter),
	}
	s.stats.Dir = dir
	s.stats.ReadOnly = opts.ReadOnly
	if err := s.load(); err != nil {
		return nil, err
	}
	thresh := opts.CompactThreshold
	if thresh == 0 {
		thresh = defaultCompactThreshold
	}
	if !opts.ReadOnly && thresh > 0 && s.stats.Segments > thresh {
		if err := s.compact(); err != nil {
			return nil, err
		}
	}
	storeMetrics().open(&s.stats)
	return s, nil
}

// load reads every *.seg file in lexical order, later segments winning on
// duplicate keys. Invalid segments are quarantined, not fatal.
func (s *Store) load() error {
	names, err := filepath.Glob(filepath.Join(s.dir, "*"+segSuffix))
	if err != nil {
		return err
	}
	sort.Strings(names)
	for _, name := range names {
		n, size, err := s.loadSegment(name)
		if err != nil {
			s.quarantine(name, err)
			continue
		}
		s.stats.Segments++
		s.stats.SegmentBytes += size
		s.stats.LoadedEntries += n
	}
	return nil
}

// loadSegment validates and reads one segment into s.entries.
func (s *Store) loadSegment(name string) (records int, size int64, err error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return 0, 0, err
	}
	size = int64(len(data))
	recs, err := parseSegment(data)
	if err != nil {
		return 0, size, err
	}
	for _, r := range recs {
		s.entries[r.k] = r.y
	}
	return len(recs), size, nil
}

// segRecord is one decoded segment record.
type segRecord struct {
	k cacheKey
	y float64
}

// parseSegment validates a whole segment image (header, trailer, CRC, record
// plausibility) and decodes its records. It is the single reader of the
// on-disk format, shared by segment loading and Import.
func parseSegment(data []byte) ([]segRecord, error) {
	if len(data) < segHeaderLen+segTrailerLen {
		return nil, fmt.Errorf("truncated segment (%d bytes)", len(data))
	}
	if string(data[:4]) != segMagic {
		return nil, fmt.Errorf("bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != StoreVersion {
		return nil, fmt.Errorf("segment version %d, want %d", v, StoreVersion)
	}
	payload := data[segHeaderLen : len(data)-segTrailerLen]
	trailer := data[len(data)-segTrailerLen:]
	if string(trailer[:4]) != segEndMagic {
		return nil, fmt.Errorf("bad trailer magic %q", trailer[:4])
	}
	count := binary.LittleEndian.Uint64(trailer[4:12])
	if uint64(len(payload)) != count*segRecordLen {
		return nil, fmt.Errorf("record count %d does not match payload of %d bytes", count, len(payload))
	}
	if crc := binary.LittleEndian.Uint32(trailer[12:16]); crc != crc32.ChecksumIEEE(payload) {
		return nil, fmt.Errorf("CRC mismatch")
	}
	recs := make([]segRecord, 0, count)
	for off := 0; off < len(payload); off += segRecordLen {
		rec := payload[off : off+segRecordLen]
		fn := Func(rec[0])
		if int(fn) < 0 || int(fn) >= numFuncs {
			return nil, fmt.Errorf("record %d: impossible function %d", off/segRecordLen, rec[0])
		}
		recs = append(recs, segRecord{
			k: cacheKey{
				fn:   fn,
				t:    fp.Format{Bits: int(rec[1]), ExpBits: int(rec[2])},
				mode: fp.Mode(rec[3]),
				bits: binary.LittleEndian.Uint64(rec[4:12]),
			},
			y: math.Float64frombits(binary.LittleEndian.Uint64(rec[12:20])),
		})
	}
	return recs, nil
}

// quarantine renames a failed segment aside so the next open does not trip
// over it again, and so an operator can inspect it.
func (s *Store) quarantine(name string, cause error) {
	_ = os.Rename(name, dedupePath(name+quarantineSuffix))
	s.stats.Quarantined++
	storeMetrics().quarantined.Inc()
}

// dedupePath returns dst, or dst.2, dst.3, ... — the first name that does
// not already exist.
func dedupePath(dst string) string {
	try := dst
	for i := 2; ; i++ {
		if _, err := os.Stat(try); os.IsNotExist(err) {
			return try
		}
		try = fmt.Sprintf("%s.%d", dst, i)
	}
}

// compact rewrites every loaded entry into one fresh segment and deletes the
// old segment files. Crash-safe: the new segment is sealed (fsync + rename)
// before anything is removed, and duplicate entries are harmless on load.
func (s *Store) compact() error {
	old, err := filepath.Glob(filepath.Join(s.dir, "*"+segSuffix))
	if err != nil {
		return err
	}
	w, err := newSegWriter(s.dir, "compact", s.opts.NoSync)
	if err != nil {
		return err
	}
	keys := sortedKeys(s.entries)
	for _, k := range keys {
		if err := w.append(k, s.entries[k]); err != nil {
			w.abort()
			return err
		}
	}
	size, err := w.seal()
	if err != nil {
		return err
	}
	for _, name := range old {
		if err := os.Remove(name); err != nil {
			return err
		}
	}
	s.stats.Segments = 1
	s.stats.SegmentBytes = size
	s.stats.Compacted = true
	return nil
}

// sortedKeys returns the entry keys sorted by (function, input bits, format,
// mode): a segment written in this order is the "compacted index" of the
// format — binary-searchable offline and byte-for-byte reproducible from the
// same entry set. Compaction and Export share it.
func sortedKeys(entries map[cacheKey]float64) []cacheKey {
	keys := make([]cacheKey, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.fn != b.fn {
			return a.fn < b.fn
		}
		if a.bits != b.bits {
			return a.bits < b.bits
		}
		if a.t.Bits != b.t.Bits {
			return a.t.Bits < b.t.Bits
		}
		if a.t.ExpBits != b.t.ExpBits {
			return a.t.ExpBits < b.t.ExpBits
		}
		return a.mode < b.mode
	})
	return keys
}

// Append records one freshly computed oracle result. No-op in read-only
// mode, after Close, or after a write error (which Close reports).
func (s *Store) Append(k cacheKey, y float64) {
	if s.opts.ReadOnly {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.writeErr != nil {
		return
	}
	s.appendLocked(k, y)
}

// appendLocked writes one record to the per-function write log and mirrors
// it into s.entries, so Export and Import dedup see this run's fresh results
// too. Caller holds s.mu and has checked closed/writeErr.
func (s *Store) appendLocked(k cacheKey, y float64) {
	w := s.writers[k.fn]
	if w == nil {
		var err error
		w, err = newSegWriter(s.dir, k.fn.String(), s.opts.NoSync)
		if err != nil {
			s.writeErr = err
			return
		}
		s.writers[k.fn] = w
	}
	if err := w.append(k, y); err != nil {
		s.writeErr = err
		return
	}
	s.entries[k] = y
	s.stats.AppendedEntries++
	storeMetrics().appended.Inc()
}

// forEach calls f for every entry currently in the store (loaded at open
// plus this run's appends) under the store lock. Used by Cache.AttachStore,
// which must not race a concurrent Append mutating the entry map.
func (s *Store) forEach(f func(cacheKey, float64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, y := range s.entries {
		f(k, y)
	}
}

// Close seals this run's write logs into immutable segments (trailer, fsync,
// atomic rename) and reports the first write error, if any. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.entries = nil
	first := s.writeErr
	fns := make([]Func, 0, len(s.writers))
	for fn := range s.writers {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i] < fns[j] })
	for _, fn := range fns {
		w := s.writers[fn]
		if first != nil {
			w.abort()
			continue
		}
		if _, err := w.seal(); err != nil {
			first = err
		}
	}
	s.writers = nil
	if first != nil {
		return fmt.Errorf("oracle: cache store %s: %w", s.dir, first)
	}
	return nil
}

// Stats returns a snapshot of the store's activity.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ClearCacheDir removes every cache artifact (segments, quarantined
// segments, abandoned write logs) from dir, refusing to touch anything it
// does not recognize. A missing directory is not an error.
func ClearCacheDir(dir string) error {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, e := range ents {
		name := e.Name()
		ours := strings.HasSuffix(name, segSuffix) ||
			strings.Contains(name, segSuffix+quarantineSuffix) ||
			(strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".tmp"))
		if !ours {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return nil
}

// segWriter accumulates records for one sealed-on-close segment.
type segWriter struct {
	dir    string
	tmp    string
	f      *os.File
	bw     *bufio.Writer
	crc    uint32
	count  uint64
	noSync bool
	label  string
}

var segNonce struct {
	mu sync.Mutex
	n  int
}

// nextNonce returns a process-unique suffix for write-log and segment names,
// so concurrent stores (and concurrent runs: the pid participates) never
// collide without needing wall-clock or randomness.
func nextNonce() string {
	segNonce.mu.Lock()
	segNonce.n++
	n := segNonce.n
	segNonce.mu.Unlock()
	return fmt.Sprintf("%d-%d", os.Getpid(), n)
}

func newSegWriter(dir, label string, noSync bool) (*segWriter, error) {
	tmp := filepath.Join(dir, fmt.Sprintf("wal-%s-%s.tmp", label, nextNonce()))
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	w := &segWriter{dir: dir, tmp: tmp, f: f, bw: bufio.NewWriterSize(f, 1<<16), noSync: noSync, label: label}
	var hdr [segHeaderLen]byte
	copy(hdr[:4], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], StoreVersion)
	if _, err := w.bw.Write(hdr[:]); err != nil {
		w.abort()
		return nil, err
	}
	return w, nil
}

func (w *segWriter) append(k cacheKey, y float64) error {
	var rec [segRecordLen]byte
	rec[0] = byte(k.fn)
	rec[1] = byte(k.t.Bits)
	rec[2] = byte(k.t.ExpBits)
	rec[3] = byte(k.mode)
	binary.LittleEndian.PutUint64(rec[4:12], k.bits)
	binary.LittleEndian.PutUint64(rec[12:20], math.Float64bits(y))
	w.crc = crc32.Update(w.crc, crc32.IEEETable, rec[:])
	w.count++
	_, err := w.bw.Write(rec[:])
	return err
}

// seal writes the trailer, fsyncs, and atomically renames the write log
// into a visible segment. An empty log (a fully warm run) is deleted
// instead: zero-record segments would only accumulate open-validation work.
func (w *segWriter) seal() (int64, error) {
	if w.count == 0 {
		w.abort()
		return 0, nil
	}
	dst := filepath.Join(w.dir, fmt.Sprintf("seg-%s-%s%s", w.label, nextNonce(), segSuffix))
	return w.sealTo(dst)
}

// sealTo seals the write log into dst (trailer, fsync, atomic rename),
// keeping empty logs: an exported empty store is a valid zero-record
// segment, not a missing file.
func (w *segWriter) sealTo(dst string) (int64, error) {
	var tr [segTrailerLen]byte
	copy(tr[:4], segEndMagic)
	binary.LittleEndian.PutUint64(tr[4:12], w.count)
	binary.LittleEndian.PutUint32(tr[12:16], w.crc)
	if _, err := w.bw.Write(tr[:]); err != nil {
		w.abort()
		return 0, err
	}
	if err := w.bw.Flush(); err != nil {
		w.abort()
		return 0, err
	}
	if !w.noSync {
		if err := w.f.Sync(); err != nil {
			w.abort()
			return 0, err
		}
	}
	size, err := w.f.Seek(0, io.SeekCurrent)
	if err != nil {
		w.abort()
		return 0, err
	}
	if err := w.f.Close(); err != nil {
		_ = os.Remove(w.tmp)
		return 0, err
	}
	if err := os.Rename(w.tmp, dst); err != nil {
		_ = os.Remove(w.tmp)
		return 0, err
	}
	return size, nil
}

// abort discards the write log.
func (w *segWriter) abort() {
	_ = w.f.Close()
	_ = os.Remove(w.tmp)
}

package oracle

import (
	"testing"

	"rlibm/internal/fp"
)

// TestZivMetricsRecorded: Ziv-path rounds populate the per-function depth
// and terminal-precision histograms in obs.Default(); exact-path rounds
// count separately. Metrics are process-global and monotonic, so the test
// asserts deltas.
func TestZivMetricsRecorded(t *testing.T) {
	m := metricsFor(Exp)
	if m == nil {
		t.Fatal("no metrics for Exp")
	}
	depth0, prec0, exact0 := m.zivDepth.Count(), m.zivPrec.Count(), m.exact.Value()

	if got := Correct(Exp, 0.5, fp.FP34, fp.RTO); got == 0 {
		t.Fatal("oracle returned 0 for exp(0.5)")
	}
	if m.zivDepth.Count() != depth0+1 || m.zivPrec.Count() != prec0+1 {
		t.Errorf("Ziv histograms not advanced: depth %d->%d, prec %d->%d",
			depth0, m.zivDepth.Count(), prec0, m.zivPrec.Count())
	}
	if m.zivPrecMax.Value() < 80 {
		t.Errorf("terminal precision max = %d, want >= the 80-bit start", m.zivPrecMax.Value())
	}

	Correct(Exp, 0, fp.FP34, fp.RTO) // exact path: exp(0) = 1
	if m.exact.Value() != exact0+1 {
		t.Errorf("exact counter not advanced: %d -> %d", exact0, m.exact.Value())
	}

	if bad := metricsFor(Func(99)); bad != nil {
		t.Error("out-of-range Func must yield nil metrics")
	}
	bad := metricsFor(Func(99))
	bad.observeZiv(1, 80) // nil-safe no-ops
	bad.observeExact()
	bad.observeCache(true)
}

// TestCacheMetricsByFunction: per-function hit/miss counters advance with
// the cache's own counts.
func TestCacheMetricsByFunction(t *testing.T) {
	m := metricsFor(Log2)
	hits0, misses0 := m.cacheHits.Value(), m.cacheMisses.Value()
	c := NewCache(4)
	c.Correct(Log2, 3, fp.FP34, fp.RTO)
	c.Correct(Log2, 3, fp.FP34, fp.RTO)
	if m.cacheMisses.Value() != misses0+1 {
		t.Errorf("misses %d -> %d, want +1", misses0, m.cacheMisses.Value())
	}
	if m.cacheHits.Value() != hits0+1 {
		t.Errorf("hits %d -> %d, want +1", hits0, m.cacheHits.Value())
	}
}

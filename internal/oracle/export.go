package oracle

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// Export, Import and Merge turn a store's segments into mergeable artifacts:
// a verification shard computed on one machine exports its warm cache to a
// single segment file, and any other store imports it — so a distributed
// campaign's shards combine into one fleet-wide warm oracle cache. The
// exported file is an ordinary store segment (same header, record layout,
// CRC trailer and version gate), so every validation and quarantine path of
// the normal open sequence applies to foreign artifacts too.

// Export writes every entry currently in the store — loaded at open plus
// this run's appends so far — to a single sealed segment file at path,
// sorted by (function, input bits, format, mode) so identical entry sets
// export byte-for-byte identically. The destination directory must exist.
// Returns the number of records written (an empty store exports a valid
// zero-record segment).
func (s *Store) Export(path string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("oracle: export from closed store")
	}
	w, err := newSegWriter(filepath.Dir(path), "export", s.opts.NoSync)
	if err != nil {
		return 0, err
	}
	keys := sortedKeys(s.entries)
	for _, k := range keys {
		if err := w.append(k, s.entries[k]); err != nil {
			w.abort()
			return 0, err
		}
	}
	if _, err := w.sealTo(path); err != nil {
		return 0, err
	}
	return len(keys), nil
}

// ImportResult describes one Import outcome.
type ImportResult struct {
	// Added counts novel records adopted into the store (persisted through
	// this run's write logs, sealed at Close).
	Added int
	// Skipped counts records the store already held with identical bits.
	Skipped int
	// Quarantined reports that the file failed validation: a copy was placed
	// in the store directory with a .quarantined suffix for inspection and
	// nothing was adopted. Cause carries the validation failure.
	Quarantined bool
	Cause       string
}

// Import validates the segment file at path and adopts its records into the
// store. A file that fails validation (bad magic, version mismatch, CRC or
// count mismatch, impossible record) is copied aside into the store
// directory as *.quarantined and reported via ImportResult.Quarantined — a
// corrupt shard costs recomputation, never a failed campaign and never wrong
// values. The source file is left untouched either way.
//
// Records already present with identical bits are skipped, so importing the
// same artifact twice (or merging overlapping shards) is idempotent: the
// second import adopts nothing and writes nothing. Call Import before
// Cache.AttachStore so the adopted entries warm the in-memory stripes.
func (s *Store) Import(path string) (ImportResult, error) {
	var res ImportResult
	if s.opts.ReadOnly {
		return res, fmt.Errorf("oracle: import into read-only store %s", s.dir)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return res, err
	}
	recs, perr := parseSegment(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return res, fmt.Errorf("oracle: import into closed store")
	}
	if perr != nil {
		dst := dedupePath(filepath.Join(s.dir, "import-"+filepath.Base(path)+quarantineSuffix))
		if werr := os.WriteFile(dst, data, 0o644); werr != nil {
			return res, fmt.Errorf("oracle: quarantining corrupt import %s: %w", path, werr)
		}
		s.stats.Quarantined++
		storeMetrics().quarantined.Inc()
		res.Quarantined = true
		res.Cause = perr.Error()
		return res, nil
	}
	for _, r := range recs {
		if y, ok := s.entries[r.k]; ok && math.Float64bits(y) == math.Float64bits(r.y) {
			res.Skipped++
			continue
		}
		s.appendLocked(r.k, r.y)
		res.Added++
		s.stats.ImportedEntries++
	}
	if s.writeErr != nil {
		return res, fmt.Errorf("oracle: import into %s: %w", s.dir, s.writeErr)
	}
	return res, nil
}

// MergeResult aggregates a Merge over a directory of segments.
type MergeResult struct {
	Files       int
	Added       int
	Skipped     int
	Quarantined int
}

// Merge imports every segment file (*.seg) under dir in lexical order:
// the way shards computed on different machines combine into one warm
// cache. Per-file corruption quarantines (see Import) and the merge
// continues; only I/O errors stop it.
func (s *Store) Merge(dir string) (MergeResult, error) {
	var res MergeResult
	names, err := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if err != nil {
		return res, err
	}
	sort.Strings(names)
	for _, name := range names {
		ir, err := s.Import(name)
		if err != nil {
			return res, err
		}
		res.Files++
		res.Added += ir.Added
		res.Skipped += ir.Skipped
		if ir.Quarantined {
			res.Quarantined++
		}
	}
	return res, nil
}

package oracle

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"rlibm/internal/fp"
)

func TestParseFunc(t *testing.T) {
	for _, f := range Funcs {
		got, err := ParseFunc(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFunc(%q) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := ParseFunc("sin"); err == nil {
		t.Error("ParseFunc(sin) should fail")
	}
}

func TestExactIdentities(t *testing.T) {
	f32 := fp.Float32
	for _, m := range fp.AllModes {
		if got := Correct(Exp, 0, f32, m); got != 1 {
			t.Errorf("exp(0) mode %v = %g", m, got)
		}
		if got := Correct(Log, 1, f32, m); got != 0 {
			t.Errorf("log(1) mode %v = %g", m, got)
		}
		if got := Correct(Exp2, 10, f32, m); got != 1024 {
			t.Errorf("exp2(10) mode %v = %g", m, got)
		}
		if got := Correct(Exp2, -3, f32, m); got != 0.125 {
			t.Errorf("exp2(-3) mode %v = %g", m, got)
		}
		if got := Correct(Log2, 1024, f32, m); got != 10 {
			t.Errorf("log2(1024) mode %v = %g", m, got)
		}
		if got := Correct(Log2, 0.25, f32, m); got != -2 {
			t.Errorf("log2(0.25) mode %v = %g", m, got)
		}
		if got := Correct(Exp10, 2, f32, m); got != 100 {
			t.Errorf("exp10(2) mode %v = %g", m, got)
		}
		if got := Correct(Log10, 1000, f32, m); got != 3 {
			t.Errorf("log10(1000) mode %v = %g", m, got)
		}
	}
}

// TestAgainstMathPackage: the oracle at float32 must sit within a couple of
// float32 ulps of the double-precision math package (which itself is
// accurate to well under a double ulp).
func TestAgainstMathPackage(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f32 := fp.Float32
	for _, f := range Funcs {
		for i := 0; i < 300; i++ {
			var x float64
			if f.IsLog() {
				x = float64(float32(math.Ldexp(1+rng.Float64(), rng.Intn(60)-30)))
			} else {
				x = float64(float32((rng.Float64()*2 - 1) * 30))
			}
			got := Correct(f, x, f32, fp.RNE)
			want := float64(float32(f.MathRef(x)))
			if math.IsInf(want, 0) || math.IsInf(got, 0) {
				if got != want {
					t.Fatalf("%v(%g): got %g, math %g", f, x, got, want)
				}
				continue
			}
			diff := math.Abs(got - want)
			ulp := math.Abs(f32.NextUp(math.Abs(want)) - math.Abs(want))
			if diff > 2*ulp {
				t.Fatalf("%v(%g): got %.10g, math %.10g (diff %g, ulp %g)", f, x, got, want, diff, ulp)
			}
		}
	}
}

// TestModeOrdering: directed modes bracket the nearest modes.
func TestModeOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	f16 := fp.Float16
	for _, f := range Funcs {
		for i := 0; i < 100; i++ {
			var x float64
			if f.IsLog() {
				x = float64(float32(math.Ldexp(1+rng.Float64(), rng.Intn(10)-5)))
			} else {
				x = float64(float32((rng.Float64()*2 - 1) * 8))
			}
			dn := Correct(f, x, f16, fp.RTN)
			up := Correct(f, x, f16, fp.RTP)
			if dn > up {
				t.Fatalf("%v(%g): RTN %g > RTP %g", f, x, dn, up)
			}
			for _, m := range []fp.Mode{fp.RNE, fp.RNA, fp.RTZ, fp.RTO} {
				v := Correct(f, x, f16, m)
				if v < dn || v > up {
					t.Fatalf("%v(%g) mode %v = %g outside [%g, %g]", f, x, m, v, dn, up)
				}
			}
		}
	}
}

// TestRoundToOddConsistency: the oracle satisfies the RLibm-ALL theorem with
// itself — rounding the FP34/RTO oracle result down to a small format agrees
// with asking the oracle for that format directly.
func TestRoundToOddConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, f := range Funcs {
		for i := 0; i < 120; i++ {
			var x float64
			if f.IsLog() {
				x = float64(float32(math.Ldexp(1+rng.Float64(), rng.Intn(40)-20)))
			} else {
				x = float64(float32((rng.Float64()*2 - 1) * 20))
			}
			ro := CorrectRO34(f, x)
			k := 10 + rng.Intn(23)
			target := fp.Format{Bits: k, ExpBits: 8}
			m := fp.StandardModes[rng.Intn(len(fp.StandardModes))]
			direct := Correct(f, x, target, m)
			via := target.Round(ro, m)
			if !sameFloat(direct, via) {
				t.Fatalf("%v(%g) k=%d mode %v: direct %g, via RO34 %g", f, x, k, m, direct, via)
			}
		}
	}
}

func TestSymbolicOverflowUnderflow(t *testing.T) {
	f32 := fp.Float32
	if got := Correct(Exp, 1e30, f32, fp.RNE); !math.IsInf(got, 1) {
		t.Errorf("exp(1e30) RNE = %g, want +Inf", got)
	}
	if got := Correct(Exp, 1e30, f32, fp.RTZ); got != f32.MaxFinite() {
		t.Errorf("exp(1e30) RTZ = %g, want max finite", got)
	}
	if got := Correct(Exp2, -1e30, f32, fp.RNE); got != 0 {
		t.Errorf("exp2(-1e30) RNE = %g, want 0", got)
	}
	if got := Correct(Exp10, -1e30, f32, fp.RTP); got != f32.MinSubnormal() {
		t.Errorf("exp10(-1e30) RTP = %g, want min subnormal", got)
	}
	if got := Correct(Exp, -1e30, f32, fp.RTO); got != f32.MinSubnormal() {
		t.Errorf("exp(-1e30) RTO = %g, want min subnormal", got)
	}
}

// TestEvalBigConvergence: doubling the precision changes the result by less
// than the claimed error bound.
func TestEvalBigConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for _, f := range Funcs {
		for i := 0; i < 60; i++ {
			var x float64
			if f.IsLog() {
				x = math.Ldexp(1+rng.Float64(), rng.Intn(120)-60)
			} else {
				x = (rng.Float64()*2 - 1) * 80
			}
			lo := f.EvalBig(x, 96)
			hi := f.EvalBig(x, 256)
			// |lo - hi| <= 2^-90 * |hi|
			diff := new(big.Float).SetPrec(300).Sub(lo, hi)
			if diff.Sign() == 0 {
				continue
			}
			bound := new(big.Float).SetPrec(300).Abs(hi)
			bound.SetMantExp(bound, -90)
			if diff.Abs(diff).Cmp(bound) > 0 {
				t.Fatalf("%v(%g): precision-96 and precision-256 disagree by %s", f, x, diff.Text('e', 5))
			}
		}
	}
}

// TestLogNearOne: heavy cancellation territory for naive implementations.
func TestLogNearOne(t *testing.T) {
	f32 := fp.Float32
	for _, d := range []float64{1e-7, -1e-7, 1e-3, -1e-3, 0.4, -0.4} {
		x := float64(float32(1 + d))
		got := Correct(Log, x, f32, fp.RNE)
		want := float64(float32(math.Log(x)))
		if math.Abs(got-want) > 2*math.Abs(want)*1.2e-7+1e-12 {
			t.Errorf("log(%g) = %g, math says %g", x, got, want)
		}
	}
}

// TestExp10PowersAgainstExp2: 10^x == 2^(x*log2 10) — cross-check the two
// independent reductions at high precision.
func TestExp10CrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for i := 0; i < 40; i++ {
		x := (rng.Float64()*2 - 1) * 30
		a := Exp10.EvalBig(x, 200)
		// 2^(x*log2(10)) via explicit big computation.
		_, _, log210 := consts(400)
		t2 := new(big.Float).SetPrec(400).SetFloat64(x)
		t2.Mul(t2, log210)
		b := exp2BigFromBig(t2, 200)
		diff := new(big.Float).SetPrec(256).Sub(a, b)
		if diff.Sign() == 0 {
			continue
		}
		bound := new(big.Float).SetPrec(256).Abs(a)
		bound.SetMantExp(bound, -150)
		if diff.Abs(diff).Cmp(bound) > 0 {
			t.Fatalf("exp10(%g) cross-check failed: diff %s", x, diff.Text('e', 5))
		}
	}
}

// exp2BigFromBig evaluates 2^t for a big argument t (test helper).
func exp2BigFromBig(t *big.Float, prec uint) *big.Float {
	wp := prec + 64
	ln2, _, _ := consts(wp)
	tf, _ := t.Float64()
	n := int(math.RoundToEven(tf))
	f := new(big.Float).SetPrec(wp).Sub(t, new(big.Float).SetPrec(wp).SetInt64(int64(n)))
	r := new(big.Float).SetPrec(wp).Mul(f, ln2)
	y := expCore(r, wp)
	y.SetMantExp(y, n)
	return y
}

func TestCorrectPanicsOutsideDomain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for log(-1)")
		}
	}()
	Correct(Log, -1, fp.Float32, fp.RNE)
}

package oracle

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"rlibm/internal/fp"
)

// exportTo opens dir, exports its full entry set to path, and closes.
func exportTo(t *testing.T, dir, path string) int {
	t.Helper()
	st, err := OpenStore(dir, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	n, err := st.Export(path)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestExportImportRoundTrip: entries exported from one store come back, bit
// for bit, from an Import into a fresh store in another directory — both
// live in that store's session and from its sealed segments on reopen.
func TestExportImportRoundTrip(t *testing.T) {
	src, dst := t.TempDir(), t.TempDir()
	xs := []float64{0.5, 1.25, -0.75, 3.5, 0.1}
	want := fillStore(t, src, Exp, xs)
	art := filepath.Join(t.TempDir(), "shard.seg")
	if n := exportTo(t, src, art); n != len(xs) {
		t.Fatalf("exported %d records, want %d", n, len(xs))
	}

	st, err := OpenStore(dst, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Import(art)
	if err != nil {
		t.Fatal(err)
	}
	if res.Added != len(xs) || res.Skipped != 0 || res.Quarantined {
		t.Fatalf("import = %+v, want %d added", res, len(xs))
	}
	if st.Stats().ImportedEntries != int64(len(xs)) {
		t.Fatalf("ImportedEntries = %d, want %d", st.Stats().ImportedEntries, len(xs))
	}
	c := NewCache(0)
	c.AttachStore(st)
	for _, x := range xs {
		y, ok := c.Lookup(Exp, x, fp.FP34, fp.RTO)
		if !ok {
			t.Fatalf("Lookup(exp, %g) missed after import", x)
		}
		if math.Float64bits(y) != math.Float64bits(want[x]) {
			t.Errorf("exp(%g): imported %g, want %g", x, y, want[x])
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dst, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Stats().LoadedEntries; got != len(xs) {
		t.Fatalf("reloaded %d entries after import, want %d", got, len(xs))
	}
}

// TestExportDeterministic: the same entry set exports byte-for-byte
// identically (the artifact is content-addressable across machines).
func TestExportDeterministic(t *testing.T) {
	dir := t.TempDir()
	fillStore(t, dir, Log2, []float64{0.5, 2, 3, 7.25})
	a := filepath.Join(t.TempDir(), "a.seg")
	b := filepath.Join(t.TempDir(), "b.seg")
	exportTo(t, dir, a)
	exportTo(t, dir, b)
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(da) != string(db) {
		t.Fatal("two exports of the same entry set differ")
	}
}

// TestMergeOverlappingIdempotent: merging two overlapping shard exports
// yields the union; merging them again adopts nothing and writes nothing.
func TestMergeOverlappingIdempotent(t *testing.T) {
	srcA, srcB := t.TempDir(), t.TempDir()
	fillStore(t, srcA, Exp2, []float64{0.5, 1.5, 2.5})
	fillStore(t, srcB, Exp2, []float64{1.5, 2.5, 3.5, 4.5}) // overlaps A on two inputs

	shards := t.TempDir()
	exportTo(t, srcA, filepath.Join(shards, "a.seg"))
	exportTo(t, srcB, filepath.Join(shards, "b.seg"))

	dst := t.TempDir()
	st, err := OpenStore(dst, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Merge(shards)
	if err != nil {
		t.Fatal(err)
	}
	if res.Files != 2 || res.Added != 5 || res.Skipped != 2 || res.Quarantined != 0 {
		t.Fatalf("first merge = %+v, want 2 files, 5 added, 2 skipped", res)
	}
	res2, err := st.Merge(shards)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Added != 0 || res2.Skipped != 7 {
		t.Fatalf("second merge = %+v, want 0 added, all 7 records skipped", res2)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The union persisted exactly once: 5 records on disk, and a third
	// session's re-merge still adopts nothing.
	st2, err := OpenStore(dst, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Stats().LoadedEntries; got != 5 {
		t.Fatalf("reloaded %d entries, want 5", got)
	}
	res3, err := st2.Merge(shards)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Added != 0 || res3.Skipped != 7 {
		t.Fatalf("post-reopen merge = %+v, want 0 added, all 7 records skipped", res3)
	}
}

// TestImportCorruptQuarantines: a corrupt artifact is copied aside as
// *.quarantined, adopts nothing, fails nothing, and leaves the source file
// untouched. The store keeps working afterwards.
func TestImportCorruptQuarantines(t *testing.T) {
	src := t.TempDir()
	fillStore(t, src, Log, []float64{0.5, 2, 8})
	art := filepath.Join(t.TempDir(), "shard.seg")
	exportTo(t, src, art)
	data, err := os.ReadFile(art)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40 // flip a payload bit: CRC mismatch
	if err := os.WriteFile(art, data, 0o644); err != nil {
		t.Fatal(err)
	}

	dst := t.TempDir()
	st, err := OpenStore(dst, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Import(art)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Quarantined || res.Added != 0 || res.Cause == "" {
		t.Fatalf("import of corrupt artifact = %+v, want quarantined with cause", res)
	}
	if st.Stats().Quarantined != 1 {
		t.Fatalf("Quarantined stat = %d, want 1", st.Stats().Quarantined)
	}
	qs, err := filepath.Glob(filepath.Join(dst, "*"+quarantineSuffix))
	if err != nil || len(qs) != 1 {
		t.Fatalf("quarantined copies in store dir: %v (err %v), want exactly 1", qs, err)
	}
	if _, err := os.Stat(art); err != nil {
		t.Fatalf("source artifact touched by quarantine: %v", err)
	}
	// The store still accepts work and seals cleanly.
	c := NewCache(0)
	c.AttachStore(st)
	c.Correct(Log, 3, fp.FP34, fp.RTO)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestImportReadOnlyRejected: a read-only store refuses imports outright.
func TestImportReadOnlyRejected(t *testing.T) {
	src := t.TempDir()
	fillStore(t, src, Exp, []float64{0.5})
	art := filepath.Join(t.TempDir(), "shard.seg")
	exportTo(t, src, art)

	st, err := OpenStore(t.TempDir(), StoreOptions{ReadOnly: true, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Import(art); err == nil {
		t.Fatal("import into read-only store succeeded, want error")
	}
}

// TestExportIncludesFreshAppends: an export taken mid-session carries the
// results computed in that session, not just what was loaded at open.
func TestExportIncludesFreshAppends(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(0)
	c.AttachStore(st)
	want := c.Correct(Exp, 0.625, fp.FP34, fp.RTO)
	art := filepath.Join(t.TempDir(), "mid.seg")
	if n, err := st.Export(art); err != nil || n != 1 {
		t.Fatalf("mid-session export = %d, %v; want 1 record", n, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(t.TempDir(), StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if res, err := st2.Import(art); err != nil || res.Added != 1 {
		t.Fatalf("import = %+v, %v; want 1 added", res, err)
	}
	c2 := NewCache(0)
	c2.AttachStore(st2)
	y, ok := c2.Lookup(Exp, 0.625, fp.FP34, fp.RTO)
	if !ok || math.Float64bits(y) != math.Float64bits(want) {
		t.Fatalf("Lookup after import = %g, %v; want %g", y, ok, want)
	}
}

package oracle

import (
	"flag"
	"fmt"
)

// CacheFlags bundles the persistent-cache flags shared by every rlibm CLI:
// where the cache lives (-cache-dir), whether this run may grow it
// (-cache-readonly), and whether to wipe it first (-cache-clear).
type CacheFlags struct {
	Dir      string
	ReadOnly bool
	Clear    bool
}

// RegisterCacheFlags installs the shared cache flags on fs.
func RegisterCacheFlags(fs *flag.FlagSet) *CacheFlags {
	c := &CacheFlags{}
	fs.StringVar(&c.Dir, "cache-dir", "", "persist oracle results in this directory across runs (empty = no persistent cache)")
	fs.BoolVar(&c.ReadOnly, "cache-readonly", false, "serve the persistent cache without writing this run's results back")
	fs.BoolVar(&c.Clear, "cache-clear", false, "delete the persistent cache's segments before the run")
	return c
}

// Open resolves the flags into a store: nil (no persistent cache) when no
// directory was given, after clearing it when -cache-clear asked for that.
// The caller owns the returned store and must Close it to seal this run's
// segment.
func (c *CacheFlags) Open() (*Store, error) {
	if c.Dir == "" {
		if c.Clear || c.ReadOnly {
			return nil, fmt.Errorf("oracle: -cache-clear/-cache-readonly need -cache-dir")
		}
		return nil, nil
	}
	if c.Clear {
		if err := ClearCacheDir(c.Dir); err != nil {
			return nil, fmt.Errorf("oracle: -cache-clear: %w", err)
		}
	}
	return OpenStore(c.Dir, StoreOptions{ReadOnly: c.ReadOnly})
}

package oracle

import (
	"math"
	"math/rand"
	"testing"

	"rlibm/internal/fp"
)

func TestPiConstant(t *testing.T) {
	pi := Pi(120)
	got, _ := pi.Float64()
	if got != math.Pi {
		t.Errorf("Pi(120) rounds to %.17g, math.Pi is %.17g", got, math.Pi)
	}
}

func TestTrigExactCases(t *testing.T) {
	f32 := fp.Float32
	cases := []struct {
		fn   Func
		x    float64
		want float64
	}{
		{Sinpi, 0, 0}, {Sinpi, 1, 0}, {Sinpi, -3, 0}, {Sinpi, 1e20, 0},
		{Sinpi, 0.5, 1}, {Sinpi, 2.5, 1}, {Sinpi, 1.5, -1}, {Sinpi, -0.5, -1},
		{Cospi, 0, 1}, {Cospi, 2, 1}, {Cospi, 1, -1}, {Cospi, -3, -1},
		{Cospi, 0.5, 0}, {Cospi, 7.5, 0},
		{Cospi, math.Ldexp(1, 53), 1},      // huge even integer
		{Cospi, math.Ldexp(1, 52) + 1, -1}, // huge odd integer
		{Sinpi, math.Ldexp(1, 60), 0},      //
	}
	for _, tc := range cases {
		for _, m := range fp.AllModes {
			if got := Correct(tc.fn, tc.x, f32, m); got != tc.want {
				t.Errorf("%v(%g) mode %v = %g, want %g", tc.fn, tc.x, m, got, tc.want)
			}
		}
	}
}

// TestTrigAgainstMath: within a couple of float32 ulps of the math package.
func TestTrigAgainstMath(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	f32 := fp.Float32
	for _, fn := range TrigFuncs {
		for i := 0; i < 400; i++ {
			x := float64(float32((rng.Float64()*2 - 1) * 4))
			if _, exact := ExactValue(fn, x); exact {
				continue
			}
			got := Correct(fn, x, f32, fp.RNE)
			want := float64(float32(fn.MathRef(x)))
			diff := math.Abs(got - want)
			ulp := math.Abs(f32.NextUp(math.Abs(want)) - math.Abs(want))
			if diff > 2*ulp+1e-30 {
				t.Fatalf("%v(%g) = %.10g, math %.10g", fn, x, got, want)
			}
		}
	}
}

// TestTrigSymmetries: sin(pi*(-x)) = -sin(pi*x); cos(pi*(-x)) = cos(pi*x);
// sin(pi*(x+1)) = -sin(pi*x) — checked through the correctly rounded oracle
// at a symmetric rounding mode.
func TestTrigSymmetries(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	f := fp.Format{Bits: 20, ExpBits: 8}
	for i := 0; i < 200; i++ {
		x := float64(float32(rng.Float64() * 2))
		s := Correct(Sinpi, x, f, fp.RNE)
		if got := Correct(Sinpi, -x, f, fp.RNE); got != -s {
			t.Fatalf("sinpi(-%g) = %g, want %g", x, got, -s)
		}
		if got := Correct(Sinpi, x+1, f, fp.RNE); got != -s {
			t.Fatalf("sinpi(%g+1) = %g, want %g", x, got, -s)
		}
		c := Correct(Cospi, x, f, fp.RNE)
		if got := Correct(Cospi, -x, f, fp.RNE); got != c {
			t.Fatalf("cospi(-%g) = %g, want %g", x, got, c)
		}
	}
}

// TestTrigPythagoras: sin^2 + cos^2 = 1 to high precision via EvalBig.
func TestTrigPythagoras(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for i := 0; i < 60; i++ {
		x := rng.Float64()*8 - 4
		s := Sinpi.EvalBig(x, 160)
		c := Cospi.EvalBig(x, 160)
		s.Mul(s, s)
		c.Mul(c, c)
		s.Add(s, c)
		diff, _ := s.Float64()
		if math.Abs(diff-1) > 1e-40 {
			t.Fatalf("sin^2+cos^2 at %g = %.20g", x, diff)
		}
	}
}

func TestTrigRangeValues(t *testing.T) {
	// |sin|, |cos| <= 1 for many inputs and modes.
	rng := rand.New(rand.NewSource(94))
	f := fp.Bfloat16
	for i := 0; i < 300; i++ {
		x := float64(float32((rng.Float64()*2 - 1) * 100))
		for _, m := range fp.AllModes {
			for _, fn := range TrigFuncs {
				v := Correct(fn, x, f, m)
				if math.Abs(v) > 1 {
					t.Fatalf("%v(%g) mode %v = %g out of range", fn, x, m, v)
				}
			}
		}
	}
}

// TestTrigTinyArguments is the regression test for the reduction of tiny
// and tiny-negative inputs: adding the period to a tiny negative remainder
// used to round to exactly 2 and silently lose the input in both the oracle
// and the range reduction.
func TestTrigTinyArguments(t *testing.T) {
	f := fp.Format{Bits: 20, ExpBits: 8}
	for _, x := range []float64{2.2958874039497803e-41, -2.2958874039497803e-41, 1e-30, -1e-30} {
		// sinpi(x) ~ pi*x: correctly rounded must be nonzero with x's sign
		// (results this small are subnormal in the 20-bit format, so the
		// comparison tolerance is the subnormal granularity).
		s := Correct(Sinpi, x, f, fp.RNE)
		if s == 0 || (s > 0) != (x > 0) {
			t.Errorf("sinpi(%g) = %g, want ~pi*x", x, s)
		}
		ref := math.Pi * x
		if math.Abs(s-ref) > math.Abs(ref)*0.01+f.MinSubnormal() {
			t.Errorf("sinpi(%g) = %g, expected ~%g", x, s, ref)
		}
		// cospi(x) is just below 1: RTZ must give NextDown(1), not 1.
		c := Correct(Cospi, x, f, fp.RTZ)
		if c != f.NextDown(1) {
			t.Errorf("cospi(%g) RTZ = %g, want %g", x, c, f.NextDown(1))
		}
		if got := Correct(Cospi, x, f, fp.RTP); got != 1 {
			t.Errorf("cospi(%g) RTP = %g, want 1", x, got)
		}
	}
	// Deep underflow: pi*x is far below the smallest subnormal, so RNE
	// flushes to zero but RTP must return the smallest subnormal.
	if got := Correct(Sinpi, 5e-150, f, fp.RNE); got != 0 {
		t.Errorf("sinpi(5e-150) RNE = %g, want 0", got)
	}
	if got := Correct(Sinpi, 5e-150, f, fp.RTP); got != f.MinSubnormal() {
		t.Errorf("sinpi(5e-150) RTP = %g, want min subnormal", got)
	}
	// Near even and odd integers from both sides.
	for _, base := range []float64{2, -2, 6} {
		d := 1.52587890625e-05 // 2^-16
		if got := Correct(Cospi, base+d, f, fp.RTP); got != 1 {
			t.Errorf("cospi(%g) RTP = %g, want 1", base+d, got)
		}
		s := Correct(Sinpi, base+d, f, fp.RNE)
		if s == 0 || math.Abs(s-math.Pi*d) > math.Pi*d*0.01 {
			t.Errorf("sinpi(%g) = %g, want ~%g", base+d, s, math.Pi*d)
		}
	}
}

package core

import (
	"errors"
	"time"

	"rlibm/internal/lp"
	"rlibm/internal/obs"
	"rlibm/internal/oracle"
	"rlibm/internal/poly"
)

// schemeMetrics holds one scheme run's instrument handles. The pipeline
// increments these — not Stats fields — during the generate–check–constrain
// loop; Stats is populated from the handles when the run finishes, making it
// a thin view over the registry. Handles are pre-resolved because the name
// lookup takes the registry mutex and the loop is hot.
//
// Names are prefixed "core/<fn>/<scheme>/" so the concurrent scheme loops of
// GenerateAll never share an instrument.
type schemeMetrics struct {
	iterations      *obs.Counter
	lpSolves        *obs.Counter
	constrainEvents *obs.Counter
	demotedSources  *obs.Counter

	lpPivots       *obs.Counter // total simplex pivots, all phases
	lpPivotsPhase1 *obs.Counter
	lpPivotsPhase2 *obs.Counter
	lpPivotsDual   *obs.Counter   // dual-simplex pivots of warm resolves
	lpPivotsCanon  *obs.Counter   // lex-canonicalization pivots
	lpWarm         *obs.Counter   // resolves served from the previous basis
	lpCold         *obs.Counter   // from-scratch two-phase solves
	lpPivotsSaved  *obs.Counter   // estimated pivots avoided by warm starts
	lpPerSolve     *obs.Histogram // pivots per LP solve
	lpTime         *obs.Histogram // wall-clock per LP solve (ns)
	lpTimeWarm     *obs.Histogram // wall-clock per warm resolve (ns)
	lpTimeCold     *obs.Histogram // wall-clock per cold solve (ns)
	lpRowsMax      *obs.Gauge     // largest tableau seen
	lpColsMax      *obs.Gauge
	checkTime      *obs.Histogram // wall-clock per full-constraint check (ns)
	solveTime      *obs.Gauge     // this scheme's whole solve loop (ns)

	reg    *obs.Registry
	prefix string

	// lastColdPivots remembers the most recent cold solve's two-phase pivot
	// count; a warm resolve's savings are estimated against it (the cold
	// solve it replaced would have been at least as large — the system has
	// only grown since). Written and read from the scheme's single solve
	// goroutine only.
	lastColdPivots int64

	// Registry values at the start of this run. Stats is a per-run view, but
	// a caller-supplied registry (Config.Metrics) outlives runs and its
	// counters are monotonic, so fillStats reports deltas from these.
	baseIter, baseLP, baseConstrain, basePivots, baseWarm, baseCold int64
}

func newSchemeMetrics(reg *obs.Registry, fn oracle.Func, scheme poly.Scheme) *schemeMetrics {
	p := "core/" + fn.String() + "/" + scheme.String() + "/"
	return &schemeMetrics{
		iterations:      reg.Counter(p + "iterations"),
		lpSolves:        reg.Counter(p + "lp_solves"),
		constrainEvents: reg.Counter(p + "constrain_events"),
		demotedSources:  reg.Counter(p + "demoted_sources"),
		lpPivots:        reg.Counter(p + "lp_pivots"),
		lpPivotsPhase1:  reg.Counter(p + "lp_pivots_phase1"),
		lpPivotsPhase2:  reg.Counter(p + "lp_pivots_phase2"),
		lpPivotsDual:    reg.Counter(p + "lp_pivots_dual"),
		lpPivotsCanon:   reg.Counter(p + "lp_pivots_canon"),
		lpWarm:          reg.Counter(p + "lp_warm_resolves"),
		lpCold:          reg.Counter(p + "lp_cold_solves"),
		lpPivotsSaved:   reg.Counter(p + "lp_pivots_saved"),
		lpPerSolve:      reg.Histogram(p + "lp_pivots_per_solve"),
		lpTime:          reg.Histogram(p + "lp_solve_time_ns"),
		lpTimeWarm:      reg.Histogram(p + "lp_warm_resolve_time_ns"),
		lpTimeCold:      reg.Histogram(p + "lp_cold_solve_time_ns"),
		lpRowsMax:       reg.Gauge(p + "lp_rows_max"),
		lpColsMax:       reg.Gauge(p + "lp_cols_max"),
		checkTime:       reg.Histogram(p + "check_time_ns"),
		solveTime:       reg.Gauge(p + "solve_time_ns"),
		reg:             reg,
		prefix:          p,
	}
}

// snapshotBase records the current counter values; fillStats later reports
// deltas from here so repeated runs into one shared registry never leak
// across Stats views.
func (m *schemeMetrics) snapshotBase() *schemeMetrics {
	m.baseIter = m.iterations.Value()
	m.baseLP = m.lpSolves.Value()
	m.baseConstrain = m.constrainEvents.Value()
	m.basePivots = m.lpPivots.Value()
	m.baseWarm = m.lpWarm.Value()
	m.baseCold = m.lpCold.Value()
	return m
}

// isPivotLimit reports whether an LP error is the degenerate-cycling guard
// (the one solve failure that aborts a degree attempt instead of demoting).
func isPivotLimit(err error) bool {
	var pl *lp.PivotLimitError
	return errors.As(err, &pl)
}

// isCanceled reports whether an LP error is a context cancellation, which
// aborts the whole scheme rather than demoting or escalating.
func isCanceled(err error) bool {
	var ce *lp.CanceledError
	return errors.As(err, &ce)
}

// observeLP records one LP solve outcome: stats always, split by warm vs
// cold resolve, the infeasibility cause by name when the solve failed.
func (m *schemeMetrics) observeLP(st lp.Stats, dur time.Duration, err error) {
	m.lpPivots.Add(int64(st.Pivots()))
	m.lpPivotsPhase1.Add(int64(st.Phase1Pivots))
	m.lpPivotsPhase2.Add(int64(st.Phase2Pivots))
	m.lpPivotsDual.Add(int64(st.DualPivots))
	m.lpPivotsCanon.Add(int64(st.CanonPivots))
	m.lpPerSolve.Observe(int64(st.Pivots()))
	m.lpTime.ObserveDuration(dur)
	m.lpRowsMax.SetMax(int64(st.Rows))
	m.lpColsMax.SetMax(int64(st.Cols))
	if st.Warm {
		m.lpWarm.Inc()
		m.lpTimeWarm.ObserveDuration(dur)
		// The avoided cold solve would have pivoted at least as much as the
		// previous cold solve of this (only grown since) system; count the
		// difference to the dual-simplex work actually done as saved.
		if saved := m.lastColdPivots - int64(st.DualPivots); saved > 0 {
			m.lpPivotsSaved.Add(saved)
		}
	} else {
		m.lpCold.Inc()
		m.lpTimeCold.ObserveDuration(dur)
		m.lastColdPivots = int64(st.Phase1Pivots + st.Phase2Pivots)
	}
	if cause := lp.InfeasibilityCause(err); cause != "" {
		m.reg.Counter(m.prefix + "lp_" + cause).Inc()
	}
}

// fillStats populates the Stats view from the registry handles (deltas from
// the snapshotBase values).
func (m *schemeMetrics) fillStats(s *Stats) {
	s.Iterations = int(m.iterations.Value() - m.baseIter)
	s.LPSolves = int(m.lpSolves.Value() - m.baseLP)
	s.ConstrainEvents = int(m.constrainEvents.Value() - m.baseConstrain)
	s.LPPivots = m.lpPivots.Value() - m.basePivots
	s.WarmResolves = int(m.lpWarm.Value() - m.baseWarm)
	s.ColdSolves = int(m.lpCold.Value() - m.baseCold)
}

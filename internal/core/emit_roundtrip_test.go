package core

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"rlibm/internal/poly"
)

// TestHexFRoundTrip: every emitted coefficient literal must parse back to
// the identical bit pattern — the emitted data file IS the library, so a
// lossy literal would silently change results.
func TestHexFRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := []float64{0, math.Copysign(0, -1), 1, -1, 0.1, math.SmallestNonzeroFloat64,
		-math.SmallestNonzeroFloat64, math.MaxFloat64, -math.MaxFloat64, math.Pi}
	for i := 0; i < 2000; i++ {
		vals = append(vals, math.Float64frombits(rng.Uint64()))
	}
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue // rendered as math.NaN()/math.Inf(), not literals
		}
		s := hexF(v)
		back, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("hexF(%g) = %q does not parse: %v", v, s, err)
		}
		if math.Float64bits(back) != math.Float64bits(v) {
			t.Fatalf("hexF(%g) = %q parses to %g (bits %x vs %x)",
				v, s, back, math.Float64bits(back), math.Float64bits(v))
		}
	}
}

// TestEmitLibmDataReparses: the emitted Go source must be syntactically
// valid (go/parser accepts it) and structurally complete — one funcData var
// per function — and every float literal in it must be an exact hex literal.
func TestEmitLibmDataReparses(t *testing.T) {
	results := allTinyResults(t)
	var sb strings.Builder
	if err := EmitLibmData(&sb, results); err != nil {
		t.Fatal(err)
	}
	src := sb.String()

	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "zz_generated_data.go", src, parser.AllErrors)
	if err != nil {
		t.Fatalf("emitted source does not parse: %v", err)
	}
	if file.Name.Name != "libm" {
		t.Errorf("emitted package %q, want libm", file.Name.Name)
	}

	// One top-level var per function, named <fn>Data.
	vars := map[string]bool{}
	floatLits := 0
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.ValueSpec:
			for _, name := range d.Names {
				vars[name.Name] = true
			}
		case *ast.BasicLit:
			if d.Kind == token.FLOAT {
				floatLits++
				if !strings.HasPrefix(strings.TrimPrefix(d.Value, "-"), "0x") {
					t.Errorf("non-hex float literal %q in emitted source", d.Value)
				}
			}
		}
		return true
	})
	for _, want := range []string{"expData", "exp2Data", "exp10Data", "logData", "log2Data", "log10Data"} {
		if !vars[want] {
			t.Errorf("emitted source lacks var %s", want)
		}
	}
	// 24 implementations with at least one piece each: the literal count
	// must at least cover every coefficient of every result.
	wantCoeffs := 0
	for _, r := range results {
		for _, p := range r.Pieces {
			wantCoeffs += len(p.Coeffs)
		}
	}
	if floatLits < wantCoeffs {
		t.Errorf("%d float literals in emitted source, want >= %d coefficients", floatLits, wantCoeffs)
	}
}

// TestPrintTable1MatchesResults: every Table-1 cell must agree with the
// result it summarizes — piece count, per-piece degrees, special count — in
// the paper's column order.
func TestPrintTable1MatchesResults(t *testing.T) {
	results := allTinyResults(t)
	byKey := map[string]*Result{}
	for _, r := range results {
		byKey[r.Fn.String()+"/"+r.Scheme.String()] = r
	}

	var sb strings.Builder
	PrintTable1(&sb, results)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")

	rows := map[string][]string{}
	for _, line := range lines[3:] { // skip the two header lines + rule
		cells := strings.Split(line, "|")
		if len(cells) != 5 {
			t.Fatalf("table row has %d cells: %q", len(cells), line)
		}
		rows[strings.TrimSpace(cells[0])] = cells[1:]
	}
	for key, r := range byKey {
		fn := r.Fn.String()
		cells, ok := rows[fn]
		if !ok {
			t.Fatalf("no table row for %s", fn)
		}
		slot, ok := schemeSlot(r.Scheme)
		if !ok {
			t.Fatalf("no slot for %v", r.Scheme)
		}
		degs := make([]string, len(r.Pieces))
		for i, p := range r.Pieces {
			degs[i] = fmt.Sprintf("%d", p.Coeffs.Trim().Degree())
		}
		want := fmt.Sprintf("%-2d %-8s %d", len(r.Pieces), strings.Join(degs, ","), len(r.Specials))
		if got := strings.TrimSpace(cells[slot]); got != strings.TrimSpace(want) {
			t.Errorf("%s: table cell %q, want %q", key, got, want)
		}
	}
	// The scheme column order must match poly.PaperSchemes.
	if poly.PaperSchemes[0] != poly.Horner {
		t.Fatal("PaperSchemes order changed; table columns no longer line up")
	}
}

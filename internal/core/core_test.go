package core

import (
	"context"
	"math"
	"sort"
	"testing"

	"rlibm/internal/fp"
	"rlibm/internal/interval"
	"rlibm/internal/oracle"
	"rlibm/internal/poly"
	"rlibm/internal/rangered"
)

// test18 is the input format used for exhaustive end-to-end tests: small
// enough to enumerate, with the full 8-bit exponent range of binary32.
var test18 = fp.Format{Bits: 18, ExpBits: 8}

// TestGenerateExp2Exhaustive: the flagship end-to-end property — a generated
// 2^x is correctly rounded for every 18-bit input, rounded to 10/14/18-bit
// outputs under all five modes.
func TestGenerateExp2Exhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline test; skipped with -short")
	}
	for _, scheme := range []poly.Scheme{poly.Horner, poly.EstrinFMA} {
		res, err := Generate(context.Background(), Config{Fn: oracle.Exp2, Scheme: scheme, Input: test18, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		t.Log(res.Describe())
		rep := res.Verify(test18, 1, []int{10, 14, 18}, fp.StandardModes)
		if rep.Wrong != 0 {
			t.Fatalf("%v: %d/%d wrong: %s", scheme, rep.Wrong, rep.Checked, rep.FirstWrong)
		}
	}
}

// TestGenerateLogExhaustive: same property for a logarithm (log needs a
// format with enough significand bits to produce nonzero reduced inputs).
func TestGenerateLogExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline test; skipped with -short")
	}
	in := fp.Format{Bits: 20, ExpBits: 8}
	res, err := Generate(context.Background(), Config{Fn: oracle.Log, Scheme: poly.EstrinFMA, Input: in, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.Describe())
	rep := res.Verify(in, 1, []int{10, 16, 20}, fp.StandardModes)
	if rep.Wrong != 0 {
		t.Fatalf("%d/%d wrong: %s", rep.Wrong, rep.Checked, rep.FirstWrong)
	}
}

// TestGenerateAllFunctionsSampled: every function generates and verifies on
// a sampled sweep with the Knuth and Estrin schemes.
func TestGenerateAllFunctionsSampled(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline test; skipped with -short")
	}
	for _, fn := range oracle.Funcs {
		rs, err := GenerateAll(context.Background(), Config{Fn: fn, Seed: 3, Input: test18},
			[]poly.Scheme{poly.Knuth, poly.Estrin})
		if err != nil {
			t.Fatalf("%v: %v", fn, err)
		}
		for _, res := range rs {
			rep := res.Verify(test18, 5, []int{11, 18}, []fp.Mode{fp.RNE, fp.RTP})
			if rep.Wrong != 0 {
				t.Fatalf("%v/%v: %d/%d wrong: %s", fn, res.Scheme, rep.Wrong, rep.Checked, rep.FirstWrong)
			}
		}
	}
}

// TestFindDomainPlateaus: at and beyond the domain cuts the oracle result is
// the plateau constant; just inside it is not.
func TestFindDomainPlateaus(t *testing.T) {
	target := fp.Format{Bits: 20, ExpBits: 8}
	for _, fn := range []oracle.Func{oracle.Exp, oracle.Exp2, oracle.Exp10} {
		d := FindDomain(fn, target)
		if !(d.Lo < 0 && d.Hi > 0 && d.TinyLo < 0 && d.TinyHi > 0) {
			t.Fatalf("%v: implausible domain %+v", fn, d)
		}
		if got := oracle.Correct(fn, d.Hi, target, fp.RTO); got != d.HiVal {
			t.Errorf("%v: at hi cut %g oracle gives %g, want plateau %g", fn, d.Hi, got, d.HiVal)
		}
		if got := oracle.Correct(fn, d.Hi*2, target, fp.RTO); got != d.HiVal {
			t.Errorf("%v: beyond hi cut oracle gives %g, want plateau %g", fn, got, d.HiVal)
		}
		if got := oracle.Correct(fn, d.Lo, target, fp.RTO); got != d.LoVal {
			t.Errorf("%v: at lo cut %g oracle gives %g, want plateau %g", fn, d.Lo, got, d.LoVal)
		}
		if got := oracle.Correct(fn, d.TinyHi, target, fp.RTO); got != d.TinyHiVal {
			t.Errorf("%v: at tiny-hi cut oracle gives %g, want %g", fn, got, d.TinyHiVal)
		}
		if got := oracle.Correct(fn, d.TinyLo, target, fp.RTO); got != d.TinyLoVal {
			t.Errorf("%v: at tiny-lo cut oracle gives %g, want %g", fn, got, d.TinyLoVal)
		}
		// Just beyond the plateaus the result must move.
		if got := oracle.Correct(fn, d.TinyHi*4, target, fp.RTO); got == d.TinyHiVal {
			t.Errorf("%v: tiny plateau leaks above its cut", fn)
		}
		if d.PolyPath(d.Hi) || d.PolyPath(d.Lo) || d.PolyPath(d.TinyHi) || d.PolyPath(0) {
			t.Errorf("%v: PolyPath includes plateau points", fn)
		}
		if !d.PolyPath(0.5) || !d.PolyPath(-0.5) {
			t.Errorf("%v: PolyPath excludes ordinary points", fn)
		}
	}
	// Logarithms have the unbounded domain.
	d := FindDomain(oracle.Log, target)
	if !d.PolyPath(1e30) || !d.PolyPath(1e-30) || d.PolyPath(-1) {
		t.Errorf("log domain wrong: %+v", d)
	}
}

// TestResultSpecialValues: IEEE edge semantics of the generated
// implementation.
func TestResultSpecialValues(t *testing.T) {
	res, err := Generate(context.Background(), Config{Fn: oracle.Exp2, Scheme: poly.Horner, Input: fp.Bfloat16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Eval(math.NaN()); !math.IsNaN(got) {
		t.Errorf("exp2(NaN) = %g", got)
	}
	if got := res.Eval(math.Inf(1)); !math.IsInf(got, 1) {
		t.Errorf("exp2(+Inf) = %g", got)
	}
	if got := res.Eval(math.Inf(-1)); got != 0 {
		t.Errorf("exp2(-Inf) = %g", got)
	}
	if got := res.Eval(0); got != 1 {
		t.Errorf("exp2(0) = %g", got)
	}
	if got := res.Eval(10); got != 1024 {
		t.Errorf("exp2(10) = %g", got)
	}

	resLog, err := Generate(context.Background(), Config{Fn: oracle.Log2, Scheme: poly.Horner, Input: fp.Bfloat16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := resLog.Eval(-1); !math.IsNaN(got) {
		t.Errorf("log2(-1) = %g", got)
	}
	if got := resLog.Eval(0); !math.IsInf(got, -1) {
		t.Errorf("log2(0) = %g", got)
	}
	if got := resLog.Eval(math.Inf(1)); !math.IsInf(got, 1) {
		t.Errorf("log2(+Inf) = %g", got)
	}
	if got := resLog.Eval(1); got != 0 {
		t.Errorf("log2(1) = %g", got)
	}
	if got := resLog.Eval(8); got != 3 {
		t.Errorf("log2(8) = %g", got)
	}
}

// TestPostProcessAdaptationViolates demonstrates the Section 6.3 failure:
// adapting the coefficients of a finished Horner-validated polynomial as a
// post-process makes some evaluations leave their rounding intervals, while
// the integrated loop (Knuth inside Algorithm 2) keeps all of them inside.
func TestPostProcessAdaptationViolates(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline test; skipped with -short")
	}
	in := fp.Format{Bits: 22, ExpBits: 8}
	cfg := Config{Fn: oracle.Exp10, Scheme: poly.Horner, Input: in, Seed: 2, Stride: 4}
	res, err := Generate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the original (unshrunk) constraint set.
	red := rangered.For(cfg.Fn)
	if err := (&cfg).setDefaults(); err != nil {
		t.Fatal(err)
	}
	specials := map[uint64]float64{}
	work, _, err := collect(&cfg, red, res.Dom, specials)
	if err != nil {
		t.Fatal(err)
	}

	countViolations := func(eval func(float64) float64) int {
		n := 0
		for _, it := range work {
			// Constraints whose source inputs were demoted to the special
			// table are not the polynomial's responsibility.
			demoted := true
			for _, src := range it.Sources {
				if _, ok := res.Specials[src]; !ok {
					demoted = false
					break
				}
			}
			if demoted {
				continue
			}
			if v := eval(it.R); !it.Iv.Contains(v) {
				n++
			}
		}
		return n
	}

	hornerViol := countViolations(func(r float64) float64 { return res.PolyEval(r) })
	if hornerViol != 0 {
		t.Fatalf("the integrated Horner result violates %d of its own constraints", hornerViol)
	}

	// Post-process adaptation of each piece.
	postViol := 0
	for _, p := range res.Pieces {
		adapted, err := poly.NewEvaluator(poly.Knuth, p.Coeffs)
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range work {
			if it.R < p.Lo || it.R > p.Hi {
				continue
			}
			if v := adapted.Eval(it.R); !it.Iv.Contains(v) {
				postViol++
			}
		}
	}
	t.Logf("post-process adaptation violates %d constraints (integrated: 0)", postViol)

	// The integrated Knuth run fixes them.
	resK, err := Generate(context.Background(), Config{Fn: oracle.Exp10, Scheme: poly.Knuth, Input: in, Seed: 2, Stride: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep := resK.Verify(in, 16, []int{12, 22}, []fp.Mode{fp.RNE, fp.RTN})
	if rep.Wrong != 0 {
		t.Fatalf("integrated Knuth wrong: %s", rep.FirstWrong)
	}
}

func TestSplit(t *testing.T) {
	items := make([]*workItem, 10)
	for i := range items {
		items[i] = &workItem{R: float64(i)}
	}
	chunks := split(items, 3)
	if len(chunks) != 3 {
		t.Fatalf("split into %d chunks, want 3", len(chunks))
	}
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	if total != 10 {
		t.Errorf("split lost items: %d", total)
	}
	if got := split(items, 1); len(got) != 1 || len(got[0]) != 10 {
		t.Errorf("split(1) = %d chunks", len(got))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Generate(context.Background(), Config{Fn: oracle.Exp2, Input: fp.Format{Bits: 99, ExpBits: 8}}); err == nil {
		t.Error("expected invalid input format error")
	}
	cfg := Config{Fn: oracle.Exp2, Input: fp.Bfloat16}
	if err := cfg.setDefaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.Target != (fp.Format{Bits: 18, ExpBits: 8}) {
		t.Errorf("default target = %v", cfg.Target)
	}
	if cfg.Degree != defaultDegree[oracle.Exp2] || cfg.Pieces != defaultPieces[oracle.Exp2] {
		t.Error("per-function defaults not applied")
	}
}

// TestVerifyCatchesWrongness: corrupt a piece and Verify must report wrongs.
func TestVerifyCatchesWrongness(t *testing.T) {
	res, err := Generate(context.Background(), Config{Fn: oracle.Exp2, Scheme: poly.Horner, Input: fp.Bfloat16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res.Pieces[0].Coeffs[0] *= 1.001
	ev, err := poly.NewEvaluator(poly.Horner, res.Pieces[0].Coeffs)
	if err != nil {
		t.Fatal(err)
	}
	res.Pieces[0].Eval = ev
	rep := res.Verify(fp.Bfloat16, 3, []int{16}, []fp.Mode{fp.RNE})
	if rep.Wrong == 0 {
		t.Error("Verify missed an intentionally corrupted polynomial")
	}
	if rep.FirstWrong == "" {
		t.Error("FirstWrong not recorded")
	}
}

// TestReducedConstraintsAreSatisfiable: the reduced interval of each input
// contains the value that the oracle's own compensated result would need —
// a coherence check between collect() and the reduction layer.
func TestReducedConstraintsAreSatisfiable(t *testing.T) {
	cfg := Config{Fn: oracle.Log2, Scheme: poly.Horner, Input: fp.Format{Bits: 20, ExpBits: 8}, Seed: 1}
	if err := (&cfg).setDefaults(); err != nil {
		t.Fatal(err)
	}
	red := rangered.For(cfg.Fn)
	dom := FindDomain(cfg.Fn, cfg.Target)
	specials := map[uint64]float64{}
	work, stats, err := collect(&cfg, red, dom, specials)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Constraints == 0 || len(work) == 0 {
		t.Fatal("no constraints collected")
	}
	for _, it := range work {
		if it.Iv.Empty() {
			t.Fatalf("empty merged interval at r=%g", it.R)
		}
		if len(it.Sources) == 0 {
			t.Fatalf("constraint without sources at r=%g", it.R)
		}
	}
	// The sorted order is strictly increasing in reduced input.
	for i := 1; i < len(work); i++ {
		if !(work[i-1].R < work[i].R) {
			t.Fatal("constraints not sorted/deduped by reduced input")
		}
	}
	_ = interval.Interval{}
}

// TestGenerateTrigExhaustive: the trigonometric extension (sinpi/cospi)
// generates correctly rounded piecewise polynomials — the paper's announced
// future work, built on the same Algorithm 2 loop.
func TestGenerateTrigExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline test; skipped with -short")
	}
	in := fp.Format{Bits: 18, ExpBits: 8}
	for _, fn := range []oracle.Func{oracle.Sinpi, oracle.Cospi} {
		res, err := Generate(context.Background(), Config{Fn: fn, Scheme: poly.EstrinFMA, Input: in, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", fn, err)
		}
		t.Log(res.Describe())
		rep := res.Verify(in, 1, []int{10, 14, 18}, fp.StandardModes)
		if rep.Wrong != 0 {
			t.Fatalf("%v: %d/%d wrong: %s", fn, rep.Wrong, rep.Checked, rep.FirstWrong)
		}
		// IEEE edge semantics.
		if got := res.Eval(math.Inf(1)); !math.IsNaN(got) {
			t.Errorf("%v(+Inf) = %g, want NaN", fn, got)
		}
		if fn == oracle.Sinpi {
			if got := res.Eval(0); got != 0 {
				t.Errorf("sinpi(0) = %g", got)
			}
			if got := res.Eval(3); got != 0 {
				t.Errorf("sinpi(3) = %g", got)
			}
			if got := res.Eval(2.5); got != 1 {
				t.Errorf("sinpi(2.5) = %g", got)
			}
		} else {
			if got := res.Eval(0); got != 1 {
				t.Errorf("cospi(0) = %g", got)
			}
			if got := res.Eval(3); got != -1 {
				t.Errorf("cospi(3) = %g", got)
			}
			if got := res.Eval(0.5); got != 0 {
				t.Errorf("cospi(0.5) = %g", got)
			}
		}
	}
}

func TestSplitByValue(t *testing.T) {
	// Log-distributed reduced inputs: count-based splitting would give the
	// last piece most of the value range; value-based splitting must not.
	var items []*workItem
	for i := 0; i < 1000; i++ {
		items = append(items, &workItem{R: math.Ldexp(0.4, -i/40)})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].R < items[j].R })
	chunks := splitByValue(items, 8)
	if len(chunks) < 2 {
		t.Fatalf("splitByValue produced %d chunks", len(chunks))
	}
	total := 0
	span := items[len(items)-1].R - items[0].R
	for _, c := range chunks {
		total += len(c)
		width := c[len(c)-1].R - c[0].R
		if width > span/8*1.5 {
			t.Errorf("chunk spans %g of %g total — not value-balanced", width, span)
		}
	}
	if total != len(items) {
		t.Errorf("splitByValue lost items: %d of %d", total, len(items))
	}
	// Degenerate cases.
	if got := splitByValue(items[:3], 8); len(got) != 1 {
		t.Errorf("tiny input should collapse to one chunk, got %d", len(got))
	}
	same := []*workItem{{R: 1}, {R: 1}, {R: 1}, {R: 1}}
	if got := splitByValue(same, 2); len(got) != 1 {
		t.Errorf("zero-width input should collapse to one chunk, got %d", len(got))
	}
}

func TestExactInputsEnumeration(t *testing.T) {
	dom := FindDomain(oracle.Exp2, fp.Format{Bits: 18, ExpBits: 8})
	xs := exactInputs(oracle.Exp2, fp.Bfloat16, dom)
	if len(xs) == 0 {
		t.Fatal("no exact inputs for exp2")
	}
	for _, x := range xs {
		if x != math.Trunc(x) {
			t.Errorf("non-integer exact input %g for exp2", x)
		}
		if _, ok := oracle.ExactValue(oracle.Exp2, x); !ok {
			t.Errorf("exactInputs returned non-exact %g", x)
		}
	}
	// log2: powers of two only.
	xs = exactInputs(oracle.Log2, fp.Bfloat16, FindDomain(oracle.Log2, fp.Format{Bits: 18, ExpBits: 8}))
	for _, x := range xs {
		if m, _ := math.Frexp(x); m != 0.5 {
			t.Errorf("non-power-of-two exact input %g for log2", x)
		}
	}
	if len(xs) < 100 {
		t.Errorf("suspiciously few log2 exact inputs: %d", len(xs))
	}
}

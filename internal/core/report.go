package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"rlibm/internal/obs"
	"rlibm/internal/oracle"
)

// RunReport is the machine-readable outcome of one CLI run: what was asked
// for, what came out, and every metric the run recorded. The CLIs write it
// with -report; CI parses it to fail a build whose schemes did not all solve.
type RunReport struct {
	// Tool names the producing binary (rlibm-gen, rlibm-check, ...).
	Tool string `json:"tool"`
	// CreatedAt is the wall-clock completion time, RFC 3339.
	CreatedAt string `json:"created_at"`
	// Git is `git describe --always --dirty --tags` at run time ("" outside
	// a repository).
	Git string `json:"git,omitempty"`
	// Config echoes the CLI configuration that produced the run (flag names
	// to rendered values), so a report is self-describing.
	Config map[string]string `json:"config,omitempty"`
	// Results holds one entry per (function, scheme) attempted, in the order
	// they finished being recorded.
	Results []SchemeReport `json:"results"`
	// Cache summarizes the persistent oracle cache when the run used one
	// (-cache-dir): disk state plus the in-memory hit rate. CI prints and
	// gates on this section.
	Cache *CacheReport `json:"cache,omitempty"`
	// Metrics is the merged snapshot of every registry the run recorded into
	// (the run's registry plus the process-default one the oracle uses).
	Metrics obs.Snapshot `json:"metrics"`
}

// SchemeReport summarizes one generation attempt.
type SchemeReport struct {
	Fn     string `json:"fn"`
	Scheme string `json:"scheme"`
	// Solved reports whether a correctly rounded implementation came out.
	Solved bool `json:"solved"`
	// Error is the failure cause when Solved is false.
	Error string `json:"error,omitempty"`

	Pieces   int   `json:"pieces,omitempty"`
	Degrees  []int `json:"degrees,omitempty"`
	Specials int   `json:"specials,omitempty"`

	Inputs          int   `json:"inputs,omitempty"`
	Constraints     int   `json:"constraints,omitempty"`
	LPSolves        int   `json:"lp_solves,omitempty"`
	LPPivots        int64 `json:"lp_pivots,omitempty"`
	LPWarmResolves  int   `json:"lp_warm_resolves,omitempty"`
	LPColdSolves    int   `json:"lp_cold_solves,omitempty"`
	Iterations      int   `json:"iterations,omitempty"`
	ConstrainEvents int   `json:"constrain_events,omitempty"`

	CollectMs float64 `json:"collect_ms,omitempty"`
	SolveMs   float64 `json:"solve_ms,omitempty"`

	OracleHits   int64 `json:"oracle_hits,omitempty"`
	OracleMisses int64 `json:"oracle_misses,omitempty"`
}

// NewRunReport starts a report for the named tool, stamping the git
// revision. CreatedAt is stamped by WriteJSON so it reflects completion.
func NewRunReport(tool string) *RunReport {
	return &RunReport{Tool: tool, Git: obs.GitDescribe(), Config: map[string]string{}}
}

// AddResult records a solved scheme.
func (r *RunReport) AddResult(res *Result) {
	sr := SchemeReport{
		Fn:              res.Fn.String(),
		Scheme:          res.Scheme.String(),
		Solved:          true,
		Pieces:          len(res.Pieces),
		Specials:        len(res.Specials),
		Inputs:          res.Stats.Inputs,
		Constraints:     res.Stats.Constraints,
		LPSolves:        res.Stats.LPSolves,
		LPPivots:        res.Stats.LPPivots,
		LPWarmResolves:  res.Stats.WarmResolves,
		LPColdSolves:    res.Stats.ColdSolves,
		Iterations:      res.Stats.Iterations,
		ConstrainEvents: res.Stats.ConstrainEvents,
		CollectMs:       float64(res.Stats.CollectTime) / float64(time.Millisecond),
		SolveMs:         float64(res.Stats.SolveTime) / float64(time.Millisecond),
		OracleHits:      res.Stats.OracleHits,
		OracleMisses:    res.Stats.OracleMisses,
	}
	for _, p := range res.Pieces {
		sr.Degrees = append(sr.Degrees, p.Coeffs.Trim().Degree())
	}
	r.Results = append(r.Results, sr)
}

// AddFailure records a (function, scheme) attempt that produced no
// implementation.
func (r *RunReport) AddFailure(fn, scheme string, err error) {
	sr := SchemeReport{Fn: fn, Scheme: scheme, Solved: false}
	if err != nil {
		sr.Error = err.Error()
	}
	r.Results = append(r.Results, sr)
}

// AddCheck records one correctness-sweep outcome (rlibm-check): Solved
// means zero wrong results over the checked (input, width, mode) triples.
func (r *RunReport) AddCheck(fn, scheme string, checked, wrong int, first string) {
	sr := SchemeReport{Fn: fn, Scheme: scheme, Solved: wrong == 0, Inputs: checked}
	if wrong > 0 {
		sr.Error = fmt.Sprintf("%d wrong results; first: %s", wrong, first)
	}
	r.Results = append(r.Results, sr)
}

// CacheReport is the run report's persistent-cache section: the store's
// disk-side stats plus the oracle cache's in-memory hit/miss split and the
// derived hit rate of the whole run.
type CacheReport struct {
	oracle.StoreStats
	OracleHits   int64   `json:"oracle_hits"`
	OracleMisses int64   `json:"oracle_misses"`
	HitRate      float64 `json:"hit_rate"`
}

// AttachCache records the persistent-cache outcome of the run: st is the
// store's final stats, hits/misses the oracle cache's cumulative counters
// across every generation of the run.
func (r *RunReport) AttachCache(st oracle.StoreStats, hits, misses int64) {
	cr := &CacheReport{StoreStats: st, OracleHits: hits, OracleMisses: misses}
	if hits+misses > 0 {
		cr.HitRate = float64(hits) / float64(hits+misses)
	}
	r.Cache = cr
}

// AttachMetrics merges snapshots of the given registries into the report
// (later registries win on name collisions, which cannot happen for the
// disjoint core/oracle namespaces).
func (r *RunReport) AttachMetrics(regs ...*obs.Registry) {
	for _, reg := range regs {
		if reg == nil {
			continue
		}
		r.Metrics.Merge(reg.Snapshot())
	}
}

// Solved reports whether every recorded scheme solved (false for an empty
// report: a run that produced nothing did not succeed).
func (r *RunReport) Solved() bool {
	if len(r.Results) == 0 {
		return false
	}
	for _, sr := range r.Results {
		if !sr.Solved {
			return false
		}
	}
	return true
}

// WriteJSON stamps CreatedAt and writes the indented report.
func (r *RunReport) WriteJSON(w io.Writer) error {
	r.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path (0644, truncating).
func (r *RunReport) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

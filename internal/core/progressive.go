package core

import (
	"context"
	"fmt"
	"math"

	"rlibm/internal/fp"
	"rlibm/internal/interval"
	"rlibm/internal/lp"
	"rlibm/internal/obs"
	"rlibm/internal/oracle"
	"rlibm/internal/poly"
	"rlibm/internal/rangered"

	"math/rand"
)

// This file implements RLIBM-PROG progressive polynomials: after a piece's
// full-degree polynomial is found, the LP is re-solved with the full
// constraints PLUS per-level prefix constraints, so ONE coefficient vector
// serves every configured narrow format through its leading coefficients.
// Each level k demands that the degree-d_k prefix lands in the round-to-odd
// interval of the level's (Bits+2)-bit target for every input representable
// in the level's format; round-to-odd composition then makes the prefix
// correctly rounded for the level format under all five standard modes.

// levelState is one progressive level's working state during a combined
// adaptLoop attempt. Interval shrinking and demotion happen on private
// copies (items/scratch) and are committed to the Result only when the
// whole attempt succeeds, so a failed prefix-degree probe leaves no trace.
type levelState struct {
	idx    int       // index into Result.Prefixes / Config.Progressive
	format fp.Format // narrow output format served by the prefix
	target fp.Format // the level's round-to-odd target (format.Bits + 2)
	prefix int       // leading coefficient count bound by this level

	items  []workItem
	live   []*workItem
	vals   []float64
	sample map[int]bool
	pev    *poly.Evaluator // prefix evaluator of the current LP solution

	scratch map[uint64]float64 // demotions pending this attempt's success
	budget  int
}

// newLevelState copies the level's merged work list into private state.
// Items whose sources are all already served by tables (the full special
// table composes down; the level table was filled by earlier rounds or
// buildLevelWork pre-demotion) start unconstrained.
func newLevelState(cfg *Config, res *Result, idx int, lw []*workItem, prefix int) *levelState {
	pl := &res.Prefixes[idx]
	st := &levelState{
		idx: idx, format: pl.Format, target: pl.Target, prefix: prefix,
		scratch: map[uint64]float64{},
		budget:  cfg.MaxSpecials - len(pl.Specials),
	}
	st.items = make([]workItem, len(lw))
	st.live = make([]*workItem, len(lw))
	for i, it := range lw {
		st.items[i] = *it
		if allSourcesSpecial(it.Sources, res.Specials, pl.Specials) {
			st.items[i].Iv = interval.Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}
		}
		st.live[i] = &st.items[i]
	}
	st.vals = make([]float64, len(st.live))
	return st
}

// demote moves a level item's sources into the attempt's scratch table and
// unconstrains the item. Budget accounting mirrors demoteItem: charged per
// source, sources already in any table are free.
func (st *levelState) demote(cfg *Config, res *Result, it *workItem) error {
	pl := &res.Prefixes[st.idx]
	for _, xb := range it.Sources {
		if _, ok := res.Specials[xb]; ok {
			continue
		}
		if _, ok := pl.Specials[xb]; ok {
			continue
		}
		if _, ok := st.scratch[xb]; ok {
			continue
		}
		if st.budget <= 0 {
			return fmt.Errorf("%d-bit level special-case budget exhausted (%d)", st.format.Bits, cfg.MaxSpecials)
		}
		x := math.Float64frombits(xb)
		st.scratch[xb] = cfg.cache.Correct(cfg.Fn, x, st.target, fp.RTO)
		st.budget--
	}
	it.Iv = interval.Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}
	return nil
}

// commit publishes the attempt's scratch demotions into the Result.
func (st *levelState) commit(res *Result) {
	pl := &res.Prefixes[st.idx]
	for xb, y := range st.scratch {
		pl.Specials[xb] = y
	}
}

// allSourcesSpecial reports whether every source bit pattern appears in at
// least one of the tables.
func allSourcesSpecial(sources []uint64, tables ...map[uint64]float64) bool {
	for _, xb := range sources {
		covered := false
		for _, t := range tables {
			if _, ok := t[xb]; ok {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// buildLevelWork derives each progressive level's constraint list from the
// piece's full work list: for every source input representable in the level
// format (and not already served by the full table), the level target's
// round-to-odd interval is reduced and intersected with its reduction
// siblings. Inputs whose interval cannot be reduced or intersected are
// pre-demoted straight into the level's special table, exactly as collect
// does for the full target.
func buildLevelWork(cfg *Config, res *Result, work []*workItem) [][]*workItem {
	out := make([][]*workItem, len(res.Prefixes))
	for li := range res.Prefixes {
		pl := &res.Prefixes[li]
		var lw []*workItem
		for _, it := range work {
			var merged *workItem
			for _, xb := range it.Sources {
				x := math.Float64frombits(xb)
				if !pl.Format.IsRepresentable(x) {
					continue
				}
				if _, ok := res.Specials[xb]; ok {
					continue // the full table's round-to-odd value composes down
				}
				if _, ok := pl.Specials[xb]; ok {
					continue
				}
				y := cfg.cache.Correct(cfg.Fn, x, pl.Target, fp.RTO)
				riv, ok := levelInterval(res.red, pl.Target, x, y)
				if !ok {
					pl.Specials[xb] = y
					continue
				}
				if merged == nil {
					merged = &workItem{R: it.R, Iv: riv, Sources: []uint64{xb}}
					continue
				}
				lo := math.Max(merged.Iv.Lo, riv.Lo)
				hi := math.Min(merged.Iv.Hi, riv.Hi)
				if lo > hi {
					pl.Specials[xb] = y
					continue
				}
				merged.Iv = interval.Interval{Lo: lo, Hi: hi}
				merged.Sources = append(merged.Sources, xb)
			}
			if merged != nil {
				lw = append(lw, merged)
			}
		}
		out[li] = lw
	}
	return out
}

// levelInterval computes the reduced rounding interval of a level-target
// round-to-odd result, or reports that the input must be a special case.
func levelInterval(red rangered.Reduction, target fp.Format, x, y float64) (interval.Interval, bool) {
	iv, err := interval.Rounding(y, target, fp.RTO)
	if err != nil {
		return interval.Interval{}, false
	}
	_, key := red.Reduce(x)
	return rangered.ReducedInterval(red, key, iv)
}

// solveProgressive runs the progressive rounds for one piece after its
// full-degree polynomial succeeded: levels are solved widest first, and for
// each level the shortest workable prefix degree is searched. Every round
// re-solves the COMBINED system — full constraints plus the fixed prefixes
// of already-committed levels plus the candidate level — reusing the
// piece's warm solver, so the final coefficients satisfy everything at
// once. On success the piece's coefficients are replaced by the combined
// solution and its prefix evaluators are bound.
func solveProgressive(ctx context.Context, cfg *Config, solver *lp.Solver, work []*workItem,
	degree int, rng *rand.Rand, res *Result, m *schemeMetrics, piece *Piece) error {

	levelWork := buildLevelWork(cfg, res, work)
	chosen := make([]int, len(levelWork)) // prefix coefficient counts
	var ev *poly.Evaluator
	for li := range levelWork {
		maxd := cfg.Progressive[li].MaxPrefixDegree
		if maxd <= 0 || maxd > degree {
			maxd = degree
		}
		solved := false
		for dk := 1; dk <= maxd; dk++ {
			states := make([]*levelState, li+1)
			for j := 0; j < li; j++ {
				states[j] = newLevelState(cfg, res, j, levelWork[j], chosen[j])
			}
			states[li] = newLevelState(cfg, res, li, levelWork[li], dk+1)
			ev2, err := adaptLoop(ctx, cfg, solver, work, degree, rng, res, m, states)
			if err != nil {
				if ctx.Err() != nil {
					return err
				}
				cfg.Trace.Event("prefix.failed", obs.Attrs{
					"fn": cfg.Fn.String(), "scheme": cfg.Scheme.String(),
					"level": st8(res, li), "prefix_degree": dk, "error": err.Error(),
				})
				cfg.logf("  level %d (%d-bit) prefix degree %d failed: %v",
					li, res.Prefixes[li].Format.Bits, dk, err)
				continue
			}
			ev = ev2
			for _, st := range states {
				st.commit(res)
			}
			chosen[li] = dk + 1
			solved = true
			break
		}
		if !solved {
			return fmt.Errorf("progressive level %d (%d-bit): no prefix degree up to %d works with the degree-%d polynomial",
				li, res.Prefixes[li].Format.Bits, maxd, degree)
		}
	}
	piece.Coeffs, piece.Eval = ev.Coeffs, ev
	piece.PrefixEvals = make([]*poly.Evaluator, len(chosen))
	for li, pc := range chosen {
		pev, err := poly.NewEvaluator(cfg.Scheme, ev.Coeffs[:pc])
		if err != nil {
			return err
		}
		piece.PrefixEvals[li] = pev
		if pc-1 > res.Prefixes[li].Degree {
			res.Prefixes[li].Degree = pc - 1
		}
	}
	return nil
}

// st8 formats a level for trace attributes.
func st8(res *Result, li int) string {
	return fmt.Sprintf("%d/%d-bit", li, res.Prefixes[li].Format.Bits)
}

// EvalPrefix computes the level's double result for input x using only the
// prefix polynomial: the returned double, rounded to the level's format
// under any standard mode, is the correctly rounded value. Lookup order
// mirrors Eval — edge cases, then the level's special table, then the full
// special table (round-to-odd composes down across the >= 2-bit gap), then
// structural reduction points, then the prefix polynomial.
func (r *Result) EvalPrefix(x float64, level int) float64 {
	if v, done := r.edgeResult(x); done {
		return v
	}
	pl := &r.Prefixes[level]
	xb := math.Float64bits(x)
	if y, ok := pl.Specials[xb]; ok {
		return y
	}
	if y, ok := r.Specials[xb]; ok {
		return y
	}
	rv, key := r.red.Reduce(x)
	if pv, structural := r.red.ExactPoint(rv); structural {
		return r.red.Compensate(pv, key)
	}
	piece := &r.Pieces[0]
	for i := 1; i < len(r.Pieces); i++ {
		if rv >= r.Pieces[i].Lo {
			piece = &r.Pieces[i]
		}
	}
	p := piece.PrefixEvals[level].Eval(rv)
	return r.red.Compensate(p, key)
}

// VerifyPrefix checks one progressive level against the oracle for EVERY
// input of the level's format, across all five standard rounding modes —
// the per-level analogue of Verify. Small level formats make exhaustion
// cheap (bfloat16 has under 2^16 inputs).
func (r *Result) VerifyPrefix(level int, modes []fp.Mode) VerifyReport {
	pl := &r.Prefixes[level]
	var rep VerifyReport
	n := pl.Format.Count()
	for b := uint64(0); b < n; b++ {
		x := pl.Format.FromBits(b)
		if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 {
			continue
		}
		if r.Fn.IsLog() && x <= 0 {
			continue
		}
		d := r.EvalPrefix(x, level)
		val := oracle.Compute(r.Fn, x)
		for _, m := range modes {
			got := pl.Format.Round(d, m)
			want := val.Round(pl.Format, m)
			rep.Checked++
			if got == 0 && want == 0 {
				continue
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				rep.Wrong++
				if rep.FirstWrong == "" {
					rep.FirstWrong = fmt.Sprintf("%v(%g) level %d mode %v: got %g want %g",
						r.Fn, x, level, m, got, want)
				}
			}
		}
	}
	return rep
}

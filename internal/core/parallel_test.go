package core

import (
	"context"
	"math"
	"testing"

	"rlibm/internal/fp"
	"rlibm/internal/interval"
	"rlibm/internal/oracle"
	"rlibm/internal/poly"
)

// sameResult asserts the generation artifacts that must be bit-for-bit
// reproducible: coefficients, special-case tables, and the merged constraint
// count.
func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Pieces) != len(b.Pieces) {
		t.Fatalf("%s: %d vs %d pieces", label, len(a.Pieces), len(b.Pieces))
	}
	for i := range a.Pieces {
		ca, cb := a.Pieces[i].Coeffs, b.Pieces[i].Coeffs
		if len(ca) != len(cb) {
			t.Fatalf("%s: piece %d has %d vs %d coefficients", label, i, len(ca), len(cb))
		}
		for j := range ca {
			if math.Float64bits(ca[j]) != math.Float64bits(cb[j]) {
				t.Errorf("%s: piece %d coeff %d: %x vs %x", label, i,
					j, math.Float64bits(ca[j]), math.Float64bits(cb[j]))
			}
		}
	}
	if len(a.Specials) != len(b.Specials) {
		t.Fatalf("%s: %d vs %d specials", label, len(a.Specials), len(b.Specials))
	}
	for xb, ya := range a.Specials {
		yb, ok := b.Specials[xb]
		if !ok || math.Float64bits(ya) != math.Float64bits(yb) {
			t.Errorf("%s: special %#x: %g vs %g (present=%v)", label, xb, ya, yb, ok)
		}
	}
	if a.Stats.Constraints != b.Stats.Constraints {
		t.Errorf("%s: %d vs %d constraints", label, a.Stats.Constraints, b.Stats.Constraints)
	}
	if a.Stats.Inputs != b.Stats.Inputs {
		t.Errorf("%s: %d vs %d inputs", label, a.Stats.Inputs, b.Stats.Inputs)
	}
}

// TestGenerateDeterministic is the regression test for the map-iteration
// nondeterminism bug: for a fixed Config.Seed, the generated coefficients,
// specials, and constraint counts must be byte-identical across repeated
// runs AND across worker counts (the sharded collection and parallel check
// reduce deterministically).
func TestGenerateDeterministic(t *testing.T) {
	in := fp.Format{Bits: 12, ExpBits: 8}
	base := func(fn oracle.Func, scheme poly.Scheme) *Result {
		res, err := Generate(context.Background(), Config{Fn: fn, Scheme: scheme, Input: in, Seed: 11, Workers: 1})
		if err != nil {
			t.Fatalf("%v/%v: %v", fn, scheme, err)
		}
		return res
	}
	for _, fn := range []oracle.Func{oracle.Exp2, oracle.Log2} {
		for _, scheme := range []poly.Scheme{poly.Horner, poly.EstrinFMA} {
			ref := base(fn, scheme)
			// Repeated run, same worker count: the Seed must fully determine
			// the output (this failed when LP constraints were fed in Go map
			// order).
			sameResult(t, fn.String()+"/rerun", ref, base(fn, scheme))
			// Parallel run: sharded collection + parallel check must reduce
			// to the identical constraint system and trajectory.
			par, err := Generate(context.Background(), Config{Fn: fn, Scheme: scheme, Input: in, Seed: 11, Workers: 4})
			if err != nil {
				t.Fatalf("%v/%v workers=4: %v", fn, scheme, err)
			}
			sameResult(t, fn.String()+"/workers4", ref, par)
		}
	}
}

// TestGenerateAllConcurrentSchemesDeterministic: the concurrent scheme loop
// must produce, per scheme, exactly what a serial single-scheme run yields.
func TestGenerateAllConcurrentSchemesDeterministic(t *testing.T) {
	in := fp.Format{Bits: 12, ExpBits: 8}
	schemes := []poly.Scheme{poly.Horner, poly.Knuth, poly.Estrin, poly.EstrinFMA}
	all, err := GenerateAll(context.Background(), Config{Fn: oracle.Exp2, Input: in, Seed: 11, Workers: 4}, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(schemes) {
		t.Fatalf("%d results for %d schemes", len(all), len(schemes))
	}
	for i, scheme := range schemes {
		if all[i].Scheme != scheme {
			t.Fatalf("result %d has scheme %v, want %v (order must match input)", i, all[i].Scheme, scheme)
		}
		solo, err := Generate(context.Background(), Config{Fn: oracle.Exp2, Scheme: scheme, Input: in, Seed: 11, Workers: 1})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		sameResult(t, scheme.String(), solo, all[i])
	}
}

// TestGenerateParallelCorrect: a Workers > 1 run still verifies exhaustively.
func TestGenerateParallelCorrect(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline test; skipped with -short")
	}
	in := fp.Format{Bits: 16, ExpBits: 8}
	res, err := Generate(context.Background(), Config{Fn: oracle.Exp2, Scheme: poly.EstrinFMA, Input: in, Seed: 1, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Verify(in, 1, []int{10, 16}, fp.StandardModes)
	if rep.Wrong != 0 {
		t.Fatalf("%d/%d wrong: %s", rep.Wrong, rep.Checked, rep.FirstWrong)
	}
}

// TestDemoteItemBudget: the special-case budget is charged per source and
// demotion stops the moment it is exhausted — a single many-source work item
// must not blow past Config.MaxSpecials.
func TestDemoteItemBudget(t *testing.T) {
	cfg := Config{Fn: oracle.Exp2, Scheme: poly.Horner, Input: fp.Bfloat16, MaxSpecials: 2}
	if err := cfg.setDefaults(); err != nil {
		t.Fatal(err)
	}
	res := &Result{Fn: cfg.Fn, Target: cfg.Target, Specials: map[uint64]float64{}}
	it := &workItem{
		R:  0.25,
		Iv: interval.Interval{Lo: 1, Hi: 2},
		Sources: []uint64{
			math.Float64bits(0.5), math.Float64bits(0.75),
			math.Float64bits(1.25), math.Float64bits(1.5), math.Float64bits(1.75),
		},
	}
	budget, err := demoteItem(&cfg, res, it, 2)
	if err == nil {
		t.Fatal("demoting 5 sources on a budget of 2 must fail")
	}
	if len(res.Specials) != 2 {
		t.Fatalf("budget of 2 admitted %d specials", len(res.Specials))
	}
	if budget != 0 {
		t.Fatalf("remaining budget = %d, want 0", budget)
	}

	// Sources already in the table are free, and a fitting item unconstrains.
	it2 := &workItem{R: 0.5, Iv: interval.Interval{Lo: 1, Hi: 2},
		Sources: []uint64{math.Float64bits(0.5)}}
	if _, err := demoteItem(&cfg, res, it2, 0); err != nil {
		t.Fatalf("re-demoting an already-special source must be free: %v", err)
	}
	if !math.IsInf(it2.Iv.Lo, -1) || !math.IsInf(it2.Iv.Hi, 1) {
		t.Fatalf("demoted item not unconstrained: %v", it2.Iv)
	}
}

// TestSplitByValueNonFinite: non-finite reduced inputs make an equal-width
// partition meaningless; splitByValue must fall back to count-based split
// instead of silently producing empty or truncated chunkings.
func TestSplitByValueNonFinite(t *testing.T) {
	var items []*workItem
	for i := 0; i < 10; i++ {
		items = append(items, &workItem{R: float64(i)})
	}
	items[9].R = math.Inf(1)
	chunks := splitByValue(items, 3)
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	if total != len(items) {
		t.Fatalf("splitByValue dropped constraints: %d of %d", total, len(items))
	}
	if len(chunks) != len(split(items, 3)) {
		t.Errorf("non-finite input should fall back to split: got %d chunks, want %d",
			len(chunks), len(split(items, 3)))
	}
}

// TestParallelFor: the chunking covers [0, n) exactly once for any worker
// count.
func TestParallelFor(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, 5, 2048, 4097} {
			hits := make([]int32, n)
			parallelFor(workers, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					hits[i]++
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

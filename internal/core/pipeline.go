package core

import (
	"context"
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"sort"
	"sync"
	"time"

	"rlibm/internal/fp"
	"rlibm/internal/interval"
	"rlibm/internal/lp"
	"rlibm/internal/obs"
	"rlibm/internal/oracle"
	"rlibm/internal/poly"
	"rlibm/internal/rangered"
)

// workItem is one merged constraint: the polynomial output at the reduced
// input R must land in Iv. Sources lists the original inputs (as float64
// bit patterns) that reduce to R — needed to demote inputs to special cases
// when their constraint becomes unsatisfiable.
type workItem struct {
	R       float64
	Iv      interval.Interval
	Sources []uint64
}

// Piece is one polynomial of a (possibly piecewise) approximation.
type Piece struct {
	// Lo, Hi bound the reduced-input sub-domain of this piece (inclusive).
	Lo, Hi float64
	// Coeffs are the double-rounded coefficients of the LP solution.
	Coeffs poly.Poly
	// Eval evaluates Coeffs under the configured scheme (for Knuth, with
	// the adapted alpha coefficients).
	Eval *poly.Evaluator
	// PrefixEvals evaluates the progressive prefixes of Coeffs, parallel to
	// Result.Prefixes (nil for non-progressive runs). Entry k binds the
	// leading Prefixes[k].Degree+1 coefficients to the same scheme.
	PrefixEvals []*poly.Evaluator
}

// PrefixLevel is one progressive level of a generated Result: a narrow
// output format served by a verified prefix of the polynomial.
type PrefixLevel struct {
	// Format is the narrow output format the level serves.
	Format fp.Format
	// Target is the level's round-to-odd verification target
	// (Format.Bits + 2 with the input's exponent width).
	Target fp.Format
	// Degree is the verified prefix polynomial degree (the maximum across
	// pieces when they differ).
	Degree int
	// Specials maps input bit patterns to the level's round-to-odd result
	// for inputs the prefix polynomial cannot serve. Inputs in the full
	// Result.Specials table are NOT repeated here — the full table's
	// round-to-odd values compose down to every level.
	Specials map[uint64]float64
}

// Stats records how the generation run went. The loop counters (LPSolves,
// Iterations, ConstrainEvents, LPPivots) are a view over the run's metrics
// registry (Config.Metrics): the pipeline increments registry handles and
// copies the per-run deltas here when the scheme finishes.
type Stats struct {
	Inputs          int // enumerated polynomial-path inputs (deduplicated)
	Constraints     int // merged reduced constraints
	LPSolves        int
	Iterations      int
	ConstrainEvents int   // intervals shrunk by the check step
	LPPivots        int64 // total simplex pivots across every LP solve
	// WarmResolves counts LP solves served by dual-simplex reoptimization
	// from the previous basis; ColdSolves counts from-scratch two-phase
	// solves (always at least one per piece, plus warm-path fallbacks).
	WarmResolves int
	ColdSolves   int

	// CollectTime is the wall-clock of the shared oracle/interval collection
	// pass; SolveTime is the wall-clock of this scheme's generate–check–
	// constrain loop. With Workers > 1 both passes run sharded, so these are
	// elapsed times, not CPU times.
	CollectTime time.Duration
	SolveTime   time.Duration
	// OracleHits / OracleMisses count memoized vs freshly computed oracle
	// queries across the whole GenerateAll run (shared by every scheme).
	OracleHits, OracleMisses int64
}

// Result is a generated correctly rounded implementation.
type Result struct {
	Fn     oracle.Func
	Scheme poly.Scheme
	Input  fp.Format
	Target fp.Format

	Dom      Domain
	Pieces   []Piece
	Specials map[uint64]float64 // input bits (float64) -> round-to-odd result
	// Prefixes lists the progressive levels (Config.Progressive order);
	// empty for non-progressive runs.
	Prefixes []PrefixLevel
	Stats    Stats

	red rangered.Reduction
}

// Generate runs the full pipeline of Figure 1 and returns a correctly
// rounded implementation, or an error when no polynomial of the permitted
// degrees satisfies the constraints. Canceling ctx stops the run at the
// next pivot or iteration boundary; the error then wraps ctx.Err() (the LP
// layer reports it as *lp.CanceledError).
func Generate(ctx context.Context, cfg Config) (*Result, error) {
	rs, err := GenerateAll(ctx, cfg, []poly.Scheme{cfg.Scheme})
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// GenerateAll runs the pipeline for several evaluation schemes of one
// function, sharing the (expensive) oracle/interval collection: the
// constraint set depends only on the function and the formats, while the
// generate–check–constrain loop is scheme-specific. With Workers > 1 the
// schemes solve concurrently (collection is shared and each scheme's loop is
// independent); results are bit-identical to a serial run because every
// scheme derives its randomness from its own (Seed, Fn, Scheme) source.
func GenerateAll(ctx context.Context, cfg Config, schemes []poly.Scheme) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Store == nil && cfg.CacheDir != "" {
		st, err := oracle.OpenStore(cfg.CacheDir, oracle.StoreOptions{ReadOnly: cfg.CacheReadonly})
		if err != nil {
			return nil, fmt.Errorf("%v: oracle cache: %w", cfg.Fn, err)
		}
		cfg.Store = st
		// Seal this run's fresh oracle results into a segment when the run
		// ends, success or failure — a failed solve's collect work is still
		// worth persisting. A flush failure loses cache warmth, never
		// correctness, so it is logged rather than failing the run.
		defer func() {
			if err := st.Close(); err != nil {
				cfg.Logger.Infof("%v: oracle cache flush failed: %v", cfg.Fn, err)
			}
		}()
	}
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	red := rangered.For(cfg.Fn)
	dom := FindDomain(cfg.Fn, cfg.Target)

	collectStart := time.Now()
	preSpecials := map[uint64]float64{}
	csp := cfg.Trace.StartSpan("collect", obs.Attrs{"fn": cfg.Fn.String(), "workers": cfg.Workers})
	work, stats, err := collect(&cfg, red, dom, preSpecials)
	if err != nil {
		csp.End(obs.Attrs{"error": err.Error()})
		return nil, err
	}
	stats.CollectTime = time.Since(collectStart)
	csp.End(obs.Attrs{
		"inputs": stats.Inputs, "constraints": len(work), "pre_specials": len(preSpecials),
	})
	cfg.Metrics.Gauge("core/" + cfg.Fn.String() + "/collect_time_ns").Set(int64(stats.CollectTime))
	cfg.logf("%v: %d constraints, %d pre-specials (collected in %v, %d workers)",
		cfg.Fn, len(work), len(preSpecials), stats.CollectTime.Round(time.Millisecond), cfg.Workers)

	out := make([]*Result, len(schemes))
	errs := make([]error, len(schemes))
	solve := func(i int, scheme poly.Scheme) {
		out[i], errs[i] = generateScheme(ctx, cfg, scheme, work, preSpecials, dom, red, stats)
	}
	if cfg.Workers > 1 && len(schemes) > 1 {
		var wg sync.WaitGroup
		for i, scheme := range schemes {
			wg.Add(1)
			go func(i int, scheme poly.Scheme) {
				defer wg.Done()
				solve(i, scheme)
			}(i, scheme)
		}
		wg.Wait()
	} else {
		for i, scheme := range schemes {
			solve(i, scheme)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	hits, misses := cfg.cache.Stats()
	for _, res := range out {
		res.Stats.OracleHits, res.Stats.OracleMisses = hits, misses
	}
	return out, nil
}

// generateScheme runs the scheme-specific half of the pipeline — piecewise
// splitting and the generate–check–constrain loop — over the shared
// constraint set. work is read-only here: adaptLoop copies the intervals it
// shrinks, so concurrent schemes never race on it.
func generateScheme(ctx context.Context, cfg Config, scheme poly.Scheme, work []*workItem,
	preSpecials map[uint64]float64, dom Domain, red rangered.Reduction, stats Stats) (*Result, error) {

	start := time.Now()
	m := newSchemeMetrics(cfg.Metrics, cfg.Fn, scheme).snapshotBase()
	ssp := cfg.Trace.StartSpan("scheme.solve", obs.Attrs{
		"fn": cfg.Fn.String(), "scheme": scheme.String(),
	})
	res := &Result{
		Fn:       cfg.Fn,
		Scheme:   scheme,
		Input:    cfg.Input,
		Target:   cfg.Target,
		Dom:      dom,
		Specials: make(map[uint64]float64, len(preSpecials)),
		Stats:    stats,
		red:      red,
	}
	for b, y := range preSpecials {
		res.Specials[b] = y
	}
	for _, l := range cfg.Progressive {
		res.Prefixes = append(res.Prefixes, PrefixLevel{
			Format:   fp.Format{Bits: l.Bits, ExpBits: cfg.Input.ExpBits},
			Target:   fp.Format{Bits: l.Bits + 2, ExpBits: cfg.Input.ExpBits},
			Specials: map[uint64]float64{},
		})
	}
	scfg := cfg
	scfg.Scheme = scheme
	chunks := split(work, scfg.Pieces)
	if cfg.Fn.IsTrig() {
		chunks = splitByValue(work, scfg.Pieces)
	}
	rng := rand.New(rand.NewSource(scfg.Seed + int64(scfg.Fn)<<8 + int64(scheme)))
	for _, chunk := range chunks {
		piece, err := solvePiece(ctx, &scfg, chunk, rng, res, m)
		if err != nil {
			ssp.End(obs.Attrs{"error": err.Error()})
			return nil, fmt.Errorf("%v/%v: %w", scfg.Fn, scheme, err)
		}
		res.Pieces = append(res.Pieces, *piece)
	}
	sort.Slice(res.Pieces, func(i, j int) bool { return res.Pieces[i].Lo < res.Pieces[j].Lo })
	res.Stats.SolveTime = time.Since(start)
	m.solveTime.Set(int64(res.Stats.SolveTime))
	m.fillStats(&res.Stats)
	ssp.End(obs.Attrs{
		"pieces": len(res.Pieces), "specials": len(res.Specials),
		"iterations": res.Stats.Iterations, "lp_solves": res.Stats.LPSolves,
		"lp_pivots": res.Stats.LPPivots,
	})
	return res, nil
}

// candidate is one enumerated input's contribution to the constraint set,
// recorded before the cross-worker reduction: the input (xb), its oracle
// result (y), and its reduced input (r/rb) and interval. Keeping per-input
// candidates — rather than merging inside each worker — is what makes the
// parallel reduction bit-for-bit deterministic: the merge order per reduced
// input is the sorted source order, independent of how the enumeration was
// sharded.
type candidate struct {
	rb uint64 // bits of r, the grouping key (distinguishes ±0)
	xb uint64 // original input bits
	r  float64
	y  float64 // round-to-odd oracle result for xb
	iv interval.Interval
}

// collectShard is one worker's private output buffer.
type collectShard struct {
	cands    []candidate
	specials map[uint64]float64
}

// collect enumerates the inputs, asks the oracle for round-to-odd results,
// computes rounding intervals, reduces them, and merges by reduced input.
// The enumeration is sharded across cfg.Workers goroutines (the oracle pass
// is the pipeline's dominant cost and is embarrassingly parallel over bit
// patterns); the barrier reduction sorts by (reduced input, source input) so
// the merged constraints are identical for any worker count.
func collect(cfg *Config, red rangered.Reduction, dom Domain, specials map[uint64]float64) ([]*workItem, Stats, error) {
	var stats Stats
	if cfg.cache == nil {
		cfg.cache = oracle.NewCache(0)
	}

	// The small mandatory passes are materialized up front and dealt to the
	// workers round-robin. Exact-result inputs carry singleton intervals that
	// pin the polynomial (e.g. p(0) = 1 for the exponential family);
	// domain-cut neighbourhoods have the tightest intervals of the whole
	// domain and stride sampling would otherwise leave them to interpolation.
	extras := exactInputs(cfg.Fn, cfg.Input, dom)
	for _, cut := range []float64{dom.Lo, dom.Hi, dom.TinyLo, dom.TinyHi} {
		if cut == 0 || math.IsInf(cut, 0) || math.IsNaN(cut) {
			continue
		}
		up := cfg.Input.Round(cut, fp.RTP)
		dn := cfg.Input.Round(cut, fp.RTN)
		for i := 0; i < 128; i++ {
			extras = append(extras, up, dn)
			up = cfg.Input.NextUp(up)
			dn = cfg.Input.NextDown(dn)
		}
	}

	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	n := cfg.Input.Count()
	// Aligned pass: every input whose trailing 13 significand bits are zero
	// — for binary32 that is a superset of all tensorfloat32 and bfloat16
	// values — so stride-sampled generation still yields exhaustive
	// correctness for the ML formats the paper's introduction motivates.
	const aligned = 1 << 13
	alignedPass := cfg.Stride > 1 && cfg.Input.SigBits() > 13

	shards := make([]collectShard, workers)
	runShard := func(w int) {
		sh := &shards[w]
		sh.specials = map[uint64]float64{}
		// Stride enumeration over the input format's bit patterns,
		// interleaved across workers.
		for b := uint64(w) * cfg.Stride; b < n; b += cfg.Stride * uint64(workers) {
			classify(cfg, red, dom, cfg.Input.FromBits(b), sh)
		}
		if alignedPass {
			for b := uint64(w) * aligned; b < n; b += aligned * uint64(workers) {
				classify(cfg, red, dom, cfg.Input.FromBits(b), sh)
			}
		}
		for i := w; i < len(extras); i += workers {
			classify(cfg, red, dom, extras[i], sh)
		}
		// Sort inside the worker: the streaming merge below consumes the
		// shards as sorted runs, so the O(n log n) comparison work happens
		// in parallel and the barrier only pays the O(n) merge.
		sort.Slice(sh.cands, func(i, j int) bool { return candLess(&sh.cands[i], &sh.cands[j]) })
	}
	if workers == 1 {
		runShard(0)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				runShard(w)
			}(w)
		}
		wg.Wait()
	}

	// Worker shard utilization: with interleaved enumeration the shards
	// should be near-equal; a skewed histogram means the sharding is wasting
	// workers on filtered regions.
	shardHist := cfg.Metrics.Histogram("core/" + cfg.Fn.String() + "/collect_shard_candidates")
	shardCounts := make([]int, len(shards))
	for i := range shards {
		shardCounts[i] = len(shards[i].cands)
		shardHist.Observe(int64(shardCounts[i]))
	}
	cfg.Trace.Event("collect.shards", obs.Attrs{
		"fn": cfg.Fn.String(), "workers": workers, "candidates": shardCounts,
	})

	// Streaming deterministic reduction at the barrier: the shards are
	// already sorted by (reduced input, source input), so a k-way merge
	// visits every candidate in exactly the order the old concatenate-and-
	// sort pass produced — but one candidate at a time, folded straight into
	// the constraint accumulator for its reduced input, without ever
	// materializing the concatenated candidate slice. Duplicate enumerations
	// of one input (aligned pass, domain-cut neighbourhoods overlapping the
	// stride sweep) collapse here, and the merged work list feeds the
	// per-piece splitting unchanged, so the reduction stays bit-identical
	// for any worker count.
	for i := range shards {
		for b, y := range shards[i].specials {
			specials[b] = y
		}
	}
	var work []*workItem
	var item *workItem       // accumulator for the current reduced input
	var curRB, prevXB uint64 // current group key; previous source seen in it
	merge := newShardMerge(shards)
	for {
		c := merge.next()
		if c == nil {
			break
		}
		if item == nil || c.rb != curRB {
			work = append(work, &workItem{R: c.r, Iv: c.iv, Sources: []uint64{c.xb}})
			item = work[len(work)-1]
			curRB, prevXB = c.rb, c.xb
			stats.Inputs++
			continue
		}
		if c.xb == prevXB {
			continue // duplicate enumeration of the same input
		}
		prevXB = c.xb
		stats.Inputs++
		// Intersect with the existing constraint.
		lo := math.Max(item.Iv.Lo, c.iv.Lo)
		hi := math.Min(item.Iv.Hi, c.iv.Hi)
		if lo > hi {
			// Irreconcilable at this reduced input: the newcomer becomes
			// a special case (the paper's CombineRedIntervals would fail
			// the whole run; demoting the conflicting input preserves
			// progress).
			specials[c.xb] = c.y
			continue
		}
		item.Iv = interval.Interval{Lo: lo, Hi: hi}
		item.Sources = append(item.Sources, c.xb)
	}
	stats.Constraints = len(work)
	return work, stats, nil
}

// candLess is the canonical candidate order: by reduced input value, then
// its bit pattern (+0 before -0: ordered, deterministically), then source
// input. Shards sort by it and the merge preserves it globally.
func candLess(a, b *candidate) bool {
	if a.r != b.r {
		return a.r < b.r
	}
	if a.rb != b.rb {
		return a.rb < b.rb
	}
	return a.xb < b.xb
}

// shardMerge streams the union of the sorted per-worker candidate runs in
// canonical order. Worker counts are small (tens), so a linear scan over
// the run heads beats a heap: no allocations, trivially deterministic
// tie-breaking (lowest shard index wins between equal candidates, which
// cannot reorder equal keys because candLess is a total order on them).
type shardMerge struct {
	shards []collectShard
	heads  []int
}

func newShardMerge(shards []collectShard) *shardMerge {
	return &shardMerge{shards: shards, heads: make([]int, len(shards))}
}

// next returns the smallest unconsumed candidate, or nil when every run is
// exhausted. The pointer aliases the shard's backing array and is only
// valid until the shard is released.
func (m *shardMerge) next() *candidate {
	best := -1
	var bc *candidate
	for i := range m.shards {
		h := m.heads[i]
		if h >= len(m.shards[i].cands) {
			continue
		}
		c := &m.shards[i].cands[h]
		if best < 0 || candLess(c, bc) {
			best, bc = i, c
		}
	}
	if best < 0 {
		return nil
	}
	m.heads[best]++
	if m.heads[best] == len(m.shards[best].cands) {
		// Run exhausted: release the shard's candidate memory early — with
		// many workers the streamed reduction never holds more than the
		// still-unconsumed runs plus the accumulator.
		m.shards[best].cands = nil
		m.heads[best] = 0
	}
	return bc
}

// classify computes one enumerated input's contribution — a special-case
// entry, a reduced-constraint candidate, or nothing (filtered) — into the
// worker's private shard. It only touches cfg/red/dom read-only and the
// concurrency-safe oracle cache, so any number of workers may run it at once.
func classify(cfg *Config, red rangered.Reduction, dom Domain, x float64, sh *collectShard) {
	if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 {
		return
	}
	if cfg.Fn.IsLog() && x < 0 {
		return
	}
	if !dom.PolyPath(x) {
		return
	}
	xb := math.Float64bits(x)
	y := cfg.cache.Correct(cfg.Fn, x, cfg.Target, fp.RTO)
	r, key := red.Reduce(x)
	if pv, structural := red.ExactPoint(r); structural {
		// Structurally exact reduced inputs are served by the table /
		// sign logic alone; only an inconsistency would make one a
		// real special case.
		oc := red.Compensate(pv, key)
		good := oc == y // covers exact results, including zeros
		if !good {
			if iv, err := interval.Rounding(y, cfg.Target, fp.RTO); err == nil {
				good = iv.Contains(oc)
			}
		}
		if !good {
			sh.specials[xb] = y
		}
		return
	}
	iv, err := interval.Rounding(y, cfg.Target, fp.RTO)
	if err != nil {
		sh.specials[xb] = y
		return
	}
	riv, ok := rangered.ReducedInterval(red, key, iv)
	if !ok {
		sh.specials[xb] = y
		return
	}
	sh.cands = append(sh.cands, candidate{
		rb: math.Float64bits(r), xb: xb, r: r, y: y, iv: riv,
	})
}

// exactInputs enumerates the format's inputs whose results are exactly
// representable rationals: every such input carries a singleton rounding
// interval that must never be missed by stride sampling.
func exactInputs(fn oracle.Func, input fp.Format, dom Domain) []float64 {
	var out []float64
	add := func(v float64) {
		if input.IsRepresentable(v) && dom.PolyPath(v) {
			if _, exact := oracle.ExactValue(fn, v); exact {
				out = append(out, v)
			}
		}
	}
	switch fn {
	case oracle.Exp2, oracle.Exp10:
		lo := int(math.Ceil(dom.Lo))
		hi := int(math.Floor(dom.Hi))
		for n := lo; n <= hi; n++ {
			add(float64(n))
		}
	case oracle.Log2:
		for k := input.MinExp() - input.Prec() + 1; k <= input.MaxExp(); k++ {
			add(math.Ldexp(1, k))
		}
	case oracle.Log10:
		p := 1.0
		for n := 0; n <= 40; n++ {
			add(p)
			p *= 10
			if p > input.MaxFinite() {
				break
			}
		}
	case oracle.Exp, oracle.Log:
		// exp(0) and log(1) are handled by the zero/tiny plateaus and the
		// special table respectively; nothing to pin.
	case oracle.Sinpi, oracle.Cospi:
		// All exact trig inputs (multiples of 1/2) reduce to the
		// structural points m = 0 and m = 1/2; nothing to pin.
	}
	return out
}

// split partitions the sorted constraints into pieces of (roughly) equal
// constraint count — RLibm's sub-domain splitting for piecewise polynomials.
func split(work []*workItem, pieces int) [][]*workItem {
	if pieces <= 1 || len(work) <= pieces {
		return [][]*workItem{work}
	}
	var out [][]*workItem
	per := (len(work) + pieces - 1) / pieces
	for start := 0; start < len(work); start += per {
		end := start + per
		if end > len(work) {
			end = len(work)
		}
		out = append(out, work[start:end])
	}
	return out
}

// splitByValue partitions the sorted constraints into sub-domains of equal
// reduced-input width. The trigonometric quadrant needs this: reduced
// inputs are log-distributed toward zero, so count-based splitting would
// hand one piece most of [0, 1/2], where a low-degree polynomial cannot
// reach interval accuracy. Non-finite reduced inputs (for which an equal-
// width partition is meaningless) and any chunking that fails to cover the
// constraints exactly fall back to count-based split.
func splitByValue(work []*workItem, pieces int) [][]*workItem {
	if pieces <= 1 || len(work) <= pieces {
		return [][]*workItem{work}
	}
	lo, hi := work[0].R, work[len(work)-1].R
	if math.IsInf(lo, 0) || math.IsInf(hi, 0) || math.IsNaN(lo) || math.IsNaN(hi) {
		return split(work, pieces)
	}
	width := (hi - lo) / float64(pieces)
	if width <= 0 || math.IsInf(width, 0) {
		return [][]*workItem{work}
	}
	var out [][]*workItem
	start := 0
	for p := 1; p <= pieces && start < len(work); p++ {
		bound := lo + float64(p)*width
		end := start
		for end < len(work) && (p == pieces || work[end].R < bound) {
			end++
		}
		if end > start {
			out = append(out, work[start:end])
		}
		start = end
	}
	// Post-condition: the chunks are consecutive slices of work (so they
	// cannot overlap) and together cover every constraint. A rounding
	// surprise in the bound arithmetic must not silently drop constraints —
	// dropped constraints would surface as wrong results much later.
	covered := 0
	for _, c := range out {
		covered += len(c)
	}
	if covered != len(work) {
		return split(work, pieces)
	}
	return out
}

// solvePiece runs Algorithm 2 on one sub-domain, escalating the degree when
// the iteration budget runs out. It owns this piece's incremental LP solver:
// the optimal tableau survives across adaptLoop's constrain iterations, so
// each re-solve after an interval shrink warm-starts from the previous basis
// instead of running the two-phase method from nothing (SetDegree resets it
// when the degree escalates — the variable space changes shape).
func solvePiece(ctx context.Context, cfg *Config, work []*workItem, rng *rand.Rand, res *Result, m *schemeMetrics) (*Piece, error) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, it := range work {
		lo = math.Min(lo, it.R)
		hi = math.Max(hi, it.R)
	}
	solver := lp.NewSolver(lp.Options{Degree: cfg.Degree, WarmStart: !cfg.ColdLP})
	for degree := cfg.Degree; degree <= cfg.DegreeMax; degree++ {
		solver.SetDegree(degree)
		ev, err := adaptLoop(ctx, cfg, solver, work, degree, rng, res, m, nil)
		if err == nil {
			piece := &Piece{Lo: lo, Hi: hi, Coeffs: ev.Coeffs, Eval: ev}
			if len(cfg.Progressive) == 0 {
				return piece, nil
			}
			// Progressive rounds: re-solve the combined full+prefix system
			// level by level on the same warm solver. A failure escalates the
			// full degree — a deeper polynomial frees the trailing
			// coefficients to absorb what the prefixes cannot.
			if perr := solveProgressive(ctx, cfg, solver, work, degree, rng, res, m, piece); perr != nil {
				if ctx.Err() != nil {
					return nil, perr
				}
				err = perr
			} else {
				return piece, nil
			}
		}
		if ctx.Err() != nil {
			return nil, err // canceled: escalating the degree would just re-fail
		}
		cfg.Trace.Event("degree.failed", obs.Attrs{
			"fn": cfg.Fn.String(), "scheme": cfg.Scheme.String(),
			"degree": degree, "error": err.Error(),
		})
		cfg.logf("  degree %d failed: %v", degree, err)
	}
	return nil, fmt.Errorf("no polynomial up to degree %d satisfies the %d constraints", cfg.DegreeMax, len(work))
}

// demoteItem moves the sources of a work item into the special-case table
// and unconstrains its interval. The budget is charged per source — not once
// per item — and demotion stops with an error the moment it is exhausted, so
// a many-source item can never overshoot Config.MaxSpecials. Sources already
// in the table (demoted via a sibling constraint) are free.
func demoteItem(cfg *Config, res *Result, it *workItem, budget int) (int, error) {
	for _, xb := range it.Sources {
		if _, ok := res.Specials[xb]; ok {
			continue
		}
		if budget <= 0 {
			return budget, fmt.Errorf("special-case budget exhausted (%d)", cfg.MaxSpecials)
		}
		x := math.Float64frombits(xb)
		res.Specials[xb] = cfg.cache.Correct(cfg.Fn, x, cfg.Target, fp.RTO)
		budget--
	}
	it.Iv = interval.Interval{Lo: math.Inf(-1), Hi: math.Inf(1)} // unconstrained
	return budget, nil
}

// pickSample selects the initial LP sample over a work list: the narrowest
// (often singleton) constraints pin the polynomial, the bulk spreads evenly
// over the reduced domain (live is sorted by R — coverage beats randomness
// for pinning a low-degree polynomial), and any remainder fills randomly.
func pickSample(live []*workItem, sampleSize int, rng *rand.Rand) map[int]bool {
	if sampleSize > len(live) {
		sampleSize = len(live)
	}
	sample := map[int]bool{}
	type widthIdx struct {
		w float64
		i int
	}
	widths := make([]widthIdx, len(live))
	for i, it := range live {
		widths[i] = widthIdx{w: it.Iv.Hi - it.Iv.Lo, i: i}
	}
	sort.Slice(widths, func(a, b int) bool { return widths[a].w < widths[b].w })
	for i := 0; i < sampleSize/4 && i < len(widths); i++ {
		sample[widths[i].i] = true
	}
	if n := sampleSize - len(sample); n > 0 {
		step := len(live) / n
		if step == 0 {
			step = 1
		}
		for i := step / 2; i < len(live) && len(sample) < sampleSize; i += step {
			sample[i] = true
		}
	}
	for len(sample) < sampleSize {
		sample[rng.Intn(len(live))] = true
	}
	return sample
}

// sortedIdx flattens a sample set in ascending index order. The sample is a
// map for O(1) dedup, but LP constraint order decides the Bland's-rule pivot
// sequence — and with it the exact solution vertex. Go randomizes map
// iteration order, so feeding the simplex straight from the map would change
// the generated coefficients from run to run, silently defeating
// Config.Seed.
func sortedIdx(sample map[int]bool) []int {
	idx := make([]int, 0, len(sample))
	for i := range sample {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx
}

// adaptLoop is Algorithm 2: LP-solve on a sample, adapt for the scheme,
// validate everything with the real float64 evaluation, constrain violated
// intervals, repeat. Each iteration hands the solver its complete current
// constraint set: the solver prunes what it already knows, appends what is
// new or tighter, and reoptimizes from the previous basis (resetting itself
// when a constraint disappears via demotion — see lp.Solver.Solve).
//
// With levels != nil (a progressive round) the LP additionally carries each
// level's prefix constraints, the check step validates every level with its
// truncated evaluator, and level demotions land in per-attempt scratch
// tables the caller commits on success.
func adaptLoop(ctx context.Context, cfg *Config, solver *lp.Solver, work []*workItem, degree int, rng *rand.Rand, res *Result, m *schemeMetrics, levels []*levelState) (*poly.Evaluator, error) {
	// Work on copies of the intervals: interval shrinking is per (degree,
	// scheme) attempt.
	items := make([]workItem, len(work))
	for i, it := range work {
		items[i] = *it
		// A progressive round re-derives the full system from the original
		// work list, but inputs the base round already demoted are served by
		// the table regardless of the polynomial — re-imposing their
		// intervals could only manufacture infeasibility.
		if levels != nil && allSourcesSpecial(it.Sources, res.Specials) {
			items[i].Iv = interval.Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}
		}
	}
	live := make([]*workItem, len(items))
	for i := range items {
		live[i] = &items[i]
	}

	sample := pickSample(live, cfg.SampleSize, rng)
	for _, st := range levels {
		st.sample = pickSample(st.live, cfg.SampleSize, rng)
	}

	specialsBudget := cfg.MaxSpecials - len(res.Specials)
	vals := make([]float64, len(live))

	for iter := 0; iter < cfg.MaxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("generation canceled: %w", err)
		}
		m.iterations.Inc()
		isp := cfg.Trace.StartSpan("iteration", obs.Attrs{
			"fn": cfg.Fn.String(), "scheme": cfg.Scheme.String(),
			"degree": degree, "iter": iter, "live": len(live),
		})
		// Exact rational LP on the samples (see sortedIdx for why the map
		// cannot feed the simplex directly). Level prefix constraints ride in
		// the same system: one vector, every format.
		sampleIdx := sortedIdx(sample)
		cons := make([]lp.Constraint, 0, len(sampleIdx))
		for _, i := range sampleIdx {
			it := live[i]
			if math.IsInf(it.Iv.Lo, -1) {
				continue // demoted
			}
			cons = append(cons, lp.Constraint{
				X:  new(big.Rat).SetFloat64(it.R),
				Lo: new(big.Rat).SetFloat64(it.Iv.Lo),
				Hi: new(big.Rat).SetFloat64(it.Iv.Hi),
			})
		}
		levelIdx := make([][]int, len(levels))
		for li, st := range levels {
			levelIdx[li] = sortedIdx(st.sample)
			for _, i := range levelIdx[li] {
				it := st.live[i]
				if math.IsInf(it.Iv.Lo, -1) {
					continue
				}
				cons = append(cons, lp.Constraint{
					X:      new(big.Rat).SetFloat64(it.R),
					Lo:     new(big.Rat).SetFloat64(it.Iv.Lo),
					Hi:     new(big.Rat).SetFloat64(it.Iv.Hi),
					Prefix: st.prefix,
				})
			}
		}
		m.lpSolves.Inc()
		lpStart := time.Now()
		lpRes, lpErr := solver.Solve(ctx, cons)
		coeffs, lpStats := lpRes.Coeffs, lpRes.Stats
		lpDur := time.Since(lpStart)
		m.observeLP(lpStats, lpDur, lpErr)
		if isCanceled(lpErr) {
			isp.End(obs.Attrs{"lp": "canceled", "error": lpErr.Error()})
			return nil, fmt.Errorf("generation canceled: %w", lpErr)
		}
		if isPivotLimit(lpErr) {
			// Cycling guard tripped — nothing useful can come from demoting
			// constraints, so abort this degree attempt with the cause.
			isp.End(obs.Attrs{"lp": "pivot-limit", "error": lpErr.Error()})
			return nil, fmt.Errorf("LP solve aborted: %w", lpErr)
		}
		if lpErr != nil {
			// The sampled system is rationally infeasible (or unbounded, which
			// the sampled box constraints only produce degenerately): demote
			// the narrowest sampled constraint — across the full sample and
			// every level's — and retry. Scanning in sorted index order, full
			// sample first, makes the tie-break (first narrowest wins)
			// deterministic.
			var narrow *workItem
			var narrowSt *levelState
			for _, i := range sampleIdx {
				it := live[i]
				if math.IsInf(it.Iv.Lo, -1) {
					continue
				}
				if narrow == nil || it.Iv.Hi-it.Iv.Lo < narrow.Iv.Hi-narrow.Iv.Lo {
					narrow = it
				}
			}
			for li, st := range levels {
				for _, i := range levelIdx[li] {
					it := st.live[i]
					if math.IsInf(it.Iv.Lo, -1) {
						continue
					}
					if narrow == nil || it.Iv.Hi-it.Iv.Lo < narrow.Iv.Hi-narrow.Iv.Lo {
						narrow, narrowSt = it, st
					}
				}
			}
			if narrow == nil {
				isp.End(obs.Attrs{"lp": lp.InfeasibilityCause(lpErr), "error": "empty sample"})
				return nil, fmt.Errorf("LP infeasible with empty sample")
			}
			var err error
			demoted := 0
			if narrowSt != nil {
				before := narrowSt.budget
				err = narrowSt.demote(cfg, res, narrow)
				demoted = before - narrowSt.budget
			} else {
				before := specialsBudget
				specialsBudget, err = demoteItem(cfg, res, narrow, specialsBudget)
				demoted = before - specialsBudget
			}
			m.demotedSources.Add(int64(demoted))
			attrs := obs.Attrs{
				"fn": cfg.Fn.String(), "scheme": cfg.Scheme.String(),
				"degree": degree, "iter": iter, "reason": lp.InfeasibilityCause(lpErr),
				"sources": demoted,
			}
			if narrowSt != nil {
				attrs["level"] = narrowSt.format.Bits
			}
			cfg.Trace.Event("demote", attrs)
			if err != nil {
				isp.End(obs.Attrs{"lp": lp.InfeasibilityCause(lpErr), "error": err.Error()})
				return nil, err
			}
			isp.End(obs.Attrs{
				"sample": len(cons), "lp": lp.InfeasibilityCause(lpErr),
				"lp_us": lpDur.Microseconds(), "pivots": lpStats.Pivots(),
			})
			continue
		}

		// Round to double and bind the evaluation scheme (Knuth adaptation
		// happens here — including its cubic solve and rounding error).
		fcoeffs := poly.RatPoly(coeffs).Float64s()
		ev, err := poly.NewEvaluator(cfg.Scheme, fcoeffs)
		if err != nil {
			isp.End(obs.Attrs{"error": err.Error()})
			return nil, err
		}
		for _, st := range levels {
			// The level is served by the truncated polynomial under the SAME
			// scheme (for Knuth, with its own adapted coefficients) — the
			// instruction sequence validated here is the one that ships.
			st.pev, err = poly.NewEvaluator(cfg.Scheme, fcoeffs[:st.prefix])
			if err != nil {
				isp.End(obs.Attrs{"error": err.Error()})
				return nil, err
			}
		}

		// Check every constraint — full and per level — with the real
		// instruction sequence.
		checkStart := time.Now()
		take := 2 * (degree + 1)
		violations, cerr := checkPass(cfg, ev, live, vals, sample, take, m, func(it *workItem) error {
			before := specialsBudget
			var derr error
			specialsBudget, derr = demoteItem(cfg, res, it, specialsBudget)
			m.demotedSources.Add(int64(before - specialsBudget))
			cfg.Trace.Event("demote", obs.Attrs{
				"fn": cfg.Fn.String(), "scheme": cfg.Scheme.String(),
				"degree": degree, "iter": iter, "reason": "empty-interval",
				"sources": before - specialsBudget,
			})
			return derr
		})
		for _, st := range levels {
			if cerr != nil {
				break
			}
			st := st
			lv, lerr := checkPass(cfg, st.pev, st.live, st.vals, st.sample, take, m, func(it *workItem) error {
				before := st.budget
				derr := st.demote(cfg, res, it)
				m.demotedSources.Add(int64(before - st.budget))
				cfg.Trace.Event("demote", obs.Attrs{
					"fn": cfg.Fn.String(), "scheme": cfg.Scheme.String(),
					"degree": degree, "iter": iter, "reason": "empty-interval",
					"level": st.format.Bits, "sources": before - st.budget,
				})
				return derr
			})
			violations += lv
			cerr = lerr
		}
		checkDur := time.Since(checkStart)
		m.checkTime.ObserveDuration(checkDur)
		if cerr != nil {
			isp.End(obs.Attrs{"error": cerr.Error()})
			return nil, cerr
		}
		isp.End(obs.Attrs{
			"sample": len(cons), "violations": violations,
			"lp_us": lpDur.Microseconds(), "check_us": checkDur.Microseconds(),
			"pivots": lpStats.Pivots(),
		})
		if violations == 0 {
			return ev, nil
		}
		cfg.logf("  iter %d: %d violations (sample %d)", iter, violations, len(sample))
	}
	return nil, fmt.Errorf("exceeded %d iterations at degree %d", cfg.MaxIters, degree)
}

// checkPass validates one work list against one evaluator: the evaluations
// are pure, so they shard across workers; the interval updates are applied
// serially afterwards, in constraint order, so demotion and shrink
// decisions are identical for any worker count. Violated intervals shrink
// via interval.Constrain; emptied ones are handed to demote. A bounded set
// of violators joins the LP sample: the single worst offenders plus an even
// spread across the violated region (unbounded growth would make the exact
// simplex intractable; the PLDI'22 driver bounds its working set the same
// way).
func checkPass(cfg *Config, ev *poly.Evaluator, live []*workItem, vals []float64,
	sample map[int]bool, take int, m *schemeMetrics, demote func(*workItem) error) (int, error) {

	parallelFor(cfg.Workers, len(live), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if math.IsInf(live[i].Iv.Lo, -1) {
				continue
			}
			vals[i] = ev.Eval(live[i].R)
		}
	})
	violations := 0
	type viol struct {
		i   int
		amt float64 // how far outside the interval, relative
	}
	var worst []viol
	for i, it := range live {
		if math.IsInf(it.Iv.Lo, -1) {
			continue
		}
		v := vals[i]
		if it.Iv.Contains(v) {
			continue
		}
		violations++
		m.constrainEvents.Inc()
		amt := it.Iv.Lo - v
		if v > it.Iv.Hi {
			amt = v - it.Iv.Hi
		}
		amt /= math.Max(it.Iv.Hi-it.Iv.Lo, math.SmallestNonzeroFloat64)
		it.Iv = interval.Constrain(it.Iv, v)
		if it.Iv.Empty() {
			if err := demote(it); err != nil {
				return violations, err
			}
			continue
		}
		worst = append(worst, viol{i: i, amt: amt})
	}
	sort.Slice(worst, func(a, b int) bool { return worst[a].amt > worst[b].amt })
	for i := 0; i < len(worst) && i < take; i++ {
		sample[worst[i].i] = true
	}
	if len(worst) > take {
		rest := worst[take:]
		sort.Slice(rest, func(a, b int) bool { return rest[a].i < rest[b].i })
		step := len(rest) / take
		if step == 0 {
			step = 1
		}
		for i := step / 2; i < len(rest); i += step {
			sample[rest[i].i] = true
		}
	}
	return violations, nil
}

// parallelFor splits [0, n) into one contiguous chunk per worker and runs
// body on each concurrently, waiting for all of them. Small inputs run
// inline: below a few thousand iterations the goroutine fan-out costs more
// than it saves.
func parallelFor(workers, n int, body func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 2048 {
		body(0, n)
		return
	}
	per := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

package core

import (
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"sort"

	"rlibm/internal/fp"
	"rlibm/internal/interval"
	"rlibm/internal/lp"
	"rlibm/internal/oracle"
	"rlibm/internal/poly"
	"rlibm/internal/rangered"
)

// workItem is one merged constraint: the polynomial output at the reduced
// input R must land in Iv. Sources lists the original inputs (as float64
// bit patterns) that reduce to R — needed to demote inputs to special cases
// when their constraint becomes unsatisfiable.
type workItem struct {
	R       float64
	Iv      interval.Interval
	Sources []uint64
}

// Piece is one polynomial of a (possibly piecewise) approximation.
type Piece struct {
	// Lo, Hi bound the reduced-input sub-domain of this piece (inclusive).
	Lo, Hi float64
	// Coeffs are the double-rounded coefficients of the LP solution.
	Coeffs poly.Poly
	// Eval evaluates Coeffs under the configured scheme (for Knuth, with
	// the adapted alpha coefficients).
	Eval *poly.Evaluator
}

// Stats records how the generation run went.
type Stats struct {
	Inputs          int // enumerated polynomial-path inputs
	Constraints     int // merged reduced constraints
	LPSolves        int
	Iterations      int
	ConstrainEvents int // intervals shrunk by the check step
}

// Result is a generated correctly rounded implementation.
type Result struct {
	Fn     oracle.Func
	Scheme poly.Scheme
	Input  fp.Format
	Target fp.Format

	Dom      Domain
	Pieces   []Piece
	Specials map[uint64]float64 // input bits (float64) -> round-to-odd result
	Stats    Stats

	red rangered.Reduction
}

// Generate runs the full pipeline of Figure 1 and returns a correctly
// rounded implementation, or an error when no polynomial of the permitted
// degrees satisfies the constraints.
func Generate(cfg Config) (*Result, error) {
	rs, err := GenerateAll(cfg, []poly.Scheme{cfg.Scheme})
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// GenerateAll runs the pipeline for several evaluation schemes of one
// function, sharing the (expensive) oracle/interval collection: the
// constraint set depends only on the function and the formats, while the
// generate–check–constrain loop is scheme-specific.
func GenerateAll(cfg Config, schemes []poly.Scheme) ([]*Result, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	red := rangered.For(cfg.Fn)
	dom := FindDomain(cfg.Fn, cfg.Target)

	preSpecials := map[uint64]float64{}
	work, stats, err := collect(&cfg, red, dom, preSpecials)
	if err != nil {
		return nil, err
	}
	cfg.logf("%v: %d constraints, %d pre-specials", cfg.Fn, len(work), len(preSpecials))

	var out []*Result
	for _, scheme := range schemes {
		res := &Result{
			Fn:       cfg.Fn,
			Scheme:   scheme,
			Input:    cfg.Input,
			Target:   cfg.Target,
			Dom:      dom,
			Specials: make(map[uint64]float64, len(preSpecials)),
			Stats:    stats,
			red:      red,
		}
		for b, y := range preSpecials {
			res.Specials[b] = y
		}
		scfg := cfg
		scfg.Scheme = scheme
		chunks := split(work, scfg.Pieces)
		if cfg.Fn.IsTrig() {
			chunks = splitByValue(work, scfg.Pieces)
		}
		rng := rand.New(rand.NewSource(scfg.Seed + int64(scfg.Fn)<<8 + int64(scheme)))
		for _, chunk := range chunks {
			piece, err := solvePiece(&scfg, chunk, rng, res)
			if err != nil {
				return nil, fmt.Errorf("%v/%v: %w", scfg.Fn, scheme, err)
			}
			res.Pieces = append(res.Pieces, *piece)
		}
		sort.Slice(res.Pieces, func(i, j int) bool { return res.Pieces[i].Lo < res.Pieces[j].Lo })
		out = append(out, res)
	}
	return out, nil
}

// collect enumerates the inputs, asks the oracle for round-to-odd results,
// computes rounding intervals, reduces them, and merges by reduced input.
func collect(cfg *Config, red rangered.Reduction, dom Domain, specials map[uint64]float64) ([]*workItem, Stats, error) {
	var stats Stats
	merged := map[uint64]*workItem{}

	addInput := func(x float64) {
		if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 {
			return
		}
		if cfg.Fn.IsLog() && x < 0 {
			return
		}
		if !dom.PolyPath(x) {
			return
		}
		xb := math.Float64bits(x)
		y := oracle.Correct(cfg.Fn, x, cfg.Target, fp.RTO)
		r, key := red.Reduce(x)
		if pv, structural := red.ExactPoint(r); structural {
			// Structurally exact reduced inputs are served by the table /
			// sign logic alone; only an inconsistency would make one a
			// real special case.
			oc := red.Compensate(pv, key)
			good := oc == y // covers exact results, including zeros
			if !good {
				if iv, err := interval.Rounding(y, cfg.Target, fp.RTO); err == nil {
					good = iv.Contains(oc)
				}
			}
			if !good {
				specials[xb] = y
			}
			return
		}
		iv, err := interval.Rounding(y, cfg.Target, fp.RTO)
		if err != nil {
			specials[xb] = y
			return
		}
		riv, ok := rangered.ReducedInterval(red, key, iv)
		if !ok {
			specials[xb] = y
			return
		}
		stats.Inputs++
		rb := math.Float64bits(r)
		item, exists := merged[rb]
		if !exists {
			merged[rb] = &workItem{R: r, Iv: riv, Sources: []uint64{xb}}
			return
		}
		// Intersect with the existing constraint.
		lo := math.Max(item.Iv.Lo, riv.Lo)
		hi := math.Min(item.Iv.Hi, riv.Hi)
		if lo > hi {
			// Irreconcilable at this reduced input: the newcomer becomes a
			// special case (the paper's CombineRedIntervals would fail the
			// whole run; demoting the conflicting input preserves progress).
			specials[xb] = y
			return
		}
		item.Iv = interval.Interval{Lo: lo, Hi: hi}
		item.Sources = append(item.Sources, xb)
	}

	// Stride enumeration over the input format's bit patterns.
	n := cfg.Input.Count()
	for b := uint64(0); b < n; b += cfg.Stride {
		addInput(cfg.Input.FromBits(b))
	}
	// Aligned pass: every input whose trailing 13 significand bits are zero
	// — for binary32 that is a superset of all tensorfloat32 and bfloat16
	// values — so stride-sampled generation still yields exhaustive
	// correctness for the ML formats the paper's introduction motivates.
	if cfg.Stride > 1 && cfg.Input.SigBits() > 13 {
		const aligned = 1 << 13
		for b := uint64(0); b < n; b += aligned {
			addInput(cfg.Input.FromBits(b))
		}
	}
	// Exact-result inputs are mandatory: their singleton intervals pin the
	// polynomial (e.g. p(0) = 1 for the exponential family). They are
	// enumerated directly — integers for the exponentials, powers of 2 and
	// 10 for the logarithms — rather than scanning the whole input space.
	for _, v := range exactInputs(cfg.Fn, cfg.Input, dom) {
		addInput(v)
	}
	// Domain-cut neighbourhoods are mandatory too: inputs just past the
	// plateau cuts have the tightest intervals of the whole domain (results
	// a couple of target-format ulps from the plateau constant), and stride
	// sampling would otherwise leave them to interpolation.
	for _, cut := range []float64{dom.Lo, dom.Hi, dom.TinyLo, dom.TinyHi} {
		if cut == 0 || math.IsInf(cut, 0) || math.IsNaN(cut) {
			continue
		}
		up := cfg.Input.Round(cut, fp.RTP)
		dn := cfg.Input.Round(cut, fp.RTN)
		for i := 0; i < 128; i++ {
			addInput(up)
			addInput(dn)
			up = cfg.Input.NextUp(up)
			dn = cfg.Input.NextDown(dn)
		}
	}

	work := make([]*workItem, 0, len(merged))
	for _, it := range merged {
		work = append(work, it)
	}
	sort.Slice(work, func(i, j int) bool { return work[i].R < work[j].R })
	stats.Constraints = len(work)
	return work, stats, nil
}

// exactInputs enumerates the format's inputs whose results are exactly
// representable rationals: every such input carries a singleton rounding
// interval that must never be missed by stride sampling.
func exactInputs(fn oracle.Func, input fp.Format, dom Domain) []float64 {
	var out []float64
	add := func(v float64) {
		if input.IsRepresentable(v) && dom.PolyPath(v) {
			if _, exact := oracle.ExactValue(fn, v); exact {
				out = append(out, v)
			}
		}
	}
	switch fn {
	case oracle.Exp2, oracle.Exp10:
		lo := int(math.Ceil(dom.Lo))
		hi := int(math.Floor(dom.Hi))
		for n := lo; n <= hi; n++ {
			add(float64(n))
		}
	case oracle.Log2:
		for k := input.MinExp() - input.Prec() + 1; k <= input.MaxExp(); k++ {
			add(math.Ldexp(1, k))
		}
	case oracle.Log10:
		p := 1.0
		for n := 0; n <= 40; n++ {
			add(p)
			p *= 10
			if p > input.MaxFinite() {
				break
			}
		}
	case oracle.Exp, oracle.Log:
		// exp(0) and log(1) are handled by the zero/tiny plateaus and the
		// special table respectively; nothing to pin.
	case oracle.Sinpi, oracle.Cospi:
		// All exact trig inputs (multiples of 1/2) reduce to the
		// structural points m = 0 and m = 1/2; nothing to pin.
	}
	return out
}

// split partitions the sorted constraints into pieces of (roughly) equal
// constraint count — RLibm's sub-domain splitting for piecewise polynomials.
func split(work []*workItem, pieces int) [][]*workItem {
	if pieces <= 1 || len(work) <= pieces {
		return [][]*workItem{work}
	}
	var out [][]*workItem
	per := (len(work) + pieces - 1) / pieces
	for start := 0; start < len(work); start += per {
		end := start + per
		if end > len(work) {
			end = len(work)
		}
		out = append(out, work[start:end])
	}
	return out
}

// splitByValue partitions the sorted constraints into sub-domains of equal
// reduced-input width. The trigonometric quadrant needs this: reduced
// inputs are log-distributed toward zero, so count-based splitting would
// hand one piece most of [0, 1/2], where a low-degree polynomial cannot
// reach interval accuracy.
func splitByValue(work []*workItem, pieces int) [][]*workItem {
	if pieces <= 1 || len(work) <= pieces {
		return [][]*workItem{work}
	}
	lo, hi := work[0].R, work[len(work)-1].R
	width := (hi - lo) / float64(pieces)
	if width <= 0 {
		return [][]*workItem{work}
	}
	var out [][]*workItem
	start := 0
	for p := 1; p <= pieces && start < len(work); p++ {
		bound := lo + float64(p)*width
		end := start
		for end < len(work) && (p == pieces || work[end].R < bound) {
			end++
		}
		if end > start {
			out = append(out, work[start:end])
		}
		start = end
	}
	return out
}

// solvePiece runs Algorithm 2 on one sub-domain, escalating the degree when
// the iteration budget runs out.
func solvePiece(cfg *Config, work []*workItem, rng *rand.Rand, res *Result) (*Piece, error) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, it := range work {
		lo = math.Min(lo, it.R)
		hi = math.Max(hi, it.R)
	}
	for degree := cfg.Degree; degree <= cfg.DegreeMax; degree++ {
		ev, err := adaptLoop(cfg, work, degree, rng, res)
		if err == nil {
			return &Piece{Lo: lo, Hi: hi, Coeffs: ev.Coeffs, Eval: ev}, nil
		}
		cfg.logf("  degree %d failed: %v", degree, err)
	}
	return nil, fmt.Errorf("no polynomial up to degree %d satisfies the %d constraints", cfg.DegreeMax, len(work))
}

// adaptLoop is Algorithm 2: LP-solve on a sample, adapt for the scheme,
// validate everything with the real float64 evaluation, constrain violated
// intervals, repeat.
func adaptLoop(cfg *Config, work []*workItem, degree int, rng *rand.Rand, res *Result) (*poly.Evaluator, error) {
	// Work on copies of the intervals: interval shrinking is per (degree,
	// scheme) attempt.
	items := make([]workItem, len(work))
	for i, it := range work {
		items[i] = *it
	}
	live := make([]*workItem, len(items))
	for i := range items {
		live[i] = &items[i]
	}

	sampleSize := cfg.SampleSize
	if sampleSize > len(live) {
		sampleSize = len(live)
	}
	sample := map[int]bool{}
	// Always sample the narrowest (often singleton) constraints: they pin
	// the polynomial.
	type widthIdx struct {
		w float64
		i int
	}
	widths := make([]widthIdx, len(live))
	for i, it := range live {
		widths[i] = widthIdx{w: it.Iv.Hi - it.Iv.Lo, i: i}
	}
	sort.Slice(widths, func(a, b int) bool { return widths[a].w < widths[b].w })
	for i := 0; i < sampleSize/4 && i < len(widths); i++ {
		sample[widths[i].i] = true
	}
	// Spread the bulk evenly over the reduced domain (live is sorted by R):
	// coverage beats randomness for pinning a low-degree polynomial.
	if n := sampleSize - len(sample); n > 0 {
		step := len(live) / n
		if step == 0 {
			step = 1
		}
		for i := step / 2; i < len(live) && len(sample) < sampleSize; i += step {
			sample[i] = true
		}
	}
	for len(sample) < sampleSize {
		sample[rng.Intn(len(live))] = true
	}

	specialsBudget := cfg.MaxSpecials - len(res.Specials)
	demote := func(it *workItem) error {
		for _, xb := range it.Sources {
			x := math.Float64frombits(xb)
			res.Specials[xb] = oracle.Correct(cfg.Fn, x, cfg.Target, fp.RTO)
			specialsBudget--
		}
		it.Iv = interval.Interval{Lo: math.Inf(-1), Hi: math.Inf(1)} // unconstrained
		if specialsBudget < 0 {
			return fmt.Errorf("special-case budget exhausted (%d)", cfg.MaxSpecials)
		}
		return nil
	}

	for iter := 0; iter < cfg.MaxIters; iter++ {
		res.Stats.Iterations++
		// Exact rational LP on the sample.
		cons := make([]lp.Constraint, 0, len(sample))
		for i := range sample {
			it := live[i]
			if math.IsInf(it.Iv.Lo, -1) {
				continue // demoted
			}
			cons = append(cons, lp.Constraint{
				X:  new(big.Rat).SetFloat64(it.R),
				Lo: new(big.Rat).SetFloat64(it.Iv.Lo),
				Hi: new(big.Rat).SetFloat64(it.Iv.Hi),
			})
		}
		res.Stats.LPSolves++
		coeffs, ok := lp.SolvePoly(cons, degree)
		if !ok {
			// The sampled system is rationally infeasible: demote the
			// narrowest sampled constraint and retry.
			var narrow *workItem
			for i := range sample {
				it := live[i]
				if math.IsInf(it.Iv.Lo, -1) {
					continue
				}
				if narrow == nil || it.Iv.Hi-it.Iv.Lo < narrow.Iv.Hi-narrow.Iv.Lo {
					narrow = it
				}
			}
			if narrow == nil {
				return nil, fmt.Errorf("LP infeasible with empty sample")
			}
			if err := demote(narrow); err != nil {
				return nil, err
			}
			continue
		}

		// Round to double and bind the evaluation scheme (Knuth adaptation
		// happens here — including its cubic solve and rounding error).
		fcoeffs := poly.RatPoly(coeffs).Float64s()
		ev, err := poly.NewEvaluator(cfg.Scheme, fcoeffs)
		if err != nil {
			return nil, err
		}

		// Check every constraint with the real instruction sequence.
		violations := 0
		type viol struct {
			i   int
			amt float64 // how far outside the interval, relative
		}
		var worst []viol
		for i, it := range live {
			if math.IsInf(it.Iv.Lo, -1) {
				continue
			}
			v := ev.Eval(it.R)
			if it.Iv.Contains(v) {
				continue
			}
			violations++
			res.Stats.ConstrainEvents++
			amt := it.Iv.Lo - v
			if v > it.Iv.Hi {
				amt = v - it.Iv.Hi
			}
			amt /= math.Max(it.Iv.Hi-it.Iv.Lo, math.SmallestNonzeroFloat64)
			it.Iv = interval.Constrain(it.Iv, v)
			if it.Iv.Empty() {
				if err := demote(it); err != nil {
					return nil, err
				}
				continue
			}
			worst = append(worst, viol{i: i, amt: amt})
		}
		if violations == 0 {
			return ev, nil
		}
		// A bounded set of violators joins the LP sample: the single worst
		// offenders plus an even spread across the violated region
		// (unbounded growth would make the exact simplex intractable; the
		// PLDI'22 driver bounds its working set the same way).
		sort.Slice(worst, func(a, b int) bool { return worst[a].amt > worst[b].amt })
		take := 2 * (degree + 1)
		for i := 0; i < len(worst) && i < take; i++ {
			sample[worst[i].i] = true
		}
		if len(worst) > take {
			rest := worst[take:]
			sort.Slice(rest, func(a, b int) bool { return rest[a].i < rest[b].i })
			step := len(rest) / take
			if step == 0 {
				step = 1
			}
			for i := step / 2; i < len(rest); i += step {
				sample[rest[i].i] = true
			}
		}
		cfg.logf("  iter %d: %d violations (sample %d)", iter, violations, len(sample))
	}
	return nil, fmt.Errorf("exceeded %d iterations at degree %d", cfg.MaxIters, degree)
}

package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"rlibm/internal/fp"
	"rlibm/internal/oracle"
)

// Eval computes the implementation's double result for input x, including
// every special path: the returned double lies in the rounding interval of
// the round-to-odd target result, so rounding it to any format with
// Input.ExpBits+2 .. Input.Bits bits under any standard mode yields the
// correctly rounded value.
func (r *Result) Eval(x float64) float64 {
	if v, done := r.edgeResult(x); done {
		return v
	}
	if y, ok := r.Specials[math.Float64bits(x)]; ok {
		return y
	}
	rv, key := r.red.Reduce(x)
	if pv, structural := r.red.ExactPoint(rv); structural {
		return r.red.Compensate(pv, key)
	}
	p := r.PolyEval(rv)
	return r.red.Compensate(p, key)
}

// edgeResult handles the input-independent special paths shared by Eval and
// EvalPrefix — NaN/infinity propagation, exact zeros, the saturation cuts
// and the tiny plateaus. The bool reports whether the value is final.
func (r *Result) edgeResult(x float64) (float64, bool) {
	if math.IsNaN(x) {
		return math.NaN(), true
	}
	if r.Fn.IsTrig() {
		if math.IsInf(x, 0) {
			return math.NaN(), true
		}
		if x == 0 {
			if r.Fn == oracle.Cospi {
				return 1, true
			}
			return x, true // sinpi preserves the sign of zero
		}
		// cospi's flat-top plateau around zero (see FindDomain).
		if r.Dom.TinyLo <= x && x <= r.Dom.TinyHi {
			return r.Dom.TinyHiVal, true
		}
	} else if r.Fn.IsLog() {
		switch {
		case x < 0 || math.IsInf(x, -1):
			return math.NaN(), true
		case x == 0:
			return math.Inf(-1), true
		case math.IsInf(x, 1):
			return math.Inf(1), true
		}
	} else {
		switch {
		case math.IsInf(x, 1):
			return math.Inf(1), true
		case math.IsInf(x, -1):
			return 0, true
		case x == 0:
			return 1, true
		case x <= r.Dom.Lo:
			return r.Dom.LoVal, true
		case x >= r.Dom.Hi:
			return r.Dom.HiVal, true
		case x < 0 && x >= r.Dom.TinyLo:
			return r.Dom.TinyLoVal, true
		case x > 0 && x <= r.Dom.TinyHi:
			return r.Dom.TinyHiVal, true
		}
	}
	return 0, false
}

// PolyEval evaluates the piecewise polynomial at the reduced input.
func (r *Result) PolyEval(rv float64) float64 {
	piece := &r.Pieces[0]
	for i := 1; i < len(r.Pieces); i++ {
		if rv >= r.Pieces[i].Lo {
			piece = &r.Pieces[i]
		}
	}
	return piece.Eval.Eval(rv)
}

// RoundTo rounds the implementation's result for x to the requested format
// and mode — the user-facing double-rounding step of RLibm-ALL.
func (r *Result) RoundTo(x float64, t fp.Format, m fp.Mode) float64 {
	return t.Round(r.Eval(x), m)
}

// MaxDegree returns the highest polynomial degree across pieces.
func (r *Result) MaxDegree() int {
	d := 0
	for _, p := range r.Pieces {
		if pd := p.Coeffs.Trim().Degree(); pd > d {
			d = pd
		}
	}
	return d
}

// Describe summarizes the result in the shape of the paper's Table 1 row
// fragment: piece count, per-piece degrees, special-input count.
func (r *Result) Describe() string {
	degs := ""
	for i, p := range r.Pieces {
		if i > 0 {
			degs += ","
		}
		degs += fmt.Sprintf("%d", p.Coeffs.Trim().Degree())
	}
	return fmt.Sprintf("%v/%v: %d piece(s), degree(s) %s, %d special input(s)",
		r.Fn, r.Scheme, len(r.Pieces), degs, len(r.Specials))
}

// VerifyReport is the outcome of a correctness sweep.
type VerifyReport struct {
	Checked int
	Wrong   int
	// FirstWrong records the first failing (input, format bits, mode).
	FirstWrong string
}

// Verify checks the implementation against the oracle for every enumerated
// input of the verification format `inputs` (stride-sampled), across the
// given output widths and rounding modes. It is the equivalent of the
// artifact's correctness_test. The sweep is sharded across CPUs; the oracle
// value is computed once per input and reused for every (width, mode) pair.
func (r *Result) Verify(inputs fp.Format, stride uint64, widths []int, modes []fp.Mode) VerifyReport {
	nCPU := runtime.GOMAXPROCS(0)
	reports := make([]VerifyReport, nCPU)
	var wg sync.WaitGroup
	n := inputs.Count()
	for shard := 0; shard < nCPU; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			rep := &reports[shard]
			for b := uint64(shard) * stride; b < n; b += stride * uint64(nCPU) {
				x := inputs.FromBits(b)
				if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 {
					continue
				}
				if r.Fn.IsLog() && x <= 0 {
					continue
				}
				d := r.Eval(x)
				val := oracle.Compute(r.Fn, x)
				for _, bits := range widths {
					t := fp.Format{Bits: bits, ExpBits: r.Input.ExpBits}
					for _, m := range modes {
						got := t.Round(d, m)
						want := val.Round(t, m)
						rep.Checked++
						// Zero results compare sign-insensitively: the sign
						// of an exactly-zero sin(pi*n) is a convention (IEEE
						// alternates it with n; the exact-case oracle uses
						// +0), not a rounding property.
						if got == 0 && want == 0 {
							continue
						}
						if math.Float64bits(got) != math.Float64bits(want) {
							rep.Wrong++
							if rep.FirstWrong == "" {
								rep.FirstWrong = fmt.Sprintf("%v(%g) width %d mode %v: got %g want %g",
									r.Fn, x, bits, m, got, want)
							}
						}
					}
				}
			}
		}(shard)
	}
	wg.Wait()
	var total VerifyReport
	for _, rep := range reports {
		total.Checked += rep.Checked
		total.Wrong += rep.Wrong
		if total.FirstWrong == "" {
			total.FirstWrong = rep.FirstWrong
		}
	}
	return total
}

package core

import (
	"context"
	"strings"
	"testing"

	"rlibm/internal/fp"
	"rlibm/internal/oracle"
	"rlibm/internal/poly"
)

// TestGenerateProgressiveExhaustive: the RLIBM-PROG end-to-end property —
// one generated polynomial whose truncated prefixes are correctly rounded
// for every input of each narrower level format under all five modes, while
// the full polynomial stays correct for the full sweep.
func TestGenerateProgressiveExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline test; skipped with -short")
	}
	for _, tc := range []struct {
		fn     oracle.Func
		scheme poly.Scheme
	}{
		{oracle.Exp2, poly.Horner},
		{oracle.Exp2, poly.EstrinFMA},
		{oracle.Log2, poly.Knuth},
	} {
		res, err := Generate(context.Background(), Config{
			Fn: tc.fn, Scheme: tc.scheme, Input: test18, Seed: 1,
			Progressive: []ProgressiveLevel{{Bits: 14}, {Bits: 10}},
		})
		if err != nil {
			t.Fatalf("%v/%v: %v", tc.fn, tc.scheme, err)
		}
		t.Log(res.Describe())
		if len(res.Prefixes) != 2 {
			t.Fatalf("%v/%v: %d prefix levels, want 2", tc.fn, tc.scheme, len(res.Prefixes))
		}
		full := res.MaxDegree()
		for li, pl := range res.Prefixes {
			if pl.Degree < 1 || pl.Degree > full {
				t.Errorf("%v/%v level %d: prefix degree %d outside [1, %d]", tc.fn, tc.scheme, li, pl.Degree, full)
			}
			rep := res.VerifyPrefix(li, fp.StandardModes)
			if rep.Checked == 0 {
				t.Errorf("%v/%v level %d: verified nothing", tc.fn, tc.scheme, li)
			}
			if rep.Wrong != 0 {
				t.Errorf("%v/%v level %d: %d/%d wrong: %s", tc.fn, tc.scheme, li, rep.Wrong, rep.Checked, rep.FirstWrong)
			}
		}
		// The full-sweep regression: progressive constraints must not cost
		// full-precision correctness.
		rep := res.Verify(test18, 1, []int{10, 14, 18}, fp.StandardModes)
		if rep.Wrong != 0 {
			t.Fatalf("%v/%v full sweep: %d/%d wrong: %s", tc.fn, tc.scheme, rep.Wrong, rep.Checked, rep.FirstWrong)
		}
	}
}

// TestProgressivePrefixEvalsBound: every piece of a progressive result
// carries one prefix evaluator per level, truncating the piece's own
// coefficients.
func TestProgressivePrefixEvalsBound(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline test; skipped with -short")
	}
	res, err := Generate(context.Background(), Config{
		Fn: oracle.Exp2, Scheme: poly.Horner, Input: test18, Seed: 1,
		Progressive: []ProgressiveLevel{{Bits: 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for pi, p := range res.Pieces {
		if len(p.PrefixEvals) != 1 {
			t.Fatalf("piece %d: %d prefix evaluators, want 1", pi, len(p.PrefixEvals))
		}
		pc := len(p.PrefixEvals[0].Coeffs)
		if pc < 2 || pc > len(p.Coeffs) {
			t.Errorf("piece %d: prefix has %d coefficients, full has %d", pi, pc, len(p.Coeffs))
		}
		for j, c := range p.PrefixEvals[0].Coeffs {
			if c != p.Coeffs[j] {
				t.Errorf("piece %d: prefix coefficient %d diverges from the full vector", pi, j)
			}
		}
	}
}

// TestProgressiveConfigValidation: misconfigured levels are rejected with
// actionable errors before any work happens.
func TestProgressiveConfigValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		want string
	}{
		{
			"level too wide for the input",
			Config{Fn: oracle.Exp2, Scheme: poly.Horner, Input: test18,
				Progressive: []ProgressiveLevel{{Bits: 17}}},
			"needs input width",
		},
		{
			"exponent field does not fit",
			Config{Fn: oracle.Exp2, Scheme: poly.Horner, Input: test18,
				Progressive: []ProgressiveLevel{{Bits: 9}}},
			"level 0",
		},
		{
			"negative prefix degree cap",
			Config{Fn: oracle.Exp2, Scheme: poly.Horner, Input: test18,
				Progressive: []ProgressiveLevel{{Bits: 14, MaxPrefixDegree: -1}}},
			"MaxPrefixDegree",
		},
	} {
		_, err := Generate(context.Background(), tc.cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

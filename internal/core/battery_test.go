package core

import (
	"context"
	"fmt"
	"testing"

	"rlibm/internal/fp"
	"rlibm/internal/oracle"
	"rlibm/internal/poly"
)

// TestSmallWidthBattery is the exhaustive small-format battery: for every
// input width from 10 to 14 bits, generate all four paper schemes in one
// GenerateAll (sharing the collection pass, as rlibm-gen does) and verify
// EVERY input of the format, at every output width from 10 up to the input
// width, under all five IEEE rounding modes plus round-to-odd.
//
// Round-to-odd at narrow widths is a legitimate expectation, not just a
// convenience: the implementation's double lies inside the round-to-odd
// interval of the (Bits+2)-bit target, and that interval contains no w-bit
// grid point for w <= Bits, so every double in it rounds to the same w-bit
// value under RTO too.
//
// With -short the battery keeps one exponential and one logarithm at the
// cheapest and costliest widths; the full run covers the whole ladder.
func TestSmallWidthBattery(t *testing.T) {
	widths := []int{10, 11, 12, 13, 14}
	if testing.Short() {
		widths = []int{10, 14}
	}
	for _, fn := range []oracle.Func{oracle.Exp2, oracle.Log2} {
		for _, bits := range widths {
			t.Run(fmt.Sprintf("%v/%d", fn, bits), func(t *testing.T) {
				in := fp.Format{Bits: bits, ExpBits: 8}
				rs, err := GenerateAll(context.Background(),
					Config{Fn: fn, Input: in, Seed: 1}, poly.PaperSchemes)
				if err != nil {
					t.Fatal(err)
				}
				var outWidths []int
				for w := 10; w <= bits; w++ {
					outWidths = append(outWidths, w)
				}
				for _, res := range rs {
					rep := res.Verify(in, 1, outWidths, fp.AllModes)
					if rep.Checked == 0 {
						t.Fatalf("%v: verified nothing", res.Scheme)
					}
					if rep.Wrong != 0 {
						t.Errorf("%v: %d/%d wrong: %s",
							res.Scheme, rep.Wrong, rep.Checked, rep.FirstWrong)
					}
				}
			})
		}
	}
}

// Package core implements the paper's contribution: the RLibm polynomial
// generation pipeline with fast polynomial evaluation integrated into the
// generate–check–constrain loop (Algorithm 2 and Figure 1 of the CGO 2023
// paper).
//
// Given an elementary function, an input format and an evaluation scheme,
// the pipeline:
//
//  1. computes the round-to-odd oracle result in the (n+2)-bit target format
//     for every enumerated input and its rounding interval in double,
//  2. range-reduces each input and infers the reduced interval through the
//     inverse of the actual double-precision output compensation,
//  3. merges constraints that share a reduced input,
//  4. solves for polynomial coefficients with an exact rational LP over a
//     sampled subset (the randomized RLibm driver),
//  5. rounds the coefficients to double, adapts them for the chosen scheme
//     (Knuth / Estrin / Estrin+FMA), and validates every constraint using
//     the exact instruction sequence the generated library will execute,
//  6. shrinks the rounding intervals of violated inputs and repeats; inputs
//     whose interval empties become special cases.
package core

import (
	"fmt"
	"math"
	"runtime"

	"rlibm/internal/fp"
	"rlibm/internal/obs"
	"rlibm/internal/oracle"
	"rlibm/internal/poly"
)

// Config controls one generation run.
type Config struct {
	// Fn is the elementary function to approximate.
	Fn oracle.Func
	// Scheme is the polynomial evaluation scheme to integrate into the
	// loop (Horner reproduces plain RLibm).
	Scheme poly.Scheme
	// Input is the largest format whose inputs must be handled; the paper
	// uses binary32. Tests use smaller formats for exhaustive runs.
	Input fp.Format
	// Target overrides the oracle rounding format; when zero it defaults
	// to (Input.Bits+2) with Input's exponent width — the RLibm-ALL choice.
	Target fp.Format
	// Degree is the first polynomial degree tried; DegreeMax bounds the
	// escalation when no polynomial is found.
	Degree, DegreeMax int
	// Pieces is the number of sub-domains for piecewise polynomials
	// (1 = single polynomial).
	Pieces int
	// MaxIters bounds the generate–check–constrain iterations per degree
	// (the paper's N).
	MaxIters int
	// SampleSize is the LP constraint sample size; 0 picks a default based
	// on the degree.
	SampleSize int
	// Stride enumerates every Stride-th input bit pattern (1 = exhaustive).
	// Inputs with exact (singleton-interval) results are always included.
	Stride uint64
	// MaxSpecials aborts generation when more special-case inputs than
	// this accumulate (a sign the degree is too low). 0 means 64.
	MaxSpecials int
	// Seed makes the randomized constraint sampling deterministic.
	Seed int64
	// Workers is the number of goroutines sharding the oracle/interval
	// collection pass and the per-iteration full-constraint check, and — when
	// > 1 — also runs GenerateAll's schemes concurrently. 0 picks
	// runtime.GOMAXPROCS(0). Results are bit-identical for every worker
	// count: the parallel phases reduce their outputs in a sorted,
	// shard-independent order.
	Workers int
	// CacheDir, when non-empty, backs the oracle cache with a persistent
	// on-disk store in that directory: results from previous runs are
	// preloaded before collection and fresh results are appended back when
	// the run finishes (see internal/oracle.Store for the segment format).
	// The generated coefficients are bit-identical with and without the
	// cache — the store only replays values the oracle would recompute.
	CacheDir string
	// CacheReadonly opens CacheDir without writing back: warm entries are
	// served but this run's fresh results are discarded at the end. Useful
	// for concurrent runs sharing one directory and for CI replays.
	CacheReadonly bool
	// Store, when non-nil, is a pre-opened persistent oracle store to layer
	// under the cache; it takes precedence over CacheDir and the caller
	// keeps ownership (GenerateAll will not close it).
	Store *oracle.Store
	// Progressive lists narrow output formats whose correctly rounded
	// results must come from a degree-limited prefix of the generated
	// polynomial (RLIBM-PROG): the LP solves one coefficient vector under
	// the combined constraint system — the full degree correct for Target,
	// each level's prefix correct for the level's own round-to-odd target —
	// and the loop searches the smallest satisfying prefix degree per level.
	// Levels should be ordered widest to narrowest. Empty generates a plain
	// (non-progressive) polynomial, exactly as before.
	Progressive []ProgressiveLevel
	// ColdLP disables the warm-started incremental LP engine: every
	// constrain iteration solves its system from scratch, as the pipeline
	// did before the lp.Solver redesign. The generated coefficients are
	// bit-identical either way (the solver canonicalizes its optimum);
	// this switch exists for regression testing and for isolating the
	// warm-start machinery when debugging.
	ColdLP bool
	// Logger, when non-nil, receives leveled progress lines: per-run
	// summaries at Info, inner-loop detail at Debug. Nil silences the
	// pipeline.
	Logger *obs.Logger
	// Metrics, when non-nil, is the registry the pipeline records its
	// counters, gauges and histograms into; nil selects a fresh per-run
	// registry, so repeated runs never accumulate into each other (which
	// also keeps the Stats view per-run). Pass a shared registry (e.g.
	// obs.Default()) to consolidate several runs into one report.
	Metrics *obs.Registry
	// Trace, when non-nil, receives span-style structured events (JSONL):
	// collection and solve phases, per-iteration spans, constrain/demote
	// events. Tracing is write-only instrumentation — enabling it cannot
	// change the generated coefficients.
	Trace *obs.Tracer

	// cache memoizes oracle queries across the whole run — the aligned pass,
	// domain-cut neighbourhoods, demotions and multi-scheme GenerateAll all
	// re-ask for inputs the stride sweep already paid the Ziv escalation for.
	// Shared by pointer across the per-scheme Config copies.
	cache *oracle.Cache
}

func (c *Config) setDefaults() error {
	if err := c.Input.Validate(); err != nil {
		return err
	}
	if c.Target == (fp.Format{}) {
		c.Target = fp.Format{Bits: c.Input.Bits + 2, ExpBits: c.Input.ExpBits}
	}
	if err := c.Target.Validate(); err != nil {
		return err
	}
	if c.Degree == 0 {
		c.Degree = defaultDegree[c.Fn]
	}
	if c.DegreeMax == 0 {
		c.DegreeMax = 6
	}
	if c.DegreeMax < c.Degree {
		c.DegreeMax = c.Degree
	}
	if c.Pieces == 0 {
		c.Pieces = defaultPieces[c.Fn]
	}
	if c.MaxIters == 0 {
		c.MaxIters = 64
	}
	if c.SampleSize == 0 {
		// Small samples keep the exact-rational simplex fast; violated
		// constraints join the sample as iterations proceed (the PLDI'22
		// randomized driver).
		c.SampleSize = 5 * (c.Degree + 1)
	}
	if c.Stride == 0 {
		c.Stride = 1
	}
	if c.MaxSpecials == 0 {
		c.MaxSpecials = 64
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	for i, l := range c.Progressive {
		f := fp.Format{Bits: l.Bits, ExpBits: c.Input.ExpBits}
		if err := f.Validate(); err != nil {
			return fmt.Errorf("progressive level %d: %w", i, err)
		}
		// The level's (Bits+2)-bit round-to-odd target must sit at least two
		// bits below the full target, so the full result's round-to-odd value
		// composes down to the level's (the RLibm-ALL gap argument) and the
		// shared special table stays correct at every level.
		if l.Bits+2 > c.Input.Bits {
			return fmt.Errorf("progressive level %d: %d-bit format needs input width >= %d (have %d)",
				i, l.Bits, l.Bits+2, c.Input.Bits)
		}
		if l.MaxPrefixDegree < 0 {
			return fmt.Errorf("progressive level %d: negative MaxPrefixDegree", i)
		}
	}
	if c.cache == nil {
		c.cache = oracle.NewCache(0)
		if c.Store != nil {
			c.cache.AttachStore(c.Store)
		}
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	return nil
}

// ProgressiveLevel describes one narrow serving format of a progressive
// generation run.
type ProgressiveLevel struct {
	// Bits is the total width of the level's output format; the exponent
	// width follows Config.Input. The level's round-to-odd target is
	// (Bits+2)-bit, which must be at least two bits below the input width.
	Bits int
	// MaxPrefixDegree bounds the prefix-degree search for this level;
	// 0 means up to the full polynomial degree (always reachable — the full
	// polynomial trivially serves every level its target derives from).
	MaxPrefixDegree int
}

// defaultDegree mirrors the degrees the paper's Table 1 reports per
// function.
var defaultDegree = map[oracle.Func]int{
	oracle.Exp:   4,
	oracle.Exp2:  5,
	oracle.Exp10: 5,
	oracle.Log:   4,
	oracle.Log2:  5,
	oracle.Log10: 4,
	oracle.Sinpi: 5,
	oracle.Cospi: 5,
}

// defaultPieces mirrors the piece counts of Table 1.
var defaultPieces = map[oracle.Func]int{
	oracle.Exp:   2,
	oracle.Exp2:  1,
	oracle.Exp10: 1,
	oracle.Log:   2,
	oracle.Log2:  1,
	oracle.Log10: 4,
	// The trigonometric extension approximates sin(pi*m) over the whole
	// quadrant [0, 1/2], which needs piecewise polynomials (as RLibm's
	// sinpi/cospi do).
	oracle.Sinpi: 16,
	oracle.Cospi: 16,
}

// logf emits inner-loop detail at debug level (shown with the CLIs' -v).
func (c *Config) logf(format string, args ...any) {
	c.Logger.Debugf(format, args...)
}

// Domain describes the input region handled by the polynomial path of an
// exponential-family function for a particular target format; inputs at or
// beyond the cuts produce constant round-to-odd results. For logarithms the
// cuts are infinite (every positive finite input takes the polynomial path).
type Domain struct {
	// Lo, Hi bound the open polynomial-path interval (Lo, Hi).
	Lo, Hi float64
	// LoVal, HiVal are the constant round-to-odd results returned at or
	// beyond the respective cut.
	LoVal, HiVal float64
	// TinyLo, TinyHi bound the plateau around zero where f(x) is so close
	// to 1 that the round-to-odd result is pinned to the odd neighbour of 1
	// (a polynomial evaluated in double cannot distinguish such inputs from
	// zero, so they take a constant path — as in RLibm's implementations).
	// Inputs with TinyLo <= x < 0 return TinyLoVal; 0 < x <= TinyHi return
	// TinyHiVal. Both are zero for the logarithm family (no plateau).
	TinyLo, TinyHi       float64
	TinyLoVal, TinyHiVal float64
}

// PolyPath reports whether x is handled by the polynomial pipeline (x = 0
// never is: f(0) is an exact special for every supported function).
func (d Domain) PolyPath(x float64) bool {
	if x == 0 || x <= d.Lo || x >= d.Hi {
		return false
	}
	if d.TinyLo <= x && x <= d.TinyHi {
		return false
	}
	return true
}

// FindDomain computes the polynomial-path domain of fn for the target
// format by bisecting the oracle over the monotone overflow/underflow
// predicates. Logarithms return an unbounded domain.
func FindDomain(fn oracle.Func, target fp.Format) Domain {
	if fn.IsLog() {
		return Domain{Lo: 0, Hi: math.Inf(1)}
	}
	if fn.IsTrig() {
		// The trigonometric reduction is exact for every finite double and
		// far inputs land on the structural points m = 0 or 1/2, so there
		// are no overflow cuts. cos(pi*x) needs a plateau around zero,
		// though: its reduction computes x + 1/2, which absorbs |x| below
		// the ulp of 1/2 — precisely the inputs whose round-to-odd result
		// is pinned to NextDown(1) anyway (the flat top of the cosine).
		d := Domain{Lo: math.Inf(-1), Hi: math.Inf(1)}
		if fn == oracle.Cospi {
			oneDown := target.NextDown(1)
			d.TinyHi = bisectHighest(func(x float64) bool {
				return oracle.Correct(fn, x, target, fp.RTO) >= oneDown
			}, math.Ldexp(1, -140), 0.49)
			d.TinyLo = -d.TinyHi
			d.TinyLoVal, d.TinyHiVal = oneDown, oneDown
		}
		return d
	}
	maxfin := target.MaxFinite()
	minsub := target.MinSubnormal()
	// Overflow plateau: the smallest x with RO(f(x)) == maxfin; every
	// larger x also saturates because f is increasing.
	hi := bisectLowest(func(x float64) bool {
		return oracle.Correct(fn, x, target, fp.RTO) >= maxfin
	}, 0.5, 1e6)
	// Underflow plateau: the largest x with RO(f(x)) <= minsub.
	lo := bisectHighest(func(x float64) bool {
		return oracle.Correct(fn, x, target, fp.RTO) <= minsub
	}, -1e6, -0.5)
	// Near-one plateaus around x = 0: while f(x) stays strictly between
	// 1 and its even 2-ulp neighbours, round-to-odd pins the result to
	// NextUp(1) (above) or NextDown(1) (below).
	oneUp := target.NextUp(1)
	oneDown := target.NextDown(1)
	tinyHi := bisectHighest(func(x float64) bool {
		return oracle.Correct(fn, x, target, fp.RTO) <= oneUp
	}, math.Ldexp(1, -140), 0.5)
	tinyLo := bisectLowest(func(x float64) bool {
		return oracle.Correct(fn, x, target, fp.RTO) >= oneDown
	}, -0.5, -math.Ldexp(1, -140))
	return Domain{
		Lo: lo, Hi: hi, LoVal: minsub, HiVal: maxfin,
		TinyLo: tinyLo, TinyHi: tinyHi, TinyLoVal: oneDown, TinyHiVal: oneUp,
	}
}

// bisectLowest finds the smallest double in [lo, hi] where the monotone
// predicate becomes true (it must be false at lo and true at hi).
func bisectLowest(pred func(float64) bool, lo, hi float64) float64 {
	for i := 0; i < 80 && math.Nextafter(lo, hi) != hi; i++ {
		mid := lo + (hi-lo)/2
		if pred(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// bisectHighest finds the largest double in [lo, hi] where the monotone
// predicate is still true (true at lo, false at hi).
func bisectHighest(pred func(float64) bool, lo, hi float64) float64 {
	for i := 0; i < 80 && math.Nextafter(lo, hi) != hi; i++ {
		mid := lo + (hi-lo)/2
		if pred(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

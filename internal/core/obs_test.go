package core

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"rlibm/internal/fp"
	"rlibm/internal/obs"
	"rlibm/internal/oracle"
	"rlibm/internal/poly"
)

// TestObservabilityDoesNotPerturbGeneration is the write-only guarantee of
// the observability layer: turning on every instrument at once — metrics
// registry, JSONL tracer, debug logger, parallel workers — must leave the
// generated coefficients, specials, and constraint counts bit-for-bit
// identical to a bare run.
func TestObservabilityDoesNotPerturbGeneration(t *testing.T) {
	in := fp.Format{Bits: 12, ExpBits: 8}
	bare, err := Generate(context.Background(), Config{Fn: oracle.Exp2, Scheme: poly.EstrinFMA, Input: in, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	var traceBuf bytes.Buffer
	traced, err := Generate(context.Background(), Config{
		Fn: oracle.Exp2, Scheme: poly.EstrinFMA, Input: in, Seed: 11, Workers: 4,
		Metrics: obs.NewRegistry(),
		Trace:   obs.NewTracer(&traceBuf),
		Logger:  obs.NewLogger(io.Discard, obs.LevelDebug),
	})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "traced", bare, traced)

	// The trace must be non-empty, valid JSONL, and carry the phase spans.
	events := map[string]int{}
	sc := bufio.NewScanner(&traceBuf)
	for sc.Scan() {
		var ev struct {
			Ev string `json:"ev"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("invalid trace line %q: %v", sc.Text(), err)
		}
		events[ev.Ev]++
	}
	for _, want := range []string{"collect", "collect.shards", "scheme.solve", "iteration"} {
		if events[want] == 0 {
			t.Errorf("trace has no %q events (got %v)", want, events)
		}
	}
}

// TestStatsViewFromRegistry: the Stats loop counters are deltas of the
// run's registry instruments, and per-run isolation holds even when two
// runs share one registry.
func TestStatsViewFromRegistry(t *testing.T) {
	in := fp.Format{Bits: 12, ExpBits: 8}
	reg := obs.NewRegistry()
	cfg := Config{Fn: oracle.Exp2, Scheme: poly.Horner, Input: in, Seed: 11, Workers: 1, Metrics: reg}
	first, err := Generate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.LPSolves == 0 || first.Stats.Iterations == 0 {
		t.Fatalf("stats view empty: %+v", first.Stats)
	}
	if first.Stats.LPPivots == 0 {
		t.Fatal("no LP pivots recorded")
	}
	snap := reg.Snapshot()
	p := "core/exp2/horner/"
	if got := snap.Counters[p+"lp_solves"]; got != int64(first.Stats.LPSolves) {
		t.Errorf("registry lp_solves = %d, Stats view = %d", got, first.Stats.LPSolves)
	}
	if got := snap.Counters[p+"lp_pivots"]; got != first.Stats.LPPivots {
		t.Errorf("registry lp_pivots = %d, Stats view = %d", got, first.Stats.LPPivots)
	}
	if snap.Histograms[p+"lp_solve_time_ns"].Count != int64(first.Stats.LPSolves) {
		t.Errorf("lp_solve_time_ns count %d, want %d",
			snap.Histograms[p+"lp_solve_time_ns"].Count, first.Stats.LPSolves)
	}

	// Second run into the SAME registry: registry counters accumulate, the
	// Stats view stays per-run.
	second, err := Generate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.LPSolves != first.Stats.LPSolves {
		t.Errorf("per-run Stats leaked across runs: %d vs %d", second.Stats.LPSolves, first.Stats.LPSolves)
	}
	if got := reg.Snapshot().Counters[p+"lp_solves"]; got != 2*int64(first.Stats.LPSolves) {
		t.Errorf("shared registry lp_solves = %d, want %d", got, 2*first.Stats.LPSolves)
	}
}

// TestRunReport: the -report payload carries per-scheme phase times, LP
// pivot totals and the oracle's Ziv escalation histograms for every
// generated function, and survives a JSON round-trip.
func TestRunReport(t *testing.T) {
	in := fp.Format{Bits: 12, ExpBits: 8}
	reg := obs.NewRegistry()
	rep := NewRunReport("core-test")
	rep.Config["bits"] = "12"
	for _, fn := range []oracle.Func{oracle.Exp2, oracle.Log2} {
		res, err := Generate(context.Background(), Config{Fn: fn, Scheme: poly.Horner, Input: in, Seed: 11, Workers: 1, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		rep.AddResult(res)
	}
	rep.AttachMetrics(reg, obs.Default())
	if !rep.Solved() {
		t.Fatal("all schemes solved but Solved() = false")
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Tool != "core-test" || back.CreatedAt == "" || back.Config["bits"] != "12" {
		t.Errorf("header mangled: %+v", back)
	}
	if len(back.Results) != 2 {
		t.Fatalf("%d results, want 2", len(back.Results))
	}
	for _, sr := range back.Results {
		if !sr.Solved || sr.Error != "" {
			t.Errorf("%s/%s not marked solved", sr.Fn, sr.Scheme)
		}
		if sr.CollectMs <= 0 || sr.SolveMs <= 0 {
			t.Errorf("%s: phase times missing: collect=%v solve=%v", sr.Fn, sr.CollectMs, sr.SolveMs)
		}
		if sr.LPPivots == 0 || sr.LPSolves == 0 {
			t.Errorf("%s: LP totals missing: pivots=%d solves=%d", sr.Fn, sr.LPPivots, sr.LPSolves)
		}
		if len(sr.Degrees) != sr.Pieces {
			t.Errorf("%s: %d degrees for %d pieces", sr.Fn, len(sr.Degrees), sr.Pieces)
		}
	}
	for _, fn := range []string{"exp2", "log2"} {
		h, ok := back.Metrics.Histograms["oracle/"+fn+"/ziv_depth"]
		if !ok || h.Count == 0 {
			t.Errorf("report lacks oracle/%s/ziv_depth escalation histogram (ok=%v count=%d)", fn, ok, h.Count)
		}
		if back.Metrics.Counters["core/"+fn+"/horner/lp_solves"] == 0 {
			t.Errorf("report lacks core/%s/horner/lp_solves", fn)
		}
	}

	// A failure flips Solved() — this is what CI keys off.
	rep.AddFailure("exp", "horner", io.ErrUnexpectedEOF)
	if rep.Solved() {
		t.Error("Solved() must be false after AddFailure")
	}
	if (&RunReport{}).Solved() {
		t.Error("empty report must not count as solved")
	}
	if !strings.Contains(rep.Results[len(rep.Results)-1].Error, "EOF") {
		t.Error("failure cause not recorded")
	}
}

package core

import (
	"fmt"
	"io"
	"strings"

	"rlibm/internal/oracle"
	"rlibm/internal/poly"
)

// PrintTable1 renders the results in the shape of the paper's Table 1:
// per function and configuration, the number of polynomials, their maximum
// degrees, and the number of special-case inputs.
func PrintTable1(w io.Writer, results []*Result) {
	type key struct {
		fn oracle.Func
		s  poly.Scheme
	}
	m := map[key]*Result{}
	for _, r := range results {
		m[key{r.Fn, r.Scheme}] = r
	}
	fmt.Fprintf(w, "%-8s | %-22s | %-22s | %-22s | %-22s\n", "f(x)",
		"RLIBM (horner)", "RLIBM-Knuth", "RLIBM-Estrin", "RLIBM-Estrin+FMA")
	fmt.Fprintf(w, "%-8s | %-22s | %-22s | %-22s | %-22s\n", "",
		"#p deg      #spec", "#p deg      #spec", "#p deg      #spec", "#p deg      #spec")
	fmt.Fprintln(w, strings.Repeat("-", 8+4*25))
	for _, fn := range oracle.Funcs {
		row := fmt.Sprintf("%-8s", fn)
		for _, s := range poly.PaperSchemes {
			r := m[key{fn, s}]
			cell := "N/A"
			if r != nil {
				degs := make([]string, len(r.Pieces))
				for i, p := range r.Pieces {
					degs[i] = fmt.Sprintf("%d", p.Coeffs.Trim().Degree())
				}
				cell = fmt.Sprintf("%-2d %-8s %d", len(r.Pieces), strings.Join(degs, ","), len(r.Specials))
			}
			row += fmt.Sprintf(" | %-22s", cell)
		}
		fmt.Fprintln(w, row)
	}
}

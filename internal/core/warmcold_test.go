package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"rlibm/internal/fp"
	"rlibm/internal/oracle"
	"rlibm/internal/poly"
)

// TestGenerateWarmColdIdentical: the pipeline-level determinism contract of
// the incremental LP engine — running the whole generate–check–constrain
// loop with warm starts enabled produces bit-identical coefficients to the
// same run with Config.ColdLP forcing a from-scratch solve every iteration.
func TestGenerateWarmColdIdentical(t *testing.T) {
	cfgFor := func(cold bool) Config {
		return Config{Fn: oracle.Exp2, Scheme: poly.Horner, Input: fp.Bfloat16, Seed: 3, ColdLP: cold}
	}
	warm, err := Generate(context.Background(), cfgFor(false))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Generate(context.Background(), cfgFor(true))
	if err != nil {
		t.Fatal(err)
	}

	if warm.Stats.WarmResolves == 0 {
		t.Error("warm run reports zero warm resolves; the incremental engine never engaged")
	}
	if cold.Stats.WarmResolves != 0 {
		t.Errorf("ColdLP run reports %d warm resolves, want 0", cold.Stats.WarmResolves)
	}
	if cold.Stats.ColdSolves == 0 {
		t.Error("ColdLP run reports zero cold solves")
	}

	if len(warm.Pieces) != len(cold.Pieces) {
		t.Fatalf("piece count differs: warm %d, cold %d", len(warm.Pieces), len(cold.Pieces))
	}
	for i := range warm.Pieces {
		wc, cc := warm.Pieces[i].Coeffs, cold.Pieces[i].Coeffs
		if len(wc) != len(cc) {
			t.Fatalf("piece %d coefficient count differs: warm %d, cold %d", i, len(wc), len(cc))
		}
		for j := range wc {
			if math.Float64bits(wc[j]) != math.Float64bits(cc[j]) {
				t.Errorf("piece %d coeff %d differs: warm %v (%#x), cold %v (%#x)",
					i, j, wc[j], math.Float64bits(wc[j]), cc[j], math.Float64bits(cc[j]))
			}
		}
	}
}

// TestGenerateCanceled: a canceled context aborts generation with an error
// that unwraps to context.Canceled rather than producing a partial result.
func TestGenerateCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Generate(ctx, Config{Fn: oracle.Exp2, Scheme: poly.Horner, Input: fp.Bfloat16, Seed: 1})
	if err == nil {
		t.Fatalf("Generate with canceled context succeeded: %v", res.Describe())
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not unwrap to context.Canceled", err)
	}
}

// TestGenerateAllCanceled: GenerateAll propagates cancellation from every
// concurrent scheme loop.
func TestGenerateAllCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := GenerateAll(ctx, Config{Fn: oracle.Exp2, Input: fp.Bfloat16, Seed: 1}, poly.PaperSchemes)
	if err == nil {
		t.Fatal("GenerateAll with canceled context succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not unwrap to context.Canceled", err)
	}
}

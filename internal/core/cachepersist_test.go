package core

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"

	"rlibm/internal/fp"
	"rlibm/internal/oracle"
	"rlibm/internal/poly"
)

// sameCoeffs fails the test unless the two results carry bit-identical
// coefficients, piece by piece.
func sameCoeffs(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Pieces) != len(b.Pieces) {
		t.Fatalf("%s: piece count differs: %d vs %d", label, len(a.Pieces), len(b.Pieces))
	}
	for i := range a.Pieces {
		ac, bc := a.Pieces[i].Coeffs, b.Pieces[i].Coeffs
		if len(ac) != len(bc) {
			t.Fatalf("%s: piece %d coefficient count differs: %d vs %d", label, i, len(ac), len(bc))
		}
		for j := range ac {
			if math.Float64bits(ac[j]) != math.Float64bits(bc[j]) {
				t.Errorf("%s: piece %d coeff %d differs: %v (%#x) vs %v (%#x)",
					label, i, j, ac[j], math.Float64bits(ac[j]), bc[j], math.Float64bits(bc[j]))
			}
		}
	}
}

// TestGenerateCachePersistIdentical: the persistent-cache determinism
// contract, extending the warm/cold LP contract of warmcold_test.go to the
// disk layer. The same generation run with no cache, with a cold cache
// directory, with that directory warm, and with it warm but read-only must
// produce bit-identical coefficients AND take the identical LP trajectory
// (same pivot count) — the store replays oracle values, it never steers the
// solve.
func TestGenerateCachePersistIdentical(t *testing.T) {
	dir := t.TempDir()
	gen := func(cacheDir string, readonly bool) *Result {
		cfg := Config{
			Fn: oracle.Exp2, Input: fp.Bfloat16, Seed: 3,
			CacheDir: cacheDir, CacheReadonly: readonly,
		}
		rs, err := GenerateAll(context.Background(), cfg, []poly.Scheme{poly.Horner})
		if err != nil {
			t.Fatal(err)
		}
		return rs[0]
	}

	nocache := gen("", false)
	cold := gen(dir, false)
	warm := gen(dir, false)
	rdonly := gen(dir, true)

	sameCoeffs(t, "cold vs no-cache", cold, nocache)
	sameCoeffs(t, "warm vs no-cache", warm, nocache)
	sameCoeffs(t, "readonly vs no-cache", rdonly, nocache)

	for _, tc := range []struct {
		name string
		res  *Result
	}{{"cold", cold}, {"warm", warm}, {"readonly", rdonly}} {
		if tc.res.Stats.LPPivots != nocache.Stats.LPPivots {
			t.Errorf("%s: %d LP pivots, no-cache run took %d", tc.name, tc.res.Stats.LPPivots, nocache.Stats.LPPivots)
		}
		if tc.res.Stats.Iterations != nocache.Stats.Iterations {
			t.Errorf("%s: %d iterations, no-cache run took %d", tc.name, tc.res.Stats.Iterations, nocache.Stats.Iterations)
		}
	}

	if cold.Stats.OracleHits != nocache.Stats.OracleHits {
		t.Errorf("cold run hit pattern differs from no-cache: %d vs %d", cold.Stats.OracleHits, nocache.Stats.OracleHits)
	}
	// The warm runs answer every oracle query from the preloaded store.
	if warm.Stats.OracleMisses != 0 {
		t.Errorf("warm run missed the cache %d times, want 0", warm.Stats.OracleMisses)
	}
	if rdonly.Stats.OracleMisses != 0 {
		t.Errorf("readonly run missed the cache %d times, want 0", rdonly.Stats.OracleMisses)
	}

	// The read-only run must not have grown the directory: reopening finds
	// exactly what the cold run persisted.
	st, err := oracle.OpenStore(dir, oracle.StoreOptions{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	stats := st.Stats()
	if got, want := int64(stats.LoadedEntries), nocache.Stats.OracleMisses; got != want {
		t.Errorf("directory holds %d entries, cold run computed %d", got, want)
	}
}

// TestGenerateCacheCorruptionRecovery: flipping a byte inside a sealed
// segment must not poison generation — the store quarantines the segment at
// open, the pipeline recomputes what was lost, and the coefficients come out
// identical to the pristine warm run's.
func TestGenerateCacheCorruptionRecovery(t *testing.T) {
	dir := t.TempDir()
	gen := func() *Result {
		cfg := Config{Fn: oracle.Exp2, Input: fp.Bfloat16, Seed: 3, CacheDir: dir}
		rs, err := GenerateAll(context.Background(), cfg, []poly.Scheme{poly.Horner})
		if err != nil {
			t.Fatal(err)
		}
		return rs[0]
	}
	pristine := gen()

	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments persisted (err=%v)", err)
	}
	// Flip a value byte in the middle of the first segment: the CRC catches
	// it even though the record framing stays intact.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	recovered := gen()
	sameCoeffs(t, "recovered vs pristine", recovered, pristine)
	if recovered.Stats.OracleMisses == 0 {
		t.Error("recovered run reports zero oracle misses; the corrupt segment was served")
	}

	q, err := filepath.Glob(filepath.Join(dir, "*.quarantined*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(q) == 0 {
		t.Error("corrupt segment was not quarantined")
	}
	for _, f := range q {
		if filepath.Base(f) == filepath.Base(segs[0]) {
			t.Errorf("quarantined file kept the segment name %s", f)
		}
	}

	// The recovery run resealed what it recomputed: a third run is warm again.
	third := gen()
	sameCoeffs(t, "third vs pristine", third, pristine)
	if third.Stats.OracleMisses != 0 {
		t.Errorf("post-recovery run missed the cache %d times, want 0", third.Stats.OracleMisses)
	}
}

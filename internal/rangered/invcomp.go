package rangered

import (
	"math"

	"rlibm/internal/interval"
)

// Every output compensation in this package is monotone non-decreasing in
// the polynomial output p (multiplication by a positive scale, or addition).
// ReducedIntervals are therefore recovered exactly with a binary search over
// the totally ordered doubles — the robust equivalent of the paper's
// AdjHigher/AdjLower boundary adjustment loops (Figure CalculateL0), immune
// to starting-point error from the approximate inverse.

// ord maps a non-NaN float64 to an ordering-preserving uint64 (unsigned so
// midpoint arithmetic in the binary searches cannot overflow).
func ord(f float64) uint64 {
	b := math.Float64bits(f)
	if b>>63 == 1 {
		return ^b // negative values: reverse order below the positives
	}
	return b | 1<<63
}

// fromOrd is the inverse of ord.
func fromOrd(k uint64) float64 {
	if k>>63 == 1 {
		return math.Float64frombits(k &^ (1 << 63))
	}
	return math.Float64frombits(^k)
}

// lowestWith returns the smallest float64 p (over the whole finite range)
// with f(p) >= target, assuming f is monotone non-decreasing; ok is false if
// no such p exists.
func lowestWith(f func(float64) float64, target float64) (float64, bool) {
	lo, hi := ord(-math.MaxFloat64), ord(math.MaxFloat64)
	if f(fromOrd(hi)) < target {
		return 0, false
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if f(fromOrd(mid)) >= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return fromOrd(lo), true
}

// highestWith returns the largest float64 p with f(p) <= target under the
// same monotonicity assumption.
func highestWith(f func(float64) float64, target float64) (float64, bool) {
	lo, hi := ord(-math.MaxFloat64), ord(math.MaxFloat64)
	if f(fromOrd(lo)) > target {
		return 0, false
	}
	for lo < hi {
		mid := lo + (hi-lo+1)/2
		if f(fromOrd(mid)) <= target {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return fromOrd(lo), true
}

// ReducedInterval computes the exact interval of polynomial outputs p such
// that Compensate(p, k) lands inside the rounding interval iv — the paper's
// CalcRedIntervals step. ok is false when no double output compensates into
// the interval; such inputs become special cases.
func ReducedInterval(red Reduction, k Key, iv interval.Interval) (interval.Interval, bool) {
	oc := func(p float64) float64 { return red.Compensate(p, k) }
	if red.Decreasing != nil && red.Decreasing(k) {
		// Mirror a non-increasing compensation into a non-decreasing one:
		// p -> -oc(p) is monotone non-decreasing, and oc(p) in [lo, hi]
		// iff -oc(p) in [-hi, -lo].
		neg := func(p float64) float64 { return -oc(p) }
		lo, ok := lowestWith(neg, -iv.Hi)
		if !ok {
			return interval.Interval{}, false
		}
		hi, ok := highestWith(neg, -iv.Lo)
		if !ok {
			return interval.Interval{}, false
		}
		if lo > hi {
			return interval.Interval{}, false
		}
		return interval.Interval{Lo: lo, Hi: hi}, true
	}
	lo, ok := lowestWith(oc, iv.Lo)
	if !ok {
		return interval.Interval{}, false
	}
	hi, ok := highestWith(oc, iv.Hi)
	if !ok {
		return interval.Interval{}, false
	}
	if lo > hi {
		return interval.Interval{}, false
	}
	// By construction oc(lo) >= iv.Lo and oc(hi) <= iv.Hi; monotonicity
	// gives oc(p) in [iv.Lo, iv.Hi] for every p in [lo, hi].
	return interval.Interval{Lo: lo, Hi: hi}, true
}

package rangered

import (
	"math"

	"rlibm/internal/oracle"
)

// Key identifies the output-compensation context produced by a range
// reduction: the binade shift and table index for the exponential family, or
// the exponent and table index for the logarithm family.
type Key struct {
	Q int32 // 2^q scaling (exp family) or input exponent e (log family)
	J int32 // table index
}

// ReduceExp2 reduces x for 2^x: n = round(64x), r = x - n/64 (exact in
// double), 2^x = 2^q * T[j] * 2^r with n = 64q + j.
func ReduceExp2(x float64) (float64, Key) {
	n := math.Round(x * 64)
	r := x - n/64
	ni := int32(n)
	return r, Key{Q: ni >> 6, J: ni & 63}
}

// ReduceExp reduces x for e^x with a Cody–Waite subtraction:
// n = round(x*64/ln2), r = (x - n*hi) - n*lo, e^x = 2^q * T[j] * e^r.
func ReduceExp(x float64) (float64, Key) {
	n := math.Round(x * InvLn2x64)
	r := (x - n*Ln2x64Hi) - n*Ln2x64Lo
	ni := int32(n)
	return r, Key{Q: ni >> 6, J: ni & 63}
}

// ReduceExp10 reduces x for 10^x: n = round(x*64/log10(2)),
// r = (x - n*hi) - n*lo, 10^x = 2^q * T[j] * 10^r.
func ReduceExp10(x float64) (float64, Key) {
	n := math.Round(x * InvLog10Of2x64)
	r := (x - n*Log10Of2x64Hi) - n*Log10Of2x64Lo
	ni := int32(n)
	return r, Key{Q: ni >> 6, J: ni & 63}
}

// CompensateExpFamily computes p * T[j] * 2^q with a single rounding: the
// scale T[j]*2^q is built exactly by exponent-field arithmetic (T[j] is in
// [1,2) and q stays far from the double exponent limits for every supported
// input domain).
func CompensateExpFamily(p float64, k Key) float64 {
	return p * expScale(k)
}

func expScale(k Key) float64 {
	return math.Float64frombits(exp2TBits[k.J] + uint64(int64(k.Q))<<52)
}

// ReduceLog reduces a positive finite normal-double x for the logarithm
// family: x = 2^e * m with m in [1,2), F = 1 + j/128 from m's top seven
// fraction bits, f = (m - F) * (1/F) with the correctly rounded reciprocal
// table. The same reduced input serves ln, log2 and log10; they differ in
// output compensation.
func ReduceLog(x float64) (float64, Key) {
	bits := math.Float64bits(x)
	e := int32(bits>>52) - 1023
	j := int32(bits>>45) & 127
	m := math.Float64frombits(bits&0x000FFFFFFFFFFFFF | 0x3FF0000000000000)
	F := 1 + float64(j)/128
	f := (m - F) * RecipT[j]
	return f, Key{Q: e, J: j}
}

// CompensateLn computes ln x = e*ln2 + (L[j] + p) with one fused operation.
func CompensateLn(p float64, k Key) float64 {
	return math.FMA(float64(k.Q), Ln2, LnT[k.J]+p)
}

// CompensateLog2 computes log2 x = (e + L2[j]) + p; e + L2[j] is exact for
// j = 0 and rounds once otherwise.
func CompensateLog2(p float64, k Key) float64 {
	return (float64(k.Q) + Log2T[k.J]) + p
}

// CompensateLog10 computes log10 x = e*log10(2) + (L10[j] + p).
func CompensateLog10(p float64, k Key) float64 {
	return math.FMA(float64(k.Q), Log10Of2, Log10T[k.J]+p)
}

// Reduction bundles the reduce / compensate / approximate-inverse functions
// of one elementary function for the generator.
type Reduction struct {
	Fn         oracle.Func
	Reduce     func(x float64) (float64, Key)
	Compensate func(p float64, k Key) float64
	// InvApprox estimates the p with Compensate(p, k) ~= v; the exact
	// bounds are recovered by ReducedInterval's monotone search.
	InvApprox func(v float64, k Key) float64
	// PZero is the exact polynomial value at a zero reduced input: 1 for
	// the exponential family (2^0), 0 for the logarithms (log(1)). Inputs
	// that reduce to exactly zero are served by Compensate(PZero, key)
	// structurally — the table entry already carries the correctly rounded
	// information — instead of burdening the polynomial with singleton
	// constraints that coefficient adaptation cannot hit bit-exactly.
	PZero float64
	// PExact generalizes PZero: it reports reduced inputs whose polynomial
	// value is structurally exact (r = 0 everywhere; additionally r = 1/2
	// for the trigonometric reductions). When nil, only r == 0 with value
	// PZero is structural.
	PExact func(r float64) (float64, bool)
	// Decreasing reports whether the output compensation is monotone
	// non-increasing in p for the given key (the negative quadrants of the
	// trigonometric reductions). nil means always increasing.
	Decreasing func(k Key) bool
}

// ExactPoint reports the structural polynomial value at reduced input r, if
// any.
func (red *Reduction) ExactPoint(r float64) (float64, bool) {
	if red.PExact != nil {
		return red.PExact(r)
	}
	if r == 0 {
		return red.PZero, true
	}
	return 0, false
}

// For returns the Reduction for the given elementary function.
func For(fn oracle.Func) Reduction {
	switch fn {
	case oracle.Exp:
		return Reduction{
			Fn:         fn,
			PZero:      1,
			Reduce:     ReduceExp,
			Compensate: CompensateExpFamily,
			InvApprox:  func(v float64, k Key) float64 { return v / expScale(k) },
		}
	case oracle.Exp2:
		return Reduction{
			Fn:         fn,
			PZero:      1,
			Reduce:     ReduceExp2,
			Compensate: CompensateExpFamily,
			InvApprox:  func(v float64, k Key) float64 { return v / expScale(k) },
		}
	case oracle.Exp10:
		return Reduction{
			Fn:         fn,
			PZero:      1,
			Reduce:     ReduceExp10,
			Compensate: CompensateExpFamily,
			InvApprox:  func(v float64, k Key) float64 { return v / expScale(k) },
		}
	case oracle.Log:
		return Reduction{
			Fn:         fn,
			Reduce:     ReduceLog,
			Compensate: CompensateLn,
			InvApprox:  func(v float64, k Key) float64 { return v - float64(k.Q)*Ln2 - LnT[k.J] },
		}
	case oracle.Log2:
		return Reduction{
			Fn:         fn,
			Reduce:     ReduceLog,
			Compensate: CompensateLog2,
			InvApprox:  func(v float64, k Key) float64 { return v - float64(k.Q) - Log2T[k.J] },
		}
	case oracle.Log10:
		return Reduction{
			Fn:         fn,
			Reduce:     ReduceLog,
			Compensate: CompensateLog10,
			InvApprox:  func(v float64, k Key) float64 { return v - float64(k.Q)*Log10Of2 - Log10T[k.J] },
		}
	case oracle.Sinpi, oracle.Cospi:
		return forTrig(fn)
	}
	panic("rangered: unknown function")
}

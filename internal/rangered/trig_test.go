package rangered

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"rlibm/internal/interval"
	"rlibm/internal/oracle"
)

// TestReduceSinpiExact: the decomposition x = 2k + [sign/m] is exact — the
// identity sin(pi*x) = sign*sin(pi*m) holds as real numbers, checked with
// the arbitrary-precision oracle.
func TestReduceSinpiExact(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for i := 0; i < 2000; i++ {
		x := float64(float32((rng.Float64()*2 - 1) * math.Ldexp(1, rng.Intn(30))))
		m, k := ReduceSinpi(x)
		if m < 0 || m > 0.5 {
			t.Fatalf("ReduceSinpi(%g): m = %g out of [0, 1/2]", x, m)
		}
		if k.Q != 1 && k.Q != -1 {
			t.Fatalf("ReduceSinpi(%g): sign %d", x, k.Q)
		}
		// Compare sin(pi*x) and sign*sin(pi*m) at high precision.
		a := oracle.Sinpi.EvalBig(x, 120)
		b := oracle.Sinpi.EvalBig(m, 120)
		if k.Q < 0 {
			b.Neg(b)
		}
		diff := new(big.Float).SetPrec(140).Sub(a, b)
		if diff.Sign() != 0 {
			bound := new(big.Float).SetPrec(140).Abs(a)
			bound.SetMantExp(bound, -100)
			if diff.Abs(diff).Cmp(bound) > 0 && a.Sign() != 0 {
				t.Fatalf("ReduceSinpi(%g): identity violated (m=%g sign=%d)", x, m, k.Q)
			}
		}
	}
}

func TestReduceCospiQuadrants(t *testing.T) {
	cases := []struct {
		x    float64
		m    float64
		sign int32
	}{
		{0, 0.5, 1},     // cos(0) = sin(pi/2)
		{0.25, 0.25, 1}, // cos(pi/4) = sin(pi/4)... reduced of 0.75 -> 1-0.75
		{1, 0.5, -1},    // cos(pi) = -1
		{0.5, 0, -1},    // cos(pi/2) = -sin(0) (sign of zero is immaterial)
	}
	for _, tc := range cases {
		m, k := ReduceCospi(tc.x)
		if m != tc.m {
			t.Errorf("ReduceCospi(%g): m = %g, want %g", tc.x, m, tc.m)
		}
		if m != 0 && k.Q != tc.sign { // at m=0 the sign is irrelevant
			t.Errorf("ReduceCospi(%g): sign = %d, want %d", tc.x, k.Q, tc.sign)
		}
	}
}

func TestCompensateSign(t *testing.T) {
	if got := CompensateSign(0.25, Key{Q: 1}); got != 0.25 {
		t.Errorf("positive sign: %g", got)
	}
	if got := CompensateSign(0.25, Key{Q: -1}); got != -0.25 {
		t.Errorf("negative sign: %g", got)
	}
}

func TestTrigExactPoints(t *testing.T) {
	red := For(oracle.Sinpi)
	if v, ok := red.ExactPoint(0); !ok || v != 0 {
		t.Errorf("ExactPoint(0) = %g, %v", v, ok)
	}
	if v, ok := red.ExactPoint(0.5); !ok || v != 1 {
		t.Errorf("ExactPoint(0.5) = %g, %v", v, ok)
	}
	if _, ok := red.ExactPoint(0.25); ok {
		t.Error("ExactPoint(0.25) should not be structural")
	}
	// The six paper functions keep the r==0-only behaviour.
	redExp := For(oracle.Exp2)
	if v, ok := redExp.ExactPoint(0); !ok || v != 1 {
		t.Errorf("exp2 ExactPoint(0) = %g, %v", v, ok)
	}
	if _, ok := redExp.ExactPoint(0.001); ok {
		t.Error("exp2 ExactPoint(0.001) should not be structural")
	}
}

// TestReducedIntervalDecreasing: the sign=-1 quadrant of the trig
// compensation is monotone decreasing; the recovered interval must still be
// the exact preimage.
func TestReducedIntervalDecreasing(t *testing.T) {
	red := For(oracle.Sinpi)
	k := Key{Q: -1}
	// Result interval around -0.6 (sign=-1, p around +0.6).
	iv := interval.Interval{Lo: -0.600000001, Hi: -0.599999999}
	got, ok := ReducedInterval(red, k, iv)
	if !ok {
		t.Fatal("no reduced interval")
	}
	if !(got.Lo <= 0.6 && 0.6 <= got.Hi) {
		t.Fatalf("reduced interval %v does not contain 0.6", got)
	}
	for _, p := range []float64{got.Lo, got.Hi} {
		if oc := CompensateSign(p, k); oc < iv.Lo || oc > iv.Hi {
			t.Fatalf("boundary %g compensates to %g outside %v", p, oc, iv)
		}
	}
	if oc := CompensateSign(math.Nextafter(got.Hi, 2), k); oc >= iv.Lo {
		t.Fatal("interval not tight above")
	}
	if oc := CompensateSign(math.Nextafter(got.Lo, -2), k); oc <= iv.Hi {
		t.Fatal("interval not tight below")
	}
}

// Package rangered implements the range reductions and output compensation
// functions of the six elementary functions, in double precision, exactly as
// the generated library executes them. The polynomial generator validates
// candidates through this same code, which is what lets RLibm treat range
// reduction and output compensation as part of the constraint system rather
// than as separately analyzed error sources.
//
// Reductions used (the RLibm family's table-based schemes):
//
//	e^x   = 2^q * T[j] * p(r),  r = x - n*(ln2/64),        n = 64q + j
//	2^x   = 2^q * T[j] * p(r),  r = x - n/64,              n = 64q + j
//	10^x  = 2^q * T[j] * p(r),  r = x - n*(log10(2)/64),   n = 64q + j
//	ln x    = e*ln2    + L[j] + p(f),  x = 2^e*m, F = 1+j/128, f = (m-F)/F
//	log2 x  = (e + L2[j]) + p(f)
//	log10 x = e*log10(2) + L10[j] + p(f)
//
// where T[j] = 2^(j/64) and L*[j] are correctly rounded double tables, and
// the polynomial p approximates 2^r (10^r, e^r) or log(1+f) over the tiny
// reduced domain.
package rangered

import (
	"math"
	"math/big"

	"rlibm/internal/fp"
	"rlibm/internal/oracle"
)

// Exported double-precision constants (initialized from the arbitrary-
// precision oracle constants at package load).
var (
	// Ln2 is ln(2) correctly rounded to double.
	Ln2 float64
	// Log10Of2 is log10(2) correctly rounded to double.
	Log10Of2 float64
	// InvLn2x64 is 64/ln(2) correctly rounded to double.
	InvLn2x64 float64
	// InvLog10Of2x64 is 64/log10(2) correctly rounded to double.
	InvLog10Of2x64 float64
	// Ln2x64Hi/Ln2x64Lo form a Cody–Waite split of ln(2)/64: Hi carries 33
	// significand bits so n*Hi is exact for |n| < 2^20.
	Ln2x64Hi, Ln2x64Lo float64
	// Log10Of2x64Hi/Lo form the equivalent split of log10(2)/64.
	Log10Of2x64Hi, Log10Of2x64Lo float64
)

// Tables with 64 entries (exponential family) and 128 entries (log family).
var (
	// Exp2T[j] = 2^(j/64) correctly rounded to double.
	Exp2T [64]float64
	// exp2TBits caches the bit patterns for the fast 2^q scaling.
	exp2TBits [64]uint64
	// RecipT[j] = 1/(1+j/128) correctly rounded to double.
	RecipT [128]float64
	// LnT[j] = ln(1+j/128), Log2T[j] = log2(1+j/128), Log10T[j] =
	// log10(1+j/128), each correctly rounded to double.
	LnT, Log2T, Log10T [128]float64
)

// split33 is a 45-bit format whose 33-bit significand defines the Cody–Waite
// high parts.
var split33 = fp.Format{Bits: 44, ExpBits: 11}

func init() {
	const prec = 120
	ln2, ln10, log210 := oracle.Constants(prec)

	Ln2, _ = ln2.Float64()
	log102 := new(big.Float).SetPrec(prec).Quo(big.NewFloat(1).SetPrec(prec), log210)
	Log10Of2, _ = log102.Float64()

	sixtyFour := big.NewFloat(64).SetPrec(prec)
	inv := new(big.Float).SetPrec(prec).Quo(sixtyFour, ln2)
	InvLn2x64, _ = inv.Float64()
	inv.Quo(sixtyFour, log102)
	InvLog10Of2x64, _ = inv.Float64()

	Ln2x64Hi, Ln2x64Lo = codyWaite(new(big.Float).SetPrec(prec).Quo(ln2, sixtyFour))
	Log10Of2x64Hi, Log10Of2x64Lo = codyWaite(new(big.Float).SetPrec(prec).Quo(log102, sixtyFour))

	for j := 0; j < 64; j++ {
		Exp2T[j] = f64(oracle.Exp2.EvalBig(float64(j)/64, 80))
		exp2TBits[j] = math.Float64bits(Exp2T[j])
	}
	for j := 0; j < 128; j++ {
		f := 1 + float64(j)/128
		RecipT[j] = 1 / f // correctly rounded division
		if j == 0 {
			continue // tables are zero at j=0
		}
		LnT[j] = f64(oracle.Log.EvalBig(f, 80))
		Log2T[j] = f64(oracle.Log2.EvalBig(f, 80))
		Log10T[j] = f64(oracle.Log10.EvalBig(f, 80))
	}
	_ = ln10
}

// codyWaite splits a positive constant into a 33-bit high part and a double
// low part so products n*hi with |n| < 2^20 are exact.
func codyWaite(v *big.Float) (hi, lo float64) {
	hi = split33.RoundBigFloat(v, fp.RNE)
	rest := new(big.Float).SetPrec(v.Prec()).Sub(v, new(big.Float).SetFloat64(hi))
	lo, _ = rest.Float64()
	return hi, lo
}

// f64 rounds a big.Float to the nearest double.
func f64(x *big.Float) float64 {
	v, _ := x.Float64()
	return v
}

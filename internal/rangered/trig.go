package rangered

import (
	"math"

	"rlibm/internal/oracle"
)

// Trigonometric extension (the paper's announced future work, present in
// RLibm): sin(pi*x) and cos(pi*x). Their appeal for the RLibm approach is
// that the entire reduction is EXACT in double precision for every finite
// double:
//
//	u = x mod 2            (exact: dyadic)
//	sign, u: u in [1,2) -> sign=-1, u-=1       (exact)
//	m = u > 1/2 ? 1-u : u  (exact; m in [0, 1/2])
//	sin(pi*x)  = sign * g(m),  g(m) = sin(pi*m)
//	cos(pi*x)  = sin(pi*(x+1/2))  (x+1/2 exact whenever x is not already a
//	                               half-integer, which is the only case that
//	                               reaches the polynomial path)
//
// Output compensation is a plain (exact) sign application, so it is
// monotone increasing for sign=+1 and decreasing for sign=-1; the reduced
// interval machinery handles both directions.

// ReduceSinpi reduces x for sin(pi*x). The key's Q field carries the sign.
// Negative inputs reduce through the odd symmetry: adding 2 to a tiny
// negative remainder would round to exactly 2 and lose the input, while
// every step below is exact in double.
func ReduceSinpi(x float64) (float64, Key) {
	sign := int32(1)
	if x < 0 {
		sign = -1
		x = -x
	}
	u := math.Mod(x, 2)
	if u >= 1 {
		sign = -sign
		u -= 1
	}
	if u > 0.5 {
		u = 1 - u
	}
	return u, Key{Q: sign}
}

// ReduceCospi reduces x for cos(pi*x) through the even symmetry — never by
// shifting the argument (x + 1/2 absorbs the shift for |x| >= 2^52 and
// loses tiny |x|):
//
//	w in [0, 1/2] with cos(pi*x) = sign * cos(pi*w)   (every step exact)
//	cos(pi*w) = sin(pi*(1/2 - w))
//
// The final 1/2 - w is exact for every input outside cospi's near-zero
// plateau: a nonzero w is at least the input format's granularity at its
// magnitude, far above the 2^-54 threshold where the subtraction rounds.
func ReduceCospi(x float64) (float64, Key) {
	u := math.Mod(math.Abs(x), 2)
	if u > 1 {
		u = 2 - u
	}
	sign := int32(1)
	if u > 0.5 {
		sign = -1
		u = 1 - u
	}
	return 0.5 - u, Key{Q: sign}
}

// CompensateSign applies the quadrant sign: the whole output compensation of
// the trigonometric reductions.
func CompensateSign(p float64, k Key) float64 {
	if k.Q < 0 {
		return -p
	}
	return p
}

// trigExactPoint reports the structural polynomial values at the exact
// reduced points: g(0) = 0 and g(1/2) = 1.
func trigExactPoint(r float64) (float64, bool) {
	switch r {
	case 0:
		return 0, true
	case 0.5:
		return 1, true
	}
	return 0, false
}

// forTrig returns the Reduction for sinpi or cospi.
func forTrig(fn oracle.Func) Reduction {
	reduce := ReduceSinpi
	if fn == oracle.Cospi {
		reduce = ReduceCospi
	}
	return Reduction{
		Fn:         fn,
		Reduce:     reduce,
		Compensate: CompensateSign,
		InvApprox:  func(v float64, k Key) float64 { return CompensateSign(v, k) },
		PExact:     trigExactPoint,
		Decreasing: func(k Key) bool { return k.Q < 0 },
	}
}

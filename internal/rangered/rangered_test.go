package rangered

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"rlibm/internal/interval"
	"rlibm/internal/oracle"
)

func TestTables(t *testing.T) {
	if Exp2T[0] != 1 {
		t.Errorf("Exp2T[0] = %g, want 1", Exp2T[0])
	}
	for j := 0; j < 64; j++ {
		want := math.Exp2(float64(j) / 64)
		if d := math.Abs(Exp2T[j] - want); d > 2*ulp64(want) {
			t.Errorf("Exp2T[%d] = %.17g, math says %.17g", j, Exp2T[j], want)
		}
	}
	for j := 0; j < 128; j++ {
		f := 1 + float64(j)/128
		if RecipT[j] != 1/f {
			t.Errorf("RecipT[%d] = %g, want %g", j, RecipT[j], 1/f)
		}
		if j == 0 {
			if LnT[0] != 0 || Log2T[0] != 0 || Log10T[0] != 0 {
				t.Error("log tables must be zero at j=0")
			}
			continue
		}
		// Go's math.Log2 is itself off by >10 ulps in places, so the
		// comparison is deliberately loose; tight accuracy is covered by the
		// oracle package's convergence tests.
		if d := math.Abs(LnT[j] - math.Log(f)); d > 32*ulp64(math.Log(f)) {
			t.Errorf("LnT[%d] = %.17g, math says %.17g", j, LnT[j], math.Log(f))
		}
		// Go's math.Log2 is tens of ulps off near 1; cross-check the log2
		// table against the (accurate) math.Log instead.
		if d := math.Abs(Log2T[j] - math.Log(f)/math.Ln2); d > 4*ulp64(Log2T[j]) {
			t.Errorf("Log2T[%d] = %.17g, ln/ln2 says %.17g", j, Log2T[j], math.Log(f)/math.Ln2)
		}
	}
	if math.Abs(Ln2-math.Ln2) > 0 {
		t.Errorf("Ln2 = %.17g, math.Ln2 = %.17g", Ln2, math.Ln2)
	}
	if math.Abs(Log10Of2*InvLog10Of2x64-64) > 1e-13 {
		t.Error("log10(2) constants inconsistent")
	}
}

func ulp64(v float64) float64 {
	return math.Abs(math.Nextafter(v, math.Inf(1)) - v)
}

// TestCodyWaiteExactness: n*hi must be exact for the n produced by the
// reductions (|n| < 2^20).
func TestCodyWaiteExactness(t *testing.T) {
	for _, hi := range []float64{Ln2x64Hi, Log10Of2x64Hi} {
		hr := new(big.Rat).SetFloat64(hi)
		for _, n := range []float64{1, 3, 1023, 8191, 65535, 524287, -524287, -8191} {
			prod := n * hi
			want := new(big.Rat).Mul(new(big.Rat).SetFloat64(n), hr)
			if new(big.Rat).SetFloat64(prod).Cmp(want) != 0 {
				t.Errorf("n*hi not exact for n=%g, hi=%.20g", n, hi)
			}
		}
	}
	// hi + lo reconstructs the constant to quad-ish precision.
	if math.Abs((Ln2x64Hi+Ln2x64Lo)*64-math.Ln2) > 1e-15 {
		t.Error("ln2/64 split inconsistent")
	}
}

// TestReduceExp2Exact: the exp2 reduction is exact — x == n/64 + r as
// rationals.
func TestReduceExp2Exact(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 20000; i++ {
		x := float64(float32((rng.Float64()*2 - 1) * 149))
		r, k := ReduceExp2(x)
		n := int64(k.Q)*64 + int64(k.J)
		sum := new(big.Rat).SetFrac64(n, 64)
		sum.Add(sum, new(big.Rat).SetFloat64(r))
		if sum.Cmp(new(big.Rat).SetFloat64(x)) != 0 {
			t.Fatalf("exp2 reduction inexact at x=%g: n=%d r=%g", x, n, r)
		}
		if math.Abs(r) > 1.0/128+1e-12 {
			t.Fatalf("reduced input %g out of range at x=%g", r, x)
		}
		if k.J < 0 || k.J > 63 {
			t.Fatalf("bad j=%d", k.J)
		}
	}
}

// TestReduceExpAccuracy: r is within a couple of ulps of the ideal
// x - n*ln2/64, and stays in the reduced range.
func TestReduceExpAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	ln2big, _, _ := oracle.Constants(200)
	ln2r, _ := new(big.Float).SetPrec(200).Set(ln2big).Rat(nil)
	for i := 0; i < 5000; i++ {
		x := float64(float32((rng.Float64()*2 - 1) * 103))
		r, k := ReduceExp(x)
		n := int64(k.Q)*64 + int64(k.J)
		ideal := new(big.Rat).SetFloat64(x)
		step := new(big.Rat).Mul(new(big.Rat).SetFrac64(n, 64), ln2r)
		ideal.Sub(ideal, step)
		got := new(big.Rat).SetFloat64(r)
		diff, _ := new(big.Rat).Sub(got, ideal).Float64()
		if math.Abs(diff) > 1e-17 {
			t.Fatalf("exp reduction error %g at x=%g", diff, x)
		}
		if math.Abs(r) > math.Ln2/128*1.01 {
			t.Fatalf("reduced input %g out of range at x=%g (n=%d)", r, x, n)
		}
	}
}

// TestReduceLogDecomposition: x = 2^e * (F + f*F) up to the one rounding in
// f, and the compensations reassemble the logarithm to double accuracy.
func TestReduceLogDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for i := 0; i < 20000; i++ {
		x := float64(float32(math.Ldexp(1+rng.Float64(), rng.Intn(250)-125)))
		f, k := ReduceLog(x)
		if f < 0 || f >= 1.0/128+1e-10 {
			t.Fatalf("reduced log input %g out of [0, 1/128) at x=%g", f, x)
		}
		F := 1 + float64(k.J)/128
		m := math.Ldexp(x, -int(k.Q))
		if !(m >= 1 && m < 2) {
			t.Fatalf("bad mantissa %g for x=%g", m, x)
		}
		if math.Abs(F*(1+f)-m) > 1e-14 {
			t.Fatalf("decomposition off: F=%g f=%g m=%g", F, f, m)
		}
	}
}

// TestCompensationRoundTrip: feeding the correctly rounded value of the
// reduced function into the output compensation reproduces the elementary
// function to a couple of double ulps.
func TestCompensationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	cases := []struct {
		fn  oracle.Func
		gen func() float64
	}{
		{oracle.Exp, func() float64 { return float64(float32((rng.Float64()*2 - 1) * 80)) }},
		{oracle.Exp2, func() float64 { return float64(float32((rng.Float64()*2 - 1) * 120)) }},
		{oracle.Exp10, func() float64 { return float64(float32((rng.Float64()*2 - 1) * 35)) }},
		{oracle.Log, func() float64 { return float64(float32(math.Ldexp(1+rng.Float64(), rng.Intn(200)-100))) }},
		{oracle.Log2, func() float64 { return float64(float32(math.Ldexp(1+rng.Float64(), rng.Intn(200)-100))) }},
		{oracle.Log10, func() float64 { return float64(float32(math.Ldexp(1+rng.Float64(), rng.Intn(200)-100))) }},
	}
	for _, tc := range cases {
		red := For(tc.fn)
		for i := 0; i < 400; i++ {
			x := tc.gen()
			r, k := red.Reduce(x)
			// p = high-precision value of the reduced function at r.
			var p float64
			switch tc.fn {
			case oracle.Exp:
				p = f64(oracle.Exp.EvalBig(r, 80))
			case oracle.Exp2:
				p = f64(oracle.Exp2.EvalBig(r, 80))
			case oracle.Exp10:
				p = f64(oracle.Exp10.EvalBig(r, 80))
			case oracle.Log:
				p = f64(oracle.Log.EvalBig(1+r, 80))
			case oracle.Log2:
				p = f64(oracle.Log2.EvalBig(1+r, 80))
			case oracle.Log10:
				p = f64(oracle.Log10.EvalBig(1+r, 80))
			}
			got := red.Compensate(p, k)
			want := f64(tc.fn.EvalBig(x, 80))
			if math.IsInf(want, 0) || want == 0 {
				continue
			}
			// The log-family compensation can amplify half-ulp table error
			// when e and L[j] cancel; the LP layer absorbs exactly this, so
			// the smoke test here is deliberately loose.
			tol := 4*ulp64(want) + 2*ulp64(math.Abs(float64(k.Q))+1)
			if math.Abs(got-want) > tol {
				t.Fatalf("%v(%g): compensated %.17g, reference %.17g", tc.fn, x, got, want)
			}
		}
	}
}

func TestOrdRoundTrip(t *testing.T) {
	vals := []float64{0, 1, -1, math.MaxFloat64, -math.MaxFloat64, 4.9e-324, -4.9e-324, 1.5e-300}
	for _, v := range vals {
		if got := fromOrd(ord(v)); got != v {
			t.Errorf("fromOrd(ord(%g)) = %g", v, got)
		}
	}
	// Ordering is monotone.
	sorted := []float64{-math.MaxFloat64, -1, -4.9e-324, 0, 4.9e-324, 1, math.MaxFloat64}
	for i := 0; i+1 < len(sorted); i++ {
		if !(ord(sorted[i]) < ord(sorted[i+1])) {
			t.Errorf("ord not monotone between %g and %g", sorted[i], sorted[i+1])
		}
	}
}

func TestMonotoneSearch(t *testing.T) {
	f := func(p float64) float64 { return 3*p + 1 }
	lo, ok := lowestWith(f, 10)
	if !ok || f(lo) < 10 || f(math.Nextafter(lo, math.Inf(-1))) >= 10 {
		t.Errorf("lowestWith broken: lo=%g f(lo)=%g", lo, f(lo))
	}
	hi, ok := highestWith(f, 10)
	if !ok || f(hi) > 10 || f(math.Nextafter(hi, math.Inf(1))) <= 10 {
		t.Errorf("highestWith broken: hi=%g f(hi)=%g", hi, f(hi))
	}
	if _, ok := lowestWith(func(p float64) float64 { return -1 }, 10); ok {
		t.Error("lowestWith should fail when unreachable")
	}
	if _, ok := highestWith(func(p float64) float64 { return 11 }, 10); ok {
		t.Error("highestWith should fail when unreachable")
	}
}

// TestReducedIntervalExact: the recovered [lo, hi] is the exact preimage of
// the rounding interval under the real double-precision output compensation.
func TestReducedIntervalExact(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	for _, fn := range oracle.Funcs {
		red := For(fn)
		for i := 0; i < 300; i++ {
			var x float64
			if fn.IsLog() {
				x = float64(float32(math.Ldexp(1+rng.Float64(), rng.Intn(100)-50)))
			} else {
				x = float64(float32((rng.Float64()*2 - 1) * 30))
			}
			_, k := red.Reduce(x)
			// Build an interval around a known output.
			p0 := 1 + rng.Float64()*0.01
			if fn.IsLog() {
				p0 = rng.Float64() * 0.005
			}
			v := red.Compensate(p0, k)
			delta := math.Abs(v)*1e-9 + 1e-300
			iv := interval.Interval{Lo: v - delta, Hi: v + delta}
			got, ok := ReducedInterval(red, k, iv)
			if !ok {
				t.Fatalf("%v: no reduced interval for %v (key %+v)", fn, iv, k)
			}
			if !(got.Lo <= p0 && p0 <= got.Hi) {
				t.Fatalf("%v: p0=%g outside reduced interval %v", fn, p0, got)
			}
			// Exactness at the boundaries.
			if oc := red.Compensate(got.Lo, k); oc < iv.Lo || oc > iv.Hi {
				t.Fatalf("%v: OC(lo) = %g outside %v", fn, oc, iv)
			}
			if oc := red.Compensate(got.Hi, k); oc < iv.Lo || oc > iv.Hi {
				t.Fatalf("%v: OC(hi) = %g outside %v", fn, oc, iv)
			}
			if oc := red.Compensate(math.Nextafter(got.Lo, math.Inf(-1)), k); oc >= iv.Lo {
				t.Fatalf("%v: OC just below lo still inside: %g", fn, oc)
			}
			if oc := red.Compensate(math.Nextafter(got.Hi, math.Inf(1)), k); oc <= iv.Hi {
				t.Fatalf("%v: OC just above hi still inside: %g", fn, oc)
			}
		}
	}
}

func TestExpScaleMatchesLdexp(t *testing.T) {
	for q := int32(-300); q <= 300; q += 7 {
		for j := int32(0); j < 64; j += 5 {
			got := expScale(Key{Q: q, J: j})
			want := math.Ldexp(Exp2T[j], int(q))
			if got != want {
				t.Fatalf("expScale(%d,%d) = %g, Ldexp = %g", q, j, got, want)
			}
		}
	}
}

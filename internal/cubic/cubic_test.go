package cubic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKnownRoots(t *testing.T) {
	tests := []struct {
		a, b, c, d float64
		want       []float64
	}{
		{1, 0, 0, -8, []float64{2}},         // x^3 = 8
		{1, -6, 11, -6, []float64{1, 2, 3}}, // (x-1)(x-2)(x-3)
		{1, 0, -1, 0, []float64{-1, 0, 1}},  // x(x-1)(x+1)
		{1, -3, 3, -1, []float64{1}},        // (x-1)^3
		{1, -5, 8, -4, []float64{1, 2}},     // (x-1)(x-2)^2
		{2, 0, 0, 0, []float64{0}},          // 2x^3
		{-1, 0, 0, 27, []float64{3}},        // -x^3+27
		{1, 0, 2, 0, []float64{0}},          // x(x^2+2): one real root
	}
	for _, tc := range tests {
		got, err := RealRoots(tc.a, tc.b, tc.c, tc.d)
		if err != nil {
			t.Fatalf("RealRoots(%g,%g,%g,%g): %v", tc.a, tc.b, tc.c, tc.d, err)
		}
		if len(got) != len(tc.want) {
			t.Fatalf("RealRoots(%g,%g,%g,%g) = %v, want %v", tc.a, tc.b, tc.c, tc.d, got, tc.want)
		}
		for i := range got {
			if math.Abs(got[i]-tc.want[i]) > 1e-9*math.Max(1, math.Abs(tc.want[i])) {
				t.Errorf("RealRoots(%g,%g,%g,%g)[%d] = %.17g, want %g", tc.a, tc.b, tc.c, tc.d, i, got[i], tc.want[i])
			}
		}
	}
}

func TestNotCubic(t *testing.T) {
	if _, err := RealRoots(0, 1, 2, 3); err != ErrNotCubic {
		t.Errorf("expected ErrNotCubic, got %v", err)
	}
	if _, err := OneRealRoot(math.NaN(), 1, 2, 3); err != ErrNotCubic {
		t.Errorf("expected ErrNotCubic for NaN leading coefficient, got %v", err)
	}
}

// TestResidualSmall: on random cubics, every reported root has a tiny
// backward error relative to the coefficient magnitudes.
func TestResidualSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		a := (rng.Float64()*2 - 1) * math.Ldexp(1, rng.Intn(10)-5)
		if a == 0 {
			continue
		}
		b := (rng.Float64()*2 - 1) * math.Ldexp(1, rng.Intn(10)-5)
		c := (rng.Float64()*2 - 1) * math.Ldexp(1, rng.Intn(10)-5)
		d := (rng.Float64()*2 - 1) * math.Ldexp(1, rng.Intn(10)-5)
		roots, err := RealRoots(a, b, c, d)
		if err != nil {
			t.Fatal(err)
		}
		if len(roots) == 0 {
			t.Fatalf("cubic %g,%g,%g,%g reported no real roots", a, b, c, d)
		}
		for _, r := range roots {
			res := math.Abs(Eval(a, b, c, d, r))
			scale := math.Abs(a*r*r*r) + math.Abs(b*r*r) + math.Abs(c*r) + math.Abs(d)
			if res > 1e-12*math.Max(scale, 1e-300) {
				t.Fatalf("cubic %g,%g,%g,%g: root %g residual %g (scale %g)", a, b, c, d, r, res, scale)
			}
		}
	}
}

// TestRootsFromFactors builds cubics from known random roots and checks they
// are all recovered.
func TestRootsFromFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 5000; i++ {
		r1 := rng.Float64()*20 - 10
		r2 := rng.Float64()*20 - 10
		r3 := rng.Float64()*20 - 10
		// (x-r1)(x-r2)(x-r3)
		b := -(r1 + r2 + r3)
		c := r1*r2 + r1*r3 + r2*r3
		d := -r1 * r2 * r3
		roots, err := RealRoots(1, b, c, d)
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []float64{r1, r2, r3} {
			found := false
			for _, got := range roots {
				if math.Abs(got-want) < 1e-6*(1+math.Abs(want)) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("roots of (x-%g)(x-%g)(x-%g): got %v, missing %g", r1, r2, r3, roots, want)
			}
		}
	}
}

// TestOneRealRootProperty: the returned value really is a root, via
// testing/quick.
func TestOneRealRootProperty(t *testing.T) {
	prop := func(b, c, d int16) bool {
		fb, fc, fd := float64(b)/16, float64(c)/16, float64(d)/16
		r, err := OneRealRoot(1, fb, fc, fd)
		if err != nil {
			return false
		}
		res := math.Abs(Eval(1, fb, fc, fd, r))
		scale := math.Abs(r*r*r) + math.Abs(fb*r*r) + math.Abs(fc*r) + math.Abs(fd) + 1
		return res <= 1e-10*scale
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Package cubic finds real roots of cubic polynomials in double precision.
//
// Knuth's coefficient adaptation for polynomials of degree 5 and 6 (Sections
// 3.2 and 3.3 of the CGO 2023 paper) requires one real root of a cubic
// auxiliary equation; the paper uses "an external cubic solver in double
// precision". This package plays that role: a Cardano/trigonometric solver
// followed by Newton polishing.
package cubic

import (
	"errors"
	"math"
	"sort"
)

// ErrNotCubic is returned when the leading coefficient is zero or not finite.
var ErrNotCubic = errors.New("cubic: leading coefficient is zero or non-finite")

// RealRoots returns the real roots of a*x^3 + b*x^2 + c*x + d in ascending
// order. A triple or double root is reported once per distinct value.
func RealRoots(a, b, c, d float64) ([]float64, error) {
	if a == 0 || math.IsNaN(a) || math.IsInf(a, 0) {
		return nil, ErrNotCubic
	}
	// Normalize: x^3 + B x^2 + C x + D.
	B, C, D := b/a, c/a, d/a

	// Depress: x = t - B/3 gives t^3 + p t + q.
	p := C - B*B/3
	q := 2*B*B*B/27 - B*C/3 + D
	shift := -B / 3

	var roots []float64
	disc := q*q/4 + p*p*p/27
	// The discriminant is a difference of computed quantities; classify
	// "zero" with a relative tolerance so exact double roots perturbed by
	// rounding land in the repeated-root branch.
	dscale := math.Max(q*q/4, math.Abs(p*p*p/27))
	if math.Abs(disc) <= 1e-13*dscale {
		disc = 0
	}
	switch {
	case disc > 0:
		// One real root (Cardano). Use the numerically stable form that
		// avoids cancellation between the two cube roots.
		s := math.Sqrt(disc)
		u := math.Cbrt(-q/2 + s)
		var v float64
		if u != 0 {
			v = -p / (3 * u)
		} else {
			v = math.Cbrt(-q/2 - s)
		}
		roots = []float64{u + v + shift}
	case disc == 0:
		if q == 0 {
			roots = []float64{shift} // triple root
		} else {
			t1 := 3 * q / p        // single root
			t2 := -3 * q / (2 * p) // double root
			roots = []float64{t1 + shift, t2 + shift}
		}
	default:
		// Three distinct real roots (casus irreducibilis): trigonometric
		// method.
		m := 2 * math.Sqrt(-p/3)
		theta := math.Acos(3*q/(p*m)) / 3
		for k := 0; k < 3; k++ {
			t := m * math.Cos(theta-2*math.Pi*float64(k)/3)
			roots = append(roots, t+shift)
		}
	}

	for i := range roots {
		roots[i] = polish(B, C, D, roots[i])
	}
	sort.Float64s(roots)
	// Deduplicate near-identical roots produced by the double-root branch.
	out := roots[:0]
	for i, r := range roots {
		if i > 0 && r == out[len(out)-1] {
			continue
		}
		out = append(out, r)
	}
	return out, nil
}

// OneRealRoot returns a single real root of a*x^3 + b*x^2 + c*x + d. Every
// real cubic has at least one; when there are three, the root of smallest
// magnitude is returned (which keeps adapted coefficients small — the choice
// the adaptation procedure prefers).
func OneRealRoot(a, b, c, d float64) (float64, error) {
	roots, err := RealRoots(a, b, c, d)
	if err != nil {
		return 0, err
	}
	best := roots[0]
	for _, r := range roots[1:] {
		if math.Abs(r) < math.Abs(best) {
			best = r
		}
	}
	return best, nil
}

// polish runs a few Newton iterations on the monic cubic x^3 + Bx^2 + Cx + D
// to squeeze out the last ulps of error from the closed-form root.
func polish(B, C, D, x float64) float64 {
	for i := 0; i < 4; i++ {
		f := ((x+B)*x+C)*x + D
		df := (3*x+2*B)*x + C
		if df == 0 || math.IsNaN(f) {
			break
		}
		nx := x - f/df
		if nx == x || math.IsNaN(nx) || math.IsInf(nx, 0) {
			break
		}
		// Accept only improving steps.
		nf := ((nx+B)*nx+C)*nx + D
		if math.Abs(nf) >= math.Abs(f) {
			break
		}
		x = nx
	}
	return x
}

// Eval evaluates a*x^3 + b*x^2 + c*x + d, for residual checks in callers and
// tests.
func Eval(a, b, c, d, x float64) float64 {
	return ((a*x+b)*x+c)*x + d
}

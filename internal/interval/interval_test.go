package interval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rlibm/internal/fp"
)

// TestRoundingIntervalTight is the Figure 2 property: every float64 in the
// interval rounds to y, and the float64 neighbours just outside do not.
func TestRoundingIntervalTight(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	formats := []fp.Format{fp.Float16, fp.Bfloat16, {Bits: 12, ExpBits: 5}, fp.TensorFloat32, fp.FP34}
	for _, f := range formats {
		for _, m := range fp.AllModes {
			for trial := 0; trial < 400; trial++ {
				b := uint64(rng.Int63n(int64(f.Count())))
				y := f.FromBits(b)
				if math.IsNaN(y) || math.IsInf(y, 0) || y == 0 {
					continue
				}
				iv, err := Rounding(y, f, m)
				if err != nil {
					t.Fatalf("%v %v Rounding(%g): %v", f, m, y, err)
				}
				if iv.Empty() {
					t.Fatalf("%v %v Rounding(%g): empty interval", f, m, y)
				}
				// Both endpoints round to y.
				for _, v := range []float64{iv.Lo, iv.Hi} {
					if got := f.Round(v, m); got != y {
						t.Fatalf("%v %v: endpoint %.17g of %v rounds to %g, want %g", f, m, v, iv, got, y)
					}
				}
				// Interior samples round to y.
				for k := 0; k < 8; k++ {
					v := iv.Lo + rng.Float64()*(iv.Hi-iv.Lo)
					if v < iv.Lo || v > iv.Hi {
						continue
					}
					if got := f.Round(v, m); got != y {
						t.Fatalf("%v %v: interior %.17g of %v rounds to %g, want %g", f, m, v, iv, got, y)
					}
				}
				// The neighbours immediately outside do not round to y
				// (except when they fall off the float64 range).
				below := math.Nextafter(iv.Lo, math.Inf(-1))
				if got := f.Round(below, m); got == y {
					t.Fatalf("%v %v: %.17g below %v still rounds to %g", f, m, below, iv, y)
				}
				if iv.Hi != math.MaxFloat64 {
					above := math.Nextafter(iv.Hi, math.Inf(1))
					if got := f.Round(above, m); got == y {
						t.Fatalf("%v %v: %.17g above %v still rounds to %g", f, m, above, iv, y)
					}
				}
			}
		}
	}
}

// TestRoundToOddIntervalShapes: even results have singleton intervals; odd
// results span the open interval between even neighbours.
func TestRoundToOddIntervalShapes(t *testing.T) {
	f := fp.FP34
	// 1.0 has an even encoding in every format.
	iv, err := Rounding(1.0, f, fp.RTO)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 1 || iv.Hi != 1 {
		t.Errorf("RTO interval of exact 1.0 = %v, want singleton", iv)
	}
	// Its successor is odd.
	y := f.NextUp(1.0)
	iv, err = Rounding(y, f, fp.RTO)
	if err != nil {
		t.Fatal(err)
	}
	if !(iv.Lo > 1 && iv.Hi < f.NextUp(y)) {
		t.Errorf("RTO interval of odd %g = %v not inside (1, %g)", y, iv, f.NextUp(y))
	}
	if iv.Empty() {
		t.Error("odd RTO interval empty")
	}
	// The interval must contain many doubles (freedom for the LP).
	if math.Nextafter(iv.Lo, iv.Hi) == iv.Hi {
		t.Error("odd RTO interval contains too few doubles")
	}
}

func TestRoundingSpecialResults(t *testing.T) {
	f := fp.Float16
	for _, y := range []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN()} {
		if _, err := Rounding(y, f, fp.RNE); err == nil {
			t.Errorf("Rounding(%g) should fail", y)
		}
	}
	if _, err := Rounding(1+1e-9, f, fp.RNE); err == nil {
		t.Error("Rounding of non-representable value should fail")
	}
}

func TestNegativeMirror(t *testing.T) {
	f := fp.Float16
	for _, m := range fp.AllModes {
		ivp, err := Rounding(1.5, f, m)
		if err != nil {
			t.Fatal(err)
		}
		ivn, err := Rounding(-1.5, f, m)
		if err != nil {
			t.Fatal(err)
		}
		// Directed modes mirror; nearest and odd are symmetric.
		if got, want := ivn.Lo, -ivp.Hi; got != want {
			if m != fp.RTP && m != fp.RTN {
				t.Errorf("mode %v: -1.5 interval %v not mirror of %v", m, ivn, ivp)
			}
		}
		if got := f.Round(ivn.Lo, m); got != -1.5 {
			t.Errorf("mode %v: lower endpoint %g rounds to %g", m, ivn.Lo, got)
		}
		if got := f.Round(ivn.Hi, m); got != -1.5 {
			t.Errorf("mode %v: upper endpoint %g rounds to %g", m, ivn.Hi, got)
		}
	}
}

func TestConstrain(t *testing.T) {
	iv := Interval{Lo: 1.0, Hi: 2.0}
	below := Constrain(iv, 0.5)
	if below.Lo <= 1.0 || below.Hi != 2.0 {
		t.Errorf("Constrain below = %v", below)
	}
	above := Constrain(iv, 3.0)
	if above.Hi >= 2.0 || above.Lo != 1.0 {
		t.Errorf("Constrain above = %v", above)
	}
	same := Constrain(iv, 1.5)
	if same != iv {
		t.Errorf("Constrain inside = %v", same)
	}
	// Repeated constraining eventually empties the interval — the signal to
	// declare an input a special case.
	tiny := Interval{Lo: 1.0, Hi: math.Nextafter(1.0, 2)}
	tiny = Constrain(tiny, 0)
	tiny = Constrain(tiny, 0)
	if !tiny.Empty() {
		t.Errorf("interval should be empty, got %v", tiny)
	}
}

func TestContains(t *testing.T) {
	iv := Interval{Lo: -1, Hi: 1}
	for _, v := range []float64{-1, 0, 1} {
		if !iv.Contains(v) {
			t.Errorf("Contains(%g) = false", v)
		}
	}
	for _, v := range []float64{-1.0000001, 1.0000001, math.NaN()} {
		if iv.Contains(v) {
			t.Errorf("Contains(%g) = true", v)
		}
	}
	if iv.String() == "" {
		t.Error("empty String")
	}
}

// TestExhaustiveSmallFormat: for a tiny format, check the interval against a
// brute-force scan over a fine float64 grid.
func TestExhaustiveSmallFormat(t *testing.T) {
	f := fp.Format{Bits: 9, ExpBits: 4}
	for _, m := range fp.AllModes {
		f.FiniteValues(func(b uint64, y float64) bool {
			if y <= 0 { // negatives covered by mirror test
				return true
			}
			iv, err := Rounding(y, f, m)
			if err != nil {
				t.Fatalf("%v: %v", y, err)
			}
			// Scan a fine grid around the value.
			lo, hi := y*0.8-1e-3, y*1.25+1e-3
			for v := lo; v <= hi; v += (hi - lo) / 400 {
				got := f.Round(v, m)
				in := iv.Contains(v)
				if in && got != y {
					t.Fatalf("%v mode %v: v=%g in %v but rounds to %g", y, m, v, iv, got)
				}
				if !in && got == y && v > 0 {
					t.Fatalf("%v mode %v: v=%g outside %v but rounds to %g", y, m, v, iv, got)
				}
			}
			return true
		})
	}
}

// TestRoundingQuick is a testing/quick property: Rounding(y) always contains
// y itself, and constraining with an inside value is the identity.
func TestRoundingQuick(t *testing.T) {
	f := fp.Format{Bits: 14, ExpBits: 6}
	prop := func(bits uint16, mSel uint8) bool {
		y := f.FromBits(uint64(bits) & (f.Count() - 1))
		if math.IsNaN(y) || math.IsInf(y, 0) || y == 0 {
			return true
		}
		m := fp.AllModes[int(mSel)%len(fp.AllModes)]
		iv, err := Rounding(y, f, m)
		if err != nil {
			return false
		}
		if !iv.Contains(y) {
			return false
		}
		return Constrain(iv, y) == iv
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 6000}); err != nil {
		t.Error(err)
	}
}

// Package interval computes rounding intervals: for a correctly rounded
// result y in a target format T under a rounding mode, the interval of
// values in the working representation H (float64 here, as in the paper)
// such that every value in it rounds to y (Figure 2 of the CGO 2023 paper).
//
// The RLibm pipeline uses the round-to-odd intervals of the 34-bit format;
// the general-mode variants exist for the single-format experiments and for
// cross-checking.
package interval

import (
	"errors"
	"fmt"
	"math"

	"rlibm/internal/fp"
)

// Interval is a closed interval [Lo, Hi] of float64 (representation H)
// values.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v float64) bool { return iv.Lo <= v && v <= iv.Hi }

// Empty reports whether the interval contains no value.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

func (iv Interval) String() string {
	return fmt.Sprintf("[%.17g, %.17g]", iv.Lo, iv.Hi)
}

// ErrUnsupported is returned for results whose rounding interval is not
// meaningful for polynomial generation (NaN, infinities, zero); the pipeline
// treats such inputs as special cases, exactly as RLibm does.
var ErrUnsupported = errors.New("interval: result requires special-case handling (zero, infinite or NaN)")

// Rounding returns the interval of float64 values that round to y in format
// t under mode m. y must be a finite nonzero value of t.
func Rounding(y float64, t fp.Format, m fp.Mode) (Interval, error) {
	if math.IsNaN(y) || math.IsInf(y, 0) || y == 0 {
		return Interval{}, ErrUnsupported
	}
	if !t.IsRepresentable(y) {
		return Interval{}, fmt.Errorf("interval: %g is not representable in %v", y, t)
	}
	if y < 0 {
		// Mirror: the interval of -y under the sign-mirrored mode.
		iv, err := Rounding(-y, t, mirror(m))
		if err != nil {
			return Interval{}, err
		}
		return Interval{Lo: -iv.Hi, Hi: -iv.Lo}, nil
	}

	prev := t.NextDown(y) // may be +0 when y is the smallest subnormal
	next := t.NextUp(y)   // may be +Inf when y is the largest finite value
	if prev < 0 {
		prev = 0
	}

	odd := isOddEncoding(t, y)

	switch m {
	case fp.RNE:
		lo, hi := midpoint(prev, y), upperMidpoint(t, y, next)
		if odd {
			// Ties resolve to the even neighbours, so both boundaries are
			// excluded.
			return Interval{Lo: nextUp64(lo), Hi: nextDown64(hi)}, nil
		}
		return Interval{Lo: lo, Hi: hi}, nil
	case fp.RNA:
		// For positive y the lower midpoint ties away from zero — to y —
		// and the upper midpoint ties to next.
		lo, hi := midpoint(prev, y), upperMidpoint(t, y, next)
		return Interval{Lo: lo, Hi: nextDown64(hi)}, nil
	case fp.RTZ, fp.RTN:
		// Positive y: every value in [y, next) truncates to y. At the top
		// of the range everything above y saturates to y as well.
		if math.IsInf(next, 1) {
			return Interval{Lo: y, Hi: math.MaxFloat64}, nil
		}
		return Interval{Lo: y, Hi: nextDown64(next)}, nil
	case fp.RTP:
		// Positive y: every value in (prev, y] rounds up to y.
		return Interval{Lo: nextUp64(prev), Hi: y}, nil
	case fp.RTO:
		if !odd {
			// Round-to-odd maps only the exact value to an even result.
			return Interval{Lo: y, Hi: y}, nil
		}
		hi := nextDown64(next) // +Inf neighbour saturates to MaxFloat64
		if math.IsInf(next, 1) {
			hi = math.MaxFloat64
		}
		return Interval{Lo: nextUp64(prev), Hi: hi}, nil
	default:
		return Interval{}, fmt.Errorf("interval: unsupported mode %v", m)
	}
}

// RoundingRO34 returns the round-to-odd rounding interval used by the
// RLibm-ALL pipeline: the widest set of doubles that round to the 34-bit
// round-to-odd oracle result y.
func RoundingRO34(y float64) (Interval, error) {
	return Rounding(y, fp.FP34, fp.RTO)
}

// Constrain shrinks the interval by one float64 ulp on the violated side, as
// in the paper's ConstrainInterval: when the adapted polynomial produced a
// value below Lo the new lower bound is the successor of Lo; above Hi, the
// predecessor of Hi. The returned interval may be empty, which callers treat
// as "this input becomes a special case".
func Constrain(iv Interval, violation float64) Interval {
	if violation < iv.Lo {
		return Interval{Lo: nextUp64(iv.Lo), Hi: iv.Hi}
	}
	if violation > iv.Hi {
		return Interval{Lo: iv.Lo, Hi: nextDown64(iv.Hi)}
	}
	return iv
}

// mirror swaps the directed modes for sign reflection.
func mirror(m fp.Mode) fp.Mode {
	switch m {
	case fp.RTP:
		return fp.RTN
	case fp.RTN:
		return fp.RTP
	}
	return m
}

// isOddEncoding reports whether the format encoding of v has an odd trailing
// bit.
func isOddEncoding(t fp.Format, v float64) bool {
	b, ok := t.ToBits(v)
	if !ok {
		panic(fmt.Sprintf("interval: %g not representable in %v", v, t))
	}
	return b&1 == 1
}

// midpoint returns the exact midpoint of two adjacent non-negative format
// values (exact in float64 because the format precision is below 53 bits).
func midpoint(a, b float64) float64 {
	return a + (b-a)/2
}

// upperMidpoint returns the boundary above y: the midpoint of [y, next], or
// the overflow threshold y + ulp/2 when next is infinite.
func upperMidpoint(t fp.Format, y, next float64) float64 {
	if !math.IsInf(next, 1) {
		return midpoint(y, next)
	}
	ulp := y - t.NextDown(y)
	return y + ulp/2
}

func nextUp64(v float64) float64   { return math.Nextafter(v, math.Inf(1)) }
func nextDown64(v float64) float64 { return math.Nextafter(v, math.Inf(-1)) }

package interval

import (
	"math"
	"testing"

	"rlibm/internal/fp"
	"rlibm/internal/oracle"
)

// FuzzIntervalContains fuzzes the pipeline's load-bearing interval property
// (Figure 2): for a real oracle result, the RO34 rounding interval contains
// the round-to-odd value itself, every double inside it rounds back to that
// value, and the doubles just outside do not. A violation here would mean
// the LP is fed constraints that admit wrongly rounded implementations.
func FuzzIntervalContains(f *testing.F) {
	f.Add(math.Float64bits(1.5), uint8(0))
	f.Add(math.Float64bits(0.125), uint8(3))
	f.Add(math.Float64bits(-17.25), uint8(1))
	f.Add(math.Float64bits(88.5), uint8(2))
	f.Add(math.Float64bits(0x1p-40), uint8(4))
	f.Add(math.Float64bits(3.0), uint8(5))
	f.Fuzz(func(t *testing.T, xbits uint64, fnSel uint8) {
		x := math.Float64frombits(xbits)
		if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 {
			t.Skip()
		}
		// The exponential family overflows FP34 around |x| ~ 128 and the
		// cost of a Ziv escalation grows with the exponent; the pipeline's
		// own domain cuts keep it in this range too.
		if math.Abs(x) > 100 || math.Abs(x) < 0x1p-200 {
			t.Skip()
		}
		fn := oracle.Funcs[int(fnSel)%len(oracle.Funcs)]
		if fn.IsLog() && x <= 0 {
			t.Skip()
		}
		y := oracle.Correct(fn, x, fp.FP34, fp.RTO)
		iv, err := RoundingRO34(y)
		if err != nil {
			// Zero, infinite and NaN results are special-cased by the
			// pipeline, never turned into intervals.
			t.Skip()
		}

		if iv.Empty() {
			t.Fatalf("%v(%g): empty interval %v for y=%g", fn, x, iv, y)
		}
		if !iv.Contains(y) {
			t.Fatalf("%v(%g): interval %v does not contain its own result %g", fn, x, iv, y)
		}
		// Every double in [Lo, Hi] rounds back to y; probe the endpoints and
		// the midpoint.
		for _, v := range []float64{iv.Lo, iv.Hi, iv.Lo + (iv.Hi-iv.Lo)/2} {
			if got := fp.FP34.Round(v, fp.RTO); math.Float64bits(got) != math.Float64bits(y) {
				t.Fatalf("%v(%g): %g inside %v rounds to %g, want %g", fn, x, v, iv, got, y)
			}
		}
		// The neighbours just outside round elsewhere — the interval is
		// tight, not merely sound. Saturated endpoints have no outside.
		if lo := math.Nextafter(iv.Lo, math.Inf(-1)); !math.IsInf(lo, -1) && lo != -math.MaxFloat64 {
			if got := fp.FP34.Round(lo, fp.RTO); math.Float64bits(got) == math.Float64bits(y) {
				t.Fatalf("%v(%g): %g below %v still rounds to %g", fn, x, lo, iv, y)
			}
		}
		if hi := math.Nextafter(iv.Hi, math.Inf(1)); !math.IsInf(hi, 1) && iv.Hi != math.MaxFloat64 {
			if got := fp.FP34.Round(hi, fp.RTO); math.Float64bits(got) == math.Float64bits(y) {
				t.Fatalf("%v(%g): %g above %v still rounds to %g", fn, x, hi, iv, y)
			}
		}
	})
}

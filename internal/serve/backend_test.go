package serve

import (
	"bytes"
	"math"
	"net/http"
	"strings"
	"testing"

	"rlibm/pkg/rlibm"
)

// TestConfigBackendRoundTrip: every backend the machine offers serves
// bit-identical responses (the backend is a throughput choice, never a
// results choice), and the resolved backend is surfaced on /statusz and as
// the serve.backend gauge on /metricz.
func TestConfigBackendRoundTrip(t *testing.T) {
	backends, err := rlibm.Backends(rlibm.FuncExp, rlibm.EstrinFMA, rlibm.PrecFloat32)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]float32, 300)
	for i := range src {
		src[i] = float32(i)/4 - 37
	}
	src[7] = float32(math.NaN())
	src[13] = float32(math.Inf(1))

	var want []float32
	for _, b := range append([]rlibm.Backend{rlibm.BackendAuto}, backends...) {
		srv, ts, reg := newObsTestServer(t, Config{Backend: b})
		got, resp := binEval(t, ts.URL, "exp", "rlibm-estrin-fma", src)
		if got == nil {
			t.Fatalf("backend %v: eval failed: %d", b, resp.StatusCode)
		}
		if want == nil {
			want = got
		}
		for i := range want {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("backend %v: elem %d = %#08x, first backend got %#08x",
					b, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
			}
		}

		resolved := srv.backend
		if resolved == rlibm.BackendAuto {
			t.Fatalf("backend %v: server kept unresolved BackendAuto", b)
		}
		if b != rlibm.BackendAuto && resolved != b {
			t.Fatalf("configured %v, resolved %v", b, resolved)
		}
		if g := reg.Gauge("serve.backend").Value(); g != int64(resolved) {
			t.Errorf("serve.backend gauge = %d, want %d", g, int64(resolved))
		}

		hr, err := http.Get(ts.URL + "/statusz")
		if err != nil {
			t.Fatal(err)
		}
		var body bytes.Buffer
		body.ReadFrom(hr.Body)
		hr.Body.Close()
		wantLine := "backend: " + resolved.String()
		if !strings.Contains(body.String(), wantLine) {
			t.Errorf("statusz missing %q:\n%s", wantLine, body.String())
		}
	}
}

package serve

import (
	"fmt"
	"net/http"
	"time"

	"rlibm/internal/obs"
	"rlibm/pkg/rlibm"
)

// handleStatusz renders the human-readable status page: build identity,
// uptime, aggregate serving health (request/shed totals, queue depth, stream
// connections), the canary's verdict, and a per-(func,scheme) table of
// rolling-window p50/p99 end-to-end latency. /metricz is for machines;
// /statusz is what a human hits first when a dashboard goes red, so it is
// deliberately one flat plain-text page with no parameters.
func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	b := obs.Build()
	fmt.Fprintf(w, "rlibm-serve status\n")
	fmt.Fprintf(w, "build:   %s (%s)\n", b.Git, b.GoVersion)
	fmt.Fprintf(w, "backend: %s (batch kernels; configured %s)\n", s.backend, s.cfg.Backend)
	fmt.Fprintf(w, "uptime:  %v\n\n", time.Since(s.started).Round(time.Second))

	requests := s.evalRequests.Value()
	shed := s.shedTotal.Value()
	shedRate := 0.0
	if requests+shed > 0 {
		shedRate = float64(shed) / float64(requests+shed)
	}
	fmt.Fprintf(w, "eval requests served:  %d\n", requests)
	fmt.Fprintf(w, "requests shed:         %d (%.2f%% of offered load)\n", shed, 100*shedRate)
	fmt.Fprintf(w, "coalesce queue depth:  %d elems\n", s.cfg.Registry.Gauge("serve.coalesce.queue_elems").Value())
	fmt.Fprintf(w, "stream connections:    %d\n\n", s.streamConns.Value())

	if s.canary == nil {
		fmt.Fprintf(w, "canary: disabled\n\n")
	} else {
		checked := s.canary.checked.Value()
		mismatch := s.canary.mismatch.Value()
		verdict := "OK"
		if mismatch > 0 {
			verdict = "ALARM"
		} else if checked == 0 {
			verdict = "no samples yet"
		}
		fmt.Fprintf(w, "canary: %s (1/%d elements)\n", verdict, s.canary.every)
		fmt.Fprintf(w, "  checked %d, mismatched %d, dropped %d, skipped %d, queued %d\n\n",
			checked, mismatch, s.canary.dropped.Value(), s.canary.skipped.Value(), len(s.canary.queue))
	}

	fmt.Fprintf(w, "end-to-end latency, rolling %v window (served requests only):\n", statuszAge)
	fmt.Fprintf(w, "%-6s %-16s %10s %10s %8s\n", "func", "scheme", "p50", "p99", "samples")
	for _, f := range rlibm.Funcs {
		for _, sch := range rlibm.Schemes {
			qs, n := s.phases[f][sch].e2e.Quantiles(0.50, 0.99)
			if n == 0 {
				continue
			}
			fmt.Fprintf(w, "%-6s %-16s %10v %10v %8d\n",
				f, sch,
				time.Duration(qs[0]).Round(time.Microsecond),
				time.Duration(qs[1]).Round(time.Microsecond),
				n)
		}
	}
}

package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"rlibm/internal/obs"
	"rlibm/pkg/rlibm"
)

// Request-level observability: every eval request — HTTP JSON, HTTP binary,
// or stream frame — carries one reqState through its whole life. The state
// is a plain value on the handler's stack: phase timestamps are recorded
// into it as the request moves through decode, the coalescer queue, the
// shared sweep and encode, and observePhases folds it into the per-combo
// instruments once the response bytes are written. Nothing on this path
// allocates, so the instrumentation is always on; only the sampled trace
// emission (JSONL writes) is gated by -trace-sample.

// phaseSet is the per-(func,scheme) instrument bundle: one histogram per
// attribution phase (all durations in nanoseconds, exported on /metricz) and
// a rolling latency window backing /statusz's p50/p99.
type phaseSet struct {
	decode *obs.Histogram // transport bytes -> float32 inputs
	queue  *obs.Histogram // coalescer queue-wait, or direct-path semaphore wait
	sweep  *obs.Histogram // the EvalBatch sweep the request rode
	encode *obs.Histogram // float32 results -> transport bytes, written
	e2e    *obs.RollingWindow
}

// statuszWindow / statuszAge size the per-combo rolling windows: enough
// samples for a stable p99 under load, short enough that /statusz reflects
// the last minute rather than the process lifetime.
const (
	statuszWindow = 2048
	statuszAge    = time.Minute
)

func newPhaseSet(f rlibm.Func, sch rlibm.Scheme, reg *obs.Registry) *phaseSet {
	prefix := fmt.Sprintf("serve/%v/%v/phase/", f, sch)
	return &phaseSet{
		decode: reg.Histogram(prefix + "decode_ns"),
		queue:  reg.Histogram(prefix + "queue_ns"),
		sweep:  reg.Histogram(prefix + "sweep_ns"),
		encode: reg.Histogram(prefix + "encode_ns"),
		e2e:    obs.NewRollingWindow(statuszWindow, statuszAge),
	}
}

// reqState accumulates one request's observability facts. It lives on the
// transport goroutine's stack; the coalescer reports sweep timing back over
// the waiter's completion channel rather than holding a pointer to it, so
// the state never escapes the request.
type reqState struct {
	start   time.Time
	trace   obs.TraceID
	sampled bool // emit trace spans for this request

	decode time.Duration
	queue  time.Duration
	sweep  time.Duration
	encode time.Duration
}

// begin stamps the request start and decides trace sampling once, so every
// phase of one request is either fully traced or fully untraced.
func (s *Server) begin(rs *reqState, trace obs.TraceID) {
	rs.start = time.Now()
	rs.trace = trace
	rs.sampled = s.cfg.Tracer != nil && s.sampler.sample()
}

// observePhases records rs into the per-combo instruments and, for sampled
// requests, emits the four child span lines. transport is "json", "bin" or
// "stream".
func (s *Server) observePhases(f rlibm.Func, sch rlibm.Scheme, transport string, elems int, rs *reqState) {
	ps := s.phases[f][sch]
	ps.decode.ObserveDuration(rs.decode)
	ps.queue.ObserveDuration(rs.queue)
	ps.sweep.ObserveDuration(rs.sweep)
	ps.encode.ObserveDuration(rs.encode)
	ps.e2e.ObserveDuration(time.Since(rs.start))
	s.evalRequests.Inc()
	if !rs.sampled {
		return
	}
	attrs := obs.Attrs{
		"trace":     rs.trace.String(),
		"func":      f.String(),
		"scheme":    sch.String(),
		"transport": transport,
		"elems":     elems,
	}
	tr := s.cfg.Tracer
	tr.Dur("serve.decode", attrs, rs.decode)
	tr.Dur("serve.queue", attrs, rs.queue)
	tr.Dur("serve.sweep", attrs, rs.sweep)
	tr.Dur("serve.encode", attrs, rs.encode)
}

// sampler makes the -trace-sample decision with one atomic add and no
// per-request random draw: a rate of r samples every round(1/r)-th request.
// Deterministic striding keeps the fast path branch-predictable and, unlike
// a seeded rng, needs no locking.
type sampler struct {
	every int64 // 0 disables; 1 samples everything
	n     atomic.Int64
}

func newSampler(rate float64) *sampler {
	s := &sampler{}
	switch {
	case rate <= 0:
		s.every = 0
	case rate >= 1:
		s.every = 1
	default:
		s.every = int64(1/rate + 0.5)
	}
	return s
}

func (s *sampler) sample() bool {
	if s.every == 0 {
		return false
	}
	return s.n.Add(1)%s.every == 0
}

package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"rlibm/internal/obs"
	"rlibm/pkg/rlibm"
)

// precEvaluator builds the reference Evaluator for a combo, failing the test
// on an invalid combination (all combos in these tests are valid).
func precEvaluator(t *testing.T, f rlibm.Func, sch rlibm.Scheme, p rlibm.Precision) *rlibm.Evaluator {
	t.Helper()
	ev, err := rlibm.New(f, sch, rlibm.WithPrecision(p))
	if err != nil {
		t.Fatalf("New(%v, %v, %v): %v", f, sch, p, err)
	}
	return ev
}

// jsonEvalPrec posts {"x":[...], "prec": name} and decodes {"y":[...]}.
func jsonEvalPrec(t *testing.T, base, fn, scheme, prec string, src []float32) ([]float32, *http.Response) {
	t.Helper()
	var b strings.Builder
	b.WriteString(`{"x":[`)
	for i, x := range src {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(float64(x), 'g', -1, 32))
	}
	b.WriteString(`]`)
	if prec != "" {
		fmt.Fprintf(&b, `,"prec":%q`, prec)
	}
	b.WriteString(`}`)
	resp, err := http.Post(base+"/v1/eval/"+fn+"/"+scheme, "application/json", strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("POST eval: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp
	}
	var out struct {
		Y []float32 `json:"y"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return out.Y, resp
}

// TestJSONPrecField: the optional "prec" field selects the served precision.
// Every canonical name and the fp16 alias must produce results bit-identical
// to the matching Evaluator, and narrow results must be exact values of the
// narrow format (trailing significand bits zero in the float32 carrier).
func TestJSONPrecField(t *testing.T) {
	ts := newTestServer(t, Config{})
	src := []float32{0.5, 1.25, 2.75, 3.5, 0.0625}
	cases := []struct {
		name string
		p    rlibm.Precision
	}{
		{"float32", rlibm.PrecFloat32},
		{"tf32", rlibm.PrecTF32},
		{"bf16", rlibm.PrecBfloat16},
		{"fp16", rlibm.PrecTF32},   // alias resolves to the covered format
		{"BF16", rlibm.PrecBfloat16}, // case-insensitive
	}
	for _, f := range rlibm.Funcs {
		for _, tc := range cases {
			ev := precEvaluator(t, f, rlibm.Horner, tc.p)
			got, resp := jsonEvalPrec(t, ts.URL, f.String(), "horner", tc.name, src)
			if got == nil {
				t.Fatalf("%v prec=%s: status %d", f, tc.name, resp.StatusCode)
			}
			for i, x := range src {
				want := ev.Eval(x)
				if math.Float32bits(got[i]) != math.Float32bits(want) {
					t.Errorf("%v(%v) prec=%s: got %x, want %x", f, x, tc.name,
						math.Float32bits(got[i]), math.Float32bits(want))
				}
				if tc.p == rlibm.PrecBfloat16 && math.Float32bits(got[i])&0xFFFF != 0 {
					t.Errorf("%v(%v) prec=%s: %x is not an exact bfloat16 value",
						f, x, tc.name, math.Float32bits(got[i]))
				}
			}
		}
	}
}

// TestJSONPrecOmittedAndNull: leaving "prec" out or sending null serves full
// precision — old request bodies keep their exact meaning.
func TestJSONPrecOmittedAndNull(t *testing.T) {
	ts := newTestServer(t, Config{})
	ev := precEvaluator(t, rlibm.FuncExp2, rlibm.Horner, rlibm.PrecFloat32)
	want := ev.Eval(1.5)
	for _, body := range []string{`{"x":[1.5]}`, `{"x":[1.5],"prec":null}`, `{"prec":"float32","x":[1.5]}`} {
		resp, err := http.Post(ts.URL+"/v1/eval/exp2/horner", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Y []float32 `json:"y"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("%s: %v", body, err)
		}
		resp.Body.Close()
		if len(out.Y) != 1 || math.Float32bits(out.Y[0]) != math.Float32bits(want) {
			t.Errorf("%s: got %v, want [%v]", body, out.Y, want)
		}
	}
}

// TestJSONPrecInvalid: an unknown precision name is a 400 in the uniform
// {error, ...} schema, and the message enumerates the valid names (it is
// rlibm.ParsePrecision's own error). A non-string "prec" is also a 400.
func TestJSONPrecInvalid(t *testing.T) {
	ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		body     string
		wantFrag string
	}{
		{`{"x":[1],"prec":"binary64"}`, `unknown precision "binary64"`},
		{`{"x":[1],"prec":"binary64"}`, "float32, tf32, bf16"},
		{`{"x":[1],"prec":7}`, `"prec" must be a string`},
	} {
		resp, err := http.Post(ts.URL+"/v1/eval/exp/horner", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var e apiError
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("%s: decoding error body: %v", tc.body, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.body, resp.StatusCode)
		}
		if !strings.Contains(e.Error, tc.wantFrag) {
			t.Errorf("%s: error %q does not mention %q", tc.body, e.Error, tc.wantFrag)
		}
	}
}

// TestEvalBinPrecQuery: the binary endpoint selects precision with ?prec=,
// bit-identical to the Evaluator; an unknown name is the same uniform 400.
func TestEvalBinPrecQuery(t *testing.T) {
	ts := newTestServer(t, Config{})
	src := []float32{0.5, 1.5, 2.5, 3.25}
	body := make([]byte, 4*len(src))
	for i, x := range src {
		binary.LittleEndian.PutUint32(body[4*i:], math.Float32bits(x))
	}
	for _, p := range rlibm.Precisions {
		ev := precEvaluator(t, rlibm.FuncLog2, rlibm.EstrinFMA, p)
		resp, err := http.Post(ts.URL+"/v1/evalbin/log2/estrin-fma?prec="+p.String(),
			"application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if _, err := out.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("prec=%s: status %d", p, resp.StatusCode)
		}
		for i, x := range src {
			got := math.Float32frombits(binary.LittleEndian.Uint32(out.Bytes()[4*i:]))
			want := ev.Eval(x)
			if math.Float32bits(got) != math.Float32bits(want) {
				t.Errorf("log2(%v) prec=%s: got %x, want %x", x, p,
					math.Float32bits(got), math.Float32bits(want))
			}
		}
	}
	resp, err := http.Post(ts.URL+"/v1/evalbin/log2/horner?prec=fp64",
		"application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("?prec=fp64: status %d, want 400", resp.StatusCode)
	}
	var e apiError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("decoding error body: %v", err)
	}
	if !strings.Contains(e.Error, "unknown precision") {
		t.Errorf("?prec=fp64: error %q lacks the parse message", e.Error)
	}
}

// TestStreamPrecRoundTrip: EvalPrec carries the precision code in the flags
// high byte and the server answers with the narrow evaluator's bits, for
// every precision, interleaved on one connection.
func TestStreamPrecRoundTrip(t *testing.T) {
	_, addr := startStreamServer(t, Config{
		CoalesceMaxRequest: 4096,
		CoalesceFlushElems: 2048,
	})
	c, err := DialStream(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	src := []float32{0.25, 0.5, 1.5, 2.5, 3.75}
	var wg sync.WaitGroup
	for _, p := range rlibm.Precisions {
		for _, sch := range rlibm.Schemes {
			wg.Add(1)
			go func(p rlibm.Precision, sch rlibm.Scheme) {
				defer wg.Done()
				ev := precEvaluator(t, rlibm.FuncExp, sch, p)
				dst := make([]float32, len(src))
				if err := c.EvalPrec(rlibm.FuncExp, sch, p, dst, src); err != nil {
					t.Errorf("EvalPrec %v/%v: %v", sch, p, err)
					return
				}
				for i, x := range src {
					want := ev.Eval(x)
					if math.Float32bits(dst[i]) != math.Float32bits(want) {
						t.Errorf("exp(%v) %v/%v: got %x, want %x", x, sch, p,
							math.Float32bits(dst[i]), math.Float32bits(want))
					}
				}
			}(p, sch)
		}
	}
	wg.Wait()
}

// TestStreamPrecBadFrames: an out-of-range precision code gets the dedicated
// streamBadPrec status; reserved flags bits (1–7) stay a bad frame even when
// the precision byte is valid — and the connection survives both.
func TestStreamPrecBadFrames(t *testing.T) {
	_, addr := startStreamServer(t, Config{CoalesceMaxRequest: -1})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))

	payload := make([]byte, 4)
	binary.LittleEndian.PutUint32(payload, math.Float32bits(1))

	badPrec := uint16(rlibm.NumPrecisions) << streamPrecShift
	status, _, body := rawFrame(t, conn, 1, byte(rlibm.FuncExp), byte(rlibm.Horner), badPrec, payload)
	if status != streamBadPrec {
		t.Errorf("precision code %d: status %d (%s), want streamBadPrec", rlibm.NumPrecisions, status, body)
	}
	if !strings.Contains(string(body), "unknown precision code") {
		t.Errorf("bad-precision message %q lacks the code diagnostic", body)
	}

	reserved := uint16(rlibm.PrecBfloat16)<<streamPrecShift | 0x0002
	status, _, body = rawFrame(t, conn, 2, byte(rlibm.FuncExp), byte(rlibm.Horner), reserved, payload)
	if status != streamBadFrame {
		t.Errorf("reserved flags bits: status %d (%s), want streamBadFrame", status, body)
	}

	// The connection survived: a valid narrow frame still works.
	prec := uint16(rlibm.PrecBfloat16) << streamPrecShift
	status, _, body = rawFrame(t, conn, 3, byte(rlibm.FuncExp), byte(rlibm.Horner), prec, payload)
	if status != streamOK {
		t.Fatalf("bf16 frame after errors: status %d (%s)", status, body)
	}
	ev := precEvaluator(t, rlibm.FuncExp, rlibm.Horner, rlibm.PrecBfloat16)
	got := math.Float32frombits(binary.LittleEndian.Uint32(body))
	if want := ev.Eval(1); math.Float32bits(got) != math.Float32bits(want) {
		t.Errorf("bf16 exp(1): got %x, want %x", math.Float32bits(got), math.Float32bits(want))
	}
}

// TestCanaryNarrowPrecision: the canary adjudicates narrow traffic against
// the narrow format's correctly rounded value — bf16 traffic verifies clean
// (checked > 0, zero mismatches), and an input that is not representable at
// the served precision is skipped rather than misjudged.
func TestCanaryNarrowPrecision(t *testing.T) {
	srv := New(Config{Registry: obs.NewRegistry(), CanarySample: 1, CanaryQueue: 1 << 10})
	c := srv.canary
	ev := precEvaluator(t, rlibm.FuncExp, rlibm.Horner, rlibm.PrecBfloat16)

	src := []float32{0.5, 1.5, 2.5, 3.5}
	dst := make([]float32, len(src))
	ev.EvalBatch(dst, src)
	c.offer(rlibm.FuncExp, rlibm.PrecBfloat16, src, dst)

	// 1 + 2^-8 needs 9 significand bits: representable in float32 and tf32,
	// not in bfloat16 — the bf16 canary must skip it, the tf32 one check it.
	narrowOnly := []float32{1 + 1.0/256}
	evT := precEvaluator(t, rlibm.FuncExp, rlibm.Horner, rlibm.PrecTF32)
	outT := make([]float32, 1)
	evT.EvalBatch(outT, narrowOnly)
	c.offer(rlibm.FuncExp, rlibm.PrecBfloat16, narrowOnly, make([]float32, 1))
	c.offer(rlibm.FuncExp, rlibm.PrecTF32, narrowOnly, outT)

	srv.Close()
	if n := c.checked.Value(); n != int64(len(src))+1 {
		t.Errorf("checked_total = %d, want %d", n, len(src)+1)
	}
	if n := c.mismatch.Value(); n != 0 {
		t.Errorf("mismatch_total = %d on correct narrow traffic, want 0", n)
	}
	if n := c.skipped.Value(); n != 1 {
		t.Errorf("skipped_total = %d, want 1 (the bf16-unrepresentable input)", n)
	}
}

// TestCoalescePerPrecision: the accumulators are keyed by precision, so
// concurrent small requests at different precisions coalesce separately and
// each comes back with its own precision's bits — never the widest kernel's.
func TestCoalescePerPrecision(t *testing.T) {
	ts := newTestServer(t, Config{
		CoalesceMaxRequest: 1024,
		CoalesceFlushElems: 4096,
		CoalesceMaxDelay:   time.Millisecond,
	})
	src := []float32{0.5, 1.25, 2.75}
	var wg sync.WaitGroup
	for round := 0; round < 8; round++ {
		for _, p := range rlibm.Precisions {
			wg.Add(1)
			go func(p rlibm.Precision) {
				defer wg.Done()
				ev := precEvaluator(t, rlibm.FuncLog2, rlibm.Knuth, p)
				got, resp := jsonEvalPrec(t, ts.URL, "log2", "knuth", p.String(), src)
				if got == nil {
					t.Errorf("prec=%s: status %d", p, resp.StatusCode)
					return
				}
				for i, x := range src {
					want := ev.Eval(x)
					if math.Float32bits(got[i]) != math.Float32bits(want) {
						t.Errorf("log2(%v) prec=%s: got %x, want %x", x, p,
							math.Float32bits(got[i]), math.Float32bits(want))
					}
				}
			}(p)
		}
	}
	wg.Wait()
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rlibm/internal/obs"
)

// TestJSONLongLiteralsNotRejected is the regression test for the 413 bug:
// the old handler capped the body at MaxBatch*32 bytes + slack, so a legal
// MaxBatch-element request whose number literals were long (JSON permits
// arbitrarily many digits) was rejected. The limit is now enforced in
// elements during decode: exactly MaxBatch elements must be 200 no matter
// how many bytes their literals take.
func TestJSONLongLiteralsNotRejected(t *testing.T) {
	const maxBatch = 8
	ts := newTestServer(t, Config{MaxBatch: maxBatch})

	// Each literal is ~1000 bytes: far beyond the old 8*32+4096 byte cap,
	// but still only 8 elements. The long tail of zeros does not change the
	// parsed value.
	longLiteral := "1.5" + strings.Repeat("0", 990) + "1e0"
	var b strings.Builder
	b.WriteString(`{"x":[`)
	for i := 0; i < maxBatch; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(longLiteral)
	}
	b.WriteString(`]}`)
	resp, err := http.Post(ts.URL+"/v1/eval/exp/rlibm", "application/json", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := json.Marshal(resp.Header)
		t.Fatalf("MaxBatch-element request with long literals: status %d, want 200 (%s)", resp.StatusCode, body)
	}
	var reply struct {
		Y []f32 `json:"y"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Y) != maxBatch {
		t.Fatalf("got %d results, want %d", len(reply.Y), maxBatch)
	}
	want := wantFor(t, "exp", "rlibm", 1.5)
	for i, y := range reply.Y {
		if math.Float32bits(float32(y)) != math.Float32bits(want) {
			t.Errorf("element %d: %x, want %x", i, math.Float32bits(float32(y)), math.Float32bits(want))
		}
	}
}

// TestLimitErrorSchemaUnified: both endpoints report the same 413 body
// shape, with the limit in elements (never the internal byte heuristic).
func TestLimitErrorSchemaUnified(t *testing.T) {
	const maxBatch = 8
	ts := newTestServer(t, Config{MaxBatch: maxBatch})

	check := func(name, path, contentType, body string) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, contentType, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: status %d, want 413", name, resp.StatusCode)
		}
		var e struct {
			Error    string `json:"error"`
			Elements int    `json:"elements"`
			Limit    int    `json:"limit"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("%s: decoding error body: %v", name, err)
		}
		if e.Limit != maxBatch {
			t.Errorf("%s: limit = %d, want %d (elements)", name, e.Limit, maxBatch)
		}
		if e.Elements != maxBatch+1 {
			t.Errorf("%s: elements = %d, want %d (the exact rejected count)", name, e.Elements, maxBatch+1)
		}
		if !strings.Contains(e.Error, "elements") {
			t.Errorf("%s: error %q does not state the unit (elements)", name, e.Error)
		}
		if strings.Contains(e.Error, "bytes") {
			t.Errorf("%s: error %q leaks the byte heuristic", name, e.Error)
		}
	}
	check("json", "/v1/eval/exp/rlibm", "application/json", `{"x":[1,2,3,4,5,6,7,8,9]}`)
	check("binary", "/v1/evalbin/exp/rlibm", "application/octet-stream", strings.Repeat("\x00", 4*(maxBatch+1)))
}

// TestSpecialsRoundTripJSON: ±0, ±Inf, NaN and subnormals through the JSON
// endpoint, in both spellings directions — including the accepted "+Inf"
// input spelling and the sign of zero.
func TestSpecialsRoundTripJSON(t *testing.T) {
	ts := newTestServer(t, Config{})
	post := func(body string) []json.RawMessage {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/eval/exp/rlibm-estrin-fma", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, want 200 for %s", resp.StatusCode, body)
		}
		var reply struct {
			Y []json.RawMessage `json:"y"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			t.Fatal(err)
		}
		return reply.Y
	}

	// exp of: NaN -> "NaN", +Inf (both input spellings) -> "Inf",
	// -Inf -> 0, -0 -> 1, smallest subnormal -> 1.
	got := post(`{"x":["NaN","Inf","+Inf","-Inf",-0,1e-45]}`)
	want := []string{`"NaN"`, `"Inf"`, `"Inf"`, `0`, `1`, `1`}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i, w := range want {
		if string(got[i]) != w {
			t.Errorf("element %d: got %s, want %s", i, got[i], w)
		}
	}

	// log2 produces -Inf at +0 and -0, NaN below zero; subnormal inputs
	// have finite logs. The response spellings must round-trip as inputs.
	resp, err := http.Post(ts.URL+"/v1/eval/log2/rlibm", "application/json",
		strings.NewReader(`{"x":[0,-0,-1,1e-45]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reply struct {
		Y []f32 `json:"y"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	wants := []float32{
		wantFor(t, "log2", "rlibm", 0),
		wantFor(t, "log2", "rlibm", float32(math.Copysign(0, -1))),
		wantFor(t, "log2", "rlibm", -1),
		wantFor(t, "log2", "rlibm", 1e-45),
	}
	for i, w := range wants {
		g := float32(reply.Y[i])
		if math.Float32bits(g) != math.Float32bits(w) && !(isNaN32(g) && isNaN32(w)) {
			t.Errorf("log2 special %d: got %x, want %x", i, math.Float32bits(g), math.Float32bits(w))
		}
	}
}

// TestSpecialsRoundTripBinary: the binary endpoint carries every bit
// pattern unchanged — specials, negative zero, subnormals in and out.
func TestSpecialsRoundTripBinary(t *testing.T) {
	ts := newTestServer(t, Config{})
	src := []float32{
		float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)),
		0, float32(math.Copysign(0, -1)),
		math.Float32frombits(1),          // smallest positive subnormal
		math.Float32frombits(0x807fffff), // largest negative subnormal
		-103.9,                           // exp: subnormal output
	}
	for _, fn := range []string{"exp", "log2"} {
		got, resp := binEval(t, ts.URL, fn, "rlibm-estrin-fma", src)
		if got == nil {
			t.Fatalf("%s: status %d", fn, resp.StatusCode)
		}
		for i, x := range src {
			want := wantFor(t, fn, "rlibm-estrin-fma", x)
			if math.Float32bits(got[i]) != math.Float32bits(want) &&
				!(isNaN32(got[i]) && isNaN32(want)) {
				t.Errorf("%s(%g): got %x, want %x", fn, x, math.Float32bits(got[i]), math.Float32bits(want))
			}
		}
	}
}

// TestJSONResponseZeroAllocsPerElem: the regression test for the response
// allocation bug — encoding y through the pooled scratch buffer must not
// allocate per element (the old path allocated once per element in
// f32.MarshalJSON plus a fresh []f32 copy of the batch).
func TestJSONResponseZeroAllocsPerElem(t *testing.T) {
	y := make([]float32, 4096)
	for i := range y {
		y[i] = float32(i)/16 + 0.0625
	}
	y[0] = float32(math.NaN())
	y[1] = float32(math.Inf(1))
	buf := make([]byte, 0, 16*len(y)+64)
	var out []byte
	if avg := testing.AllocsPerRun(10, func() { out = appendEvalResponse(buf[:0], y) }); avg != 0 {
		t.Errorf("appendEvalResponse allocates %.1f objects per call, want 0", avg)
	}
	if !bytes.HasPrefix(out, []byte(`{"y":["NaN","Inf",`)) {
		t.Errorf("unexpected encoding prefix: %.40s", out)
	}
}

// TestJSONDecodeAllocsPerElement: the scanner-based decoder must stay at
// one heap object per element — the ParseFloat string conversion — where
// the old path ran a full json.Unmarshal per element (~6 objects).
func TestJSONDecodeAllocsPerElement(t *testing.T) {
	const n = 4096
	var b strings.Builder
	b.WriteString(`{"x":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d.%d", i%100, i%7+1)
	}
	b.WriteString(`]}`)
	body := []byte(b.String())
	srcp := getBufEmpty(n)
	defer putBuf(srcp)
	avg := testing.AllocsPerRun(10, func() {
		*srcp = (*srcp)[:0]
		if _, err := decodeEvalRequest(body, 1<<20, srcp); err != nil {
			t.Fatal(err)
		}
	})
	if perElem := avg / n; perElem > 1.05 {
		t.Errorf("decode allocates %.2f objects per element, want <= 1", perElem)
	}
}

// TestJSONDecodeStrictGrammar: the hand-rolled scanner must not inherit
// strconv's laxer syntax — JSON forbids these spellings.
func TestJSONDecodeStrictGrammar(t *testing.T) {
	for _, bad := range []string{
		`{"x":[01]}`, `{"x":[+1]}`, `{"x":[1.]}`, `{"x":[.5]}`,
		`{"x":[0x1p3]}`, `{"x":[1e]}`, `{"x":[inf]}`, `{"x":[nan]}`,
		`{"x":[1,]}`, `{"x":[1 2]}`, `{"x":[1]`, `{"x":[1]}}`,
		`{"x":"nope"}`, `[1]`, ``,
	} {
		srcp := getBufEmpty(4)
		if _, err := decodeEvalRequest([]byte(bad), 8, srcp); err == nil {
			t.Errorf("%s: accepted, want a parse error", bad)
		}
		putBuf(srcp)
	}
	for _, good := range []string{
		`{"x":[]}`, `{"x":null}`, `{"x":[-0.5e-3,"NaN","+Inf"]}`,
		`{"pad":{"a":[1,"]"]},"x":[1,2]} `, `{}`,
	} {
		srcp := getBufEmpty(4)
		if _, err := decodeEvalRequest([]byte(good), 8, srcp); err != nil {
			t.Errorf("%s: rejected with %v, want accepted", good, err)
		}
		putBuf(srcp)
	}
}

// FuzzEvalBin drives the binary endpoint with arbitrary bodies: empty, odd
// lengths, exactly-at-limit and over-limit frames must map to the documented
// statuses and never panic.
func FuzzEvalBin(f *testing.F) {
	const maxBatch = 16
	srv := New(Config{
		MaxBatch:           maxBatch,
		CoalesceMaxRequest: -1, // direct path: no flush-delay per fuzz case
		Registry:           obs.NewRegistry(),
	})
	handler := srv.Handler()
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(make([]byte, 4))
	f.Add(make([]byte, 4*maxBatch))   // exactly at the limit
	f.Add(make([]byte, 4*maxBatch+4)) // one element over
	f.Add(make([]byte, 4*maxBatch+1)) // over and ragged
	f.Fuzz(func(t *testing.T, data []byte) {
		req := httptest.NewRequest("POST", "/v1/evalbin/exp/rlibm", bytes.NewReader(data))
		rr := httptest.NewRecorder()
		handler.ServeHTTP(rr, req)
		switch {
		case len(data) > 4*maxBatch:
			if rr.Code != http.StatusRequestEntityTooLarge {
				t.Fatalf("%d bytes: status %d, want 413", len(data), rr.Code)
			}
		case len(data)%4 != 0:
			if rr.Code != http.StatusBadRequest {
				t.Fatalf("%d bytes (ragged): status %d, want 400", len(data), rr.Code)
			}
		default:
			if rr.Code != http.StatusOK {
				t.Fatalf("%d bytes: status %d, want 200", len(data), rr.Code)
			}
			if got := rr.Body.Len(); got != len(data) {
				t.Fatalf("response has %d bytes, want %d", got, len(data))
			}
		}
	})
}

package serve

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rlibm/internal/obs"
	"rlibm/pkg/rlibm"
)

// TestCoalescedBitIdentical: many small concurrent requests flow through
// the cross-request accumulator, and every response is still bit-identical
// to a direct kernel call — coalescing changes scheduling, never results.
// The metrics prove requests actually shared sweeps: a short hold inside
// every flush guarantees arrivals pile up behind the running sweep the way
// they do under real load.
func TestCoalescedBitIdentical(t *testing.T) {
	reg := obs.NewRegistry()
	srv := New(Config{
		Registry:           reg,
		CoalesceMaxRequest: 4096,
		CoalesceFlushElems: 1024,
	})
	srv.coalescers[rlibm.FuncExp][rlibm.EstrinFMA][rlibm.PrecFloat32].onFlush = func() {
		time.Sleep(200 * time.Microsecond)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	const clients = 16
	const perClient = 8
	var wg sync.WaitGroup
	errc := make(chan string, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for r := 0; r < perClient; r++ {
				src := make([]float32, 16+rng.Intn(48))
				for i := range src {
					src[i] = float32(rng.Float64()*160 - 80)
				}
				got, resp := binEval(t, ts.URL, "exp", "rlibm-estrin-fma", src)
				if got == nil {
					errc <- resp.Status
					continue
				}
				for i, x := range src {
					want := wantFor(t, "exp", "rlibm-estrin-fma", x)
					if math.Float32bits(got[i]) != math.Float32bits(want) {
						errc <- "bit mismatch"
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for e := range errc {
		t.Fatalf("coalesced request failed: %s", e)
	}
	snap := reg.Snapshot()
	reqs := snap.Counter("serve.coalesce.requests")
	flushes := snap.Counter("serve.coalesce.flushes")
	if reqs != clients*perClient {
		t.Errorf("serve.coalesce.requests = %d, want %d (every request coalesced)", reqs, clients*perClient)
	}
	if flushes == 0 || flushes >= reqs {
		t.Errorf("flushes = %d for %d requests: coalescing did not combine requests", flushes, reqs)
	}
	if g := snap.Gauge("serve.coalesce.queue_elems"); g != 0 {
		t.Errorf("queue_elems gauge = %d after drain, want 0", g)
	}
}

// TestCoalesceSweepCap: CoalesceFlushElems only caps how many elements one
// sweep takes; requests beyond the cap land in the next sweep rather than
// stalling, so concurrent traffic past the cap still completes promptly.
func TestCoalesceSweepCap(t *testing.T) {
	ts := newTestServer(t, Config{
		CoalesceMaxRequest: 4096,
		CoalesceFlushElems: 64, // two 48-elem requests cannot share one sweep
	})
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			binEval(t, ts.URL, "log2", "rlibm", make([]float32, 48))
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("capped sweeps took %v; a request stalled behind the cap", elapsed)
	}
}

// TestCoalesceLoneRequestImmediate: with no flush running, the arriving
// request becomes the flusher and evaluates at once — an idle server adds no
// queueing delay, regardless of how far away the sweep-size cap is.
func TestCoalesceLoneRequestImmediate(t *testing.T) {
	ts := newTestServer(t, Config{
		CoalesceMaxRequest: 4096,
		CoalesceFlushElems: 1 << 20,
	})
	start := time.Now()
	got, resp := binEval(t, ts.URL, "exp2", "rlibm", []float32{1, 2, 3})
	if got == nil {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("lone-request flush took %v, want immediate", elapsed)
	}
	for i, x := range []float32{1, 2, 3} {
		want := wantFor(t, "exp2", "rlibm", x)
		if math.Float32bits(got[i]) != math.Float32bits(want) {
			t.Errorf("element %d: got %x, want %x", i, math.Float32bits(got[i]), math.Float32bits(want))
		}
	}
}

// TestOverloadShedsTyped429: when the bounded coalescer queue is full, the
// server sheds with a typed 429 (Retry-After header + retry_after_ms body)
// instead of queueing without bound — and recovers to serve again once the
// queue drains.
func TestOverloadShedsTyped429(t *testing.T) {
	reg := obs.NewRegistry()
	srv := New(Config{
		Registry:           reg,
		CoalesceMaxRequest: 8,
		CoalesceMaxDelay:   300 * time.Millisecond,
		MaxPendingElems:    16,
	})
	// Pin the flusher inside its first sweep so the bounded queue can fill
	// behind it, the way a slow sweep under real load would.
	entered := make(chan struct{}, 1)
	hold := make(chan struct{})
	srv.coalescers[rlibm.FuncExp][rlibm.Horner][rlibm.PrecFloat32].onFlush = func() {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-hold
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	var wg sync.WaitGroup
	post := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got, resp := binEval(t, ts.URL, "exp", "rlibm", make([]float32, 8)); got == nil {
				t.Errorf("queued request failed: %d", resp.StatusCode)
			}
		}()
	}
	post() // becomes the flusher and blocks inside onFlush
	<-entered
	// Two more 8-element requests fill the 16-element queue behind the
	// pinned sweep.
	post()
	post()
	// The gauge counts the pinned in-flight sweep (8) plus the full queue (16).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if reg.Snapshot().Gauge("serve.coalesce.queue_elems") == 24 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	// The queue is full: the next request must shed.
	resp, err := http.Post(ts.URL+"/v1/evalbin/exp/rlibm", "application/octet-stream",
		strings.NewReader(strings.Repeat("\x00", 4*8)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		resp.Body.Close()
		t.Fatalf("request against a full queue: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response has no Retry-After header")
	}
	var e struct {
		Error        string `json:"error"`
		RetryAfterMs int64  `json:"retry_after_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if e.RetryAfterMs <= 0 {
		t.Errorf("retry_after_ms = %d, want > 0", e.RetryAfterMs)
	}
	if !strings.Contains(e.Error, "overloaded") {
		t.Errorf("shed error %q does not say overloaded", e.Error)
	}

	close(hold) // release the pinned sweep; subsequent flushes pass straight through
	wg.Wait()   // the queued requests complete normally — shedding, not collapse
	if n := reg.Snapshot().Counter("serve.shed_total"); n == 0 {
		t.Error("serve.shed_total did not count the shed")
	}
	// And the server recovered: the same request now succeeds.
	if got, resp := binEval(t, ts.URL, "exp", "rlibm", make([]float32, 8)); got == nil {
		t.Fatalf("post-overload request failed: %d", resp.StatusCode)
	}
}

// TestDirectPathSheds: the non-coalesced path is bounded too — when
// MaxInflightBatches sweeps are already running, a direct request waits at
// most one flush interval and then sheds 429.
func TestDirectPathSheds(t *testing.T) {
	srv := New(Config{
		Registry:           obs.NewRegistry(),
		CoalesceMaxRequest: -1, // everything is direct
		CoalesceMaxDelay:   5 * time.Millisecond,
		MaxInflightBatches: 1,
	})
	srv.directSem <- struct{}{} // occupy the only slot
	req := httptest.NewRequest("POST", "/v1/evalbin/exp/rlibm", strings.NewReader("\x00\x00\x00\x00"))
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("direct request with saturated semaphore: status %d, want 429", rr.Code)
	}
	<-srv.directSem // release
	rr = httptest.NewRecorder()
	req = httptest.NewRequest("POST", "/v1/evalbin/exp/rlibm", strings.NewReader("\x00\x00\x00\x00"))
	srv.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("after release: status %d, want 200", rr.Code)
	}
}

package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"rlibm/internal/obs"
	"rlibm/pkg/rlibm"
)

// startStreamServer runs ServeStream on a loopback listener and returns its
// address; the server and listener are torn down with the test.
func startStreamServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	srv := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeStream(ctx, ln) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("ServeStream did not return after cancel")
		}
	})
	return srv, ln.Addr().String()
}

// TestStreamRoundTrip: concurrent small Evals from many goroutines over ONE
// connection — the coalescing-friendly shape — all bit-identical to direct
// kernel calls, for every function and scheme and with specials included.
func TestStreamRoundTrip(t *testing.T) {
	_, addr := startStreamServer(t, Config{
		CoalesceMaxRequest: 4096,
		CoalesceFlushElems: 2048,
		CoalesceMaxDelay:   time.Millisecond,
	})
	c, err := DialStream(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	specials := []float32{
		float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)),
		0, float32(math.Copysign(0, -1)), math.Float32frombits(1), 1e-40,
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for r := 0; r < 20; r++ {
				f := rlibm.Funcs[(g+r)%rlibm.NumFuncs]
				sch := rlibm.Schemes[r%rlibm.NumSchemes]
				src := append([]float32{}, specials...)
				for i := 0; i < 32; i++ {
					src = append(src, math.Float32frombits(rng.Uint32()))
				}
				dst := make([]float32, len(src))
				if err := c.Eval(f, sch, dst, src); err != nil {
					t.Errorf("%v/%v: %v", f, sch, err)
					return
				}
				ev, err := rlibm.New(f, sch)
				if err != nil {
					t.Errorf("%v/%v: %v", f, sch, err)
					return
				}
				k := ev.Kernel()
				for i, x := range src {
					want := float32(k(float64(x)))
					if math.Float32bits(dst[i]) != math.Float32bits(want) &&
						!(isNaN32(dst[i]) && isNaN32(want)) {
						t.Errorf("%v/%v(%x): got %x, want %x", f, sch,
							math.Float32bits(x), math.Float32bits(dst[i]), math.Float32bits(want))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// rawFrame writes one hand-built request frame and reads frames until the
// response with the wanted id arrives.
func rawFrame(t *testing.T, conn net.Conn, id uint64, fb, sb byte, flags uint16, payload []byte) (status byte, detail uint16, body []byte) {
	t.Helper()
	frame := make([]byte, 4+streamHdrLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(streamHdrLen+len(payload)))
	binary.LittleEndian.PutUint64(frame[4:12], id)
	frame[12], frame[13] = fb, sb
	binary.LittleEndian.PutUint16(frame[14:16], flags)
	copy(frame[16:], payload)
	if _, err := conn.Write(frame); err != nil {
		t.Fatalf("writing frame: %v", err)
	}
	var hdr [4 + streamHdrLen]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			t.Fatalf("reading response header: %v", err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		gotID := binary.LittleEndian.Uint64(hdr[4:12])
		body = make([]byte, length-streamHdrLen)
		if _, err := io.ReadFull(conn, body); err != nil {
			t.Fatalf("reading response body: %v", err)
		}
		if gotID == id {
			return hdr[12], binary.LittleEndian.Uint16(hdr[14:16]), body
		}
	}
}

// TestStreamPerRequestErrors: unknown func/scheme codes, ragged payloads,
// nonzero flags and over-limit batches are reported in-band against the
// request id — and the connection stays usable afterwards.
func TestStreamPerRequestErrors(t *testing.T) {
	_, addr := startStreamServer(t, Config{
		MaxBatch:           8,
		CoalesceMaxRequest: -1,
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))

	cases := []struct {
		name       string
		fb, sb     byte
		flags      uint16
		payload    []byte
		wantStatus byte
	}{
		{"unknown func", 99, 0, 0, make([]byte, 4), streamBadFunc},
		{"unknown scheme", 0, 77, 0, make([]byte, 4), streamBadScheme},
		{"ragged payload", 0, 0, 0, make([]byte, 3), streamBadFrame},
		{"nonzero flags", 0, 0, 7, make([]byte, 4), streamBadFrame},
		{"over limit", 0, 0, 0, make([]byte, 4*9), streamTooLarge},
	}
	for i, tc := range cases {
		status, _, body := rawFrame(t, conn, uint64(100+i), tc.fb, tc.sb, tc.flags, tc.payload)
		if status != tc.wantStatus {
			t.Errorf("%s: status %d (%s), want %d", tc.name, status, body, tc.wantStatus)
		}
		if len(body) == 0 {
			t.Errorf("%s: error response has no message payload", tc.name)
		}
	}

	// The connection survived five per-request errors: a good frame works.
	payload := make([]byte, 8)
	binary.LittleEndian.PutUint32(payload[0:], math.Float32bits(1))
	binary.LittleEndian.PutUint32(payload[4:], math.Float32bits(2))
	status, _, body := rawFrame(t, conn, 999, byte(rlibm.FuncExp2), byte(rlibm.Horner), 0, payload)
	if status != streamOK {
		t.Fatalf("good frame after errors: status %d (%s)", status, body)
	}
	if len(body) != 8 {
		t.Fatalf("result payload has %d bytes, want 8", len(body))
	}
	for i, x := range []float32{1, 2} {
		got := math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:]))
		want := wantFor(t, "exp2", "rlibm", x)
		if math.Float32bits(got) != math.Float32bits(want) {
			t.Errorf("element %d: got %x, want %x", i, math.Float32bits(got), math.Float32bits(want))
		}
	}
}

// TestStreamOverloadStatus: a full bounded queue surfaces as the stream
// protocol's overloaded status (ErrOverloaded from the client), with some
// requests still served — shed, not collapse. A hold inside the first sweep
// pins the flusher so the burst deterministically fills the bounded queue.
func TestStreamOverloadStatus(t *testing.T) {
	reg := obs.NewRegistry()
	srv, addr := startStreamServer(t, Config{
		Registry:           reg,
		CoalesceMaxRequest: 8,
		MaxPendingElems:    16,
	})
	entered := make(chan struct{}, 1)
	hold := make(chan struct{})
	srv.coalescers[rlibm.FuncExp][rlibm.Horner][rlibm.PrecFloat32].onFlush = func() {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-hold
	}
	c, err := DialStream(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The priming request becomes the flusher and pins inside its sweep.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		dst := make([]float32, 8)
		if err := c.Eval(rlibm.FuncExp, rlibm.Horner, dst, make([]float32, 8)); err != nil {
			t.Errorf("priming request failed: %v", err)
		}
	}()
	<-entered

	// Nine more 8-elem requests behind the pinned sweep: two fill the
	// 16-element queue, the other seven must shed with ErrOverloaded.
	const burst = 9
	results := make([]error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dst := make([]float32, 8)
			results[i] = c.Eval(rlibm.FuncExp, rlibm.Horner, dst, make([]float32, 8))
		}(i)
	}
	// Sheds are answered immediately; wait for all seven before releasing
	// the flusher so the queue is provably full the whole time.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Counter("serve.shed_total") < burst-2 {
		if time.Now().After(deadline) {
			t.Fatal("sheds never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	close(hold)
	wg.Wait()

	var ok, shed int
	for _, err := range results {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrOverloaded):
			shed++
		default:
			t.Errorf("unexpected error: %v", err)
		}
	}
	if ok != 2 {
		t.Errorf("served burst requests = %d, want 2 (the queue holds exactly two)", ok)
	}
	if shed != burst-2 {
		t.Errorf("shed burst requests = %d, want %d", shed, burst-2)
	}
	// Recovery: after the burst drains, requests flow again.
	dst := make([]float32, 2)
	if err := c.Eval(rlibm.FuncExp, rlibm.Horner, dst, []float32{1, 2}); err != nil {
		t.Fatalf("post-burst request failed: %v", err)
	}
}

// TestStreamDrain: cancelling the stream serve context lets in-flight
// requests finish and flush their responses before ServeStream returns,
// and the listener stops accepting.
func TestStreamDrain(t *testing.T) {
	hold := make(chan struct{})
	entered := make(chan struct{})
	reg := obs.NewRegistry()
	srv := New(Config{Registry: reg, DrainTimeout: 5 * time.Second, CoalesceMaxRequest: -1})
	var once sync.Once
	srv.onEval = func() {
		once.Do(func() {
			close(entered)
			<-hold
		})
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.ServeStream(ctx, ln) }()

	c, err := DialStream(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	evalDone := make(chan error, 1)
	go func() {
		dst := make([]float32, 2)
		evalDone <- c.Eval(rlibm.FuncExp, rlibm.Horner, dst, []float32{1, 2})
	}()

	<-entered // request is in flight
	cancel()  // begin shutdown

	select {
	case <-serveDone:
		t.Fatal("ServeStream returned while a request was in flight")
	case <-time.After(100 * time.Millisecond):
	}

	close(hold)
	if err := <-evalDone; err != nil {
		t.Fatalf("in-flight stream request failed during drain: %v", err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("ServeStream returned %v after drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeStream did not return after the drained request completed")
	}
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Error("stream listener still accepting connections after shutdown")
	}
}

// FuzzStreamFrame throws arbitrary bytes at a stream connection: the server
// must never panic or hang, whatever the framing garbage — odd lengths,
// empty frames, giant length claims, truncated payloads.
func FuzzStreamFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(make([]byte, 16))                           // empty payload, id 0, exp/horner
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4}) // giant length claim
	good := make([]byte, 4+streamHdrLen+8)
	binary.LittleEndian.PutUint32(good[0:4], streamHdrLen+8)
	binary.LittleEndian.PutUint64(good[4:12], 7)
	f.Add(good)
	atLimit := make([]byte, 4+streamHdrLen+4*16)
	binary.LittleEndian.PutUint32(atLimit[0:4], streamHdrLen+4*16)
	f.Add(atLimit)
	f.Fuzz(func(t *testing.T, data []byte) {
		srv := New(Config{
			MaxBatch:           16,
			CoalesceMaxRequest: -1,
			Registry:           obs.NewRegistry(),
			WriteTimeout:       time.Second,
		})
		client, server := net.Pipe()
		done := make(chan struct{})
		go func() { srv.serveStreamConn(server); close(done) }()
		go io.Copy(io.Discard, client) // drain whatever the server replies
		client.SetWriteDeadline(time.Now().Add(2 * time.Second))
		client.Write(data)
		client.Close()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("serveStreamConn hung on garbage input")
		}
	})
}

package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"rlibm/internal/obs"
	"rlibm/pkg/rlibm"
)

// jsonMaxBytesPerElem is the framing DoS ceiling per element, not the real
// limit: JSON permits arbitrarily long number literals, so the request limit
// is enforced in *elements* during streaming decode and the byte cap only
// has to be generous enough that any legal MaxBatch-element body fits.
const jsonMaxBytesPerElem = 512

// bufPool recycles the request/response element buffers so steady-state
// serving does not grow the heap with request size.
var bufPool = sync.Pool{New: func() any { return new([]float32) }}

func getBuf(n int) *[]float32 {
	p := bufPool.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	*p = (*p)[:n]
	return p
}

// getBufEmpty returns a zero-length buffer with at least capHint capacity,
// for append-style fills (the streaming JSON decoder, the coalescer queue).
func getBufEmpty(capHint int) *[]float32 {
	p := bufPool.Get().(*[]float32)
	if cap(*p) < capHint {
		*p = make([]float32, 0, capHint)
	} else {
		*p = (*p)[:0]
	}
	return p
}

func putBuf(p *[]float32) { bufPool.Put(p) }

// byteBufPool recycles raw byte buffers: JSON response bodies, binary
// request/response frames, stream protocol frames.
var byteBufPool = sync.Pool{New: func() any { return new([]byte) }}

func getByteBuf(n int) *[]byte {
	p := byteBufPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

func putByteBuf(p *[]byte) { byteBufPool.Put(p) }

// route resolves the {func}/{scheme} path segments, replying 404 on unknown
// names (the URL space is the API surface; a bad segment is a missing
// resource, not a bad request).
func (s *Server) route(w http.ResponseWriter, r *http.Request) (rlibm.Func, rlibm.Scheme, bool) {
	f, err := rlibm.ParseFunc(r.PathValue("func"))
	if err != nil {
		writeAPIError(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("unknown function %q", r.PathValue("func"))})
		return 0, 0, false
	}
	sch, err := rlibm.ParseScheme(r.PathValue("scheme"))
	if err != nil {
		writeAPIError(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("unknown scheme %q", r.PathValue("scheme"))})
		return 0, 0, false
	}
	return f, sch, true
}

// resolvePrec maps a request's precision name ("" means full precision) to a
// Precision, replying the uniform {error, ...} 400 body on an unknown name —
// precision is request content (a JSON field or query parameter), not a path
// segment, so a bad one is a bad request rather than a missing resource. The
// error text is rlibm.ParsePrecision's, which enumerates the valid names.
func (s *Server) resolvePrec(w http.ResponseWriter, name string) (rlibm.Precision, bool) {
	if name == "" {
		return rlibm.PrecFloat32, true
	}
	p, err := rlibm.ParsePrecision(name)
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return 0, false
	}
	return p, true
}

// apiError is the uniform error body of every non-200 response. Limit is
// always the element limit (never bytes — the byte ceiling is an internal
// heuristic that must not leak); Elements appears when the server knows the
// exact count that was rejected; RetryAfterMs appears on 429 sheds.
type apiError struct {
	Error        string `json:"error"`
	Elements     int    `json:"elements,omitempty"`
	Limit        int    `json:"limit,omitempty"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

func writeAPIError(w http.ResponseWriter, code int, e apiError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(e)
}

// writeLimitError is the shared 413 shape of both endpoints: the limit in
// elements, plus the exact element count when the server saw it.
func writeLimitError(w http.ResponseWriter, elements, limit int) {
	e := apiError{Limit: limit, Elements: elements}
	if elements > 0 {
		e.Error = fmt.Sprintf("batch of %d elements exceeds limit of %d", elements, limit)
	} else {
		e.Error = fmt.Sprintf("batch exceeds limit of %d elements", limit)
	}
	writeAPIError(w, http.StatusRequestEntityTooLarge, e)
}

// writeOverloaded is the typed 429 load-shedding response: the bounded
// queue in front of the kernels is full, and the client should back off for
// about one flush interval before retrying.
func (s *Server) writeOverloaded(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	writeAPIError(w, http.StatusTooManyRequests, apiError{
		Error:        "server overloaded: request shed by bounded queue",
		RetryAfterMs: s.retryAfterMs(),
	})
}

func (s *Server) retryAfterMs() int64 {
	ms := s.cfg.CoalesceMaxDelay.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms
}

// f32 accepts a float32 from JSON: a number, or the strings "NaN", "Inf",
// "+Inf" and "-Inf" for the non-finite values JSON cannot express (the same
// spellings the response emits, so a response array round-trips as a
// request). The number path parses the decoder-validated literal directly
// with strconv — the JSON grammar has already been checked, and going back
// through json.Unmarshal would cost a full decoder state per element.
type f32 float32

func (v *f32) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"NaN"`:
		*v = f32(math.NaN())
		return nil
	case `"Inf"`, `"+Inf"`:
		*v = f32(math.Inf(1))
		return nil
	case `"-Inf"`:
		*v = f32(math.Inf(-1))
		return nil
	}
	f, err := strconv.ParseFloat(string(data), 64)
	if err != nil {
		return fmt.Errorf("invalid element %s (want a number or \"NaN\"/\"Inf\"/\"-Inf\")", data)
	}
	*v = f32(f)
	return nil
}

// appendF32 appends the JSON encoding of v: shortest round-trip number when
// finite, quoted special otherwise. Appending into a caller-owned buffer is
// what keeps the response path at zero heap allocations per element.
func appendF32(buf []byte, v float32) []byte {
	f := float64(v)
	switch {
	case math.IsNaN(f):
		return append(buf, `"NaN"`...)
	case math.IsInf(f, 1):
		return append(buf, `"Inf"`...)
	case math.IsInf(f, -1):
		return append(buf, `"-Inf"`...)
	}
	return strconv.AppendFloat(buf, f, 'g', -1, 32)
}

// appendEvalResponse appends the {"y":[...]} body for y.
func appendEvalResponse(buf []byte, y []float32) []byte {
	buf = append(buf, `{"y":[`...)
	for i, v := range y {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendF32(buf, v)
	}
	return append(buf, "]}\n"...)
}

// tooManyElementsError marks a request whose "x" array exceeded the element
// limit during decode, carrying the exact count so the 413 body can report
// it; handlers map it to 413.
type tooManyElementsError struct{ elements int }

func (e *tooManyElementsError) Error() string {
	return fmt.Sprintf("serve: batch of %d elements exceeds limit", e.elements)
}

// jsonScanner is the minimal tokenizer behind decodeEvalRequest. The eval
// request shape is one flat object with one interesting key, so a full
// json.Decoder — which builds a decode state per value and boxes every
// token — costs several heap objects per element; scanning the body in
// place costs none.
type jsonScanner struct {
	b []byte
	i int
}

var errJSONTruncated = errors.New("unexpected end of request body")

// peek returns the next non-whitespace byte without consuming it (0 at EOF).
func (s *jsonScanner) peek() byte {
	for s.i < len(s.b) {
		switch s.b[s.i] {
		case ' ', '\t', '\n', '\r':
			s.i++
		default:
			return s.b[s.i]
		}
	}
	return 0
}

// expect consumes the next non-whitespace byte, which must be c.
func (s *jsonScanner) expect(c byte) error {
	if s.peek() != c {
		if s.i >= len(s.b) {
			return errJSONTruncated
		}
		return fmt.Errorf("unexpected %q (want %q)", s.b[s.i], c)
	}
	s.i++
	return nil
}

// stringToken consumes a JSON string and returns its raw contents (escape
// sequences unprocessed — the only strings this API compares against contain
// none, and an escaped spelling simply fails the comparison).
func (s *jsonScanner) stringToken() ([]byte, error) {
	if err := s.expect('"'); err != nil {
		return nil, err
	}
	start := s.i
	for s.i < len(s.b) {
		switch s.b[s.i] {
		case '\\':
			s.i += 2
		case '"':
			s.i++
			return s.b[start : s.i-1], nil
		default:
			s.i++
		}
	}
	return nil, errJSONTruncated
}

// numberToken consumes a JSON number, enforcing the JSON grammar (so the
// laxer strconv syntax — leading zeros, "+1", "1.", hex floats, "inf" —
// stays rejected) and returns its bytes.
func (s *jsonScanner) numberToken() ([]byte, error) {
	s.peek() // position on the first significant byte
	start := s.i
	if s.i < len(s.b) && s.b[s.i] == '-' {
		s.i++
	}
	digits := func() int {
		n := 0
		for s.i < len(s.b) && s.b[s.i] >= '0' && s.b[s.i] <= '9' {
			s.i++
			n++
		}
		return n
	}
	switch {
	case s.i < len(s.b) && s.b[s.i] == '0':
		s.i++ // a leading zero must stand alone
	case digits() == 0:
		return nil, fmt.Errorf("invalid number %q", s.b[start:min(s.i+1, len(s.b))])
	}
	if s.i < len(s.b) && s.b[s.i] == '.' {
		s.i++
		if digits() == 0 {
			return nil, fmt.Errorf("invalid number %q", s.b[start:s.i])
		}
	}
	if s.i < len(s.b) && (s.b[s.i] == 'e' || s.b[s.i] == 'E') {
		s.i++
		if s.i < len(s.b) && (s.b[s.i] == '+' || s.b[s.i] == '-') {
			s.i++
		}
		if digits() == 0 {
			return nil, fmt.Errorf("invalid number %q", s.b[start:s.i])
		}
	}
	return s.b[start:s.i], nil
}

// literal consumes the exact keyword lit (true/false/null tails).
func (s *jsonScanner) literal(lit string) error {
	s.peek()
	if len(s.b)-s.i < len(lit) || string(s.b[s.i:s.i+len(lit)]) != lit {
		return fmt.Errorf("invalid literal at byte %d", s.i)
	}
	s.i += len(lit)
	return nil
}

// skipValue consumes one JSON value of any shape (unknown top-level keys).
func (s *jsonScanner) skipValue() error {
	switch c := s.peek(); {
	case c == '"':
		_, err := s.stringToken()
		return err
	case c == '{' || c == '[':
		open, closer := c, byte('}')
		if c == '[' {
			closer = ']'
		}
		s.i++
		depth := 1
		for s.i < len(s.b) {
			switch s.b[s.i] {
			case '"':
				if _, err := s.stringToken(); err != nil {
					return err
				}
				continue
			case open:
				depth++
			case closer:
				depth--
				if depth == 0 {
					s.i++
					return nil
				}
			}
			s.i++
		}
		return errJSONTruncated
	case c == 't':
		return s.literal("true")
	case c == 'f':
		return s.literal("false")
	case c == 'n':
		return s.literal("null")
	case c == '-' || (c >= '0' && c <= '9'):
		_, err := s.numberToken()
		return err
	case c == 0:
		return errJSONTruncated
	default:
		return fmt.Errorf("unexpected %q", c)
	}
}

// element consumes one "x" array element: a number, or one of the quoted
// special spellings ("NaN", "Inf", "+Inf", "-Inf") JSON cannot express as
// numbers. The ParseFloat string conversion is the decode path's only
// per-element heap allocation.
func (s *jsonScanner) element() (float32, error) {
	if s.peek() == '"' {
		raw, err := s.stringToken()
		if err != nil {
			return 0, err
		}
		switch string(raw) {
		case "NaN":
			return float32(math.NaN()), nil
		case "Inf", "+Inf":
			return float32(math.Inf(1)), nil
		case "-Inf":
			return float32(math.Inf(-1)), nil
		}
		return 0, fmt.Errorf("invalid element %q (want a number or \"NaN\"/\"Inf\"/\"-Inf\")", raw)
	}
	raw, err := s.numberToken()
	if err != nil {
		return 0, err
	}
	f, err := strconv.ParseFloat(string(raw), 64)
	if err != nil && !errors.Is(err, strconv.ErrRange) {
		return 0, fmt.Errorf("invalid element %q", raw)
	}
	return float32(f), nil
}

// decodeEvalRequest parses {"x":[...], "prec": "..."} from body into *srcp,
// enforcing maxBatch in elements while decoding: the request is rejected as
// soon as one element too many appears, regardless of how many bytes the
// literals take. The optional "prec" string rides back verbatim for the
// handler to resolve ("" when absent or null — name resolution is API
// policy, not decoding). Unknown top-level keys are skipped; "x":null is an
// empty batch.
func decodeEvalRequest(body []byte, maxBatch int, srcp *[]float32) (string, error) {
	prec := ""
	s := &jsonScanner{b: body}
	if err := s.expect('{'); err != nil {
		return prec, errors.New("request body must be a JSON object")
	}
	for first := true; s.peek() != '}'; first = false {
		if !first {
			if err := s.expect(','); err != nil {
				return prec, err
			}
		}
		key, err := s.stringToken()
		if err != nil {
			return prec, err
		}
		if err := s.expect(':'); err != nil {
			return prec, err
		}
		if string(key) == "prec" {
			if s.peek() == 'n' { // "prec": null means the default
				if err := s.literal("null"); err != nil {
					return prec, err
				}
				continue
			}
			raw, err := s.stringToken()
			if err != nil {
				return prec, errors.New(`"prec" must be a string`)
			}
			prec = string(raw)
			continue
		}
		if string(key) != "x" {
			if err := s.skipValue(); err != nil {
				return prec, err
			}
			continue
		}
		if s.peek() == 'n' { // "x": null is an empty batch
			if err := s.literal("null"); err != nil {
				return prec, err
			}
			continue
		}
		if err := s.expect('['); err != nil {
			return prec, errors.New(`"x" must be an array`)
		}
		elements := 0
		for first := true; s.peek() != ']'; first = false {
			if !first {
				if err := s.expect(','); err != nil {
					return prec, err
				}
			}
			v, err := s.element()
			if err != nil {
				return prec, err
			}
			elements++
			// Past the limit, keep scanning without storing so the 413 can
			// report the exact element count (the byte ceiling bounds the
			// extra work).
			if elements <= maxBatch {
				*srcp = append(*srcp, v)
			}
		}
		s.i++ // the ']'
		if elements > maxBatch {
			return prec, &tooManyElementsError{elements: elements}
		}
	}
	s.i++ // the '}'
	if s.peek() != 0 {
		return prec, fmt.Errorf("trailing data after request object")
	}
	return prec, nil
}

// handleEvalJSON: POST /v1/eval/{func}/{scheme} with body {"x":[...]}.
// Replies {"y":[...]} where y[i] is the correctly rounded float32 result at
// float32(x[i]). Malformed JSON is 400; more than MaxBatch elements is 413
// (counted during decode — long number literals never trip it); a shed
// request is 429 with Retry-After.
func (s *Server) handleEvalJSON(w http.ResponseWriter, r *http.Request) {
	f, sch, ok := s.route(w, r)
	if !ok {
		return
	}
	if s.onEval != nil {
		s.onEval()
	}
	var rs reqState
	s.begin(&rs, obs.TraceFrom(r.Context()))
	decodeStart := time.Now()
	byteCeil := int64(s.cfg.MaxBatch)*jsonMaxBytesPerElem + 4096
	hint := r.ContentLength
	if hint > byteCeil {
		hint = byteCeil
	}
	bodyp, err := readBodyPooled(http.MaxBytesReader(w, r.Body, byteCeil), hint)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeLimitError(w, 0, s.cfg.MaxBatch)
			return
		}
		writeAPIError(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("reading request: %v", err)})
		return
	}
	defer putByteBuf(bodyp)
	srcp := getBufEmpty(256)
	defer putBuf(srcp)
	precName, err := decodeEvalRequest(*bodyp, s.cfg.MaxBatch, srcp)
	if err != nil {
		var tooMany *tooManyElementsError
		if errors.As(err, &tooMany) {
			writeLimitError(w, tooMany.elements, s.cfg.MaxBatch)
		} else {
			writeAPIError(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("malformed request: %v", err)})
		}
		return
	}
	p, ok := s.resolvePrec(w, precName)
	if !ok {
		return
	}
	rs.decode = time.Since(decodeStart)
	dstp := getBuf(len(*srcp))
	defer putBuf(dstp)
	if err := s.eval(f, sch, p, *dstp, *srcp, &rs); err != nil {
		s.writeOverloaded(w)
		return
	}
	s.batchElems.Observe(int64(len(*srcp)))

	encodeStart := time.Now()
	bufp := getByteBuf(0)
	defer putByteBuf(bufp)
	*bufp = appendEvalResponse((*bufp)[:0], *dstp)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(*bufp)))
	if _, err := w.Write(*bufp); err != nil {
		s.cfg.Log.Debugf("serve: json response write: %v", err)
	}
	rs.encode = time.Since(encodeStart)
	s.observePhases(f, sch, "json", len(*srcp), &rs)
}

// readBodyPooled reads all of r into a pooled byte buffer (returned with
// its put function), using the Content-Length as a capacity hint.
func readBodyPooled(r io.Reader, hint int64) (*[]byte, error) {
	if hint < 0 {
		hint = 0
	}
	p := byteBufPool.Get().(*[]byte)
	if int64(cap(*p)) < hint {
		*p = make([]byte, 0, hint)
	} else {
		*p = (*p)[:0]
	}
	b := *p
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := r.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err == io.EOF {
			*p = b
			return p, nil
		}
		if err != nil {
			*p = b
			putByteBuf(p)
			return nil, err
		}
	}
}

// handleEvalBin: POST /v1/evalbin/{func}/{scheme} with a raw little-endian
// float32 frame as the body; the response is the result frame in the same
// encoding. A body whose length is not a multiple of 4 is 400; more than
// MaxBatch elements is 413; a shed request is 429. This endpoint carries
// every bit pattern, specials included.
func (s *Server) handleEvalBin(w http.ResponseWriter, r *http.Request) {
	f, sch, ok := s.route(w, r)
	if !ok {
		return
	}
	if s.onEval != nil {
		s.onEval()
	}
	var rs reqState
	s.begin(&rs, obs.TraceFrom(r.Context()))
	decodeStart := time.Now()
	limit := int64(s.cfg.MaxBatch) * 4
	bodyp, err := readBodyPooled(http.MaxBytesReader(w, r.Body, limit), r.ContentLength)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			// 4 bytes per element: a declared Content-Length gives the exact
			// rejected element count without reading past the cap.
			elements := 0
			if r.ContentLength > 0 && r.ContentLength%4 == 0 {
				elements = int(r.ContentLength / 4)
			}
			writeLimitError(w, elements, s.cfg.MaxBatch)
			return
		}
		writeAPIError(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("reading request: %v", err)})
		return
	}
	defer putByteBuf(bodyp)
	body := *bodyp
	if len(body)%4 != 0 {
		writeAPIError(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("body length %d is not a multiple of 4", len(body))})
		return
	}
	p, ok := s.resolvePrec(w, r.URL.Query().Get("prec"))
	if !ok {
		return
	}
	n := len(body) / 4
	src := getBuf(n)
	dst := getBuf(n)
	defer putBuf(src)
	defer putBuf(dst)
	for i := 0; i < n; i++ {
		(*src)[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:]))
	}
	rs.decode = time.Since(decodeStart)
	if err := s.eval(f, sch, p, *dst, *src, &rs); err != nil {
		s.writeOverloaded(w)
		return
	}
	s.batchElems.Observe(int64(n))

	encodeStart := time.Now()
	outp := getByteBuf(4 * n)
	defer putByteBuf(outp)
	out := *outp
	for i, y := range *dst {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(y))
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(out)))
	if _, err := w.Write(out); err != nil {
		s.cfg.Log.Debugf("serve: binary response write: %v", err)
	}
	rs.encode = time.Since(encodeStart)
	s.observePhases(f, sch, "bin", n, &rs)
}

// handleHealthz is the liveness probe; the body carries the build identity
// so a fleet health sweep can also confirm which binary is answering.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	b := obs.Build()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"git\":%q,\"go_version\":%q}\n", b.Git, b.GoVersion)
}

// handleMetricz exposes the obs registry: Prometheus text format by default
// (scrapable by a stock Prometheus), the JSON snapshot with ?format=json or
// an Accept: application/json header (what the run-report machinery reads).
// Runtime gauges are captured scrape-fresh, and both formats carry the build
// identity (a labelled build_info sample in the Prometheus text, a
// build_info object in the JSON).
func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	obs.CaptureRuntime(s.cfg.Registry)
	snap := s.cfg.Registry.Snapshot()
	b := obs.Build()
	if r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json") {
		w.Header().Set("Content-Type", "application/json")
		out := struct {
			obs.Snapshot
			BuildInfo obs.BuildIdentity `json:"build_info"`
		}{Snapshot: snap, BuildInfo: b}
		if err := json.NewEncoder(w).Encode(out); err != nil {
			s.cfg.Log.Debugf("serve: metricz write: %v", err)
		}
		return
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	if err := snap.WritePrometheus(w); err != nil {
		s.cfg.Log.Debugf("serve: metricz write: %v", err)
		return
	}
	fmt.Fprintf(w, "# TYPE build_info gauge\nbuild_info{git=%q,goversion=%q} 1\n", b.Git, b.GoVersion)
}

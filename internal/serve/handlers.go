package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"

	"rlibm/pkg/rlibm"
)

// jsonBytesPerElem bounds how many request-body bytes one JSON element may
// reasonably take (sign, 17 significant digits, exponent, separator); the
// JSON body limit is MaxBatch elements at this size plus framing slack.
const jsonBytesPerElem = 32

// bufPool recycles the request/response element buffers so steady-state
// serving does not grow the heap with request size.
var bufPool = sync.Pool{New: func() any { return new([]float32) }}

func getBuf(n int) *[]float32 {
	p := bufPool.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	*p = (*p)[:n]
	return p
}

func putBuf(p *[]float32) { bufPool.Put(p) }

// route resolves the {func}/{scheme} path segments, replying 404 on unknown
// names (the URL space is the API surface; a bad segment is a missing
// resource, not a bad request).
func (s *Server) route(w http.ResponseWriter, r *http.Request) (rlibm.Func, rlibm.Scheme, bool) {
	f, err := rlibm.ParseFunc(r.PathValue("func"))
	if err != nil {
		httpError(w, http.StatusNotFound, "unknown function %q", r.PathValue("func"))
		return 0, 0, false
	}
	sch, err := rlibm.ParseScheme(r.PathValue("scheme"))
	if err != nil {
		httpError(w, http.StatusNotFound, "unknown scheme %q", r.PathValue("scheme"))
		return 0, 0, false
	}
	return f, sch, true
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// f32 carries a float32 across JSON in both directions: a
// shortest-round-trip number when finite, and the strings "NaN", "Inf" and
// "-Inf" for the non-finite values JSON cannot express. The same spellings
// are accepted on input, so a response array round-trips as a request.
type f32 float32

func (v f32) MarshalJSON() ([]byte, error) {
	f := float64(v)
	switch {
	case math.IsNaN(f):
		return []byte(`"NaN"`), nil
	case math.IsInf(f, 1):
		return []byte(`"Inf"`), nil
	case math.IsInf(f, -1):
		return []byte(`"-Inf"`), nil
	}
	return strconv.AppendFloat(nil, f, 'g', -1, 32), nil
}

func (v *f32) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"NaN"`:
		*v = f32(math.NaN())
		return nil
	case `"Inf"`, `"+Inf"`:
		*v = f32(math.Inf(1))
		return nil
	case `"-Inf"`:
		*v = f32(math.Inf(-1))
		return nil
	}
	var f float64
	if err := json.Unmarshal(data, &f); err != nil {
		return err
	}
	*v = f32(f)
	return nil
}

type evalRequest struct {
	X []f32 `json:"x"`
}

type evalResponse struct {
	Y []f32 `json:"y"`
}

// handleEvalJSON: POST /v1/eval/{func}/{scheme} with body {"x":[...]}.
// Replies {"y":[...]} where y[i] is the correctly rounded float32 result at
// float32(x[i]). Malformed JSON is 400; more than MaxBatch elements (or a
// body too large to hold that many) is 413.
func (s *Server) handleEvalJSON(w http.ResponseWriter, r *http.Request) {
	f, sch, ok := s.route(w, r)
	if !ok {
		return
	}
	if s.onEval != nil {
		s.onEval()
	}
	limit := int64(s.cfg.MaxBatch)*jsonBytesPerElem + 4096
	var req evalRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit)).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "request body over %d bytes", limit)
			return
		}
		httpError(w, http.StatusBadRequest, "malformed request: %v", err)
		return
	}
	if len(req.X) > s.cfg.MaxBatch {
		httpError(w, http.StatusRequestEntityTooLarge, "batch of %d exceeds limit %d", len(req.X), s.cfg.MaxBatch)
		return
	}
	src := getBuf(len(req.X))
	dst := getBuf(len(req.X))
	defer putBuf(src)
	defer putBuf(dst)
	for i, x := range req.X {
		(*src)[i] = float32(x)
	}
	rlibm.EvalBatch(f, sch, *dst, *src)
	s.batchElems.Observe(int64(len(req.X)))

	resp := evalResponse{Y: make([]f32, len(req.X))}
	for i, y := range *dst {
		resp.Y[i] = f32(y)
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.cfg.Log.Debugf("serve: json response write: %v", err)
	}
}

// handleEvalBin: POST /v1/evalbin/{func}/{scheme} with a raw little-endian
// float32 frame as the body; the response is the result frame in the same
// encoding. A body whose length is not a multiple of 4 is 400; more than
// MaxBatch elements is 413. This endpoint carries every bit pattern,
// specials included.
func (s *Server) handleEvalBin(w http.ResponseWriter, r *http.Request) {
	f, sch, ok := s.route(w, r)
	if !ok {
		return
	}
	if s.onEval != nil {
		s.onEval()
	}
	limit := int64(s.cfg.MaxBatch) * 4
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "batch exceeds %d elements", s.cfg.MaxBatch)
			return
		}
		httpError(w, http.StatusBadRequest, "reading request: %v", err)
		return
	}
	if len(body)%4 != 0 {
		httpError(w, http.StatusBadRequest, "body length %d is not a multiple of 4", len(body))
		return
	}
	n := len(body) / 4
	src := getBuf(n)
	dst := getBuf(n)
	defer putBuf(src)
	defer putBuf(dst)
	for i := 0; i < n; i++ {
		(*src)[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:]))
	}
	rlibm.EvalBatch(f, sch, *dst, *src)
	s.batchElems.Observe(int64(n))

	out := make([]byte, 4*n)
	for i, y := range *dst {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(y))
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(out)))
	if _, err := w.Write(out); err != nil {
		s.cfg.Log.Debugf("serve: binary response write: %v", err)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// handleMetricz exposes the obs registry snapshot; the serve.* counters and
// histograms land here.
func (s *Server) handleMetricz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.cfg.Registry.Snapshot()); err != nil {
		s.cfg.Log.Debugf("serve: metricz write: %v", err)
	}
}

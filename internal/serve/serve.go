// Package serve implements the rlibm evaluation HTTP service: batched
// correctly rounded elementary functions over pkg/rlibm, with JSON and
// compact binary endpoints, per-function/per-scheme routing, request size
// limits, read/write timeouts, graceful connection draining, and
// observability through internal/obs (request/error counters, latency and
// batch-size histograms, optional trace spans, optional pprof).
//
// The package is a library so the server can run in-process: cmd/rlibm-serve
// wires it to a listener and signals, the end-to-end tests drive it through
// httptest, and rlibm-bench's -serve-bench mode load-tests it over a
// loopback listener.
//
// Endpoints:
//
//	POST /v1/eval/{func}/{scheme}     JSON  {"x":[...]} -> {"y":[...]}
//	POST /v1/evalbin/{func}/{scheme}  raw little-endian float32 frame in/out
//	GET  /healthz                     liveness probe
//	GET  /metricz                     obs registry snapshot as JSON
//	GET  /debug/pprof/...             when Config.EnablePprof is set
//
// {func} is one of exp, exp2, exp10, log, log2, log10; {scheme} is a
// canonical ("rlibm-estrin-fma") or short ("estrin-fma") scheme name.
package serve

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"rlibm/internal/obs"
)

// Config parameterizes a Server. The zero value is usable: every field has a
// default applied by New.
type Config struct {
	// Addr is the listen address for ListenAndServe ("" means ":8090").
	Addr string
	// MaxBatch caps the number of elements in one request (0 means 1<<20).
	// JSON and binary requests beyond it are rejected with 413.
	MaxBatch int
	// ReadTimeout / WriteTimeout bound each request's transfer phases
	// (0 means 10s / 30s).
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: in-flight requests get this
	// long to complete after the serve context is cancelled (0 means 10s).
	DrainTimeout time.Duration
	// Log receives lifecycle and per-request debug lines (nil means quiet).
	Log *obs.Logger
	// Registry receives the serve.* metrics (nil means obs.Default()).
	Registry *obs.Registry
	// Tracer, when non-nil, gets one span per eval request.
	Tracer *obs.Tracer
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8090"
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 1 << 20
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = 10 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	if c.Log == nil {
		c.Log = obs.NewLogger(nil, obs.LevelQuiet)
	}
	return c
}

// Server is the rlibm evaluation service. Create with New; serve with
// ListenAndServe or Serve, or embed Handler in a test server.
type Server struct {
	cfg        Config
	mux        *http.ServeMux
	batchElems *obs.Histogram

	// onEval, when non-nil, runs at the start of every eval request; the
	// drain tests use it to hold requests in flight across a shutdown.
	onEval func()
}

// New builds a Server from cfg (zero value fine; see Config).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		batchElems: cfg.Registry.Histogram("serve.batch_elems"),
	}
	wrap := func(name string, h http.HandlerFunc) http.Handler {
		return obs.HTTPHandler(cfg.Registry, cfg.Tracer, name, h)
	}
	s.mux.Handle("POST /v1/eval/{func}/{scheme}", wrap("serve.eval_json", s.handleEvalJSON))
	s.mux.Handle("POST /v1/evalbin/{func}/{scheme}", wrap("serve.eval_bin", s.handleEvalBin))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metricz", s.handleMetricz)
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the root handler with all routes and middleware installed.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until ctx is cancelled, then shuts down
// gracefully: the listener closes immediately, in-flight requests get up to
// DrainTimeout to complete, and Serve returns once they have (nil) or the
// budget expires (the shutdown error).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:      s.Handler(),
		ReadTimeout:  s.cfg.ReadTimeout,
		WriteTimeout: s.cfg.WriteTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	s.cfg.Log.Infof("serve: listening on %s", ln.Addr())
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.cfg.Log.Infof("serve: draining (up to %v)", s.cfg.DrainTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := hs.Shutdown(sctx)
	<-errc // always http.ErrServerClosed once Shutdown is in flight
	if err != nil {
		return err
	}
	s.cfg.Log.Infof("serve: drained")
	return nil
}

// ListenAndServe binds cfg.Addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

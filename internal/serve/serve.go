// Package serve implements the rlibm evaluation service: batched correctly
// rounded elementary functions over pkg/rlibm, behind two transports that
// share one evaluation core — an HTTP API (JSON and compact binary
// endpoints) and a persistent-connection streaming binary protocol
// (length-prefixed frames over one TCP conn, see stream.go). The core
// coalesces small requests across connections into shared EvalBatch sweeps
// (see coalesce.go), bounds its queues, and sheds excess load with typed
// backpressure errors (HTTP 429 + Retry-After, stream status overloaded)
// instead of collapsing. Observability flows through internal/obs:
// request/error counters, latency, batch-size and flush-size histograms,
// queue-depth gauges, shed counters, optional trace spans, optional pprof,
// and a Prometheus-text /metricz.
//
// The package is a library so the server can run in-process: cmd/rlibm-serve
// wires it to listeners and signals, the end-to-end tests drive it through
// httptest and loopback conns, and rlibm-bench's -serve-bench mode
// load-tests it over loopback listeners.
//
// Endpoints:
//
//	POST /v1/eval/{func}/{scheme}     JSON  {"x":[...]} -> {"y":[...]}
//	POST /v1/evalbin/{func}/{scheme}  raw little-endian float32 frame in/out
//	GET  /healthz                     liveness probe (reports build identity)
//	GET  /metricz                     Prometheus text (JSON with ?format=json)
//	GET  /statusz                     human-readable status page (latency,
//	                                  shed rate, queue depth, canary health)
//	GET  /debug/pprof/...             when Config.EnablePprof is set
//
// {func} is one of exp, exp2, exp10, log, log2, log10; {scheme} is a
// canonical ("rlibm-estrin-fma") or short ("estrin-fma") scheme name. The
// streaming protocol carries the same func/scheme space as one-byte codes.
package serve

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"

	"rlibm/internal/obs"
	"rlibm/internal/oracle"
	"rlibm/pkg/rlibm"
)

// Config parameterizes a Server. The zero value is usable: every field has a
// default applied by New.
type Config struct {
	// Addr is the listen address for ListenAndServe ("" means ":8090").
	Addr string
	// StreamAddr is the listen address for the streaming binary protocol
	// used by ListenAndServeStream ("" means ":8091").
	StreamAddr string
	// MaxBatch caps the number of elements in one request (0 means 1<<20).
	// JSON, binary and stream requests beyond it are rejected with 413 (or
	// the stream's too-large status). The limit is enforced in elements.
	MaxBatch int
	// Backend selects the rlibm batch-kernel backend every evaluator in the
	// process uses. The zero value, rlibm.BackendAuto, resolves to the
	// fastest backend available on the machine. Backend is process-level by
	// design: all backends are bit-identical, so there is nothing to select
	// per request, and the coalescer lanes stay keyed (func, scheme,
	// precision). The resolved backend appears on /statusz and as the
	// serve.backend gauge on /metricz. New panics if the configured backend
	// is not available on this machine (rlibm.Backend.Available reports
	// that; cmd/rlibm-serve checks it at flag parse).
	Backend rlibm.Backend

	// CoalesceMaxRequest: requests with at most this many elements enqueue
	// into the per-(func,scheme) coalescer; larger ones evaluate directly
	// (0 means 4096; negative disables coalescing). Coalescing is adaptive
	// (group commit): an idle accumulator flushes the arriving request
	// immediately, and requests landing while a sweep is being evaluated
	// form the next sweep — no configured delay is ever waited out.
	CoalesceMaxRequest int
	// CoalesceFlushElems caps the elements one coalesced sweep takes from
	// the queue (0 means 1<<15, the batch fan-out regime); whole requests
	// are never split across sweeps.
	CoalesceFlushElems int
	// CoalesceMaxDelay bounds how long a direct (non-coalesced) request
	// waits for an in-flight slot before being shed, and sizes the
	// retry-after hint on 429 responses (0 means 500µs). The adaptive
	// coalescer itself never waits on a timer.
	CoalesceMaxDelay time.Duration
	// MaxPendingElems bounds each (func,scheme) coalescer queue; enqueues
	// beyond it are shed with 429 (0 means 4*CoalesceFlushElems).
	MaxPendingElems int
	// MaxInflightBatches bounds concurrent direct (non-coalesced) sweeps;
	// beyond it requests wait up to CoalesceMaxDelay, then shed with 429
	// (0 means 4*GOMAXPROCS).
	MaxInflightBatches int
	// StreamWindow bounds the in-flight requests one stream connection may
	// have before the server stops reading further frames from it — TCP
	// backpressure rather than shedding (0 means 128).
	StreamWindow int

	// ReadTimeout / WriteTimeout bound each HTTP request's transfer phases
	// (0 means 10s / 30s). Stream connections are persistent: WriteTimeout
	// bounds each response flush, reads block indefinitely between frames.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: in-flight requests get this
	// long to complete after the serve context is cancelled (0 means 10s).
	DrainTimeout time.Duration
	// Log receives lifecycle and per-request debug lines (nil means quiet).
	Log *obs.Logger
	// Registry receives the serve.* metrics (nil means obs.Default()).
	Registry *obs.Registry
	// Tracer, when non-nil, gets one span per eval request.
	Tracer *obs.Tracer
	// TraceSample is the fraction of eval requests that additionally emit
	// per-phase child spans (serve.decode/queue/sweep/encode) to Tracer
	// (0 disables phase spans; 1 traces every request). Sampling is a
	// deterministic stride, so a rate of 0.01 traces exactly every 100th
	// request with no per-request randomness.
	TraceSample float64
	// CanarySample is the fraction of served elements the online correctness
	// canary re-verifies against the Ziv oracle in the background (0 disables
	// the canary). Verification runs strictly off the request path: samples
	// queue into a bounded channel and are dropped — never blocked on — when
	// the verifier falls behind.
	CanarySample float64
	// CanaryQueue bounds the canary's pending verification queue (0 means
	// 1024). Samples arriving while it is full are dropped and counted in
	// serve.canary.dropped_total.
	CanaryQueue int
	// CanaryStore, when non-nil, backs the canary's oracle cache with the
	// persistent store so repeated inputs skip the high-precision recompute.
	CanaryStore *oracle.Store
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8090"
	}
	if c.StreamAddr == "" {
		c.StreamAddr = ":8091"
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 1 << 20
	}
	if c.CoalesceMaxRequest == 0 {
		c.CoalesceMaxRequest = 4096
	}
	if c.CoalesceFlushElems == 0 {
		c.CoalesceFlushElems = 1 << 15
	}
	if c.CoalesceMaxDelay == 0 {
		c.CoalesceMaxDelay = 500 * time.Microsecond
	}
	if c.MaxPendingElems == 0 {
		c.MaxPendingElems = 4 * c.CoalesceFlushElems
	}
	if c.MaxInflightBatches == 0 {
		c.MaxInflightBatches = 4 * runtime.GOMAXPROCS(0)
	}
	if c.StreamWindow == 0 {
		c.StreamWindow = 128
	}
	if c.CanaryQueue == 0 {
		c.CanaryQueue = 1024
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = 10 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	if c.Log == nil {
		c.Log = obs.NewLogger(nil, obs.LevelQuiet)
	}
	return c
}

// Server is the rlibm evaluation service. Create with New; serve HTTP with
// ListenAndServe or Serve, the stream protocol with ListenAndServeStream or
// ServeStream, or embed Handler in a test server.
type Server struct {
	cfg        Config
	mux        *http.ServeMux
	batchElems *obs.Histogram
	shedTotal  *obs.Counter
	started    time.Time

	// evals holds one bound Evaluator per (func, scheme, precision) combo —
	// dispatch resolved once at startup; coalescers holds one request
	// accumulator per combo (precision is part of the coalescing key: a
	// sweep runs exactly one kernel); directSem bounds concurrent
	// non-coalesced sweeps.
	evals      [rlibm.NumFuncs][rlibm.NumSchemes][rlibm.NumPrecisions]*rlibm.Evaluator
	coalescers [rlibm.NumFuncs][rlibm.NumSchemes][rlibm.NumPrecisions]*coalescer
	directSem  chan struct{}

	// backend is the resolved batch-kernel backend every evaluator runs —
	// cfg.Backend with BackendAuto resolved against the machine.
	backend rlibm.Backend

	// Request-level observability (see obsreq.go): per-combo phase-latency
	// instruments, the trace-sampling stride, and a total request counter.
	phases       [rlibm.NumFuncs][rlibm.NumSchemes]*phaseSet
	sampler      *sampler
	evalRequests *obs.Counter

	// canary re-verifies sampled served elements in the background
	// (see canary.go); nil when CanarySample is 0.
	canary *canary

	// stream connection bookkeeping (see stream.go).
	streamConns  *obs.Gauge
	streamFrames *obs.Counter
	streamErrors *obs.Counter

	// onEval, when non-nil, runs at the start of every eval request; the
	// drain tests use it to hold requests in flight across a shutdown.
	onEval func()
}

// New builds a Server from cfg (zero value fine; see Config).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:          cfg,
		mux:          http.NewServeMux(),
		batchElems:   cfg.Registry.Histogram("serve.batch_elems"),
		shedTotal:    cfg.Registry.Counter("serve.shed_total"),
		started:      time.Now(),
		directSem:    make(chan struct{}, cfg.MaxInflightBatches),
		sampler:      newSampler(cfg.TraceSample),
		evalRequests: cfg.Registry.Counter("serve.eval.requests_total"),
		streamConns:  cfg.Registry.Gauge("serve.stream.conns"),
		streamFrames: cfg.Registry.Counter("serve.stream.frames"),
		streamErrors: cfg.Registry.Counter("serve.stream.errors"),
	}
	if cfg.CoalesceMaxRequest < 0 {
		s.cfg.CoalesceMaxRequest = 0 // nothing coalesces; every request is direct
	}
	for _, f := range rlibm.Funcs {
		for _, sch := range rlibm.Schemes {
			// Phase instruments stay keyed (func, scheme): precision is a
			// property of the request, not a new latency population worth 32
			// more histograms per combo.
			s.phases[f][sch] = newPhaseSet(f, sch, cfg.Registry)
			for _, p := range rlibm.Precisions {
				ev, err := rlibm.New(f, sch, rlibm.WithPrecision(p), rlibm.WithBackend(cfg.Backend))
				if err != nil {
					// Reachable only through a Backend the machine cannot
					// build; cmd/rlibm-serve validates at flag parse.
					panic("serve: " + err.Error())
				}
				s.evals[f][sch][p] = ev
				s.coalescers[f][sch][p] = newCoalescer(ev, s.cfg, cfg.Registry)
			}
		}
	}
	// All evaluators resolved the same process-level backend; record it and
	// export it as a gauge so /metricz scrapes can tell fleets apart by
	// batch-kernel backend (value = rlibm.Backend enum: 1 go, 2 vector,
	// 3 asm — never 0/auto, the gauge holds the resolution).
	s.backend = s.evals[rlibm.FuncExp][rlibm.Horner][rlibm.PrecFloat32].Backend()
	cfg.Registry.Gauge("serve.backend").Set(int64(s.backend))
	if cfg.CanarySample > 0 {
		s.canary = newCanary(s.cfg, cfg.Registry)
	}
	wrap := func(name string, h http.HandlerFunc) http.Handler {
		return obs.HTTPHandler(cfg.Registry, cfg.Tracer, name, h)
	}
	s.mux.Handle("POST /v1/eval/{func}/{scheme}", wrap("serve.eval_json", s.handleEvalJSON))
	s.mux.Handle("POST /v1/evalbin/{func}/{scheme}", wrap("serve.eval_bin", s.handleEvalBin))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metricz", s.handleMetricz)
	s.mux.HandleFunc("GET /statusz", s.handleStatusz)
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the root handler with all routes and middleware installed.
func (s *Server) Handler() http.Handler { return s.mux }

// Close releases the Server's background resources: it stops the canary
// worker after letting it drain its queued verifications. Safe to call more
// than once; call it after the listeners have stopped.
func (s *Server) Close() {
	if s.canary != nil {
		s.canary.stop()
	}
}

// Serve accepts connections on ln until ctx is cancelled, then shuts down
// gracefully: the listener closes immediately, in-flight requests get up to
// DrainTimeout to complete, and Serve returns once they have (nil) or the
// budget expires (the shutdown error).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:      s.Handler(),
		ReadTimeout:  s.cfg.ReadTimeout,
		WriteTimeout: s.cfg.WriteTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	s.cfg.Log.Infof("serve: listening on %s", ln.Addr())
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.cfg.Log.Infof("serve: draining (up to %v)", s.cfg.DrainTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := hs.Shutdown(sctx)
	<-errc // always http.ErrServerClosed once Shutdown is in flight
	if err != nil {
		return err
	}
	s.cfg.Log.Infof("serve: drained")
	return nil
}

// ListenAndServe binds cfg.Addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// ServeStream accepts streaming-protocol connections on ln until ctx is
// cancelled, then drains: the listener closes, every connection's read side
// is shut so no new frames arrive, in-flight requests get up to
// DrainTimeout to flush their responses, and stragglers are force-closed.
func (s *Server) ServeStream(ctx context.Context, ln net.Listener) error {
	s.cfg.Log.Infof("serve: stream listening on %s", ln.Addr())
	var (
		mu    sync.Mutex
		conns = map[net.Conn]struct{}{}
		wg    sync.WaitGroup
	)
	acceptDone := make(chan error, 1)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				acceptDone <- err
				return
			}
			mu.Lock()
			conns[conn] = struct{}{}
			mu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.serveStreamConn(conn)
				mu.Lock()
				delete(conns, conn)
				mu.Unlock()
			}()
		}
	}()
	select {
	case err := <-acceptDone:
		return err
	case <-ctx.Done():
	}
	ln.Close()
	<-acceptDone
	s.cfg.Log.Infof("serve: stream draining (up to %v)", s.cfg.DrainTimeout)
	// Stop reading new frames; connections finish their in-flight work and
	// close themselves (idle ones see EOF immediately).
	mu.Lock()
	for c := range conns {
		if tc, ok := c.(interface{ CloseRead() error }); ok {
			tc.CloseRead()
		} else {
			c.SetReadDeadline(time.Now())
		}
	}
	mu.Unlock()
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(s.cfg.DrainTimeout):
		mu.Lock()
		for c := range conns {
			c.Close()
		}
		mu.Unlock()
		<-finished
	}
	s.cfg.Log.Infof("serve: stream drained")
	return nil
}

// ListenAndServeStream binds cfg.StreamAddr and calls ServeStream.
func (s *Server) ListenAndServeStream(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.StreamAddr)
	if err != nil {
		return err
	}
	return s.ServeStream(ctx, ln)
}

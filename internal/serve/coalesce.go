package serve

import (
	"errors"
	"sync"
	"time"

	"rlibm/internal/obs"
	"rlibm/pkg/rlibm"
)

// Adaptive cross-request batch coalescing (group commit). The generated
// batch kernels amortize dispatch over a sweep, but fleet traffic arrives as
// many small requests. Each (func, scheme) pair owns an accumulator: small
// requests append their inputs to a shared queue and block until a flush
// writes their results back. Flushing is adaptive rather than timer-driven —
// when no flush is running, the arriving request starts one immediately (an
// idle server adds no queueing latency at all); while a sweep is being
// evaluated, new arrivals accumulate and the flusher takes them as its next
// sweep the moment the current one finishes. Batch size therefore tracks the
// arrival rate times the sweep service time: light load degenerates to
// direct per-request evaluation, heavy load forms large sweeps with zero
// configured delay. CoalesceFlushElems caps the elements taken per sweep so
// one giant queue cannot starve late arrivals for a whole queue-length.
//
// Because every element is independent and each is computed by exactly the
// same kernel operation sequence regardless of batch composition, coalescing
// cannot change a single output bit.
//
// The queue is bounded (MaxPendingElems): an enqueue that would overflow it
// is refused with errOverloaded instead of growing memory without bound —
// the transport layers translate that into HTTP 429 + Retry-After or the
// stream protocol's overloaded status. Shedding at the door keeps queueing
// delay bounded at about one sweep, so the service degrades by refusing
// excess load rather than by collapsing latency for everyone.

// errOverloaded is the typed backpressure error: a bounded queue is full
// and the request was shed rather than queued.
var errOverloaded = errors.New("serve: overloaded, request shed")

// coalescer accumulates small requests for one (func, scheme, precision)
// combo. Precision is part of the key because a sweep runs one bound kernel:
// a bfloat16 request must never pay for a full-precision polynomial, and
// mixing precisions in one sweep would force the widest on everyone.
type coalescer struct {
	ev         *rlibm.Evaluator
	flushElems int
	maxPending int

	queueElems *obs.Gauge     // aggregate pending elements across combos
	flushSize  *obs.Histogram // elements per flushed sweep
	flushes    *obs.Counter
	coalesced  *obs.Counter // requests served through a coalesced sweep
	shed       *obs.Counter

	// onFlush, when non-nil, runs at the start of every flush (before the
	// sweep); the overload tests use it to hold the flusher busy so the
	// bounded queue actually fills.
	onFlush func()

	mu       sync.Mutex
	srcp     *[]float32 // pending inputs (pooled; nil when queue empty)
	waiters  []coalesceWaiter
	flushing bool // a flusher goroutine is active for this accumulator
}

// sweepTiming is the flush's report back to each waiter: when the sweep's
// EvalBatch began (which ends the waiter's queue phase) and how long it ran.
// It travels over the waiter's completion channel so latency attribution
// needs no shared request state between the flusher and the blocked caller.
type sweepTiming struct {
	start time.Time
	dur   time.Duration
}

// coalesceWaiter is one queued request: its slice [off, off+n) of the
// pending batch, the caller-owned destination, and the completion channel
// (buffered, capacity 1 — the flusher never blocks on a waiter).
type coalesceWaiter struct {
	off, n int
	out    []float32
	done   chan sweepTiming
}

func newCoalescer(ev *rlibm.Evaluator, cfg Config, reg *obs.Registry) *coalescer {
	return &coalescer{
		ev:         ev,
		flushElems: cfg.CoalesceFlushElems,
		maxPending: cfg.MaxPendingElems,
		queueElems: reg.Gauge("serve.coalesce.queue_elems"),
		flushSize:  reg.Histogram("serve.coalesce.flush_elems"),
		flushes:    reg.Counter("serve.coalesce.flushes"),
		coalesced:  reg.Counter("serve.coalesce.requests"),
		shed:       reg.Counter("serve.shed_total"),
	}
}

// enqueue queues src for the next coalesced sweep and blocks until a flush
// has written this request's results into dst. Returns errOverloaded
// (without queuing) when the pending queue cannot absorb src. If no flusher
// is active the calling goroutine becomes the flusher, so an uncontended
// request evaluates immediately with no handoff. When rs is non-nil the
// request's queue-wait and sweep durations are recorded into it.
func (c *coalescer) enqueue(dst, src []float32, rs *reqState) error {
	n := len(src)
	enqueued := time.Now()
	c.mu.Lock()
	pending := 0
	if c.srcp != nil {
		pending = len(*c.srcp)
	}
	if pending+n > c.maxPending {
		c.mu.Unlock()
		c.shed.Inc()
		return errOverloaded
	}
	if c.srcp == nil {
		c.srcp = getBufEmpty(c.flushElems)
	}
	off := len(*c.srcp)
	*c.srcp = append(*c.srcp, src...)
	done := make(chan sweepTiming, 1)
	c.waiters = append(c.waiters, coalesceWaiter{off: off, n: n, out: dst, done: done})
	c.queueElems.Add(int64(n))
	if !c.flushing {
		// Become the flusher for one sweep (normally containing this very
		// request): the uncontended case evaluates immediately, with no
		// timer, handoff or context switch. If more requests queued while
		// the sweep ran, a dedicated goroutine drains them — the enqueuer
		// must not be conscripted past its own response.
		c.flushing = true
		c.mu.Unlock()
		batch := c.takeOne()
		if batch.srcp != nil {
			c.run(batch)
		}
		c.mu.Lock()
		if len(c.waiters) > 0 {
			go c.flushLoop()
		} else {
			c.retireLocked()
		}
		c.mu.Unlock()
	} else {
		c.mu.Unlock()
	}
	timing := <-done
	if rs != nil {
		// Queue-wait ends when this request's sweep started evaluating; the
		// clamp covers the uncontended case where the enqueuer itself became
		// the flusher and the two timestamps interleave.
		if q := timing.start.Sub(enqueued); q > 0 {
			rs.queue = q
		}
		rs.sweep = timing.dur
	}
	return nil
}

// takeOne detaches the next sweep, or a zero batch if the queue is empty.
func (c *coalescer) takeOne() coalesceBatch {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.waiters) == 0 {
		return coalesceBatch{}
	}
	return c.takeLocked()
}

// retireLocked marks the flusher idle and returns the (empty) accumulator
// buffer to the pool. Caller holds c.mu.
func (c *coalescer) retireLocked() {
	c.flushing = false
	if c.srcp != nil {
		putBuf(c.srcp)
		c.srcp = nil
	}
}

// coalesceBatch is one flush unit detached from the accumulator.
type coalesceBatch struct {
	srcp    *[]float32
	waiters []coalesceWaiter
}

// takeLocked detaches up to flushElems pending elements as one sweep (whole
// requests only — a request is never split across sweeps) and compacts the
// remainder. The caller must hold c.mu and run() the batch after unlocking.
func (c *coalescer) takeLocked() coalesceBatch {
	if len(*c.srcp) <= c.flushElems {
		b := coalesceBatch{srcp: c.srcp, waiters: c.waiters}
		c.srcp = nil
		c.waiters = nil
		return b
	}
	// Oversized queue: take leading whole requests up to the cap (always at
	// least one), shift the rest down so their offsets stay valid.
	cut := 0
	elems := 0
	for cut < len(c.waiters) {
		w := c.waiters[cut]
		if cut > 0 && elems+w.n > c.flushElems {
			break
		}
		elems += w.n
		cut++
	}
	b := coalesceBatch{srcp: getBufEmpty(elems), waiters: c.waiters[:cut:cut]}
	*b.srcp = append(*b.srcp, (*c.srcp)[:elems]...)
	rest := getBufEmpty(c.flushElems)
	*rest = append(*rest, (*c.srcp)[elems:]...)
	putBuf(c.srcp)
	c.srcp = rest
	remaining := c.waiters[cut:]
	c.waiters = make([]coalesceWaiter, len(remaining))
	for i, w := range remaining {
		w.off -= elems
		c.waiters[i] = w
	}
	return b
}

// flushLoop drains the accumulator sweep by sweep until it is empty, then
// retires. New requests arriving while a sweep is being evaluated simply
// queue; the loop takes them as its next batch — that is what grows sweeps
// under load without any configured delay.
func (c *coalescer) flushLoop() {
	for {
		c.mu.Lock()
		if len(c.waiters) == 0 {
			c.retireLocked()
			c.mu.Unlock()
			return
		}
		batch := c.takeLocked()
		c.mu.Unlock()
		c.run(batch)
	}
}

// run evaluates one detached batch in a single EvalBatch sweep, copies each
// waiter's slice of the results into its own destination, and releases the
// waiters. Buffers return to the pool once every result has been copied
// out, so waiters never alias pooled memory after wake-up.
func (c *coalescer) run(b coalesceBatch) {
	if c.onFlush != nil {
		c.onFlush()
	}
	src := *b.srcp
	dstp := getBuf(len(src))
	start := time.Now()
	c.ev.EvalBatch(*dstp, src)
	timing := sweepTiming{start: start, dur: time.Since(start)}
	c.flushes.Inc()
	c.flushSize.Observe(int64(len(src)))
	c.coalesced.Add(int64(len(b.waiters)))
	c.queueElems.Add(-int64(len(src)))
	for _, w := range b.waiters {
		copy(w.out, (*dstp)[w.off:w.off+w.n])
		w.done <- timing // buffered; never blocks the flusher
	}
	putBuf(dstp)
	putBuf(b.srcp)
}

// eval is the single evaluation entry point behind every transport: small
// requests coalesce into shared sweeps, large ones run directly under the
// in-flight semaphore. The only error is errOverloaded (a shed). When rs is
// non-nil the queue-wait and sweep phases are attributed into it; on success
// the canary (when enabled) samples elements of the served result for
// background re-verification at the request's precision.
func (s *Server) eval(f rlibm.Func, sch rlibm.Scheme, p rlibm.Precision, dst, src []float32, rs *reqState) error {
	if n := len(src); n > 0 && n <= s.cfg.CoalesceMaxRequest {
		if err := s.coalescers[f][sch][p].enqueue(dst, src, rs); err != nil {
			return err
		}
		s.canary.offer(f, p, src, dst)
		return nil
	}
	acquired := time.Now()
	select {
	case s.directSem <- struct{}{}:
	default:
		// Contended: wait up to CoalesceMaxDelay, then shed instead of
		// queueing without bound.
		t := time.NewTimer(s.cfg.CoalesceMaxDelay)
		select {
		case s.directSem <- struct{}{}:
			t.Stop()
		case <-t.C:
			s.shedTotal.Inc()
			return errOverloaded
		}
	}
	start := time.Now()
	s.evals[f][sch][p].EvalBatch(dst, src)
	if rs != nil {
		// Direct path: queue-wait is the semaphore wait, sweep is the
		// request's own EvalBatch.
		rs.queue = start.Sub(acquired)
		rs.sweep = time.Since(start)
	}
	<-s.directSem
	s.canary.offer(f, p, src, dst)
	return nil
}

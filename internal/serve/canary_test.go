package serve

import (
	"math"
	"sync"
	"testing"
	"time"

	"rlibm/internal/obs"
	"rlibm/pkg/rlibm"
)

// TestCanaryVerifiesServedTraffic: every combo serves a small batch with the
// canary sampling every element; after the drain, everything admissible was
// checked against the oracle and nothing mismatched (the kernels are right,
// so a mismatch here is a canary bug).
func TestCanaryVerifiesServedTraffic(t *testing.T) {
	srv, ts, reg := newObsTestServer(t, Config{
		CanarySample: 1,
		CanaryQueue:  1 << 12,
	})
	src := []float32{0.5, 1.5, 2.5, 3.5}
	for _, f := range rlibm.Funcs {
		for _, sch := range rlibm.Schemes {
			if got, resp := binEval(t, ts.URL, f.String(), sch.String(), src); got == nil {
				t.Fatalf("%v/%v: status %d", f, sch, resp.StatusCode)
			}
		}
	}
	srv.Close()
	snap := reg.Snapshot()
	want := int64(len(src) * rlibm.NumFuncs * rlibm.NumSchemes)
	if n := snap.Counter("serve.canary.checked_total"); n != want {
		t.Errorf("checked_total = %d, want %d (every element of every combo)", n, want)
	}
	if n := snap.Counter("serve.canary.mismatch_total"); n != 0 {
		t.Errorf("mismatch_total = %d on correct traffic, want 0", n)
	}
	if n := snap.Counter("serve.canary.dropped_total"); n != 0 {
		t.Errorf("dropped_total = %d with an oversized queue, want 0", n)
	}
	if n := snap.Counter("serve.canary.skipped_total"); n != 0 {
		t.Errorf("skipped_total = %d on all-admissible inputs, want 0", n)
	}
}

// TestCanaryFlagsMismatch: a served result one ulp off the correctly rounded
// value trips mismatch_total. The corruption is injected on the observation,
// not the data path — the canary sees what the handler would have served.
func TestCanaryFlagsMismatch(t *testing.T) {
	srv := New(Config{Registry: obs.NewRegistry(), CanarySample: 1, CanaryQueue: 16})
	c := srv.canary

	src := []float32{0.75}
	good := make([]float32, 1)
	rlibm.EvalBatch(rlibm.FuncExp, rlibm.Horner, good, src)
	c.offer(rlibm.FuncExp, rlibm.PrecFloat32, src, good)

	bad := []float32{math.Float32frombits(math.Float32bits(good[0]) + 1)}
	c.offer(rlibm.FuncExp, rlibm.PrecFloat32, src, bad)

	srv.Close()
	if n := c.checked.Value(); n != 2 {
		t.Errorf("checked_total = %d, want 2", n)
	}
	if n := c.mismatch.Value(); n != 1 {
		t.Errorf("mismatch_total = %d, want exactly the corrupted sample", n)
	}
}

// TestCanarySkipsInadmissible: inputs the kernels answer from the IEEE
// special-case table are not oracle-checkable and must be counted skipped,
// never verified and never dropped.
func TestCanarySkipsInadmissible(t *testing.T) {
	srv := New(Config{Registry: obs.NewRegistry(), CanarySample: 1, CanaryQueue: 16})
	c := srv.canary

	logSrc := []float32{
		float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)), 0, -1,
	}
	c.offer(rlibm.FuncLog, rlibm.PrecFloat32, logSrc, make([]float32, len(logSrc)))
	expSrc := []float32{0, float32(math.Copysign(0, -1)), float32(math.NaN())}
	c.offer(rlibm.FuncExp, rlibm.PrecFloat32, expSrc, make([]float32, len(expSrc)))

	srv.Close()
	if n := c.skipped.Value(); n != int64(len(logSrc)+len(expSrc)) {
		t.Errorf("skipped_total = %d, want %d", n, len(logSrc)+len(expSrc))
	}
	if n := c.checked.Value(); n != 0 {
		t.Errorf("checked_total = %d for all-inadmissible inputs, want 0", n)
	}
	// But negative inputs are admissible for exp: -1 must verify.
	srv2 := New(Config{Registry: obs.NewRegistry(), CanarySample: 1, CanaryQueue: 16})
	neg := []float32{-1}
	out := make([]float32, 1)
	rlibm.EvalBatch(rlibm.FuncExp, rlibm.Horner, out, neg)
	srv2.canary.offer(rlibm.FuncExp, rlibm.PrecFloat32, neg, out)
	srv2.Close()
	if n := srv2.canary.checked.Value(); n != 1 {
		t.Errorf("exp(-1) checked_total = %d, want 1 (negative exp inputs are admissible)", n)
	}
}

// TestCanaryStrideSampling: at a 1/4 rate, the stride samples exactly every
// 4th element across request boundaries — the counter is global, so small
// requests cannot dodge the canary.
func TestCanaryStrideSampling(t *testing.T) {
	srv := New(Config{Registry: obs.NewRegistry(), CanarySample: 0.25, CanaryQueue: 1 << 10})
	c := srv.canary
	src := []float32{0.5, 1.5}
	dst := make([]float32, 2)
	rlibm.EvalBatch(rlibm.FuncExp, rlibm.Horner, dst, src)
	// 10 two-element requests = 20 elements; every 4th sampled = 5.
	for i := 0; i < 10; i++ {
		c.offer(rlibm.FuncExp, rlibm.PrecFloat32, src, dst)
	}
	srv.Close()
	if n := c.checked.Value(); n != 5 {
		t.Errorf("checked_total = %d across 20 elements at rate 1/4, want 5", n)
	}
}

// TestCanaryDropNotBlockUnderSaturation: with the verifier wedged and a
// one-slot queue, a sustained stream of evals must complete at full speed —
// the canary drops samples (counted) rather than ever stalling a sweep.
func TestCanaryDropNotBlockUnderSaturation(t *testing.T) {
	srv := New(Config{
		Registry:           obs.NewRegistry(),
		CoalesceMaxRequest: -1,
		CanarySample:       1,
		CanaryQueue:        1,
	})
	release := make(chan struct{})
	var once sync.Once
	unwedge := func() { once.Do(func() { close(release) }) }
	srv.canary.verifyHook = func(canaryItem) { <-release }
	t.Cleanup(srv.Close)
	t.Cleanup(unwedge) // LIFO: unwedge before Close waits on the worker

	src := make([]float32, 64)
	dst := make([]float32, 64)
	for i := range src {
		src[i] = float32(i)/8 + 0.125
	}
	start := time.Now()
	const evals = 200
	for i := 0; i < evals; i++ {
		var rs reqState
		srv.begin(&rs, 0)
		if err := srv.eval(rlibm.FuncExp2, rlibm.Horner, rlibm.PrecFloat32, dst, src, &rs); err != nil {
			t.Fatalf("eval %d under canary saturation: %v", i, err)
		}
	}
	elapsed := time.Since(start)
	// 200 × 64-element direct sweeps are microseconds each; anything near the
	// 5s bound means an offer blocked on the wedged worker.
	if elapsed > 5*time.Second {
		t.Errorf("%d evals took %v with the canary wedged — offers are blocking", evals, elapsed)
	}
	if n := srv.canary.dropped.Value(); n == 0 {
		t.Error("dropped_total = 0 with a wedged one-slot queue, want > 0")
	}

	unwedge()
	srv.Close()
	// Total disposition must account for every sampled element: one wedged in
	// the hook, some drained from the queue, the rest dropped.
	total := srv.canary.dropped.Value()
	if total >= evals*64 {
		t.Errorf("dropped_total = %d exceeds offered samples", total)
	}
}

package serve

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"

	"rlibm/internal/obs"
	"rlibm/pkg/rlibm"
)

// StreamClient speaks the streaming binary protocol over one persistent
// connection. It is safe for concurrent use: many goroutines can Eval at
// once, their frames interleave on the wire, and a single reader goroutine
// matches responses back by request id — which is exactly the traffic shape
// that lets the server coalesce small requests into large sweeps. A writer
// goroutine batches outgoing frames and flushes only when the queue goes
// momentarily idle, so N concurrent Evals cost far fewer than N syscalls.
// rlibm-bench and the end-to-end tests are the intended users.
type StreamClient struct {
	conn net.Conn

	writec chan *[]byte  // outgoing frames, consumed by the writer goroutine
	dead   chan struct{} // closed once the transport has failed

	mu      sync.Mutex
	pending map[uint64]*streamCall
	err     error // sticky transport error, set once
	nextID  atomic.Uint64
}

// streamCall is one in-flight request: the caller-owned destination, the
// trace id a traced request expects echoed back, and the completion signal
// carrying the in-band or transport error.
type streamCall struct {
	dst   []float32
	trace obs.TraceID
	done  chan error
}

// ErrOverloaded is returned by StreamClient.Eval when the server shed the
// request (the stream analogue of HTTP 429); the caller should back off and
// retry.
var ErrOverloaded = errors.New("serve: server overloaded")

// DialStream connects a StreamClient to a streaming-protocol listener.
func DialStream(addr string) (*StreamClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewStreamClient(conn), nil
}

// NewStreamClient wraps an established connection (tests use net.Pipe-like
// loopback conns directly).
func NewStreamClient(conn net.Conn) *StreamClient {
	c := &StreamClient{
		conn:    conn,
		writec:  make(chan *[]byte, 256),
		dead:    make(chan struct{}),
		pending: map[uint64]*streamCall{},
	}
	go c.writeLoop()
	go c.readLoop()
	return c
}

// Eval evaluates f/sch over src into dst (dst must be at least as long as
// src) through the shared connection, blocking until the response arrives.
// Results are bit-identical to rlibm.EvalBatch. Returns ErrOverloaded on a
// shed, a descriptive error for in-band rejections, and the transport error
// if the connection died.
func (c *StreamClient) Eval(f rlibm.Func, sch rlibm.Scheme, dst, src []float32) error {
	return c.eval(f, sch, rlibm.PrecFloat32, dst, src, 0)
}

// EvalPrec is Eval at an explicit output precision: the precision code rides
// in the request frame's flags high byte, and the server answers with the
// narrow format's correctly rounded results (each returned float32 carries
// the narrow value exactly).
func (c *StreamClient) EvalPrec(f rlibm.Func, sch rlibm.Scheme, p rlibm.Precision, dst, src []float32) error {
	return c.eval(f, sch, p, dst, src, 0)
}

// EvalCtx is Eval carrying the trace context from ctx: when ctx holds a
// TraceID (see obs.WithTrace) the request frame is marked traced, the id
// rides ahead of the inputs, and the response's echoed id is verified before
// the call completes — even when responses arrive out of order.
func (c *StreamClient) EvalCtx(ctx context.Context, f rlibm.Func, sch rlibm.Scheme, dst, src []float32) error {
	return c.eval(f, sch, rlibm.PrecFloat32, dst, src, obs.TraceFrom(ctx))
}

// EvalTraced is Eval with an explicit trace id (0 means untraced).
func (c *StreamClient) EvalTraced(f rlibm.Func, sch rlibm.Scheme, dst, src []float32, trace obs.TraceID) error {
	return c.eval(f, sch, rlibm.PrecFloat32, dst, src, trace)
}

func (c *StreamClient) eval(f rlibm.Func, sch rlibm.Scheme, p rlibm.Precision, dst, src []float32, trace obs.TraceID) error {
	if len(dst) < len(src) {
		return errors.New("serve: stream Eval dst shorter than src")
	}
	id := c.nextID.Add(1)
	call := &streamCall{dst: dst[:len(src)], trace: trace, done: make(chan error, 1)}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.pending[id] = call
	c.mu.Unlock()

	flags := uint16(p) << streamPrecShift
	tracePrefix := 0
	if trace != 0 {
		flags |= streamFlagTraced
		tracePrefix = 8
	}
	var hdr [4 + streamHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(streamHdrLen+tracePrefix+4*len(src)))
	binary.LittleEndian.PutUint64(hdr[4:12], id)
	hdr[12] = byte(f)
	hdr[13] = byte(sch)
	binary.LittleEndian.PutUint16(hdr[14:16], flags)
	bufp := getByteBuf(0)
	buf := append((*bufp)[:0], hdr[:]...)
	if trace != 0 {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(trace))
	}
	for _, x := range src {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(x))
	}
	*bufp = buf

	select {
	case c.writec <- bufp:
	case <-c.dead:
		putByteBuf(bufp)
		// The failure that closed dead also completed (or will complete)
		// this registered call through fail().
	}
	return <-call.done
}

// writeLoop serializes queued frames onto the connection, flushing only when
// the queue is momentarily empty — concurrent Evals share syscalls.
func (c *StreamClient) writeLoop() {
	bw := bufio.NewWriterSize(c.conn, streamBufSize)
	for {
		select {
		case bufp := <-c.writec:
			_, err := bw.Write(*bufp)
			putByteBuf(bufp)
			if err == nil && len(c.writec) == 0 {
				err = bw.Flush()
			}
			if err != nil {
				c.fail(err)
				return
			}
		case <-c.dead:
			return
		}
	}
}

// readLoop decodes response frames and completes the matching calls; on any
// transport error it fails every pending and future call.
func (c *StreamClient) readLoop() {
	br := bufio.NewReaderSize(c.conn, streamBufSize)
	for {
		var hdr [4 + streamHdrLen]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			c.fail(err)
			return
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		if length < streamHdrLen {
			c.fail(fmt.Errorf("serve: stream response frame length %d below header size", length))
			return
		}
		id := binary.LittleEndian.Uint64(hdr[4:12])
		status := hdr[12]
		traced := hdr[13] == 1
		detail := binary.LittleEndian.Uint16(hdr[14:16])
		payloadLen := int(length) - streamHdrLen
		bodyp := getByteBuf(payloadLen)
		if _, err := io.ReadFull(br, *bodyp); err != nil {
			putByteBuf(bodyp)
			c.fail(err)
			return
		}
		c.mu.Lock()
		call := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if call == nil {
			putByteBuf(bodyp)
			continue // late response for an abandoned call
		}
		body := *bodyp
		if traced {
			// Strip and verify the echoed trace id: a mismatch means the
			// response was matched to the wrong request, which would silently
			// hand a caller someone else's results.
			if payloadLen < 8 {
				call.done <- fmt.Errorf("serve: traced stream response payload too short (%d bytes)", payloadLen)
				putByteBuf(bodyp)
				continue
			}
			echo := obs.TraceID(binary.LittleEndian.Uint64(body[:8]))
			body = body[8:]
			payloadLen -= 8
			if call.trace != 0 && echo != call.trace {
				call.done <- fmt.Errorf("serve: stream response echoed trace %v, want %v", echo, call.trace)
				putByteBuf(bodyp)
				continue
			}
		} else if call.trace != 0 && status == streamOK {
			call.done <- fmt.Errorf("serve: stream response to traced request %v lacks the trace echo", call.trace)
			putByteBuf(bodyp)
			continue
		}
		switch {
		case status == streamOK && payloadLen == 4*len(call.dst):
			for i := range call.dst {
				call.dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:]))
			}
			call.done <- nil
		case status == streamOK:
			call.done <- fmt.Errorf("serve: stream response has %d bytes, want %d",
				payloadLen, 4*len(call.dst))
		case status == streamOverloaded:
			call.done <- fmt.Errorf("%w (retry after %dms)", ErrOverloaded, detail)
		default:
			call.done <- fmt.Errorf("serve: stream status %d: %s", status, body)
		}
		putByteBuf(bodyp)
	}
}

// fail marks the client dead and releases every waiter.
func (c *StreamClient) fail(err error) {
	if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
		err = net.ErrClosed
	}
	c.mu.Lock()
	first := c.err == nil
	if first {
		c.err = err
	}
	for id, call := range c.pending {
		delete(c.pending, id)
		call.done <- err
	}
	c.mu.Unlock()
	if first {
		close(c.dead)
	}
}

// Close tears down the connection; pending and future Evals fail.
func (c *StreamClient) Close() error {
	return c.conn.Close()
}

package serve

import (
	"math"
	"sync"
	"sync/atomic"

	"rlibm/internal/fp"
	"rlibm/internal/obs"
	"rlibm/internal/oracle"
	"rlibm/pkg/rlibm"
)

// Online correctness canary. The serving stack's whole reason to exist is
// bit-exact correct rounding, so the canary continuously spot-checks what the
// fleet actually served: a configurable fraction of served elements is
// re-verified against the Ziv oracle in the background, and any mismatch is
// exported loudly (serve.canary.mismatch_total, a trace event, and an error
// log line). Three properties keep it safe to run in production:
//
//   - Off the request path: the only per-request work is a stride counter and,
//     for selected elements, one non-blocking channel send of a small value.
//     The oracle's big.Float evaluation runs on a single background worker.
//   - Drop, never block: when the worker falls behind, new samples are dropped
//     (counted in serve.canary.dropped_total) rather than queued unboundedly
//     or — worse — allowed to stall a sweep.
//   - Read-only: the canary observes (src, dst) pairs after the response is
//     already determined. It cannot change a served bit, by construction.
//
// Inputs the kernels handle via special-case paths (NaN, ±Inf, x == 0, and
// log of x <= 0) are skipped rather than verified — the oracle models the
// real-valued function, not the IEEE special-case table — and counted in
// serve.canary.skipped_total so a skew toward inadmissible traffic is
// visible.
type canary struct {
	every int64        // verify every Nth admissible element
	n     atomic.Int64 // element stride counter, shared across requests

	queue  chan canaryItem
	done   chan struct{} // closed by stop: worker drains and exits
	exited chan struct{} // closed by the worker on exit
	once   sync.Once

	cache *oracle.Cache
	ofns  [rlibm.NumFuncs]oracle.Func
	log   *obs.Logger
	trace *obs.Tracer

	checked  *obs.Counter // serve.canary.checked_total
	mismatch *obs.Counter // serve.canary.mismatch_total
	dropped  *obs.Counter // serve.canary.dropped_total
	skipped  *obs.Counter // serve.canary.skipped_total

	// verifyHook, when non-nil, replaces the oracle verification; the
	// saturation tests use it to wedge the worker and prove that a full
	// queue drops instead of blocking the serving path.
	verifyHook func(canaryItem)
}

// canaryItem is one sampled (input, served output) pair, with the precision
// the output was served at. Plain values only: sending one through the
// bounded queue allocates nothing.
type canaryItem struct {
	f rlibm.Func
	p rlibm.Precision
	x float32
	y float32
}

// precFormats maps each precision to its output format for oracle
// adjudication; all three share float32's 8-bit exponent.
var precFormats = func() [rlibm.NumPrecisions]fp.Format {
	var out [rlibm.NumPrecisions]fp.Format
	for _, p := range rlibm.Precisions {
		out[p] = fp.Format{Bits: p.Bits(), ExpBits: 8}
	}
	return out
}()

func newCanary(cfg Config, reg *obs.Registry) *canary {
	c := &canary{
		queue:    make(chan canaryItem, cfg.CanaryQueue),
		done:     make(chan struct{}),
		exited:   make(chan struct{}),
		cache:    oracle.NewCache(0),
		log:      cfg.Log,
		trace:    cfg.Tracer,
		checked:  reg.Counter("serve.canary.checked_total"),
		mismatch: reg.Counter("serve.canary.mismatch_total"),
		dropped:  reg.Counter("serve.canary.dropped_total"),
		skipped:  reg.Counter("serve.canary.skipped_total"),
	}
	switch {
	case cfg.CanarySample >= 1:
		c.every = 1
	default:
		c.every = int64(1/cfg.CanarySample + 0.5)
	}
	if cfg.CanaryStore != nil {
		c.cache.AttachStore(cfg.CanaryStore)
	}
	for _, f := range rlibm.Funcs {
		ofn, err := oracle.ParseFunc(f.String())
		if err != nil {
			panic("serve: no oracle for " + f.String()) // func sets track by design
		}
		c.ofns[f] = ofn
	}
	go c.worker()
	return c
}

// offer samples elements of a served (src, dst) pair for verification. Every
// scheme computes the identical correctly rounded result, so the scheme is
// not part of the sample — a mismatch indicts the (func, scheme) traffic mix
// visible in the phase metrics, and the mismatch log carries the input bits
// needed to reproduce against any scheme. Nil-receiver safe (canary off) and
// allocation-free on every path.
func (c *canary) offer(f rlibm.Func, p rlibm.Precision, src, dst []float32) {
	if c == nil || len(src) == 0 {
		return
	}
	// One atomic add claims this request's slice of the element stride; the
	// elements of this request whose global indices cross a stride boundary
	// are the sample. This keeps per-element cost zero for unsampled spans.
	n := int64(len(src))
	hi := c.n.Add(n)
	lo := hi - n
	// First sampled global index > lo is the next multiple of c.every.
	first := (lo/c.every + 1) * c.every
	for g := first; g <= hi; g += c.every {
		i := int(g - lo - 1)
		c.offerOne(canaryItem{f: f, p: p, x: src[i], y: dst[i]})
	}
}

func (c *canary) offerOne(it canaryItem) {
	if !canaryAdmissible(it.f, it.p, it.x) {
		c.skipped.Inc()
		return
	}
	select {
	case c.queue <- it:
	default:
		c.dropped.Inc()
	}
}

// canaryAdmissible reports whether x is in the kernel's polynomial domain
// for f at precision p — the inputs whose results the oracle can
// adjudicate. NaN, ±Inf, zeros and log of non-positive x are IEEE
// special-case territory; for narrow precisions the correct-rounding
// guarantee covers the narrow format's own inputs, so an input that is not
// representable at p is skipped rather than misjudged.
func canaryAdmissible(f rlibm.Func, p rlibm.Precision, x float32) bool {
	fx := float64(x)
	if math.IsNaN(fx) || math.IsInf(fx, 0) || fx == 0 {
		return false
	}
	if p != rlibm.PrecFloat32 && !precFormats[p].IsRepresentable(fx) {
		return false
	}
	switch f {
	case rlibm.FuncLog, rlibm.FuncLog2, rlibm.FuncLog10:
		return fx > 0
	}
	return true
}

// worker drains the queue, verifying one sample at a time until stop.
func (c *canary) worker() {
	defer close(c.exited)
	for {
		select {
		case it := <-c.queue:
			c.verify(it)
		case <-c.done:
			// Drain what is already queued, then exit; stop() has been
			// called, so the serving side is quiescing.
			for {
				select {
				case it := <-c.queue:
					c.verify(it)
				default:
					return
				}
			}
		}
	}
}

func (c *canary) verify(it canaryItem) {
	if c.verifyHook != nil {
		c.verifyHook(it)
		return
	}
	want := c.cache.Correct(c.ofns[it.f], float64(it.x), precFormats[it.p], fp.RNE)
	c.checked.Inc()
	if math.Float64bits(float64(it.y)) == math.Float64bits(want) {
		return
	}
	c.mismatch.Inc()
	c.log.Infof("canary: MISMATCH %s(%v) prec %s [bits %#08x]: served %v (bits %#08x), oracle %v (bits %#08x)",
		it.f, it.x, it.p, math.Float32bits(it.x),
		it.y, math.Float32bits(it.y),
		want, math.Float32bits(float32(want)))
	c.trace.Event("serve.canary.mismatch", obs.Attrs{
		"func":        it.f.String(),
		"prec":        it.p.String(),
		"x_bits":      math.Float32bits(it.x),
		"served_bits": math.Float32bits(it.y),
		"oracle_bits": math.Float32bits(float32(want)),
	})
}

// stop shuts the worker down and waits for it to drain the queued samples,
// so counters read after stop are final. Idempotent.
func (c *canary) stop() {
	c.once.Do(func() { close(c.done) })
	<-c.exited
}

package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"rlibm/internal/libm"
	"rlibm/internal/obs"
)

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry() // keep tests off the global registry
	}
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// binEval posts a little-endian float32 frame and returns the decoded reply.
func binEval(t *testing.T, base, fn, scheme string, src []float32) ([]float32, *http.Response) {
	t.Helper()
	body := make([]byte, 4*len(src))
	for i, x := range src {
		binary.LittleEndian.PutUint32(body[4*i:], math.Float32bits(x))
	}
	resp, err := http.Post(base+"/v1/evalbin/"+fn+"/"+scheme, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST evalbin: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp
	}
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading body: %v", err)
	}
	if out.Len() != 4*len(src) {
		t.Fatalf("binary reply has %d bytes, want %d", out.Len(), 4*len(src))
	}
	got := make([]float32, len(src))
	for i := range got {
		got[i] = math.Float32frombits(binary.LittleEndian.Uint32(out.Bytes()[4*i:]))
	}
	return got, resp
}

// jsonEval posts {"x":[...]} and decodes {"y":[...]}, using the same string
// encodings of non-finite values in both directions that the server does.
func jsonEval(t *testing.T, base, fn, scheme string, src []float32) ([]float32, *http.Response) {
	t.Helper()
	var b strings.Builder
	b.WriteString(`{"x":[`)
	for i, x := range src {
		if i > 0 {
			b.WriteByte(',')
		}
		switch {
		case isNaN32(x):
			b.WriteString(`"NaN"`)
		case math.IsInf(float64(x), 1):
			b.WriteString(`"Inf"`)
		case math.IsInf(float64(x), -1):
			b.WriteString(`"-Inf"`)
		default:
			b.WriteString(strconv.FormatFloat(float64(x), 'g', -1, 32))
		}
	}
	b.WriteString(`]}`)
	resp, err := http.Post(base+"/v1/eval/"+fn+"/"+scheme, "application/json", strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("POST eval: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp
	}
	var raw struct {
		Y []json.RawMessage `json:"y"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatalf("decoding reply: %v", err)
	}
	if len(raw.Y) != len(src) {
		t.Fatalf("json reply has %d elements, want %d", len(raw.Y), len(src))
	}
	got := make([]float32, len(src))
	for i, m := range raw.Y {
		switch string(m) {
		case `"NaN"`:
			got[i] = float32(math.NaN())
		case `"Inf"`:
			got[i] = float32(math.Inf(1))
		case `"-Inf"`:
			got[i] = float32(math.Inf(-1))
		default:
			v, err := strconv.ParseFloat(string(m), 32)
			if err != nil {
				t.Fatalf("element %d %q: %v", i, m, err)
			}
			got[i] = float32(v)
		}
	}
	return got, resp
}

// wantFor computes the reference result straight from internal/libm.
func wantFor(t *testing.T, fn string, scheme string, x float32) float32 {
	t.Helper()
	var schemeIdx = -1
	for i, s := range libm.Schemes {
		if s.String() == scheme {
			schemeIdx = i
		}
	}
	if schemeIdx < 0 {
		t.Fatalf("unknown scheme %q", scheme)
	}
	for _, f := range libm.Funcs {
		if f.Name == fn {
			return float32(f.Double(x, libm.Schemes[schemeIdx]))
		}
	}
	t.Fatalf("unknown func %q", fn)
	return 0
}

// TestEndpointsBitIdentical: for every function and scheme, both endpoints
// return exactly float32(libm.<Fn>Double(x, scheme)) — the server adds
// transport, not rounding. Both endpoints carry specials: the binary frame
// natively, JSON via the "NaN"/"Inf"/"-Inf" string spellings.
func TestEndpointsBitIdentical(t *testing.T) {
	ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(42))

	binSrc := []float32{
		float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)),
		0, float32(math.Copysign(0, -1)), 1, -1, 0.5, 150, -150, 1e-40,
	}
	for i := 0; i < 500; i++ {
		binSrc = append(binSrc, math.Float32frombits(rng.Uint32()))
	}
	jsonSrc := []float32{
		float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)),
		0, 1, -1, 0.5, 2, 100, -100, 1e-30, -3.5,
	}
	for i := 0; i < 100; i++ {
		jsonSrc = append(jsonSrc, float32(rng.Float64()*200-100))
	}

	for _, fn := range []string{"exp", "exp2", "exp10", "log", "log2", "log10"} {
		for _, scheme := range []string{"rlibm", "rlibm-knuth", "rlibm-estrin", "rlibm-estrin-fma"} {
			got, resp := binEval(t, ts.URL, fn, scheme, binSrc)
			if got == nil {
				t.Fatalf("%s/%s: binary endpoint status %d", fn, scheme, resp.StatusCode)
			}
			for i, x := range binSrc {
				want := wantFor(t, fn, scheme, x)
				if math.Float32bits(got[i]) != math.Float32bits(want) &&
					!(isNaN32(got[i]) && isNaN32(want)) {
					t.Fatalf("%s/%s binary: f(%g) = %x, libm = %x",
						fn, scheme, x, math.Float32bits(got[i]), math.Float32bits(want))
				}
			}
			got, resp = jsonEval(t, ts.URL, fn, scheme, jsonSrc)
			if got == nil {
				t.Fatalf("%s/%s: json endpoint status %d", fn, scheme, resp.StatusCode)
			}
			for i, x := range jsonSrc {
				want := wantFor(t, fn, scheme, x)
				if math.Float32bits(got[i]) != math.Float32bits(want) &&
					!(isNaN32(got[i]) && isNaN32(want)) {
					t.Fatalf("%s/%s json: f(%g) = %x, libm = %x",
						fn, scheme, x, math.Float32bits(got[i]), math.Float32bits(want))
				}
			}
		}
	}
}

func isNaN32(x float32) bool { return x != x }

// TestShortSchemeNamesRoute: the generator spellings address the same
// kernels as the canonical names.
func TestShortSchemeNamesRoute(t *testing.T) {
	ts := newTestServer(t, Config{})
	src := []float32{0.5, 2, -1}
	canon, _ := binEval(t, ts.URL, "exp2", "rlibm-estrin-fma", src)
	short, _ := binEval(t, ts.URL, "exp2", "estrin-fma", src)
	for i := range src {
		if math.Float32bits(canon[i]) != math.Float32bits(short[i]) {
			t.Fatalf("element %d: canonical %x, short %x", i, math.Float32bits(canon[i]), math.Float32bits(short[i]))
		}
	}
}

// TestRequestValidation covers the failure surface: malformed bodies,
// unknown routes, wrong methods and oversized batches.
func TestRequestValidation(t *testing.T) {
	ts := newTestServer(t, Config{MaxBatch: 8})
	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/octet-stream", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		resp.Body.Close()
		return resp
	}
	cases := []struct {
		name string
		path string
		body string
		want int
	}{
		{"malformed json", "/v1/eval/exp/rlibm", `{"x":[1,`, http.StatusBadRequest},
		{"wrong type json", "/v1/eval/exp/rlibm", `{"x":"nope"}`, http.StatusBadRequest},
		{"unknown func", "/v1/eval/tan/rlibm", `{"x":[1]}`, http.StatusNotFound},
		{"unknown scheme", "/v1/eval/exp/neon", `{"x":[1]}`, http.StatusNotFound},
		{"unknown func bin", "/v1/evalbin/sinh/rlibm", "\x00\x00\x00\x00", http.StatusNotFound},
		{"ragged binary frame", "/v1/evalbin/exp/rlibm", "\x01\x02\x03", http.StatusBadRequest},
		{"oversized json batch", "/v1/eval/exp/rlibm", `{"x":[1,2,3,4,5,6,7,8,9]}`, http.StatusRequestEntityTooLarge},
		{"oversized binary batch", "/v1/evalbin/exp/rlibm", strings.Repeat("\x00", 4*9), http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		if got := post(tc.path, tc.body).StatusCode; got != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, got, tc.want)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/eval/exp/rlibm")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on eval: status %d, want %d", resp.StatusCode, http.StatusMethodNotAllowed)
	}
	// At the limit (not over) must succeed.
	if got, resp := binEval(t, ts.URL, "exp", "rlibm", make([]float32, 8)); got == nil {
		t.Errorf("batch at limit: status %d, want 200", resp.StatusCode)
	}
}

// TestHealthzAndMetricz: the liveness probe answers, served requests show
// up in the JSON metrics snapshot, and the default /metricz body is the
// Prometheus text exposition.
func TestHealthzAndMetricz(t *testing.T) {
	reg := obs.NewRegistry()
	ts := newTestServer(t, Config{Registry: reg})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	binEval(t, ts.URL, "log2", "rlibm", []float32{1, 2, 4})
	resp, err = http.Get(ts.URL + "/metricz?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding metricz: %v", err)
	}
	resp.Body.Close()
	if n := snap.Counter("serve.eval_bin.requests"); n != 1 {
		t.Errorf("serve.eval_bin.requests = %d, want 1", n)
	}
	if h, ok := snap.Histograms["serve.batch_elems"]; !ok || h.Count != 1 || h.Sum != 3 {
		t.Errorf("serve.batch_elems snapshot = %+v, want count 1 sum 3", h)
	}

	resp, err = http.Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("default metricz Content-Type = %q, want text/plain exposition", ct)
	}
	var prom bytes.Buffer
	prom.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"# TYPE serve_eval_bin_requests counter",
		"serve_batch_elems_sum 3",
		"# TYPE serve_coalesce_queue_elems gauge",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus metricz missing %q:\n%s", want, prom.String())
		}
	}
}

// TestShutdownDrain: cancelling the serve context closes the listener but
// lets the in-flight request finish and deliver its response before Serve
// returns.
func TestShutdownDrain(t *testing.T) {
	hold := make(chan struct{})
	entered := make(chan struct{})
	srv := New(Config{Registry: obs.NewRegistry(), DrainTimeout: 5 * time.Second})
	var once bool
	srv.onEval = func() {
		if !once {
			once = true
			close(entered)
			<-hold
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, ln) }()
	base := fmt.Sprintf("http://%s", ln.Addr())

	reqDone := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(base+"/v1/evalbin/exp/rlibm", "application/octet-stream",
			bytes.NewReader(make([]byte, 8)))
		if err != nil {
			reqDone <- nil
			return
		}
		resp.Body.Close()
		reqDone <- resp
	}()

	<-entered // request is in flight
	cancel()  // begin shutdown

	select {
	case <-serveDone:
		t.Fatal("Serve returned while a request was still in flight")
	case <-time.After(100 * time.Millisecond):
	}

	close(hold) // let the request finish
	resp := <-reqDone
	if resp == nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request failed during drain: %+v", resp)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v after drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after the drained request completed")
	}
	// The listener is closed: new connections must fail.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Error("listener still accepting connections after shutdown")
	}
}

package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"rlibm/internal/obs"
	"rlibm/pkg/rlibm"
)

// Streaming binary protocol: many eval requests multiplexed over one
// persistent TCP connection, amortizing connection setup, header parsing
// and syscall cost that dominate small HTTP requests. All integers are
// little-endian. Every frame starts with a u32 length counting the bytes
// that FOLLOW the length field (header remainder + payload), so a reader
// can always resynchronize by skipping length bytes.
//
// Request frame (client -> server):
//
//	u32 length   = 12 + payload bytes
//	u64 id       client-chosen request id, echoed in the response
//	u8  func     rlibm.Func code (0 exp, 1 exp2, 2 exp10, 3 log, 4 log2, 5 log10)
//	u8  scheme   rlibm.Scheme code (0 horner, 1 knuth, 2 estrin, 3 estrin-fma)
//	u16 flags    bit 0 streamFlagTraced; bits 8–15 the rlibm.Precision code
//	             (0 float32, 1 tf32, 2 bf16 — zero keeps old frames meaning
//	             full precision); bits 1–7 stay reserved and are a bad frame
//	payload      float32 inputs, 4 bytes each; a traced frame's payload is
//	             prefixed with a u64 trace id before the inputs
//
// Response frame (server -> client):
//
//	u32 length   = 12 + payload bytes
//	u64 id       echoed request id
//	u8  status   see streamOK etc. below
//	u8  traced   1 when the payload starts with the echoed u64 trace id
//	u16 detail   status-specific: retry-after in ms for streamOverloaded
//	payload      float32 results for streamOK, UTF-8 message otherwise;
//	             prefixed with the u64 trace id when traced is 1
//
// Trace context propagates through the protocol the way X-Trace-Id does over
// HTTP: a client sets streamFlagTraced and leads the payload with its trace
// id (0 asks the server to assign one), and every response to that request —
// success or in-band error — echoes the effective id back, so out-of-order
// responses stay attributable to the request that caused them.
//
// Responses may arrive in any order; clients match them by id. Per-request
// errors (unknown func, over-limit batch, shed) are reported in-band and
// the connection stays usable; framing violations (length below the header
// size, a short read) kill the connection, since byte sync is lost or the
// peer is gone. The server stops reading when a connection has StreamWindow
// requests in flight — backpressure surfaces to the client as TCP flow
// control rather than errors.
const (
	streamHdrLen  = 12 // bytes after the length prefix, before the payload
	streamMaxMsg  = 256
	streamBufSize = 64 << 10

	// streamFlagTraced marks a request whose payload leads with a u64 trace
	// id; the matching responses echo it.
	streamFlagTraced = 0x0001
	// streamPrecShift positions the precision code in the flags word's high
	// byte: flags >> streamPrecShift is the rlibm.Precision value, so a
	// zero flags word still means untraced full precision and old clients
	// and servers interoperate unchanged. Bits 1–7 stay reserved (a bad
	// frame).
	streamPrecShift = 8
	// streamFlagsKnown is every assigned flags bit; anything outside it is
	// a bad frame.
	streamFlagsKnown = uint16(streamFlagTraced) | 0xFF<<streamPrecShift
)

// Response status codes.
const (
	streamOK         = 0 // payload is the float32 result frame
	streamBadFrame   = 1 // ragged payload or reserved flags bits set
	streamBadFunc    = 2 // unknown func code
	streamBadScheme  = 3 // unknown scheme code
	streamTooLarge   = 4 // more than MaxBatch elements (the HTTP 413)
	streamOverloaded = 5 // shed by a bounded queue (the HTTP 429)
	streamBadPrec    = 6 // unknown precision code in the flags high byte
)

// appendStreamResponse encodes a response frame onto buf. A nonzero trace
// marks the response traced: the traced header byte is set and the payload
// is prefixed with the echoed trace id.
func appendStreamResponse(buf []byte, id uint64, status byte, trace obs.TraceID, detail uint16, payload []byte) []byte {
	prefix := 0
	if trace != 0 {
		prefix = 8
	}
	var hdr [4 + streamHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(streamHdrLen+prefix+len(payload)))
	binary.LittleEndian.PutUint64(hdr[4:12], id)
	hdr[12] = status
	if trace != 0 {
		hdr[13] = 1
	}
	binary.LittleEndian.PutUint16(hdr[14:16], detail)
	buf = append(buf, hdr[:]...)
	if trace != 0 {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(trace))
	}
	return append(buf, payload...)
}

// serveStreamConn runs one connection: a read loop that decodes frames and
// dispatches eval goroutines (bounded by StreamWindow), and a writer
// goroutine that serializes response frames back, flushing whenever its
// queue momentarily drains so latency stays low without a syscall per
// response.
func (s *Server) serveStreamConn(conn net.Conn) {
	defer conn.Close()
	s.streamConns.Add(1)
	defer s.streamConns.Add(-1)

	br := bufio.NewReaderSize(conn, streamBufSize)
	bw := bufio.NewWriterSize(conn, streamBufSize)
	respc := make(chan *[]byte, s.cfg.StreamWindow)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for bufp := range respc {
			_, werr := bw.Write(*bufp)
			putByteBuf(bufp)
			if werr != nil {
				s.streamErrors.Inc()
				conn.Close() // unblocks the read loop
				for bufp := range respc {
					putByteBuf(bufp)
				}
				return
			}
			if len(respc) == 0 {
				conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
				if err := bw.Flush(); err != nil {
					s.streamErrors.Inc()
					conn.Close()
					for bufp := range respc {
						putByteBuf(bufp)
					}
					return
				}
			}
		}
		bw.Flush()
	}()

	reply := func(id uint64, status byte, trace obs.TraceID, detail uint16, payload []byte) {
		bufp := getByteBuf(0)
		*bufp = appendStreamResponse((*bufp)[:0], id, status, trace, detail, payload)
		respc <- bufp
	}
	replyErr := func(id uint64, status byte, trace obs.TraceID, detail uint16, msg string) {
		if len(msg) > streamMaxMsg {
			msg = msg[:streamMaxMsg]
		}
		reply(id, status, trace, detail, []byte(msg))
	}

	sem := make(chan struct{}, s.cfg.StreamWindow)
	var wg sync.WaitGroup
	maxPayload := s.cfg.MaxBatch * 4
	for {
		var hdr [4 + streamHdrLen]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			break // EOF between frames is the clean way to end a conn
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		id := binary.LittleEndian.Uint64(hdr[4:12])
		fb, sb := hdr[12], hdr[13]
		flags := binary.LittleEndian.Uint16(hdr[14:16])
		if length < streamHdrLen {
			s.streamErrors.Inc()
			break // framing is broken; byte sync is unrecoverable
		}
		payloadLen := int(length) - streamHdrLen
		tracePrefix := 0
		if flags&streamFlagTraced != 0 {
			tracePrefix = 8
		}
		if payloadLen > maxPayload+tracePrefix {
			// Too large is a per-request error: skip the declared payload to
			// stay in sync, then report it against the request id.
			if _, err := io.CopyN(io.Discard, br, int64(payloadLen)); err != nil {
				break
			}
			s.streamFrames.Inc()
			replyErr(id, streamTooLarge, 0, 0,
				fmt.Sprintf("batch exceeds limit of %d elements", s.cfg.MaxBatch))
			continue
		}
		bodyp := getByteBuf(payloadLen)
		if _, err := io.ReadFull(br, *bodyp); err != nil {
			putByteBuf(bodyp)
			break
		}
		s.streamFrames.Inc()
		pb := byte(flags >> streamPrecShift)
		switch {
		case flags&^streamFlagsKnown != 0:
			putByteBuf(bodyp)
			replyErr(id, streamBadFrame, 0, 0, "reserved flags bits set")
			continue
		case pb >= rlibm.NumPrecisions:
			putByteBuf(bodyp)
			replyErr(id, streamBadPrec, 0, 0, fmt.Sprintf("unknown precision code %d", pb))
			continue
		case payloadLen < tracePrefix:
			putByteBuf(bodyp)
			replyErr(id, streamBadFrame, 0, 0, "traced frame payload shorter than the trace id")
			continue
		case (payloadLen-tracePrefix)%4 != 0:
			putByteBuf(bodyp)
			replyErr(id, streamBadFrame, 0, 0,
				fmt.Sprintf("payload length %d is not a multiple of 4", payloadLen-tracePrefix))
			continue
		case fb >= rlibm.NumFuncs:
			putByteBuf(bodyp)
			replyErr(id, streamBadFunc, 0, 0, fmt.Sprintf("unknown function code %d", fb))
			continue
		case sb >= rlibm.NumSchemes:
			putByteBuf(bodyp)
			replyErr(id, streamBadScheme, 0, 0, fmt.Sprintf("unknown scheme code %d", sb))
			continue
		}
		var trace obs.TraceID
		if tracePrefix > 0 {
			// An explicit zero id asks the server to assign one, mirroring
			// HTTP ingress when no X-Trace-Id header parses.
			trace = obs.TraceID(binary.LittleEndian.Uint64((*bodyp)[:8]))
			if trace == 0 {
				trace = obs.NewTraceID()
			}
		}
		if s.onEval != nil {
			s.onEval()
		}
		sem <- struct{}{} // in-flight window: stop reading when full
		wg.Add(1)
		go func(id uint64, f rlibm.Func, sch rlibm.Scheme, p rlibm.Precision, bodyp *[]byte, trace obs.TraceID, tracePrefix int) {
			defer wg.Done()
			defer func() { <-sem }()
			defer putByteBuf(bodyp)
			var rs reqState
			s.begin(&rs, trace)
			decodeStart := time.Now()
			body := (*bodyp)[tracePrefix:]
			n := len(body) / 4
			srcp, dstp := getBuf(n), getBuf(n)
			defer putBuf(srcp)
			defer putBuf(dstp)
			for i := 0; i < n; i++ {
				(*srcp)[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:]))
			}
			rs.decode = time.Since(decodeStart)
			if err := s.eval(f, sch, p, *dstp, *srcp, &rs); err != nil {
				replyErr(id, streamOverloaded, trace, uint16(min64(s.retryAfterMs(), 1<<16-1)),
					"server overloaded: request shed by bounded queue")
				return
			}
			s.batchElems.Observe(int64(n))
			encodeStart := time.Now()
			outp := getByteBuf(4 * n)
			defer putByteBuf(outp)
			for i, y := range *dstp {
				binary.LittleEndian.PutUint32((*outp)[4*i:], math.Float32bits(y))
			}
			reply(id, streamOK, trace, 0, *outp)
			rs.encode = time.Since(encodeStart)
			s.observePhases(f, sch, "stream", n, &rs)
		}(id, rlibm.Func(fb), rlibm.Scheme(sb), rlibm.Precision(pb), bodyp, trace, tracePrefix)
	}
	wg.Wait()    // every accepted request has queued its response
	close(respc) // writer drains the queue, flushes, and exits
	<-writerDone
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

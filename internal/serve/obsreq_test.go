package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rlibm/internal/obs"
	"rlibm/pkg/rlibm"
)

// newObsTestServer is newTestServer plus access to the Server itself (for the
// canary and phase instruments) and a guaranteed Close, which the canary's
// background worker needs.
func newObsTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	srv := New(cfg)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, cfg.Registry
}

// TestHTTPTraceEcho: a client-supplied X-Trace-Id comes back verbatim on the
// response; a request without one gets a fresh ingress-assigned id, echoed so
// the client can correlate its logs with the server's spans.
func TestHTTPTraceEcho(t *testing.T) {
	_, ts, _ := newObsTestServer(t, Config{})
	post := func(traceHeader string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/evalbin/exp/rlibm",
			bytes.NewReader(make([]byte, 4)))
		if err != nil {
			t.Fatal(err)
		}
		if traceHeader != "" {
			req.Header.Set(obs.TraceHeader, traceHeader)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, want 200", resp.StatusCode)
		}
		return resp
	}

	const supplied = "00000000deadbeef"
	if got := post(supplied).Header.Get(obs.TraceHeader); got != supplied {
		t.Errorf("supplied trace echoed as %q, want %q", got, supplied)
	}
	assigned := post("").Header.Get(obs.TraceHeader)
	if id, ok := obs.ParseTraceID(assigned); !ok || id == 0 {
		t.Errorf("ingress-assigned trace %q is not a valid nonzero id", assigned)
	}
	// Garbage in the header must not be trusted: the server assigns instead.
	if got := post("not-hex!").Header.Get(obs.TraceHeader); got == "not-hex!" {
		t.Error("unparseable client trace id echoed verbatim, want a fresh id")
	}
}

// TestSamplerStride: the -trace-sample decision is a deterministic stride —
// rate 0 never fires, rate 1 always fires, rate 1/4 fires exactly every 4th.
func TestSamplerStride(t *testing.T) {
	count := func(rate float64, n int) int {
		s := newSampler(rate)
		hits := 0
		for i := 0; i < n; i++ {
			if s.sample() {
				hits++
			}
		}
		return hits
	}
	if got := count(0, 100); got != 0 {
		t.Errorf("rate 0: %d samples, want 0", got)
	}
	if got := count(1, 100); got != 100 {
		t.Errorf("rate 1: %d samples, want 100", got)
	}
	if got := count(0.25, 100); got != 25 {
		t.Errorf("rate 0.25: %d samples of 100, want 25", got)
	}
}

// TestObservabilityBitIdentity: with full tracing AND the canary sampling
// every element, both HTTP endpoints still return exactly the direct kernel
// results — the observability layer watches the data path, never touches it.
func TestObservabilityBitIdentity(t *testing.T) {
	srv, ts, reg := newObsTestServer(t, Config{
		Tracer:       obs.NewTracer(io.Discard),
		TraceSample:  1,
		CanarySample: 1,
		CanaryQueue:  1 << 12,
	})
	rng := rand.New(rand.NewSource(7))
	src := []float32{0.5, 1, 1.5, 2, 100, 1e-20}
	for i := 0; i < 60; i++ {
		src = append(src, float32(rng.Float64()*20+0.001))
	}

	for _, combo := range []struct{ fn, scheme string }{
		{"exp", "rlibm"},
		{"log2", "rlibm-estrin-fma"},
		{"exp10", "rlibm-knuth"},
		{"log", "rlibm-estrin"},
	} {
		got, resp := binEval(t, ts.URL, combo.fn, combo.scheme, src)
		if got == nil {
			t.Fatalf("%s/%s: binary status %d", combo.fn, combo.scheme, resp.StatusCode)
		}
		for i, x := range src {
			want := wantFor(t, combo.fn, combo.scheme, x)
			if math.Float32bits(got[i]) != math.Float32bits(want) {
				t.Fatalf("%s/%s binary under tracing: f(%g) = %x, want %x",
					combo.fn, combo.scheme, x, math.Float32bits(got[i]), math.Float32bits(want))
			}
		}
		got, resp = jsonEval(t, ts.URL, combo.fn, combo.scheme, src[:16])
		if got == nil {
			t.Fatalf("%s/%s: json status %d", combo.fn, combo.scheme, resp.StatusCode)
		}
		for i, x := range src[:16] {
			want := wantFor(t, combo.fn, combo.scheme, x)
			if math.Float32bits(got[i]) != math.Float32bits(want) {
				t.Fatalf("%s/%s json under tracing: f(%g) = %x, want %x",
					combo.fn, combo.scheme, x, math.Float32bits(got[i]), math.Float32bits(want))
			}
		}
	}

	// Every served element was admissible and sampled; after Close the canary
	// has drained, so the verdict is final: checked everything, nothing wrong.
	srv.Close()
	snap := reg.Snapshot()
	if n := snap.Counter("serve.canary.checked_total"); n == 0 {
		t.Error("canary checked nothing despite CanarySample=1")
	}
	if n := snap.Counter("serve.canary.mismatch_total"); n != 0 {
		t.Errorf("canary found %d mismatches on correct traffic", n)
	}
}

// TestPhaseHistogramsPopulated: serving a request on each HTTP transport
// fills all four attribution phases of that combo's histograms — a request
// can never lose a phase.
func TestPhaseHistogramsPopulated(t *testing.T) {
	_, ts, reg := newObsTestServer(t, Config{})
	src := []float32{0.5, 1, 2, 4}
	if got, resp := binEval(t, ts.URL, "exp", "rlibm", src); got == nil {
		t.Fatalf("binary eval failed: %d", resp.StatusCode)
	}
	if got, resp := jsonEval(t, ts.URL, "exp", "rlibm", src); got == nil {
		t.Fatalf("json eval failed: %d", resp.StatusCode)
	}
	snap := reg.Snapshot()
	for _, phase := range []string{"decode_ns", "queue_ns", "sweep_ns", "encode_ns"} {
		name := "serve/exp/rlibm/phase/" + phase
		h, ok := snap.Histograms[name]
		if !ok {
			t.Errorf("histogram %q missing", name)
			continue
		}
		if h.Count != 2 {
			t.Errorf("%s count = %d, want 2 (one per transport)", name, h.Count)
		}
	}
	if n := snap.Counter("serve.eval.requests_total"); n != 2 {
		t.Errorf("serve.eval.requests_total = %d, want 2", n)
	}
}

// TestStatuszPage: the human status page reports build identity, aggregate
// load, the canary verdict and a latency row for every combo that served
// traffic — and only those.
func TestStatuszPage(t *testing.T) {
	srv, ts, _ := newObsTestServer(t, Config{CanarySample: 1, CanaryQueue: 1 << 10})
	if got, resp := binEval(t, ts.URL, "log2", "rlibm-estrin-fma", []float32{1, 2, 4, 8}); got == nil {
		t.Fatalf("eval failed: %d", resp.StatusCode)
	}
	srv.Close() // drain the canary so the verdict below is deterministic

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	page := body.String()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("statusz Content-Type = %q, want text/plain", ct)
	}
	for _, want := range []string{
		"rlibm-serve status",
		"build:",
		"backend:",
		"configured auto",
		"uptime:",
		"eval requests served:  1",
		"canary: OK",
		"log2   rlibm-estrin-fma",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("statusz missing %q:\n%s", want, page)
		}
	}
	// Combos that served nothing stay off the table.
	if strings.Contains(page, "exp10") {
		t.Errorf("statusz lists an idle combo:\n%s", page)
	}
}

// TestStatuszCanaryDisabled: with no canary configured the page says so
// instead of implying a passing check that never ran.
func TestStatuszCanaryDisabled(t *testing.T) {
	_, ts, _ := newObsTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(body.String(), "canary: disabled") {
		t.Errorf("statusz without canary missing the disabled line:\n%s", body.String())
	}
}

// TestHealthzBuildIdentity: the liveness body names the binary answering.
func TestHealthzBuildIdentity(t *testing.T) {
	_, ts, _ := newObsTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Status    string `json:"status"`
		Git       string `json:"git"`
		GoVersion string `json:"go_version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatalf("decoding healthz: %v", err)
	}
	if got.Status != "ok" {
		t.Errorf("status = %q, want ok", got.Status)
	}
	if got.Git == "" {
		t.Error("healthz git identity empty")
	}
	if !strings.HasPrefix(got.GoVersion, "go") {
		t.Errorf("healthz go_version = %q, want a go version", got.GoVersion)
	}
}

// TestMetriczBuildInfoAndRuntime: both exposition formats carry the build
// identity, and the JSON snapshot includes scrape-fresh runtime gauges.
func TestMetriczBuildInfoAndRuntime(t *testing.T) {
	_, ts, _ := newObsTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/metricz?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		obs.Snapshot
		BuildInfo obs.BuildIdentity `json:"build_info"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding metricz json: %v", err)
	}
	resp.Body.Close()
	if snap.BuildInfo.Git == "" || snap.BuildInfo.GoVersion == "" {
		t.Errorf("metricz build_info incomplete: %+v", snap.BuildInfo)
	}
	if snap.Gauge("runtime/goroutines") < 1 {
		t.Errorf("runtime/goroutines = %d, want >= 1", snap.Gauge("runtime/goroutines"))
	}
	if snap.Gauge("runtime/heap_alloc_bytes") <= 0 {
		t.Error("runtime/heap_alloc_bytes missing from metricz snapshot")
	}

	resp, err = http.Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	var prom bytes.Buffer
	prom.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(prom.String(), "build_info{git=") {
		t.Errorf("prometheus metricz missing the build_info sample:\n%.500s", prom.String())
	}
}

// TestUntracedFastPathZeroAlloc: with the canary at full sampling and its
// worker wedged (so the bounded queue is saturated and every offer takes the
// drop path), one complete instrumented eval — begin, direct-path sweep,
// canary offers, phase observation — allocates nothing. This is the
// always-on cost of the observability layer.
func TestUntracedFastPathZeroAlloc(t *testing.T) {
	srv := New(Config{
		Registry:           obs.NewRegistry(),
		CoalesceMaxRequest: -1, // direct path: the coalescer's waiter handoff is its own test
		CanarySample:       1,
		CanaryQueue:        1,
	})
	release := make(chan struct{})
	srv.canary.verifyHook = func(canaryItem) { <-release }
	t.Cleanup(srv.Close)
	t.Cleanup(func() { close(release) }) // LIFO: unwedge before Close drains

	src := make([]float32, 64)
	dst := make([]float32, 64)
	for i := range src {
		src[i] = float32(i)/8 + 0.125
	}
	avg := testing.AllocsPerRun(200, func() {
		var rs reqState
		srv.begin(&rs, 0)
		if err := srv.eval(rlibm.FuncExp, rlibm.Horner, rlibm.PrecFloat32, dst, src, &rs); err != nil {
			t.Fatalf("eval: %v", err)
		}
		srv.observePhases(rlibm.FuncExp, rlibm.Horner, "bin", len(src), &rs)
	})
	if avg != 0 {
		t.Errorf("instrumented untraced eval allocates %.2f objects/op, want 0", avg)
	}
}

// TestStreamTraceEchoOutOfOrder: many goroutines fire traced requests with
// distinct ids over ONE coalescing connection, so responses complete out of
// order. The client verifies every response's echoed trace id against the
// request's before accepting it — any misrouted frame fails the Eval — and
// the results must still be bit-identical to direct kernel calls. Run under
// -race this doubles as the concurrency check on the trace plumbing.
func TestStreamTraceEchoOutOfOrder(t *testing.T) {
	_, addr := startStreamServer(t, Config{
		CoalesceMaxRequest: 4096,
		CoalesceFlushElems: 2048,
		CoalesceMaxDelay:   time.Millisecond,
	})
	c, err := DialStream(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for r := 0; r < 25; r++ {
				f := rlibm.Funcs[(g+r)%rlibm.NumFuncs]
				sch := rlibm.Schemes[(g*3+r)%rlibm.NumSchemes]
				n := 1 + rng.Intn(48)
				src := make([]float32, n)
				for i := range src {
					src[i] = math.Float32frombits(rng.Uint32())
				}
				dst := make([]float32, n)
				trace := obs.NewTraceID()
				if err := c.EvalTraced(f, sch, dst, src, trace); err != nil {
					t.Errorf("%v/%v traced eval: %v", f, sch, err)
					return
				}
				ev, err := rlibm.New(f, sch)
				if err != nil {
					t.Errorf("%v/%v: %v", f, sch, err)
					return
				}
				k := ev.Kernel()
				for i, x := range src {
					want := float32(k(float64(x)))
					if math.Float32bits(dst[i]) != math.Float32bits(want) &&
						!(isNaN32(dst[i]) && isNaN32(want)) {
						t.Errorf("%v/%v(%x) traced: got %x, want %x", f, sch,
							math.Float32bits(x), math.Float32bits(dst[i]), math.Float32bits(want))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

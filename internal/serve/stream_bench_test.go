package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"math"
	"net"
	"net/http"
	"sync"
	"testing"

	"rlibm/internal/obs"
	"rlibm/pkg/rlibm"
)

// benchConfig mirrors rlibm-bench's small-request server shape.
func benchConfig() Config {
	return Config{
		MaxBatch:           1 << 20,
		CoalesceMaxRequest: 4096,
		CoalesceFlushElems: 1 << 13,
		MaxPendingElems:    1 << 20,
		Registry:           obs.NewRegistry(),
	}
}

// BenchmarkStreamSmallRequests measures the coalesced streaming path under
// the fleet traffic shape: many goroutines issuing small requests over a few
// shared persistent connections. b.N counts requests.
func BenchmarkStreamSmallRequests(b *testing.B) {
	const elems = 64
	const workers = 32
	srv := New(benchConfig())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeStream(ctx, ln) }()
	defer func() { cancel(); <-done }()

	scs := make([]*StreamClient, 4)
	for i := range scs {
		sc, err := DialStream(ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		scs[i] = sc
		defer sc.Close()
	}

	var wg sync.WaitGroup
	per := b.N / workers
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := scs[w%len(scs)]
			src := make([]float32, elems)
			dst := make([]float32, elems)
			for i := range src {
				src[i] = float32(i)*0.5 - 16
			}
			for r := 0; r < per; r++ {
				if err := sc.Eval(rlibm.FuncExp, rlibm.EstrinFMA, dst, src); err != nil {
					b.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.ReportMetric(float64(per*workers*elems)/b.Elapsed().Seconds()/1e6, "Melem/s")
}

// BenchmarkHTTPSmallRequests is the HTTP-per-request baseline over the same
// workload shape, keep-alive pool sized to the worker count.
func BenchmarkHTTPSmallRequests(b *testing.B) {
	const elems = 64
	const workers = 32
	srv := New(benchConfig())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	defer func() { cancel(); <-done }()
	base := "http://" + ln.Addr().String() + "/v1/evalbin/exp/rlibm-estrin-fma"
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        workers,
		MaxIdleConnsPerHost: workers,
	}}

	var wg sync.WaitGroup
	per := b.N / workers
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			frame := make([]byte, 4*elems)
			for i := 0; i < elems; i++ {
				binary.LittleEndian.PutUint32(frame[4*i:], math.Float32bits(float32(i)*0.5-16))
			}
			for r := 0; r < per; r++ {
				resp, err := client.Post(base, "application/octet-stream", bytes.NewReader(frame))
				if err != nil {
					b.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.ReportMetric(float64(per*workers*elems)/b.Elapsed().Seconds()/1e6, "Melem/s")
}

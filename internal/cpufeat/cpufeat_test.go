package cpufeat

import (
	"runtime"
	"testing"
)

// TestFeatureConsistency: the flags must be internally consistent — AVX2
// implies AVX (the init code guarantees the implication, this pins it), and
// non-amd64 architectures must report nothing.
func TestFeatureConsistency(t *testing.T) {
	t.Logf("GOARCH=%s features=%+v", runtime.GOARCH, X86)
	if X86.HasAVX2 && !X86.HasAVX {
		t.Error("HasAVX2 without HasAVX")
	}
	if runtime.GOARCH != "amd64" && (X86.HasAVX || X86.HasAVX2 || X86.HasFMA) {
		t.Errorf("non-amd64 build reports x86 features: %+v", X86)
	}
}

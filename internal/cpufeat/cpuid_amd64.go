package cpufeat

// cpuid executes the CPUID instruction with the given leaf/subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0).
func xgetbv() (eax, edx uint32)

func init() {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 1 {
		return
	}
	_, _, c, _ := cpuid(1, 0)
	const (
		cpuidFMA     = 1 << 12
		cpuidOSXSAVE = 1 << 27
		cpuidAVX     = 1 << 28
	)
	// XCR0 bits 1 (XMM) and 2 (YMM) must both be set: the OS restores the
	// full 256-bit register file across context switches. Without OSXSAVE,
	// XGETBV would fault, so it is only executed behind the CPUID bit.
	osYMM := false
	if c&cpuidOSXSAVE != 0 {
		xcr0, _ := xgetbv()
		osYMM = xcr0&0x6 == 0x6
	}
	X86.HasAVX = c&cpuidAVX != 0 && osYMM
	X86.HasFMA = c&cpuidFMA != 0 && osYMM
	if maxID >= 7 {
		_, b, _, _ := cpuid(7, 0)
		const cpuid7AVX2 = 1 << 5
		X86.HasAVX2 = X86.HasAVX && b&cpuid7AVX2 != 0
	}
}

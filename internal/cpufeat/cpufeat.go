// Package cpufeat detects the CPU features the generated kernels' optional
// assembly paths need, with no dependency outside the standard library. The
// repo is dependency-free by policy, so this is a minimal hand-rolled CPUID
// probe rather than a vendored feature library: it answers exactly the
// questions the backend selection in pkg/rlibm asks (can this process run
// AVX vector loads/stores and fused multiply-adds?) and nothing else.
//
// Detection runs once at init. On amd64 it executes CPUID and, when the OS
// advertises XSAVE support, XGETBV — AVX is only usable when the *operating
// system* saves the YMM halves across context switches, so a CPU bit alone
// is not enough. On every other architecture all features report false and
// the portable Go backends are the only ones offered.
package cpufeat

// Features is the feature set the backend selection consults.
type Features struct {
	// HasAVX: the CPU supports AVX and the OS preserves YMM state
	// (OSXSAVE set and XCR0 enables XMM+YMM). Gates the assembly
	// widen/narrow conversion loops.
	HasAVX bool
	// HasAVX2 additionally covers the 256-bit integer extensions.
	HasAVX2 bool
	// HasFMA: fused multiply-add (FMA3). math.FMA compiles to the fused
	// instruction when this holds; the Go compiler emits its own runtime
	// check, so this flag is informational for reporting, not a gate.
	HasFMA bool
}

// X86 holds the detected features of the running CPU. On non-amd64
// architectures it is the zero value.
var X86 Features

//go:build !amd64

package cpufeat

// Non-amd64 builds offer no assembly backend: X86 stays the zero value and
// backend selection falls through to the portable Go paths.

package poly

// Cost summarizes the static operation profile of an evaluation scheme at a
// given degree: operation counts and the critical-path latency under a
// simple superscalar model with unlimited issue width. The critical path is
// what Estrin's method shortens relative to Horner's serial chain — the
// instruction-level-parallelism argument of Section 4.
type Cost struct {
	Adds, Muls, FMAs int
	// CriticalPath is the longest dependence chain in cycles under the
	// Latency model.
	CriticalPath int
}

// Latency models per-operation latencies in cycles. The defaults match
// recent x86-64 cores where add, mul and fma all complete in 4 cycles.
type Latency struct {
	Add, Mul, FMA int
}

// DefaultLatency is a Skylake-like latency model.
var DefaultLatency = Latency{Add: 4, Mul: 4, FMA: 4}

// timed carries the cycle at which a value becomes available.
type timed struct{ ready int }

// costOps interprets scheme arithmetic as op counting plus dataflow timing.
type costCounter struct {
	lat  Latency
	cost Cost
}

func (cc *costCounter) ops() Ops[timed] {
	return Ops[timed]{
		FromFloat: func(float64) timed { return timed{0} },
		Add: func(a, b timed) timed {
			cc.cost.Adds++
			return timed{maxInt(a.ready, b.ready) + cc.lat.Add}
		},
		Mul: func(a, b timed) timed {
			cc.cost.Muls++
			return timed{maxInt(a.ready, b.ready) + cc.lat.Mul}
		},
		FMA: func(a, b, c timed) timed {
			cc.cost.FMAs++
			return timed{maxInt(maxInt(a.ready, b.ready), c.ready) + cc.lat.FMA}
		},
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SchemeCost computes the static cost of evaluating a polynomial of the
// given degree under the scheme and latency model. For the Knuth scheme the
// canonical adapted forms of degrees 4-6 are measured; other degrees fall
// back to Horner, as in NewEvaluator.
func SchemeCost(s Scheme, degree int, lat Latency) Cost {
	cc := &costCounter{lat: lat}
	ops := cc.ops()
	coeffs := make([]float64, degree+1)
	for i := range coeffs {
		coeffs[i] = 1 // values are irrelevant to the dataflow shape
	}
	x := timed{0}
	var result timed
	switch s {
	case Horner:
		result = HornerG(ops, coeffs, x, false)
	case HornerFMA:
		result = HornerG(ops, coeffs, x, true)
	case Estrin:
		result = EstrinG(ops, coeffs, x, false)
	case EstrinFMA:
		result = EstrinG(ops, coeffs, x, true)
	case Knuth:
		switch degree {
		case 4:
			result = Adapted4G(ops, &[5]float64{}, x)
		case 5:
			result = Adapted5G(ops, &[6]float64{}, x)
		case 6:
			result = Adapted6G(ops, &[7]float64{}, x)
		default:
			result = HornerG(ops, coeffs, x, false)
		}
	default:
		panic("poly: unknown scheme")
	}
	cc.cost.CriticalPath = result.ready
	return cc.cost
}

package poly

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func randCoeffs(rng *rand.Rand, n int) Poly {
	c := make(Poly, n)
	for i := range c {
		c[i] = (rng.Float64()*4 - 2) * math.Ldexp(1, rng.Intn(6)-3)
	}
	return c
}

func TestEvalHornerBasics(t *testing.T) {
	p := Poly{-6, 6, 42, 18, 2} // the paper's running example
	if got := EvalHorner(p, 0); got != -6 {
		t.Errorf("p(0) = %g, want -6", got)
	}
	if got := EvalHorner(p, 1); got != 62 {
		t.Errorf("p(1) = %g, want 62", got)
	}
	if got := EvalHorner(p, 2); got != 2*16+18*8+42*4+6*2-6 {
		t.Errorf("p(2) = %g", got)
	}
	if got := EvalHorner(nil, 3); got != 0 {
		t.Errorf("empty poly = %g, want 0", got)
	}
}

// TestSchemesAgreeInExactArithmetic: in exact rational arithmetic, Horner
// and Estrin (with or without "fused" operations) compute the same
// polynomial value — the schemes differ only in rounding behaviour.
func TestSchemesAgreeInExactArithmetic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ops := RatOps()
	for i := 0; i < 300; i++ {
		n := 1 + rng.Intn(13)
		c := randCoeffs(rng, n)
		x := new(big.Rat).SetFloat64(rng.Float64()*2 - 1)
		want := Poly(c).EvalExact(x)
		for name, got := range map[string]*big.Rat{
			"horner":     HornerG(ops, c, x, false),
			"horner-fma": HornerG(ops, c, x, true),
			"estrin":     EstrinG(ops, c, x, false),
			"estrin-fma": EstrinG(ops, c, x, true),
		} {
			if got.Cmp(want) != 0 {
				t.Fatalf("%s(deg %d) = %s, want %s", name, n-1, got.RatString(), want.RatString())
			}
		}
	}
}

// TestSpecializedEstrinMatchesGeneric: the hand-specialized float64 Estrin
// evaluators execute exactly the generic Algorithm 1 dataflow — results are
// bit-identical.
func TestSpecializedEstrinMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	ops := Float64Ops()
	for n := 1; n <= 14; n++ {
		for i := 0; i < 500; i++ {
			c := randCoeffs(rng, n)
			x := rng.Float64()*4 - 2
			if got, want := EvalEstrin(c, x), EstrinG(ops, c, x, false); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("EvalEstrin(len %d) = %x, generic %x", n, math.Float64bits(got), math.Float64bits(want))
			}
			if got, want := EvalEstrinFMA(c, x), EstrinG(ops, c, x, true); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("EvalEstrinFMA(len %d) = %x, generic %x", n, math.Float64bits(got), math.Float64bits(want))
			}
			if got, want := EvalHorner(c, x), HornerG(ops, c, x, false); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("EvalHorner(len %d) = %x, generic %x", n, math.Float64bits(got), math.Float64bits(want))
			}
			if got, want := EvalHornerFMA(c, x), HornerG(ops, c, x, true); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("EvalHornerFMA(len %d) = %x, generic %x", n, math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
}

// TestAdapt4PaperExample: the worked example from the paper's introduction:
// u(x) = -6 + 6x + 42x^2 + 18x^3 + 2x^4 adapts to
// y = (x+4)x - 1, u(x) = ((y + x + 3)y - 1)*2.
func TestAdapt4PaperExample(t *testing.T) {
	a, err := Adapt4([5]float64{-6, 6, 42, 18, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := [5]float64{4, -1, 3, -1, 2}
	if a != want {
		t.Fatalf("Adapt4 = %v, want %v", a, want)
	}
	// With integer adapted coefficients the evaluation is exact: the
	// adapted form and Horner agree bit-for-bit at integer points.
	for x := -8.0; x <= 8; x++ {
		if got, want := EvalAdapted4(&a, x), EvalHorner(Poly{-6, 6, 42, 18, 2}, x); got != want {
			t.Fatalf("adapted(%g) = %g, horner = %g", x, got, want)
		}
	}
}

func TestAdaptRejectsDegenerate(t *testing.T) {
	if _, err := Adapt4([5]float64{1, 2, 3, 4, 0}); err == nil {
		t.Error("Adapt4 with zero leading coefficient should fail")
	}
	if _, err := Adapt5([6]float64{1, 2, 3, 4, 5, 0}); err == nil {
		t.Error("Adapt5 with zero leading coefficient should fail")
	}
	if _, err := Adapt6([7]float64{1, 2, 3, 4, 5, 6, 0}); err == nil {
		t.Error("Adapt6 with zero leading coefficient should fail")
	}
	if _, err := Adapt4([5]float64{1, 2, 3, math.NaN(), 1}); err == nil {
		t.Error("Adapt4 with NaN coefficient should fail")
	}
}

// expandAdapted expands an adapted form symbolically (alphas taken exactly
// as their float64 values) and returns the dense polynomial it represents.
func expandAdapted(t *testing.T, deg int, alphas []float64) RatPoly {
	t.Helper()
	r := func(f float64) RatPoly { return RatPoly{new(big.Rat).SetFloat64(f)} }
	xp := RatPoly{new(big.Rat), new(big.Rat).SetInt64(1)} // x
	switch deg {
	case 4:
		y := xp.Add(r(alphas[0])).Mul(xp).Add(r(alphas[1]))
		t1 := y.Add(xp).Add(r(alphas[2]))
		return t1.Mul(y).Add(r(alphas[3])).Scale(new(big.Rat).SetFloat64(alphas[4]))
	case 5:
		s := xp.Add(r(alphas[0]))
		y := s.Mul(s)
		inner := y.Add(r(alphas[1])).Mul(y).Add(r(alphas[2]))
		return inner.Mul(xp.Add(r(alphas[3]))).Add(r(alphas[4])).Scale(new(big.Rat).SetFloat64(alphas[5]))
	case 6:
		z := xp.Add(r(alphas[0])).Mul(xp).Add(r(alphas[1]))
		w := xp.Add(r(alphas[2])).Mul(z).Add(r(alphas[3]))
		tt := w.Add(z).Add(r(alphas[4]))
		return tt.Mul(w).Add(r(alphas[5])).Scale(new(big.Rat).SetFloat64(alphas[6]))
	}
	t.Fatalf("bad degree %d", deg)
	return nil
}

// TestAdaptationExpansionIdentity: for random well-scaled polynomials, the
// symbolic expansion of the adapted form reproduces the original
// coefficients up to the double-precision error of the adaptation itself
// (exactly the non-linearity Section 5 integrates into the RLibm loop).
func TestAdaptationExpansionIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for deg := 4; deg <= 6; deg++ {
		for trial := 0; trial < 400; trial++ {
			u := make(Poly, deg+1)
			for i := range u {
				u[i] = rng.Float64()*4 - 2
			}
			u[deg] = 0.5 + rng.Float64() // well away from zero
			var alphas []float64
			var err error
			switch deg {
			case 4:
				var in [5]float64
				copy(in[:], u)
				var a [5]float64
				a, err = Adapt4(in)
				alphas = a[:]
			case 5:
				var in [6]float64
				copy(in[:], u)
				var a [6]float64
				a, err = Adapt5(in)
				alphas = a[:]
			case 6:
				var in [7]float64
				copy(in[:], u)
				var a [7]float64
				a, err = Adapt6(in)
				alphas = a[:]
			}
			if err != nil {
				t.Fatalf("deg %d adapt: %v", deg, err)
			}
			exp := expandAdapted(t, deg, alphas)
			if len(exp) != deg+1 {
				t.Fatalf("deg %d expansion has %d coefficients", deg, len(exp))
			}
			// Scale for the comparison: adapted coefficients can exceed the
			// original ones.
			scale := 1.0
			for _, a := range alphas {
				if m := math.Abs(a); m > scale {
					scale = m
				}
			}
			scale = scale * scale * scale // products of up to ~3 alphas appear
			for i := 0; i <= deg; i++ {
				got, _ := exp[i].Float64()
				if math.Abs(got-u[i]) > 1e-9*scale {
					t.Fatalf("deg %d trial %d: coefficient %d: expanded %.17g vs original %.17g (alphas %v)",
						deg, trial, i, got, u[i], alphas)
				}
			}
		}
	}
}

// TestAdaptedEvalCloseToPolynomial: evaluating the adapted form in float64
// stays close to the true polynomial value on [-1, 1].
func TestAdaptedEvalCloseToPolynomial(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 300; trial++ {
		deg := 4 + rng.Intn(3)
		u := make(Poly, deg+1)
		for i := range u {
			u[i] = rng.Float64()*2 - 1
		}
		u[deg] = 0.5 + rng.Float64()
		ev, err := NewEvaluator(Knuth, u)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 50; k++ {
			x := rng.Float64()*2 - 1
			got := ev.Eval(x)
			want, _ := u.EvalExact(new(big.Rat).SetFloat64(x)).Float64()
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("deg %d: adapted(%g) = %.17g, poly = %.17g", deg, x, got, want)
			}
		}
	}
}

// TestEvaluatorSchemes: Eval matches the corresponding free function, and
// EvalExact matches the float64 result closely.
func TestEvaluatorSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	c := randCoeffs(rng, 6)
	for _, s := range Schemes {
		ev, err := NewEvaluator(s, c)
		if err != nil {
			t.Fatal(err)
		}
		x := 0.375
		got := ev.Eval(x)
		var want float64
		switch s {
		case Horner:
			want = EvalHorner(c, x)
		case HornerFMA:
			want = EvalHornerFMA(c, x)
		case Estrin:
			want = EvalEstrin(c, x)
		case EstrinFMA:
			want = EvalEstrinFMA(c, x)
		case Knuth:
			want = got // checked via EvalExact below
		}
		if got != want {
			t.Errorf("%v: Eval = %g, free function = %g", s, got, want)
		}
		exact, _ := ev.EvalExact(new(big.Rat).SetFloat64(x)).Float64()
		if math.Abs(exact-got) > 1e-12 {
			t.Errorf("%v: EvalExact = %g vs Eval = %g", s, exact, got)
		}
	}
}

// TestKnuthFallbackLowDegree: degrees below 4 use Horner (adaptation does
// not apply).
func TestKnuthFallbackLowDegree(t *testing.T) {
	c := Poly{1, 2, 3}
	ev, err := NewEvaluator(Knuth, c)
	if err != nil {
		t.Fatal(err)
	}
	if ev.AdaptedCoeffs() != nil {
		t.Error("degree-2 polynomial should not be adapted")
	}
	if got, want := ev.Eval(0.5), EvalHorner(c, 0.5); got != want {
		t.Errorf("fallback eval = %g, want %g", got, want)
	}
}

func TestParseScheme(t *testing.T) {
	for _, s := range Schemes {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Error("ParseScheme(bogus) should fail")
	}
}

// TestSchemeCosts checks the paper's operation-count claims and the
// critical-path ordering Horner > Estrin > Estrin+FMA.
func TestSchemeCosts(t *testing.T) {
	lat := DefaultLatency

	h5 := SchemeCost(Horner, 5, lat)
	if h5.Adds != 5 || h5.Muls != 5 || h5.FMAs != 0 {
		t.Errorf("Horner deg5 cost = %+v, want 5 adds, 5 muls", h5)
	}
	if h5.CriticalPath != 5*(lat.Add+lat.Mul) {
		t.Errorf("Horner deg5 critical path = %d, want %d", h5.CriticalPath, 5*(lat.Add+lat.Mul))
	}

	hf5 := SchemeCost(HornerFMA, 5, lat)
	if hf5.FMAs != 5 || hf5.CriticalPath != 5*lat.FMA {
		t.Errorf("HornerFMA deg5 cost = %+v", hf5)
	}

	// Knuth degree 4: 3 multiplications, 5 additions (Section 3.1).
	k4 := SchemeCost(Knuth, 4, lat)
	if k4.Muls != 3 || k4.Adds != 5 {
		t.Errorf("Knuth deg4 cost = %+v, want 3 muls, 5 adds", k4)
	}
	// Knuth degree 5: 4 multiplications, 5 additions (Section 3.2).
	k5 := SchemeCost(Knuth, 5, lat)
	if k5.Muls != 4 || k5.Adds != 5 {
		t.Errorf("Knuth deg5 cost = %+v, want 4 muls, 5 adds", k5)
	}
	// Knuth degree 6: 4 multiplications, 7 additions (Section 3.3).
	k6 := SchemeCost(Knuth, 6, lat)
	if k6.Muls != 4 || k6.Adds != 7 {
		t.Errorf("Knuth deg6 cost = %+v, want 4 muls, 7 adds", k6)
	}

	for deg := 4; deg <= 8; deg++ {
		h := SchemeCost(Horner, deg, lat)
		e := SchemeCost(Estrin, deg, lat)
		ef := SchemeCost(EstrinFMA, deg, lat)
		if !(e.CriticalPath < h.CriticalPath) {
			t.Errorf("deg %d: Estrin critical path %d not shorter than Horner %d", deg, e.CriticalPath, h.CriticalPath)
		}
		if !(ef.CriticalPath < e.CriticalPath) {
			t.Errorf("deg %d: Estrin+FMA critical path %d not shorter than Estrin %d", deg, ef.CriticalPath, e.CriticalPath)
		}
	}
}

// TestRatPolyAlgebra sanity-checks the exact polynomial algebra used by the
// expansion tests and the LP layer.
func TestRatPolyAlgebra(t *testing.T) {
	one := new(big.Rat).SetInt64(1)
	two := new(big.Rat).SetInt64(2)
	// (1 + x)(1 + x) = 1 + 2x + x^2
	p := RatPoly{one, one}
	sq := p.Mul(p)
	want := RatPoly{one, two, one}
	if !sq.Equal(want) {
		t.Errorf("(1+x)^2 = %v", sq)
	}
	if !sq.Add(NewRatPoly(5)).Equal(want) {
		t.Error("adding zero changed the polynomial")
	}
	x := new(big.Rat).SetInt64(3)
	if got := sq.Eval(x); got.Cmp(new(big.Rat).SetInt64(16)) != 0 {
		t.Errorf("(1+3)^2 = %s", got.RatString())
	}
	f := sq.Float64s()
	if f[0] != 1 || f[1] != 2 || f[2] != 1 {
		t.Errorf("Float64s = %v", f)
	}
}

// TestHornerQuickExactMatch: Horner in float64 differs from the exact value
// by at most a small relative bound for well-scaled inputs.
func TestHornerQuickExactMatch(t *testing.T) {
	prop := func(c0, c1, c2, c3 int16, xi int16) bool {
		c := Poly{float64(c0) / 256, float64(c1) / 256, float64(c2) / 256, float64(c3) / 256}
		x := float64(xi) / 32768
		got := EvalHorner(c, x)
		want, _ := c.EvalExact(new(big.Rat).SetFloat64(x)).Float64()
		return math.Abs(got-want) <= 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestPolyUtil(t *testing.T) {
	p := Poly{1, 2, 0, 0}
	if got := p.Trim(); len(got) != 2 {
		t.Errorf("Trim = %v", got)
	}
	if got := (Poly{0, 0}).Trim(); len(got) != 1 {
		t.Errorf("Trim all-zero = %v", got)
	}
	q := Poly{1, 2, 3}
	if Poly(nil).Degree() != 0 || q.Degree() != 2 {
		t.Error("Degree broken")
	}
	cl := p.Clone()
	cl[0] = 99
	if p[0] == 99 {
		t.Error("Clone aliases")
	}
	if s := (Poly{1, -2}).String(); s == "" {
		t.Error("empty String")
	}
	if s := Poly(nil).String(); s != "0" {
		t.Errorf("nil String = %q", s)
	}
}

package poly

import (
	"math"
	"math/big"
)

// Ops is an interpretation of the arithmetic used by the evaluation schemes.
// Instantiating the scheme interpreters over different Ops yields the
// float64 semantics (with real roundings), the exact rational semantics
// (where all schemes are algebraically equal), and the cost/latency
// semantics used to compare instruction-level parallelism.
type Ops[T any] struct {
	FromFloat func(float64) T
	Add       func(a, b T) T
	Mul       func(a, b T) T
	// FMA computes a*b + c in a single operation.
	FMA func(a, b, c T) T
}

// RatOps is the exact rational interpretation: FMA and Mul+Add coincide.
func RatOps() Ops[*big.Rat] {
	return Ops[*big.Rat]{
		FromFloat: func(f float64) *big.Rat { return new(big.Rat).SetFloat64(f) },
		Add:       func(a, b *big.Rat) *big.Rat { return new(big.Rat).Add(a, b) },
		Mul:       func(a, b *big.Rat) *big.Rat { return new(big.Rat).Mul(a, b) },
		FMA: func(a, b, c *big.Rat) *big.Rat {
			r := new(big.Rat).Mul(a, b)
			return r.Add(r, c)
		},
	}
}

// Float64Ops is the hardware interpretation: IEEE double arithmetic with
// math.FMA (a single rounding, compiled to the fused instruction on amd64).
// The specialized evaluators in this package are bit-identical to the
// generic interpreters under this Ops — a property the tests enforce.
func Float64Ops() Ops[float64] {
	return Ops[float64]{
		FromFloat: func(f float64) float64 { return f },
		Add:       func(a, b float64) float64 { return a + b },
		Mul:       func(a, b float64) float64 { return a * b },
		FMA:       math.FMA,
	}
}

// HornerG interprets Horner's method over ops.
func HornerG[T any](ops Ops[T], c []float64, x T, fma bool) T {
	if len(c) == 0 {
		return ops.FromFloat(0)
	}
	r := ops.FromFloat(c[len(c)-1])
	for i := len(c) - 2; i >= 0; i-- {
		if fma {
			r = ops.FMA(r, x, ops.FromFloat(c[i]))
		} else {
			r = ops.Add(ops.Mul(r, x), ops.FromFloat(c[i]))
		}
	}
	return r
}

// EstrinG interprets Estrin's method (Algorithm 1) over ops.
func EstrinG[T any](ops Ops[T], c []float64, x T, fma bool) T {
	if len(c) == 0 {
		return ops.FromFloat(0)
	}
	v := make([]T, len(c))
	for i, ci := range c {
		v[i] = ops.FromFloat(ci)
	}
	for len(v) > 1 {
		n := len(v)
		w := make([]T, (n+1)/2)
		for i := 0; i+1 < n; i += 2 {
			if fma {
				w[i/2] = ops.FMA(v[i+1], x, v[i])
			} else {
				w[i/2] = ops.Add(v[i], ops.Mul(v[i+1], x))
			}
		}
		if n%2 == 1 {
			w[(n-1)/2] = v[n-1]
		}
		v = w
		x = ops.Mul(x, x)
	}
	return v[0]
}

// Adapted4G interprets the degree-4 adapted form (equation 3) over ops:
//
//	y = (x + a0)*x + a1
//	u = ((y + x + a2)*y + a3) * a4
func Adapted4G[T any](ops Ops[T], a *[5]float64, x T) T {
	a0, a1, a2, a3, a4 := ops.FromFloat(a[0]), ops.FromFloat(a[1]), ops.FromFloat(a[2]), ops.FromFloat(a[3]), ops.FromFloat(a[4])
	y := ops.Add(ops.Mul(ops.Add(x, a0), x), a1)
	t := ops.Add(ops.Add(y, x), a2)
	return ops.Mul(ops.Add(ops.Mul(t, y), a3), a4)
}

// Adapted5G interprets the degree-5 adapted form (equation 5) over ops:
//
//	y = (x + a0)^2
//	u = (((y + a1)*y + a2)*(x + a3) + a4) * a5
func Adapted5G[T any](ops Ops[T], a *[6]float64, x T) T {
	a0, a1, a2, a3, a4, a5 := ops.FromFloat(a[0]), ops.FromFloat(a[1]), ops.FromFloat(a[2]), ops.FromFloat(a[3]), ops.FromFloat(a[4]), ops.FromFloat(a[5])
	s := ops.Add(x, a0)
	y := ops.Mul(s, s)
	inner := ops.Add(ops.Mul(ops.Add(y, a1), y), a2)
	return ops.Mul(ops.Add(ops.Mul(inner, ops.Add(x, a3)), a4), a5)
}

// Adapted6G interprets the degree-6 adapted form (equation 8) over ops:
//
//	z = (x + a0)*x + a1
//	w = (x + a2)*z + a3
//	u = ((w + z + a4)*w + a5) * a6
func Adapted6G[T any](ops Ops[T], a *[7]float64, x T) T {
	a0, a1, a2, a3, a4, a5, a6 := ops.FromFloat(a[0]), ops.FromFloat(a[1]), ops.FromFloat(a[2]), ops.FromFloat(a[3]), ops.FromFloat(a[4]), ops.FromFloat(a[5]), ops.FromFloat(a[6])
	z := ops.Add(ops.Mul(ops.Add(x, a0), x), a1)
	w := ops.Add(ops.Mul(ops.Add(x, a2), z), a3)
	t := ops.Add(ops.Add(w, z), a4)
	return ops.Mul(ops.Add(ops.Mul(t, w), a5), a6)
}

package poly_test

import (
	"fmt"

	"rlibm/internal/poly"
)

// The paper's running example: u(x) = -6 + 6x + 42x^2 + 18x^3 + 2x^4
// adapts to y = (x+4)x - 1, u = ((y + x + 3)y - 1)*2 (Section 1 / 3.1).
func ExampleAdapt4() {
	alphas, err := poly.Adapt4([5]float64{-6, 6, 42, 18, 2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("y = (x + %g)x + %g\n", alphas[0], alphas[1])
	fmt.Printf("u = ((y + x + %g)y + %g) * %g\n", alphas[2], alphas[3], alphas[4])
	fmt.Println("u(2) =", poly.EvalAdapted4(&alphas, 2))
	// Output:
	// y = (x + 4)x + -1
	// u = ((y + x + 3)y + -1) * 2
	// u(2) = 350
}

// Estrin's method exposes instruction-level parallelism; the cost model
// reports the shorter dependence chain (Section 4).
func ExampleSchemeCost() {
	h := poly.SchemeCost(poly.Horner, 5, poly.DefaultLatency)
	e := poly.SchemeCost(poly.EstrinFMA, 5, poly.DefaultLatency)
	fmt.Printf("horner: %d cycles, estrin+fma: %d cycles\n", h.CriticalPath, e.CriticalPath)
	// Output:
	// horner: 40 cycles, estrin+fma: 12 cycles
}

// The code generator emits the same operation DAG the evaluators execute.
func ExampleEvaluator_GenEvalFunc() {
	ev, err := poly.NewEvaluator(poly.EstrinFMA, poly.Poly{1, 1, 0.5, 0.125})
	if err != nil {
		panic(err)
	}
	fmt.Print(ev.GenEvalFunc("evalCubic"))
	// Output:
	// func evalCubic(x float64) float64 {
	// 	t0 := math.FMA(0x1p+00, x, 0x1p+00)
	// 	t1 := math.FMA(0x1p-03, x, 0x1p-01)
	// 	t2 := x * x
	// 	t3 := math.FMA(t1, t2, t0)
	// 	return t3
	// }
}

// Package poly implements polynomial representations and the fast evaluation
// schemes studied in the CGO 2023 paper: Horner's method, Knuth's coefficient
// adaptation (degrees 4-6), Estrin's parallel method, and Estrin with fused
// multiply-add operations.
//
// Every scheme exists in three interpretations sharing one operation DAG:
//
//   - a specialized float64 evaluator (the exact instruction sequence the
//     generated libm executes, math.FMA included),
//   - an exact *big.Rat evaluator (schemes are algebraically identical in
//     exact arithmetic — a property the tests verify), and
//   - a cost interpretation that counts operations and measures the critical
//     path under a latency model (the instruction-level-parallelism argument
//     of Section 4).
package poly

import (
	"fmt"
	"math"
	"math/big"
	"strings"
)

// Poly is a dense polynomial with float64 coefficients in ascending order:
// Poly{c0, c1, c2} represents c0 + c1*x + c2*x^2.
type Poly []float64

// Degree returns the degree of the polynomial (the index of the last
// coefficient); the zero polynomial has degree 0.
func (p Poly) Degree() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// Trim removes trailing zero coefficients.
func (p Poly) Trim() Poly {
	n := len(p)
	for n > 1 && p[n-1] == 0 {
		n--
	}
	return p[:n]
}

// Clone returns a copy of the polynomial.
func (p Poly) Clone() Poly {
	return append(Poly(nil), p...)
}

func (p Poly) String() string {
	if len(p) == 0 {
		return "0"
	}
	var b strings.Builder
	for i, c := range p {
		if i > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%.17g*x^%d", c, i)
	}
	return b.String()
}

// EvalExact evaluates the polynomial at the rational point x in exact
// arithmetic. The float64 coefficients are interpreted exactly.
func (p Poly) EvalExact(x *big.Rat) *big.Rat {
	sum := new(big.Rat)
	term := new(big.Rat).SetInt64(1)
	tmp := new(big.Rat)
	for _, c := range p {
		tmp.SetFloat64(c)
		tmp.Mul(tmp, term)
		sum.Add(sum, tmp)
		term.Mul(term, x)
	}
	return sum
}

// RatPoly is a dense polynomial with exact rational coefficients, used by the
// LP layer and by the symbolic-identity tests.
type RatPoly []*big.Rat

// NewRatPoly returns a zero polynomial with n coefficients.
func NewRatPoly(n int) RatPoly {
	p := make(RatPoly, n)
	for i := range p {
		p[i] = new(big.Rat)
	}
	return p
}

// RatPolyFromFloats converts float64 coefficients exactly.
func RatPolyFromFloats(c []float64) RatPoly {
	p := make(RatPoly, len(c))
	for i, v := range c {
		p[i] = new(big.Rat).SetFloat64(v)
	}
	return p
}

// Float64s rounds the rational coefficients to the nearest float64 — the
// non-linear step the paper's generate–check–constrain loop absorbs.
func (p RatPoly) Float64s() Poly {
	out := make(Poly, len(p))
	for i, c := range p {
		out[i], _ = c.Float64()
	}
	return out
}

// Eval evaluates the rational polynomial exactly at x.
func (p RatPoly) Eval(x *big.Rat) *big.Rat {
	sum := new(big.Rat)
	tmp := new(big.Rat)
	for i := len(p) - 1; i >= 0; i-- {
		sum.Mul(sum, x)
		tmp.Set(p[i])
		sum.Add(sum, tmp)
	}
	return sum
}

// Add returns p + q.
func (p RatPoly) Add(q RatPoly) RatPoly {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	out := NewRatPoly(n)
	for i := range out {
		if i < len(p) {
			out[i].Add(out[i], p[i])
		}
		if i < len(q) {
			out[i].Add(out[i], q[i])
		}
	}
	return out
}

// Mul returns p * q.
func (p RatPoly) Mul(q RatPoly) RatPoly {
	if len(p) == 0 || len(q) == 0 {
		return RatPoly{}
	}
	out := NewRatPoly(len(p) + len(q) - 1)
	tmp := new(big.Rat)
	for i, a := range p {
		for j, b := range q {
			tmp.Mul(a, b)
			out[i+j].Add(out[i+j], tmp)
		}
	}
	return out
}

// Scale returns p multiplied by the scalar s.
func (p RatPoly) Scale(s *big.Rat) RatPoly {
	out := NewRatPoly(len(p))
	for i, c := range p {
		out[i].Mul(c, s)
	}
	return out
}

// Equal reports exact coefficient-wise equality (up to trailing zeros).
func (p RatPoly) Equal(q RatPoly) bool {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	zero := new(big.Rat)
	for i := 0; i < n; i++ {
		a, b := zero, zero
		if i < len(p) {
			a = p[i]
		}
		if i < len(q) {
			b = q[i]
		}
		if a.Cmp(b) != 0 {
			return false
		}
	}
	return true
}

// EvalHorner evaluates the polynomial with Horner's method in float64: a
// serial chain of one multiplication and one addition per degree, each
// rounding separately. This is RLibm's default evaluation.
func EvalHorner(c []float64, x float64) float64 {
	if len(c) == 0 {
		return 0
	}
	r := c[len(c)-1]
	for i := len(c) - 2; i >= 0; i-- {
		r = r*x + c[i]
	}
	return r
}

// EvalHornerFMA evaluates with Horner's method using fused multiply-adds:
// one rounding per degree instead of two. (An ablation scheme; the paper's
// configurations are Horner, Knuth, Estrin and Estrin+FMA.)
func EvalHornerFMA(c []float64, x float64) float64 {
	if len(c) == 0 {
		return 0
	}
	r := c[len(c)-1]
	for i := len(c) - 2; i >= 0; i-- {
		r = math.FMA(r, x, c[i])
	}
	return r
}

package poly

import "math"

// EvalEstrin evaluates the polynomial with Estrin's method (Algorithm 1 of
// the paper) without fused operations: each pairing u[2i] + u[2i+1]*x is a
// multiplication followed by an addition, and the pairings within a level
// are independent, exposing instruction-level parallelism.
func EvalEstrin(c []float64, x float64) float64 {
	switch len(c) {
	case 0:
		return 0
	case 1:
		return c[0]
	case 2:
		return c[0] + c[1]*x
	case 3:
		return (c[0] + c[1]*x) + c[2]*(x*x)
	case 4:
		x2 := x * x
		return (c[0] + c[1]*x) + (c[2]+c[3]*x)*x2
	case 5:
		x2 := x * x
		x4 := x2 * x2
		return ((c[0] + c[1]*x) + (c[2]+c[3]*x)*x2) + c[4]*x4
	case 6:
		x2 := x * x
		x4 := x2 * x2
		return ((c[0] + c[1]*x) + (c[2]+c[3]*x)*x2) + (c[4]+c[5]*x)*x4
	case 7:
		x2 := x * x
		x4 := x2 * x2
		lo := (c[0] + c[1]*x) + (c[2]+c[3]*x)*x2
		hi := (c[4] + c[5]*x) + c[6]*x2
		return lo + hi*x4
	case 8:
		x2 := x * x
		x4 := x2 * x2
		lo := (c[0] + c[1]*x) + (c[2]+c[3]*x)*x2
		hi := (c[4] + c[5]*x) + (c[6]+c[7]*x)*x2
		return lo + hi*x4
	case 9:
		x2 := x * x
		x4 := x2 * x2
		x8 := x4 * x4
		lo := (c[0] + c[1]*x) + (c[2]+c[3]*x)*x2
		hi := (c[4] + c[5]*x) + (c[6]+c[7]*x)*x2
		return (lo + hi*x4) + c[8]*x8
	default:
		return evalEstrinGeneric(c, x, false)
	}
}

// EvalEstrinFMA evaluates with Estrin's method where every pairing
// A + B*x is a single fused multiply-add (one rounding), as in Section 4 of
// the paper.
func EvalEstrinFMA(c []float64, x float64) float64 {
	switch len(c) {
	case 0:
		return 0
	case 1:
		return c[0]
	case 2:
		return math.FMA(c[1], x, c[0])
	case 3:
		return math.FMA(c[2], x*x, math.FMA(c[1], x, c[0]))
	case 4:
		x2 := x * x
		return math.FMA(math.FMA(c[3], x, c[2]), x2, math.FMA(c[1], x, c[0]))
	case 5:
		x2 := x * x
		x4 := x2 * x2
		v := math.FMA(math.FMA(c[3], x, c[2]), x2, math.FMA(c[1], x, c[0]))
		return math.FMA(c[4], x4, v)
	case 6:
		x2 := x * x
		x4 := x2 * x2
		v := math.FMA(math.FMA(c[3], x, c[2]), x2, math.FMA(c[1], x, c[0]))
		return math.FMA(math.FMA(c[5], x, c[4]), x4, v)
	case 7:
		x2 := x * x
		x4 := x2 * x2
		lo := math.FMA(math.FMA(c[3], x, c[2]), x2, math.FMA(c[1], x, c[0]))
		hi := math.FMA(c[6], x2, math.FMA(c[5], x, c[4]))
		return math.FMA(hi, x4, lo)
	case 8:
		x2 := x * x
		x4 := x2 * x2
		lo := math.FMA(math.FMA(c[3], x, c[2]), x2, math.FMA(c[1], x, c[0]))
		hi := math.FMA(math.FMA(c[7], x, c[6]), x2, math.FMA(c[5], x, c[4]))
		return math.FMA(hi, x4, lo)
	case 9:
		x2 := x * x
		x4 := x2 * x2
		x8 := x4 * x4
		lo := math.FMA(math.FMA(c[3], x, c[2]), x2, math.FMA(c[1], x, c[0]))
		hi := math.FMA(math.FMA(c[7], x, c[6]), x2, math.FMA(c[5], x, c[4]))
		return math.FMA(c[8], x8, math.FMA(hi, x4, lo))
	default:
		return evalEstrinGeneric(c, x, true)
	}
}

// evalEstrinGeneric is the direct transcription of Algorithm 1 for arbitrary
// degree: pair adjacent coefficients, square the variable, recurse.
func evalEstrinGeneric(c []float64, x float64, fma bool) float64 {
	v := append([]float64(nil), c...)
	for len(v) > 1 {
		n := len(v)
		w := v[:(n+1)/2]
		for i := 0; i+1 < n; i += 2 {
			if fma {
				w[i/2] = math.FMA(v[i+1], x, v[i])
			} else {
				w[i/2] = v[i] + v[i+1]*x
			}
		}
		if n%2 == 1 {
			w[(n-1)/2] = v[n-1]
		}
		v = w
		x = x * x
	}
	return v[0]
}

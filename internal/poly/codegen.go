package poly

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// CodeBuf collects generated straight-line code for one polynomial
// evaluation: the code-generation interpretation of the scheme DAG.
//
// Because the same generic interpreters (HornerG, EstrinG, AdaptedNG) drive
// the float64 evaluators, the exact-rational checkers, the cost model and
// this code generator, the emitted source is the same operation DAG the
// generator validated — bit-identical results by construction.
type CodeBuf struct {
	prefix string
	n      int
	lines  []string
}

// NewCodeBuf returns a fresh buffer; temporaries are named prefix0,
// prefix1, ...
func NewCodeBuf(prefix string) *CodeBuf {
	return &CodeBuf{prefix: prefix}
}

// Lines returns the emitted statements, one per operation.
func (cb *CodeBuf) Lines() []string { return cb.lines }

// temp allocates a new temporary bound to the given expression.
func (cb *CodeBuf) temp(expr string) string {
	name := fmt.Sprintf("%s%d", cb.prefix, cb.n)
	cb.n++
	cb.lines = append(cb.lines, fmt.Sprintf("%s := %s", name, expr))
	return name
}

// GoLiteral formats a float64 as an exact Go hexadecimal literal.
func GoLiteral(v float64) string {
	s := strconv.FormatFloat(v, 'x', -1, 64)
	switch s {
	case "+Inf", "-Inf", "NaN":
		// Callers never emit non-finite coefficients; make it loud.
		panic("poly: non-finite coefficient in generated code")
	}
	return s
}

// GenOps returns the code-generating interpretation: every Add/Mul/FMA
// emits one Go statement into the buffer and returns the temporary's name.
func GenOps(cb *CodeBuf) Ops[string] {
	return Ops[string]{
		FromFloat: func(f float64) string { return GoLiteral(f) },
		Add:       func(a, b string) string { return cb.temp(fmt.Sprintf("%s + %s", a, b)) },
		Mul:       func(a, b string) string { return cb.temp(fmt.Sprintf("%s * %s", a, b)) },
		FMA:       func(a, b, c string) string { return cb.temp(fmt.Sprintf("math.FMA(%s, %s, %s)", a, b, c)) },
	}
}

// GenEval emits straight-line Go code computing the evaluator's polynomial
// at the variable named x, returning the statements and the name of the
// result value. The emitted operations replicate Evaluator.Eval exactly.
func (e *Evaluator) GenEval(x, tmpPrefix string) (lines []string, result string) {
	cb := NewCodeBuf(tmpPrefix)
	result = e.genWith(GenOps(cb), x)
	return eliminateDead(cb.Lines(), result), result
}

// EvalCoeffs returns the coefficient array the bound scheme actually reads
// during evaluation: the Knuth-adapted alphas when adaptation is in effect,
// the original ascending coefficients otherwise. Index i in this slice is
// the i the coeff callback of GenEvalCoeffs receives.
func (e *Evaluator) EvalCoeffs() []float64 {
	if a := e.AdaptedCoeffs(); a != nil {
		return a
	}
	return e.Coeffs
}

// GenEvalCoeffs emits the same straight-line operation sequence as GenEval,
// but loads every coefficient through coeff(i) — an expression such as
// "c[3]" — instead of inlining its hexadecimal literal; i indexes
// EvalCoeffs. The vector block emitter uses this to share one polynomial
// body across the table-selected pieces of a piecewise kernel: the DAG shape
// depends only on the scheme and the coefficient count, so pieces of equal
// degree compile to identical code over different table rows. Coefficients
// with equal bit patterns resolve to the lowest index (harmless: the rows
// hold the same value there), and a constant the DAG introduces that is not
// a coefficient falls back to its literal.
func (e *Evaluator) GenEvalCoeffs(x, tmpPrefix string, coeff func(i int) string) (lines []string, result string) {
	ec := e.EvalCoeffs()
	byBits := make(map[uint64]int, len(ec))
	for i := len(ec) - 1; i >= 0; i-- {
		byBits[math.Float64bits(ec[i])] = i
	}
	cb := NewCodeBuf(tmpPrefix)
	ops := GenOps(cb)
	ops.FromFloat = func(f float64) string {
		if i, ok := byBits[math.Float64bits(f)]; ok {
			return coeff(i)
		}
		return GoLiteral(f)
	}
	result = e.genWith(ops, x)
	return eliminateDead(cb.Lines(), result), result
}

// genWith runs the scheme's generic DAG interpreter under the given
// string-typed Ops — the shared body of GenEval and GenEvalCoeffs.
func (e *Evaluator) genWith(ops Ops[string], x string) (result string) {
	switch e.Scheme {
	case Horner:
		result = HornerG(ops, e.Coeffs, x, false)
	case HornerFMA:
		result = HornerG(ops, e.Coeffs, x, true)
	case Estrin:
		result = EstrinG(ops, e.Coeffs, x, false)
	case EstrinFMA:
		result = EstrinG(ops, e.Coeffs, x, true)
	case Knuth:
		switch {
		case e.adapted4 != nil:
			result = Adapted4G(ops, e.adapted4, x)
		case e.adapted5 != nil:
			result = Adapted5G(ops, e.adapted5, x)
		case e.adapted6 != nil:
			result = Adapted6G(ops, e.adapted6, x)
		default:
			result = HornerG(ops, e.Coeffs, x, false)
		}
	default:
		panic("poly: unknown scheme")
	}
	return result
}

// eliminateDead removes statements whose temporary is never used by a later
// statement or the result — e.g. the final level of Estrin's recursion
// squares the variable once more than it consumes. Removing an unused pure
// operation cannot change any computed value.
func eliminateDead(lines []string, result string) []string {
	live := map[string]bool{result: true}
	keep := make([]bool, len(lines))
	for i := len(lines) - 1; i >= 0; i-- {
		name, expr, ok := strings.Cut(lines[i], " := ")
		if !ok || live[name] {
			keep[i] = true
			if ok {
				for _, tok := range strings.FieldsFunc(expr, func(r rune) bool {
					return r == ' ' || r == '(' || r == ')' || r == ',' || r == '+' || r == '*'
				}) {
					live[tok] = true
				}
			}
		}
	}
	out := lines[:0]
	for i, l := range lines {
		if keep[i] {
			out = append(out, l)
		}
	}
	return out
}

// GenEvalFunc wraps GenEval into a complete Go function definition.
func (e *Evaluator) GenEvalFunc(name string) string {
	lines, result := e.GenEval("x", "t")
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(x float64) float64 {\n", name)
	for _, l := range lines {
		fmt.Fprintf(&b, "\t%s\n", l)
	}
	fmt.Fprintf(&b, "\treturn %s\n}\n", result)
	return b.String()
}

package poly

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// TestGenEvalShapes: the generated code contains exactly the operations the
// cost model counts, one statement per operation.
func TestGenEvalShapes(t *testing.T) {
	coeffs := Poly{1, 2, 3, 4, 5, 6} // degree 5
	for _, s := range Schemes {
		ev, err := NewEvaluator(s, coeffs)
		if err != nil {
			t.Fatal(err)
		}
		lines, result := ev.GenEval("x", "t")
		cost := SchemeCost(s, 5, DefaultLatency)
		wantOps := cost.Adds + cost.Muls + cost.FMAs
		// Dead-code elimination may drop up to two unused squarings that
		// the cost model (which interprets the raw DAG) still counts.
		if len(lines) > wantOps || len(lines) < wantOps-2 {
			t.Errorf("%v: %d statements, cost model says %d ops", s, len(lines), wantOps)
		}
		if result == "" || !strings.HasPrefix(result, "t") {
			t.Errorf("%v: result %q is not a temporary", s, result)
		}
		fmas := 0
		for _, l := range lines {
			if strings.Contains(l, "math.FMA") {
				fmas++
			}
		}
		if fmas != cost.FMAs {
			t.Errorf("%v: %d FMA statements, cost model says %d", s, fmas, cost.FMAs)
		}
		// No dead statements survive.
		for i, l := range lines {
			name, _, _ := strings.Cut(l, " := ")
			used := name == result
			for _, later := range lines[i+1:] {
				if strings.Contains(later, name) {
					used = true
					break
				}
			}
			if !used {
				t.Errorf("%v: dead statement %q", s, l)
			}
		}
	}
}

func TestGoLiteralExact(t *testing.T) {
	for _, v := range []float64{1, -0.5, math.Pi, 0x1.fffffep+127, 5e-324} {
		lit := GoLiteral(v)
		// Go hex literals parse back exactly via strconv.
		if !strings.HasPrefix(lit, "0x") && !strings.HasPrefix(lit, "-0x") {
			t.Errorf("GoLiteral(%g) = %q, not a hex literal", v, lit)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("GoLiteral(Inf) should panic")
		}
	}()
	GoLiteral(math.Inf(1))
}

// TestGenEvalSemantics interprets the generated statements with a tiny
// evaluator and checks bit-identity against Evaluator.Eval — the
// construction-level guarantee made concrete.
func TestGenEvalSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 200; trial++ {
		deg := 4 + rng.Intn(3)
		coeffs := make(Poly, deg+1)
		for i := range coeffs {
			coeffs[i] = rng.Float64()*2 - 1
		}
		coeffs[deg] = 0.5 + rng.Float64()
		for _, s := range Schemes {
			ev, err := NewEvaluator(s, coeffs)
			if err != nil {
				t.Fatal(err)
			}
			lines, result := ev.GenEval("x", "t")
			x := rng.Float64()/32 - 1.0/64
			got := interpretLines(t, lines, result, x)
			want := ev.Eval(x)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%v: generated code gives %x, Eval gives %x\n%s",
					s, math.Float64bits(got), math.Float64bits(want), strings.Join(lines, "\n"))
			}
		}
	}
}

// interpretLines executes "name := expr" statements where expr is one of
// "a + b", "a * b", or "math.FMA(a, b, c)" over float64 temporaries.
func interpretLines(t *testing.T, lines []string, result string, x float64) float64 {
	t.Helper()
	env := map[string]float64{"x": x}
	operand := func(tok string) float64 {
		if v, ok := env[tok]; ok {
			return v
		}
		var f float64
		if _, err := fmtSscan(tok, &f); err != nil {
			t.Fatalf("bad operand %q: %v", tok, err)
		}
		return f
	}
	for _, l := range lines {
		parts := strings.SplitN(l, " := ", 2)
		if len(parts) != 2 {
			t.Fatalf("bad statement %q", l)
		}
		name, expr := parts[0], parts[1]
		switch {
		case strings.HasPrefix(expr, "math.FMA("):
			args := strings.Split(strings.TrimSuffix(strings.TrimPrefix(expr, "math.FMA("), ")"), ", ")
			if len(args) != 3 {
				t.Fatalf("bad FMA %q", expr)
			}
			env[name] = math.FMA(operand(args[0]), operand(args[1]), operand(args[2]))
		case strings.Contains(expr, " + "):
			ab := strings.SplitN(expr, " + ", 2)
			env[name] = operand(ab[0]) + operand(ab[1])
		case strings.Contains(expr, " * "):
			ab := strings.SplitN(expr, " * ", 2)
			env[name] = operand(ab[0]) * operand(ab[1])
		default:
			t.Fatalf("unrecognized expression %q", expr)
		}
	}
	return env[result]
}

// fmtSscan parses a Go hex float literal.
func fmtSscan(tok string, f *float64) (int, error) {
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, err
	}
	*f = v
	return 1, nil
}

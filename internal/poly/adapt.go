package poly

import (
	"errors"
	"fmt"
	"math"

	"rlibm/internal/cubic"
)

// ErrNotAdaptable is returned when Knuth's coefficient adaptation does not
// apply: the degree is below 4 or the leading coefficient is zero.
var ErrNotAdaptable = errors.New("poly: polynomial not adaptable (degree < 4 or zero leading coefficient)")

// Adapt4 computes Knuth's adapted coefficients for a degree-4 polynomial
// (Section 3.1, equations 3-4). The adapted form evaluates with 3
// multiplications and 5 additions instead of Horner's 4 and 4:
//
//	y = (x + a0)*x + a1
//	u(x) = ((y + x + a2)*y + a3) * a4
func Adapt4(u [5]float64) ([5]float64, error) {
	if u[4] == 0 || !allFinite(u[:]) {
		return [5]float64{}, ErrNotAdaptable
	}
	a0 := (u[3]/u[4] - 1) / 2
	beta := u[2]/u[4] - a0*(a0+1)
	a1 := u[1]/u[4] - a0*beta
	a2 := beta - 2*a1
	a3 := u[0]/u[4] - a1*(a1+a2)
	out := [5]float64{a0, a1, a2, a3, u[4]}
	if !allFinite(out[:]) {
		return [5]float64{}, fmt.Errorf("poly: degree-4 adaptation overflowed: %v", out)
	}
	return out, nil
}

// Adapt5 computes Knuth's adapted coefficients for a degree-5 polynomial
// (Section 3.2, equations 5-7). Requires the real root of a cubic, solved in
// double precision. The adapted form evaluates with 4 multiplications and 5
// additions:
//
//	y = (x + a0)^2
//	u(x) = (((y + a1)*y + a2)*(x + a3) + a4) * a5
func Adapt5(u [6]float64) ([6]float64, error) {
	if u[5] == 0 || !allFinite(u[:]) {
		return [6]float64{}, ErrNotAdaptable
	}
	p := u[3] / u[5]
	q := u[4] / u[5]
	// Equation 6: p*q - 2(p+2q^2)*a0 + 24q*a0^2 - 40*a0^3 = u2/u5,
	// i.e. -40*a0^3 + 24q*a0^2 - 2(p+2q^2)*a0 + (p*q - u2/u5) = 0.
	a0, err := cubic.OneRealRoot(-40, 24*q, -2*(p+2*q*q), p*q-u[2]/u[5])
	if err != nil {
		return [6]float64{}, err
	}
	a1 := p - 4*q*a0 + 10*a0*a0
	a3 := q - 4*a0
	a2 := u[1]/u[5] - a0*a0*(a1+a0*a0) - 2*a0*a3*(a1+2*a0*a0)
	a4 := u[0]/u[5] - a2*a3 - a0*a0*a3*(a1+a0*a0)
	out := [6]float64{a0, a1, a2, a3, a4, u[5]}
	if !allFinite(out[:]) {
		return [6]float64{}, fmt.Errorf("poly: degree-5 adaptation overflowed: %v", out)
	}
	return out, nil
}

// Adapt6 computes Knuth's adapted coefficients for a degree-6 polynomial
// (Section 3.3, equations 8-12). The adapted form evaluates with 4
// multiplications and 7 additions, saving two of Horner's 6 multiplications:
//
//	z = (x + a0)*x + a1
//	w = (x + a2)*z + a3
//	u(x) = ((w + z + a4)*w + a5) * a6
func Adapt6(u [7]float64) ([7]float64, error) {
	if u[6] == 0 || !allFinite(u[:]) {
		return [7]float64{}, ErrNotAdaptable
	}
	// Normalize to a monic polynomial (alpha6 = u6 restores the scale).
	var m [6]float64
	for i := 0; i < 6; i++ {
		m[i] = u[i] / u[6]
	}
	b1 := (m[5] - 1) / 2
	b2 := m[4] - b1*(b1+1)
	b3 := m[3] - b1*b2
	b4 := b1 - b2
	b5 := m[2] - b1*b3
	// Equation 10: 2y^3 + (2b4 - b2 + 1)y^2 + (2b5 - b2*b4 - b3)y + (u1 - b2*b5) = 0.
	b6, err := cubic.OneRealRoot(2, 2*b4-b2+1, 2*b5-b2*b4-b3, m[1]-b2*b5)
	if err != nil {
		return [7]float64{}, err
	}
	b7 := b6*b6 + b4*b6 + b5
	b8 := b3 - b6 - b7
	a0 := b2 - 2*b6
	a2 := b1 - a0
	a1 := b6 - a0*a2
	a3 := b7 - a1*a2
	a4 := b8 - b7 - a1
	a5 := m[0] - b7*b8
	out := [7]float64{a0, a1, a2, a3, a4, a5, u[6]}
	if !allFinite(out[:]) {
		return [7]float64{}, fmt.Errorf("poly: degree-6 adaptation overflowed: %v", out)
	}
	return out, nil
}

func allFinite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// EvalAdapted4 evaluates the degree-4 adapted form in float64.
func EvalAdapted4(a *[5]float64, x float64) float64 {
	y := (x+a[0])*x + a[1]
	return ((y+x+a[2])*y + a[3]) * a[4]
}

// EvalAdapted5 evaluates the degree-5 adapted form in float64.
func EvalAdapted5(a *[6]float64, x float64) float64 {
	s := x + a[0]
	y := s * s
	return (((y+a[1])*y+a[2])*(x+a[3]) + a[4]) * a[5]
}

// EvalAdapted6 evaluates the degree-6 adapted form in float64.
func EvalAdapted6(a *[7]float64, x float64) float64 {
	z := (x+a[0])*x + a[1]
	w := (x+a[2])*z + a[3]
	return ((w+z+a[4])*w + a[5]) * a[6]
}

package poly

import (
	"fmt"
	"math/big"
)

// Scheme identifies a polynomial evaluation strategy. The four schemes the
// paper evaluates are Horner (RLibm's default), Knuth (coefficient
// adaptation), Estrin, and EstrinFMA; HornerFMA is included as an ablation.
type Scheme uint8

const (
	// Horner is the serial multiply-then-add chain (RLibm's default).
	Horner Scheme = iota
	// Knuth uses Knuth's adapted coefficients for degrees 4-6 and falls
	// back to Horner below degree 4 (adaptation does not apply there).
	Knuth
	// Estrin pairs subterms for instruction-level parallelism, without
	// fused operations.
	Estrin
	// EstrinFMA pairs subterms with fused multiply-adds.
	EstrinFMA
	// HornerFMA is Horner's recurrence with fused multiply-adds.
	HornerFMA
)

// Schemes lists every scheme in display order.
var Schemes = []Scheme{Horner, Knuth, Estrin, EstrinFMA, HornerFMA}

// PaperSchemes lists the four configurations evaluated by the paper.
var PaperSchemes = []Scheme{Horner, Knuth, Estrin, EstrinFMA}

func (s Scheme) String() string {
	switch s {
	case Horner:
		return "horner"
	case Knuth:
		return "knuth"
	case Estrin:
		return "estrin"
	case EstrinFMA:
		return "estrin-fma"
	case HornerFMA:
		return "horner-fma"
	default:
		return fmt.Sprintf("Scheme(%d)", uint8(s))
	}
}

// ParseScheme converts a string (as used by CLI flags) to a Scheme.
func ParseScheme(s string) (Scheme, error) {
	for _, sc := range Schemes {
		if sc.String() == s {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("poly: unknown scheme %q", s)
}

// Evaluator binds a polynomial to an evaluation scheme. For the Knuth scheme
// the adaptation is performed once at construction; Eval then runs exactly
// the instruction sequence the generated library would execute, so the
// generator's validation sees the true rounding behaviour.
type Evaluator struct {
	Scheme Scheme
	Coeffs Poly // original coefficients, ascending

	// Adapted coefficients, populated for Scheme==Knuth with degree >= 4.
	adapted4 *[5]float64
	adapted5 *[6]float64
	adapted6 *[7]float64
}

// NewEvaluator constructs an evaluator for the polynomial under the scheme.
// It fails if Knuth adaptation is requested for an unadaptable polynomial of
// degree 4-6 (degenerate leading coefficient); degrees outside 4-6 fall back
// to Horner, mirroring the paper's prototype which adapts only what RLibm
// generates (degree <= 6) and leaves low degrees alone.
func NewEvaluator(s Scheme, coeffs Poly) (*Evaluator, error) {
	e := &Evaluator{Scheme: s, Coeffs: coeffs.Clone()}
	if s != Knuth {
		return e, nil
	}
	c := coeffs.Trim()
	switch c.Degree() {
	case 4:
		var u [5]float64
		copy(u[:], c)
		a, err := Adapt4(u)
		if err != nil {
			return nil, err
		}
		e.adapted4 = &a
	case 5:
		var u [6]float64
		copy(u[:], c)
		a, err := Adapt5(u)
		if err != nil {
			return nil, err
		}
		e.adapted5 = &a
	case 6:
		var u [7]float64
		copy(u[:], c)
		a, err := Adapt6(u)
		if err != nil {
			return nil, err
		}
		e.adapted6 = &a
	}
	return e, nil
}

// Eval evaluates the polynomial at x in float64 under the bound scheme.
func (e *Evaluator) Eval(x float64) float64 {
	switch e.Scheme {
	case Horner:
		return EvalHorner(e.Coeffs, x)
	case HornerFMA:
		return EvalHornerFMA(e.Coeffs, x)
	case Estrin:
		return EvalEstrin(e.Coeffs, x)
	case EstrinFMA:
		return EvalEstrinFMA(e.Coeffs, x)
	case Knuth:
		switch {
		case e.adapted4 != nil:
			return EvalAdapted4(e.adapted4, x)
		case e.adapted5 != nil:
			return EvalAdapted5(e.adapted5, x)
		case e.adapted6 != nil:
			return EvalAdapted6(e.adapted6, x)
		default:
			return EvalHorner(e.Coeffs, x)
		}
	default:
		panic("poly: unknown scheme")
	}
}

// EvalExact evaluates the scheme's operation DAG in exact rational
// arithmetic. For Horner/Estrin this equals the polynomial value; for Knuth
// it equals the value of the *adapted* form with its float64 alpha
// coefficients — i.e. the polynomial the implementation actually computes,
// whose deviation from the LP solution is what the generate–check–constrain
// loop must absorb.
func (e *Evaluator) EvalExact(x *big.Rat) *big.Rat {
	ops := RatOps()
	switch e.Scheme {
	case Horner, HornerFMA:
		return HornerG(ops, e.Coeffs, x, false)
	case Estrin, EstrinFMA:
		return EstrinG(ops, e.Coeffs, x, false)
	case Knuth:
		switch {
		case e.adapted4 != nil:
			return Adapted4G(ops, e.adapted4, x)
		case e.adapted5 != nil:
			return Adapted5G(ops, e.adapted5, x)
		case e.adapted6 != nil:
			return Adapted6G(ops, e.adapted6, x)
		default:
			return HornerG(ops, e.Coeffs, x, false)
		}
	default:
		panic("poly: unknown scheme")
	}
}

// AdaptedCoeffs returns the Knuth-adapted coefficients, or nil when the
// evaluator does not use adaptation.
func (e *Evaluator) AdaptedCoeffs() []float64 {
	switch {
	case e.adapted4 != nil:
		return e.adapted4[:]
	case e.adapted5 != nil:
		return e.adapted5[:]
	case e.adapted6 != nil:
		return e.adapted6[:]
	}
	return nil
}

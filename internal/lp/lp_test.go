package lp

import (
	"context"
	"math/big"
	"math/rand"
	"testing"
)

func r(a, b int64) *big.Rat { return big.NewRat(a, b) }

// solvePolyStats solves one polynomial system with a fresh Solver — the
// one-shot usage pattern the old free functions wrapped.
func solvePolyStats(cons []Constraint, degree, maxPivots int) ([]*big.Rat, Stats, error) {
	s := NewSolver(Options{Degree: degree, MaxPivots: maxPivots})
	s.AddConstraints(cons...)
	res, err := s.Resolve(context.Background())
	return res.Coeffs, res.Stats, err
}

func solvePoly(cons []Constraint, degree int) ([]*big.Rat, bool) {
	coeffs, _, err := solvePolyStats(cons, degree, 0)
	return coeffs, err == nil
}

// solveStandardStats minimizes cost·z subject to A z = b, z >= 0, directly on
// the tableau layer: the polynomial formulation never produces an unbounded
// program, so the raw standard form is the only way to reach every verdict.
func solveStandardStats(a [][]*big.Rat, b []*big.Rat, cost []*big.Rat, maxPivots int) ([]*big.Rat, Stats, error) {
	if maxPivots <= 0 {
		maxPivots = DefaultMaxPivots
	}
	m, n := len(a), len(cost)
	var st Stats
	st.Rows, st.Cols = m, n
	tb := newTableau(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			tb.rows[i][j].setRat(a[i][j])
		}
		tb.rows[i][n].setRat(b[i])
	}
	cost2 := make([]sc, n)
	for j := 0; j < n; j++ {
		cost2[j].setRat(cost[j])
	}
	if err := tb.twoPhase(nil, cost2, maxPivots, &st); err != nil {
		return nil, st, err
	}
	z := make([]*big.Rat, n)
	for j := 0; j < n; j++ {
		v := tb.solution(j)
		z[j] = v.rat()
	}
	return z, st, nil
}

func solveStandard(a [][]*big.Rat, b []*big.Rat, cost []*big.Rat) ([]*big.Rat, bool) {
	z, _, err := solveStandardStats(a, b, cost, 0)
	return z, err == nil
}

func TestSolveStandardBasic(t *testing.T) {
	// minimize x0 + x1 s.t. x0 + 2x1 = 4, x0, x1 >= 0 -> x = (0, 2), obj 2.
	a := [][]*big.Rat{{r(1, 1), r(2, 1)}}
	b := []*big.Rat{r(4, 1)}
	c := []*big.Rat{r(1, 1), r(1, 1)}
	z, ok := solveStandard(a, b, c)
	if !ok {
		t.Fatal("expected feasible")
	}
	if z[0].Sign() != 0 || z[1].Cmp(r(2, 1)) != 0 {
		t.Errorf("z = %v", z)
	}
}

func TestSolveStandardInfeasible(t *testing.T) {
	// x0 = -1 with x0 >= 0 is infeasible.
	a := [][]*big.Rat{{r(1, 1)}}
	b := []*big.Rat{r(-1, 1)}
	c := []*big.Rat{r(0, 1)}
	if _, ok := solveStandard(a, b, c); ok {
		t.Error("expected infeasible")
	}
}

func TestSolveStandardNegativeB(t *testing.T) {
	// -x0 = -3 -> x0 = 3 (row flip path).
	a := [][]*big.Rat{{r(-1, 1)}}
	b := []*big.Rat{r(-3, 1)}
	c := []*big.Rat{r(1, 1)}
	z, ok := solveStandard(a, b, c)
	if !ok || z[0].Cmp(r(3, 1)) != 0 {
		t.Errorf("z = %v, ok = %v", z, ok)
	}
}

func TestSolveStandardUnbounded(t *testing.T) {
	// minimize -x0 s.t. x0 - x1 = 0: x0 can grow without bound.
	a := [][]*big.Rat{{r(1, 1), r(-1, 1)}}
	b := []*big.Rat{r(0, 1)}
	c := []*big.Rat{r(-1, 1), r(0, 1)}
	if _, ok := solveStandard(a, b, c); ok {
		t.Error("expected unbounded to report not-ok")
	}
}

func TestSolvePolyInterpolation(t *testing.T) {
	// Singleton intervals force exact interpolation: P(i) = i^2 for
	// i = 0..2 with degree 2 must recover x^2.
	var cons []Constraint
	for i := int64(0); i <= 2; i++ {
		v := r(i*i, 1)
		cons = append(cons, Constraint{X: r(i, 1), Lo: v, Hi: v})
	}
	coeffs, ok := solvePoly(cons, 2)
	if !ok {
		t.Fatal("expected feasible")
	}
	want := []*big.Rat{r(0, 1), r(0, 1), r(1, 1)}
	for j, w := range want {
		if coeffs[j].Cmp(w) != 0 {
			t.Errorf("c[%d] = %s, want %s", j, coeffs[j].RatString(), w.RatString())
		}
	}
	if !CheckPoly(coeffs, cons) {
		t.Error("CheckPoly rejects its own solution")
	}
}

func TestSolvePolyInfeasible(t *testing.T) {
	// Same point with two disjoint singleton requirements.
	cons := []Constraint{
		{X: r(1, 1), Lo: r(0, 1), Hi: r(0, 1)},
		{X: r(1, 1), Lo: r(1, 1), Hi: r(1, 1)},
	}
	if _, ok := solvePoly(cons, 3); ok {
		t.Error("expected infeasible")
	}
	// A degree-1 polynomial cannot pass through three non-collinear points.
	cons = []Constraint{
		{X: r(0, 1), Lo: r(0, 1), Hi: r(0, 1)},
		{X: r(1, 1), Lo: r(1, 1), Hi: r(1, 1)},
		{X: r(2, 1), Lo: r(4, 1), Hi: r(4, 1)},
	}
	if _, ok := solvePoly(cons, 1); ok {
		t.Error("expected infeasible for non-collinear interpolation")
	}
}

// TestSolvePolyRecoversRandomPoly: build intervals around a known
// polynomial's values; the solver must return a polynomial satisfying all
// of them (property-style randomized test).
func TestSolvePolyRecoversRandomPoly(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		deg := 1 + rng.Intn(5)
		truth := make([]*big.Rat, deg+1)
		for j := range truth {
			truth[j] = big.NewRat(int64(rng.Intn(2001)-1000), 64)
		}
		var cons []Constraint
		for i := 0; i < 8+rng.Intn(20); i++ {
			x := big.NewRat(int64(rng.Intn(513)-256), 2048)
			v := EvalRat(truth, x)
			eps := big.NewRat(1, int64(1+rng.Intn(1<<20)))
			cons = append(cons, Constraint{
				X:  x,
				Lo: new(big.Rat).Sub(v, eps),
				Hi: new(big.Rat).Add(v, eps),
			})
		}
		coeffs, ok := solvePoly(cons, deg)
		if !ok {
			t.Fatalf("trial %d: expected feasible (truth exists)", trial)
		}
		if !CheckPoly(coeffs, cons) {
			t.Fatalf("trial %d: solution violates constraints", trial)
		}
	}
}

// TestSolvePolyMarginCentering: with a fat interval, the margin objective
// pushes the polynomial to the interval center.
func TestSolvePolyMarginCentering(t *testing.T) {
	cons := []Constraint{{X: r(0, 1), Lo: r(0, 1), Hi: r(2, 1)}}
	coeffs, ok := solvePoly(cons, 0)
	if !ok {
		t.Fatal("expected feasible")
	}
	if coeffs[0].Cmp(r(1, 1)) != 0 {
		t.Errorf("margin objective should center: c0 = %s, want 1", coeffs[0].RatString())
	}
}

// TestSolvePolyMixedSingletonAndWide: singleton constraints pin the margin
// at zero yet remain solvable.
func TestSolvePolyMixedSingletonAndWide(t *testing.T) {
	cons := []Constraint{
		{X: r(0, 1), Lo: r(1, 1), Hi: r(1, 1)},   // P(0) = 1 exactly
		{X: r(1, 1), Lo: r(2, 1), Hi: r(4, 1)},   // P(1) in [2,4]
		{X: r(-1, 1), Lo: r(-1, 1), Hi: r(1, 2)}, // P(-1) in [-1,1/2]
	}
	coeffs, ok := solvePoly(cons, 2)
	if !ok {
		t.Fatal("expected feasible")
	}
	if !CheckPoly(coeffs, cons) {
		t.Error("solution violates constraints")
	}
	if coeffs[0].Cmp(r(1, 1)) != 0 {
		t.Errorf("P(0) = %s, want exactly 1", coeffs[0].RatString())
	}
}

func TestEvalRat(t *testing.T) {
	// 1 + 2x + 3x^2 at x = 1/2 -> 1 + 1 + 3/4 = 11/4.
	coeffs := []*big.Rat{r(1, 1), r(2, 1), r(3, 1)}
	got := EvalRat(coeffs, r(1, 2))
	if got.Cmp(r(11, 4)) != 0 {
		t.Errorf("EvalRat = %s, want 11/4", got.RatString())
	}
}

// TestSolvePolyDegenerate: many duplicated constraints at the same point
// create degenerate pivots; the Dantzig/Bland hybrid must still terminate.
// The Solver's per-point bound tightening collapses exact duplicates, so the
// tableau must shrink to the two distinct points.
func TestSolvePolyDegenerate(t *testing.T) {
	var cons []Constraint
	for i := 0; i < 40; i++ {
		cons = append(cons, Constraint{X: r(1, 2), Lo: r(1, 1), Hi: r(1, 1)})
		cons = append(cons, Constraint{X: r(1, 3), Lo: r(2, 1), Hi: r(2, 1)})
	}
	coeffs, st, err := solvePolyStats(cons, 3, 0)
	if err != nil {
		t.Fatalf("degenerate but feasible system reported infeasible: %v", err)
	}
	if !CheckPoly(coeffs, cons) {
		t.Fatal("solution violates constraints")
	}
	if wantRows := 2*2 + 1; st.Rows != wantRows {
		t.Errorf("duplicate constraints not collapsed: %d rows, want %d", st.Rows, wantRows)
	}
}

// TestSolvePolyHugeDynamicRange: constraints with double-subnormal-scale
// widths exercise the exact arithmetic where floating point LP would die.
func TestSolvePolyHugeDynamicRange(t *testing.T) {
	tiny := new(big.Rat).SetFrac64(1, 1)
	tiny.Mul(tiny, big.NewRat(1, 1<<62))
	tiny.Mul(tiny, big.NewRat(1, 1<<62)) // 2^-124
	lo := new(big.Rat).SetInt64(1)
	hi := new(big.Rat).Add(lo, tiny)
	cons := []Constraint{
		{X: r(0, 1), Lo: lo, Hi: hi},
		{X: r(1, 1<<20), Lo: r(1, 1), Hi: r(2, 1)},
	}
	coeffs, ok := solvePoly(cons, 2)
	if !ok {
		t.Fatal("expected feasible")
	}
	v := EvalRat(coeffs, r(0, 1))
	if v.Cmp(lo) < 0 || v.Cmp(hi) > 0 {
		t.Fatalf("P(0) = %s outside the 2^-124-wide interval", v.RatString())
	}
}

// TestSolvePolyManyConstraints: a larger sample like the generator's LP
// calls (dozens of rows) stays fast and correct.
func TestSolvePolyManyConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	truth := []*big.Rat{r(1, 1), r(693, 1000), r(240, 1000), r(55, 1000), r(9, 1000), r(1, 1000)}
	var cons []Constraint
	for i := 0; i < 60; i++ {
		x := big.NewRat(int64(rng.Intn(2049)-1024), 1<<18)
		v := EvalRat(truth, x)
		eps := big.NewRat(1, 1<<30)
		cons = append(cons, Constraint{X: x, Lo: new(big.Rat).Sub(v, eps), Hi: new(big.Rat).Add(v, eps)})
	}
	coeffs, ok := solvePoly(cons, 5)
	if !ok {
		t.Fatal("expected feasible")
	}
	if !CheckPoly(coeffs, cons) {
		t.Fatal("violations")
	}
}

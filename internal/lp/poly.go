package lp

import (
	"context"
	"math/big"
)

// Constraint bounds the polynomial output at one reduced input:
// Lo <= P(X) <= Hi.
type Constraint struct {
	X      *big.Rat
	Lo, Hi *big.Rat
}

// SolvePoly finds coefficients C_0..C_d with Lo_i <= P(X_i) <= Hi_i for all
// constraints, maximizing the uniform relative margin: P(X_i) is pushed
// toward the center of each interval (scaled by its half-width), which makes
// the subsequent rounding of the exact rational coefficients to double far
// more likely to preserve feasibility. Returns ok=false when the system is
// infeasible.
//
// Deprecated: one-shot wrapper over Solver; loop callers should hold a
// Solver to get warm-started resolves.
func SolvePoly(cons []Constraint, degree int) (coeffs []*big.Rat, ok bool) {
	coeffs, _, err := SolvePolyStats(cons, degree, DefaultMaxPivots)
	return coeffs, err == nil
}

// SolvePolyStats is SolvePoly with observability: it additionally returns
// the solve statistics (tableau dimensions, per-phase pivot counts) and a
// typed error distinguishing infeasibility from unboundedness from the
// pivot-limit backstop. maxPivots <= 0 selects DefaultMaxPivots. The LP
// formulation (variables c_j = p_j - q_j split into nonnegative pairs, a
// margin variable t <= 1, one slack per inequality row) now lives in
// Solver.coldResolve.
//
// Deprecated: one-shot wrapper over Solver; loop callers should hold a
// Solver to get warm-started resolves.
func SolvePolyStats(cons []Constraint, degree, maxPivots int) (coeffs []*big.Rat, st Stats, err error) {
	s := NewSolver(Options{Degree: degree, MaxPivots: maxPivots})
	s.AddConstraints(cons...)
	res, err := s.Resolve(context.Background())
	return res.Coeffs, res.Stats, err
}

// CheckPoly reports whether the exact rational polynomial satisfies every
// constraint.
func CheckPoly(coeffs []*big.Rat, cons []Constraint) bool {
	for _, c := range cons {
		v := EvalRat(coeffs, c.X)
		if v.Cmp(c.Lo) < 0 || v.Cmp(c.Hi) > 0 {
			return false
		}
	}
	return true
}

// EvalRat evaluates the rational polynomial at x (Horner, exact).
func EvalRat(coeffs []*big.Rat, x *big.Rat) *big.Rat {
	v := new(big.Rat)
	for i := len(coeffs) - 1; i >= 0; i-- {
		v.Mul(v, x)
		v.Add(v, coeffs[i])
	}
	return v
}

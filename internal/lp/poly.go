package lp

import (
	"math/big"
	"strconv"
)

// Constraint bounds the polynomial output at one reduced input:
// Lo <= P(X) <= Hi. With Prefix > 0 the bound applies to the polynomial's
// leading Prefix coefficients only — the progressive-polynomial (RLIBM-PROG)
// prefix constraint Lo <= sum_{j < Prefix} C_j X^j <= Hi. Prefix == 0 means
// the full degree. One LP can mix full and prefix constraints over the same
// coefficient vector, which is how a single solve produces a polynomial whose
// truncations serve narrower formats.
type Constraint struct {
	X      *big.Rat
	Lo, Hi *big.Rat
	Prefix int
}

// prefixCount clamps the constraint's effective coefficient count to nc.
func (c *Constraint) prefixCount(nc int) int {
	if c.Prefix > 0 && c.Prefix < nc {
		return c.Prefix
	}
	return nc
}

// key is the dominance-pruning identity: bounds for the same reduced input
// constrain different linear forms when their prefixes differ, so they are
// never comparable.
func (c *Constraint) key() string {
	if c.Prefix > 0 {
		return c.X.RatString() + "#" + strconv.Itoa(c.Prefix)
	}
	return c.X.RatString()
}

// CheckPoly reports whether the exact rational polynomial satisfies every
// constraint (prefix constraints against the truncated polynomial).
func CheckPoly(coeffs []*big.Rat, cons []Constraint) bool {
	for _, c := range cons {
		v := EvalRat(coeffs[:c.prefixCount(len(coeffs))], c.X)
		if v.Cmp(c.Lo) < 0 || v.Cmp(c.Hi) > 0 {
			return false
		}
	}
	return true
}

// EvalRat evaluates the rational polynomial at x (Horner, exact).
func EvalRat(coeffs []*big.Rat, x *big.Rat) *big.Rat {
	v := new(big.Rat)
	for i := len(coeffs) - 1; i >= 0; i-- {
		v.Mul(v, x)
		v.Add(v, coeffs[i])
	}
	return v
}

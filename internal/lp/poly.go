package lp

import (
	"math/big"
)

// Constraint bounds the polynomial output at one reduced input:
// Lo <= P(X) <= Hi.
type Constraint struct {
	X      *big.Rat
	Lo, Hi *big.Rat
}

// CheckPoly reports whether the exact rational polynomial satisfies every
// constraint.
func CheckPoly(coeffs []*big.Rat, cons []Constraint) bool {
	for _, c := range cons {
		v := EvalRat(coeffs, c.X)
		if v.Cmp(c.Lo) < 0 || v.Cmp(c.Hi) > 0 {
			return false
		}
	}
	return true
}

// EvalRat evaluates the rational polynomial at x (Horner, exact).
func EvalRat(coeffs []*big.Rat, x *big.Rat) *big.Rat {
	v := new(big.Rat)
	for i := len(coeffs) - 1; i >= 0; i-- {
		v.Mul(v, x)
		v.Add(v, coeffs[i])
	}
	return v
}

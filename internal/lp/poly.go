package lp

import (
	"math/big"
)

// Constraint bounds the polynomial output at one reduced input:
// Lo <= P(X) <= Hi.
type Constraint struct {
	X      *big.Rat
	Lo, Hi *big.Rat
}

// SolvePoly finds coefficients C_0..C_d with Lo_i <= P(X_i) <= Hi_i for all
// constraints, maximizing the uniform relative margin: P(X_i) is pushed
// toward the center of each interval (scaled by its half-width), which makes
// the subsequent rounding of the exact rational coefficients to double far
// more likely to preserve feasibility. Returns ok=false when the system is
// infeasible.
func SolvePoly(cons []Constraint, degree int) (coeffs []*big.Rat, ok bool) {
	coeffs, _, err := SolvePolyStats(cons, degree, DefaultMaxPivots)
	return coeffs, err == nil
}

// SolvePolyStats is SolvePoly with observability: it additionally returns
// the solve statistics (tableau dimensions, per-phase pivot counts) and a
// typed error distinguishing infeasibility from unboundedness from the
// pivot-limit backstop (see SolveStandardStats). maxPivots <= 0 selects
// DefaultMaxPivots.
func SolvePolyStats(cons []Constraint, degree, maxPivots int) (coeffs []*big.Rat, st Stats, err error) {
	nc := degree + 1
	// Variables: c_j = p_j - q_j (p,q >= 0), margin variable t >= 0,
	// plus one slack per inequality row.
	//
	// Rows, per constraint i with half-width w_i = (Hi-Lo)/2:
	//	 P(X_i) - w_i*t - s1_i          = Lo_i      (P >= Lo + w*t)
	//	 P(X_i) + w_i*t + s2_i          = Hi_i      (P <= Hi - w*t)
	// and one row bounding the margin:
	//	 t + s3 = 1
	// Objective: maximize t (minimize -t).
	m := 2*len(cons) + 1
	n := 2*nc + 1 + m // c+/c- , t, one slack per row
	a := make([][]*big.Rat, m)
	b := make([]*big.Rat, m)
	for i := range a {
		a[i] = make([]*big.Rat, n)
		for j := range a[i] {
			a[i][j] = new(big.Rat)
		}
	}
	tVar := 2 * nc
	slack0 := 2*nc + 1

	pow := new(big.Rat)
	for i, c := range cons {
		w := new(big.Rat).Sub(c.Hi, c.Lo)
		w.Mul(w, big.NewRat(1, 2))
		lo, hi := 2*i, 2*i+1
		pow.SetInt64(1)
		for j := 0; j < nc; j++ {
			a[lo][2*j].Set(pow)
			a[lo][2*j+1].Neg(pow)
			a[hi][2*j].Set(pow)
			a[hi][2*j+1].Neg(pow)
			pow.Mul(pow, c.X)
		}
		a[lo][tVar].Neg(w)
		a[hi][tVar].Set(w)
		a[lo][slack0+lo].SetInt64(-1)
		a[hi][slack0+hi].SetInt64(1)
		b[lo] = new(big.Rat).Set(c.Lo)
		b[hi] = new(big.Rat).Set(c.Hi)
	}
	// t <= 1.
	last := m - 1
	a[last][tVar].SetInt64(1)
	a[last][slack0+last].SetInt64(1)
	b[last] = big.NewRat(1, 1)

	cost := make([]*big.Rat, n)
	for j := range cost {
		cost[j] = new(big.Rat)
	}
	cost[tVar].SetInt64(-1) // maximize t

	z, st, err := SolveStandardStats(a, b, cost, maxPivots)
	if err != nil {
		return nil, st, err
	}
	coeffs = make([]*big.Rat, nc)
	for j := 0; j < nc; j++ {
		coeffs[j] = new(big.Rat).Sub(z[2*j], z[2*j+1])
	}
	return coeffs, st, nil
}

// CheckPoly reports whether the exact rational polynomial satisfies every
// constraint.
func CheckPoly(coeffs []*big.Rat, cons []Constraint) bool {
	for _, c := range cons {
		v := EvalRat(coeffs, c.X)
		if v.Cmp(c.Lo) < 0 || v.Cmp(c.Hi) > 0 {
			return false
		}
	}
	return true
}

// EvalRat evaluates the rational polynomial at x (Horner, exact).
func EvalRat(coeffs []*big.Rat, x *big.Rat) *big.Rat {
	v := new(big.Rat)
	for i := len(coeffs) - 1; i >= 0; i-- {
		v.Mul(v, x)
		v.Add(v, coeffs[i])
	}
	return v
}

package lp

import "math/big"

// sc is the exact rational scalar of the pivot kernel. Values that fit in
// small int64 fractions stay on a fast path that does plain integer
// arithmetic and defers normalization (no GCD per operation — the fraction
// is reduced lazily, only when a result would otherwise outgrow the small
// bounds); everything else promotes to big.Rat, which normalizes eagerly as
// usual. The slack and artificial columns of the generator's tableaus are
// almost entirely 0/±1 and stay small through many pivots, which is where
// the fast path pays.
//
// Invariants: when r == nil the value is n/den() with d >= 0 and
// |n|, d <= scSmallMax (not necessarily reduced); d == 0 is read as 1, so
// the zero value sc{} is a valid 0 and tableau rows need no initialization
// pass. When r != nil the value is r (normalized, as big.Rat maintains) and
// n/d are meaningless.
//
// All comparisons are exact and representation-independent, so replacing
// *big.Rat with sc cannot change a pivot decision.
type sc struct {
	n, d int64
	r    *big.Rat
}

// scSmallMax bounds the small path so that the product of two small values'
// components fits comfortably in an int64 (2^30 * 2^30 = 2^60 < 2^63).
const scSmallMax = 1 << 30

// den returns the small-path denominator, reading the zero value's d == 0
// as 1.
func (a *sc) den() int64 {
	if a.d == 0 {
		return 1
	}
	return a.d
}

func (a *sc) setZero() { a.n, a.d, a.r = 0, 1, nil }

func (a *sc) setInt64(v int64) {
	if -scSmallMax <= v && v <= scSmallMax {
		a.n, a.d, a.r = v, 1, nil
		return
	}
	a.r = new(big.Rat).SetInt64(v)
}

// setRat copies x into a, demoting to the small path when it fits.
func (a *sc) setRat(x *big.Rat) {
	if x.Num().IsInt64() && x.Denom().IsInt64() {
		n, d := x.Num().Int64(), x.Denom().Int64()
		if -scSmallMax <= n && n <= scSmallMax && d <= scSmallMax {
			a.n, a.d, a.r = n, d, nil
			return
		}
	}
	a.r = new(big.Rat).Set(x)
}

func (a *sc) set(b *sc) {
	if b.r == nil {
		a.n, a.d, a.r = b.n, b.den(), nil
		return
	}
	if a.r == nil || a.r == b.r {
		a.r = new(big.Rat)
	}
	a.r.Set(b.r)
}

// rat returns a freshly allocated big.Rat with a's value.
func (a *sc) rat() *big.Rat {
	if a.r == nil {
		return big.NewRat(a.n, a.den())
	}
	return new(big.Rat).Set(a.r)
}

// bigVal returns a's value, using scratch when a is on the small path.
func (a *sc) bigVal(scratch *big.Rat) *big.Rat {
	if a.r != nil {
		return a.r
	}
	return scratch.SetFrac64(a.n, a.den())
}

func (a *sc) sign() int {
	if a.r != nil {
		return a.r.Sign()
	}
	switch {
	case a.n > 0:
		return 1
	case a.n < 0:
		return -1
	}
	return 0
}

func (a *sc) isZero() bool { return a.sign() == 0 }

// cmp compares a and b exactly.
func (a *sc) cmp(b *sc) int {
	if a.r == nil && b.r == nil {
		// a.n/a.d vs b.n/b.d with positive denominators: cross-multiply.
		// Products are bounded by 2^60, no overflow possible.
		l, r := a.n*b.den(), b.n*a.den()
		switch {
		case l < r:
			return -1
		case l > r:
			return 1
		}
		return 0
	}
	var s1, s2 big.Rat
	return a.bigVal(&s1).Cmp(b.bigVal(&s2))
}

func (a *sc) neg() {
	if a.r == nil {
		a.n = -a.n
		return
	}
	a.r.Neg(a.r)
}

// smallReduce tries to bring n/d back under the small bounds by dividing out
// the GCD (the lazy normalization step). Reports whether it succeeded.
func smallReduce(n, d int64) (int64, int64, bool) {
	if n == 0 {
		return 0, 1, true
	}
	a, b := n, d
	if a < 0 {
		a = -a
	}
	for b != 0 {
		a, b = b, a%b
	}
	n, d = n/a, d/a
	ok := -scSmallMax <= n && n <= scSmallMax && d <= scSmallMax
	return n, d, ok
}

// setSmall stores n/d (d > 0), reducing lazily and promoting to big only
// when the reduced fraction still exceeds the small bounds.
func (a *sc) setSmall(n, d int64) {
	if -scSmallMax <= n && n <= scSmallMax && d <= scSmallMax {
		a.n, a.d, a.r = n, d, nil
		return
	}
	if rn, rd, ok := smallReduce(n, d); ok {
		a.n, a.d, a.r = rn, rd, nil
		return
	}
	if a.r == nil {
		a.r = new(big.Rat)
	}
	a.r.SetFrac64(n, d)
}

// mulOK multiplies two int64s, reporting overflow.
func mulOK(x, y int64) (int64, bool) {
	if x == 0 || y == 0 {
		return 0, true
	}
	z := x * y
	if z/y != x {
		return 0, false
	}
	return z, true
}

// subMul computes a -= f*y.
func (a *sc) subMul(f, y *sc) {
	fs, ys := f.sign(), y.sign()
	if fs == 0 || ys == 0 {
		return
	}
	if a.r == nil && f.r == nil && y.r == nil {
		// a.n/a.d - (f.n*y.n)/(f.d*y.d)
		// = (a.n*f.d*y.d - f.n*y.n*a.d) / (a.d*f.d*y.d).
		// Each pairwise product of small components is < 2^60; the triple
		// products need an overflow check.
		ad := a.den()
		fy := f.den() * y.den() // < 2^60
		if num1, ok := mulOK(a.n, fy); ok {
			fn := f.n * y.n // < 2^60
			if num2, ok := mulOK(fn, ad); ok {
				if num, ok := sub64OK(num1, num2); ok {
					if den, ok := mulOK(ad, fy); ok {
						a.setSmall(num, den)
						return
					}
				}
			}
		}
	}
	var s1, s2, s3 big.Rat
	av := a.bigVal(&s1)
	prod := s2.Mul(f.bigVal(&s3), y.bigVal(new(big.Rat)))
	if a.r == nil {
		a.r = new(big.Rat)
	}
	a.r.Sub(av, prod)
	a.demote()
}

// sub64OK subtracts with overflow detection.
func sub64OK(x, y int64) (int64, bool) {
	z := x - y
	if (y > 0 && z > x) || (y < 0 && z < x) {
		return 0, false
	}
	return z, true
}

// mul computes a *= b.
func (a *sc) mul(b *sc) {
	if a.r == nil && b.r == nil {
		a.setSmall(a.n*b.n, a.den()*b.den()) // products < 2^60, safe
		return
	}
	var s1, s2 big.Rat
	av, bv := a.bigVal(&s1), b.bigVal(&s2)
	if a.r == nil {
		a.r = new(big.Rat)
	}
	a.r.Mul(av, bv)
	a.demote()
}

// div computes a /= b (b must be nonzero).
func (a *sc) div(b *sc) {
	if a.r == nil && b.r == nil {
		n, d := a.n*b.den(), a.den()*b.n // products < 2^60
		if d < 0 {
			n, d = -n, -d
		}
		a.setSmall(n, d)
		return
	}
	var s1, s2 big.Rat
	av, bv := a.bigVal(&s1), b.bigVal(&s2)
	if a.r == nil {
		a.r = new(big.Rat)
	}
	a.r.Quo(av, bv)
	a.demote()
}

// demote moves a big value that shrank back onto the small path, so a burst
// of large intermediate values does not pin an entry on the slow path
// forever.
func (a *sc) demote() {
	if a.r == nil {
		return
	}
	if a.r.Num().IsInt64() && a.r.Denom().IsInt64() {
		n, d := a.r.Num().Int64(), a.r.Denom().Int64()
		if -scSmallMax <= n && n <= scSmallMax && d <= scSmallMax {
			a.n, a.d, a.r = n, d, nil
		}
	}
}

// cmpProd compares a1*b1 with a2*b2 exactly — the cross-multiplied ratio
// test, which avoids materializing quotients.
func cmpProd(a1, b1, a2, b2 *sc) int {
	var l, r sc
	l.set(a1)
	l.mul(b1)
	r.set(a2)
	r.mul(b2)
	return l.cmp(&r)
}

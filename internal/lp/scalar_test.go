package lp

import (
	"math/big"
	"math/rand"
	"testing"
)

// randomSc returns an sc and its reference value, spanning the small path,
// values near the promotion boundary, and genuinely big rationals.
func randomSc(rng *rand.Rand) (*sc, *big.Rat) {
	var v sc
	switch rng.Intn(3) {
	case 0: // comfortably small
		n, d := rng.Int63n(2000)-1000, rng.Int63n(999)+1
		v.setSmall(n, d)
	case 1: // near the small bound
		n := scSmallMax - rng.Int63n(3)
		if rng.Intn(2) == 0 {
			n = -n
		}
		d := scSmallMax - rng.Int63n(3)
		v.setSmall(n, d)
	default: // big
		num := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 80))
		den := new(big.Int).Add(new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 80)), big.NewInt(1))
		r := new(big.Rat).SetFrac(num, den)
		if rng.Intn(2) == 0 {
			r.Neg(r)
		}
		v.setRat(r)
	}
	return &v, v.rat()
}

// TestScalarOpsMatchBigRat cross-checks every sc operation against plain
// big.Rat arithmetic over randomized operands from all representation
// regimes (small, boundary, big).
func TestScalarOpsMatchBigRat(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		a, ra := randomSc(rng)
		b, rb := randomSc(rng)
		f, rf := randomSc(rng)

		if got, want := a.cmp(b), ra.Cmp(rb); got != want {
			t.Fatalf("cmp(%v, %v) = %d, want %d", ra, rb, got, want)
		}
		if got, want := a.sign(), ra.Sign(); got != want {
			t.Fatalf("sign(%v) = %d, want %d", ra, got, want)
		}

		var x sc
		x.set(a)
		x.subMul(f, b) // x = a - f*b
		want := new(big.Rat).Sub(ra, new(big.Rat).Mul(rf, rb))
		if x.rat().Cmp(want) != 0 {
			t.Fatalf("subMul: %v - %v*%v = %v, want %v", ra, rf, rb, x.rat(), want)
		}

		x.set(a)
		x.mul(b)
		want = new(big.Rat).Mul(ra, rb)
		if x.rat().Cmp(want) != 0 {
			t.Fatalf("mul: %v * %v = %v, want %v", ra, rb, x.rat(), want)
		}

		if rb.Sign() != 0 {
			x.set(a)
			x.div(b)
			want = new(big.Rat).Quo(ra, rb)
			if x.rat().Cmp(want) != 0 {
				t.Fatalf("div: %v / %v = %v, want %v", ra, rb, x.rat(), want)
			}
		}

		x.set(a)
		x.neg()
		want = new(big.Rat).Neg(ra)
		if x.rat().Cmp(want) != 0 {
			t.Fatalf("neg(%v) = %v", ra, x.rat())
		}

		if got, want := cmpProd(a, b, f, a), new(big.Rat).Mul(ra, rb).Cmp(new(big.Rat).Mul(rf, ra)); got != want {
			t.Fatalf("cmpProd(%v*%v, %v*%v) = %d, want %d", ra, rb, rf, ra, got, want)
		}
	}
}

// TestScalarZeroValue: the zero value sc{} must behave as an exact 0 in
// every operation — tableau rows are allocated with make and never
// initialized.
func TestScalarZeroValue(t *testing.T) {
	var z sc
	if !z.isZero() || z.sign() != 0 {
		t.Fatal("zero value is not zero")
	}
	if z.rat().Sign() != 0 {
		t.Fatalf("zero value rat = %v", z.rat())
	}
	var one sc
	one.setInt64(1)
	if z.cmp(&one) != -1 || one.cmp(&z) != 1 {
		t.Fatal("zero value compares wrong against 1")
	}
	var x sc
	x.set(&z)
	x.subMul(&one, &one) // 0 - 1*1 = -1
	if x.rat().Cmp(big.NewRat(-1, 1)) != 0 {
		t.Fatalf("0 - 1*1 = %v", x.rat())
	}
	var y sc
	y.set(&one)
	y.div(&one)
	y.mul(&z)
	if !y.isZero() {
		t.Fatalf("1*0 = %v", y.rat())
	}
}

// TestScalarPromotionDemotion: results that outgrow the small bounds
// promote to big.Rat and shrink back down when the value allows.
func TestScalarPromotionDemotion(t *testing.T) {
	var a, b sc
	a.setSmall(scSmallMax-1, 1)
	b.setSmall(scSmallMax-1, 1)
	a.mul(&b) // (2^30-1)^2 does not fit the small path
	if a.r == nil {
		t.Fatal("overflowing product stayed on the small path")
	}
	want := new(big.Rat).SetInt64(scSmallMax - 1)
	want.Mul(want, want)
	if a.rat().Cmp(want) != 0 {
		t.Fatalf("promoted product = %v, want %v", a.rat(), want)
	}
	// Dividing back down demotes.
	a.div(&b)
	if a.r != nil {
		t.Fatalf("value %v did not demote to the small path", a.rat())
	}
	if a.rat().Cmp(big.NewRat(scSmallMax-1, 1)) != 0 {
		t.Fatalf("demoted value = %v", a.rat())
	}
	// Lazy reduction: an unreduced fraction over the bound reduces instead
	// of promoting when the GCD allows.
	var c sc
	c.setSmall(6*(scSmallMax/2), 4*(scSmallMax/2))
	if c.r != nil {
		t.Fatalf("reducible fraction promoted: %v", c.rat())
	}
	if c.rat().Cmp(big.NewRat(3, 2)) != 0 {
		t.Fatalf("reduced value = %v, want 3/2", c.rat())
	}
}

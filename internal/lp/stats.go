package lp

import (
	"errors"
	"fmt"
)

// Stats describes one solve attempt for the observability layer: the
// tableau dimensions and the per-phase pivot counts. It is returned even on
// failure, so infeasibility diagnostics carry the work done before the
// verdict.
type Stats struct {
	// Rows and Cols are the standard-form tableau dimensions: constraint
	// rows and structural (non-artificial) columns.
	Rows, Cols int
	// Phase1Pivots counts the feasibility-phase pivots (including the
	// artificial-variable drive-out); Phase2Pivots counts the optimization
	// phase. Both are zero on a warm-started resolve, which skips the
	// two-phase method entirely.
	Phase1Pivots, Phase2Pivots int
	// DualPivots counts the dual-simplex pivots of a warm-started resolve
	// (reoptimization from the previous optimal basis).
	DualPivots int
	// CanonPivots counts the lexicographic-canonicalization pivots that pin
	// the solution to the unique lex-min optimum (run under its own budget,
	// not charged against MaxPivots).
	CanonPivots int
	// Warm reports that this solve reused the previous optimal basis.
	Warm bool
	// Canonical reports that the canonicalization pass completed, making
	// the returned coefficients independent of the pivot path taken.
	Canonical bool
}

// Pivots returns the total pivot count across all phases, including
// warm-start reoptimization and canonicalization.
func (s Stats) Pivots() int {
	return s.Phase1Pivots + s.Phase2Pivots + s.DualPivots + s.CanonPivots
}

// DefaultMaxPivots bounds the simplex pivots per solve. The generator's
// systems pivot tens to hundreds of times; a run beyond this bound means
// degenerate cycling or a pathological instance, and an exact-rational
// pivot chain that long would effectively hang the pipeline anyway.
const DefaultMaxPivots = 100000

// ErrInfeasible reports that phase 1 terminated with a positive optimum:
// no point satisfies all constraints.
var ErrInfeasible = errors.New("lp: infeasible (phase-1 optimum is positive)")

// ErrUnbounded reports that the objective can decrease without bound.
var ErrUnbounded = errors.New("lp: unbounded objective")

// PivotLimitError reports that a solve exceeded its pivot budget — the
// guard against degenerate cycling under the Dantzig/Bland hybrid rule.
type PivotLimitError struct {
	// Phase is the simplex phase (1 or 2) that hit the limit.
	Phase int
	// Limit is the budget that was exhausted.
	Limit int
}

func (e *PivotLimitError) Error() string {
	return fmt.Sprintf("lp: phase-%d simplex exceeded the %d-pivot limit (degenerate cycling guard)",
		e.Phase, e.Limit)
}

// CanceledError reports that a solve was interrupted by its
// context.Context before reaching a verdict. It wraps the context error, so
// errors.Is(err, context.Canceled) and context.DeadlineExceeded work.
type CanceledError struct {
	// Phase names the stage that observed the cancellation: "phase1",
	// "phase2", "dual", or "canonicalize".
	Phase string
	// Err is the context's error.
	Err error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("lp: solve canceled during %s: %v", e.Phase, e.Err)
}

func (e *CanceledError) Unwrap() error { return e.Err }

// InfeasibilityCause classifies err for metrics labels: "infeasible",
// "unbounded", "pivot-limit", "canceled", or "" for nil/unrecognized
// errors.
func InfeasibilityCause(err error) string {
	var pl *PivotLimitError
	var ce *CanceledError
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrInfeasible):
		return "infeasible"
	case errors.Is(err, ErrUnbounded):
		return "unbounded"
	case errors.As(err, &pl):
		return "pivot-limit"
	case errors.As(err, &ce):
		return "canceled"
	}
	return ""
}

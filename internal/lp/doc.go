// Package lp implements an exact rational linear-programming solver — the
// role SoPlex plays in the paper's prototype. The RLibm formulation is a
// feasibility system: find polynomial coefficients C such that
//
//	l_i  <=  C_0 + C_1*x_i + ... + C_d*x_i^d  <=  h_i
//
// for every (reduced input, reduced interval) constraint. All arithmetic is
// exact rational, so feasibility answers are exact; floating point enters
// the pipeline only when the generator rounds the solution's coefficients
// to double — the non-linear step the generate–check–constrain loop
// absorbs.
//
// The package's entry point is the incremental Solver, which keeps the
// optimal tableau alive across the loop's repeated solves and reoptimizes
// with the dual simplex (see solver.go). One-shot callers construct a
// Solver, add their constraints and Resolve once.
package lp

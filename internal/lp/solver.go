package lp

import (
	"context"
	"math/big"
)

// Options configures a Solver.
type Options struct {
	// Degree is the polynomial degree: the solver owns Degree+1 coefficient
	// variables. SetDegree changes it later (resetting all state).
	Degree int
	// MaxPivots bounds the simplex pivots per Resolve; <= 0 selects
	// DefaultMaxPivots. The canonicalization pass runs under its own
	// DefaultMaxPivots budget so that a tight MaxPivots limits work without
	// changing which solutions are reachable.
	MaxPivots int
	// WarmStart keeps the optimal tableau alive between Resolve calls and
	// reoptimizes with the dual simplex instead of solving from scratch.
	// The returned coefficients are bit-identical either way (see
	// canonicalize); warm starts only change how much work a resolve costs.
	WarmStart bool
}

// Result is the outcome of a Resolve.
type Result struct {
	// Coeffs are the exact rational polynomial coefficients C_0..C_d
	// (nil on error).
	Coeffs []*big.Rat
	// Stats describes the work done, including on failure.
	Stats Stats
	// Basis is the optimal basis (basic variable per tableau row), the
	// state a warm restart resumes from. Diagnostic only.
	Basis []int
}

// bounds tracks the componentwise-tightest interval accepted for one
// reduced input, the key to dominance pruning.
type bounds struct{ lo, hi *big.Rat }

// Solver is the incremental LP engine behind the generator's
// generate–check–constrain loop. It accumulates interval constraints with
// AddConstraints (pruning dominated ones) and solves the margin-maximizing
// polynomial LP with Resolve. With WarmStart enabled the optimal tableau
// survives between calls: newly added or tightened constraints enter as
// appended rows and a dual-simplex pass reoptimizes from the previous
// basis, which is typically far cheaper than the cold two-phase solve.
//
// A Solver is not safe for concurrent use.
type Solver struct {
	opts Options
	nc   int // coefficient count = Degree+1

	accepted []Constraint       // constraints admitted to the LP, in order
	tight    map[string]*bounds // tightest accepted bounds per X (RatString key)
	stale    int                // accepted row-pairs superseded by a tighter one

	tab    *tableau // live optimal tableau (nil until first solve)
	inTab  int      // accepted[:inTab] have rows in tab
	warmOK bool     // tab is optimal+canonical and safe to warm-start from
}

// NewSolver returns a Solver for polynomials of opts.Degree.
func NewSolver(opts Options) *Solver {
	if opts.Degree < 0 {
		opts.Degree = 0
	}
	return &Solver{opts: opts, nc: opts.Degree + 1, tight: make(map[string]*bounds)}
}

// SetDegree changes the polynomial degree. Any accumulated constraints and
// warm-start state are discarded (the variable space changes shape).
func (s *Solver) SetDegree(d int) {
	if d < 0 {
		d = 0
	}
	if d+1 == s.nc {
		return
	}
	s.opts.Degree = d
	s.nc = d + 1
	s.Reset()
}

// Reset discards all accumulated constraints and warm-start state.
func (s *Solver) Reset() {
	s.accepted = nil
	s.tight = make(map[string]*bounds)
	s.stale = 0
	s.tab = nil
	s.inTab = 0
	s.warmOK = false
}

func (s *Solver) maxPivots() int {
	if s.opts.MaxPivots <= 0 {
		return DefaultMaxPivots
	}
	return s.opts.MaxPivots
}

// AddConstraints admits constraints to the LP, pruning any that are
// dominated by bounds already accepted for the same reduced input (they
// would add a redundant row pair to the tableau). Constraints are deep-
// copied; callers may reuse their rationals. Returns how many were
// accepted.
func (s *Solver) AddConstraints(cons ...Constraint) int {
	if s.tight == nil {
		s.tight = make(map[string]*bounds)
	}
	n := 0
	for i := range cons {
		c := &cons[i]
		key := c.key()
		b := s.tight[key]
		if b != nil && c.Lo.Cmp(b.lo) <= 0 && c.Hi.Cmp(b.hi) >= 0 {
			continue // dominated: no new information
		}
		s.accepted = append(s.accepted, Constraint{
			X:      new(big.Rat).Set(c.X),
			Lo:     new(big.Rat).Set(c.Lo),
			Hi:     new(big.Rat).Set(c.Hi),
			Prefix: c.Prefix,
		})
		n++
		if b == nil {
			s.tight[key] = &bounds{lo: new(big.Rat).Set(c.Lo), hi: new(big.Rat).Set(c.Hi)}
			continue
		}
		// Tightens (or crosses) the previous bounds: the earlier rows for
		// this input are now partly redundant. They stay in the tableau —
		// the tighter interval implies them at t=0, so they can only lower
		// the optimal margin, never flip feasibility — until the stale
		// count triggers a cold rebuild (see Solve).
		if c.Lo.Cmp(b.lo) > 0 {
			b.lo.Set(c.Lo)
		}
		if c.Hi.Cmp(b.hi) < 0 {
			b.hi.Set(c.Hi)
		}
		s.stale++
	}
	return n
}

// Solve reconciles the solver's state with cons — the caller's complete
// current constraint set — and resolves. Constraints that only restate or
// tighten accepted bounds ride the warm path; a constraint set that DROPS
// a previously seen input (the generator demoting it to a special case) or
// loosens its bounds invalidates the accumulated rows, so the solver
// resets and solves cold. A cold rebuild is also forced when stale
// superseded rows outnumber the live inputs, which bounds tableau growth
// across many tighten iterations.
func (s *Solver) Solve(ctx context.Context, cons []Constraint) (Result, error) {
	if len(s.accepted) > 0 {
		reset := s.stale > len(s.tight)
		if !reset {
			seen := make(map[string]bool, len(cons))
			for i := range cons {
				key := cons[i].key()
				seen[key] = true
				if b, ok := s.tight[key]; ok {
					if cons[i].Lo.Cmp(b.lo) < 0 || cons[i].Hi.Cmp(b.hi) > 0 {
						reset = true // loosened: accumulated rows over-constrain
						break
					}
				}
			}
			if !reset {
				for key := range s.tight {
					if !seen[key] {
						reset = true // input removed (demoted)
						break
					}
				}
			}
		}
		if reset {
			s.Reset()
		}
	}
	s.AddConstraints(cons...)
	return s.Resolve(ctx)
}

// Resolve solves the LP over the accepted constraints: maximize the
// uniform relative margin t (capped at 1) by which P(X_i) clears each
// interval's edges, then canonicalize to the lex-min optimal coefficients.
// Reuses the previous basis when possible; any warm-path trouble short of
// an exact verdict falls back to a cold solve, so the coefficients are
// identical either way.
func (s *Solver) Resolve(ctx context.Context) (Result, error) {
	if s.opts.WarmStart && s.warmOK && s.tab != nil {
		res, err, handled := s.warmResolve(ctx)
		if handled {
			return res, err
		}
	}
	return s.coldResolve(ctx)
}

// polyRow writes the lo/hi constraint rows for c into loRow/hiRow (each of
// length width+1, rhs at width; both rows must arrive zeroed). Orientation
// is chosen by negLo: the cold build uses the surplus form P - w*t - s = Lo;
// warm appends need the slack's +1 coefficient, so the row is negated:
// -P + w*t + s = -Lo. A prefix constraint leaves the columns of its excluded
// trailing coefficients at zero, so they do not participate in the bound.
func (s *Solver) polyRow(c *Constraint, loRow, hiRow []sc, width int, negLo bool) {
	nc := s.nc
	tVar := 2 * nc
	w := new(big.Rat).Sub(c.Hi, c.Lo)
	w.Mul(w, big.NewRat(1, 2))
	pow := new(big.Rat).SetInt64(1)
	var v sc
	for j := 0; j < c.prefixCount(nc); j++ {
		v.setRat(pow)
		hiRow[2*j].set(&v)
		if negLo {
			loRow[2*j+1].set(&v)
		} else {
			loRow[2*j].set(&v)
		}
		v.neg()
		hiRow[2*j+1].set(&v)
		if negLo {
			loRow[2*j].set(&v)
		} else {
			loRow[2*j+1].set(&v)
		}
		pow.Mul(pow, c.X)
	}
	v.setRat(w)
	hiRow[tVar].set(&v)
	if negLo {
		loRow[tVar].set(&v)
	} else {
		v.neg()
		loRow[tVar].set(&v)
	}
	v.setRat(c.Hi)
	hiRow[width].set(&v)
	v.setRat(c.Lo)
	if negLo {
		v.neg()
	}
	loRow[width].set(&v)
}

// coldResolve builds the tableau from scratch and runs the two-phase
// method, then canonicalizes. Layout: columns [c+_0 c-_0 .. c+_d c-_d][t]
// [one slack per row]; rows [t <= 1][lo,hi pair per accepted constraint].
func (s *Solver) coldResolve(ctx context.Context) (Result, error) {
	nc := s.nc
	m := 2*len(s.accepted) + 1
	n := 2*nc + 1 + m
	tVar := 2 * nc
	slack0 := 2*nc + 1
	tb := newTableau(m, n)
	// Margin cap: t + s = 1.
	tb.rows[0][tVar].setInt64(1)
	tb.rows[0][slack0].setInt64(1)
	tb.rows[0][n].setInt64(1)
	for k := range s.accepted {
		lo, hi := 1+2*k, 2+2*k
		s.polyRow(&s.accepted[k], tb.rows[lo], tb.rows[hi], n, false)
		tb.rows[lo][slack0+lo].setInt64(-1)
		tb.rows[hi][slack0+hi].setInt64(1)
	}
	cost := make([]sc, n)
	cost[tVar].setInt64(-1) // maximize t
	var st Stats
	st.Rows, st.Cols = m, n
	s.tab, s.warmOK = nil, false
	if err := tb.twoPhase(ctx, cost, s.maxPivots(), &st); err != nil {
		return Result{Stats: st}, err
	}
	tb.compactArtificials(n)
	canonLim := iterLimits{pivots: &st.CanonPivots, limit: DefaultMaxPivots, ctx: ctx}
	switch tb.canonicalize(nc, &canonLim) {
	case iterCanceled:
		return Result{Stats: st}, &CanceledError{Phase: "canonicalize", Err: canonLim.err}
	case iterOptimal:
		st.Canonical = true
	default:
		// A canonicalization stage was unbounded (an under-determined
		// system leaves a coefficient free on the optimal face) or hit its
		// budget. The phase-2 optimum is still returned — deterministic for
		// a given constraint sequence — but the basis is path-dependent, so
		// warm restarts from it are not attempted.
	}
	s.inTab = len(s.accepted)
	s.tab = tb
	s.warmOK = st.Canonical
	return s.extract(st), nil
}

// warmResolve appends rows for the constraints accepted since the last
// solve and reoptimizes from the previous basis with the dual simplex.
// handled=false means the caller should fall back to a cold solve (pivot
// budget or canonicalization trouble — never an exact verdict, so the
// fallback preserves bit-identical results).
func (s *Solver) warmResolve(ctx context.Context) (res Result, err error, handled bool) {
	tb := s.tab
	fresh := s.accepted[s.inTab:]
	var st Stats
	st.Warm = true
	if len(fresh) > 0 {
		base := tb.n
		tb.addColumns(2 * len(fresh))
		for k := range fresh {
			loSlack, hiSlack := base+2*k, base+2*k+1
			loRow := make([]sc, tb.n+1)
			hiRow := make([]sc, tb.n+1)
			s.polyRow(&fresh[k], loRow, hiRow, tb.n, true)
			loRow[loSlack].setInt64(1)
			hiRow[hiSlack].setInt64(1)
			// Bring the new rows into canonical form: their rhs becomes the
			// (possibly negative) value of their slack at the current basis.
			tb.eliminateBasics(loRow, -1)
			tb.addRow(loRow, loSlack)
			tb.eliminateBasics(hiRow, tb.m-1)
			tb.addRow(hiRow, hiSlack)
		}
	}
	s.inTab = len(s.accepted)
	st.Rows, st.Cols = tb.m, tb.n
	lim := iterLimits{pivots: &st.DualPivots, limit: s.maxPivots(), ctx: ctx}
	switch tb.dual(&lim) {
	case iterPivotLimit:
		s.tab, s.warmOK = nil, false
		return Result{}, nil, false
	case iterCanceled:
		s.tab, s.warmOK = nil, false
		return Result{Stats: st}, &CanceledError{Phase: "dual", Err: lim.err}, true
	case iterInfeasible:
		// Exact verdict: a negative row with no negative entry certifies
		// the system infeasible, same as a positive phase-1 optimum.
		s.tab, s.warmOK = nil, false
		return Result{Stats: st}, ErrInfeasible, true
	}
	canonLim := iterLimits{pivots: &st.CanonPivots, limit: DefaultMaxPivots, ctx: ctx}
	switch tb.canonicalize(s.nc, &canonLim) {
	case iterCanceled:
		s.tab, s.warmOK = nil, false
		return Result{Stats: st}, &CanceledError{Phase: "canonicalize", Err: canonLim.err}, true
	case iterOptimal:
		st.Canonical = true
	default:
		s.tab, s.warmOK = nil, false
		return Result{}, nil, false
	}
	return s.extract(st), nil, true
}

// extract reads the coefficients and basis off the optimal tableau.
func (s *Solver) extract(st Stats) Result {
	tb := s.tab
	res := Result{Stats: st, Basis: append([]int(nil), tb.basis...)}
	res.Coeffs = make([]*big.Rat, s.nc)
	for j := 0; j < s.nc; j++ {
		zp := tb.solution(2 * j)
		zm := tb.solution(2*j + 1)
		res.Coeffs[j] = new(big.Rat).Sub(zp.rat(), zm.rat())
	}
	return res
}

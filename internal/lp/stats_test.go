package lp

import (
	"errors"
	"math/big"
	"strings"
	"testing"
)

// TestSolvePolyStatsFeasible: a solvable system reports its tableau
// dimensions and a nonzero pivot count.
func TestSolvePolyStatsFeasible(t *testing.T) {
	var cons []Constraint
	for i := int64(0); i <= 2; i++ {
		v := r(i*i, 1)
		cons = append(cons, Constraint{X: r(i, 1), Lo: v, Hi: v})
	}
	coeffs, st, err := solvePolyStats(cons, 2, 0)
	if err != nil {
		t.Fatalf("expected feasible, got %v", err)
	}
	if !CheckPoly(coeffs, cons) {
		t.Error("solution violates constraints")
	}
	// 2 rows per constraint + 1 margin row; columns: 2 per coefficient sign
	// pair + t + one slack per row.
	wantRows := 2*len(cons) + 1
	wantCols := 2*3 + 1 + wantRows
	if st.Rows != wantRows || st.Cols != wantCols {
		t.Errorf("dims = %dx%d, want %dx%d", st.Rows, st.Cols, wantRows, wantCols)
	}
	if st.Pivots() == 0 || st.Phase1Pivots == 0 {
		t.Errorf("pivot counts not recorded: %+v", st)
	}
}

// TestSolvePolyStatsInfeasible: disjoint singleton requirements at the same
// point produce ErrInfeasible with a populated cause label.
func TestSolvePolyStatsInfeasible(t *testing.T) {
	cons := []Constraint{
		{X: r(1, 1), Lo: r(0, 1), Hi: r(0, 1)},
		{X: r(1, 1), Lo: r(1, 1), Hi: r(1, 1)},
	}
	_, st, err := solvePolyStats(cons, 3, 0)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if InfeasibilityCause(err) != "infeasible" {
		t.Errorf("cause = %q", InfeasibilityCause(err))
	}
	if st.Phase1Pivots == 0 {
		t.Error("infeasible verdict must still report phase-1 work")
	}
}

// TestPivotLimit: a budget far below the system's needs stops the solve
// with a descriptive *PivotLimitError instead of pivoting on.
func TestPivotLimit(t *testing.T) {
	var cons []Constraint
	for i := int64(0); i <= 5; i++ {
		v := r(i*i*i, 1)
		cons = append(cons, Constraint{X: r(i, 1), Lo: v, Hi: v})
	}
	_, st, err := solvePolyStats(cons, 5, 2)
	var pl *PivotLimitError
	if !errors.As(err, &pl) {
		t.Fatalf("err = %v, want *PivotLimitError", err)
	}
	if pl.Limit != 2 || pl.Phase != 1 {
		t.Errorf("limit error = %+v, want phase 1 limit 2", pl)
	}
	if !strings.Contains(err.Error(), "2-pivot limit") || !strings.Contains(err.Error(), "cycling") {
		t.Errorf("error not descriptive: %q", err.Error())
	}
	if InfeasibilityCause(err) != "pivot-limit" {
		t.Errorf("cause = %q", InfeasibilityCause(err))
	}
	if st.Phase1Pivots != 2 {
		t.Errorf("stats report %d phase-1 pivots under a budget of 2", st.Phase1Pivots)
	}
	// A generous budget solves the same system.
	if _, _, err := solvePolyStats(cons, 5, 0); err != nil {
		t.Fatalf("default budget: %v", err)
	}
}

// TestPivotLimitPhase2: a budget that survives phase 1 but not phase 2
// reports the phase it died in.
func TestPivotLimitPhase2(t *testing.T) {
	// Find the phase-1 pivot count of a feasible system, then grant exactly
	// one more pivot than phase 1 needs so the limit fires in phase 2 (the
	// margin-maximization phase always pivots at least once here: t = 0 is
	// feasible but not optimal for these wide intervals).
	var cons []Constraint
	for i := int64(0); i <= 4; i++ {
		cons = append(cons, Constraint{X: r(i, 1), Lo: r(i-1, 1), Hi: r(i+1, 1)})
	}
	_, full, err := solvePolyStats(cons, 2, 0)
	if err != nil {
		t.Fatalf("reference solve: %v", err)
	}
	if full.Phase2Pivots == 0 {
		t.Skip("system optimized without phase-2 pivots; limit cannot fire there")
	}
	_, _, err = solvePolyStats(cons, 2, full.Phase1Pivots+full.Phase2Pivots-1)
	var pl *PivotLimitError
	if !errors.As(err, &pl) {
		t.Fatalf("err = %v, want *PivotLimitError", err)
	}
	if pl.Phase != 2 {
		t.Errorf("limit fired in phase %d, want 2", pl.Phase)
	}
}

// TestSolveStandardStatsUnbounded: the typed error distinguishes
// unboundedness.
func TestSolveStandardStatsUnbounded(t *testing.T) {
	a := [][]*big.Rat{{r(1, 1), r(-1, 1)}}
	b := []*big.Rat{r(0, 1)}
	c := []*big.Rat{r(-1, 1), r(0, 1)}
	_, _, err := solveStandardStats(a, b, c, 0)
	if !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
	if InfeasibilityCause(err) != "unbounded" {
		t.Errorf("cause = %q", InfeasibilityCause(err))
	}
}

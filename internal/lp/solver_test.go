package lp

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"testing"
)

// randomSystem builds a feasible constraint set: intervals of random widths
// centered on a ground-truth polynomial, at random rational points.
type randomSystem struct {
	rng    *rand.Rand
	truth  []*big.Rat
	points []*big.Rat
	lo, hi []*big.Rat
}

func newRandomSystem(seed int64, degree int) *randomSystem {
	s := &randomSystem{rng: rand.New(rand.NewSource(seed))}
	for j := 0; j <= degree; j++ {
		s.truth = append(s.truth, big.NewRat(s.rng.Int63n(2000)-1000, 64))
	}
	return s
}

// addPoint appends a fresh constraint at a new random point.
func (s *randomSystem) addPoint() {
	x := big.NewRat(s.rng.Int63n(4096)-2048, 1024)
	v := EvalRat(s.truth, x)
	w := big.NewRat(s.rng.Int63n(1000)+1, 256)
	s.points = append(s.points, x)
	s.lo = append(s.lo, new(big.Rat).Sub(v, w))
	s.hi = append(s.hi, new(big.Rat).Add(v, w))
}

// tighten shrinks one interval toward the truth value (staying feasible).
func (s *randomSystem) tighten(i int) {
	v := EvalRat(s.truth, s.points[i])
	half := big.NewRat(1, 2)
	nl := new(big.Rat).Sub(v, s.lo[i])
	nl.Mul(nl, half)
	s.lo[i].Sub(v, nl)
	nh := new(big.Rat).Sub(s.hi[i], v)
	nh.Mul(nh, half)
	s.hi[i].Add(v, nh)
}

func (s *randomSystem) cons() []Constraint {
	out := make([]Constraint, len(s.points))
	for i := range s.points {
		out[i] = Constraint{X: s.points[i], Lo: s.lo[i], Hi: s.hi[i]}
	}
	return out
}

// sameCoeffs compares two coefficient vectors exactly and after rounding to
// float64 — the representation the generator ships.
func sameCoeffs(t *testing.T, warm, cold []*big.Rat) {
	t.Helper()
	if len(warm) != len(cold) {
		t.Fatalf("coefficient counts differ: %d vs %d", len(warm), len(cold))
	}
	for j := range warm {
		if warm[j].Cmp(cold[j]) != 0 {
			t.Fatalf("coefficient %d differs: warm %s vs cold %s", j, warm[j].RatString(), cold[j].RatString())
		}
		wf, _ := warm[j].Float64()
		cf, _ := cold[j].Float64()
		if wf != cf {
			t.Fatalf("coefficient %d rounds differently: %v vs %v", j, wf, cf)
		}
	}
}

// TestWarmMatchesColdRandom is the golden property of the incremental
// engine: over randomized sequences of constraint additions and interval
// tightenings, a warm-started Resolve returns bit-identical coefficients
// to a cold solve of the same accumulated system.
func TestWarmMatchesColdRandom(t *testing.T) {
	ctx := context.Background()
	for seed := int64(1); seed <= 8; seed++ {
		sys := newRandomSystem(seed, 3)
		warm := NewSolver(Options{Degree: 3, WarmStart: true})
		warmUsed := 0
		for i := 0; i < 6; i++ {
			sys.addPoint()
		}
		for step := 0; step < 12; step++ {
			switch {
			case step == 0:
			case sys.rng.Intn(2) == 0:
				sys.addPoint()
			default:
				sys.tighten(sys.rng.Intn(len(sys.points)))
			}
			cons := sys.cons()
			wres, werr := warm.Solve(ctx, cons)
			cold := NewSolver(Options{Degree: 3})
			cold.AddConstraints(cons...)
			cres, cerr := cold.Resolve(ctx)
			if (werr == nil) != (cerr == nil) {
				t.Fatalf("seed %d step %d: warm err %v vs cold err %v", seed, step, werr, cerr)
			}
			if werr != nil {
				continue
			}
			sameCoeffs(t, wres.Coeffs, cres.Coeffs)
			if wres.Stats.Warm {
				warmUsed++
			}
		}
		if warmUsed == 0 {
			t.Errorf("seed %d: warm path never taken — the property was tested vacuously", seed)
		}
	}
}

// TestWarmMatchesColdAccumulated drives one warm solver through a long
// add-then-tighten sequence against a fresh cold solver at every step,
// which shares none of the warm machinery.
func TestWarmMatchesColdAccumulated(t *testing.T) {
	ctx := context.Background()
	sys := newRandomSystem(99, 2)
	warm := NewSolver(Options{Degree: 2, WarmStart: true})
	for i := 0; i < 5; i++ {
		sys.addPoint()
	}
	for step := 0; step < 8; step++ {
		if step > 0 {
			sys.tighten(step % len(sys.points))
		}
		wres, err := warm.Solve(ctx, sys.cons())
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		// The wrapper must see the same accumulated constraint history the
		// warm solver solved (stale superseded rows included), so feed it
		// the solver's accepted list via a fresh cold solver.
		cold := NewSolver(Options{Degree: 2})
		cold.AddConstraints(warm.accepted...)
		cres, err := cold.Resolve(ctx)
		if err != nil {
			t.Fatalf("step %d cold: %v", step, err)
		}
		sameCoeffs(t, wres.Coeffs, cres.Coeffs)
	}
}

// TestSolverRemovalResets: dropping a previously seen input (the generator
// demoting it to a special case) must reset the accumulated state, not
// leave its rows silently constraining the solution.
func TestSolverRemovalResets(t *testing.T) {
	ctx := context.Background()
	s := NewSolver(Options{Degree: 1, WarmStart: true})
	cons := []Constraint{
		{X: r(0, 1), Lo: r(0, 1), Hi: r(1, 1)},
		{X: r(1, 1), Lo: r(4, 1), Hi: r(5, 1)},
		{X: r(2, 1), Lo: r(17, 2), Hi: r(9, 1)}, // pins the slope tightly
	}
	if _, err := s.Solve(ctx, cons); err != nil {
		t.Fatalf("initial solve: %v", err)
	}
	// Without the third constraint the solution must be free to relax; a
	// fresh solver defines the expected answer.
	res, err := s.Solve(ctx, cons[:2])
	if err != nil {
		t.Fatalf("after removal: %v", err)
	}
	fresh := NewSolver(Options{Degree: 1})
	fresh.AddConstraints(cons[:2]...)
	want, err := fresh.Resolve(ctx)
	if err != nil {
		t.Fatalf("fresh solve: %v", err)
	}
	sameCoeffs(t, res.Coeffs, want.Coeffs)
	if res.Stats.Warm {
		t.Error("solve after removal claimed the warm path")
	}
}

// TestSolverDominancePruning: restating known-or-looser bounds adds no
// tableau rows.
func TestSolverDominancePruning(t *testing.T) {
	s := NewSolver(Options{Degree: 1})
	c := Constraint{X: r(1, 2), Lo: r(1, 1), Hi: r(2, 1)}
	if got := s.AddConstraints(c, c, c); got != 1 {
		t.Fatalf("accepted %d copies of one constraint, want 1", got)
	}
	looser := Constraint{X: r(1, 2), Lo: r(0, 1), Hi: r(3, 1)}
	if got := s.AddConstraints(looser); got != 0 {
		t.Fatalf("accepted a dominated (looser) constraint")
	}
	tighter := Constraint{X: r(1, 2), Lo: r(5, 4), Hi: r(2, 1)}
	if got := s.AddConstraints(tighter); got != 1 {
		t.Fatalf("rejected a tightening constraint")
	}
	res, err := s.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// 2 accepted constraints -> 2 row pairs + the margin row.
	if res.Stats.Rows != 5 {
		t.Errorf("tableau rows = %d, want 5 (pruning failed)", res.Stats.Rows)
	}
}

// TestSolverCanceled: a canceled context surfaces as *CanceledError with
// the "canceled" cause label, wrapping context.Canceled.
func TestSolverCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var cons []Constraint
	for i := int64(0); i <= 6; i++ {
		v := r(i*i, 1)
		cons = append(cons, Constraint{X: r(i, 1), Lo: v, Hi: v})
	}
	s := NewSolver(Options{Degree: 4})
	s.AddConstraints(cons...)
	_, err := s.Resolve(ctx)
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not unwrap to context.Canceled: %v", err)
	}
	if InfeasibilityCause(err) != "canceled" {
		t.Errorf("cause = %q, want canceled", InfeasibilityCause(err))
	}
}

// TestSolverWarmInfeasible: an infeasible tightening discovered on the warm
// path reports ErrInfeasible (the dual-simplex certificate is exact).
func TestSolverWarmInfeasible(t *testing.T) {
	ctx := context.Background()
	s := NewSolver(Options{Degree: 0, WarmStart: true})
	base := []Constraint{{X: r(0, 1), Lo: r(0, 1), Hi: r(4, 1)}}
	if _, err := s.Solve(ctx, base); err != nil {
		t.Fatalf("base solve: %v", err)
	}
	// Two more constraints at new points whose intersection with the first
	// is empty for a degree-0 polynomial.
	next := []Constraint{
		base[0],
		{X: r(1, 1), Lo: r(0, 1), Hi: r(1, 1)},
		{X: r(2, 1), Lo: r(3, 1), Hi: r(4, 1)},
	}
	_, err := s.Solve(ctx, next)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	// The solver must recover: a feasible set after the verdict solves cold.
	res, err := s.Solve(ctx, base)
	if err != nil {
		t.Fatalf("recovery solve: %v", err)
	}
	if res.Stats.Warm {
		t.Error("recovery solve claimed the warm path after an infeasible verdict")
	}
}

// TestSolverSetDegree: changing the degree resets state and solves in the
// new variable space.
func TestSolverSetDegree(t *testing.T) {
	ctx := context.Background()
	s := NewSolver(Options{Degree: 1, WarmStart: true})
	cons := []Constraint{
		{X: r(0, 1), Lo: r(0, 1), Hi: r(0, 1)},
		{X: r(1, 1), Lo: r(1, 1), Hi: r(1, 1)},
		{X: r(2, 1), Lo: r(4, 1), Hi: r(4, 1)},
	}
	if _, err := s.Solve(ctx, cons[:2]); err != nil {
		t.Fatalf("degree-1 solve: %v", err)
	}
	s.SetDegree(2)
	res, err := s.Solve(ctx, cons)
	if err != nil {
		t.Fatalf("degree-2 solve: %v", err)
	}
	if len(res.Coeffs) != 3 {
		t.Fatalf("got %d coefficients, want 3", len(res.Coeffs))
	}
	if !CheckPoly(res.Coeffs, cons) {
		t.Error("degree-2 solution violates constraints")
	}
}

// benchSystem builds a generator-shaped warm-start workload: an initial
// solve followed by rounds that add points and tighten intervals.
func benchRounds(b *testing.B, warmStart bool) {
	b.Helper()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys := newRandomSystem(7, 4)
		for j := 0; j < 12; j++ {
			sys.addPoint()
		}
		s := NewSolver(Options{Degree: 4, WarmStart: warmStart})
		b.StartTimer()
		if _, err := s.Solve(ctx, sys.cons()); err != nil {
			b.Fatal(err)
		}
		for round := 0; round < 8; round++ {
			sys.addPoint()
			sys.tighten(round % 12)
			if _, err := s.Solve(ctx, sys.cons()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSolveWarmStart(b *testing.B) { benchRounds(b, true) }
func BenchmarkSolveCold(b *testing.B)      { benchRounds(b, false) }

package lp

import (
	"context"
	"math/big"
	"testing"
)

// TestPrefixConstraintPinsLeading: a fully determined mixed system — prefix
// constraints of widths 1 and 2 plus a full constraint, all at X = 1 — must
// pin each coefficient independently: C0 = 1/2, C0+C1 = 1, C0+C1+C2 = 2.
func TestPrefixConstraintPinsLeading(t *testing.T) {
	s := NewSolver(Options{Degree: 2})
	one := big.NewRat(1, 1)
	s.AddConstraints(
		Constraint{X: one, Lo: big.NewRat(1, 2), Hi: big.NewRat(1, 2), Prefix: 1},
		Constraint{X: one, Lo: big.NewRat(1, 1), Hi: big.NewRat(1, 1), Prefix: 2},
		Constraint{X: one, Lo: big.NewRat(2, 1), Hi: big.NewRat(2, 1)},
	)
	res, err := s.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := []*big.Rat{big.NewRat(1, 2), big.NewRat(1, 2), big.NewRat(1, 1)}
	for j, w := range want {
		if res.Coeffs[j].Cmp(w) != 0 {
			t.Errorf("C%d = %s, want %s", j, res.Coeffs[j].RatString(), w.RatString())
		}
	}
	if !CheckPoly(res.Coeffs, s.accepted) {
		t.Error("CheckPoly rejects the solver's own solution")
	}
}

// TestPrefixInfeasibleDetected: prefix and full constraints that cannot be
// met by one coefficient vector are reported infeasible — the failure mode
// the generator answers by demoting inputs or deepening the prefix.
func TestPrefixInfeasibleDetected(t *testing.T) {
	s := NewSolver(Options{Degree: 1})
	one := big.NewRat(1, 1)
	s.AddConstraints(
		// C0 must be 5 at the prefix, but C0 in [0, 1] at another prefix
		// constraint: no vector satisfies both.
		Constraint{X: one, Lo: big.NewRat(5, 1), Hi: big.NewRat(5, 1), Prefix: 1},
		Constraint{X: big.NewRat(2, 1), Lo: big.NewRat(0, 1), Hi: big.NewRat(1, 1), Prefix: 1},
	)
	if _, err := s.Resolve(context.Background()); err == nil {
		t.Fatal("expected infeasibility")
	}
}

// TestPrefixDominanceKeySeparates: bounds at the same reduced input but
// different prefixes constrain different linear forms, so neither may prune
// the other; identical (X, Prefix) pairs still dedupe.
func TestPrefixDominanceKeySeparates(t *testing.T) {
	s := NewSolver(Options{Degree: 2})
	one := big.NewRat(1, 1)
	lo, hi := big.NewRat(0, 1), big.NewRat(1, 1)
	if n := s.AddConstraints(
		Constraint{X: one, Lo: lo, Hi: hi},
		Constraint{X: one, Lo: lo, Hi: hi, Prefix: 1},
		Constraint{X: one, Lo: lo, Hi: hi, Prefix: 2},
	); n != 3 {
		t.Fatalf("accepted %d of 3 distinct-prefix constraints", n)
	}
	if n := s.AddConstraints(Constraint{X: one, Lo: lo, Hi: hi, Prefix: 1}); n != 0 {
		t.Errorf("dominated repeat accepted (%d)", n)
	}
	// A tighter interval for one prefix is fresh information for that prefix
	// only.
	if n := s.AddConstraints(Constraint{X: one, Lo: big.NewRat(1, 4), Hi: hi, Prefix: 1}); n != 1 {
		t.Errorf("tightened prefix constraint rejected (%d)", n)
	}
}

// TestCheckPolyPrefix: CheckPoly evaluates prefix constraints against the
// truncated polynomial, not the full one.
func TestCheckPolyPrefix(t *testing.T) {
	coeffs := []*big.Rat{big.NewRat(1, 1), big.NewRat(1, 1), big.NewRat(100, 1)}
	x := big.NewRat(1, 1)
	// Full value at 1 is 102; the 2-coefficient prefix is 2.
	okPrefix := []Constraint{{X: x, Lo: big.NewRat(2, 1), Hi: big.NewRat(2, 1), Prefix: 2}}
	if !CheckPoly(coeffs, okPrefix) {
		t.Error("prefix constraint evaluated against the full polynomial")
	}
	badFull := []Constraint{{X: x, Lo: big.NewRat(2, 1), Hi: big.NewRat(2, 1)}}
	if CheckPoly(coeffs, badFull) {
		t.Error("full constraint evaluated against a truncation")
	}
	// Prefix wider than the vector clamps to the full polynomial.
	wide := []Constraint{{X: x, Lo: big.NewRat(102, 1), Hi: big.NewRat(102, 1), Prefix: 9}}
	if !CheckPoly(coeffs, wide) {
		t.Error("over-wide prefix not clamped to the coefficient count")
	}
}

// TestPrefixWarmMatchesCold: the incremental engine's golden property holds
// for mixed full/prefix systems — warm resolves after appending prefix
// constraints return bit-identical coefficients to a cold solve of the same
// accumulated system.
func TestPrefixWarmMatchesCold(t *testing.T) {
	ctx := context.Background()
	for seed := int64(1); seed <= 6; seed++ {
		sys := newRandomSystem(seed, 3)
		for i := 0; i < 8; i++ {
			sys.addPoint()
		}
		warm := NewSolver(Options{Degree: 3, WarmStart: true})
		warmUsed := 0
		var cons []Constraint
		for step := 0; step < 8; step++ {
			cons = sys.cons()
			// Layer prefix constraints over a growing set of points: each is
			// a loose fixed-width interval around the truth polynomial's own
			// prefix (feasible, and purely additive so the warm path stays
			// eligible).
			for i := 0; i <= step && i < len(sys.points); i++ {
				v := EvalRat(sys.truth[:2], sys.points[i])
				w := big.NewRat(400, 16)
				cons = append(cons, Constraint{
					X:      sys.points[i],
					Lo:     new(big.Rat).Sub(v, w),
					Hi:     new(big.Rat).Add(v, w),
					Prefix: 2,
				})
			}
			wres, werr := warm.Solve(ctx, cons)
			cold := NewSolver(Options{Degree: 3})
			cold.AddConstraints(cons...)
			cres, cerr := cold.Resolve(ctx)
			if (werr == nil) != (cerr == nil) {
				t.Fatalf("seed %d step %d: warm err %v vs cold err %v", seed, step, werr, cerr)
			}
			if werr != nil {
				continue
			}
			sameCoeffs(t, wres.Coeffs, cres.Coeffs)
			if !CheckPoly(wres.Coeffs, cons) {
				t.Fatalf("seed %d step %d: optimum violates the mixed system", seed, step)
			}
			if wres.Stats.Warm {
				warmUsed++
			}
		}
		if warmUsed == 0 {
			t.Errorf("seed %d: warm path never taken — the property was tested vacuously", seed)
		}
	}
}

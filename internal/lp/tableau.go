package lp

import (
	"context"
)

// tableau is the dense exact-rational simplex tableau shared by the cold
// two-phase solve, the warm-start dual reoptimization, and the lexicographic
// canonicalization pass. Entries are sc scalars (small-int fast path with
// big.Rat fallback); the pivot kernel walks only the nonzero columns of the
// pivot row, which is where the mostly-zero slack/artificial columns of the
// generator's systems make the classic full-tableau update wasteful.
type tableau struct {
	m, n int    // constraint rows, columns (excluding the rhs column)
	rows [][]sc // m rows, each of length n+1; index n is the rhs
	obj  []sc   // active objective row, length n+1 (rhs = negated objective)
	// lex holds earlier objective rows kept in sync through pivots during
	// canonicalization: an entering column must price to zero in every one
	// of them, which confines later stages to the optimal face of all
	// earlier objectives.
	lex       [][]sc
	basis     []int  // basic variable per row
	forbidden []bool // columns barred from entering (artificials in phase 2)

	nzbuf []int // scratch: nonzero column indices of the pivot row
}

func newTableau(m, n int) *tableau {
	t := &tableau{m: m, n: n, basis: make([]int, m), forbidden: make([]bool, n)}
	t.rows = make([][]sc, m)
	for i := range t.rows {
		t.rows[i] = make([]sc, n+1)
	}
	t.obj = make([]sc, n+1)
	return t
}

// addColumns appends k zero columns just before the rhs.
func (t *tableau) addColumns(k int) {
	shift := func(row []sc) []sc {
		row = append(row, make([]sc, k)...)
		row[t.n+k] = row[t.n]
		for j := t.n; j < t.n+k; j++ {
			row[j] = sc{}
		}
		return row
	}
	for i := range t.rows {
		t.rows[i] = shift(t.rows[i])
	}
	t.obj = shift(t.obj)
	for i := range t.lex {
		t.lex[i] = shift(t.lex[i])
	}
	t.forbidden = append(t.forbidden, make([]bool, k)...)
	t.n += k
}

// addRow appends a constraint row (length n+1, rhs at index n) whose basic
// variable is basic.
func (t *tableau) addRow(row []sc, basic int) {
	t.rows = append(t.rows, row)
	t.basis = append(t.basis, basic)
	t.m++
}

// eliminateBasics subtracts multiples of the existing rows from row so that
// every current basic variable prices to zero in it — the canonical-form
// repair for a freshly appended row or objective.
func (t *tableau) eliminateBasics(row []sc, skip int) {
	var f sc
	for i := 0; i < t.m; i++ {
		if i == skip {
			continue
		}
		b := t.basis[i]
		if row[b].isZero() {
			continue
		}
		f.set(&row[b])
		src := t.rows[i]
		for j := 0; j <= t.n; j++ {
			if src[j].isZero() {
				continue
			}
			row[j].subMul(&f, &src[j])
		}
	}
}

// pivot performs a tableau pivot on (r, c), updating every constraint row,
// the active objective, and the lex stack. Only the nonzero columns of the
// (scaled) pivot row are touched in the eliminations.
func (t *tableau) pivot(r, c int) {
	row := t.rows[r]
	var p sc
	p.set(&row[c])
	nz := t.nzbuf[:0]
	for j := 0; j <= t.n; j++ {
		if row[j].isZero() {
			continue
		}
		row[j].div(&p)
		nz = append(nz, j)
	}
	t.nzbuf = nz

	var f sc
	update := func(dst []sc) {
		if dst[c].isZero() {
			return
		}
		f.set(&dst[c])
		for _, j := range nz {
			dst[j].subMul(&f, &row[j])
		}
		dst[c].setZero() // exact, but avoid representing -0-style residue
	}
	for i := 0; i < t.m; i++ {
		if i != r {
			update(t.rows[i])
		}
	}
	update(t.obj)
	for i := range t.lex {
		update(t.lex[i])
	}
	t.basis[r] = c
}

// iterStatus is the outcome of a run of simplex iterations.
type iterStatus int

const (
	iterOptimal iterStatus = iota
	iterUnbounded
	iterPivotLimit
	iterInfeasible // dual simplex: a negative row with no entering column
	iterCanceled
)

// iterLimits carries the shared pivot budget and cancellation context
// through a run of iterations.
type iterLimits struct {
	pivots *int
	limit  int
	ctx    context.Context
	err    error // ctx.Err() when a run stops with iterCanceled
}

// canceled polls the context (cheaply: every few pivots the caller already
// pays a full tableau update, so a per-pivot check is noise).
func (l *iterLimits) canceled() bool {
	if l.ctx == nil {
		return false
	}
	if err := l.ctx.Err(); err != nil {
		l.err = err
		return true
	}
	return false
}

// primal runs primal simplex iterations on the active objective until
// optimality, unboundedness, cancellation, or the pivot budget runs out.
// Pricing starts with Dantzig's rule and falls back to Bland's anti-cycling
// rule after a long degenerate run, exactly as the pre-incremental solver
// did — comparisons are exact, so the pivot sequence is deterministic.
// When lexRestrict is set, only columns that price to zero in every lex-
// stack row may enter (the canonicalization stages).
func (t *tableau) primal(lim *iterLimits, lexRestrict bool) iterStatus {
	degenerate := 0
	for {
		if lim.canceled() {
			return iterCanceled
		}
		bland := degenerate > 2*(t.m+t.n)
		col := -1
		for j := 0; j < t.n; j++ {
			if t.forbidden[j] || t.obj[j].sign() >= 0 {
				continue
			}
			if lexRestrict && !t.lexZero(j) {
				continue
			}
			if col < 0 {
				col = j
				if bland {
					break
				}
				continue
			}
			if t.obj[j].cmp(&t.obj[col]) < 0 {
				col = j
			}
		}
		if col < 0 {
			return iterOptimal
		}
		// Budget check after the optimality check: a budget of exactly the
		// needed pivots succeeds instead of tripping at the boundary.
		if *lim.pivots >= lim.limit {
			return iterPivotLimit
		}
		// Ratio test: minimize rhs_i / a_ic over a_ic > 0, ties broken by
		// the lowest basic variable index (Bland). The quotients are
		// compared by cross-multiplication — no rationals materialized.
		row := -1
		for i := 0; i < t.m; i++ {
			if t.rows[i][col].sign() <= 0 {
				continue
			}
			if row < 0 {
				row = i
				continue
			}
			c := cmpProd(&t.rows[i][t.n], &t.rows[row][col], &t.rows[row][t.n], &t.rows[i][col])
			if c < 0 || (c == 0 && t.basis[i] < t.basis[row]) {
				row = i
			}
		}
		if row < 0 {
			return iterUnbounded
		}
		if t.rows[row][t.n].isZero() {
			degenerate++
		} else {
			degenerate = 0
		}
		t.pivot(row, col)
		*lim.pivots++
	}
}

// lexZero reports whether column j prices to zero in every lex-stack row.
func (t *tableau) lexZero(j int) bool {
	for i := range t.lex {
		if !t.lex[i][j].isZero() {
			return false
		}
	}
	return true
}

// dual runs dual-simplex iterations: starting from a dual-feasible basis
// (all reduced costs >= 0) whose rhs may have gone negative — the state
// after tightening bounds or appending rows to an optimal tableau — it
// restores primal feasibility, at which point the basis is optimal again.
// Returns iterInfeasible when a negative row admits no entering column:
// that row certifies the whole system infeasible (exactly, like phase 1).
func (t *tableau) dual(lim *iterLimits) iterStatus {
	for {
		if lim.canceled() {
			return iterCanceled
		}
		// Leaving row: most negative rhs, ties by the lowest row index.
		row := -1
		for i := 0; i < t.m; i++ {
			if t.rows[i][t.n].sign() >= 0 {
				continue
			}
			if row < 0 || t.rows[i][t.n].cmp(&t.rows[row][t.n]) < 0 {
				row = i
			}
		}
		if row < 0 {
			return iterOptimal
		}
		if *lim.pivots >= lim.limit {
			return iterPivotLimit
		}
		// Entering column: among a_rj < 0, minimize obj_j / (-a_rj) (the
		// dual ratio test keeps every reduced cost nonnegative); ties by
		// the lowest column index.
		col := -1
		var na, naBest sc
		for j := 0; j < t.n; j++ {
			if t.forbidden[j] || t.rows[row][j].sign() >= 0 {
				continue
			}
			if col < 0 {
				col = j
				naBest.set(&t.rows[row][j])
				naBest.neg()
				continue
			}
			na.set(&t.rows[row][j])
			na.neg()
			if cmpProd(&t.obj[j], &naBest, &t.obj[col], &na) < 0 {
				col = j
				naBest.set(&na)
			}
		}
		if col < 0 {
			return iterInfeasible
		}
		t.pivot(row, col)
		*lim.pivots++
	}
}

// solution returns the value of variable j at the current basis.
func (t *tableau) solution(j int) sc {
	for i := 0; i < t.m; i++ {
		if t.basis[i] == j {
			var v sc
			v.set(&t.rows[i][t.n])
			return v
		}
	}
	return sc{}
}

// objectiveNonzero reports whether the active objective value is nonzero
// (the tableau keeps its negation in the rhs of the objective row).
func (t *tableau) objectiveNonzero() bool { return !t.obj[t.n].isZero() }

// setObjective installs cost (length n, padded with zeros) as the active
// objective and eliminates the basic variables so reduced costs are valid.
func (t *tableau) setObjective(cost []sc) {
	for j := 0; j <= t.n; j++ {
		t.obj[j].setZero()
	}
	for j := 0; j < len(cost) && j < t.n; j++ {
		t.obj[j].set(&cost[j])
	}
	t.eliminateObjective()
}

// eliminateObjective zeroes the basic variables' reduced costs in the
// active objective row.
func (t *tableau) eliminateObjective() {
	var f sc
	for i := 0; i < t.m; i++ {
		b := t.basis[i]
		if t.obj[b].isZero() {
			continue
		}
		f.set(&t.obj[b])
		src := t.rows[i]
		for j := 0; j <= t.n; j++ {
			if src[j].isZero() {
				continue
			}
			t.obj[j].subMul(&f, &src[j])
		}
	}
}

// twoPhase runs the two-phase primal simplex on a tableau holding m
// structural rows (rhs of any sign, basis unset): phase 1 appends one
// artificial per row and minimizes their sum; on feasibility the basic
// artificials are driven out (charged to phase 1, as before the redesign),
// the artificial columns are forbidden, and phase 2 minimizes cost. On
// success the caller typically compacts the artificial columns away with
// compactArtificials. ctx may be nil.
func (t *tableau) twoPhase(ctx context.Context, cost []sc, maxPivots int, st *Stats) error {
	structN := t.n
	m := t.m
	for i := 0; i < m; i++ {
		if t.rows[i][t.n].sign() < 0 {
			for j := 0; j <= t.n; j++ {
				t.rows[i][j].neg()
			}
		}
	}
	t.addColumns(m)
	for i := 0; i < m; i++ {
		t.rows[i][structN+i].setInt64(1)
		t.basis[i] = structN + i
	}
	// Phase-1 objective: minimize the sum of artificials.
	for j := 0; j <= t.n; j++ {
		t.obj[j].setZero()
	}
	for i := 0; i < m; i++ {
		t.obj[structN+i].setInt64(1)
	}
	t.eliminateObjective()
	lim := iterLimits{pivots: &st.Phase1Pivots, limit: maxPivots, ctx: ctx}
	switch t.primal(&lim, false) {
	case iterPivotLimit:
		return &PivotLimitError{Phase: 1, Limit: maxPivots}
	case iterUnbounded:
		return ErrUnbounded // cannot happen (phase 1 is bounded) but be safe
	case iterCanceled:
		return &CanceledError{Phase: "phase1", Err: lim.err}
	}
	if t.objectiveNonzero() {
		return ErrInfeasible
	}
	// Drive basic artificials out where possible; leftover degenerate rows
	// are harmless once artificial columns are forbidden. These pivots are
	// bounded by m and charged to phase 1.
	for i := 0; i < m; i++ {
		if t.basis[i] < structN {
			continue
		}
		for j := 0; j < structN; j++ {
			if !t.rows[i][j].isZero() {
				t.pivot(i, j)
				st.Phase1Pivots++
				break
			}
		}
	}
	// Phase 2: swap in the real objective and forbid artificials.
	for j := structN; j < t.n; j++ {
		t.forbidden[j] = true
	}
	t.setObjective(cost)
	lim = iterLimits{pivots: &st.Phase2Pivots, limit: maxPivots - st.Phase1Pivots, ctx: ctx}
	switch t.primal(&lim, false) {
	case iterPivotLimit:
		return &PivotLimitError{Phase: 2, Limit: maxPivots}
	case iterUnbounded:
		return ErrUnbounded
	case iterCanceled:
		return &CanceledError{Phase: "phase2", Err: lim.err}
	}
	return nil
}

// compactArtificials truncates the tableau back to its structN structural
// columns after a successful two-phase solve, dropping redundant rows whose
// basic variable is still an artificial (such rows are all-zero over the
// structural columns with zero rhs — the drive-out loop could not find a
// pivot). The result is a clean optimal tableau that warm restarts can
// append to.
func (t *tableau) compactArtificials(structN int) {
	rows := t.rows[:0]
	basis := t.basis[:0]
	for i := 0; i < t.m; i++ {
		if t.basis[i] >= structN {
			continue
		}
		row := t.rows[i]
		row[structN].set(&row[t.n])
		rows = append(rows, row[:structN+1])
		basis = append(basis, t.basis[i])
	}
	t.rows = rows
	t.basis = basis
	t.m = len(rows)
	t.obj[structN].set(&t.obj[t.n])
	t.obj = t.obj[:structN+1]
	t.forbidden = t.forbidden[:structN]
	t.n = structN
}

// canonicalize pins the coefficient variables to the lexicographically
// minimal point of the optimal face: holding every earlier objective at its
// optimum (the lex stack), it minimizes c_j = z_{2j} - z_{2j+1} for
// j = 0..nc-1 in order. Because each stage's optimum is a property of the
// feasible set alone, the final coefficient values are independent of which
// optimal basis the solve arrived at — this is what makes a warm-started
// resolve bit-identical to a cold solve. The active objective must be
// optimal on entry; on a complete pass the primary objective row is
// restored as active. Returns the terminating status (iterOptimal when the
// pass completed).
func (t *tableau) canonicalize(nc int, lim *iterLimits) iterStatus {
	// Push the primary objective: later stages must not leave its optimum.
	primary := make([]sc, t.n+1)
	for j := range primary {
		primary[j].set(&t.obj[j])
	}
	t.lex = append(t.lex, primary)
	status := iterOptimal
	for j := 0; j < nc; j++ {
		stage := make([]sc, 2)
		stage[0].setInt64(1)
		stage[1].setInt64(-1)
		// Install minimize z_{2j} - z_{2j+1} as the active objective.
		for k := 0; k <= t.n; k++ {
			t.obj[k].setZero()
		}
		t.obj[2*j].set(&stage[0])
		t.obj[2*j+1].set(&stage[1])
		t.eliminateObjective()
		status = t.primal(lim, true)
		if status != iterOptimal {
			break
		}
		done := make([]sc, t.n+1)
		for k := range done {
			done[k].set(&t.obj[k])
		}
		t.lex = append(t.lex, done)
	}
	// Restore the primary objective (kept exactly in sync through every
	// stage pivot) and drop the stack.
	copy(t.obj, t.lex[0])
	t.lex = nil
	return status
}

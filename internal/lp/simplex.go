// Package lp implements an exact rational linear-programming solver — the
// role SoPlex plays in the paper's prototype. The RLibm formulation is a
// feasibility system: find polynomial coefficients C such that
//
//	l_i  <=  C_0 + C_1*x_i + ... + C_d*x_i^d  <=  h_i
//
// for every (reduced input, reduced interval) constraint. All arithmetic is
// exact rational, so feasibility answers are exact; floating point enters
// the pipeline only when the generator rounds the solution's coefficients
// to double — the non-linear step the generate–check–constrain loop
// absorbs.
//
// The package's primary entry point is the incremental Solver, which keeps
// the optimal tableau alive across the loop's repeated solves and
// reoptimizes with the dual simplex (see solver.go). The free functions
// below predate it and remain as thin wrappers.
package lp

import (
	"math/big"
)

// SolveStandard minimizes cost·z subject to A z = b, z >= 0 (all exact
// rationals; b may have any signs). It returns the optimal z, or ok=false
// when infeasible or unbounded (or the DefaultMaxPivots backstop fires).
//
// Deprecated: one-shot entry point kept for existing callers; new code
// solving the generator's polynomial systems should use Solver.
func SolveStandard(a [][]*big.Rat, b []*big.Rat, cost []*big.Rat) (z []*big.Rat, ok bool) {
	z, _, err := SolveStandardStats(a, b, cost, DefaultMaxPivots)
	return z, err == nil
}

// SolveStandardStats is SolveStandard with observability: it additionally
// returns the tableau dimensions and per-phase pivot counts, and a typed
// error distinguishing the failure causes (ErrInfeasible, ErrUnbounded, or
// a *PivotLimitError when more than maxPivots pivots were attempted;
// maxPivots <= 0 selects DefaultMaxPivots).
//
// Deprecated: one-shot entry point kept for existing callers; new code
// solving the generator's polynomial systems should use Solver.
func SolveStandardStats(a [][]*big.Rat, b []*big.Rat, cost []*big.Rat, maxPivots int) (z []*big.Rat, st Stats, err error) {
	if maxPivots <= 0 {
		maxPivots = DefaultMaxPivots
	}
	m, n := len(a), len(cost)
	st.Rows, st.Cols = m, n
	tb := newTableau(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			tb.rows[i][j].setRat(a[i][j])
		}
		tb.rows[i][n].setRat(b[i])
	}
	cost2 := make([]sc, n)
	for j := 0; j < n; j++ {
		cost2[j].setRat(cost[j])
	}
	if err := tb.twoPhase(nil, cost2, maxPivots, &st); err != nil {
		return nil, st, err
	}
	z = make([]*big.Rat, n)
	for j := 0; j < n; j++ {
		v := tb.solution(j)
		z[j] = v.rat()
	}
	return z, st, nil
}

// Package lp implements an exact rational linear-programming solver — the
// role SoPlex plays in the paper's prototype. The RLibm formulation is a
// feasibility system: find polynomial coefficients C such that
//
//	l_i  <=  C_0 + C_1*x_i + ... + C_d*x_i^d  <=  h_i
//
// for every (reduced input, reduced interval) constraint. All arithmetic is
// over big.Rat, so feasibility answers are exact; floating point enters the
// pipeline only when the generator rounds the solution's coefficients to
// double — the non-linear step the generate–check–constrain loop absorbs.
package lp

import (
	"math/big"
)

// simplex is a dense exact-rational tableau solver: minimize c·z subject to
// A z = b, z >= 0, via the two-phase method with Bland's anti-cycling rule.
type simplex struct {
	m, n  int          // rows, columns (excluding b column / objective row)
	t     [][]*big.Rat // (m+1) x (n+1) tableau; last row objective, last col b
	basis []int        // basic variable per row
	// forbidden marks columns that may not enter the basis (phase-1
	// artificials during phase 2).
	forbidden []bool
}

func ratZero() *big.Rat   { return new(big.Rat) }
func ratOne() *big.Rat    { return new(big.Rat).SetInt64(1) }
func ratNegOne() *big.Rat { return new(big.Rat).SetInt64(-1) }

// newSimplex builds an empty tableau with m constraint rows and n variables.
func newSimplex(m, n int) *simplex {
	s := &simplex{m: m, n: n, basis: make([]int, m), forbidden: make([]bool, n)}
	s.t = make([][]*big.Rat, m+1)
	for i := range s.t {
		s.t[i] = make([]*big.Rat, n+1)
		for j := range s.t[i] {
			s.t[i][j] = ratZero()
		}
	}
	return s
}

// pivot performs a full tableau pivot on (row, col).
func (s *simplex) pivot(row, col int) {
	p := s.t[row][col]
	inv := new(big.Rat).Inv(p)
	for j := 0; j <= s.n; j++ {
		s.t[row][j].Mul(s.t[row][j], inv)
	}
	tmp := new(big.Rat)
	for i := 0; i <= s.m; i++ {
		if i == row {
			continue
		}
		f := s.t[i][col]
		if f.Sign() == 0 {
			continue
		}
		fc := new(big.Rat).Set(f)
		for j := 0; j <= s.n; j++ {
			tmp.Mul(fc, s.t[row][j])
			s.t[i][j].Sub(s.t[i][j], tmp)
		}
	}
	s.basis[row] = col
}

// iterStatus is the outcome of a run of simplex iterations.
type iterStatus int

const (
	iterOptimal iterStatus = iota
	iterUnbounded
	iterPivotLimit
)

// iterate runs simplex iterations until optimality (no negative reduced
// cost), unboundedness, or the pivot budget runs out. Each pivot increments
// *pivots; when *pivots reaches limit the iteration stops with
// iterPivotLimit — the backstop against degenerate cycling (Bland's rule
// precludes true cycles, but the Dantzig phase and pathological inputs can
// still pivot far beyond any useful bound).
//
// Pricing starts with Dantzig's rule (most negative reduced cost — far
// fewer pivots in practice) and falls back to Bland's anti-cycling rule
// after a long run of degenerate pivots.
func (s *simplex) iterate(pivots *int, limit int) iterStatus {
	degenerate := 0
	for {
		if *pivots >= limit {
			return iterPivotLimit
		}
		bland := degenerate > 2*(s.m+s.n)
		col := -1
		for j := 0; j < s.n; j++ {
			if s.forbidden[j] || s.t[s.m][j].Sign() >= 0 {
				continue
			}
			if col < 0 {
				col = j
				if bland {
					break
				}
				continue
			}
			if s.t[s.m][j].Cmp(s.t[s.m][col]) < 0 {
				col = j
			}
		}
		if col < 0 {
			return iterOptimal
		}
		// Ratio test; ties broken by the lowest basic variable index
		// (Bland).
		row := -1
		var best *big.Rat
		for i := 0; i < s.m; i++ {
			if s.t[i][col].Sign() <= 0 {
				continue
			}
			ratio := new(big.Rat).Quo(s.t[i][s.n], s.t[i][col])
			if row < 0 || ratio.Cmp(best) < 0 ||
				(ratio.Cmp(best) == 0 && s.basis[i] < s.basis[row]) {
				row, best = i, ratio
			}
		}
		if row < 0 {
			return iterUnbounded
		}
		if s.t[row][s.n].Sign() == 0 {
			degenerate++
		} else {
			degenerate = 0
		}
		s.pivot(row, col)
		*pivots++
	}
}

// objective returns the current objective value (the tableau keeps its
// negation in the corner).
func (s *simplex) objective() *big.Rat {
	return new(big.Rat).Neg(s.t[s.m][s.n])
}

// canonicalizeObjective eliminates the basic variables from the objective
// row so reduced costs are valid for the current basis.
func (s *simplex) canonicalizeObjective() {
	tmp := new(big.Rat)
	for i := 0; i < s.m; i++ {
		f := s.t[s.m][s.basis[i]]
		if f.Sign() == 0 {
			continue
		}
		fc := new(big.Rat).Set(f)
		for j := 0; j <= s.n; j++ {
			tmp.Mul(fc, s.t[i][j])
			s.t[s.m][j].Sub(s.t[s.m][j], tmp)
		}
	}
}

// solution extracts the value of variable j.
func (s *simplex) solution(j int) *big.Rat {
	for i := 0; i < s.m; i++ {
		if s.basis[i] == j {
			return new(big.Rat).Set(s.t[i][s.n])
		}
	}
	return ratZero()
}

// SolveStandard minimizes cost·z subject to A z = b, z >= 0 (all exact
// rationals; b may have any signs). It returns the optimal z, or ok=false
// when infeasible or unbounded (or the DefaultMaxPivots backstop fires).
func SolveStandard(a [][]*big.Rat, b []*big.Rat, cost []*big.Rat) (z []*big.Rat, ok bool) {
	z, _, err := SolveStandardStats(a, b, cost, DefaultMaxPivots)
	return z, err == nil
}

// SolveStandardStats is SolveStandard with observability: it additionally
// returns the tableau dimensions and per-phase pivot counts, and a typed
// error distinguishing the failure causes (ErrInfeasible, ErrUnbounded, or
// a *PivotLimitError when more than maxPivots pivots were attempted;
// maxPivots <= 0 selects DefaultMaxPivots).
func SolveStandardStats(a [][]*big.Rat, b []*big.Rat, cost []*big.Rat, maxPivots int) (z []*big.Rat, st Stats, err error) {
	if maxPivots <= 0 {
		maxPivots = DefaultMaxPivots
	}
	m, n := len(a), len(cost)
	st.Rows, st.Cols = m, n
	// Phase 1 tableau: n real variables + m artificials.
	s := newSimplex(m, n+m)
	for i := 0; i < m; i++ {
		neg := b[i].Sign() < 0
		for j := 0; j < n; j++ {
			s.t[i][j].Set(a[i][j])
			if neg {
				s.t[i][j].Neg(s.t[i][j])
			}
		}
		s.t[i][s.n].Set(b[i])
		if neg {
			s.t[i][s.n].Neg(s.t[i][s.n])
		}
		s.t[i][n+i].SetInt64(1)
		s.basis[i] = n + i
	}
	// Phase-1 objective: minimize the sum of artificials.
	for i := 0; i < m; i++ {
		s.t[s.m][n+i].SetInt64(1)
	}
	s.canonicalizeObjective()
	switch s.iterate(&st.Phase1Pivots, maxPivots) {
	case iterPivotLimit:
		return nil, st, &PivotLimitError{Phase: 1, Limit: maxPivots}
	case iterUnbounded:
		return nil, st, ErrUnbounded // cannot happen (phase 1 is bounded) but be safe
	}
	if s.objective().Sign() != 0 {
		return nil, st, ErrInfeasible
	}
	// Drive basic artificials out where possible; leftover degenerate rows
	// are harmless once artificial columns are forbidden. These pivots are
	// bounded by m and charged to phase 1.
	for i := 0; i < m; i++ {
		if s.basis[i] < n {
			continue
		}
		for j := 0; j < n; j++ {
			if s.t[i][j].Sign() != 0 {
				s.pivot(i, j)
				st.Phase1Pivots++
				break
			}
		}
	}
	// Phase 2: swap in the real objective and forbid artificials.
	for j := 0; j <= s.n; j++ {
		s.t[s.m][j].SetInt64(0)
	}
	for j := 0; j < n; j++ {
		s.t[s.m][j].Set(cost[j])
	}
	for j := n; j < s.n; j++ {
		s.forbidden[j] = true
	}
	s.canonicalizeObjective()
	switch s.iterate(&st.Phase2Pivots, maxPivots-st.Phase1Pivots) {
	case iterPivotLimit:
		return nil, st, &PivotLimitError{Phase: 2, Limit: maxPivots}
	case iterUnbounded:
		return nil, st, ErrUnbounded
	}
	z = make([]*big.Rat, n)
	for j := 0; j < n; j++ {
		z[j] = s.solution(j)
	}
	return z, st, nil
}

package campaign

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"rlibm/internal/fp"
	"rlibm/internal/libm"
	"rlibm/internal/oracle"
)

// ctxCheckMask: workers poll ctx between inputs at this granularity — often
// enough that a cancelled campaign stops within milliseconds, rarely enough
// that the poll never shows up in a profile.
const ctxCheckMask = 0xff

// implFor resolves the double-precision implementation one float32/random
// unit verifies: the data-driven kernel by default, the straight-line
// generated backend with UseFuncs.
func (e *Engine) implFor(fn, scheme string) (func(float32) float64, error) {
	if e.implOverride != nil {
		if impl := e.implOverride(fn, scheme); impl != nil {
			return impl, nil
		}
	}
	s, err := parseScheme(scheme)
	if err != nil {
		return nil, err
	}
	if e.Plan.Cfg.UseFuncs {
		gen := libm.GeneratedFuncs[fn+"/"+scheme]
		if gen == nil {
			return nil, fmt.Errorf("campaign: no generated backend for %s/%s", fn, scheme)
		}
		return func(x float32) float64 { return gen(float64(x)) }, nil
	}
	for _, f := range libm.Funcs {
		if f.Name == fn {
			double := f.Double
			return func(x float32) float64 { return double(x, s) }, nil
		}
	}
	return nil, fmt.Errorf("campaign: unknown function %q", fn)
}

// runUnit verifies one unit. completed is false when the context was
// cancelled mid-range: the partial tally is discarded and the unit reruns
// in full on resume, which is what keeps resumed totals bit-identical.
func (e *Engine) runUnit(ctx context.Context, u *Unit, randoms []float32) (res UnitResult, completed bool) {
	res = UnitResult{ID: u.ID, FirstIdx: math.MaxUint64}
	ofn, err := oracle.ParseFunc(u.Fn)
	if err != nil {
		// Plans are validated at construction; an unknown function here is a
		// programming error, not a data condition.
		panic(err)
	}

	var verify func(idx uint64, x float64)
	switch u.Lane {
	case LaneFloat32, LaneRandom:
		impl, err := e.implFor(u.Fn, u.Scheme)
		if err != nil {
			panic(err)
		}
		verify = e.widthsVerifier(ofn, impl, &res)
	case LaneBf16:
		verify = e.bf16Verifier(u, ofn, &res)
	default:
		panic(fmt.Sprintf("campaign: unit %d has invalid lane %d", u.ID, u.Lane))
	}

	n := uint64(0)
	switch u.Lane {
	case LaneRandom:
		for i := u.Lo; i < u.Hi; i++ {
			if n&ctxCheckMask == 0 && ctx.Err() != nil {
				return res, false
			}
			n++
			verify(i-u.Lo, float64(randoms[i]))
		}
	case LaneBf16:
		for b := u.Lo; b < u.Hi; b++ {
			if n&ctxCheckMask == 0 && ctx.Err() != nil {
				return res, false
			}
			n++
			verify(b-u.Lo, fp.Bfloat16.FromBits(b))
		}
	default:
		for bits := u.Lo; bits < u.Hi; bits += u.Stride {
			if n&ctxCheckMask == 0 && ctx.Err() != nil {
				return res, false
			}
			n++
			verify((bits-u.Lo)/u.Stride, float64(math.Float32frombits(uint32(bits))))
		}
	}
	if res.Wrong == 0 {
		res.FirstIdx = 0
	}
	return res, true
}

// skippable reports inputs no lane verifies: NaN/Inf/zero propagate through
// IEEE special-case paths the battery covers elsewhere, and non-positive
// log inputs have symbolic results.
func skippable(ofn oracle.Func, fx float64) bool {
	if math.IsNaN(fx) || math.IsInf(fx, 0) || fx == 0 {
		return true
	}
	return ofn.IsLog() && fx <= 0
}

// widthsVerifier checks one double-kernel result across every configured
// output width under all five IEEE rounding modes, with at most one oracle
// evaluation per input — and none at all when the cache answers (a warm
// shard replays from disk without a single Ziv loop).
func (e *Engine) widthsVerifier(ofn oracle.Func, impl func(float32) float64, res *UnitResult) func(uint64, float64) {
	widths := e.Plan.Cfg.Widths
	cache := e.Cache
	return func(idx uint64, fx float64) {
		if skippable(ofn, fx) {
			return
		}
		d := impl(float32(fx))
		var val *oracle.Value
		wantFor := func(t fp.Format, m fp.Mode) float64 {
			if cache != nil {
				if y, ok := cache.Lookup(ofn, fx, t, m); ok {
					return y
				}
			}
			if val == nil {
				val = oracle.Compute(ofn, fx)
			}
			y := val.Round(t, m)
			if cache != nil {
				cache.Insert(ofn, fx, t, m, y)
			}
			return y
		}
		for _, wbits := range widths {
			t := fp.Format{Bits: wbits, ExpBits: 8}
			for _, m := range fp.StandardModes {
				got := t.Round(d, m)
				want := wantFor(t, m)
				res.Checked++
				if math.Float64bits(got) != math.Float64bits(want) {
					res.Wrong++
					if idx < res.FirstIdx {
						res.FirstIdx = idx
						res.First = fmt.Sprintf("%v(%g) w=%d %v: got %g want %g",
							ofn, fx, wbits, m, got, want)
					}
				}
			}
		}
	}
}

// bf16Verifier checks the progressive prefix kernel's bfloat16 result
// against the oracle's RNE rounding — the per-request narrow-precision
// serving path, proven at all 2^16 representable patterns.
func (e *Engine) bf16Verifier(u *Unit, ofn oracle.Func, res *UnitResult) func(uint64, float64) {
	key := u.Fn + "/" + u.Scheme + "/bf16"
	kern := libm.GeneratedPrefixFuncs[key]
	if kern == nil {
		panic(fmt.Sprintf("campaign: no prefix kernel %q", key))
	}
	cache := e.Cache
	return func(idx uint64, v float64) {
		if skippable(ofn, v) {
			return
		}
		got := kern(v)
		var want float64
		hit := false
		if cache != nil {
			want, hit = cache.Lookup(ofn, v, fp.Bfloat16, fp.RNE)
		}
		if !hit {
			want = oracle.Compute(ofn, v).Round(fp.Bfloat16, fp.RNE)
			if cache != nil {
				cache.Insert(ofn, v, fp.Bfloat16, fp.RNE, want)
			}
		}
		res.Checked++
		if math.Float64bits(got) != math.Float64bits(want) {
			res.Wrong++
			if idx < res.FirstIdx {
				res.FirstIdx = idx
				res.First = fmt.Sprintf("%s(%g): got %g want %g", key, v, got, want)
			}
		}
	}
}

// drawRandoms materializes the seeded random-input sequence shared by every
// combo's random lane. Deterministic in (seed, n): the plan hash covers
// both, so a resumed campaign and a reproduced failure see the same inputs.
func drawRandoms(seed int64, n int) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(rng.Uint32())
	}
	return out
}

package campaign

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"rlibm/internal/oracle"
)

// testConfig is a small deterministic campaign: two functions, two schemes,
// two widths, a 16Ki-pattern strided float32 slice plus a random lane, cut
// into many units so interrupt/resume splits have room to differ.
func testConfig() Config {
	return Config{
		Funcs:    []string{"exp2", "log2"},
		Schemes:  []string{"rlibm", "rlibm-estrin-fma"},
		Widths:   []int{10, 16},
		Lanes:    []Lane{LaneFloat32, LaneRandom},
		Stride:   64,
		Ranges:   []Range{{0x3f000000, 0x3f004000}},
		RandomN:  128,
		Seed:     42,
		UnitSize: 32,
	}
}

func TestPlanDeterministic(t *testing.T) {
	a, err := NewPlan(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != b.Hash {
		t.Fatalf("same config hashed %s vs %s", a.Hash, b.Hash)
	}
	if !reflect.DeepEqual(a.Units, b.Units) {
		t.Fatal("same config enumerated different units")
	}
	cfg := testConfig()
	cfg.Seed++
	c, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Hash == a.Hash {
		t.Fatal("different seed produced the same plan hash")
	}
	// Unit boundaries fall on stride multiples, so a split sweep visits
	// exactly the unsplit input set.
	var inputs uint64
	for _, u := range a.Units {
		if u.Lane == LaneFloat32 && (u.Lo-0x3f000000)%(64) != 0 {
			t.Fatalf("unit %d starts off-stride at %#x", u.ID, u.Lo)
		}
		inputs += u.Inputs()
	}
	perCombo := uint64(0x4000/64 + 128) // strided range + random lane
	if want := perCombo * 4; inputs != want {
		t.Fatalf("plan covers %d inputs, want %d", inputs, want)
	}
}

func TestPlanValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Funcs = nil },
		func(c *Config) { c.Funcs = []string{"sinh"} },
		func(c *Config) { c.Schemes = []string{"rlibm-magic"} },
		func(c *Config) { c.Widths = []int{9} },
		func(c *Config) { c.Widths = nil },
		func(c *Config) { c.Lanes = nil },
		func(c *Config) { c.Ranges = []Range{{8, 4}} },
		func(c *Config) { c.Ranges = []Range{{0, 1<<32 + 1}} },
	}
	for i, mutate := range bad {
		cfg := testConfig()
		mutate(&cfg)
		if _, err := NewPlan(cfg); err == nil {
			t.Errorf("mutation %d: NewPlan accepted an invalid config", i)
		}
	}
	// A bf16-only campaign needs no widths.
	cfg := testConfig()
	cfg.Lanes = []Lane{LaneBf16}
	cfg.Widths = nil
	if _, err := NewPlan(cfg); err != nil {
		t.Errorf("bf16-only plan without widths rejected: %v", err)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), CheckpointFile)
	units := map[int]UnitResult{
		0: {ID: 0, Checked: 320, Wrong: 0},
		3: {ID: 3, Checked: 320, Wrong: 2, FirstIdx: 17, First: "exp2(1.5) w=10 RNE: got 2 want 3"},
	}
	if err := SaveCheckpoint(path, "deadbeef", units); err != nil {
		t.Fatal(err)
	}
	got, hash, quarantined, err := LoadCheckpoint(path)
	if err != nil || quarantined != "" {
		t.Fatalf("load: err=%v quarantined=%q", err, quarantined)
	}
	if hash != "deadbeef" {
		t.Fatalf("plan hash %q, want deadbeef", hash)
	}
	if !reflect.DeepEqual(got, units) {
		t.Fatalf("round trip: got %+v, want %+v", got, units)
	}
	// Identical states commit byte-identically (map order must not leak).
	a, _ := os.ReadFile(path)
	if err := SaveCheckpoint(path, "deadbeef", units); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	if string(a) != string(b) {
		t.Fatal("same state serialized differently across commits")
	}
}

func TestCheckpointMissingIsFresh(t *testing.T) {
	units, hash, quarantined, err := LoadCheckpoint(filepath.Join(t.TempDir(), CheckpointFile))
	if err != nil || units != nil || hash != "" || quarantined != "" {
		t.Fatalf("missing checkpoint: %v %q %q %v", units, hash, quarantined, err)
	}
}

// TestCheckpointCorruptQuarantines: every corruption (truncation, payload
// bit flip, version skew) quarantines the file and restarts fresh instead
// of resuming from garbage.
func TestCheckpointCorruptQuarantines(t *testing.T) {
	dir := t.TempDir()
	units := map[int]UnitResult{1: {ID: 1, Checked: 10}}
	corruptions := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"payload-flip", func(b []byte) []byte { b[20] ^= 0x08; return b }},
		{"version-skew", func(b []byte) []byte { b[4] = 99; return b }},
		{"bad-magic", func(b []byte) []byte { b[0] = 'X'; return b }},
	}
	for _, c := range corruptions {
		path := filepath.Join(dir, c.name+".rlcc")
		if err := SaveCheckpoint(path, "h", units); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, c.mutate(data), 0o644); err != nil {
			t.Fatal(err)
		}
		got, hash, quarantined, err := LoadCheckpoint(path)
		if err != nil {
			t.Fatalf("%s: load errored: %v", c.name, err)
		}
		if got != nil || hash != "" || quarantined == "" {
			t.Fatalf("%s: got units=%v hash=%q quarantined=%q, want fresh+quarantined", c.name, got, hash, quarantined)
		}
		if _, err := os.Stat(path + quarantineSuffix); err != nil {
			t.Fatalf("%s: no quarantined copy: %v", c.name, err)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("%s: corrupt checkpoint still in place", c.name)
		}
	}
}

// TestEngineRejectsForeignCheckpoint: a checkpoint from a different plan
// must stop the run with an explicit error, not silently mix tallies.
func TestEngineRejectsForeignCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), CheckpointFile)
	if err := SaveCheckpoint(path, "someotherplan", map[int]UnitResult{0: {ID: 0}}); err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Plan: plan, CheckpointPath: path, Cache: oracle.NewCache(0)}
	if _, err := e.Run(context.Background()); err == nil {
		t.Fatal("engine resumed from a foreign checkpoint")
	}
}

package campaign

import (
	"encoding/json"
	"os"
	"time"

	"rlibm/internal/obs"
	"rlibm/internal/oracle"
)

// Report is the machine-readable outcome of one campaign run — what CI
// gates on (`wrong == 0`, `units_done == units_total`, `interrupted ==
// false`) and what an operator merges mentally across shards. It is written
// even for interrupted runs, so a fleet dashboard can track partial
// progress.
type Report struct {
	Tool      string `json:"tool"`
	CreatedAt string `json:"created_at"`
	Git       string `json:"git,omitempty"`
	// Mode names the preset that built the plan: smoke, full, or custom.
	Mode string `json:"mode"`
	// Seed is the random-lane seed — always recorded, so any failing
	// random-input run is reproducible from the report alone.
	Seed     int64             `json:"seed"`
	PlanHash string            `json:"plan_hash"`
	Config   map[string]string `json:"config,omitempty"`

	UnitsTotal   int  `json:"units_total"`
	UnitsDone    int  `json:"units_done"`
	UnitsResumed int  `json:"units_resumed"`
	Interrupted  bool `json:"interrupted"`

	Checked int64        `json:"checked"`
	Wrong   int64        `json:"wrong"`
	Combos  []ComboTotal `json:"combos"`

	Cache  *CacheSection `json:"cache,omitempty"`
	WallMs float64       `json:"wall_ms"`
	// Metrics merges the run's registries (campaign gauges, oracle
	// instruments) for offline analysis.
	Metrics obs.Snapshot `json:"metrics"`
}

// CacheSection summarizes the persistent oracle store the campaign streamed
// through, plus the in-memory hit rate.
type CacheSection struct {
	oracle.StoreStats
	OracleHits   int64   `json:"oracle_hits"`
	OracleMisses int64   `json:"oracle_misses"`
	HitRate      float64 `json:"hit_rate"`
}

// NewReport starts a report for the given mode and plan.
func NewReport(mode string, plan *Plan) *Report {
	return &Report{
		Tool:     "rlibm-check",
		Git:      obs.GitDescribe(),
		Mode:     mode,
		Seed:     plan.Cfg.Seed,
		PlanHash: plan.Hash,
		Config:   map[string]string{},
	}
}

// SetTotals copies a run outcome into the report.
func (r *Report) SetTotals(t *Totals, wall time.Duration) {
	r.UnitsTotal = t.UnitsTotal
	r.UnitsDone = t.UnitsDone
	r.UnitsResumed = t.UnitsResumed
	r.Interrupted = t.Interrupted
	r.Checked = t.Checked
	r.Wrong = t.Wrong
	r.Combos = t.Combos
	r.WallMs = float64(wall) / float64(time.Millisecond)
}

// AttachCache records the persistent-store outcome.
func (r *Report) AttachCache(st oracle.StoreStats, hits, misses int64) {
	cs := &CacheSection{StoreStats: st, OracleHits: hits, OracleMisses: misses}
	if hits+misses > 0 {
		cs.HitRate = float64(hits) / float64(hits+misses)
	}
	r.Cache = cs
}

// AttachMetrics merges registry snapshots into the report.
func (r *Report) AttachMetrics(regs ...*obs.Registry) {
	for _, reg := range regs {
		if reg == nil {
			continue
		}
		r.Metrics.Merge(reg.Snapshot())
	}
}

// WriteFile stamps CreatedAt and writes the indented report to path.
func (r *Report) WriteFile(path string) error {
	r.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

package campaign

import (
	"context"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"rlibm/internal/oracle"
)

// brokenImpl perturbs the kernel result for a deterministic subset of inputs
// (bits%7 == 0), so resume tests exercise nonzero Wrong tallies and
// first-failure selection, not just Checked counting.
func brokenImpl(e *Engine) {
	inner := e.implOverride
	e.implOverride = func(fn, scheme string) func(float32) float64 {
		if inner != nil {
			if impl := inner(fn, scheme); impl != nil {
				return impl
			}
		}
		base, err := (&Engine{Plan: e.Plan}).implFor(fn, scheme)
		if err != nil {
			panic(err)
		}
		return func(x float32) float64 {
			y := base(x)
			if math.Float32bits(x)%7 == 0 {
				return y * 1.25
			}
			return y
		}
	}
}

// runToCompletion runs a fresh engine over the plan and returns its totals.
func runToCompletion(t *testing.T, plan *Plan, cache *oracle.Cache, workers int, checkpoint string, breakImpl bool) *Totals {
	t.Helper()
	e := &Engine{Plan: plan, Workers: workers, CheckpointPath: checkpoint, Cache: cache}
	if breakImpl {
		brokenImpl(e)
	}
	totals, err := e.Run(context.Background())
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	if totals.Interrupted || totals.UnitsDone != totals.UnitsTotal {
		t.Fatalf("uninterrupted run incomplete: %+v", totals)
	}
	return totals
}

// TestResumeBitIdentical is the PR's core claim: cancel a campaign
// mid-range, resume it from the checkpoint, and the final (checked, wrong)
// tallies — including per-combo splits and first-failure renderings — are
// bit-identical to an uninterrupted run, for any worker count, with and
// without injected failures.
func TestResumeBitIdentical(t *testing.T) {
	plan, err := NewPlan(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// One shared in-memory cache across all runs: correctness must not
	// depend on cache temperature, and sharing makes the repeated sweeps
	// cheap.
	cache := oracle.NewCache(0)

	for _, breakImpl := range []bool{false, true} {
		name := "clean"
		if breakImpl {
			name = "injected-failures"
		}
		t.Run(name, func(t *testing.T) {
			baseline := runToCompletion(t, plan, cache, 4, "", breakImpl)
			if breakImpl && baseline.Wrong == 0 {
				t.Fatal("injected-failure baseline found nothing wrong; injection is broken")
			}
			if !breakImpl && baseline.Wrong != 0 {
				t.Fatalf("clean baseline reported %d wrong", baseline.Wrong)
			}

			for _, workers := range []int{1, 3, 8} {
				ckpt := filepath.Join(t.TempDir(), CheckpointFile)

				// Phase 1: cancel after about a third of the units commit.
				ctx, cancel := context.WithCancel(context.Background())
				e := &Engine{Plan: plan, Workers: workers, CheckpointPath: ckpt, Cache: cache}
				if breakImpl {
					brokenImpl(e)
				}
				committed := 0
				cancelAfter := len(plan.Units) / 3
				e.OnUnit = func(UnitResult) {
					committed++
					if committed == cancelAfter {
						cancel()
					}
				}
				partial, err := e.Run(ctx)
				cancel()
				if err == nil || !partial.Interrupted {
					t.Fatalf("workers=%d: cancelled run finished cleanly (err=%v, totals=%+v)", workers, err, partial)
				}
				if partial.UnitsDone >= len(plan.Units) || partial.UnitsDone < cancelAfter {
					t.Fatalf("workers=%d: cancelled run committed %d of %d units", workers, partial.UnitsDone, len(plan.Units))
				}

				// Phase 2: a fresh engine on the same checkpoint finishes the
				// campaign.
				e2 := &Engine{Plan: plan, Workers: workers, CheckpointPath: ckpt, Cache: cache}
				if breakImpl {
					brokenImpl(e2)
				}
				resumed, err := e2.Run(context.Background())
				if err != nil {
					t.Fatalf("workers=%d: resume: %v", workers, err)
				}
				if resumed.UnitsResumed != partial.UnitsDone {
					t.Fatalf("workers=%d: resumed %d units, checkpoint held %d", workers, resumed.UnitsResumed, partial.UnitsDone)
				}
				if resumed.Interrupted || resumed.UnitsDone != len(plan.Units) {
					t.Fatalf("workers=%d: resumed run incomplete: %+v", workers, resumed)
				}

				// Bit-identical to the uninterrupted baseline.
				if resumed.Checked != baseline.Checked || resumed.Wrong != baseline.Wrong {
					t.Fatalf("workers=%d: resumed (checked=%d wrong=%d) != baseline (checked=%d wrong=%d)",
						workers, resumed.Checked, resumed.Wrong, baseline.Checked, baseline.Wrong)
				}
				if !reflect.DeepEqual(resumed.Combos, baseline.Combos) {
					t.Fatalf("workers=%d: per-combo totals diverged:\nresumed:  %+v\nbaseline: %+v",
						workers, resumed.Combos, baseline.Combos)
				}
			}
		})
	}
}

// TestResumeCompletedCampaignIsNoop: rerunning a finished campaign resumes
// every unit and reports the same totals without recomputing anything.
func TestResumeCompletedCampaignIsNoop(t *testing.T) {
	plan, err := NewPlan(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cache := oracle.NewCache(0)
	ckpt := filepath.Join(t.TempDir(), CheckpointFile)
	first := runToCompletion(t, plan, cache, 4, ckpt, false)

	e := &Engine{Plan: plan, Workers: 4, CheckpointPath: ckpt, Cache: cache}
	reran := 0
	e.OnUnit = func(UnitResult) { reran++ }
	again, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if reran != 0 {
		t.Fatalf("no-op rerun recomputed %d units", reran)
	}
	if again.UnitsResumed != len(plan.Units) {
		t.Fatalf("no-op rerun resumed %d of %d units", again.UnitsResumed, len(plan.Units))
	}
	if again.Checked != first.Checked || again.Wrong != first.Wrong || !reflect.DeepEqual(again.Combos, first.Combos) {
		t.Fatalf("no-op rerun totals diverged: %+v vs %+v", again, first)
	}
}

// TestBf16LaneExhaustive sweeps every bfloat16 bit pattern through a prefix
// kernel against the oracle — the full RLIBM-PROG bf16 claim for one combo,
// small enough (2^16 patterns) to prove in CI.
func TestBf16LaneExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("bf16 exhaustive sweep skipped in -short mode")
	}
	plan, err := NewPlan(Config{
		Funcs:    []string{"exp2"},
		Schemes:  []string{"rlibm"},
		Lanes:    []Lane{LaneBf16},
		UnitSize: 16384,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Plan: plan, Workers: 4, Cache: oracle.NewCache(0)}
	totals, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if totals.Wrong != 0 {
		t.Fatalf("bf16 sweep found %d mismatches; first: %s", totals.Wrong, totals.Combos[0].First)
	}
	// 2^16 patterns minus the skipped specials: 2*128 NaN/Inf patterns
	// (exponent all-ones) and the two signed zeros.
	const want = 1<<16 - 2*128 - 2
	if totals.Checked != want {
		t.Fatalf("bf16 sweep checked %d inputs, want %d", totals.Checked, want)
	}
}

// Package campaign turns one-shot correctness sweeps into a resumable,
// shardable verification campaign at RLIBM-32 scale.
//
// The paper lineage's headline claim is correct rounding for all 2^32
// float32 inputs. A single uninterrupted process can prove that claim only
// with hours to spare; this package makes it a restartable background job
// instead. A campaign is a deterministic Plan: a work queue of float32
// bit-pattern range Units per (function, scheme, lane), where a lane is one
// way of driving the implementations against the Ziv oracle — the full
// widths-by-modes sweep of the double kernels, the bfloat16 sweep of the
// progressive prefix kernels, or a seeded random-input lane. Each completed
// unit's tally is committed to a versioned, CRC-validated checkpoint file
// (atomic-rename commits, quarantine-not-fail recovery, like the oracle
// store's segments), so a killed sweep resumes exactly where it stopped:
// per-unit results are deterministic and their reduction is order-free, so
// an interrupted-and-resumed campaign reports bit-identical final tallies
// to an uninterrupted run, for any worker count.
//
// Oracle results stream through the persistent oracle store when one is
// attached, and the store's Export/Import/Merge operations combine
// checkpointed shards computed on different machines into one warm
// fleet-wide cache.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"rlibm/internal/libm"
)

// PlanVersion is the campaign plan/checkpoint semantics version. Bump it
// whenever unit enumeration, lane semantics, or the tally definition
// changes: the version participates in the plan hash, so a stale checkpoint
// can never silently resume under different semantics.
const PlanVersion = 1

// Lane selects one verification drive of the implementations.
type Lane uint8

const (
	// LaneFloat32 sweeps float32 bit patterns through the double kernels and
	// checks every configured output width under all five IEEE rounding
	// modes against the oracle — the RLibm-ALL claim.
	LaneFloat32 Lane = iota
	// LaneBf16 sweeps bfloat16 bit patterns through the progressive prefix
	// kernels and checks the bfloat16 RNE result against the oracle — the
	// RLIBM-PROG claim at 2^16 scale.
	LaneBf16
	// LaneRandom draws seeded uniform random float32 inputs and checks them
	// like LaneFloat32. The seed is part of the plan (and its hash), so a
	// failing random input is always reproducible.
	LaneRandom
	numLanes
)

func (l Lane) String() string {
	switch l {
	case LaneFloat32:
		return "float32"
	case LaneBf16:
		return "bf16"
	case LaneRandom:
		return "random"
	}
	return fmt.Sprintf("lane(%d)", uint8(l))
}

// ParseLane resolves a lane name.
func ParseLane(s string) (Lane, error) {
	for l := LaneFloat32; l < numLanes; l++ {
		if l.String() == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("campaign: unknown lane %q (valid: float32, bf16, random)", s)
}

// Range is a half-open range [Lo, Hi) of float32 bit patterns.
type Range struct {
	Lo, Hi uint64
}

// Config describes a campaign. Everything here participates in the plan
// hash except nothing — the whole Config defines the work, so any change
// starts a new campaign (Workers is an Engine property, not a Config one:
// tallies are identical for every worker count).
type Config struct {
	// Funcs and Schemes name the implementations to verify (libm names).
	Funcs   []string
	Schemes []string
	// Widths are the output widths of the float32/random lanes (10..32,
	// 8-bit exponent), each checked under all five IEEE rounding modes.
	Widths []int
	// Lanes selects the verification drives.
	Lanes []Lane
	// Stride is the float32-lane bit-pattern step (1 = exhaustive).
	Stride uint64
	// Ranges restricts the float32 lane to these bit-pattern ranges; empty
	// means the full [0, 2^32).
	Ranges []Range
	// RandomN is the number of seeded random inputs per (func, scheme) on
	// the random lane (shared across combos, like the one-shot checker).
	RandomN int
	// Seed seeds the random lane.
	Seed int64
	// UnitSize caps the number of inputs per unit — the resume grain and
	// the checkpoint commit grain. 0 selects DefaultUnitSize.
	UnitSize uint64
	// UseFuncs verifies the straight-line generated backend instead of the
	// data-driven one (float32/random lanes only; the prefix kernels are
	// always the generated straight-line forms).
	UseFuncs bool
}

// DefaultUnitSize is the full-sweep resume grain: 2^24 inputs per unit puts
// a 2^32 exhaustive combo at 256 units, so a kill loses at most ~0.4% of a
// combo's progress while the checkpoint stays small.
const DefaultUnitSize = 1 << 24

// SmokeStride is the float32-lane step of the smoke slice: prime, so
// sampled mantissa bit patterns vary instead of repeating a power-of-two
// residue.
const SmokeStride = 4099

// SmokeUnitSize keeps smoke units at seconds of work each, so the resume
// grain is fine enough to demonstrate checkpointing inside CI.
const SmokeUnitSize = 4096

// SmokeRanges is the fixed deterministic sub-range set of the CI smoke
// slice: subnormals, the polynomial core domain, the overflow/log
// neighbourhoods, huge finite values, and negative mirrors.
var SmokeRanges = []Range{
	{0x00000000, 0x01000000}, // +0 through tiny normals
	{0x3e800000, 0x40800000}, // [0.25, 4): the reduced-domain core
	{0x42000000, 0x43000000}, // [32, 128): exp saturation neighbourhood
	{0x7f000000, 0x7f800000}, // huge finite
	{0x80000000, 0x81000000}, // negative subnormals
	{0xc2000000, 0xc3000000}, // (-128, -32]
}

// AllLanes lists every lane in plan order.
var AllLanes = []Lane{LaneFloat32, LaneBf16, LaneRandom}

// SmokeConfig is the CI-sized campaign: the fixed strided sub-ranges on the
// float32 lane, the full 2^16 bfloat16 lane, and a small random lane. It
// completes in minutes cold and seconds warm, deterministically for a fixed
// seed.
func SmokeConfig(funcs, schemes []string, widths []int, seed int64) Config {
	return Config{
		Funcs:    funcs,
		Schemes:  schemes,
		Widths:   widths,
		Lanes:    AllLanes,
		Stride:   SmokeStride,
		Ranges:   SmokeRanges,
		RandomN:  4096,
		Seed:     seed,
		UnitSize: SmokeUnitSize,
	}
}

// FullConfig is the RLIBM-32 campaign: every float32 bit pattern (stride 1,
// full range) on the float32 lane, the full bfloat16 lane, and a random
// lane on top.
func FullConfig(funcs, schemes []string, widths []int, seed int64, randomN int) Config {
	return Config{
		Funcs:   funcs,
		Schemes: schemes,
		Widths:  widths,
		Lanes:   AllLanes,
		Stride:  1,
		RandomN: randomN,
		Seed:    seed,
	}
}

// Unit is one work item: a contiguous index range of one lane of one
// (function, scheme). Lo/Hi are float32 bit patterns on the float32 lane
// (stepped by Stride), bfloat16 bit patterns on the bf16 lane, and indices
// into the seeded random sequence on the random lane.
type Unit struct {
	ID     int
	Fn     string
	Scheme string
	Lane   Lane
	Lo, Hi uint64
	Stride uint64
}

// Inputs returns the number of inputs the unit covers.
func (u *Unit) Inputs() uint64 {
	return (u.Hi - u.Lo + u.Stride - 1) / u.Stride
}

// Plan is a fully enumerated campaign: the deterministic unit list plus the
// hash that binds checkpoints to it.
type Plan struct {
	Cfg   Config
	Hash  string
	Units []Unit
}

// NewPlan validates cfg and enumerates its units in deterministic order
// (function, scheme, lane, range, offset). The same Config always produces
// the same plan and the same hash, on every machine.
func NewPlan(cfg Config) (*Plan, error) {
	if len(cfg.Funcs) == 0 || len(cfg.Schemes) == 0 {
		return nil, fmt.Errorf("campaign: empty function or scheme list")
	}
	for _, fn := range cfg.Funcs {
		if !knownFunc(fn) {
			return nil, fmt.Errorf("campaign: unknown function %q", fn)
		}
	}
	for _, s := range cfg.Schemes {
		if _, err := parseScheme(s); err != nil {
			return nil, err
		}
	}
	if len(cfg.Lanes) == 0 {
		return nil, fmt.Errorf("campaign: no lanes selected")
	}
	needWidths := false
	for _, l := range cfg.Lanes {
		if l >= numLanes {
			return nil, fmt.Errorf("campaign: invalid lane %d", l)
		}
		if l == LaneFloat32 || l == LaneRandom {
			needWidths = true
		}
	}
	if needWidths && len(cfg.Widths) == 0 {
		return nil, fmt.Errorf("campaign: float32/random lanes need output widths")
	}
	for _, w := range cfg.Widths {
		if w < 10 || w > 32 {
			return nil, fmt.Errorf("campaign: width %d outside [10, 32]", w)
		}
	}
	if cfg.Stride == 0 {
		cfg.Stride = 1
	}
	ranges := cfg.Ranges
	if len(ranges) == 0 {
		ranges = []Range{{0, 1 << 32}}
	}
	for _, r := range ranges {
		if r.Lo >= r.Hi || r.Hi > 1<<32 {
			return nil, fmt.Errorf("campaign: bad range [%#x, %#x)", r.Lo, r.Hi)
		}
	}
	unit := cfg.UnitSize
	if unit == 0 {
		unit = DefaultUnitSize
	}

	p := &Plan{Cfg: cfg}
	add := func(fn, scheme string, lane Lane, lo, hi, stride uint64) {
		p.Units = append(p.Units, Unit{
			ID: len(p.Units), Fn: fn, Scheme: scheme, Lane: lane,
			Lo: lo, Hi: hi, Stride: stride,
		})
	}
	for _, fn := range cfg.Funcs {
		for _, scheme := range cfg.Schemes {
			for _, lane := range cfg.Lanes {
				switch lane {
				case LaneFloat32:
					// Unit boundaries fall on stride multiples from each
					// range's base, so splitting a range into units visits
					// exactly the inputs an unsplit sweep would.
					span := unit * cfg.Stride
					for _, r := range ranges {
						for lo := r.Lo; lo < r.Hi; lo += span {
							add(fn, scheme, lane, lo, min(lo+span, r.Hi), cfg.Stride)
						}
					}
				case LaneBf16:
					for lo := uint64(0); lo < 1<<16; lo += unit {
						add(fn, scheme, lane, lo, min(lo+unit, 1<<16), 1)
					}
				case LaneRandom:
					for lo := uint64(0); lo < uint64(cfg.RandomN); lo += unit {
						add(fn, scheme, lane, lo, min(lo+unit, uint64(cfg.RandomN)), 1)
					}
				}
			}
		}
	}
	if len(p.Units) == 0 {
		return nil, fmt.Errorf("campaign: plan has no units")
	}
	p.Hash = hashConfig(cfg)
	return p, nil
}

// hashConfig derives the plan hash binding checkpoints to a campaign: a
// SHA-256 over a canonical rendering of the plan semantics version and
// every Config field.
func hashConfig(cfg Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "v%d", PlanVersion)
	fmt.Fprintf(&b, "|funcs=%s", strings.Join(cfg.Funcs, ","))
	fmt.Fprintf(&b, "|schemes=%s", strings.Join(cfg.Schemes, ","))
	fmt.Fprintf(&b, "|widths=%v", cfg.Widths)
	for _, l := range cfg.Lanes {
		fmt.Fprintf(&b, "|lane=%s", l)
	}
	fmt.Fprintf(&b, "|stride=%d", cfg.Stride)
	for _, r := range cfg.Ranges {
		fmt.Fprintf(&b, "|range=%x:%x", r.Lo, r.Hi)
	}
	fmt.Fprintf(&b, "|random=%d|seed=%d|unit=%d|usefuncs=%t",
		cfg.RandomN, cfg.Seed, cfg.UnitSize, cfg.UseFuncs)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// knownFunc reports whether the library implements fn.
func knownFunc(fn string) bool {
	for _, f := range libm.Funcs {
		if f.Name == fn {
			return true
		}
	}
	return false
}

// parseScheme resolves a libm scheme from its canonical name.
func parseScheme(s string) (libm.Scheme, error) {
	for _, sc := range libm.Schemes {
		if sc.String() == s {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("campaign: unknown scheme %q", s)
}

// AllFuncNames and AllSchemeNames list the library surface in canonical
// order, for CLIs resolving "all".
func AllFuncNames() []string {
	names := make([]string, 0, len(libm.Funcs))
	for _, f := range libm.Funcs {
		names = append(names, f.Name)
	}
	return names
}

func AllSchemeNames() []string {
	names := make([]string, 0, len(libm.Schemes))
	for _, s := range libm.Schemes {
		names = append(names, s.String())
	}
	return names
}

package campaign

import (
	"context"
	"fmt"
	"sync"
	"time"

	"rlibm/internal/obs"
	"rlibm/internal/oracle"
)

// Engine runs a plan to completion (or cancellation), committing each
// finished unit to the checkpoint. Tallies are bit-identical for every
// worker count and every interrupt/resume split: the unit is the atomic
// grain — a unit abandoned mid-range is simply rerun on resume — and the
// reduction over units is order-free.
type Engine struct {
	Plan *Plan
	// Workers is the verification goroutine count (<1 = 1).
	Workers int
	// CheckpointPath is where completed units commit ("" = no
	// checkpointing: one-shot in-memory runs and tests).
	CheckpointPath string
	// Cache, when non-nil, memoizes oracle results; attach a persistent
	// store to it to stream the campaign's Ziv computations to disk.
	Cache *oracle.Cache
	// Log receives progress and resume lines (nil = silent).
	Log *obs.Logger
	// Metrics receives campaign gauges/counters (nil = obs.Default()).
	Metrics *obs.Registry
	// OnUnit, when set, observes every committed unit, after the checkpoint
	// write. Tests use it to cancel mid-campaign at a deterministic point;
	// callers can use it for custom progress.
	OnUnit func(UnitResult)
	// ProgressEvery throttles progress/ETA log lines (0 = none).
	ProgressEvery time.Duration

	// implOverride, when set, substitutes implementations on the
	// float32/random lanes (return nil to fall through). Tests inject
	// deliberately wrong kernels to exercise mismatch tallying.
	implOverride func(fn, scheme string) func(float32) float64
}

// ComboTotal aggregates one (function, scheme, lane)'s tally across its
// units. First renders the failure at the lowest (unit, index) position —
// exactly what an uninterrupted serial sweep would report first.
type ComboTotal struct {
	Fn      string `json:"fn"`
	Scheme  string `json:"scheme"`
	Lane    string `json:"lane"`
	Checked int64  `json:"checked"`
	Wrong   int64  `json:"wrong"`
	First   string `json:"first,omitempty"`
}

// Totals is the campaign outcome so far: full when Interrupted is false,
// the committed prefix otherwise.
type Totals struct {
	UnitsTotal   int
	UnitsResumed int
	UnitsDone    int
	Checked      int64
	Wrong        int64
	Interrupted  bool
	Combos       []ComboTotal
}

// Run executes every unit not already committed to the checkpoint. On
// context cancellation it stops issuing units, lets in-flight workers
// abandon mid-range, commits what completed, and returns the partial totals
// with Interrupted set alongside ctx.Err(). A nil error means the campaign
// is complete.
func (e *Engine) Run(ctx context.Context) (*Totals, error) {
	plan := e.Plan
	workers := e.Workers
	if workers < 1 {
		workers = 1
	}

	done := map[int]UnitResult{}
	if e.CheckpointPath != "" {
		loaded, hash, quarantined, err := LoadCheckpoint(e.CheckpointPath)
		if err != nil {
			return nil, err
		}
		if quarantined != "" {
			e.logf("checkpoint failed validation (%s); quarantined, restarting campaign", quarantined)
		}
		if len(loaded) > 0 {
			if hash != plan.Hash {
				return nil, fmt.Errorf("campaign: checkpoint %s belongs to a different campaign (plan %.12s, this run %.12s); finish it with its original flags or -restart",
					e.CheckpointPath, hash, plan.Hash)
			}
			for id, u := range loaded {
				if id < 0 || id >= len(plan.Units) {
					return nil, fmt.Errorf("campaign: checkpoint unit %d outside plan of %d units", id, len(plan.Units))
				}
				done[id] = u
			}
		}
	}
	resumed := len(done)
	if resumed > 0 {
		e.logf("resuming campaign: %d of %d units already committed", resumed, len(plan.Units))
	}

	var randoms []float32
	for _, u := range plan.Units {
		if u.Lane == LaneRandom {
			randoms = drawRandoms(plan.Cfg.Seed, plan.Cfg.RandomN)
			break
		}
	}

	reg := e.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	unitsTotal := reg.Gauge("campaign/units_total")
	unitsDone := reg.Gauge("campaign/units_done")
	checkedC := reg.Counter("campaign/checked_total")
	wrongC := reg.Counter("campaign/wrong_total")
	unitNs := reg.Histogram("campaign/unit_ns")
	unitsTotal.Set(int64(len(plan.Units)))
	unitsDone.Set(int64(resumed))

	pending := make([]int, 0, len(plan.Units)-resumed)
	var pendingInputs uint64
	for i := range plan.Units {
		if _, ok := done[i]; !ok {
			pending = append(pending, i)
			pendingInputs += plan.Units[i].Inputs()
		}
	}
	e.logf("campaign: %d units pending (%d inputs), %d workers", len(pending), pendingInputs, workers)

	unitCh := make(chan int)
	resCh := make(chan UnitResult)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range unitCh {
				start := time.Now()
				res, completed := e.runUnit(ctx, &plan.Units[idx], randoms)
				if !completed {
					continue // abandoned mid-range; reruns on resume
				}
				unitNs.ObserveDuration(time.Since(start))
				resCh <- res
			}
		}()
	}
	go func() {
		defer close(unitCh)
		for _, idx := range pending {
			select {
			case unitCh <- idx:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(resCh)
	}()

	start := time.Now()
	lastProgress := start
	freshDone := 0
	var commitErr error
	for res := range resCh {
		done[res.ID] = res
		freshDone++
		checkedC.Add(res.Checked)
		wrongC.Add(res.Wrong)
		unitsDone.Set(int64(len(done)))
		if e.CheckpointPath != "" && commitErr == nil {
			commitErr = SaveCheckpoint(e.CheckpointPath, plan.Hash, done)
		}
		if e.OnUnit != nil {
			e.OnUnit(res)
		}
		if e.ProgressEvery > 0 && time.Since(lastProgress) >= e.ProgressEvery {
			lastProgress = time.Now()
			e.logProgress(len(done), len(plan.Units), freshDone, time.Since(start))
		}
	}
	if commitErr != nil {
		return nil, fmt.Errorf("campaign: checkpoint commit: %w", commitErr)
	}

	totals := e.reduce(done, resumed)
	if len(done) < len(plan.Units) {
		totals.Interrupted = true
		e.logf("campaign interrupted: %d of %d units committed; rerun with the same flags to resume",
			len(done), len(plan.Units))
		return totals, ctx.Err()
	}
	return totals, nil
}

// reduce folds committed unit results into per-combo and overall totals, in
// plan order, independent of commit order.
func (e *Engine) reduce(done map[int]UnitResult, resumed int) *Totals {
	t := &Totals{
		UnitsTotal:   len(e.Plan.Units),
		UnitsResumed: resumed,
		UnitsDone:    len(done),
	}
	type comboKey struct {
		fn, scheme string
		lane       Lane
	}
	idx := map[comboKey]int{}
	firstAt := map[comboKey]struct {
		unit int
		idx  uint64
	}{}
	for i := range e.Plan.Units {
		u := &e.Plan.Units[i]
		res, ok := done[u.ID]
		if !ok {
			continue
		}
		k := comboKey{u.Fn, u.Scheme, u.Lane}
		ci, ok := idx[k]
		if !ok {
			ci = len(t.Combos)
			idx[k] = ci
			t.Combos = append(t.Combos, ComboTotal{Fn: u.Fn, Scheme: u.Scheme, Lane: u.Lane.String()})
		}
		c := &t.Combos[ci]
		c.Checked += res.Checked
		c.Wrong += res.Wrong
		t.Checked += res.Checked
		t.Wrong += res.Wrong
		if res.Wrong > 0 {
			at, have := firstAt[k]
			if !have || u.ID < at.unit || (u.ID == at.unit && res.FirstIdx < at.idx) {
				firstAt[k] = struct {
					unit int
					idx  uint64
				}{u.ID, res.FirstIdx}
				c.First = res.First
			}
		}
	}
	return t
}

// logf emits one campaign log line when a logger is attached.
func (e *Engine) logf(format string, args ...any) {
	if e.Log != nil {
		e.Log.Infof(format, args...)
	}
}

// logProgress renders done/total with an ETA extrapolated from this run's
// fresh unit rate (resumed units are free and must not skew it).
func (e *Engine) logProgress(done, total, fresh int, elapsed time.Duration) {
	if e.Log == nil || fresh == 0 {
		return
	}
	remaining := total - done
	eta := time.Duration(float64(elapsed) / float64(fresh) * float64(remaining)).Round(time.Second)
	e.Log.Infof("campaign: %d/%d units (%.1f%%), elapsed %s, ETA %s",
		done, total, 100*float64(done)/float64(total), elapsed.Round(time.Second), eta)
}

package campaign

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// The checkpoint file records every completed unit's tally, bound to the
// plan by its hash. Layout (integers little-endian), validated end to end
// like an oracle-store segment:
//
//	header:  magic "RLCC" | version uint32 | payloadLen uint64
//	payload: JSON {plan_hash, units:[{id, checked, wrong, first_idx, first}]}
//	trailer: magic "RLCE" | crc32(IEEE, payload)
//
// Commits are atomic: the new image is written to a sibling .tmp file,
// fsynced, and renamed over the old checkpoint, so a kill at any instant
// leaves either the previous commit or the new one — never a torn file.
// Anything that fails validation is renamed to *.quarantined and the
// campaign restarts from scratch: a corrupt checkpoint costs recomputation,
// never a wrong tally.
const (
	checkpointMagic     = "RLCC"
	checkpointEndMagic  = "RLCE"
	checkpointHeaderLen = 16
	checkpointFooterLen = 8
	// CheckpointVersion gates the checkpoint layout, like oracle.StoreVersion
	// gates segments.
	CheckpointVersion = 1
	// CheckpointFile is the file name inside a campaign state directory.
	CheckpointFile = "checkpoint.rlcc"

	quarantineSuffix = ".quarantined"
)

// UnitResult is one completed unit's tally. Checked counts oracle
// comparisons (inputs x widths x modes on the widths lanes), Wrong the
// mismatches; FirstIdx/First pin the unit-local index and rendering of the
// first failure, so the campaign's overall first failure is reconstructible
// from any commit order.
type UnitResult struct {
	ID       int    `json:"id"`
	Checked  int64  `json:"checked"`
	Wrong    int64  `json:"wrong"`
	FirstIdx uint64 `json:"first_idx,omitempty"`
	First    string `json:"first,omitempty"`
}

type checkpointPayload struct {
	PlanHash string       `json:"plan_hash"`
	Units    []UnitResult `json:"units"`
}

// SaveCheckpoint atomically commits the completed-unit set for the plan
// hash to path. Units are serialized in ID order, so identical states
// produce identical bytes.
func SaveCheckpoint(path, planHash string, units map[int]UnitResult) error {
	list := make([]UnitResult, 0, len(units))
	for _, u := range units {
		list = append(list, u)
	}
	sort.Slice(list, func(i, j int) bool { return list[i].ID < list[j].ID })
	payload, err := json.Marshal(checkpointPayload{PlanHash: planHash, Units: list})
	if err != nil {
		return err
	}

	buf := make([]byte, 0, checkpointHeaderLen+len(payload)+checkpointFooterLen)
	buf = append(buf, checkpointMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, CheckpointVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = append(buf, checkpointEndMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCheckpoint reads a checkpoint. A missing file is a fresh campaign
// (nil map, no hash, no error). A file that fails validation — short file,
// bad magic, version or length mismatch, CRC failure, malformed payload —
// is renamed aside to *.quarantined and also reported as fresh, with the
// cause returned for logging: resuming from a corrupt checkpoint must never
// produce a wrong tally, so the campaign recomputes instead.
func LoadCheckpoint(path string) (units map[int]UnitResult, planHash, quarantined string, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, "", "", nil
	}
	if err != nil {
		return nil, "", "", err
	}
	payload, verr := validateCheckpoint(data)
	if verr != nil {
		dst := quarantinePath(path)
		if rerr := os.Rename(path, dst); rerr != nil {
			return nil, "", "", fmt.Errorf("campaign: quarantining corrupt checkpoint: %w", rerr)
		}
		return nil, "", verr.Error(), nil
	}
	units = make(map[int]UnitResult, len(payload.Units))
	for _, u := range payload.Units {
		units[u.ID] = u
	}
	return units, payload.PlanHash, "", nil
}

// validateCheckpoint checks the whole image and decodes the payload.
func validateCheckpoint(data []byte) (*checkpointPayload, error) {
	if len(data) < checkpointHeaderLen+checkpointFooterLen {
		return nil, fmt.Errorf("truncated checkpoint (%d bytes)", len(data))
	}
	if string(data[:4]) != checkpointMagic {
		return nil, fmt.Errorf("bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != CheckpointVersion {
		return nil, fmt.Errorf("checkpoint version %d, want %d", v, CheckpointVersion)
	}
	plen := binary.LittleEndian.Uint64(data[8:16])
	if uint64(len(data)) != checkpointHeaderLen+plen+checkpointFooterLen {
		return nil, fmt.Errorf("payload length %d does not match file of %d bytes", plen, len(data))
	}
	payload := data[checkpointHeaderLen : checkpointHeaderLen+plen]
	footer := data[checkpointHeaderLen+plen:]
	if string(footer[:4]) != checkpointEndMagic {
		return nil, fmt.Errorf("bad trailer magic %q", footer[:4])
	}
	if crc := binary.LittleEndian.Uint32(footer[4:8]); crc != crc32.ChecksumIEEE(payload) {
		return nil, fmt.Errorf("CRC mismatch")
	}
	var p checkpointPayload
	if err := json.Unmarshal(payload, &p); err != nil {
		return nil, fmt.Errorf("malformed payload: %w", err)
	}
	return &p, nil
}

// quarantinePath returns the first free *.quarantined sibling of path.
func quarantinePath(path string) string {
	dst := path + quarantineSuffix
	for i := 2; ; i++ {
		if _, err := os.Stat(dst); os.IsNotExist(err) {
			return dst
		}
		dst = fmt.Sprintf("%s%s.%d", path, quarantineSuffix, i)
	}
}

// RemoveCheckpoint deletes a campaign's checkpoint (the -restart path). A
// missing file is not an error.
func RemoveCheckpoint(path string) error {
	err := os.Remove(path)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// CheckpointPathIn returns the checkpoint location inside a campaign state
// directory.
func CheckpointPathIn(dir string) string {
	return filepath.Join(dir, CheckpointFile)
}

// Polyeval: the paper's Sections 3-4 in action on its running example.
//
//   - Knuth's coefficient adaptation of u(x) = -6 + 6x + 42x^2 + 18x^3 + 2x^4
//     (3 multiplications instead of Horner's 4),
//   - Estrin's method and its shorter dependence chains,
//   - operation counts and critical-path latencies per scheme and degree,
//   - and the Section 6.3 pitfall: adapting a finished polynomial as a
//     post-process perturbs results by rounding error, which is why the
//     paper integrates fast evaluation into the generation loop.
//
// Run with: go run ./examples/polyeval
package main

import (
	"fmt"
	"math"
	"math/big"

	"rlibm/internal/poly"
)

func main() {
	// The paper's introduction example.
	u := poly.Poly{-6, 6, 42, 18, 2}
	fmt.Println("u(x) =", u)

	var u4 [5]float64
	copy(u4[:], u)
	alphas, err := poly.Adapt4(u4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nKnuth adaptation (equation 3):\n")
	fmt.Printf("  y = (x + %g)x + %g\n", alphas[0], alphas[1])
	fmt.Printf("  u(x) = ((y + x + %g)y + %g) * %g\n", alphas[2], alphas[3], alphas[4])

	fmt.Println("\nevaluation schemes agree (exactly, for this integer example):")
	for _, x := range []float64{-2, -0.5, 0, 1, 2.25} {
		h := poly.EvalHorner(u, x)
		k := poly.EvalAdapted4(&alphas, x)
		e := poly.EvalEstrin(u, x)
		ef := poly.EvalEstrinFMA(u, x)
		fmt.Printf("  x=%-6g horner=%-10g knuth=%-10g estrin=%-10g estrin+fma=%-10g\n", x, h, k, e, ef)
	}

	fmt.Println("\noperation counts and critical paths (4-cycle add/mul/fma):")
	fmt.Printf("  %-12s %6s %6s %6s %14s\n", "scheme", "adds", "muls", "fmas", "critical path")
	for _, deg := range []int{4, 5, 6} {
		for _, s := range poly.Schemes {
			c := poly.SchemeCost(s, deg, poly.DefaultLatency)
			fmt.Printf("  %-12s %6d %6d %6d %11d cyc   (degree %d)\n",
				s, c.Adds, c.Muls, c.FMAs, c.CriticalPath, deg)
		}
		fmt.Println()
	}

	// Section 6.3: post-process adaptation perturbs values. Use a realistic
	// non-integer polynomial (a 2^r-like approximation).
	p := poly.Poly{1, 0.6931471805599453, 0.2402265069591007, 0.0555041086648216, 0.009618129107628477, 0.0013333558146428443}
	var u5 [6]float64
	copy(u5[:], p)
	a5, err := poly.Adapt5(u5)
	if err != nil {
		panic(err)
	}
	fmt.Println("post-process adaptation error on a 2^r-style degree-5 polynomial:")
	fmt.Println("(the reason Algorithm 2 integrates adaptation into the generation loop)")
	maxUlps := 0.0
	for i := 0; i <= 16; i++ {
		x := -1.0/128 + float64(i)/1024
		h := poly.EvalHorner(p, x)
		k := poly.EvalAdapted5(&a5, x)
		exact, _ := p.EvalExact(new(big.Rat).SetFloat64(x)).Float64()
		ulp := math.Nextafter(exact, math.Inf(1)) - exact
		dk := math.Abs(k-exact) / ulp
		dh := math.Abs(h-exact) / ulp
		if dk > maxUlps {
			maxUlps = dk
		}
		fmt.Printf("  r=%-12.6g horner err %5.2f ulps, adapted err %6.2f ulps\n", x, dh, dk)
	}
	fmt.Printf("worst adapted-evaluation error: %.2f double ulps\n", maxUlps)
	fmt.Println("each extra ulp can push a value out of its rounding interval;")
	fmt.Println("the generate-check-constrain loop absorbs exactly this error.")
}

// Mlprecision: the mixed-precision ML scenario the paper's introduction
// motivates — new formats like bfloat16 and tensorfloat32 trade range for
// precision, and a single correctly rounded implementation must serve all
// of them under every rounding mode.
//
// This example computes a numerically delicate softmax + cross-entropy in
// reduced precision three ways:
//
//  1. float64 math library, truncated to the small format at the end
//     (the "just cast it" approach — wrong for some inputs by double
//     rounding),
//  2. this library's correctly rounded functions rounded directly to the
//     small format (always the closest representable value), and
//  3. the float64 reference.
//
// It also shows directed rounding producing certified bounds: evaluating
// with RTN and RTP brackets the true value — a poor man's interval
// arithmetic that only works when every elementary function is correctly
// rounded in every mode.
//
// Run with: go run ./examples/mlprecision
package main

import (
	"fmt"
	"math"

	"rlibm/internal/fp"
	"rlibm/internal/libm"
	"rlibm/internal/oracle"
	"rlibm/pkg/rlibm"
)

func main() {
	logits := []float32{2.0, 1.0, 0.1, -1.5, 3.3}
	target := 4 // index of the "true" class

	fmt.Println("softmax cross-entropy in bfloat16:")
	format := fp.Bfloat16

	// Reference in float64.
	ref := crossEntropy64(logits, target)
	fmt.Printf("  float64 reference:             %.9g\n", ref)

	// Correctly rounded at every elementary-function call.
	cr := crossEntropySmall(logits, target, format, fp.RNE)
	fmt.Printf("  correctly rounded bfloat16:    %.9g\n", cr)

	// Certified bounds via directed rounding.
	lo := crossEntropySmall(logits, target, format, fp.RTN)
	hi := crossEntropySmall(logits, target, format, fp.RTP)
	fmt.Printf("  certified bracket [RTN, RTP]:  [%.9g, %.9g]\n", lo, hi)
	if !(lo <= ref && ref <= hi) {
		fmt.Println("  BRACKET VIOLATION — should never happen with correct rounding")
	} else {
		fmt.Println("  (the float64 reference falls inside the bracket, as it must)")
	}

	// Where the naive path goes wrong: double rounding. Scan for bfloat16
	// inputs where rounding exp(x) from a float64 result disagrees with the
	// correctly rounded bfloat16 value.
	fmt.Println("\ndouble-rounding mismatches for exp(x) into bfloat16 (first 5):")
	found := 0
	f := fp.Bfloat16
	f.FiniteValues(func(b uint64, v float64) bool {
		if v == 0 || v < -80 || v > 80 {
			return true
		}
		naive := f.Round(math.Exp(v), fp.RNE)
		correct := libm.RoundTo(libm.ExpDouble(float32(v), libm.SchemeEstrinFMA), f, fp.RNE)
		if naive != correct {
			want := oracle.Correct(oracle.Exp, v, f, fp.RNE)
			fmt.Printf("  exp(%-12g): naive %-13g correct %-13g (oracle %g)\n", v, naive, correct, want)
			found++
		}
		return found < 5
	})
	if found == 0 {
		fmt.Println("  none in this sweep — double rounding failures are rare but real;")
		fmt.Println("  see examples/allformats for a constructed one.")
	}

	// Progressive prefixes: the public API serves narrow formats directly.
	// A precision-aware Evaluator evaluates only the polynomial prefix whose
	// degree suffices for the requested format — the bfloat16 path runs a
	// degree-1 or degree-2 prefix of the same coefficient table the float32
	// path uses in full, so narrow traffic is cheaper per element while every
	// result is still the correctly rounded value of its format.
	fmt.Println("\nprogressive prefixes via pkg/rlibm (one table, three formats):")
	fmt.Printf("  %-10s %-14s %-14s %-14s\n", "x", "float32", "tf32", "bf16")
	precs := []rlibm.Precision{rlibm.PrecFloat32, rlibm.PrecTF32, rlibm.PrecBfloat16}
	evs := make([]*rlibm.Evaluator, len(precs))
	for i, p := range precs {
		ev, err := rlibm.New(rlibm.FuncExp, rlibm.EstrinFMA, rlibm.WithPrecision(p))
		if err != nil {
			fmt.Println("  error:", err)
			return
		}
		evs[i] = ev
	}
	for _, x := range []float32{0.5, 1.0, -2.25, 3.3} {
		fmt.Printf("  %-10g", x)
		for _, ev := range evs {
			fmt.Printf(" %-14g", ev.Eval(x))
		}
		fmt.Println()
	}
	fmt.Println("  (each column is correctly rounded for its own format; the bf16")
	fmt.Println("   column's float32 bits always end in sixteen zero bits)")
}

// crossEntropy64 is the float64 reference: -log(softmax(logits)[target]).
func crossEntropy64(logits []float32, target int) float64 {
	maxL := float64(logits[0])
	for _, l := range logits[1:] {
		maxL = math.Max(maxL, float64(l))
	}
	sum := 0.0
	for _, l := range logits {
		sum += math.Exp(float64(l) - maxL)
	}
	return math.Log(sum) - (float64(logits[target]) - maxL)
}

// crossEntropySmall evaluates the same expression with every elementary
// function correctly rounded into `format` under `mode`, and intermediate
// arithmetic rounded to the format as well.
func crossEntropySmall(logits []float32, target int, format fp.Format, mode fp.Mode) float64 {
	rnd := func(v float64) float64 { return format.Round(v, mode) }
	maxL := float64(logits[0])
	for _, l := range logits[1:] {
		maxL = math.Max(maxL, float64(l))
	}
	sum := 0.0
	for _, l := range logits {
		e := libm.RoundTo(libm.ExpDouble(float32(rnd(float64(l)-maxL)), libm.SchemeEstrinFMA), format, mode)
		sum = rnd(sum + e)
	}
	logSum := libm.RoundTo(libm.LogDouble(float32(sum), libm.SchemeEstrinFMA), format, mode)
	return rnd(logSum - rnd(float64(logits[target])-maxL))
}

// Quickstart: call the correctly rounded elementary functions and compare
// them with Go's math package.
//
// The library's headline property (from the CGO 2023 paper): one polynomial
// approximation per function produces the correctly rounded result for every
// floating-point format from 10 to 32 bits and all five IEEE rounding modes.
// The float32 entry points below are the common case; see the allformats
// example for the multi-format API.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math"

	"rlibm/internal/libm"
)

func main() {
	inputs := []float32{0.5, 1.0, 2.7182817, -3.5, 100, 1e-4}

	fmt.Println("correctly rounded float32 results (Estrin+FMA variant):")
	fmt.Printf("%-12s %-14s %-14s %-14s\n", "x", "rlibm exp(x)", "math.Exp", "equal-bits?")
	for _, x := range inputs {
		got := libm.Exp(x)
		ref := float32(math.Exp(float64(x)))
		fmt.Printf("%-12g %-14g %-14g %v\n", x, got, ref, got == ref)
	}

	fmt.Println("\nall six functions at x = 0.7:")
	x := float32(0.7)
	fmt.Printf("  exp(%g)   = %g\n", x, libm.Exp(x))
	fmt.Printf("  exp2(%g)  = %g\n", x, libm.Exp2(x))
	fmt.Printf("  exp10(%g) = %g\n", x, libm.Exp10(x))
	fmt.Printf("  log(%g)   = %g\n", x, libm.Log(x))
	fmt.Printf("  log2(%g)  = %g\n", x, libm.Log2(x))
	fmt.Printf("  log10(%g) = %g\n", x, libm.Log10(x))

	fmt.Println("\nthe four paper configurations agree bit-for-bit on the result")
	fmt.Println("(they differ only in evaluation speed):")
	for _, x := range inputs {
		a, b := libm.Exp2Horner(x), libm.Exp2Knuth(x)
		c, d := libm.Exp2Estrin(x), libm.Exp2EstrinFMA(x)
		fmt.Printf("  exp2(%-8g): rlibm=%v knuth=%v estrin=%v estrin+fma=%v\n", x, a, b, c, d)
		if a != b || a != c || a != d {
			fmt.Println("  MISMATCH — this should never happen")
		}
	}

	fmt.Println("\nspecial values follow IEEE semantics:")
	fmt.Printf("  exp(+Inf) = %g, exp(-Inf) = %g, exp(NaN) = %g\n",
		libm.Exp(float32(math.Inf(1))), libm.Exp(float32(math.Inf(-1))), libm.Exp(float32(math.NaN())))
	fmt.Printf("  log(0) = %g, log(-1) = %g\n", libm.Log(0), libm.Log(-1))
}

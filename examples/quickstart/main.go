// Quickstart: call the correctly rounded elementary functions through the
// public pkg/rlibm API and compare them with Go's math package.
//
// The library's headline property (from the CGO 2023 paper): one polynomial
// approximation per function produces the correctly rounded result for every
// floating-point format from 10 to 32 bits and all five IEEE rounding modes.
// The float32 entry points below are the common case; see the allformats
// example for the multi-format API and mlprecision for the progressive
// narrow-precision prefixes.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"rlibm/pkg/rlibm"
)

func main() {
	inputs := []float32{0.5, 1.0, 2.7182817, -3.5, 100, 1e-4}

	fmt.Println("correctly rounded float32 results (Estrin+FMA variant):")
	fmt.Printf("%-12s %-14s %-14s %-14s\n", "x", "rlibm exp(x)", "math.Exp", "equal-bits?")
	for _, x := range inputs {
		got := rlibm.Exp(x)
		ref := float32(math.Exp(float64(x)))
		fmt.Printf("%-12g %-14g %-14g %v\n", x, got, ref, got == ref)
	}

	fmt.Println("\nall six functions at x = 0.7:")
	x := float32(0.7)
	for _, f := range rlibm.Funcs {
		ev, err := rlibm.New(f, rlibm.EstrinFMA)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s(%g) = %g\n", f, x, ev.Eval(x))
	}

	fmt.Println("\nthe four paper configurations agree bit-for-bit on the result")
	fmt.Println("(they differ only in evaluation speed):")
	evals := make([]*rlibm.Evaluator, 0, rlibm.NumSchemes)
	for _, s := range rlibm.Schemes {
		ev, err := rlibm.New(rlibm.FuncExp2, s)
		if err != nil {
			log.Fatal(err)
		}
		evals = append(evals, ev)
	}
	for _, x := range inputs {
		fmt.Printf("  exp2(%-8g):", x)
		first := evals[0].Eval(x)
		for _, ev := range evals {
			y := ev.Eval(x)
			fmt.Printf(" %s=%v", ev.Scheme(), y)
			if math.Float32bits(y) != math.Float32bits(first) {
				fmt.Print("  MISMATCH — this should never happen")
			}
		}
		fmt.Println()
	}

	fmt.Println("\nbatch evaluation: one dispatch, a whole slice, bit-identical to scalar:")
	ev, err := rlibm.New(rlibm.FuncLog2, rlibm.EstrinFMA)
	if err != nil {
		log.Fatal(err)
	}
	dst := make([]float32, len(inputs))
	ev.EvalBatch(dst, inputs)
	for i, x := range inputs {
		fmt.Printf("  log2(%-10g) = %g\n", x, dst[i])
	}

	fmt.Println("\nspecial values follow IEEE semantics:")
	fmt.Printf("  exp(+Inf) = %g, exp(-Inf) = %g, exp(NaN) = %g\n",
		rlibm.Exp(float32(math.Inf(1))), rlibm.Exp(float32(math.Inf(-1))), rlibm.Exp(float32(math.NaN())))
	fmt.Printf("  log(0) = %g, log(-1) = %g\n", rlibm.Log(0), rlibm.Log(-1))
}

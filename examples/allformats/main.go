// Allformats: one polynomial, every representation and rounding mode.
//
// This example demonstrates the RLibm-ALL property the paper builds on
// (Section 2.2 and Figures 3-5):
//
//  1. the library's raw double result rounds correctly to bfloat16,
//     tensorfloat32, and every other 10..32-bit format under all five IEEE
//     rounding modes, and
//  2. the naive alternative — double rounding through a round-to-nearest
//     intermediate — produces wrong results for some inputs, which is why
//     round-to-odd at 34 bits is essential.
//
// Run with: go run ./examples/allformats
package main

import (
	"fmt"
	"math"

	"rlibm/internal/fp"
	"rlibm/internal/libm"
	"rlibm/internal/oracle"
)

func main() {
	x := float32(2.75)
	d := libm.Exp2Double(x, libm.SchemeEstrinFMA)
	fmt.Printf("exp2(%g): raw double result %.17g\n\n", x, d)

	formats := []struct {
		name string
		f    fp.Format
	}{
		{"bfloat16", fp.Bfloat16},
		{"tensorfloat32", fp.TensorFloat32},
		{"fp24_e8", fp.Format{Bits: 24, ExpBits: 8}},
		{"float32", fp.Float32},
	}
	fmt.Printf("%-14s", "format")
	for _, m := range fp.StandardModes {
		fmt.Printf(" %-13s", m)
	}
	fmt.Println()
	for _, f := range formats {
		fmt.Printf("%-14s", f.name)
		for _, m := range fp.StandardModes {
			got := libm.RoundTo(d, f.f, m)
			want := oracle.Correct(oracle.Exp2, float64(x), f.f, m)
			mark := ""
			if got != want {
				mark = "  <-- WRONG"
			}
			fmt.Printf(" %-13g%s", got, mark)
		}
		fmt.Println()
	}

	// Figure 3: why rounding twice with round-to-nearest fails. Construct a
	// real value just above the midpoint of two adjacent float32 values;
	// the FP34 round-to-nearest intermediate collapses it onto the midpoint
	// and the float32 tie then resolves the wrong way.
	fmt.Println("\ndouble-rounding failure (Figure 3):")
	y := 1.0
	succ := fp.Float32.NextUp(y)
	mid := (y + succ) / 2
	v := math.Nextafter(mid, 2) // strictly above the midpoint

	direct := fp.Float32.Round(v, fp.RNE)
	viaRN := fp.Float32.Round(fp.FP34.Round(v, fp.RNE), fp.RNE)
	viaRO := fp.Float32.Round(fp.FP34.Round(v, fp.RTO), fp.RNE)
	fmt.Printf("  real value v      = %.20g\n", v)
	fmt.Printf("  direct to float32 = %.9g (correct)\n", direct)
	fmt.Printf("  via FP34-RN       = %.9g (wrong: tie broke to even)\n", viaRN)
	fmt.Printf("  via FP34-RO       = %.9g (round-to-odd preserves the sticky information)\n", viaRO)

	// Exhaustive-by-sampling confirmation across formats and modes.
	fmt.Println("\nsampling 2000 inputs across formats and modes:")
	wrong := 0
	checked := 0
	for i := 0; i < 2000; i++ {
		xi := float32(math.Ldexp(1+float64(i)/2000, i%40-20))
		di := libm.Log2Double(xi, libm.SchemeEstrinFMA)
		for _, f := range formats {
			for _, m := range fp.StandardModes {
				got := libm.RoundTo(di, f.f, m)
				want := oracle.Correct(oracle.Log2, float64(xi), f.f, m)
				checked++
				if math.Float64bits(got) != math.Float64bits(want) {
					wrong++
				}
			}
		}
	}
	fmt.Printf("  %d comparisons, %d wrong\n", checked, wrong)
}

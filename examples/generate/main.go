// Generate: run the full RLibm pipeline end to end at a small width and
// watch Algorithm 2 converge.
//
// This example generates a correctly rounded 2^x for all 18-bit inputs
// (8-bit exponent) with the Estrin+FMA scheme integrated into the
// generate–check–constrain loop, prints the Table-1-style summary, and then
// verifies the result exhaustively against the arbitrary-precision oracle
// for three output widths and all five rounding modes.
//
// Run with: go run ./examples/generate
package main

import (
	"context"
	"fmt"
	"os"

	"rlibm/internal/core"
	"rlibm/internal/fp"
	"rlibm/internal/obs"
	"rlibm/internal/oracle"
	"rlibm/internal/poly"
)

func main() {
	input := fp.Format{Bits: 18, ExpBits: 8}
	cfg := core.Config{
		Fn:     oracle.Exp2,
		Scheme: poly.EstrinFMA,
		Input:  input,
		Seed:   1,
		Logger: obs.NewLogger(os.Stdout, obs.LevelDebug), // watch the iterations
	}
	fmt.Printf("generating exp2 for all %v inputs (oracle: %d-bit round-to-odd)...\n",
		input, input.Bits+2)
	res, err := core.Generate(context.Background(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "generation failed:", err)
		os.Exit(1)
	}

	fmt.Println("\nresult:", res.Describe())
	for i, p := range res.Pieces {
		fmt.Printf("piece %d over [%g, %g]:\n", i, p.Lo, p.Hi)
		for j, c := range p.Coeffs {
			fmt.Printf("  c%d = %.17g\n", j, c)
		}
	}
	fmt.Printf("stats: %d constraints, %d LP solves, %d iterations, %d interval shrinks\n",
		res.Stats.Constraints, res.Stats.LPSolves, res.Stats.Iterations, res.Stats.ConstrainEvents)

	fmt.Println("\nexhaustive verification (3 widths x 5 rounding modes):")
	rep := res.Verify(input, 1, []int{10, 14, 18}, fp.StandardModes)
	fmt.Printf("checked %d results, wrong: %d\n", rep.Checked, rep.Wrong)
	if rep.Wrong > 0 {
		fmt.Println("first wrong:", rep.FirstWrong)
		os.Exit(1)
	}
	fmt.Println("all correctly rounded.")
}

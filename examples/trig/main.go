// Trig: the paper's announced future work, running — correctly rounded
// sin(pi*x) via the same generate–check–constrain pipeline.
//
// sinpi/cospi are the trigonometric functions RLibm ships because their
// argument reduction is exact for binary floating-point inputs: x mod 2,
// the quadrant fold and the sign are all dyadic operations, so the reduced
// constraint system needs no new rounding-error analysis. The quadrant
// function sin(pi*m) on [0, 1/2] is approximated by a piecewise polynomial
// (16 pieces here), generated with Estrin+FMA evaluation integrated into
// the loop.
//
// Run with: go run ./examples/trig   (takes ~a minute: it generates and
// then exhaustively verifies a 14-bit configuration)
package main

import (
	"context"
	"fmt"
	"math"
	"os"

	"rlibm/internal/core"
	"rlibm/internal/fp"
	"rlibm/internal/oracle"
	"rlibm/internal/poly"
)

func main() {
	input := fp.Format{Bits: 14, ExpBits: 8}
	fmt.Printf("generating sinpi for all %v inputs...\n", input)
	res, err := core.Generate(context.Background(), core.Config{
		Fn:     oracle.Sinpi,
		Scheme: poly.EstrinFMA,
		Input:  input,
		Pieces: 8,
		Seed:   1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "generation failed:", err)
		os.Exit(1)
	}
	fmt.Println("result:", res.Describe())

	fmt.Println("\nsample values:")
	for _, x := range []float64{0.25, 1.0 / 3, 0.5, 1, 1.25, -0.75, 2.125} {
		got := res.Eval(x)
		ref := math.Sin(math.Pi * x)
		fmt.Printf("  sinpi(%-8g) = %-22.17g (float64 sin: %.10g)\n", x, got, ref)
	}

	fmt.Println("\nexhaustive verification, 3 widths x 5 modes:")
	rep := res.Verify(input, 1, []int{10, 12, 14}, fp.StandardModes)
	fmt.Printf("checked %d results, wrong: %d\n", rep.Checked, rep.Wrong)
	if rep.Wrong > 0 {
		fmt.Println("first wrong:", rep.FirstWrong)
		os.Exit(1)
	}
	fmt.Println("all correctly rounded — future work, delivered.")
}

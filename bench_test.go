// Package rlibm_test hosts the repository-level benchmark harness: one
// benchmark per evaluated quantity in the paper.
//
//   - BenchmarkTable2 regenerates Table 2 / Figure 6: the latency of each of
//     the 24 generated implementations (6 functions x 4 evaluation schemes)
//     over dense input sweeps. Speedups are the ratios against the
//     corresponding */rlibm-horner rows.
//   - BenchmarkPolyEval is the Section 4 ablation: raw polynomial-evaluation
//     schemes at fixed degrees, isolating Horner's serial chain against
//     Estrin's instruction-level parallelism and the FMA variants.
//   - BenchmarkOracle and BenchmarkGenerate document the cost of the offline
//     pipeline pieces (not a paper table, but useful for regressions).
package rlibm_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"rlibm/internal/core"
	"rlibm/internal/fp"
	"rlibm/internal/libm"
	"rlibm/internal/oracle"
	"rlibm/internal/poly"
)

// sweep builds a deterministic input sweep covering the function's
// polynomial-path domain.
func sweep(name string, n int) []float32 {
	rng := rand.New(rand.NewSource(7))
	out := make([]float32, n)
	for i := range out {
		switch name {
		case "exp":
			out[i] = float32(rng.Float64()*176 - 87)
		case "exp2":
			out[i] = float32(rng.Float64()*252 - 126)
		case "exp10":
			out[i] = float32(rng.Float64()*76 - 38)
		default:
			out[i] = float32(math.Ldexp(1+rng.Float64(), rng.Intn(252)-126))
		}
	}
	return out
}

var sinkF32 float32

// BenchmarkTable2 regenerates the measurements behind Table 2 and Figure 6
// using the straight-line function backend — specialized code per
// implementation, like the artifact's generated C, so the scheme deltas are
// not diluted by dispatch overhead. Calls are serialized through a data
// dependence (each input nudged by at most one double ulp derived from the
// previous result), measuring per-call latency the way the paper's rdtscp
// harness does; an unchained loop would overlap iterations in the
// out-of-order core and hide the dependence-chain differences between the
// schemes.
// Run with: go test -bench BenchmarkTable2 -benchmem
func BenchmarkTable2(b *testing.B) {
	for _, f := range libm.Funcs {
		in := make([]float64, 1<<14)
		for i, v := range sweep(f.Name, 1<<14) {
			in[i] = float64(v)
		}
		for _, s := range libm.Schemes {
			impl := libm.GeneratedFuncs[f.Name+"/"+s.String()]
			b.Run(f.Name+"/"+s.String(), func(b *testing.B) {
				var prev float64
				for i := 0; i < b.N; i++ {
					prev = impl(in[i&(1<<14-1)] + math.Float64frombits(math.Float64bits(prev)&1))
				}
				sinkF64 = prev
			})
		}
	}
}

var sinkF32f float32

// BenchmarkTable2DataDriven is the same sweep through the data-driven
// public float32 API (includes the float32<->float64 conversions and the
// shared eval-loop dispatch).
func BenchmarkTable2DataDriven(b *testing.B) {
	for _, f := range libm.Funcs {
		in := sweep(f.Name, 1<<14)
		for si, s := range libm.Schemes {
			impl := f.F32[si]
			b.Run(f.Name+"/"+s.String(), func(b *testing.B) {
				var acc float32
				for i := 0; i < b.N; i++ {
					acc += impl(in[i&(1<<14-1)])
				}
				sinkF32f = acc
			})
		}
	}
}

var sinkF64 float64

// BenchmarkPolyEval isolates the evaluation schemes on a fixed degree-5
// polynomial: the Section 4 instruction-level-parallelism ablation.
func BenchmarkPolyEval(b *testing.B) {
	coeffs := poly.Poly{1, math.Ln2, 0.24, 0.055, 0.0096, 0.0013}
	var a5 [6]float64
	copy(a5[:], coeffs)
	adapted, err := poly.Adapt5(a5)
	if err != nil {
		b.Fatal(err)
	}
	in := make([]float64, 1<<12)
	rng := rand.New(rand.NewSource(9))
	for i := range in {
		in[i] = rng.Float64()/64 - 1.0/128
	}
	mask := len(in) - 1
	// dep derives a <=1-ulp input nudge from the previous result,
	// serializing the calls (latency measurement, as in the paper).
	dep := func(prev float64) float64 { return math.Float64frombits(math.Float64bits(prev) & 1) }

	b.Run("horner/deg5", func(b *testing.B) {
		var prev float64
		for i := 0; i < b.N; i++ {
			prev = poly.EvalHorner(coeffs, in[i&mask]+dep(prev))
		}
		sinkF64 = prev
	})
	b.Run("horner-fma/deg5", func(b *testing.B) {
		var prev float64
		for i := 0; i < b.N; i++ {
			prev = poly.EvalHornerFMA(coeffs, in[i&mask]+dep(prev))
		}
		sinkF64 = prev
	})
	b.Run("knuth/deg5", func(b *testing.B) {
		var prev float64
		for i := 0; i < b.N; i++ {
			prev = poly.EvalAdapted5(&adapted, in[i&mask]+dep(prev))
		}
		sinkF64 = prev
	})
	b.Run("estrin/deg5", func(b *testing.B) {
		var prev float64
		for i := 0; i < b.N; i++ {
			prev = poly.EvalEstrin(coeffs, in[i&mask]+dep(prev))
		}
		sinkF64 = prev
	})
	b.Run("estrin-fma/deg5", func(b *testing.B) {
		var prev float64
		for i := 0; i < b.N; i++ {
			prev = poly.EvalEstrinFMA(coeffs, in[i&mask]+dep(prev))
		}
		sinkF64 = prev
	})
}

// BenchmarkOracle documents the per-input cost of the Ziv oracle — the
// pipeline's dominant offline cost (the role MPFR plays in the artifact).
func BenchmarkOracle(b *testing.B) {
	b.Run("exp2/fp34-rto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkF64 = oracle.Correct(oracle.Exp2, 1.5+float64(i&255)/1024, fp.FP34, fp.RTO)
		}
	})
	b.Run("log2/fp34-rto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkF64 = oracle.Correct(oracle.Log2, 1.5+float64(i&255)/1024, fp.FP34, fp.RTO)
		}
	})
}

// BenchmarkRounding measures the soft-float rounding primitives used
// throughout the pipeline.
func BenchmarkRounding(b *testing.B) {
	b.Run("round-float64-to-fp34-rto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkF64 = fp.FP34.Round(1.0000001+float64(i&1023)*1e-9, fp.RTO)
		}
	})
	b.Run("round-float64-to-bfloat16-rne", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkF64 = fp.Bfloat16.Round(1.0000001+float64(i&1023)*1e-9, fp.RNE)
		}
	})
}

// BenchmarkBackends compares the two generated backends: the data-driven
// evaluator (shared eval loops over coefficient tables) and the
// straight-line function backend (one specialized Go function per
// implementation, the shape of the artifact's generated C). The gap is the
// interpretation overhead the paper's C artifact never pays.
func BenchmarkBackends(b *testing.B) {
	in := sweep("exp2", 1<<14)
	b.Run("exp2/estrin-fma/data-driven", func(b *testing.B) {
		var acc float32
		for i := 0; i < b.N; i++ {
			acc += libm.Exp2EstrinFMA(in[i&(1<<14-1)])
		}
		sinkF32 = acc
	})
	gen := libm.GeneratedFuncs["exp2/rlibm-estrin-fma"]
	b.Run("exp2/estrin-fma/straight-line", func(b *testing.B) {
		var acc float64
		for i := 0; i < b.N; i++ {
			acc += gen(float64(in[i&(1<<14-1)]))
		}
		sinkF64 = acc
	})
}

// BenchmarkGenerate documents the offline cost of the full pipeline
// (oracle + intervals + LP + adapt + validate) at a small exhaustive width.
// Not a paper table; useful to track regressions in the generator.
func BenchmarkGenerate(b *testing.B) {
	for _, s := range []poly.Scheme{poly.Horner, poly.EstrinFMA} {
		b.Run("exp2/12bit/"+s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.Generate(context.Background(), core.Config{
					Fn:     oracle.Exp2,
					Scheme: s,
					Input:  fp.Format{Bits: 12, ExpBits: 8},
					Seed:   1,
					// Serial: this benchmark tracks the single-thread cost.
					Workers: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGenerateWorkers measures the wall-clock scaling of the parallel
// pipeline on an exp-family function in its realistic shape — GenerateAll
// over all four evaluation schemes (the `rlibm-gen -scheme all` workflow).
// With Workers > 1 the oracle/interval collection shards over input bit
// patterns and the four scheme solve loops run concurrently, so on a
// multi-core machine wall-clock shrinks toward max(solve) + collect/N.
// Results are bit-identical for every worker count (see
// TestGenerateDeterministic). Run with:
//
//	go test -bench BenchmarkGenerateWorkers -benchtime 3x
func BenchmarkGenerateWorkers(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("exp2/all-schemes/14bit/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.GenerateAll(context.Background(), core.Config{
					Fn:      oracle.Exp2,
					Input:   fp.Format{Bits: 14, ExpBits: 8},
					Seed:    1,
					Workers: workers,
				}, poly.PaperSchemes)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

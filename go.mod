module rlibm

go 1.22

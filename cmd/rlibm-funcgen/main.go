// Command rlibm-funcgen regenerates internal/libm/zz_generated_funcs.go —
// the straight-line function backend — from the data tables embedded in
// internal/libm (zz_generated_data.go). Run it after rlibm-gen -emit has
// refreshed the data file:
//
//	go run ./cmd/rlibm-funcgen
//	go run ./cmd/rlibm-funcgen -out some/other/path.go
package main

import (
	"flag"
	"fmt"
	"os"

	"rlibm/internal/libm"
)

func main() {
	out := flag.String("out", "internal/libm/zz_generated_funcs.go", "output path")
	flag.Parse()

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := libm.EmitGeneratedFuncs(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rlibm-funcgen:", err)
	os.Exit(1)
}

// Command rlibm-funcgen regenerates internal/libm/zz_generated_funcs.go —
// the straight-line function backend — from the data tables embedded in
// internal/libm (zz_generated_data.go). Run it after rlibm-gen -emit has
// refreshed the data file:
//
//	go run ./cmd/rlibm-funcgen
//	go run ./cmd/rlibm-funcgen -out some/other/path.go
//
// It also doubles as the oracle cache administration tool: passing
// -cache-dir opens the persistent cache (validating every segment and
// quarantining corrupt ones), optionally wiping it first with -cache-clear,
// compacts it when it has fragmented, and prints its stats.
package main

import (
	"flag"
	"fmt"
	"os"

	"rlibm/internal/cliflags"
	"rlibm/internal/libm"
	"rlibm/internal/oracle"
)

func main() {
	out := flag.String("out", "internal/libm/zz_generated_funcs.go", "output path")
	cacheOnly := flag.Bool("cache-only", false, "only administer the cache named by -cache-dir; do not regenerate the function backend")
	opts := cliflags.Register(flag.CommandLine)
	flag.Parse()

	ro, err := opts.Obs.Start()
	if err != nil {
		fatal(err)
	}
	defer ro.Close()

	if opts.Cache.Dir != "" || opts.Cache.Clear || opts.Cache.ReadOnly {
		adminCache(opts.Cache)
	} else if *cacheOnly {
		fatal(fmt.Errorf("-cache-only needs -cache-dir"))
	}
	if *cacheOnly {
		return
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := libm.EmitGeneratedFuncs(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

// adminCache opens (and thereby validates, quarantines and, past the
// fragmentation threshold, compacts) the persistent oracle cache, then
// reports its state. Opening read-only skips the compaction.
func adminCache(cacheFlags *oracle.CacheFlags) {
	st, err := cacheFlags.Open()
	if err != nil {
		fatal(err)
	}
	if err := st.Close(); err != nil {
		fatal(err)
	}
	s := st.Stats()
	compacted := ""
	if s.Compacted {
		compacted = ", compacted"
	}
	fmt.Fprintf(os.Stderr, "oracle cache %s: %d entries in %d segments (%d bytes), %d quarantined%s\n",
		s.Dir, s.LoadedEntries, s.Segments, s.SegmentBytes, s.Quarantined, compacted)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rlibm-funcgen:", err)
	os.Exit(1)
}

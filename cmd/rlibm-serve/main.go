// Command rlibm-serve exposes the generated correctly rounded elementary
// functions as a batched HTTP evaluation service (see internal/serve for the
// endpoint contract).
//
// Usage:
//
//	rlibm-serve [-addr :8090] [-max-batch 1048576]
//	            [-read-timeout 10s] [-write-timeout 30s] [-drain-timeout 10s]
//	            [-pprof] [-j 4] [-v|-q] [-trace trace.jsonl]
//
// Examples:
//
//	rlibm-serve -addr :8090 &
//	curl -s localhost:8090/healthz
//	curl -s -X POST localhost:8090/v1/eval/log2/rlibm-estrin-fma -d '{"x":[1,2,8]}'
//
// The server drains in-flight requests on SIGINT/SIGTERM (bounded by
// -drain-timeout) before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rlibm/internal/cliflags"
	"rlibm/internal/obs"
	"rlibm/internal/serve"
	"rlibm/pkg/rlibm"
)

func main() {
	var (
		addr         = flag.String("addr", ":8090", "listen address")
		maxBatch     = flag.Int("max-batch", 1<<20, "maximum elements per request")
		readTimeout  = flag.Duration("read-timeout", 10*time.Second, "per-request read timeout")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "per-request write timeout")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget for in-flight requests")
		pprofFlag    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		opts         = cliflags.Register(flag.CommandLine)
	)
	flag.Parse()

	run, err := opts.Start()
	if err != nil {
		fatal(err)
	}
	defer run.Close()

	// One parallelism budget: -j caps both request handling fan-out inside a
	// batch call and anything else pkg/rlibm parallelizes.
	rlibm.SetMaxBatchWorkers(opts.Workers)

	srv := serve.New(serve.Config{
		Addr:         *addr,
		MaxBatch:     *maxBatch,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		DrainTimeout: *drainTimeout,
		Log:          run.Log,
		Registry:     obs.Default(),
		Tracer:       run.Tracer,
		EnablePprof:  *pprofFlag,
	})

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := srv.ListenAndServe(ctx); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rlibm-serve:", err)
	os.Exit(1)
}

// Command rlibm-serve exposes the generated correctly rounded elementary
// functions as a batched evaluation service (see internal/serve for the
// endpoint and protocol contracts): an HTTP API on -addr and a
// persistent-connection streaming binary protocol on -stream-addr. Small
// requests from either transport coalesce into shared batch sweeps; bounded
// queues shed excess load with typed 429 / overloaded responses.
//
// Usage:
//
//	rlibm-serve [-addr :8090] [-stream-addr :8091] [-max-batch 1048576]
//	            [-coalesce-max-request 4096] [-coalesce-flush 32768]
//	            [-coalesce-delay 500us] [-max-pending 131072]
//	            [-max-inflight N] [-stream-window 128]
//	            [-read-timeout 10s] [-write-timeout 30s] [-drain-timeout 10s]
//	            [-trace-sample 0.01] [-canary-sample 0.001] [-canary-queue 1024]
//	            [-pprof] [-j 4] [-v|-q] [-trace trace.jsonl]
//
// Examples:
//
//	rlibm-serve -addr :8090 -stream-addr :8091 &
//	curl -s localhost:8090/healthz
//	curl -s -X POST localhost:8090/v1/eval/log2/rlibm-estrin-fma -d '{"x":[1,2,8]}'
//	curl -s localhost:8090/metricz          # Prometheus text exposition
//
// The server drains in-flight requests on both listeners on SIGINT/SIGTERM
// (bounded by -drain-timeout) before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rlibm/internal/cliflags"
	"rlibm/internal/obs"
	"rlibm/internal/serve"
	"rlibm/pkg/rlibm"
)

func main() {
	var (
		addr         = flag.String("addr", ":8090", "HTTP listen address")
		streamAddr   = flag.String("stream-addr", ":8091", "streaming binary protocol listen address (\"none\" disables)")
		maxBatch     = flag.Int("max-batch", 1<<20, "maximum elements per request")
		coalesceMax  = flag.Int("coalesce-max-request", 4096, "largest request that joins a coalesced sweep (negative disables coalescing)")
		flushElems   = flag.Int("coalesce-flush", 1<<15, "queued elements that trigger an immediate coalesced flush")
		flushDelay   = flag.Duration("coalesce-delay", 500*time.Microsecond, "longest a queued request waits before the accumulator flushes")
		maxPending   = flag.Int("max-pending", 0, "per-(func,scheme) coalescer queue bound in elements before shedding (0 = 4x flush)")
		maxInflight  = flag.Int("max-inflight", 0, "concurrent direct (non-coalesced) sweeps before shedding (0 = 4x GOMAXPROCS)")
		streamWindow = flag.Int("stream-window", 128, "in-flight requests per stream connection before reads pause")
		readTimeout  = flag.Duration("read-timeout", 10*time.Second, "per-request read timeout")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "per-request write timeout")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget for in-flight requests")
		pprofFlag    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		traceSample  = flag.Float64("trace-sample", 0, "fraction of eval requests emitting per-phase trace spans (needs -trace; 0 disables, 1 traces all)")
		canarySample = flag.Float64("canary-sample", 0, "fraction of served elements re-verified against the oracle in the background (0 disables the canary)")
		canaryQueue  = flag.Int("canary-queue", 1024, "pending canary verifications before new samples are dropped")
		backendName  = flag.String("backend", "auto", "batch-kernel backend: auto, go, vector, or asm (auto picks the fastest available; all are bit-identical)")
		opts         = cliflags.Register(flag.CommandLine)
	)
	flag.Parse()

	backend, err := rlibm.ParseBackend(*backendName)
	if err != nil {
		fatal(err)
	}
	if !backend.Available() {
		fatal(fmt.Errorf("rlibm-serve: backend %q is not available on this machine", backend))
	}

	run, err := opts.Start()
	if err != nil {
		fatal(err)
	}
	defer run.Close()

	// One parallelism budget: -j caps both request handling fan-out inside a
	// batch call and anything else pkg/rlibm parallelizes. WorkerCount
	// resolves the flag's 0-means-GOMAXPROCS convention; SetMaxBatchWorkers
	// itself rejects non-positive caps.
	rlibm.SetMaxBatchWorkers(opts.WorkerCount())

	srv := serve.New(serve.Config{
		Addr:               *addr,
		StreamAddr:         *streamAddr,
		MaxBatch:           *maxBatch,
		CoalesceMaxRequest: *coalesceMax,
		CoalesceFlushElems: *flushElems,
		CoalesceMaxDelay:   *flushDelay,
		MaxPendingElems:    *maxPending,
		MaxInflightBatches: *maxInflight,
		StreamWindow:       *streamWindow,
		ReadTimeout:        *readTimeout,
		WriteTimeout:       *writeTimeout,
		DrainTimeout:       *drainTimeout,
		Log:                run.Log,
		Registry:           obs.Default(),
		Tracer:             run.Tracer,
		TraceSample:        *traceSample,
		CanarySample:       *canarySample,
		CanaryQueue:        *canaryQueue,
		CanaryStore:        run.Store,
		EnablePprof:        *pprofFlag,
		Backend:            backend,
	})
	// Stop the canary (draining its queued verifications) before run.Close
	// tears down the oracle store it verifies against — defers run LIFO.
	defer srv.Close()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Both listeners share the signal context and drain concurrently on
	// shutdown; either one failing to serve takes the process down.
	errc := make(chan error, 2)
	n := 1
	go func() { errc <- srv.ListenAndServe(ctx) }()
	if *streamAddr != "none" && *streamAddr != "" {
		n++
		go func() { errc <- srv.ListenAndServeStream(ctx) }()
	}
	for i := 0; i < n; i++ {
		if err := <-errc; err != nil {
			stop() // tear the other listener down before exiting
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rlibm-serve:", err)
	os.Exit(1)
}

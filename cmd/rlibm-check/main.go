// Command rlibm-check is the correctness-testing framework of the artifact:
// it compares the generated library's results against the arbitrary-
// precision oracle for every requested function and variant, across all
// output formats from 10 to 32 bits (8-bit exponent) and all five standard
// rounding modes, and prints the number of wrong results (expected: 0).
//
// The paper's artifact streams 12 GB pre-generated MPFR oracle files over
// all 2^32 inputs; here the oracle is computed on the fly, so the one-shot
// sweep is stride-sampled by default (-stride). The RLIBM-32 claim — every
// one of the 2^32 float32 inputs — is proved by campaign mode (-campaign,
// with -smoke or -full): a checkpointed work queue that survives kills,
// resumes with bit-identical tallies, and shards across machines by merging
// oracle-cache exports (-cache-export/-cache-import).
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"rlibm/internal/campaign"
	"rlibm/internal/cliflags"
	"rlibm/internal/core"
	"rlibm/internal/fp"
	"rlibm/internal/libm"
	"rlibm/internal/obs"
	"rlibm/internal/oracle"
)

func main() {
	var (
		fnFlag     = flag.String("func", "all", "function to check (all or exp, exp2, exp10, log, log2, log10)")
		schemeFlag = flag.String("scheme", "all", "variant to check (all or rlibm, rlibm-knuth, rlibm-estrin, rlibm-estrin-fma)")
		stride     = flag.Uint64("stride", 65536, "check every stride-th float32 bit pattern")
		random     = flag.Int("random", 200000, "additional uniformly random float32 inputs")
		widths     = flag.String("widths", "10,16,19,24,27,32", "comma-separated output widths to verify")
		seed       = flag.Int64("seed", time.Now().UnixNano(), "seed for the random inputs (-smoke pins 1 unless set explicitly)")
		useFuncs   = flag.Bool("funcs", false, "check the straight-line function backend instead of the data-driven one")
		maxWrong   = flag.Int("max-wrong", 0, "exit zero if at most this many wrong results are found (the shipped stride-trained polynomials have a documented ~3e-5 single-ulp residual at 32 bits; see DESIGN.md)")

		campaignDir = flag.String("campaign", "", "run as a resumable campaign, checkpointing to this state directory")
		smoke       = flag.Bool("smoke", false, "campaign mode: the CI-sized deterministic smoke slice (minutes cold, seconds warm)")
		full        = flag.Bool("full", false, "campaign mode: the full RLIBM-32 sweep — every float32 bit pattern (hours)")
		restart     = flag.Bool("restart", false, "discard the campaign checkpoint and start over")
		unitSize    = flag.Uint64("unit", 0, "campaign unit size in inputs — the resume grain (0 = mode default)")
		progress    = flag.Duration("progress", 15*time.Second, "campaign progress/ETA logging interval (0 = none)")

		cacheExport = flag.String("cache-export", "", "after the run, export the oracle cache as one mergeable segment to this file")
		cacheImport = flag.String("cache-import", "", "before the run, import these comma-separated segment files or directories into the cache")

		opts = cliflags.Register(flag.CommandLine)
	)
	flag.Parse()

	var widthList []int
	for _, wstr := range strings.Split(*widths, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(wstr))
		if err != nil || w < 10 || w > 32 {
			fmt.Fprintf(os.Stderr, "rlibm-check: bad width %q\n", wstr)
			os.Exit(1)
		}
		widthList = append(widthList, w)
	}

	campaignMode := *campaignDir != "" || *smoke || *full
	if *smoke && *full {
		fatal(fmt.Errorf("-smoke and -full are mutually exclusive"))
	}
	if (*restart || *unitSize != 0) && !campaignMode {
		fatal(fmt.Errorf("-restart/-unit need campaign mode (-campaign, -smoke or -full)"))
	}
	// The smoke slice must be byte-for-byte reproducible across CI runs, so
	// it pins the seed unless the operator chose one.
	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})
	if *smoke && !seedSet {
		*seed = 1
	}

	ro, err := opts.Obs.Start()
	if err != nil {
		fatal(err)
	}
	defer ro.Close()
	// Always log the seed: a failing random input is worthless if the run's
	// seed died with the process.
	ro.Log.Infof("random seed: %d", *seed)

	store, err := opts.Cache.Open()
	if err != nil {
		fatal(err)
	}
	if (*cacheExport != "" || *cacheImport != "") && store == nil {
		fatal(fmt.Errorf("-cache-export/-cache-import need -cache-dir"))
	}
	var cache *oracle.Cache
	if store != nil {
		st := store.Stats()
		ro.Log.Infof("oracle cache: %s (%d entries in %d segments, %d quarantined%s)",
			st.Dir, st.LoadedEntries, st.Segments, st.Quarantined,
			map[bool]string{true: ", readonly"}[st.ReadOnly])
		// Imports land before AttachStore so the merged shard entries preload
		// into the in-memory stripes with everything else.
		if *cacheImport != "" {
			if err := runImports(store, *cacheImport, ro.Log); err != nil {
				fatal(err)
			}
		}
		// The sweep asks for many (width, mode) roundings of each input; with
		// a persistent cache a warm run answers them all from disk and never
		// starts a Ziv loop.
		cache = oracle.NewCache(0)
		cache.AttachStore(store)
	}

	code := 0
	if campaignMode {
		code = runCampaign(campaignArgs{
			dir: *campaignDir, smoke: *smoke, full: *full, restart: *restart,
			fn: *fnFlag, scheme: *schemeFlag, widths: widthList,
			stride: *stride, random: *random, seed: *seed, unitSize: *unitSize,
			useFuncs: *useFuncs, maxWrong: *maxWrong, progress: *progress,
		}, opts, ro, store, cache)
	} else {
		code = runOneShot(*fnFlag, *schemeFlag, *stride, *random, widthList,
			*seed, *useFuncs, *maxWrong, opts, ro, store, cache)
	}

	if store != nil {
		if *cacheExport != "" {
			n, err := store.Export(*cacheExport)
			if err != nil {
				fatal(err)
			}
			ro.Log.Infof("oracle cache: exported %d entries to %s", n, *cacheExport)
		}
		if err := store.Close(); err != nil {
			ro.Log.Infof("oracle cache flush failed: %v", err)
		}
	}
	if err := ro.Close(); err != nil {
		fatal(err)
	}
	os.Exit(code)
}

// runImports merges the -cache-import list (segment files or directories of
// segments) into the store.
func runImports(store *oracle.Store, list string, log *obs.Logger) error {
	for _, path := range strings.Split(list, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		info, err := os.Stat(path)
		if err != nil {
			return fmt.Errorf("-cache-import %s: %w", path, err)
		}
		if info.IsDir() {
			mr, err := store.Merge(path)
			if err != nil {
				return fmt.Errorf("-cache-import %s: %w", path, err)
			}
			log.Infof("oracle cache: merged %d segments from %s (%d added, %d duplicate, %d quarantined)",
				mr.Files, path, mr.Added, mr.Skipped, mr.Quarantined)
			continue
		}
		ir, err := store.Import(path)
		if err != nil {
			return fmt.Errorf("-cache-import %s: %w", path, err)
		}
		if ir.Quarantined {
			log.Infof("oracle cache: import %s failed validation (%s); quarantined a copy, continuing", path, ir.Cause)
			continue
		}
		log.Infof("oracle cache: imported %s (%d added, %d duplicate)", path, ir.Added, ir.Skipped)
	}
	return nil
}

type campaignArgs struct {
	dir         string
	smoke, full bool
	restart     bool
	fn, scheme  string
	widths      []int
	stride      uint64
	random      int
	seed        int64
	unitSize    uint64
	useFuncs    bool
	maxWrong    int
	progress    time.Duration
}

// runCampaign builds the plan for the selected mode and drives the engine
// under signal cancellation, returning the process exit code: 0 on a clean
// complete run, 1 on too many wrong results, 3 on interruption (the
// checkpoint holds the committed prefix; rerun with the same flags).
func runCampaign(a campaignArgs, opts *cliflags.Options, ro *obs.RunObs, store *oracle.Store, cache *oracle.Cache) int {
	funcs := campaign.AllFuncNames()
	if a.fn != "all" {
		funcs = []string{a.fn}
	}
	schemes := campaign.AllSchemeNames()
	if a.scheme != "all" {
		schemes = []string{a.scheme}
	}

	var cfg campaign.Config
	mode := "custom"
	switch {
	case a.smoke:
		mode = "smoke"
		cfg = campaign.SmokeConfig(funcs, schemes, a.widths, a.seed)
	case a.full:
		mode = "full"
		cfg = campaign.FullConfig(funcs, schemes, a.widths, a.seed, a.random)
	default:
		cfg = campaign.Config{
			Funcs: funcs, Schemes: schemes, Widths: a.widths,
			Lanes: campaign.AllLanes, Stride: a.stride, RandomN: a.random,
			Seed: a.seed,
		}
	}
	if a.unitSize != 0 {
		cfg.UnitSize = a.unitSize
	}
	cfg.UseFuncs = a.useFuncs

	plan, err := campaign.NewPlan(cfg)
	if err != nil {
		fatal(err)
	}

	checkpoint := ""
	if a.dir != "" {
		if err := os.MkdirAll(a.dir, 0o755); err != nil {
			fatal(err)
		}
		checkpoint = campaign.CheckpointPathIn(a.dir)
		if a.restart {
			if err := campaign.RemoveCheckpoint(checkpoint); err != nil {
				fatal(err)
			}
			ro.Log.Infof("campaign: checkpoint discarded, starting over")
		}
	}
	ro.Log.Infof("campaign %s: plan %.12s, %d units", mode, plan.Hash, len(plan.Units))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	e := &campaign.Engine{
		Plan:           plan,
		Workers:        opts.WorkerCount(),
		CheckpointPath: checkpoint,
		Cache:          cache,
		Log:            ro.Log,
		ProgressEvery:  a.progress,
	}
	start := time.Now()
	totals, runErr := e.Run(ctx)
	if totals == nil {
		fatal(runErr)
	}

	for _, c := range totals.Combos {
		status := "OK"
		if c.Wrong > 0 {
			status = "WRONG: " + c.First
		}
		if ro.Log.Enabled(obs.LevelInfo) {
			fmt.Printf("%-6s %-18s %-7s checked %10d  wrong results: %d (%s)\n",
				c.Fn, c.Scheme, c.Lane, c.Checked, c.Wrong, status)
		}
	}
	fmt.Printf("campaign %s: %d/%d units, checked %d, wrong %d\n",
		mode, totals.UnitsDone, totals.UnitsTotal, totals.Checked, totals.Wrong)

	if opts.Obs.ReportPath != "" {
		rep := campaign.NewReport(mode, plan)
		flag.Visit(func(f *flag.Flag) { rep.Config[f.Name] = f.Value.String() })
		rep.Config["seed"] = strconv.FormatInt(a.seed, 10)
		rep.SetTotals(totals, time.Since(start))
		if store != nil {
			hits, misses := cache.Stats()
			rep.AttachCache(store.Stats(), hits, misses)
		}
		rep.AttachMetrics(obs.Default())
		if err := rep.WriteFile(opts.Obs.ReportPath); err != nil {
			fatal(err)
		}
	}

	if totals.Interrupted {
		fmt.Fprintf(os.Stderr, "rlibm-check: interrupted with %d of %d units committed; rerun with the same flags to resume\n",
			totals.UnitsDone, totals.UnitsTotal)
		return 3
	}
	if totals.Wrong > int64(a.maxWrong) {
		return 1
	}
	return 0
}

// runOneShot is the original single-pass checker: stride sweep plus seeded
// random inputs per (function, scheme), no checkpointing.
func runOneShot(fnFlag, schemeFlag string, stride uint64, random int, widthList []int,
	seed int64, useFuncs bool, maxWrong int, opts *cliflags.Options, ro *obs.RunObs,
	store *oracle.Store, cache *oracle.Cache) int {

	var report *core.RunReport
	if opts.Obs.ReportPath != "" {
		report = core.NewRunReport("rlibm-check")
		flag.Visit(func(f *flag.Flag) { report.Config[f.Name] = f.Value.String() })
		// The seed default is wall-clock derived; record the resolved value
		// so any failing random input is reproducible from the report alone.
		report.Config["seed"] = strconv.FormatInt(seed, 10)
	}

	totalWrong := 0
	for _, f := range libm.Funcs {
		if fnFlag != "all" && fnFlag != f.Name {
			continue
		}
		ofn, err := oracle.ParseFunc(f.Name)
		if err != nil {
			fatal(err)
		}
		for _, s := range libm.Schemes {
			if schemeFlag != "all" && schemeFlag != s.String() {
				continue
			}
			impl := f.Double
			if useFuncs {
				gen := libm.GeneratedFuncs[f.Name+"/"+s.String()]
				impl = func(x float32, _ libm.Scheme) float64 { return gen(float64(x)) }
			}
			sp := ro.Tracer.StartSpan("check", obs.Attrs{"fn": f.Name, "scheme": s.String()})
			checked, wrong, first := checkOne(ofn, impl, s, stride, random, widthList, seed, opts.WorkerCount(), cache)
			sp.End(obs.Attrs{"checked": checked, "wrong": wrong})
			status := "OK"
			if wrong > 0 {
				status = "WRONG: " + first
			}
			if ro.Log.Enabled(obs.LevelInfo) {
				fmt.Printf("%-6s %-18s checked %9d  wrong results: %d (%s)\n",
					f.Name, s, checked, wrong, status)
			}
			if report != nil {
				report.AddCheck(f.Name, s.String(), checked, wrong, first)
			}
			totalWrong += wrong
		}
	}
	if report != nil {
		if store != nil {
			hits, misses := cache.Stats()
			report.AttachCache(store.Stats(), hits, misses)
		}
		report.AttachMetrics(obs.Default())
		if err := report.WriteFile(opts.Obs.ReportPath); err != nil {
			fatal(err)
		}
	}
	if totalWrong > maxWrong {
		return 1
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rlibm-check:", err)
	os.Exit(1)
}

// checkOne sweeps one implementation variant, sharded across workers. The
// stride sweep is interleaved by index (worker w takes every workers-th
// input) so an exhaustive -stride 1 run never materializes the 2^32 inputs;
// the seeded random inputs are drawn once, serially, and sharded the same
// way. Every per-input verification is independent, so summing the counts
// and taking the failure with the smallest global input index reports
// exactly what a serial sweep would.
func checkOne(fn oracle.Func, impl func(float32, libm.Scheme) float64, s libm.Scheme,
	stride uint64, random int, widths []int, seed int64, workers int, cache *oracle.Cache) (checked, wrong int, first string) {

	rng := rand.New(rand.NewSource(seed))
	randoms := make([]float32, random)
	for i := range randoms {
		randoms[i] = math.Float32frombits(rng.Uint32())
	}
	sweepCount := (uint64(1<<32) + stride - 1) / stride

	if workers < 1 {
		workers = 1
	}
	type report struct {
		checked, wrong int
		firstIdx       uint64 // global input index of the first failure
		first          string
	}
	reports := make([]report, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rep := &reports[w]
			rep.firstIdx = math.MaxUint64
			verify := func(idx uint64, x float32) {
				fx := float64(x)
				if math.IsNaN(fx) || math.IsInf(fx, 0) || fx == 0 {
					return
				}
				if fn.IsLog() && fx <= 0 {
					return
				}
				d := impl(x, s)
				// At most one oracle evaluation per input, shared by every
				// (width, mode) pair — and none at all when the cache answers
				// them all (a warm -cache-dir run).
				var val *oracle.Value
				wantFor := func(t fp.Format, m fp.Mode) float64 {
					if cache != nil {
						if y, ok := cache.Lookup(fn, fx, t, m); ok {
							return y
						}
					}
					if val == nil {
						val = oracle.Compute(fn, fx)
					}
					y := val.Round(t, m)
					if cache != nil {
						cache.Insert(fn, fx, t, m, y)
					}
					return y
				}
				for _, wbits := range widths {
					t := fp.Format{Bits: wbits, ExpBits: 8}
					for _, m := range fp.StandardModes {
						got := t.Round(d, m)
						want := wantFor(t, m)
						rep.checked++
						if math.Float64bits(got) != math.Float64bits(want) {
							rep.wrong++
							if idx < rep.firstIdx {
								rep.firstIdx = idx
								rep.first = fmt.Sprintf("%v(%g) w=%d %v: got %g want %g", fn, x, wbits, m, got, want)
							}
						}
					}
				}
			}
			for i := uint64(w); i < sweepCount; i += uint64(workers) {
				verify(i, math.Float32frombits(uint32(i*stride)))
			}
			for j := w; j < len(randoms); j += workers {
				verify(sweepCount+uint64(j), randoms[j])
			}
		}(w)
	}
	wg.Wait()
	firstIdx := uint64(math.MaxUint64)
	for _, rep := range reports {
		checked += rep.checked
		wrong += rep.wrong
		if rep.firstIdx < firstIdx {
			firstIdx = rep.firstIdx
			first = rep.first
		}
	}
	return checked, wrong, first
}

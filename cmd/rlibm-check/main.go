// Command rlibm-check is the correctness-testing framework of the artifact:
// it compares the generated library's results against the arbitrary-
// precision oracle for every requested function and variant, across all
// output formats from 10 to 32 bits (8-bit exponent) and all five standard
// rounding modes, and prints the number of wrong results (expected: 0).
//
// The paper's artifact streams 12 GB pre-generated MPFR oracle files over
// all 2^32 inputs; here the oracle is computed on the fly, so the sweep is
// stride-sampled by default (-stride). Use -stride 1 -widths 32 for an
// exhaustive single-width run if you have hours to spare.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"rlibm/internal/cliflags"
	"rlibm/internal/core"
	"rlibm/internal/fp"
	"rlibm/internal/libm"
	"rlibm/internal/obs"
	"rlibm/internal/oracle"
)

func main() {
	var (
		fnFlag     = flag.String("func", "all", "function to check (all or exp, exp2, exp10, log, log2, log10)")
		schemeFlag = flag.String("scheme", "all", "variant to check (all or rlibm, rlibm-knuth, rlibm-estrin, rlibm-estrin-fma)")
		stride     = flag.Uint64("stride", 65536, "check every stride-th float32 bit pattern")
		random     = flag.Int("random", 200000, "additional uniformly random float32 inputs")
		widths     = flag.String("widths", "10,16,19,24,27,32", "comma-separated output widths to verify")
		seed       = flag.Int64("seed", time.Now().UnixNano(), "seed for the random inputs")
		useFuncs   = flag.Bool("funcs", false, "check the straight-line function backend instead of the data-driven one")
		maxWrong   = flag.Int("max-wrong", 0, "exit zero if at most this many wrong results are found (the shipped stride-trained polynomials have a documented ~3e-5 single-ulp residual at 32 bits; see DESIGN.md)")
		opts       = cliflags.Register(flag.CommandLine)
	)
	flag.Parse()

	var widthList []int
	for _, wstr := range strings.Split(*widths, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(wstr))
		if err != nil || w < 10 || w > 32 {
			fmt.Fprintf(os.Stderr, "rlibm-check: bad width %q\n", wstr)
			os.Exit(1)
		}
		widthList = append(widthList, w)
	}

	ro, err := opts.Obs.Start()
	if err != nil {
		fatal(err)
	}
	defer ro.Close()
	store, err := opts.Cache.Open()
	if err != nil {
		fatal(err)
	}
	// The sweep asks for many (width, mode) roundings of each input; with a
	// persistent cache a warm run answers them all from disk and never starts
	// a Ziv loop.
	var cache *oracle.Cache
	if store != nil {
		st := store.Stats()
		ro.Log.Infof("oracle cache: %s (%d entries in %d segments, %d quarantined%s)",
			st.Dir, st.LoadedEntries, st.Segments, st.Quarantined,
			map[bool]string{true: ", readonly"}[st.ReadOnly])
		cache = oracle.NewCache(0)
		cache.AttachStore(store)
	}
	var report *core.RunReport
	if opts.Obs.ReportPath != "" {
		report = core.NewRunReport("rlibm-check")
		flag.Visit(func(f *flag.Flag) { report.Config[f.Name] = f.Value.String() })
	}

	totalWrong := 0
	for _, f := range libm.Funcs {
		if *fnFlag != "all" && *fnFlag != f.Name {
			continue
		}
		ofn, err := oracle.ParseFunc(f.Name)
		if err != nil {
			fatal(err)
		}
		for _, s := range libm.Schemes {
			if *schemeFlag != "all" && *schemeFlag != s.String() {
				continue
			}
			impl := f.Double
			if *useFuncs {
				gen := libm.GeneratedFuncs[f.Name+"/"+s.String()]
				impl = func(x float32, _ libm.Scheme) float64 { return gen(float64(x)) }
			}
			sp := ro.Tracer.StartSpan("check", obs.Attrs{"fn": f.Name, "scheme": s.String()})
			checked, wrong, first := checkOne(ofn, impl, s, *stride, *random, widthList, *seed, opts.WorkerCount(), cache)
			sp.End(obs.Attrs{"checked": checked, "wrong": wrong})
			status := "OK"
			if wrong > 0 {
				status = "WRONG: " + first
			}
			if ro.Log.Enabled(obs.LevelInfo) {
				fmt.Printf("%-6s %-18s checked %9d  wrong results: %d (%s)\n",
					f.Name, s, checked, wrong, status)
			}
			if report != nil {
				report.AddCheck(f.Name, s.String(), checked, wrong, first)
			}
			totalWrong += wrong
		}
	}
	if store != nil {
		if err := store.Close(); err != nil {
			ro.Log.Infof("oracle cache flush failed: %v", err)
		}
		if report != nil {
			hits, misses := cache.Stats()
			report.AttachCache(store.Stats(), hits, misses)
		}
	}
	if report != nil {
		report.AttachMetrics(obs.Default())
		if err := report.WriteFile(opts.Obs.ReportPath); err != nil {
			fatal(err)
		}
	}
	if err := ro.Close(); err != nil {
		fatal(err)
	}
	if totalWrong > *maxWrong {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rlibm-check:", err)
	os.Exit(1)
}

// checkOne sweeps one implementation variant, sharded across workers. The
// stride sweep is interleaved by index (worker w takes every workers-th
// input) so an exhaustive -stride 1 run never materializes the 2^32 inputs;
// the seeded random inputs are drawn once, serially, and sharded the same
// way. Every per-input verification is independent, so summing the counts
// and taking the failure with the smallest global input index reports
// exactly what a serial sweep would.
func checkOne(fn oracle.Func, impl func(float32, libm.Scheme) float64, s libm.Scheme,
	stride uint64, random int, widths []int, seed int64, workers int, cache *oracle.Cache) (checked, wrong int, first string) {

	rng := rand.New(rand.NewSource(seed))
	randoms := make([]float32, random)
	for i := range randoms {
		randoms[i] = math.Float32frombits(rng.Uint32())
	}
	sweepCount := (uint64(1<<32) + stride - 1) / stride

	if workers < 1 {
		workers = 1
	}
	type report struct {
		checked, wrong int
		firstIdx       uint64 // global input index of the first failure
		first          string
	}
	reports := make([]report, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rep := &reports[w]
			rep.firstIdx = math.MaxUint64
			verify := func(idx uint64, x float32) {
				fx := float64(x)
				if math.IsNaN(fx) || math.IsInf(fx, 0) || fx == 0 {
					return
				}
				if fn.IsLog() && fx <= 0 {
					return
				}
				d := impl(x, s)
				// At most one oracle evaluation per input, shared by every
				// (width, mode) pair — and none at all when the cache answers
				// them all (a warm -cache-dir run).
				var val *oracle.Value
				wantFor := func(t fp.Format, m fp.Mode) float64 {
					if cache != nil {
						if y, ok := cache.Lookup(fn, fx, t, m); ok {
							return y
						}
					}
					if val == nil {
						val = oracle.Compute(fn, fx)
					}
					y := val.Round(t, m)
					if cache != nil {
						cache.Insert(fn, fx, t, m, y)
					}
					return y
				}
				for _, wbits := range widths {
					t := fp.Format{Bits: wbits, ExpBits: 8}
					for _, m := range fp.StandardModes {
						got := t.Round(d, m)
						want := wantFor(t, m)
						rep.checked++
						if math.Float64bits(got) != math.Float64bits(want) {
							rep.wrong++
							if idx < rep.firstIdx {
								rep.firstIdx = idx
								rep.first = fmt.Sprintf("%v(%g) w=%d %v: got %g want %g", fn, x, wbits, m, got, want)
							}
						}
					}
				}
			}
			for i := uint64(w); i < sweepCount; i += uint64(workers) {
				verify(i, math.Float32frombits(uint32(i*stride)))
			}
			for j := w; j < len(randoms); j += workers {
				verify(sweepCount+uint64(j), randoms[j])
			}
		}(w)
	}
	wg.Wait()
	firstIdx := uint64(math.MaxUint64)
	for _, rep := range reports {
		checked += rep.checked
		wrong += rep.wrong
		if rep.firstIdx < firstIdx {
			firstIdx = rep.firstIdx
			first = rep.first
		}
	}
	return checked, wrong, first
}

// Command rlibm-gen runs the polynomial generation pipeline (the paper's
// Figure 1 / Algorithm 2) and emits either a human-readable report, a
// Table-1-style summary, or the Go data file embedded in internal/libm.
//
// Usage:
//
//	rlibm-gen [-func all|exp|exp2,log2|...] [-scheme all|horner|knuth|estrin|estrin-fma]
//	          [-bits 32] [-expbits 8] [-stride 4096] [-seed 1] [-j 8]
//	          [-emit libmdata.go] [-table1]
//	          [-v|-q] [-trace trace.jsonl] [-report report.json]
//	          [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Examples:
//
//	rlibm-gen -func log2 -scheme estrin-fma -bits 20 -stride 1
//	rlibm-gen -func all -scheme all -bits 32 -stride 4096 -emit internal/libm/zz_generated_data.go
//	rlibm-gen -func exp2,log2 -bits 14 -report run.json -trace trace.jsonl
//	rlibm-gen -table1 -bits 24 -stride 16
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"rlibm/internal/cliflags"
	"rlibm/internal/core"
	"rlibm/internal/fp"
	"rlibm/internal/obs"
	"rlibm/internal/oracle"
	"rlibm/internal/poly"
)

func main() {
	var (
		fnFlag     = flag.String("func", "all", "comma-separated functions to generate (all = the six paper functions; names: exp, exp2, exp10, log, log2, log10, sinpi, cospi)")
		schemeFlag = flag.String("scheme", "all", "evaluation scheme (all or one of horner, knuth, estrin, estrin-fma)")
		bits       = flag.Int("bits", 32, "input format width in bits")
		expBits    = flag.Int("expbits", 8, "input format exponent width")
		stride     = flag.Uint64("stride", 4093, "enumerate every stride-th input bit pattern (a prime avoids aliasing with mantissa bit boundaries)")
		seed       = flag.Int64("seed", 1, "random seed for constraint sampling")
		degree     = flag.Int("degree", 0, "starting polynomial degree (0 = per-function default)")
		pieces     = flag.Int("pieces", 0, "piecewise pieces (0 = per-function default)")
		emit       = flag.String("emit", "", "write the internal/libm Go data file to this path")
		table1     = flag.Bool("table1", false, "print a Table-1-style summary")
		timeout    = flag.Duration("timeout", 0, "abort generation after this long (0 = no limit); cancellation reaches down into the simplex pivot loop")
		opts       = cliflags.Register(flag.CommandLine)
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	input := fp.Format{Bits: *bits, ExpBits: *expBits}
	if err := input.Validate(); err != nil {
		fatal(err)
	}

	fns := oracle.Funcs
	if *fnFlag != "all" {
		fns = nil
		for _, name := range strings.Split(*fnFlag, ",") {
			fn, err := oracle.ParseFunc(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			fns = append(fns, fn)
		}
	}
	schemes := poly.PaperSchemes
	if *schemeFlag != "all" {
		s, err := poly.ParseScheme(*schemeFlag)
		if err != nil {
			fatal(err)
		}
		schemes = []poly.Scheme{s}
	}

	ro, err := opts.Obs.Start()
	if err != nil {
		fatal(err)
	}
	defer ro.Close()

	store, err := opts.Cache.Open()
	if err != nil {
		fatal(err)
	}
	if store != nil {
		st := store.Stats()
		ro.Log.Infof("oracle cache: %s (%d entries in %d segments, %d quarantined%s)",
			st.Dir, st.LoadedEntries, st.Segments, st.Quarantined,
			map[bool]string{true: ", readonly"}[st.ReadOnly])
	}

	reg := obs.NewRegistry()
	var report *core.RunReport
	if opts.Obs.ReportPath != "" {
		report = core.NewRunReport("rlibm-gen")
		flag.Visit(func(f *flag.Flag) { report.Config[f.Name] = f.Value.String() })
		report.Config["func"] = *fnFlag
		report.Config["bits"] = strconv.Itoa(*bits)
	}

	failed := false
	var results []*core.Result
	var cacheHits, cacheMisses int64
	for _, fn := range fns {
		cfg := core.Config{
			Fn:      fn,
			Input:   input,
			Stride:  *stride,
			Seed:    *seed,
			Degree:  *degree,
			Pieces:  *pieces,
			Workers: opts.Workers,
			Store:   store,
			Logger:  ro.Log,
			Metrics: reg,
			Trace:   ro.Tracer,
		}
		start := time.Now()
		rs, err := core.GenerateAll(ctx, cfg, schemes)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				// The -timeout budget covers the whole run; once it fires,
				// every remaining function would fail identically. Seal the
				// cache first: the oracle work done so far is reusable.
				if store != nil {
					if cerr := store.Close(); cerr != nil {
						ro.Log.Infof("oracle cache flush failed: %v", cerr)
					}
				}
				if report != nil {
					for _, scheme := range schemes {
						report.AddFailure(fn.String(), scheme.String(), err)
					}
					if store != nil {
						report.AttachCache(store.Stats(), cacheHits, cacheMisses)
					}
					report.AttachMetrics(reg, obs.Default())
					if werr := report.WriteFile(opts.Obs.ReportPath); werr != nil {
						fatal(werr)
					}
				}
				fatal(fmt.Errorf("%v: %w", fn, err))
			}
			// With a report requested the run keeps going: the report marks
			// the failed schemes solved:false and the exit status is nonzero,
			// so CI sees both the failure and everything else that happened.
			if report == nil {
				fatal(fmt.Errorf("%v: %w", fn, err))
			}
			ro.Log.Infof("%v: FAILED: %v", fn, err)
			for _, scheme := range schemes {
				report.AddFailure(fn.String(), scheme.String(), err)
			}
			failed = true
			continue
		}
		ro.Log.Infof("%v: all schemes done in %v", fn, time.Since(start).Round(time.Millisecond))
		if len(rs) > 0 {
			// The per-run cache counters are cumulative and shared by every
			// scheme of this function's run.
			cacheHits += rs[0].Stats.OracleHits
			cacheMisses += rs[0].Stats.OracleMisses
		}
		for _, res := range rs {
			ro.Log.Infof("  generated %s (%d constraints, %d LP solves, %d pivots, %d iterations, collect %v, solve %v, oracle cache %d hits / %d misses)",
				res.Describe(), res.Stats.Constraints, res.Stats.LPSolves, res.Stats.LPPivots, res.Stats.Iterations,
				res.Stats.CollectTime.Round(time.Millisecond), res.Stats.SolveTime.Round(time.Millisecond),
				res.Stats.OracleHits, res.Stats.OracleMisses)
			results = append(results, res)
			if report != nil {
				report.AddResult(res)
			}
			if *emit == "" && !*table1 {
				printResult(res)
			}
		}
	}

	if *table1 {
		core.PrintTable1(os.Stdout, results)
	}
	if *emit != "" {
		f, err := os.Create(*emit)
		if err != nil {
			fatal(err)
		}
		if err := core.EmitLibmData(f, results); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		ro.Log.Infof("wrote %s", *emit)
	}
	if store != nil {
		// Seal before reading Stats so AppendedEntries reflects what actually
		// reached disk; a flush failure loses the warm start, not the results.
		if err := store.Close(); err != nil {
			ro.Log.Infof("oracle cache flush failed: %v", err)
		}
		if report != nil {
			report.AttachCache(store.Stats(), cacheHits, cacheMisses)
		}
	}
	if report != nil {
		report.AttachMetrics(reg, obs.Default())
		if err := report.WriteFile(opts.Obs.ReportPath); err != nil {
			fatal(err)
		}
		ro.Log.Infof("wrote %s", opts.Obs.ReportPath)
	}
	if err := ro.Close(); err != nil {
		fatal(err)
	}
	if failed {
		os.Exit(1)
	}
}

func printResult(res *core.Result) {
	fmt.Printf("%s\n", res.Describe())
	for i, p := range res.Pieces {
		fmt.Printf("  piece %d over [%g, %g]:\n", i, p.Lo, p.Hi)
		for j, c := range p.Coeffs {
			fmt.Printf("    c%d = %.17g\n", j, c)
		}
		if a := p.Eval.AdaptedCoeffs(); a != nil {
			for j, c := range a {
				fmt.Printf("    alpha%d = %.17g\n", j, c)
			}
		}
	}
	for b, y := range res.Specials {
		fmt.Printf("  special: x=%g -> %.17g\n", math.Float64frombits(b), y)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rlibm-gen:", err)
	os.Exit(1)
}

package main

import (
	"testing"
	"time"
)

func TestResolveReportPath(t *testing.T) {
	now := time.Date(2026, 8, 5, 12, 34, 56, 0, time.UTC)
	never := func(string) bool { return false }

	if got := resolveReportPath("custom.json", now, never); got != "custom.json" {
		t.Errorf("explicit path rewritten to %q", got)
	}
	if got := resolveReportPath("auto", now, never); got != "BENCH_20260805T123456Z.json" {
		t.Errorf("auto resolved to %q", got)
	}

	// Same-second collisions get _2, _3, ... instead of clobbering.
	taken := map[string]bool{
		"BENCH_20260805T123456Z.json":   true,
		"BENCH_20260805T123456Z_2.json": true,
	}
	got := resolveReportPath("auto", now, func(p string) bool { return taken[p] })
	if got != "BENCH_20260805T123456Z_3.json" {
		t.Errorf("collision resolved to %q, want BENCH_20260805T123456Z_3.json", got)
	}

	// An explicit path is the user's call even if it exists.
	if got := resolveReportPath("out.json", now, func(string) bool { return true }); got != "out.json" {
		t.Errorf("explicit existing path rewritten to %q", got)
	}
}

// Command rlibm-bench is the performance-testing framework: it times the 24
// generated implementations over dense input sweeps and prints the speedup
// report of the paper's Table 2 / Figure 6 — the equivalent of the
// artifact's runRLIBMAll.sh + SpeedupOverRLIBM.py.
//
// The paper counts cycles with rdtscp on a tuned Xeon; this harness measures
// wall-clock ns/op over the same kind of sweep, using the straight-line
// function backend (specialized code per implementation, like the
// artifact's generated C). Absolute numbers differ from the paper's
// testbed, but the quantity the paper reports — speedup relative to the
// RLibm/Horner baseline — is preserved.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"rlibm/internal/cliflags"
	"rlibm/internal/core"
	"rlibm/internal/fp"
	"rlibm/internal/libm"
	"rlibm/internal/obs"
	"rlibm/internal/oracle"
	"rlibm/internal/poly"
)

// benchReport is the machine-readable output of -out: per-scheme latencies,
// relative speedups, and (with -gen) the generation wall-clock and oracle
// cache behaviour.
type benchReport struct {
	Tool      string `json:"tool"`
	CreatedAt string `json:"created_at"`
	Git       string `json:"git,omitempty"`
	Inputs    int    `json:"inputs,omitempty"`
	Rounds    int    `json:"rounds,omitempty"`
	Seed      int64  `json:"seed"`

	// Functions maps function name -> scheme name -> best ns/op.
	Functions map[string]map[string]float64 `json:"functions,omitempty"`
	// AvgSpeedupPct maps scheme name -> average speedup over the Horner
	// baseline, in percent (the paper's Table 2 quantity).
	AvgSpeedupPct map[string]float64 `json:"avg_speedup_pct,omitempty"`

	Gen *genBenchReport `json:"gen,omitempty"`

	Cache *cacheBenchReport `json:"cache,omitempty"`

	Serve *serveBenchReport `json:"serve,omitempty"`
}

// cacheBenchReport is the -cache-bench section: the same generation run
// cold (empty cache directory), warm (second run over the directory the cold
// run filled), and with no persistent cache at all, plus the determinism
// cross-check that all three produce bit-identical coefficients.
type cacheBenchReport struct {
	Bits    int    `json:"bits"`
	Workers int    `json:"workers"`
	Dir     string `json:"dir"`

	ColdCollectMs    float64 `json:"cold_collect_ms"`
	WarmCollectMs    float64 `json:"warm_collect_ms"`
	NoCacheCollectMs float64 `json:"nocache_collect_ms"`
	ColdTotalMs      float64 `json:"cold_total_ms"`
	WarmTotalMs      float64 `json:"warm_total_ms"`
	// CollectSpeedup is cold collect over warm collect — the quantity the
	// persistent cache exists to improve.
	CollectSpeedup float64 `json:"collect_speedup"`

	ColdMisses      int64 `json:"cold_oracle_misses"`
	WarmHits        int64 `json:"warm_oracle_hits"`
	WarmMisses      int64 `json:"warm_oracle_misses"`
	AppendedEntries int64 `json:"appended_entries"`

	CoeffsIdentical bool `json:"coeffs_identical"`
}

// genBenchReport is the -gen section: pipeline wall-clock serial vs
// parallel, plus the oracle cache hit rate of the parallel run.
type genBenchReport struct {
	Bits          int     `json:"bits"`
	Workers       int     `json:"workers"`
	SerialMs      float64 `json:"serial_ms"`
	ParallelMs    float64 `json:"parallel_ms"`
	Speedup       float64 `json:"speedup"`
	OracleHits    int64   `json:"oracle_hits"`
	OracleMisses  int64   `json:"oracle_misses"`
	OracleHitRate float64 `json:"oracle_hit_rate"`
}

// resolveReportPath expands "auto" to BENCH_<timestamp>.json, appending a
// _2, _3, ... disambiguator when that name is taken — two runs finishing in
// the same second must not clobber each other's reports. exists is os.Stat
// in production, injectable for tests.
func resolveReportPath(path string, now time.Time, exists func(string) bool) string {
	if path != "auto" {
		return path
	}
	base := now.UTC().Format("BENCH_20060102T150405Z")
	path = base + ".json"
	for n := 2; exists(path); n++ {
		path = fmt.Sprintf("%s_%d.json", base, n)
	}
	return path
}

// writeReport resolves -out ("auto" -> a fresh BENCH_<timestamp>.json) and
// writes the report.
func writeReport(path string, rep *benchReport) {
	path = resolveReportPath(path, time.Now(), func(p string) bool {
		_, err := os.Stat(p)
		return err == nil
	})
	rep.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func main() {
	var (
		inputs   = flag.Int("inputs", 1<<16, "number of inputs per sweep")
		rounds   = flag.Int("rounds", 9, "timed repetitions; the minimum is reported")
		seed     = flag.Int64("seed", 42, "input generation seed")
		genBench = flag.Bool("gen", false, "benchmark the generation pipeline instead: core.Generate wall-clock serial vs -j workers")
		genBits  = flag.Int("gen-bits", 18, "input format width for -gen and -cache-bench")
		cacheB   = flag.Bool("cache-bench", false, "benchmark the persistent oracle cache instead: a log2 stride-1 generation cold, warm and with no cache (uses -cache-dir or a temp dir)")
		serveB   = flag.Bool("serve-bench", false, "benchmark the HTTP serving layer instead: in-process server, concurrent clients over all func x scheme combos, bit-for-bit verification")
		serveCl  = flag.Int("serve-clients", 4, "concurrent clients for -serve-bench")
		serveReq = flag.Int("serve-requests", 120, "requests per client for -serve-bench")
		serveBat = flag.Int("serve-batch", 4096, "elements per request for -serve-bench")
		smallReq = flag.Int("serve-small-requests", 400, "small requests per client for the many-small-requests workload (0 skips it)")
		smallEl  = flag.Int("serve-small-elems", 64, "elements per small request")
		replicas = flag.Int("serve-replicas", 2, "in-process server replicas for the round-robin fleet mode (<2 skips it)")
		serveCan = flag.Float64("serve-canary", 0.002, "fraction of served elements the online correctness canary re-verifies against the oracle during -serve-bench (0 disables)")
		serveMet = flag.String("serve-metricz", "", "write the -serve-bench server's metrics snapshot (the /metricz JSON shape) to this file")
		outPath  = flag.String("out", "", "write a machine-readable JSON benchmark report to this file (\"auto\" = BENCH_<timestamp>.json)")
		opts     = cliflags.Register(flag.CommandLine)
	)
	flag.Parse()

	ro, err := opts.Obs.Start()
	if err != nil {
		fatal(err)
	}
	defer ro.Close()

	rep := &benchReport{Tool: "rlibm-bench", Git: obs.GitDescribe(), Seed: *seed}

	if *genBench {
		rep.Gen = benchGenerate(*genBits, opts.WorkerCount(), *seed)
		if *outPath != "" {
			writeReport(*outPath, rep)
		}
		if err := ro.Close(); err != nil {
			fatal(err)
		}
		return
	}
	if *cacheB {
		rep.Cache = benchCache(*genBits, opts.WorkerCount(), *seed, opts.Cache.Dir)
		if *outPath != "" {
			writeReport(*outPath, rep)
		}
		if err := ro.Close(); err != nil {
			fatal(err)
		}
		return
	}
	if *serveB {
		rep.Serve = benchServe(*serveCl, *serveReq, *serveBat, *rounds, *smallReq, *smallEl, *replicas, *seed,
			*serveCan, *serveMet, ro.Tracer)
		if *outPath != "" {
			writeReport(*outPath, rep)
		}
		if err := ro.Close(); err != nil {
			fatal(err)
		}
		return
	}
	rep.Inputs, rep.Rounds = *inputs, *rounds

	fmt.Printf("rlibm-bench: %d inputs/function, best of %d rounds\n\n", *inputs, *rounds)

	type row struct {
		name string
		ns   [4]float64
	}
	var rows []row
	rep.Functions = map[string]map[string]float64{}
	for _, f := range libm.Funcs {
		sweep := makeSweep(f.Name, *inputs, *seed)
		var r row
		r.name = f.Name
		var impls [4]func(float64) float64
		for si, s := range libm.Schemes {
			impls[si] = libm.GeneratedFuncs[f.Name+"/"+s.String()]
			if impls[si] == nil {
				fmt.Fprintf(os.Stderr, "missing generated function %s/%v\n", f.Name, s)
				os.Exit(1)
			}
			r.ns[si] = math.Inf(1)
		}
		// Interleave the four schemes within every round so clock drift and
		// scheduler noise hit them equally; keep the best round per scheme.
		for round := 0; round < *rounds; round++ {
			for si := range impls {
				if ns := timeOnce(impls[si], sweep); ns < r.ns[si] {
					r.ns[si] = ns
				}
			}
		}
		rows = append(rows, r)
		perScheme := map[string]float64{}
		for si, s := range libm.Schemes {
			perScheme[s.String()] = r.ns[si]
		}
		rep.Functions[f.Name] = perScheme
		fmt.Printf("%-6s  rlibm %7.2f ns/op   knuth %7.2f   estrin %7.2f   estrin+fma %7.2f\n",
			f.Name, r.ns[0], r.ns[1], r.ns[2], r.ns[3])
	}

	fmt.Println()
	rep.AvgSpeedupPct = map[string]float64{}
	names := []string{"RLIBM-Knuth", "RLIBM-Estrin", "RLIBM-Estrin-FMA"}
	for si := 1; si <= 3; si++ {
		fmt.Printf("Speedup of %s over RLIBM\n", names[si-1])
		sum := 0.0
		for _, r := range rows {
			sp := (r.ns[0]/r.ns[si] - 1) * 100
			sum += sp
			fmt.Printf("%s: %.2f%%\n", r.name, sp)
		}
		avg := sum / float64(len(rows))
		rep.AvgSpeedupPct[libm.Schemes[si].String()] = avg
		fmt.Printf("Average speedup of %s over RLIBM: %.2f%%\n\n", names[si-1], avg)
	}
	if *outPath != "" {
		writeReport(*outPath, rep)
	}
	if err := ro.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rlibm-bench:", err)
	os.Exit(1)
}

// benchGenerate times the offline generation pipeline — the quantity the
// RLIBM papers identify as the practical bottleneck when scaling to more
// functions and formats — on an exp-family function in its realistic shape:
// GenerateAll over all four evaluation schemes (the `rlibm-gen -scheme all`
// workflow). Serial (Workers: 1) runs collection then four solve loops back
// to back; the parallel run shards the collection AND solves the four
// scheme loops concurrently, so on a multi-core machine the wall-clock
// shrinks toward max(solve_i) + collect/N. The two runs must agree bit for
// bit — that is the determinism contract the sharded reduction buys. The
// oracle cache is per-run, so the parallel run pays its own Ziv
// escalations rather than reusing the serial run's.
func benchGenerate(bits, workers int, seed int64) *genBenchReport {
	cfg := core.Config{
		Fn:    oracle.Exp2,
		Input: fp.Format{Bits: bits, ExpBits: 8},
		Seed:  seed,
	}
	fmt.Printf("rlibm-bench -gen: %v, all %d schemes, %d-bit input format, seed %d\n",
		cfg.Fn, len(poly.PaperSchemes), bits, seed)

	run := func(w int) ([]*core.Result, time.Duration) {
		c := cfg
		c.Workers = w
		start := time.Now()
		rs, err := core.GenerateAll(context.Background(), c, poly.PaperSchemes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rlibm-bench:", err)
			os.Exit(1)
		}
		return rs, time.Since(start)
	}
	serialRes, serial := run(1)
	parallelRes, parallel := run(workers)
	fmt.Printf("  serial   (workers=1):  %v  (collect %v)\n", serial.Round(time.Millisecond), serialRes[0].Stats.CollectTime.Round(time.Millisecond))
	fmt.Printf("  parallel (workers=%d): %v  (collect %v)\n", workers, parallel.Round(time.Millisecond), parallelRes[0].Stats.CollectTime.Round(time.Millisecond))
	fmt.Printf("  speedup: %.2fx\n", serial.Seconds()/parallel.Seconds())
	for si := range serialRes {
		sr, pr := serialRes[si], parallelRes[si]
		if len(sr.Pieces) != len(pr.Pieces) {
			fmt.Fprintf(os.Stderr, "rlibm-bench: worker-count nondeterminism: %v has %d vs %d pieces\n", sr.Scheme, len(sr.Pieces), len(pr.Pieces))
			os.Exit(1)
		}
		for i := range sr.Pieces {
			for j, c := range sr.Pieces[i].Coeffs {
				if math.Float64bits(c) != math.Float64bits(pr.Pieces[i].Coeffs[j]) {
					fmt.Fprintf(os.Stderr, "rlibm-bench: worker-count nondeterminism: %v piece %d coeff %d differs\n", sr.Scheme, i, j)
					os.Exit(1)
				}
			}
		}
	}
	fmt.Println("  coefficients bit-identical across worker counts: ok")
	hits, misses := parallelRes[0].Stats.OracleHits, parallelRes[0].Stats.OracleMisses
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	return &genBenchReport{
		Bits:          bits,
		Workers:       workers,
		SerialMs:      serial.Seconds() * 1e3,
		ParallelMs:    parallel.Seconds() * 1e3,
		Speedup:       serial.Seconds() / parallel.Seconds(),
		OracleHits:    hits,
		OracleMisses:  misses,
		OracleHitRate: rate,
	}
}

// benchCache measures what the persistent oracle cache buys: the same log2
// stride-1 generation run three times — cold (the cache directory is cleared
// first, so every oracle result is a Ziv escalation written back to disk),
// warm (a second run over the directory the cold run just filled, so
// collection replays disk entries instead of running Ziv loops), and with no
// persistent cache at all (the pre-cache baseline). log2 is the bench
// function because its polynomial path covers every positive input — there
// is no overflow/underflow plateau shortcut, so collection cost is all
// oracle. The three runs must produce bit-identical coefficients: the store
// only replays values the oracle would recompute.
func benchCache(bits, workers int, seed int64, dir string) *cacheBenchReport {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "rlibm-cache-bench-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else if err := oracle.ClearCacheDir(dir); err != nil {
		fatal(err)
	}
	fmt.Printf("rlibm-bench -cache-bench: log2, %d-bit input format, stride 1, seed %d, cache %s\n",
		bits, seed, dir)

	run := func(persist bool) (*core.Result, *oracle.Store) {
		cfg := core.Config{
			Fn:      oracle.Log2,
			Input:   fp.Format{Bits: bits, ExpBits: 8},
			Stride:  1,
			Seed:    seed,
			Workers: workers,
		}
		var st *oracle.Store
		if persist {
			var err error
			st, err = oracle.OpenStore(dir, oracle.StoreOptions{})
			if err != nil {
				fatal(err)
			}
			cfg.Store = st
		}
		rs, err := core.GenerateAll(context.Background(), cfg, poly.PaperSchemes[:1])
		if err != nil {
			fatal(err)
		}
		if st != nil {
			if err := st.Close(); err != nil {
				fatal(err)
			}
		}
		return rs[0], st
	}

	cold, coldSt := run(true)
	warm, _ := run(true)
	nocache, _ := run(false)

	identical := true
	for _, other := range []*core.Result{warm, nocache} {
		if len(cold.Pieces) != len(other.Pieces) {
			identical = false
			break
		}
		for i := range cold.Pieces {
			for j, c := range cold.Pieces[i].Coeffs {
				if math.Float64bits(c) != math.Float64bits(other.Pieces[i].Coeffs[j]) {
					identical = false
				}
			}
		}
	}

	rep := &cacheBenchReport{
		Bits:             bits,
		Workers:          workers,
		Dir:              dir,
		ColdCollectMs:    cold.Stats.CollectTime.Seconds() * 1e3,
		WarmCollectMs:    warm.Stats.CollectTime.Seconds() * 1e3,
		NoCacheCollectMs: nocache.Stats.CollectTime.Seconds() * 1e3,
		ColdTotalMs:      (cold.Stats.CollectTime + cold.Stats.SolveTime).Seconds() * 1e3,
		WarmTotalMs:      (warm.Stats.CollectTime + warm.Stats.SolveTime).Seconds() * 1e3,
		ColdMisses:       cold.Stats.OracleMisses,
		WarmHits:         warm.Stats.OracleHits,
		WarmMisses:       warm.Stats.OracleMisses,
		AppendedEntries:  coldSt.Stats().AppendedEntries,
		CoeffsIdentical:  identical,
	}
	if rep.WarmCollectMs > 0 {
		rep.CollectSpeedup = rep.ColdCollectMs / rep.WarmCollectMs
	}
	fmt.Printf("  cold:     collect %8.1f ms  (%d oracle misses, %d entries persisted)\n",
		rep.ColdCollectMs, rep.ColdMisses, rep.AppendedEntries)
	fmt.Printf("  warm:     collect %8.1f ms  (%d hits / %d misses)\n",
		rep.WarmCollectMs, rep.WarmHits, rep.WarmMisses)
	fmt.Printf("  no cache: collect %8.1f ms\n", rep.NoCacheCollectMs)
	fmt.Printf("  warm-over-cold collect speedup: %.2fx\n", rep.CollectSpeedup)
	if !identical {
		fmt.Fprintln(os.Stderr, "rlibm-bench: cache changed the generated coefficients")
		os.Exit(1)
	}
	fmt.Println("  coefficients bit-identical cold/warm/no-cache: ok")
	return rep
}

// makeSweep draws inputs spanning the function's interesting domain: the
// polynomial path dominates, with a sprinkle of special-path values, like
// the artifact's whole-input-space sweeps.
func makeSweep(name string, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		switch name {
		case "exp":
			out[i] = float64(float32(rng.Float64()*176 - 87))
		case "exp2":
			out[i] = float64(float32(rng.Float64()*252 - 126))
		case "exp10":
			out[i] = float64(float32(rng.Float64()*76 - 38))
		default: // logarithms: positive values across the full binade range
			out[i] = float64(float32(math.Ldexp(1+rng.Float64(), rng.Intn(252)-126)))
		}
	}
	return out
}

// timeOnce reports the per-call latency of impl over one pass of the sweep.
//
// Calls are serialized through a data dependence (each input is nudged by a
// value derived from the previous result — zero or one unit in the last
// place of a double, which never changes a float32-level answer). Without
// the chain, the out-of-order core overlaps iterations and the measurement
// becomes a throughput number, hiding exactly the dependence-chain effect
// the paper measures with the serializing rdtscp instruction.
func timeOnce(impl func(float64) float64, sweep []float64) float64 {
	var prev float64
	start := time.Now()
	for _, x := range sweep {
		prev = impl(x + math.Float64frombits(math.Float64bits(prev)&1))
	}
	elapsed := time.Since(start).Seconds() * 1e9 / float64(len(sweep))
	if prev == 42 { // defeat dead-code elimination
		fmt.Fprint(os.Stderr, "")
	}
	return elapsed
}

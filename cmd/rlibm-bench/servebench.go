package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rlibm/internal/obs"
	"rlibm/internal/serve"
	"rlibm/pkg/rlibm"
)

// serveBenchReport is the -serve-bench section: end-to-end load numbers for
// the HTTP serving layer (binary endpoint) plus the per-element comparison
// between the batch kernel path and per-call scalar dispatch that motivates
// it. Mismatches counts responses that were not bit-identical to a direct
// kernel call and must be zero.
type serveBenchReport struct {
	Clients    int   `json:"clients"`
	BatchElems int   `json:"batch_elems"`
	Requests   int   `json:"requests"`
	Elems      int64 `json:"elems"`
	Mismatches int64 `json:"mismatches"`

	DurationMs  float64 `json:"duration_ms"`
	ReqPerSec   float64 `json:"req_per_sec"`
	MelemPerSec float64 `json:"melem_per_sec"`
	P50Us       float64 `json:"p50_us"`
	P90Us       float64 `json:"p90_us"`
	P99Us       float64 `json:"p99_us"`

	// ScalarNsPerElem runs Eval in a loop (per-call table dispatch);
	// BatchNsPerElem runs EvalBatch over the same inputs. The speedup is the
	// win from the generated blocked batch kernels alone — same machine, same
	// sweep, no HTTP in either number.
	ScalarNsPerElem float64 `json:"scalar_ns_per_elem"`
	BatchNsPerElem  float64 `json:"batch_ns_per_elem"`
	BatchSpeedupPct float64 `json:"batch_speedup_pct"`

	// Backends is the batch-kernel backend comparison: one row per concrete
	// backend the machine offers (go, vector, and asm where the conversion
	// staging exists), each timing EvalBatch over identical sweeps against
	// the same per-call scalar Eval baseline, per function and averaged. All
	// backends are bit-identical, so the rows differ only in ns/elem. CI
	// gates the vector row on exp and log2 at <=
	// max_vector_scalar_ratio x the scalar ns/elem from the same run
	// (ci/vector-baseline.json) — a ratio, like the other serve gates, so
	// runner speed divides out.
	Backends []backendBenchReport `json:"backends,omitempty"`

	// MixedPrecision is the progressive-polynomial section: per-element sweep
	// cost at each output precision (the narrow rows run the prefix kernels,
	// which evaluate fewer polynomial terms), plus bit-exact verification of
	// the serving layer's ?prec= path against the matching Evaluator. CI
	// gates the bf16 row at <= 0.75x the float32 ns/elem against
	// ci/prog-baseline.json. MixedCanary holds the online canary totals for
	// that pass (absent when the canary was disabled): the canary re-checked
	// a sample of the served narrow-precision elements against the Ziv
	// oracle at their own output formats, and Mismatch must be zero.
	MixedPrecision []precBenchReport `json:"mixed_precision,omitempty"`
	MixedCanary    *canaryTotals     `json:"mixed_precision_canary,omitempty"`

	// Online correctness canary totals for the load run (absent when the
	// canary was disabled). CanaryMismatch must be zero: the canary re-checks
	// a sample of what this bench actually served against the Ziv oracle.
	CanaryChecked  int64 `json:"canary_checked,omitempty"`
	CanaryMismatch int64 `json:"canary_mismatch,omitempty"`
	CanaryDropped  int64 `json:"canary_dropped,omitempty"`
	CanarySkipped  int64 `json:"canary_skipped,omitempty"`

	// Small is the many-small-requests workload: the fleet traffic shape
	// the coalescer and streaming protocol exist for.
	Small *smallReqReport `json:"small_requests,omitempty"`
	// Replicas is the multi-replica round-robin mode.
	Replicas *replicaBenchReport `json:"replicas,omitempty"`
}

// smallReqReport compares the two transports under many small requests: the
// HTTP-per-request baseline (one POST per batch, keep-alive on) against the
// coalesced streaming path (persistent connections, requests multiplexed by
// id, server-side cross-request coalescing into shared sweeps). SpeedupX is
// the aggregate-throughput ratio — the number the serving tentpole is judged
// on — and both paths are verified bit-for-bit against direct kernel calls.
type smallReqReport struct {
	Clients     int   `json:"clients"`
	ReqPerCli   int   `json:"requests_per_client"`
	ElemsPerReq int   `json:"elems_per_request"`
	Mismatches  int64 `json:"mismatches"`

	HTTPDurationMs    float64 `json:"http_duration_ms"`
	HTTPReqPerSec     float64 `json:"http_req_per_sec"`
	HTTPMelemPerSec   float64 `json:"http_melem_per_sec"`
	StreamDurationMs  float64 `json:"stream_duration_ms"`
	StreamReqPerSec   float64 `json:"stream_req_per_sec"`
	StreamMelemPerSec float64 `json:"stream_melem_per_sec"`
	SpeedupX          float64 `json:"speedup_x"`

	// PhaseMeanUs attributes mean request latency to the serving phases
	// (decode, queue, sweep, encode), aggregated over every (func, scheme)
	// combo both transports drove — the breakdown that says where a small
	// request's time actually goes.
	PhaseMeanUs map[string]float64 `json:"phase_mean_us,omitempty"`
}

// replicaBenchReport is the round-robin fleet mode: N in-process server
// replicas (own registries, own listeners), clients spread across them, one
// aggregate Melem/s across the fleet.
type replicaBenchReport struct {
	Replicas    int   `json:"replicas"`
	Clients     int   `json:"clients"`
	ReqPerCli   int   `json:"requests_per_client"`
	ElemsPerReq int   `json:"elems_per_request"`
	Mismatches  int64 `json:"mismatches"`

	DurationMs     float64 `json:"duration_ms"`
	AggReqPerSec   float64 `json:"agg_req_per_sec"`
	AggMelemPerSec float64 `json:"agg_melem_per_sec"`
}

// benchServe spins up the serving stack in-process on a loopback listener,
// drives clients concurrent HTTP clients round-robin over all func x scheme
// combinations on the binary endpoint, and verifies every response element
// bit-for-bit against a direct kernel call.
func benchServe(clients, reqsPerClient, batchElems, rounds, smallReqs, smallElems, replicas int, seed int64,
	canaryRate float64, metriczPath string, tracer *obs.Tracer) *serveBenchReport {
	fmt.Printf("rlibm-bench -serve-bench: %d clients x %d requests, %d elems/request, seed %d\n",
		clients, reqsPerClient, batchElems, seed)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	reg := obs.NewRegistry()
	srv := serve.New(serve.Config{
		MaxBatch: batchElems,
		Registry: reg,
		Log:      obs.NewLogger(io.Discard, obs.LevelQuiet),
		// With -trace the bench doubles as a tracing exerciser: every request
		// emits its per-phase spans, so the trace artifact covers the full
		// decode/queue/sweep/encode attribution for all 24 combos.
		Tracer:       tracer,
		TraceSample:  1,
		CanarySample: canaryRate,
		CanaryQueue:  1 << 14,
	})
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	// Every client cycles through all 24 combos, offset by its index so the
	// server sees a mixed stream rather than 24 synchronized phases.
	type combo struct {
		f rlibm.Func
		s rlibm.Scheme
	}
	var combos []combo
	for _, f := range rlibm.Funcs {
		for _, s := range rlibm.Schemes {
			combos = append(combos, combo{f, s})
		}
	}

	var (
		mismatches atomic.Int64
		wg         sync.WaitGroup
		latencies  = make([][]time.Duration, clients)
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			rng := rand.New(rand.NewSource(seed + int64(c)))
			src := make([]float32, batchElems)
			frame := make([]byte, 4*batchElems)
			lat := make([]time.Duration, 0, reqsPerClient)
			for r := 0; r < reqsPerClient; r++ {
				cb := combos[(c+r)%len(combos)]
				fillSweep32(src, cb.f, rng)
				for i, x := range src {
					binary.LittleEndian.PutUint32(frame[4*i:], math.Float32bits(x))
				}
				url := fmt.Sprintf("%s/v1/evalbin/%v/%v", base, cb.f, cb.s)
				t0 := time.Now()
				resp, err := client.Post(url, "application/octet-stream", bytes.NewReader(frame))
				if err != nil {
					fatal(err)
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				lat = append(lat, time.Since(t0))
				if err != nil {
					fatal(err)
				}
				if resp.StatusCode != http.StatusOK {
					fatal(fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, body))
				}
				if len(body) != 4*len(src) {
					fatal(fmt.Errorf("%s: response has %d bytes, want %d", url, len(body), 4*len(src)))
				}
				k := kernelFor(cb.f, cb.s)
				for i, x := range src {
					got := math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:]))
					want := float32(k(float64(x)))
					if math.Float32bits(got) != math.Float32bits(want) {
						mismatches.Add(1)
					}
				}
			}
			latencies[c] = lat
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	cancel()
	if err := <-serveErr; err != nil {
		fatal(err)
	}
	srv.Close() // drain the canary so its totals below are final

	var all []time.Duration
	for _, lat := range latencies {
		all = append(all, lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(q float64) float64 {
		return float64(all[int(q*float64(len(all)-1))]) / 1e3
	}

	requests := clients * reqsPerClient
	rep := &serveBenchReport{
		Clients:     clients,
		BatchElems:  batchElems,
		Requests:    requests,
		Elems:       int64(requests) * int64(batchElems),
		Mismatches:  mismatches.Load(),
		DurationMs:  elapsed.Seconds() * 1e3,
		ReqPerSec:   float64(requests) / elapsed.Seconds(),
		MelemPerSec: float64(requests) * float64(batchElems) / elapsed.Seconds() / 1e6,
		P50Us:       pct(0.50),
		P90Us:       pct(0.90),
		P99Us:       pct(0.99),
	}
	rep.ScalarNsPerElem, rep.BatchNsPerElem = benchDispatch(batchElems, rounds, seed)
	rep.BatchSpeedupPct = (rep.ScalarNsPerElem/rep.BatchNsPerElem - 1) * 100
	rep.Backends = benchBackends(batchElems, rounds, seed)
	rep.MixedPrecision, rep.MixedCanary = benchPrecisions(batchElems, rounds, seed, canaryRate)

	fmt.Printf("  %d requests (%d elems) in %v: %.0f req/s, %.1f Melem/s\n",
		rep.Requests, rep.Elems, elapsed.Round(time.Millisecond), rep.ReqPerSec, rep.MelemPerSec)
	fmt.Printf("  latency p50 %.0f us   p90 %.0f us   p99 %.0f us\n", rep.P50Us, rep.P90Us, rep.P99Us)
	fmt.Printf("  scalar dispatch %.2f ns/elem   batch %.2f ns/elem   (batch %.1f%% faster)\n",
		rep.ScalarNsPerElem, rep.BatchNsPerElem, rep.BatchSpeedupPct)
	for _, row := range rep.Backends {
		mark := ""
		if row.Default {
			mark = "   (auto)"
		}
		fmt.Printf("  backend %-7s %.2f ns/elem   %.2fx vs scalar   (exp %.2fx, log2 %.2fx)%s\n",
			row.Backend, row.NsPerElem, row.VsScalarX,
			row.FuncVsScalarX["exp"], row.FuncVsScalarX["log2"], mark)
	}
	if rep.Mismatches != 0 {
		fmt.Fprintf(os.Stderr, "rlibm-bench: %d responses not bit-identical to direct kernel calls\n", rep.Mismatches)
		os.Exit(1)
	}
	fmt.Println("  all responses bit-identical to direct kernel calls: ok")

	obs.CaptureRuntime(reg)
	snap := reg.Snapshot()
	if canaryRate > 0 {
		rep.CanaryChecked = snap.Counter("serve.canary.checked_total")
		rep.CanaryMismatch = snap.Counter("serve.canary.mismatch_total")
		rep.CanaryDropped = snap.Counter("serve.canary.dropped_total")
		rep.CanarySkipped = snap.Counter("serve.canary.skipped_total")
		fmt.Printf("  canary (1/%d elems): checked %d, mismatched %d, dropped %d, skipped %d\n",
			int64(1/canaryRate+0.5), rep.CanaryChecked, rep.CanaryMismatch, rep.CanaryDropped, rep.CanarySkipped)
		if rep.CanaryMismatch != 0 {
			fmt.Fprintf(os.Stderr, "rlibm-bench: canary found %d served elements not matching the oracle\n", rep.CanaryMismatch)
			os.Exit(1)
		}
		if rep.CanaryChecked == 0 {
			fmt.Fprintln(os.Stderr, "rlibm-bench: canary enabled but checked nothing (queue drained away?)")
			os.Exit(1)
		}
	}
	if metriczPath != "" {
		writeMetricz(metriczPath, snap)
	}

	if smallReqs > 0 {
		rep.Small = benchSmallRequests(clients, smallReqs, smallElems, seed)
	}
	if replicas > 1 && smallReqs > 0 {
		rep.Replicas = benchReplicas(replicas, clients*replicas, smallReqs, smallElems, seed)
	}
	return rep
}

// writeMetricz writes the load-run server's metrics snapshot in the /metricz
// JSON shape (registry snapshot plus build identity) — the CI serve-smoke job
// uploads it as an artifact and gates on the canary and phase-histogram
// counters inside it.
func writeMetricz(path string, snap obs.Snapshot) {
	out := struct {
		obs.Snapshot
		BuildInfo obs.BuildIdentity `json:"build_info"`
	}{Snapshot: snap, BuildInfo: obs.Build()}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

// phaseMeans aggregates the per-(func,scheme) phase histograms in snap into
// one mean per phase, in microseconds.
func phaseMeans(snap obs.Snapshot) map[string]float64 {
	sums := map[string]int64{}
	counts := map[string]int64{}
	for name, h := range snap.Histograms {
		i := strings.Index(name, "/phase/")
		if !strings.HasPrefix(name, "serve/") || i < 0 {
			continue
		}
		phase := strings.TrimSuffix(name[i+len("/phase/"):], "_ns")
		sums[phase] += h.Sum
		counts[phase] += h.Count
	}
	out := map[string]float64{}
	for phase, n := range counts {
		if n > 0 {
			out[phase] = float64(sums[phase]) / float64(n) / 1e3
		}
	}
	return out
}

// kernelFor resolves the full-precision reference kernel through the
// Evaluator API (the package-level Kernel is deprecated); combos are always
// valid here, so a constructor error is a bench bug.
func kernelFor(f rlibm.Func, s rlibm.Scheme) func(float64) float64 {
	ev, err := rlibm.New(f, s)
	if err != nil {
		fatal(err)
	}
	return ev.Kernel()
}

// benchDispatch times per-call scalar dispatch (Eval in a loop) against the
// batch entry point (EvalBatch) over identical sweeps, best of rounds,
// averaged across all six functions with the Estrin+FMA scheme. Per-element
// nanoseconds for both paths.
func benchDispatch(n, rounds int, seed int64) (scalarNs, batchNs float64) {
	src := make([]float32, n)
	dst := make([]float32, n)
	rng := rand.New(rand.NewSource(seed))
	var sink float32
	for _, f := range rlibm.Funcs {
		ev, err := rlibm.New(f, rlibm.EstrinFMA)
		if err != nil {
			fatal(err)
		}
		fillSweep32(src, f, rng)
		bestScalar, bestBatch := math.Inf(1), math.Inf(1)
		for r := 0; r < rounds; r++ {
			t0 := time.Now()
			for i, x := range src {
				dst[i] = ev.Eval(x)
			}
			if ns := time.Since(t0).Seconds() * 1e9 / float64(n); ns < bestScalar {
				bestScalar = ns
			}
			sink += dst[0]
			t0 = time.Now()
			ev.EvalBatch(dst, src)
			if ns := time.Since(t0).Seconds() * 1e9 / float64(n); ns < bestBatch {
				bestBatch = ns
			}
			sink += dst[0]
		}
		scalarNs += bestScalar
		batchNs += bestBatch
	}
	if sink == 42 { // defeat dead-code elimination
		fmt.Fprint(os.Stderr, "")
	}
	return scalarNs / float64(len(rlibm.Funcs)), batchNs / float64(len(rlibm.Funcs))
}

// backendBenchReport is one row of the per-backend section: per-element batch
// cost under one backend, per function and averaged, with the speedup over
// the per-call scalar Eval baseline measured in the same pass.
type backendBenchReport struct {
	Backend string `json:"backend"`
	// Default marks the row BackendAuto resolves to on this machine — the
	// backend the serving layer and package-level batch calls actually run.
	Default       bool               `json:"default,omitempty"`
	NsPerElem     float64            `json:"ns_per_elem"`
	VsScalarX     float64            `json:"speedup_vs_scalar_x"`
	FuncNsPerElem map[string]float64 `json:"func_ns_per_elem"`
	FuncVsScalarX map[string]float64 `json:"func_speedup_vs_scalar_x"`
}

// benchBackends times EvalBatch under every backend the machine offers over
// identical sweeps (best of rounds, Estrin+FMA, full precision), against one
// shared per-call scalar Eval baseline. The scalar baseline is timed once
// per function — it is backend-independent by construction.
func benchBackends(n, rounds int, seed int64) []backendBenchReport {
	backends, err := rlibm.Backends(rlibm.FuncExp, rlibm.EstrinFMA, rlibm.PrecFloat32)
	if err != nil {
		fatal(err)
	}
	src := make([]float32, n)
	dst := make([]float32, n)
	rng := rand.New(rand.NewSource(seed))
	var sink float32

	scalarNs := map[string]float64{}
	sweeps := map[string][]float32{}
	for _, f := range rlibm.Funcs {
		ev, err := rlibm.New(f, rlibm.EstrinFMA)
		if err != nil {
			fatal(err)
		}
		fillSweep32(src, f, rng)
		sweeps[f.String()] = append([]float32(nil), src...)
		best := math.Inf(1)
		for r := 0; r < rounds; r++ {
			t0 := time.Now()
			for i, x := range src {
				dst[i] = ev.Eval(x)
			}
			if ns := time.Since(t0).Seconds() * 1e9 / float64(n); ns < best {
				best = ns
			}
			sink += dst[0]
		}
		scalarNs[f.String()] = best
	}

	var auto rlibm.Backend
	if ev, err := rlibm.New(rlibm.FuncExp, rlibm.EstrinFMA); err == nil {
		auto = ev.Backend()
	}
	out := make([]backendBenchReport, 0, len(backends))
	for _, b := range backends {
		row := backendBenchReport{
			Backend:       b.String(),
			Default:       b == auto,
			FuncNsPerElem: map[string]float64{},
			FuncVsScalarX: map[string]float64{},
		}
		var sumNs, sumScalar float64
		for _, f := range rlibm.Funcs {
			ev, err := rlibm.New(f, rlibm.EstrinFMA, rlibm.WithBackend(b))
			if err != nil {
				fatal(err)
			}
			copy(src, sweeps[f.String()])
			best := math.Inf(1)
			for r := 0; r < rounds; r++ {
				t0 := time.Now()
				ev.EvalBatch(dst, src)
				if ns := time.Since(t0).Seconds() * 1e9 / float64(n); ns < best {
					best = ns
				}
				sink += dst[0]
			}
			row.FuncNsPerElem[f.String()] = best
			row.FuncVsScalarX[f.String()] = scalarNs[f.String()] / best
			sumNs += best
			sumScalar += scalarNs[f.String()]
		}
		row.NsPerElem = sumNs / float64(len(rlibm.Funcs))
		row.VsScalarX = sumScalar / sumNs
		out = append(out, row)
	}
	if sink == 42 { // defeat dead-code elimination
		fmt.Fprint(os.Stderr, "")
	}
	return out
}

// precBenchReport is one row of the mixed-precision section: the per-element
// cost of a full sweep at one output precision, its speedup over the full-
// precision row, and the served-path bit-exactness check at that precision.
type precBenchReport struct {
	Prec          string  `json:"prec"`
	NsPerElem     float64 `json:"ns_per_elem"`
	SpeedupVsFull float64 `json:"speedup_vs_full_x"`
	Mismatches    int64   `json:"mismatches"`
}

// canaryTotals is an online-canary summary for one load pass.
type canaryTotals struct {
	Checked  int64 `json:"checked"`
	Mismatch int64 `json:"mismatch"`
	Dropped  int64 `json:"dropped"`
	Skipped  int64 `json:"skipped"`
}

// benchPrecisions times EvalBatch at every output precision (best of
// rounds, averaged across the six functions, Estrin+FMA scheme) and
// verifies one served /v1/evalbin?prec= response per function and precision
// bit for bit against the matching Evaluator. Each row serves its own
// format's traffic: the narrow rows draw the same sweeps truncated to the
// narrow format's representable inputs — the domain the narrow
// correct-rounding guarantee covers, and the shape real mixed-precision
// traffic has. tf32 runs the progressive prefix kernels (the coefficient
// table truncated to the verified prefix degree); bf16 additionally hits
// the memo-table fast path over its 2^16-point input space, which is where
// the per-element serving speedup comes from.
func benchPrecisions(n, rounds int, seed int64, canaryRate float64) ([]precBenchReport, *canaryTotals) {
	fmt.Printf("  mixed precision: %d elems/sweep, best of %d rounds\n", n, rounds)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	reg := obs.NewRegistry()
	srv := serve.New(serve.Config{
		MaxBatch:     n,
		Registry:     reg,
		Log:          obs.NewLogger(io.Discard, obs.LevelQuiet),
		CanarySample: canaryRate,
		CanaryQueue:  1 << 14,
	})
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ctx, ln) }()
	shutdown := func() {
		cancel()
		if err := <-serveErr; err != nil {
			fatal(err)
		}
		srv.Close() // drain the canary so its totals are final
	}
	base := "http://" + ln.Addr().String()

	src := make([]float32, n)
	dst := make([]float32, n)
	frame := make([]byte, 4*n)
	var sink float32
	out := make([]precBenchReport, 0, rlibm.NumPrecisions)
	for _, p := range rlibm.Precisions {
		var nsSum float64
		var mism int64
		rng := rand.New(rand.NewSource(seed)) // identical sweeps per precision
		for _, f := range rlibm.Funcs {
			ev, err := rlibm.New(f, rlibm.EstrinFMA, rlibm.WithPrecision(p))
			if err != nil {
				fatal(err)
			}
			fillSweep32(src, f, rng)
			if mask := precInputMask(p); mask != 0 {
				for i, x := range src {
					src[i] = math.Float32frombits(math.Float32bits(x) &^ mask)
				}
			}
			best := math.Inf(1)
			for r := 0; r < rounds; r++ {
				t0 := time.Now()
				ev.EvalBatch(dst, src)
				if ns := time.Since(t0).Seconds() * 1e9 / float64(n); ns < best {
					best = ns
				}
				sink += dst[0]
			}
			nsSum += best

			for i, x := range src {
				binary.LittleEndian.PutUint32(frame[4*i:], math.Float32bits(x))
			}
			url := fmt.Sprintf("%s/v1/evalbin/%v/%v?prec=%v", base, f, rlibm.EstrinFMA, p)
			resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(frame))
			if err != nil {
				fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				fatal(fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, body))
			}
			for i := range src {
				got := binary.LittleEndian.Uint32(body[4*i:])
				if got != math.Float32bits(dst[i]) {
					mism++
				}
			}
		}
		out = append(out, precBenchReport{
			Prec:       p.String(),
			NsPerElem:  nsSum / float64(len(rlibm.Funcs)),
			Mismatches: mism,
		})
	}
	if sink == 42 { // defeat dead-code elimination
		fmt.Fprint(os.Stderr, "")
	}
	var total int64
	for i := range out {
		out[i].SpeedupVsFull = out[0].NsPerElem / out[i].NsPerElem
		total += out[i].Mismatches
		fmt.Printf("    %-8s %6.2f ns/elem  (%.2fx vs float32)\n",
			out[i].Prec, out[i].NsPerElem, out[i].SpeedupVsFull)
	}
	if total != 0 {
		fmt.Fprintf(os.Stderr, "rlibm-bench: %d served ?prec= elements not bit-identical to the Evaluator\n", total)
		os.Exit(1)
	}
	fmt.Println("    all served ?prec= responses bit-identical to the Evaluator: ok")

	shutdown()
	var canary *canaryTotals
	if canaryRate > 0 {
		snap := reg.Snapshot()
		canary = &canaryTotals{
			Checked:  snap.Counter("serve.canary.checked_total"),
			Mismatch: snap.Counter("serve.canary.mismatch_total"),
			Dropped:  snap.Counter("serve.canary.dropped_total"),
			Skipped:  snap.Counter("serve.canary.skipped_total"),
		}
		fmt.Printf("    mixed-precision canary: checked %d, mismatched %d, dropped %d, skipped %d\n",
			canary.Checked, canary.Mismatch, canary.Dropped, canary.Skipped)
		if canary.Mismatch != 0 {
			fmt.Fprintf(os.Stderr, "rlibm-bench: mixed-precision canary found %d served elements not matching the oracle\n", canary.Mismatch)
			os.Exit(1)
		}
		if canary.Checked == 0 {
			fmt.Fprintln(os.Stderr, "rlibm-bench: mixed-precision canary enabled but checked nothing")
			os.Exit(1)
		}
	}
	return out, canary
}

// benchCombos is the round-robin order of all 24 func x scheme pairs.
func benchCombos() (out []struct {
	f rlibm.Func
	s rlibm.Scheme
}) {
	for _, f := range rlibm.Funcs {
		for _, s := range rlibm.Schemes {
			out = append(out, struct {
				f rlibm.Func
				s rlibm.Scheme
			}{f, s})
		}
	}
	return out
}

// smallBenchConfig is the server shape for the small-request workloads:
// coalescing on with a short flush window, and queues generous enough that
// the bench measures throughput, not shedding policy (overload behaviour has
// its own tests in internal/serve).
func smallBenchConfig(elemsPerReq int) serve.Config {
	return serve.Config{
		MaxBatch:           1 << 20,
		CoalesceMaxRequest: elemsPerReq,
		CoalesceFlushElems: 1 << 13,
		CoalesceMaxDelay:   200 * time.Microsecond,
		MaxPendingElems:    1 << 20,
		Registry:           obs.NewRegistry(),
		Log:                obs.NewLogger(io.Discard, obs.LevelQuiet),
	}
}

// benchSmallRequests drives the many-small-requests workload over both
// transports against one server and reports the aggregate-throughput ratio.
// Fleet traffic is many outstanding requests at once, so the client count is
// deliberately high (8x the big-batch bench): coalescing only amortizes
// per-sweep cost when flush windows actually gather multiple requests.
func benchSmallRequests(clients, reqsPerClient, elemsPerReq int, seed int64) *smallReqReport {
	clients *= 8
	fmt.Printf("  small requests: %d clients x %d requests, %d elems/request\n",
		clients, reqsPerClient, elemsPerReq)

	cfg := smallBenchConfig(elemsPerReq)
	srv := serve.New(cfg)
	defer srv.Close()
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	streamLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 2)
	go func() { serveErr <- srv.Serve(ctx, httpLn) }()
	go func() { serveErr <- srv.ServeStream(ctx, streamLn) }()
	defer func() {
		cancel()
		for i := 0; i < 2; i++ {
			if err := <-serveErr; err != nil {
				fatal(err)
			}
		}
	}()

	base := "http://" + httpLn.Addr().String()
	combos := benchCombos()

	// Workers record every response; verification runs after the clock stops
	// so both transports are timed on transport alone. Inputs regenerate from
	// the same seeded rng during the verify pass.
	results := make([][]float32, clients)
	for c := range results {
		results[c] = make([]float32, reqsPerClient*elemsPerReq)
	}
	run := func(worker func(c int, rng *rand.Rand, out []float32)) time.Duration {
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				worker(c, rand.New(rand.NewSource(seed+int64(c))), results[c])
			}(c)
		}
		wg.Wait()
		return time.Since(start)
	}
	var mismatches atomic.Int64
	verifyAll := func() {
		src := make([]float32, elemsPerReq)
		for c := 0; c < clients; c++ {
			rng := rand.New(rand.NewSource(seed + int64(c)))
			for r := 0; r < reqsPerClient; r++ {
				cb := combos[(c+r)%len(combos)]
				fillSweep32(src, cb.f, rng)
				k := kernelFor(cb.f, cb.s)
				got := results[c][r*elemsPerReq : (r+1)*elemsPerReq]
				for i, x := range src {
					if math.Float32bits(got[i]) != math.Float32bits(float32(k(float64(x)))) {
						mismatches.Add(1)
					}
				}
			}
		}
	}

	// HTTP-per-request baseline: one POST on the binary endpoint per small
	// batch. One shared pooled transport: without MaxIdleConnsPerHost >=
	// clients the default pool (2) would make the baseline open fresh TCP
	// conns under load — the comparison is against keep-alive HTTP done well.
	httpClient := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        clients,
		MaxIdleConnsPerHost: clients,
	}}
	httpElapsed := run(func(c int, rng *rand.Rand, out []float32) {
		src := make([]float32, elemsPerReq)
		frame := make([]byte, 4*elemsPerReq)
		for r := 0; r < reqsPerClient; r++ {
			cb := combos[(c+r)%len(combos)]
			fillSweep32(src, cb.f, rng)
			for i, x := range src {
				binary.LittleEndian.PutUint32(frame[4*i:], math.Float32bits(x))
			}
			url := fmt.Sprintf("%s/v1/evalbin/%v/%v", base, cb.f, cb.s)
			resp, err := httpClient.Post(url, "application/octet-stream", bytes.NewReader(frame))
			if err != nil {
				fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				fatal(fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, body))
			}
			got := out[r*elemsPerReq : (r+1)*elemsPerReq]
			for i := range got {
				got[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:]))
			}
		}
	})
	verifyAll()

	// Coalesced streaming: persistent connections shared by several request
	// goroutines (the fleet shape — many requesters per conn), frames
	// multiplexed by id, the server coalescing across all of them, and both
	// directions batching wire writes while traffic is in flight.
	const goroutinesPerConn = 8
	scs := make([]*serve.StreamClient, (clients+goroutinesPerConn-1)/goroutinesPerConn)
	for i := range scs {
		sc, err := serve.DialStream(streamLn.Addr().String())
		if err != nil {
			fatal(err)
		}
		scs[i] = sc
		defer sc.Close()
	}
	streamElapsed := run(func(c int, rng *rand.Rand, out []float32) {
		sc := scs[c/goroutinesPerConn]
		src := make([]float32, elemsPerReq)
		for r := 0; r < reqsPerClient; r++ {
			cb := combos[(c+r)%len(combos)]
			fillSweep32(src, cb.f, rng)
			if err := sc.Eval(cb.f, cb.s, out[r*elemsPerReq:(r+1)*elemsPerReq], src); err != nil {
				fatal(err)
			}
		}
	})
	verifyAll()

	requests := clients * reqsPerClient
	elems := float64(requests) * float64(elemsPerReq)
	rep := &smallReqReport{
		Clients:           clients,
		ReqPerCli:         reqsPerClient,
		ElemsPerReq:       elemsPerReq,
		Mismatches:        mismatches.Load(),
		HTTPDurationMs:    httpElapsed.Seconds() * 1e3,
		HTTPReqPerSec:     float64(requests) / httpElapsed.Seconds(),
		HTTPMelemPerSec:   elems / httpElapsed.Seconds() / 1e6,
		StreamDurationMs:  streamElapsed.Seconds() * 1e3,
		StreamReqPerSec:   float64(requests) / streamElapsed.Seconds(),
		StreamMelemPerSec: elems / streamElapsed.Seconds() / 1e6,
	}
	rep.SpeedupX = rep.StreamMelemPerSec / rep.HTTPMelemPerSec
	rep.PhaseMeanUs = phaseMeans(cfg.Registry.Snapshot())
	fmt.Printf("    http-per-request: %8.0f req/s  %6.2f Melem/s\n", rep.HTTPReqPerSec, rep.HTTPMelemPerSec)
	fmt.Printf("    coalesced stream: %8.0f req/s  %6.2f Melem/s  (%.2fx)\n",
		rep.StreamReqPerSec, rep.StreamMelemPerSec, rep.SpeedupX)
	if pm := rep.PhaseMeanUs; len(pm) > 0 {
		fmt.Printf("    phase breakdown (mean): decode %.1f us | queue %.1f us | sweep %.1f us | encode %.1f us\n",
			pm["decode"], pm["queue"], pm["sweep"], pm["encode"])
	}
	if rep.Mismatches != 0 {
		fmt.Fprintf(os.Stderr, "rlibm-bench: %d small-request responses not bit-identical\n", rep.Mismatches)
		os.Exit(1)
	}
	fmt.Println("    all small-request responses bit-identical: ok")
	return rep
}

// benchReplicas runs the round-robin fleet mode: replicas in-process servers
// with their own registries and stream listeners, clients spread across them
// round-robin, throughput aggregated across the fleet.
func benchReplicas(replicas, clients, reqsPerClient, elemsPerReq int, seed int64) *replicaBenchReport {
	fmt.Printf("  replicas: %d servers, %d clients round-robin, %d x %d elems\n",
		replicas, clients, reqsPerClient, elemsPerReq)

	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, replicas)
	addrs := make([]string, replicas)
	for i := 0; i < replicas; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		addrs[i] = ln.Addr().String()
		srv := serve.New(smallBenchConfig(elemsPerReq))
		go func() { serveErr <- srv.ServeStream(ctx, ln) }()
	}
	defer func() {
		cancel()
		for i := 0; i < replicas; i++ {
			if err := <-serveErr; err != nil {
				fatal(err)
			}
		}
	}()

	combos := benchCombos()
	var mismatches atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sc, err := serve.DialStream(addrs[c%len(addrs)])
			if err != nil {
				fatal(err)
			}
			defer sc.Close()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			src := make([]float32, elemsPerReq)
			dst := make([]float32, elemsPerReq)
			for r := 0; r < reqsPerClient; r++ {
				cb := combos[(c+r)%len(combos)]
				fillSweep32(src, cb.f, rng)
				if err := sc.Eval(cb.f, cb.s, dst, src); err != nil {
					fatal(err)
				}
				k := kernelFor(cb.f, cb.s)
				for i, x := range src {
					if math.Float32bits(dst[i]) != math.Float32bits(float32(k(float64(x)))) {
						mismatches.Add(1)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	requests := clients * reqsPerClient
	rep := &replicaBenchReport{
		Replicas:       replicas,
		Clients:        clients,
		ReqPerCli:      reqsPerClient,
		ElemsPerReq:    elemsPerReq,
		Mismatches:     mismatches.Load(),
		DurationMs:     elapsed.Seconds() * 1e3,
		AggReqPerSec:   float64(requests) / elapsed.Seconds(),
		AggMelemPerSec: float64(requests) * float64(elemsPerReq) / elapsed.Seconds() / 1e6,
	}
	fmt.Printf("    aggregate: %8.0f req/s  %6.2f Melem/s across %d replicas\n",
		rep.AggReqPerSec, rep.AggMelemPerSec, replicas)
	if rep.Mismatches != 0 {
		fmt.Fprintf(os.Stderr, "rlibm-bench: %d replica responses not bit-identical\n", rep.Mismatches)
		os.Exit(1)
	}
	fmt.Println("    all replica responses bit-identical: ok")
	return rep
}

// precInputMask is the float32 significand mask that truncates an input
// onto the precision's representable grid (0 for full precision: every
// float32 is its own input).
func precInputMask(p rlibm.Precision) uint32 {
	switch p {
	case rlibm.PrecTF32:
		return 1<<13 - 1
	case rlibm.PrecBfloat16:
		return 1<<16 - 1
	}
	return 0
}

// fillSweep32 draws float32 inputs from the function's polynomial-path
// domain (the same ranges makeSweep uses) so the load measures kernel
// evaluation, not special-case plateaus.
func fillSweep32(dst []float32, f rlibm.Func, rng *rand.Rand) {
	for i := range dst {
		switch f {
		case rlibm.FuncExp:
			dst[i] = float32(rng.Float64()*176 - 87)
		case rlibm.FuncExp2:
			dst[i] = float32(rng.Float64()*252 - 126)
		case rlibm.FuncExp10:
			dst[i] = float32(rng.Float64()*76 - 38)
		default: // logarithms: positive values across the full binade range
			dst[i] = float32(math.Ldexp(1+rng.Float64(), rng.Intn(252)-126))
		}
	}
}

package rlibm

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestParseBackend: canonical names, aliases, case-insensitivity, and the
// enumerating *OptionError.
func TestParseBackend(t *testing.T) {
	cases := map[string]Backend{
		"auto": BackendAuto, "AUTO": BackendAuto,
		"go": BackendGo, "scalar": BackendGo, "Pure-Go": BackendGo,
		"vector": BackendVector, "vec": BackendVector, "SIMD": BackendVector,
		"asm": BackendAsm, "avx": BackendAsm, "Assembly": BackendAsm,
	}
	for name, want := range cases {
		if got, err := ParseBackend(name); err != nil || got != want {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	_, err := ParseBackend("cuda")
	var oe *OptionError
	if !errors.As(err, &oe) {
		t.Fatalf("ParseBackend(cuda) error = %T, want *OptionError", err)
	}
	if oe.Field != "backend" || oe.Value != "cuda" {
		t.Errorf("OptionError = %+v", oe)
	}
	if want := `rlibm: unknown backend "cuda" (valid: auto, go, vector, asm)`; err.Error() != want {
		t.Errorf("error = %q, want %q", err, want)
	}
	for _, b := range []Backend{BackendAuto, BackendGo, BackendVector, BackendAsm} {
		if got, err := ParseBackend(b.String()); err != nil || got != b {
			t.Errorf("ParseBackend(%v.String()) = %v, %v", b, got, err)
		}
	}
}

// TestOptionErrorUnifiesValidation: every validation failure of New and the
// parsers is one typed *OptionError naming the field and enumerating the
// valid values, in the shape ParsePrecision established.
func TestOptionErrorUnifiesValidation(t *testing.T) {
	checks := []struct {
		err   error
		field string
		any   string // a value the enumeration must mention
	}{
		{func() error { _, err := New(Func(99), EstrinFMA); return err }(), "function", "exp2"},
		{func() error { _, err := New(FuncExp, Scheme(-1)); return err }(), "scheme", "rlibm-estrin-fma"},
		{func() error { _, err := New(FuncExp, Horner, WithPrecision(Precision(7))); return err }(), "precision", "bf16"},
		{func() error { _, err := New(FuncExp, Horner, WithBackend(Backend(9))); return err }(), "backend", "vector"},
		{func() error { _, err := ParseFunc("sin"); return err }(), "function", "log10"},
		{func() error { _, err := ParseScheme("newton"); return err }(), "scheme", "rlibm-knuth"},
		{func() error { _, err := ParsePrecision("int8"); return err }(), "precision", "tf32"},
		{func() error { _, err := ParseBackend("cuda"); return err }(), "backend", "asm"},
	}
	for _, c := range checks {
		var oe *OptionError
		if !errors.As(c.err, &oe) {
			t.Errorf("%v: not an *OptionError (%T)", c.err, c.err)
			continue
		}
		if oe.Field != c.field {
			t.Errorf("%v: Field = %q, want %q", c.err, oe.Field, c.field)
		}
		if !strings.Contains(strings.Join(oe.Valid, ", "), c.any) {
			t.Errorf("%v: Valid %v does not mention %q", c.err, oe.Valid, c.any)
		}
		msg := c.err.Error()
		if !strings.HasPrefix(msg, "rlibm: unknown "+c.field+" ") || !strings.Contains(msg, "(valid: ") {
			t.Errorf("error %q does not follow the unified shape", msg)
		}
	}
}

// TestBackendsEnumeration: Backends lists the machine's constructible
// concrete backends for every valid combination — BackendVector and
// BackendGo always, BackendAsm exactly where it is available — and rejects
// invalid components like New does.
func TestBackendsEnumeration(t *testing.T) {
	for _, f := range Funcs {
		for _, s := range Schemes {
			for _, p := range Precisions {
				bs, err := Backends(f, s, p)
				if err != nil {
					t.Fatalf("Backends(%v, %v, %v): %v", f, s, p, err)
				}
				seen := map[Backend]bool{}
				for _, b := range bs {
					if b == BackendAuto || !b.Available() {
						t.Errorf("Backends(%v, %v, %v) lists %v", f, s, p, b)
					}
					seen[b] = true
				}
				if !seen[BackendGo] || !seen[BackendVector] {
					t.Errorf("Backends(%v, %v, %v) = %v, missing portable backends", f, s, p, bs)
				}
				if seen[BackendAsm] != BackendAsm.Available() {
					t.Errorf("Backends(%v, %v, %v) asm listing %v, available %v",
						f, s, p, seen[BackendAsm], BackendAsm.Available())
				}
			}
		}
	}
	if _, err := Backends(Func(-1), Horner, PrecFloat32); err == nil {
		t.Error("Backends with invalid func did not error")
	}
	if _, err := Backends(FuncExp, Scheme(9), PrecFloat32); err == nil {
		t.Error("Backends with invalid scheme did not error")
	}
	if _, err := Backends(FuncExp, Horner, Precision(9)); err == nil {
		t.Error("Backends with invalid precision did not error")
	}
}

// TestWithBackendRoundTrip: New accepts every backend Backends lists,
// Evaluator.Backend reports the concrete backend (Auto resolves to a member
// of the list), and every backend's EvalBatch is bit-identical to
// BackendGo's for every (function, scheme sample, precision).
func TestWithBackendRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	n := 4096 + 5 // exercise lane groups and the scalar tail
	src := make([]float32, n)
	for i := range src {
		if i%16 == 3 {
			src[i] = math.Float32frombits(rng.Uint32()) // specials included
		} else {
			src[i] = float32(rng.Float64()*200 - 100)
		}
	}
	want := make([]float32, n)
	got := make([]float32, n)
	for _, f := range Funcs {
		for _, p := range Precisions {
			bs, err := Backends(f, EstrinFMA, p)
			if err != nil {
				t.Fatal(err)
			}
			auto, err := New(f, EstrinFMA, WithPrecision(p))
			if err != nil {
				t.Fatal(err)
			}
			resolved := auto.Backend()
			if resolved == BackendAuto {
				t.Fatalf("%v/%v: Backend() returned unresolved BackendAuto", f, p)
			}
			inList := false
			for _, b := range bs {
				inList = inList || b == resolved
			}
			if !inList {
				t.Fatalf("%v/%v: auto resolved to %v, not in Backends() = %v", f, p, resolved, bs)
			}
			ref, err := New(f, EstrinFMA, WithPrecision(p), WithBackend(BackendGo))
			if err != nil {
				t.Fatal(err)
			}
			ref.EvalBatch(want, src)
			for _, b := range bs {
				e, err := New(f, EstrinFMA, WithPrecision(p), WithBackend(b))
				if err != nil {
					t.Fatalf("New(%v, WithBackend(%v)): %v", f, b, err)
				}
				if e.Backend() != b {
					t.Fatalf("Backend() = %v, want %v", e.Backend(), b)
				}
				e.EvalBatch(got, src)
				for i := range src {
					if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
						t.Fatalf("%v/%v/%v(%#08x): %#08x, go backend %#08x", f, p, b,
							math.Float32bits(src[i]), math.Float32bits(got[i]), math.Float32bits(want[i]))
					}
				}
			}
		}
	}
}

// TestWithBackendUnavailable: requesting a backend the machine cannot build
// fails with an *OptionError enumerating the machine's available set. Where
// asm is available the case is exercised with an out-of-range backend (the
// availability path itself is covered on non-AVX builders).
func TestWithBackendUnavailable(t *testing.T) {
	if !BackendAsm.Available() {
		_, err := New(FuncExp, EstrinFMA, WithBackend(BackendAsm))
		var oe *OptionError
		if !errors.As(err, &oe) {
			t.Fatalf("New(WithBackend(asm)) on non-asm machine: error %T, want *OptionError", err)
		}
		if oe.Field != "backend" || strings.Contains(strings.Join(oe.Valid, ","), "asm") {
			t.Errorf("OptionError = %+v, want backend error excluding asm", oe)
		}
	}
	if _, err := New(FuncExp, EstrinFMA, WithBackend(Backend(-2))); err == nil {
		t.Error("New with out-of-range backend did not error")
	}
}

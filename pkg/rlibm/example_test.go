package rlibm_test

import (
	"fmt"

	"rlibm/pkg/rlibm"
)

// The scalar functions return correctly rounded float32 results.
func ExampleExp2() {
	fmt.Println(rlibm.Exp2(0.5))
	fmt.Println(rlibm.Exp2(-1))
	// Output:
	// 1.4142135
	// 0.5
}

// Batch evaluation writes results element-wise into dst; outputs are
// bit-identical to the scalar calls.
func ExampleExp2Batch() {
	src := []float32{0, 1, 2, 10}
	dst := make([]float32, len(src))
	rlibm.Exp2Batch(dst, src)
	fmt.Println(dst)
	// Output:
	// [1 2 4 1024]
}

// EvalBatch selects function and scheme dynamically — the serving layer's
// entry point. Reuse dst across calls to keep the hot path allocation-free.
func ExampleEvalBatch() {
	f, _ := rlibm.ParseFunc("log2")
	s, _ := rlibm.ParseScheme("rlibm-estrin-fma")
	src := []float32{1, 2, 8, 1024}
	dst := make([]float32, len(src))
	rlibm.EvalBatch(f, s, dst, src)
	fmt.Println(dst)
	// Output:
	// [0 1 3 10]
}

// WithBackend pins the batch-kernel backend. The default, BackendAuto,
// resolves to the fastest backend available on the machine; pinning
// BackendVector (always available) makes this example deterministic.
// Backend choice never changes results — every backend is bit-identical —
// only batch throughput.
func ExampleWithBackend() {
	e, err := rlibm.New(rlibm.FuncExp2, rlibm.EstrinFMA, rlibm.WithBackend(rlibm.BackendVector))
	if err != nil {
		panic(err)
	}
	src := []float32{0, 1, 2, 10}
	dst := make([]float32, len(src))
	e.EvalBatch(dst, src)
	fmt.Println(e.Backend(), dst)
	// Output:
	// vector [1 2 4 1024]
}

// Every generated variant of a function agrees on the correctly rounded
// result; the schemes differ only in evaluation speed.
func ExampleEval() {
	for _, s := range rlibm.Schemes {
		fmt.Println(s, rlibm.Eval(rlibm.FuncLog, s, 2.718281828459045))
	}
	// Output:
	// rlibm 0.99999994
	// rlibm-knuth 0.99999994
	// rlibm-estrin 0.99999994
	// rlibm-estrin-fma 0.99999994
}

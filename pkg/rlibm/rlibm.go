// Package rlibm is the public face of the repository's generated math
// library: the six correctly rounded elementary functions of the CGO 2023
// paper (e^x, 2^x, 10^x, ln x, log2 x, log10 x), each available in the four
// polynomial-evaluation variants the paper compares (Horner, Knuth-adapted,
// Estrin, Estrin+FMA), plus batch kernels that evaluate whole slices with
// the per-call dispatch overhead paid once.
//
// Every result is the correctly rounded float32 under round-to-nearest-even;
// the same double-precision polynomials also yield correctly rounded results
// for every format from 10 to 32 bits (8-bit exponent) under all five IEEE
// rounding modes — see internal/libm for the raw-double entry points and
// internal/fp for the rounding machinery.
//
// The scalar functions (Exp, Log2, ...) are one-call conveniences. The batch
// functions (ExpBatch, Log2Batch, EvalBatch, ...) are the serving-layer hot
// path: they resolve the function/scheme kernel once, run a tight loop with
// zero heap allocations, and fan out across goroutines for large slices.
// Batch results are bit-identical to the corresponding scalar calls for
// every input, every scheme and every slice length.
package rlibm

import (
	"fmt"

	"rlibm/internal/libm"
)

// Scheme selects one of the four generated polynomial-evaluation variants.
type Scheme int

const (
	// Horner is the RLibm baseline: a serial multiply-add chain.
	Horner Scheme = iota
	// Knuth uses Knuth's coefficient adaptation.
	Knuth
	// Estrin uses Estrin's parallel evaluation.
	Estrin
	// EstrinFMA combines Estrin's evaluation with fused multiply-adds — the
	// paper's fastest configuration and this package's default.
	EstrinFMA

	// NumSchemes is the number of variants.
	NumSchemes = 4
)

// Schemes lists the four variants in the paper's order.
var Schemes = [NumSchemes]Scheme{Horner, Knuth, Estrin, EstrinFMA}

// String returns the variant's canonical name ("rlibm", "rlibm-knuth",
// "rlibm-estrin", "rlibm-estrin-fma"), matching the names the CLIs and the
// rlibm-serve URL space use.
func (s Scheme) String() string {
	if s.valid() {
		return libm.Scheme(s).String()
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

func (s Scheme) valid() bool { return s >= Horner && s <= EstrinFMA }

// ParseScheme resolves a scheme name. It accepts the canonical names
// ("rlibm", "rlibm-knuth", "rlibm-estrin", "rlibm-estrin-fma") and the
// short generator spellings ("horner", "knuth", "estrin", "estrin-fma").
func ParseScheme(name string) (Scheme, error) {
	switch name {
	case "rlibm", "horner":
		return Horner, nil
	case "rlibm-knuth", "knuth":
		return Knuth, nil
	case "rlibm-estrin", "estrin":
		return Estrin, nil
	case "rlibm-estrin-fma", "estrin-fma":
		return EstrinFMA, nil
	}
	return 0, fmt.Errorf("rlibm: unknown scheme %q", name)
}

// Func identifies one of the six elementary functions.
type Func int

const (
	FuncExp Func = iota
	FuncExp2
	FuncExp10
	FuncLog
	FuncLog2
	FuncLog10

	// NumFuncs is the number of functions.
	NumFuncs = 6
)

// Funcs lists the six functions in the paper's order.
var Funcs = [NumFuncs]Func{FuncExp, FuncExp2, FuncExp10, FuncLog, FuncLog2, FuncLog10}

var funcNames = [NumFuncs]string{"exp", "exp2", "exp10", "log", "log2", "log10"}

// String returns the function's name ("exp", "log2", ...).
func (f Func) String() string {
	if f.valid() {
		return funcNames[f]
	}
	return fmt.Sprintf("Func(%d)", int(f))
}

func (f Func) valid() bool { return f >= FuncExp && f < NumFuncs }

// ParseFunc resolves a function name ("exp", "exp2", "exp10", "log", "log2",
// "log10").
func ParseFunc(name string) (Func, error) {
	for i, n := range funcNames {
		if n == name {
			return Func(i), nil
		}
	}
	return 0, fmt.Errorf("rlibm: unknown function %q", name)
}

// kernels indexes the straight-line generated backend by (function, scheme).
// Resolving a kernel once and looping over it is the batch fast path; the
// scalar entry points go through the same kernels so batch and scalar
// results are bit-identical by construction.
var kernels [NumFuncs][NumSchemes]func(float64) float64

// batchKernels indexes the generated batch backend the same way: blocked
// in-place kernels with the polynomial body inlined into the loop, the form
// EvalBatch dispatches to.
var batchKernels [NumFuncs][NumSchemes]func(dst, src []float32)

func init() {
	for fi, f := range Funcs {
		for si, s := range Schemes {
			key := f.String() + "/" + s.String()
			k := libm.GeneratedFuncs[key]
			bk := libm.GeneratedBatchFuncs[key]
			if k == nil || bk == nil {
				panic("rlibm: missing generated kernel " + key)
			}
			kernels[fi][si] = k
			batchKernels[fi][si] = bk
		}
	}
}

// Kernel returns the raw double-precision kernel of (f, s): it maps a
// float64-widened float32 input to a double lying in the 34-bit round-to-odd
// rounding interval of the exact result. Harness code (benchmarks, the
// serving layer's verification) uses it to reproduce batch outputs exactly:
// float32(Kernel(f, s)(float64(x))) == Eval(f, s, x) bit for bit.
func Kernel(f Func, s Scheme) func(float64) float64 {
	if !f.valid() || !s.valid() {
		return nil
	}
	return kernels[f][s]
}

// Eval returns the correctly rounded float32 result of function f at x using
// scheme s. It panics if f or s is out of range; use ParseFunc/ParseScheme
// to validate external input first.
func Eval(f Func, s Scheme, x float32) float32 {
	if !f.valid() {
		panic("rlibm: invalid Func")
	}
	if !s.valid() {
		panic("rlibm: invalid Scheme")
	}
	return float32(kernels[f][s](float64(x)))
}

// Exp returns the correctly rounded e^x (Estrin+FMA variant).
func Exp(x float32) float32 { return float32(kernels[FuncExp][EstrinFMA](float64(x))) }

// Exp2 returns the correctly rounded 2^x (Estrin+FMA variant).
func Exp2(x float32) float32 { return float32(kernels[FuncExp2][EstrinFMA](float64(x))) }

// Exp10 returns the correctly rounded 10^x (Estrin+FMA variant).
func Exp10(x float32) float32 { return float32(kernels[FuncExp10][EstrinFMA](float64(x))) }

// Log returns the correctly rounded natural logarithm (Estrin+FMA variant).
func Log(x float32) float32 { return float32(kernels[FuncLog][EstrinFMA](float64(x))) }

// Log2 returns the correctly rounded base-2 logarithm (Estrin+FMA variant).
func Log2(x float32) float32 { return float32(kernels[FuncLog2][EstrinFMA](float64(x))) }

// Log10 returns the correctly rounded base-10 logarithm (Estrin+FMA variant).
func Log10(x float32) float32 { return float32(kernels[FuncLog10][EstrinFMA](float64(x))) }

// Package rlibm is the public face of the repository's generated math
// library: the six correctly rounded elementary functions of the CGO 2023
// paper (e^x, 2^x, 10^x, ln x, log2 x, log10 x), each available in the four
// polynomial-evaluation variants the paper compares (Horner, Knuth-adapted,
// Estrin, Estrin+FMA), plus batch kernels that evaluate whole slices with
// the per-call dispatch overhead paid once.
//
// Every result is the correctly rounded float32 under round-to-nearest-even;
// the same double-precision polynomials also yield correctly rounded results
// for every format from 10 to 32 bits (8-bit exponent) under all five IEEE
// rounding modes — see internal/libm for the raw-double entry points and
// internal/fp for the rounding machinery.
//
// The scalar functions (Exp, Log2, ...) are one-call conveniences. The batch
// functions (ExpBatch, Log2Batch, EvalBatch, ...) are the serving-layer hot
// path: they resolve the function/scheme kernel once, run a tight loop with
// zero heap allocations, and fan out across goroutines for large slices.
// Batch results are bit-identical to the corresponding scalar calls for
// every input, every scheme and every slice length.
package rlibm

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"rlibm/internal/libm"
)

// Scheme selects one of the four generated polynomial-evaluation variants.
type Scheme int

const (
	// Horner is the RLibm baseline: a serial multiply-add chain.
	Horner Scheme = iota
	// Knuth uses Knuth's coefficient adaptation.
	Knuth
	// Estrin uses Estrin's parallel evaluation.
	Estrin
	// EstrinFMA combines Estrin's evaluation with fused multiply-adds — the
	// paper's fastest configuration and this package's default.
	EstrinFMA

	// NumSchemes is the number of variants.
	NumSchemes = 4
)

// Schemes lists the four variants in the paper's order.
var Schemes = [NumSchemes]Scheme{Horner, Knuth, Estrin, EstrinFMA}

// String returns the variant's canonical name ("rlibm", "rlibm-knuth",
// "rlibm-estrin", "rlibm-estrin-fma"), matching the names the CLIs and the
// rlibm-serve URL space use.
func (s Scheme) String() string {
	if s.valid() {
		return libm.Scheme(s).String()
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

func (s Scheme) valid() bool { return s >= Horner && s <= EstrinFMA }

// ParseScheme resolves a scheme name, case-insensitively. It accepts the
// canonical names ("rlibm", "rlibm-knuth", "rlibm-estrin",
// "rlibm-estrin-fma") and the short generator spellings ("horner", "knuth",
// "estrin", "estrin-fma").
func ParseScheme(name string) (Scheme, error) {
	switch strings.ToLower(name) {
	case "rlibm", "horner":
		return Horner, nil
	case "rlibm-knuth", "knuth":
		return Knuth, nil
	case "rlibm-estrin", "estrin":
		return Estrin, nil
	case "rlibm-estrin-fma", "estrin-fma":
		return EstrinFMA, nil
	}
	return 0, errUnknownScheme(name)
}

// Func identifies one of the six elementary functions.
type Func int

const (
	FuncExp Func = iota
	FuncExp2
	FuncExp10
	FuncLog
	FuncLog2
	FuncLog10

	// NumFuncs is the number of functions.
	NumFuncs = 6
)

// Funcs lists the six functions in the paper's order.
var Funcs = [NumFuncs]Func{FuncExp, FuncExp2, FuncExp10, FuncLog, FuncLog2, FuncLog10}

var funcNames = [NumFuncs]string{"exp", "exp2", "exp10", "log", "log2", "log10"}

// String returns the function's name ("exp", "log2", ...).
func (f Func) String() string {
	if f.valid() {
		return funcNames[f]
	}
	return fmt.Sprintf("Func(%d)", int(f))
}

func (f Func) valid() bool { return f >= FuncExp && f < NumFuncs }

// ParseFunc resolves a function name ("exp", "exp2", "exp10", "log", "log2",
// "log10"), case-insensitively.
func ParseFunc(name string) (Func, error) {
	lower := strings.ToLower(name)
	for i, n := range funcNames {
		if n == lower {
			return Func(i), nil
		}
	}
	return 0, errUnknownFunc(name)
}

// kernels indexes the straight-line generated backend by (function, scheme,
// precision). Resolving a kernel once and looping over it is the batch fast
// path; the scalar entry points go through the same kernels so batch and
// scalar results are bit-identical by construction. Precision index 0 is the
// full float32 kernel; narrower precisions hold the progressive prefix
// kernels.
var kernels [NumFuncs][NumSchemes][NumPrecisions]func(float64) float64

// batchKernels adds the backend dimension: blocked in-place kernels with the
// polynomial body inlined into the loop, the form EvalBatch dispatches to.
// The leading index is a concrete backend (BackendGo, BackendVector,
// BackendAsm) — BackendAuto resolves to one of those before indexing, so its
// slot stays nil. Every backend of a cell computes bit-identical results;
// they differ only in how the loop is shaped (scalar block, lane-group
// vector block, or vector block behind assembly-staged float conversions).
//
// The scalar kernels have no backend dimension: a single straight-line
// float64 call has only one generated form.
var batchKernels [NumBackends][NumFuncs][NumSchemes][NumPrecisions]func(dst, src []float32)

func init() {
	batchRegs := [NumBackends]struct{ full, prefix map[string]func(dst, src []float32) }{
		BackendGo:     {libm.GeneratedBatchFuncs, libm.GeneratedPrefixBatchFuncs},
		BackendVector: {libm.GeneratedVecBatchFuncs, libm.GeneratedPrefixVecBatchFuncs},
		BackendAsm:    {libm.GeneratedAsmBatchFuncs, libm.GeneratedPrefixAsmBatchFuncs},
	}
	for fi, f := range Funcs {
		for si, s := range Schemes {
			key := f.String() + "/" + s.String()
			for pi, p := range Precisions {
				k := libm.GeneratedFuncs[key]
				lookup := key
				if p != PrecFloat32 {
					lookup = key + "/" + p.String()
					k = libm.GeneratedPrefixFuncs[lookup]
				}
				if k == nil {
					panic("rlibm: missing generated kernel " + lookup)
				}
				kernels[fi][si][pi] = k
				// The bfloat16 memo table answers any bf16-pattern input with
				// one load, which beats every polynomial backend; share it
				// across all of them so backend choice never changes bf16
				// speed or results.
				var memo func(dst, src []float32)
				if p == PrecBfloat16 {
					memo = bf16Batch(f.String(), k)
				}
				for bi, reg := range batchRegs {
					if Backend(bi) == BackendAuto {
						continue
					}
					m := reg.full
					if p != PrecFloat32 {
						m = reg.prefix
					}
					bk := m[lookup]
					if bk == nil {
						panic("rlibm: missing " + Backend(bi).String() + " batch kernel " + lookup)
					}
					if memo != nil {
						bk = memo
					}
					batchKernels[bi][fi][si][pi] = bk
				}
			}
		}
	}
}

// bf16Batch is the bfloat16 batch kernel with the memo-table fast path: an
// input that is a bfloat16 value (any float32 whose low 16 bits are zero —
// the whole 2^16 space, specials included) is answered with one load from a
// per-function result table; anything else runs the prefix kernel. The
// table is built lazily from the same prefix kernel, so both branches are
// bit-identical to scalar evaluation by construction, and it is shared
// across schemes because every scheme's prefix computes the identical
// correctly rounded bfloat16 result.
func bf16Batch(fname string, kern func(float64) float64) func(dst, src []float32) {
	var once sync.Once
	var tab *[1 << 16]uint32
	return func(dst, src []float32) {
		once.Do(func() {
			if tab = libm.Bf16Table(fname); tab == nil {
				panic("rlibm: no bf16 prefix kernel for " + fname)
			}
		})
		for i, x := range src {
			if b := math.Float32bits(x); b&0xFFFF == 0 {
				dst[i] = math.Float32frombits(tab[b>>16])
			} else {
				dst[i] = float32(kern(float64(x)))
			}
		}
	}
}

// Kernel returns the raw double-precision kernel of (f, s) at full
// precision: it maps a float64-widened float32 input to a double lying in
// the 34-bit round-to-odd rounding interval of the exact result, so
// float32(Kernel(f, s)(float64(x))) == Eval(f, s, x) bit for bit.
//
// Deprecated: use New and Evaluator.Kernel, which validate the combination,
// cover the narrow precisions, and return errors instead of nil. All
// internal callers have migrated; the wrapper is kept for external users and
// stays pinned equivalent to Evaluator.Kernel by
// TestEvaluatorFullPrecisionMatchesPackage.
func Kernel(f Func, s Scheme) func(float64) float64 {
	if !f.valid() || !s.valid() {
		return nil
	}
	return kernels[f][s][PrecFloat32]
}

// Eval returns the correctly rounded float32 result of function f at x using
// scheme s, at full precision. It panics if f or s is out of range; use
// ParseFunc/ParseScheme to validate external input first, or New, which
// returns errors instead. For narrow output precisions build an Evaluator
// with WithPrecision.
func Eval(f Func, s Scheme, x float32) float32 {
	if !f.valid() {
		panic("rlibm: invalid Func")
	}
	if !s.valid() {
		panic("rlibm: invalid Scheme")
	}
	return float32(kernels[f][s][PrecFloat32](float64(x)))
}

// Exp returns the correctly rounded e^x (Estrin+FMA variant).
func Exp(x float32) float32 { return float32(kernels[FuncExp][EstrinFMA][PrecFloat32](float64(x))) }

// Exp2 returns the correctly rounded 2^x (Estrin+FMA variant).
func Exp2(x float32) float32 { return float32(kernels[FuncExp2][EstrinFMA][PrecFloat32](float64(x))) }

// Exp10 returns the correctly rounded 10^x (Estrin+FMA variant).
func Exp10(x float32) float32 {
	return float32(kernels[FuncExp10][EstrinFMA][PrecFloat32](float64(x)))
}

// Log returns the correctly rounded natural logarithm (Estrin+FMA variant).
func Log(x float32) float32 { return float32(kernels[FuncLog][EstrinFMA][PrecFloat32](float64(x))) }

// Log2 returns the correctly rounded base-2 logarithm (Estrin+FMA variant).
func Log2(x float32) float32 { return float32(kernels[FuncLog2][EstrinFMA][PrecFloat32](float64(x))) }

// Log10 returns the correctly rounded base-10 logarithm (Estrin+FMA variant).
func Log10(x float32) float32 {
	return float32(kernels[FuncLog10][EstrinFMA][PrecFloat32](float64(x)))
}

package rlibm

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Batch evaluation. The batch kernel for (f, s) is resolved once per call
// and runs the generated block backend (libm.GeneratedBatchFuncs): the
// polynomial body is inlined into a loop over on-stack float64 blocks, so
// there is no per-element call or dispatch and the float32 widening sits in
// its own short loop off the kernel's floating-point dependency chain —
// measurably faster per element than per-call scalar dispatch. Slices at or
// above fanOutThreshold are additionally split into fixed-size chunks
// evaluated by a goroutine per chunk group. Below the threshold a batch
// call performs zero heap allocations; above it the only allocations are
// the goroutine spawns, amortized over tens of thousands of elements.
// Outputs are bit-identical to per-element scalar calls for every slice
// length and worker count — each element is computed by exactly the same
// operation sequence, and float32 results carry no evaluation-order state.

const (
	// fanOutThreshold is the slice length at which a batch call starts
	// fanning out across goroutines. Below it the scheduling cost would
	// rival the evaluation itself: a kernel call is ~10-20ns, so a 32Ki
	// batch is ~0.5ms of work — comfortably above goroutine-spawn noise.
	fanOutThreshold = 1 << 15
	// fanOutChunk is the unit of work handed to each goroutine. Chunks are
	// assigned statically (worker w takes chunks w, w+n, w+2n, ...), which
	// keeps the fan-out allocation-free apart from the spawns themselves.
	fanOutChunk = 1 << 13
)

// maxBatchWorkers caps the goroutines a single batch call fans out to.
// 0 means runtime.GOMAXPROCS(0).
var maxBatchWorkers atomic.Int32

// SetMaxBatchWorkers caps the number of goroutines one batch call may fan
// out across and returns the previous setting. The cap only matters for
// slices of at least 32Ki (1<<15) elements — below that threshold a batch
// call never fans out and runs on the calling goroutine regardless of the
// cap; n == 1 disables fan-out entirely. The cap is process-wide: the
// serving layer sets it from its -j flag so request handling and batch
// fan-out share one budget.
//
// n < 1 is rejected with a panic: 0 used to silently mean "GOMAXPROCS",
// which masked miswired configuration. Callers that want the default should
// pass runtime.GOMAXPROCS(0) explicitly.
func SetMaxBatchWorkers(n int) int {
	if n < 1 {
		panic(fmt.Sprintf("rlibm: SetMaxBatchWorkers(%d): worker cap must be >= 1", n))
	}
	return int(maxBatchWorkers.Swap(int32(n)))
}

func batchWorkers() int {
	if n := int(maxBatchWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// defaultBackend is what BackendAuto resolves to on this machine, computed
// once: the backend the package-level batch entry points dispatch to.
var defaultBackend = resolveBackend(BackendAuto)

// EvalBatch evaluates function f under scheme s at every element of src,
// writing result i to dst[i]. It panics if f or s is out of range or if dst
// is shorter than src (extra dst capacity is left untouched). Results are
// bit-identical to calling Eval(f, s, x) per element; the batch runs on the
// machine's BackendAuto resolution (build an Evaluator with WithBackend to
// pin a backend).
func EvalBatch(f Func, s Scheme, dst, src []float32) {
	if !f.valid() {
		panic("rlibm: invalid Func")
	}
	if !s.valid() {
		panic("rlibm: invalid Scheme")
	}
	if len(dst) < len(src) {
		panic("rlibm: EvalBatch dst shorter than src")
	}
	evalBatch(batchKernels[defaultBackend][f][s][PrecFloat32], dst[:len(src)], src)
}

// evalBatch runs batch kernel k over src into dst (equal lengths), fanning
// out for large slices. The fan-out lives in its own function so the closure
// it spawns cannot force heap allocations onto the inline path (captured
// variables escape at function granularity, not branch granularity).
func evalBatch(k func(dst, src []float32), dst, src []float32) {
	workers := batchWorkers()
	if len(src) < fanOutThreshold || workers < 2 {
		k(dst, src)
		return
	}
	fanOut(k, dst, src, workers)
}

// fanOut splits src into fanOutChunk-sized chunks assigned statically to
// workers goroutines.
func fanOut(k func(dst, src []float32), dst, src []float32, workers int) {
	chunks := (len(src) + fanOutChunk - 1) / fanOutChunk
	if workers > chunks {
		workers = chunks
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for c := w; c < chunks; c += workers {
				lo := c * fanOutChunk
				hi := lo + fanOutChunk
				if hi > len(src) {
					hi = len(src)
				}
				k(dst[lo:hi], src[lo:hi])
			}
		}(w)
	}
	wg.Wait()
}

// ExpBatch evaluates e^x over src into dst (Estrin+FMA variant). dst must be
// at least as long as src; results are bit-identical to Exp per element.
func ExpBatch(dst, src []float32) { EvalBatch(FuncExp, EstrinFMA, dst, src) }

// Exp2Batch evaluates 2^x over src into dst (Estrin+FMA variant).
func Exp2Batch(dst, src []float32) { EvalBatch(FuncExp2, EstrinFMA, dst, src) }

// Exp10Batch evaluates 10^x over src into dst (Estrin+FMA variant).
func Exp10Batch(dst, src []float32) { EvalBatch(FuncExp10, EstrinFMA, dst, src) }

// LogBatch evaluates ln x over src into dst (Estrin+FMA variant).
func LogBatch(dst, src []float32) { EvalBatch(FuncLog, EstrinFMA, dst, src) }

// Log2Batch evaluates log2 x over src into dst (Estrin+FMA variant).
func Log2Batch(dst, src []float32) { EvalBatch(FuncLog2, EstrinFMA, dst, src) }

// Log10Batch evaluates log10 x over src into dst (Estrin+FMA variant).
func Log10Batch(dst, src []float32) { EvalBatch(FuncLog10, EstrinFMA, dst, src) }
